// Command laacad runs a single LAACAD deployment and reports the outcome:
// final max/min sensing range, convergence rounds, coverage verification and
// an ASCII rendering of the final node layout.
//
// Usage:
//
//	laacad -n 100 -k 2 -region square -start corner -alpha 0.5
//	laacad -n 120 -k 4 -region obstacles2 -mode localized -gamma 0.2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"laacad"

	"laacad/internal/asciiplot"
	"laacad/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "laacad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("laacad", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 100, "number of sensor nodes")
		k        = fs.Int("k", 2, "coverage order k")
		alpha    = fs.Float64("alpha", 0.5, "motion step size in (0,1]")
		eps      = fs.Float64("eps", 1e-3, "stopping tolerance")
		rounds   = fs.Int("rounds", 300, "maximum rounds")
		seed     = fs.Int64("seed", 1, "random seed")
		mode     = fs.String("mode", "centralized", "engine mode: centralized | localized")
		gamma    = fs.Float64("gamma", 0.2, "transmission range (localized mode)")
		regName  = fs.String("region", "square", "region: square | lshape | cross | obstacle1 | obstacles2")
		start    = fs.String("start", "uniform", "initial placement: uniform | corner")
		workers  = fs.Int("workers", 0, "engine worker goroutines per round (0 = serial, -1 = all CPUs); trajectories are identical for any value")
		gridRes  = fs.Int("grid", 80, "coverage verification grid resolution")
		showPlot = fs.Bool("plot", true, "render final layout as ASCII")
		savePath = fs.String("save", "", "write the final deployment as a JSON snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg, err := pickRegion(*regName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var initial []laacad.Point
	switch *start {
	case "uniform":
		initial = laacad.PlaceUniform(reg, *n, rng)
	case "corner":
		initial = laacad.PlaceCorner(reg, *n, 0.1, rng)
	default:
		return fmt.Errorf("unknown start placement %q", *start)
	}

	cfg := laacad.DefaultConfig(*k)
	cfg.Alpha = *alpha
	cfg.Epsilon = *eps
	cfg.MaxRounds = *rounds
	cfg.Seed = *seed
	cfg.Gamma = *gamma
	cfg.Workers = *workers
	switch *mode {
	case "centralized":
		cfg.Mode = laacad.Centralized
	case "localized":
		cfg.Mode = laacad.Localized
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	res, err := laacad.Deploy(reg, initial, cfg)
	if err != nil {
		return err
	}
	rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, *gridRes)

	fmt.Printf("LAACAD deployment: n=%d k=%d mode=%s region=%s\n", *n, *k, *mode, *regName)
	fmt.Printf("  rounds:     %d (converged=%v)\n", res.Rounds, res.Converged)
	fmt.Printf("  R* (max r): %.6g\n", res.MaxRadius())
	fmt.Printf("  min r:      %.6g\n", res.MinRadius())
	fmt.Printf("  max load:   %.6g   total load: %.6g   (E=πr²)\n",
		laacad.MaxLoad(res.Radii, laacad.DiskAreaEnergy{}),
		laacad.TotalLoad(res.Radii, laacad.DiskAreaEnergy{}))
	fmt.Printf("  coverage:   min depth %d over %d samples → %d-covered=%v\n",
		rep.MinDepth, rep.Samples, *k, rep.KCovered(*k))
	if cfg.Mode == laacad.Localized {
		fmt.Printf("  messages:   %d\n", res.Messages)
	}
	if *showPlot {
		fmt.Println("\nFinal layout:")
		fmt.Print(asciiplot.Scatter(reg.BBox(), 64, 24, asciiplot.Layer{Points: res.Positions, Mark: 'o'}))
	}
	if *savePath != "" {
		snap, err := snapshot.New(*k, *seed, res.Rounds, res.Converged, res.Positions, res.Radii)
		if err != nil {
			return err
		}
		if err := snap.WriteFile(*savePath); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", *savePath)
	}
	return nil
}

func pickRegion(name string) (*laacad.Region, error) {
	switch name {
	case "square":
		return laacad.UnitSquareKm(), nil
	case "lshape":
		return laacad.LShapeRegion(), nil
	case "cross":
		return laacad.CrossRegion(), nil
	case "obstacle1":
		return laacad.SquareWithCircularObstacle(laacad.Pt(0.5, 0.5), 0.15), nil
	case "obstacles2":
		return laacad.SquareWithTwoObstacles(), nil
	default:
		return nil, fmt.Errorf("unknown region %q", name)
	}
}
