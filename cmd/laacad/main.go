// Command laacad runs a single LAACAD deployment and reports the outcome:
// final max/min sensing range, convergence rounds, coverage verification and
// an ASCII rendering of the final node layout.
//
// Runs resolve from the scenario registry (-scenario, -list) or are wired
// ad hoc from flags; either way they execute through the unified
// Scenario/Runner API, so SIGINT/SIGTERM stops a run cleanly, writes a
// resume checkpoint, and -resume continues it bit-identically.
//
// Usage:
//
//	laacad -scenario corner                        # a registered scenario
//	laacad -scenario corner -n 200 -k 3            # ... with overrides
//	laacad -n 100 -k 2 -region square -start corner -alpha 0.5
//	laacad -n 120 -k 4 -region obstacles2 -mode localized -gamma 0.2
//	laacad -resume laacad-resume.json              # continue an interrupted run
//	laacad -list                                   # show scenarios/regions/placements
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"laacad"

	"laacad/internal/asciiplot"
	metricshttp "laacad/internal/metrics"
	"laacad/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "laacad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("laacad", flag.ContinueOnError)
	var (
		scName   = fs.String("scenario", "", "run a registered scenario (see -list); other flags override its fields")
		list     = fs.Bool("list", false, "list registered scenarios, regions and placements, then exit")
		resume   = fs.String("resume", "", "resume from a checkpoint file instead of starting a scenario")
		ckpt     = fs.String("checkpoint", "laacad-resume.json", "where to write the resume checkpoint on SIGINT/SIGTERM")
		every    = fs.Int("checkpoint-every", 0, "also write the checkpoint every N rounds (0 = only on interrupt)")
		n        = fs.Int("n", 100, "number of sensor nodes")
		k        = fs.Int("k", 2, "coverage order k")
		alpha    = fs.Float64("alpha", 0.5, "motion step size in (0,1]")
		eps      = fs.Float64("eps", 1e-3, "stopping tolerance")
		rounds   = fs.Int("rounds", 300, "maximum rounds")
		seed     = fs.Int64("seed", 1, "random seed")
		mode     = fs.String("mode", "centralized", "engine mode: centralized | localized")
		gamma    = fs.Float64("gamma", 0.2, "transmission range (localized mode)")
		regName  = fs.String("region", "square", "region: one of the registered regions (see -list)")
		start    = fs.String("start", "uniform", "initial placement: one of the registered placements (see -list)")
		workers  = fs.Int("workers", 0, "engine worker goroutines per round (0 = serial, -1 = all CPUs); trajectories are identical for any value")
		shards   = fs.Int("shards", 1, "stripe-partitioned engine shards exchanging position halos (1 = shared-memory engine); results are identical for any value")
		metrics  = fs.String("metrics", "", "serve live run metrics as JSON over HTTP on this address (e.g. localhost:6060); empty = off")
		gridRes  = fs.Int("grid", 80, "coverage verification grid resolution")
		showPlot = fs.Bool("plot", true, "render final layout as ASCII")
		savePath = fs.String("save", "", "write the final deployment as a JSON snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printRegistry(os.Stdout)
		return nil
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	// SIGINT/SIGTERM cancel the run; the Runner then returns the partial
	// result and we write a resume checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var opts []laacad.RunOption
	if *metrics != "" {
		reg := &laacad.MetricsRegistry{}
		addr, shutdown, err := metricshttp.ListenAndServe(*metrics, metricshttp.Mux(reg))
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("serving metrics at http://%s/metrics\n", addr)
		opts = append(opts, laacad.WithMetrics(reg))
	}
	if *every > 0 {
		opts = append(opts, laacad.WithSnapshotEvery(*every, func(st *laacad.Checkpoint) error {
			return st.WriteFile(*ckpt)
		}))
	}
	if *shards > 1 {
		opts = append(opts, laacad.WithShards(*shards))
	}

	var (
		r         laacad.Runner
		kOrder    int
		seedUsed  int64
		regByName string
	)
	if *resume != "" {
		st, err := laacad.ReadCheckpoint(*resume)
		if err != nil {
			return err
		}
		// The checkpoint's own worker setting applies unless -workers was
		// given explicitly (it is a speed knob; results are identical).
		if set["workers"] {
			opts = append(opts, laacad.WithWorkers(*workers))
		}
		r, err = laacad.ResumeRunner(st, opts...)
		if err != nil {
			return err
		}
		kOrder, seedUsed, regByName = st.Config.K, st.Config.Seed, st.Region
		fmt.Printf("resuming %s checkpoint (round %d) over region %q\n", st.Kind, st.Round, st.Region)
	} else {
		opts = append(opts, laacad.WithWorkers(*workers))
		sc, err := buildScenario(*scName, set, flagValues{
			n: *n, k: *k, alpha: *alpha, eps: *eps, rounds: *rounds,
			seed: *seed, mode: *mode, gamma: *gamma, region: *regName, start: *start,
		})
		if err != nil {
			return err
		}
		r, err = laacad.NewRunner(sc, opts...)
		if err != nil {
			return err
		}
		kOrder, seedUsed, regByName = sc.Config.K, sc.Seed(), sc.Region
	}

	res, err := r.Run(ctx)
	if errors.Is(err, context.Canceled) {
		st, serr := r.Snapshot()
		if serr != nil {
			return fmt.Errorf("interrupted, and checkpointing failed: %w", serr)
		}
		if serr := st.WriteFile(*ckpt); serr != nil {
			return fmt.Errorf("interrupted, and writing %s failed: %w", *ckpt, serr)
		}
		return fmt.Errorf("interrupted after %d rounds; resume with: laacad -resume %s", res.Rounds, *ckpt)
	}
	if err != nil {
		return err
	}

	reg, err := laacad.LookupRegionByName(regByName)
	if err != nil {
		return err
	}
	rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, *gridRes)

	fmt.Printf("LAACAD deployment: n=%d k=%d region=%s\n", len(res.Positions), kOrder, regByName)
	fmt.Printf("  rounds:     %d (converged=%v)\n", res.Rounds, res.Converged)
	fmt.Printf("  R* (max r): %.6g\n", res.MaxRadius())
	fmt.Printf("  min r:      %.6g\n", res.MinRadius())
	fmt.Printf("  max load:   %.6g   total load: %.6g   (E=πr²)\n",
		laacad.MaxLoad(res.Radii, laacad.DiskAreaEnergy{}),
		laacad.TotalLoad(res.Radii, laacad.DiskAreaEnergy{}))
	fmt.Printf("  coverage:   min depth %d over %d samples → %d-covered=%v\n",
		rep.MinDepth, rep.Samples, kOrder, rep.KCovered(kOrder))
	if res.Messages > 0 {
		fmt.Printf("  messages:   %d\n", res.Messages)
	}
	if *showPlot {
		fmt.Println("\nFinal layout:")
		fmt.Print(asciiplot.Scatter(reg.BBox(), 64, 24, asciiplot.Layer{Points: res.Positions, Mark: 'o'}))
	}
	if *savePath != "" {
		snap, err := snapshot.New(kOrder, seedUsed, res.Rounds, res.Converged, res.Positions, res.Radii)
		if err != nil {
			return err
		}
		if err := snap.WriteFile(*savePath); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", *savePath)
	}
	return nil
}

// flagValues carries the deployment flags into scenario assembly.
type flagValues struct {
	n, k, rounds        int
	alpha, eps, gamma   float64
	seed                int64
	mode, region, start string
}

// buildScenario resolves the base scenario (registered name, or an ad-hoc
// default) and applies explicitly-set flags on top.
func buildScenario(name string, set map[string]bool, v flagValues) (laacad.Scenario, error) {
	var sc laacad.Scenario
	if name != "" {
		var err error
		sc, err = laacad.LookupScenario(name)
		if err != nil {
			return sc, err
		}
		if sc.Async {
			return sc, fmt.Errorf("scenario %q is event-driven; cmd/laacad drives round-based runs only", name)
		}
	} else {
		sc = laacad.Scenario{
			Region:    v.region,
			Placement: v.start,
			N:         v.n,
			Config:    laacad.DefaultConfig(v.k),
		}
		sc.Config.Alpha = v.alpha
		sc.Config.Epsilon = v.eps
		sc.Config.MaxRounds = v.rounds
		sc.Config.Seed = v.seed
		sc.Config.Gamma = v.gamma
	}
	// Explicit flags override the registered scenario's fields.
	if set["region"] {
		sc.Region = v.region
	}
	if set["start"] {
		sc.Placement = v.start
	}
	if set["n"] {
		sc.N = v.n
	}
	if set["k"] {
		sc.Config.K = v.k
	}
	if set["alpha"] {
		sc.Config.Alpha = v.alpha
	}
	if set["eps"] {
		sc.Config.Epsilon = v.eps
	}
	if set["rounds"] {
		sc.Config.MaxRounds = v.rounds
	}
	if set["seed"] {
		sc = sc.WithSeed(v.seed)
	}
	if set["gamma"] {
		sc.Config.Gamma = v.gamma
	}
	if name == "" || set["mode"] {
		switch v.mode {
		case "centralized":
			sc.Config.Mode = laacad.Centralized
		case "localized":
			sc.Config.Mode = laacad.Localized
		default:
			return sc, fmt.Errorf("unknown mode %q", v.mode)
		}
	}
	return sc, nil
}

// printRegistry lists the registered scenarios, regions and placements.
func printRegistry(w *os.File) {
	fmt.Fprintln(w, "Scenarios:")
	for _, sc := range laacad.Scenarios() {
		kind := "rounds"
		if sc.Async {
			kind = "async"
		}
		fmt.Fprintf(w, "  %-11s %-7s %s\n", sc.Name, kind, sc.Description)
	}
	fmt.Fprintf(w, "Regions:    %v\n", laacad.RegionNames())
	fmt.Fprintf(w, "Placements: %v\n", laacad.PlacementNames())
}
