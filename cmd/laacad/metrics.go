package main

import (
	"net"
	"net/http"

	"laacad"
)

// serveMetrics exposes reg over HTTP at /metrics (and /) on addr, returning
// the bound address (useful with a ":0" port) and a shutdown function. The
// registry's gauges read true atomics, so scraping a run mid-round returns
// exact, monotone counters — the point of the deferred-charge ledger.
func serveMetrics(addr string, reg *laacad.MetricsRegistry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/", reg)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return ln.Addr().String(), func() { srv.Close() }, nil
}
