package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"laacad"
)

func TestServeMetricsEndpoint(t *testing.T) {
	reg := &laacad.MetricsRegistry{}
	reg.Counter("engine.rounds").Set(11)
	addr, shutdown, err := serveMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if snap["engine.rounds"] != 11 {
		t.Errorf("engine.rounds = %d, want 11", snap["engine.rounds"])
	}
}

func TestRunWithMetricsFlag(t *testing.T) {
	err := run([]string{
		"-n", "12", "-k", "1", "-rounds", "40", "-eps", "0.005",
		"-mode", "localized", "-gamma", "0.35", "-grid", "20", "-plot=false",
		"-metrics", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("run with -metrics: %v", err)
	}
}

func TestRunRejectsBadMetricsAddr(t *testing.T) {
	if err := run([]string{"-metrics", "not-an-address:-1"}); err == nil {
		t.Error("unusable metrics address should fail")
	}
}
