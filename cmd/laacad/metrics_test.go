package main

import "testing"

// The -metrics wiring itself (listener, mux, JSON shape) is covered in
// internal/metrics; these tests pin the flag end-to-end through run().

func TestRunWithMetricsFlag(t *testing.T) {
	err := run([]string{
		"-n", "12", "-k", "1", "-rounds", "40", "-eps", "0.005",
		"-mode", "localized", "-gamma", "0.35", "-grid", "20", "-plot=false",
		"-metrics", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("run with -metrics: %v", err)
	}
}

func TestRunRejectsBadMetricsAddr(t *testing.T) {
	if err := run([]string{"-metrics", "not-an-address:-1"}); err == nil {
		t.Error("unusable metrics address should fail")
	}
}
