package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"laacad"
)

func TestRunSmallDeployment(t *testing.T) {
	err := run([]string{
		"-n", "12", "-k", "1", "-rounds", "60", "-eps", "0.003",
		"-region", "square", "-start", "uniform", "-grid", "30", "-plot=false",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunLocalizedMode(t *testing.T) {
	err := run([]string{
		"-n", "12", "-k", "1", "-rounds", "40", "-eps", "0.005",
		"-mode", "localized", "-gamma", "0.35", "-grid", "20", "-plot=false",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCornerStartWithPlot(t *testing.T) {
	err := run([]string{
		"-n", "10", "-k", "1", "-rounds", "40", "-eps", "0.005",
		"-start", "corner", "-grid", "20",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRegisteredScenarioWithOverrides(t *testing.T) {
	// The registered "uniform" scenario shrunk to test size via overrides.
	err := run([]string{
		"-scenario", "uniform", "-n", "12", "-k", "1", "-rounds", "60",
		"-eps", "0.003", "-grid", "20", "-plot=false",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-region", "mars"},
		{"-start", "sideways"},
		{"-mode", "psychic"},
		{"-k", "0"},
		{"-scenario", "nope"},
		{"-scenario", "async"}, // event-driven: not runnable by this CLI
		{"-resume", "does-not-exist.json"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestListScenarios(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunResumeFromCheckpoint(t *testing.T) {
	// Interrupt a run via the library, write the checkpoint, and let the
	// CLI finish it.
	sc := laacad.Scenario{Region: "square", Placement: "uniform", N: 10}
	sc.Config = laacad.DefaultConfig(1)
	sc.Config.Epsilon = 3e-3
	sc.Config.MaxRounds = 60
	sc.Config.Seed = 5

	ctx, cancel := context.WithCancel(context.Background())
	r, err := laacad.NewRunner(sc, laacad.WithObserver(func(_ laacad.Runner, st laacad.RoundStats) error {
		if st.Round == 3 {
			cancel()
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("expected the run to be cancelled")
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "resume.json")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-resume", path, "-grid", "20", "-plot=false"}); err != nil {
		t.Fatalf("resume run: %v", err)
	}
}

func TestRunSavesSnapshot(t *testing.T) {
	path := t.TempDir() + "/deploy.json"
	err := run([]string{
		"-n", "8", "-k", "1", "-rounds", "30", "-eps", "0.005",
		"-grid", "20", "-plot=false", "-save", path,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("snapshot not written: %v", err)
	}
}
