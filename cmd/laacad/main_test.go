package main

import (
	"os"
	"testing"
)

func TestRunSmallDeployment(t *testing.T) {
	err := run([]string{
		"-n", "12", "-k", "1", "-rounds", "60", "-eps", "0.003",
		"-region", "square", "-start", "uniform", "-grid", "30", "-plot=false",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunLocalizedMode(t *testing.T) {
	err := run([]string{
		"-n", "12", "-k", "1", "-rounds", "40", "-eps", "0.005",
		"-mode", "localized", "-gamma", "0.35", "-grid", "20", "-plot=false",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCornerStartWithPlot(t *testing.T) {
	err := run([]string{
		"-n", "10", "-k", "1", "-rounds", "40", "-eps", "0.005",
		"-start", "corner", "-grid", "20",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-region", "mars"},
		{"-start", "sideways"},
		{"-mode", "psychic"},
		{"-k", "0"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestPickRegion(t *testing.T) {
	for _, name := range []string{"square", "lshape", "cross", "obstacle1", "obstacles2"} {
		reg, err := pickRegion(name)
		if err != nil || reg == nil {
			t.Errorf("pickRegion(%q) failed: %v", name, err)
		}
	}
	if _, err := pickRegion("nope"); err == nil {
		t.Error("unknown region should error")
	}
}

func TestRunSavesSnapshot(t *testing.T) {
	path := t.TempDir() + "/deploy.json"
	err := run([]string{
		"-n", "8", "-k", "1", "-rounds", "30", "-eps", "0.005",
		"-grid", "20", "-plot=false", "-save", path,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("snapshot not written: %v", err)
	}
}
