package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOneExperimentQuick(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-quick"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "ablation-kvor", "-quick", "-outdir", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-kvor.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestProgressFileSkipsCompleted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.json")
	if err := os.WriteFile(path, []byte(`{"completed":["fig1"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// fig1 is recorded as done: the run must skip it and finish instantly.
	if err := run([]string{"-run", "fig1", "-quick", "-progress", path}); err != nil {
		t.Fatalf("run with progress: %v", err)
	}
	// Nothing ran, so the progress file must survive for the real rerun.
	if _, err := os.Stat(path); err != nil {
		t.Errorf("progress file should remain when work was skipped: %v", err)
	}
}

func TestProgressFileClearedAfterFullRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.json")
	if err := run([]string{"-run", "fig1", "-quick", "-progress", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("progress file should be cleared after a completed sweep (err=%v)", err)
	}
}

func TestCorruptProgressFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "fig1", "-quick", "-progress", path}); err == nil {
		t.Error("corrupt progress file should error")
	}
}
