package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOneExperimentQuick(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-quick"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "ablation-kvor", "-quick", "-outdir", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ablation-kvor.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}
