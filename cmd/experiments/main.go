// Command experiments regenerates the paper's tables and figures (and the
// DESIGN.md ablations) from scratch.
//
// Usage:
//
//	experiments -run all                  # everything, full paper sizes
//	experiments -run fig6 -quick          # one artifact, reduced sizes
//	experiments -run table1 -outdir out/  # also write CSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"laacad/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		name    = fs.String("run", "all", "experiment to run (or 'all'); one of: "+fmt.Sprint(experiment.Names()))
		quick   = fs.Bool("quick", false, "reduced workload sizes")
		seed    = fs.Int64("seed", 1, "random seed")
		outdir  = fs.String("outdir", "", "directory for CSV outputs (optional)")
		workers = fs.Int("workers", -1, "goroutines running independent trials (0 = serial, -1 = all CPUs); results are identical for any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiment.RunConfig{Quick: *quick, Seed: *seed, Workers: *workers}

	var outs []*experiment.Output
	if *name == "all" {
		all, err := experiment.RunAll(cfg)
		if err != nil {
			return err
		}
		outs = all
	} else {
		out, err := experiment.Run(*name, cfg)
		if err != nil {
			return err
		}
		outs = append(outs, out)
	}

	failedTotal := 0
	for _, o := range outs {
		fmt.Println(o.Summary())
		failedTotal += len(o.Failed())
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				return err
			}
			for fname, content := range o.CSV {
				path := filepath.Join(*outdir, fname)
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", path)
			}
		}
	}
	if failedTotal > 0 {
		return fmt.Errorf("%d shape checks failed", failedTotal)
	}
	fmt.Printf("all shape checks passed across %d experiments\n", len(outs))
	return nil
}
