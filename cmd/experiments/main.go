// Command experiments regenerates the paper's tables and figures (and the
// DESIGN.md ablations) from scratch.
//
// SIGINT/SIGTERM aborts the sweep cleanly: in-flight deployments stop at
// the next round, and with -progress a resume file records the experiments
// already completed so a rerun skips them.
//
// Usage:
//
//	experiments -run all                  # everything, full paper sizes
//	experiments -run fig6 -quick          # one artifact, reduced sizes
//	experiments -run table1 -outdir out/  # also write CSV series
//	experiments -run all -progress exp-progress.json   # interruptible/resumable
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"laacad/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		name     = fs.String("run", "all", "experiment to run (or 'all'); one of: "+fmt.Sprint(experiment.Names()))
		quick    = fs.Bool("quick", false, "reduced workload sizes")
		seed     = fs.Int64("seed", 1, "random seed")
		outdir   = fs.String("outdir", "", "directory for CSV outputs (optional)")
		workers  = fs.Int("workers", -1, "goroutines running independent trials and coverage verification (0 = serial, -1 = all CPUs); results are identical for any value")
		progress = fs.String("progress", "", "progress file: completed experiments are recorded here on interrupt and skipped on rerun")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := experiment.RunConfig{Quick: *quick, Seed: *seed, Workers: *workers, Ctx: ctx}

	var names []string
	if *name == "all" {
		names = experiment.Names()
	} else {
		names = []string{*name}
	}
	done := map[string]bool{}
	if *progress != "" {
		var err error
		if done, err = readProgress(*progress); err != nil {
			return err
		}
	}

	failedTotal, ran := 0, 0
	var completed []string
	for n := range done {
		completed = append(completed, n)
	}
	for _, n := range names {
		if done[n] {
			fmt.Printf("skipping %s (already completed per %s)\n", n, *progress)
			continue
		}
		if err := ctx.Err(); err != nil {
			return interrupted(*progress, completed, err)
		}
		out, err := experiment.Run(n, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return interrupted(*progress, completed, err)
			}
			return err
		}
		ran++
		completed = append(completed, n)
		fmt.Println(out.Summary())
		failedTotal += len(out.Failed())
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				return err
			}
			for fname, content := range out.CSV {
				path := filepath.Join(*outdir, fname)
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", path)
			}
		}
	}
	if failedTotal > 0 {
		return fmt.Errorf("%d shape checks failed", failedTotal)
	}
	if *progress != "" && ran > 0 {
		// A completed sweep clears the progress file: the next invocation
		// starts fresh.
		if err := os.Remove(*progress); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	fmt.Printf("all shape checks passed across %d experiments (%d skipped)\n", ran, len(names)-ran)
	return nil
}

// progressFile is the on-disk resume record for an interrupted sweep.
type progressFile struct {
	Completed []string `json:"completed"`
}

func readProgress(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	var p progressFile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("progress file %s: %w", path, err)
	}
	done := make(map[string]bool, len(p.Completed))
	for _, n := range p.Completed {
		done[n] = true
	}
	return done, nil
}

// interrupted writes the resume record (when -progress is set) and reports
// the interruption.
func interrupted(path string, completed []string, cause error) error {
	if path == "" {
		return fmt.Errorf("interrupted after %d experiments: %w", len(completed), cause)
	}
	data, err := json.MarshalIndent(progressFile{Completed: completed}, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("interrupted, and writing %s failed: %w", path, err)
	}
	return fmt.Errorf("interrupted after %d experiments; rerun with -progress %s to resume: %w",
		len(completed), path, cause)
}
