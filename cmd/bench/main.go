// Command bench runs the repository's benchmark suite with -benchmem and
// reduces the output to a machine-readable BENCH_<date>.json — the tracked
// performance trajectory of the project. Committing the JSON after perf work
// gives every future PR a baseline to be judged against, and the CI
// benchmark job uploads it as an artifact on every push.
//
// Usage:
//
//	go run ./cmd/bench                         # run all benchmarks, write BENCH_<today>.json
//	go run ./cmd/bench -bench 'StepParallel'   # subset
//	go run ./cmd/bench -mode localized         # one engine mode's suite only
//	go run ./cmd/bench -label after-kernel     # annotate the snapshot
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/bench -stdin -out out.json
//
// The -stdin mode only reduces (no nested `go test` invocation), which is
// what CI uses so the benchmarks run exactly once. The -mode filter maps an
// execution order / engine mode (synchronous, sequential, localized) to the
// -bench pattern of the benchmarks exercising it, so a mode-specific perf
// iteration re-runs only its own sweep instead of the whole suite.
//
// The compare subcommand
//
//	go run ./cmd/bench compare old.json new.json
//
// prints per-benchmark time and allocation deltas between two snapshots —
// the replacement for eyeballing artifact JSONs. With -max-regress it exits
// non-zero when a common benchmark slowed down by more than the given
// percentage (left off in CI: shared runners are too noisy to gate
// wall-times there; the deltas are printed into the job log instead).
// -max-alloc-regress gates allocs/op the same way — allocation counts are
// deterministic, so CI enforces that one as a blocking check.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Benchmark is one reduced benchmark result.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped, so
	// snapshots from machines with different core counts line up.
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Procs is the GOMAXPROCS value the row ran under — the numeric suffix
	// go test appends to the name. It disambiguates the rows of a -cpus
	// sweep, where the same benchmark appears once per requested width.
	Procs int `json:"procs,omitempty"`
}

// Snapshot is the file schema of a BENCH_<date>.json.
type Snapshot struct {
	Date      string `json:"date"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// GoMaxProcs is the machine parallelism of the run (runtime
	// GOMAXPROCS), recorded so wall-times from differently sized runners
	// are never compared as if they were peers.
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	Benchtime  string      `json:"benchtime,omitempty"`
	Cpus       string      `json:"cpus,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
//
//	BenchmarkStepParallel/n=250/workers=1-8   3   5887147 ns/op   224802 B/op   704 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// procSuffix strips the trailing -<GOMAXPROCS> go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := runCompare(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	var (
		bench     = flag.String("bench", ".", "benchmark pattern passed to go test -bench")
		mode      = flag.String("mode", "", "engine-mode sweep: one of "+modeNames()+" (translates to a -bench pattern, overriding -bench)")
		benchtime = flag.String("benchtime", "3x", "go test -benchtime value (Nx for fixed iterations)")
		pkg       = flag.String("pkg", ".", "package pattern to benchmark")
		short     = flag.Bool("short", true, "pass -short to go test (skips the slowest paths)")
		label     = flag.String("label", "", "free-form annotation stored in the snapshot")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		stdin     = flag.Bool("stdin", false, "reduce go test output from stdin instead of running go test")
		cpus      = flag.String("cpus", "", "comma-separated GOMAXPROCS sweep passed to go test -cpu (e.g. 1,2,4); each benchmark runs once per width")
	)
	flag.Parse()
	if *mode != "" {
		pat, err := modePattern(*mode)
		if err != nil {
			fatal(err)
		}
		*bench = pat
	}

	var raw io.Reader
	if *stdin {
		raw = os.Stdin
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
		if *cpus != "" {
			args = append(args, "-cpu", *cpus)
		}
		if *short {
			args = append(args, "-short")
		}
		args = append(args, *pkg)
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		var buf bytes.Buffer
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr) // stream progress while capturing
		if err := cmd.Run(); err != nil {
			// Fail before writing anything: a snapshot reduced from a
			// partially failed run must never look like a usable baseline.
			fatal(fmt.Errorf("go test: %w", err))
		}
		raw = &buf
	}

	snap, err := Reduce(raw)
	if err != nil {
		fatal(err)
	}
	snap.Date = time.Now().UTC().Format("2006-01-02")
	snap.Label = *label
	snap.GoVersion = runtime.Version()
	snap.GoMaxProcs = runtime.GOMAXPROCS(0)
	if !*stdin {
		snap.Benchtime = *benchtime
		snap.Cpus = *cpus
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(snap.Benchmarks), path)
}

// modeBench maps an engine execution order / mode to the -bench pattern of
// its benchmark suite, so a mode-specific sweep (`bench -mode localized`)
// re-runs only the cells that exercise that code path instead of the whole
// suite. The keys mirror the Mode/UpdateOrder stringers in internal/core.
var modeBench = map[string]string{
	// Synchronous Centralized rounds: the parallel lock-step engine plus the
	// few-movers scale surface.
	"synchronous": "StepParallel|ScaleStepFewMovers|Fig6Convergence|Table1MinNode2Coverage|Table2LensComparison",
	// Sequential (Gauss–Seidel) rounds: the level-scheduled parallel sweep,
	// including its mover-heavy layering surface and its hardest accounting
	// cell (Localized escrow under waves).
	"sequential": "SeqStepFewMovers|SeqStepActive|SeqStepLevels|SeqLocalizedFewMovers",
	// Localized Algorithm 2: the message-faithful cached rounds, the
	// expanding-ring probe, and the incremental boundary detector.
	"localized": "ScaleLocalizedFewMovers|Fig2ExpandingRing|AblationLocalizedVsCentralized|SeqLocalizedFewMovers|BoundaryDetector",
}

// modePattern resolves a -mode name to its -bench pattern.
func modePattern(mode string) (string, error) {
	pat, ok := modeBench[mode]
	if !ok {
		return "", fmt.Errorf("unknown -mode %q (have %s)", mode, modeNames())
	}
	return pat, nil
}

func modeNames() string {
	names := make([]string, 0, len(modeBench))
	for k := range modeBench {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Reduce parses `go test -bench -benchmem` output into a Snapshot (without
// the date/label/version fields, which the caller stamps).
func Reduce(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: procSuffix.ReplaceAllString(m[1], "")}
		if s := procSuffix.FindString(m[1]); s != "" {
			b.Procs, _ = strconv.Atoi(s[1:])
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("bench: parsing %q: %w", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("bench: parsing %q: %w", line, err)
		}
		if m[4] != "" {
			bytes, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: parsing %q: %w", line, err)
			}
			b.BytesPerOp = int64(bytes)
		}
		if m[5] != "" {
			if b.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("bench: parsing %q: %w", line, err)
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// runCompare implements `bench compare old.json new.json`: a per-benchmark
// delta table over the union of both snapshots, with a geometric-mean
// speedup over the common set.
func runCompare(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench compare", flag.ContinueOnError)
	maxRegress := fs.Float64("max-regress", 0,
		"fail when any common benchmark's ns/op regressed by more than this percentage (0 disables)")
	maxAllocRegress := fs.Float64("max-alloc-regress", 0,
		"fail when any common benchmark's allocs/op regressed by more than this percentage (0 disables); allocation counts are deterministic, so this gate holds even on noisy shared runners")
	allocGrace := fs.Int64("alloc-grace", 0,
		"ignore alloc regressions whose absolute delta is at most this many allocs/op; near-zero-alloc benchmarks pick up a handful of runtime allocations (goroutine wakeups, stack growth) that read as huge percentages")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: bench compare [-max-regress pct] [-max-alloc-regress pct] [-alloc-grace n] old.json new.json")
	}
	oldSnap, err := readSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	// A name appearing at more than one GOMAXPROCS width in either snapshot
	// is a -cpus sweep: qualify its key with the width so the rows do not
	// shadow each other. All other names stay bare, keeping snapshots from
	// differently sized machines comparable.
	multi := sweepNames(oldSnap)
	for name, v := range sweepNames(newSnap) {
		if v {
			multi[name] = true
		}
	}
	key := func(b Benchmark) string {
		if multi[b.Name] {
			return fmt.Sprintf("%s/procs=%d", b.Name, b.Procs)
		}
		return b.Name
	}
	oldBy := make(map[string]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[key(b)] = b
	}
	newBy := make(map[string]Benchmark, len(newSnap.Benchmarks))
	for _, b := range newSnap.Benchmarks {
		newBy[key(b)] = b
	}

	fmt.Fprintf(w, "old: %s (%s, %s)\nnew: %s (%s, %s)\n\n",
		fs.Arg(0), oldSnap.Date, oldSnap.Label, fs.Arg(1), newSnap.Date, newSnap.Label)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tΔtime\told allocs\tnew allocs\tΔallocs\t")
	var worst, worstAlloc float64
	var worstName, worstAllocName string
	logSum, common := 0.0, 0
	// New-snapshot order first (the trajectory being judged), then
	// old-only rows.
	for _, nb := range newSnap.Benchmarks {
		k := key(nb)
		ob, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(tw, "%s\t—\t%.0f\tnew\t—\t%d\tnew\t\n", strings.TrimPrefix(k, "Benchmark"), nb.NsPerOp, nb.AllocsPerOp)
			continue
		}
		dt := pctDelta(ob.NsPerOp, nb.NsPerOp)
		da := pctDelta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\t\n",
			strings.TrimPrefix(k, "Benchmark"), ob.NsPerOp, nb.NsPerOp, fmtPct(dt),
			ob.AllocsPerOp, nb.AllocsPerOp, fmtPct(da))
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			logSum += math.Log(ob.NsPerOp / nb.NsPerOp)
			common++
		}
		if dt > worst {
			worst, worstName = dt, k
		}
		if da > worstAlloc && nb.AllocsPerOp-ob.AllocsPerOp > *allocGrace {
			worstAlloc, worstAllocName = da, k
		}
	}
	for _, ob := range oldSnap.Benchmarks {
		if k := key(ob); newBy[k].Name == "" {
			fmt.Fprintf(tw, "%s\t%.0f\t—\tgone\t%d\t—\tgone\t\n", strings.TrimPrefix(k, "Benchmark"), ob.NsPerOp, ob.AllocsPerOp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if common > 0 {
		fmt.Fprintf(w, "\ngeomean speedup over %d common benchmarks: %.2f×\n",
			common, math.Exp(logSum/float64(common)))
	}
	if *maxRegress > 0 && worst > *maxRegress {
		return fmt.Errorf("%s regressed %.1f%% (> %.1f%% allowed)", worstName, worst, *maxRegress)
	}
	if *maxAllocRegress > 0 && worstAlloc > *maxAllocRegress {
		return fmt.Errorf("%s allocs regressed %.1f%% (> %.1f%% allowed)",
			worstAllocName, worstAlloc, *maxAllocRegress)
	}
	return nil
}

// sweepNames reports which benchmark names appear at more than one
// GOMAXPROCS width within the snapshot — the signature of a -cpus sweep.
func sweepNames(s *Snapshot) map[string]bool {
	firstProcs := make(map[string]int, len(s.Benchmarks))
	multi := make(map[string]bool)
	for _, b := range s.Benchmarks {
		if p, ok := firstProcs[b.Name]; ok {
			if p != b.Procs {
				multi[b.Name] = true
			}
			continue
		}
		firstProcs[b.Name] = b.Procs
	}
	return multi
}

// pctDelta returns the relative change from old to new in percent (positive
// = regression for cost metrics). A zero old value yields 0: there is no
// meaningful baseline to regress from.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fmtPct(d float64) string {
	return fmt.Sprintf("%+.1f%%", d)
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
