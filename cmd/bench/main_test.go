package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: laacad
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig5Deployment 	       3	 103716472 ns/op	 5360136 B/op	   23017 allocs/op
BenchmarkStepParallel/n=250/workers=1-8         	       3	   4839431 ns/op	  224802 B/op	     704 allocs/op
BenchmarkWelzl-8                                	       3	      3048 ns/op	    1024 B/op	       1 allocs/op
BenchmarkNoMem 	     100	      50.5 ns/op
PASS
ok  	laacad	0.528s
`

func TestReduce(t *testing.T) {
	snap, err := Reduce(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" {
		t.Errorf("platform = %s/%s", snap.GOOS, snap.GOARCH)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("cpu = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(snap.Benchmarks))
	}
	fig5 := snap.Benchmarks[0]
	if fig5.Name != "BenchmarkFig5Deployment" || fig5.Iterations != 3 ||
		fig5.NsPerOp != 103716472 || fig5.BytesPerOp != 5360136 || fig5.AllocsPerOp != 23017 {
		t.Errorf("fig5 parsed as %+v", fig5)
	}
	// The -GOMAXPROCS suffix is stripped so snapshots from different
	// machines line up, but sub-benchmark path components survive and the
	// width itself is preserved in Procs.
	if got := snap.Benchmarks[1].Name; got != "BenchmarkStepParallel/n=250/workers=1" {
		t.Errorf("sub-benchmark name = %q", got)
	}
	if got := snap.Benchmarks[1].Procs; got != 8 {
		t.Errorf("procs = %d, want 8", got)
	}
	if got := snap.Benchmarks[2].Name; got != "BenchmarkWelzl" {
		t.Errorf("suffix not stripped: %q", got)
	}
	if got := snap.Benchmarks[0].Procs; got != 0 {
		t.Errorf("suffix-less row has procs = %d, want 0", got)
	}
	// Rows without -benchmem columns still parse.
	if b := snap.Benchmarks[3]; b.NsPerOp != 50.5 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("no-mem row parsed as %+v", b)
	}
}

// writeSnapshot is a test helper materializing a snapshot JSON on disk.
func writeSnapshot(t *testing.T, name string, snap Snapshot) string {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsDeltas(t *testing.T) {
	oldPath := writeSnapshot(t, "old.json", Snapshot{
		Date: "2026-07-01", Label: "before",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA/n=1000", NsPerOp: 1000, AllocsPerOp: 100},
			{Name: "BenchmarkGone", NsPerOp: 5, AllocsPerOp: 1},
		},
	})
	newPath := writeSnapshot(t, "new.json", Snapshot{
		Date: "2026-07-26", Label: "after",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA/n=1000", NsPerOp: 250, AllocsPerOp: 10},
			{Name: "BenchmarkFresh", NsPerOp: 7, AllocsPerOp: 2},
		},
	})
	var out strings.Builder
	if err := runCompare([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"A/n=1000", "-75.0%", "-90.0%", "new", "gone", "geomean speedup over 1 common benchmarks: 4.00×"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareMaxRegressGate(t *testing.T) {
	oldPath := writeSnapshot(t, "old.json", Snapshot{
		Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 100}},
	})
	newPath := writeSnapshot(t, "new.json", Snapshot{
		Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 180}},
	})
	var out strings.Builder
	if err := runCompare([]string{oldPath, newPath}, &out); err != nil {
		t.Errorf("without -max-regress a regression must only be reported, got %v", err)
	}
	if err := runCompare([]string{"-max-regress", "50", oldPath, newPath}, &out); err == nil {
		t.Error("an 80%% regression must trip -max-regress 50")
	}
	if err := runCompare([]string{"-max-regress", "90", oldPath, newPath}, &out); err != nil {
		t.Errorf("an 80%% regression must pass -max-regress 90, got %v", err)
	}
}

func TestCompareMaxAllocRegressGate(t *testing.T) {
	oldPath := writeSnapshot(t, "old.json", Snapshot{
		Benchmarks: []Benchmark{
			{Name: "BenchmarkTiny", NsPerOp: 100, AllocsPerOp: 5},
			{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 1000},
		},
	})
	newPath := writeSnapshot(t, "new.json", Snapshot{
		Benchmarks: []Benchmark{
			{Name: "BenchmarkTiny", NsPerOp: 100, AllocsPerOp: 14}, // +180%, +9 allocs
			{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 1000},
		},
	})
	var out strings.Builder
	if err := runCompare([]string{"-max-alloc-regress", "10", oldPath, newPath}, &out); err == nil {
		t.Error("a 180%% alloc regression must trip -max-alloc-regress 10")
	}
	// The grace floor absorbs small absolute deltas on near-zero-alloc rows.
	if err := runCompare([]string{"-max-alloc-regress", "10", "-alloc-grace", "64", oldPath, newPath}, &out); err != nil {
		t.Errorf("a 9-alloc delta must pass -alloc-grace 64, got %v", err)
	}
	// A hot-path regression clears any reasonable grace and still fails.
	hotPath := writeSnapshot(t, "hot.json", Snapshot{
		Benchmarks: []Benchmark{
			{Name: "BenchmarkTiny", NsPerOp: 100, AllocsPerOp: 5},
			{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 2000},
		},
	})
	if err := runCompare([]string{"-max-alloc-regress", "10", "-alloc-grace", "64", oldPath, hotPath}, &out); err == nil {
		t.Error("a 1000-alloc regression must trip the gate despite -alloc-grace 64")
	}
}

// A -cpus sweep emits the same benchmark once per width; every row must
// survive reduction (same Name, distinct Procs).
func TestReduceCpusSweep(t *testing.T) {
	const sweep = `BenchmarkSeqLocalizedFewMovers/n=1000     	       3	 8000000 ns/op	  100 B/op	  10 allocs/op
BenchmarkSeqLocalizedFewMovers/n=1000-2   	       3	 5000000 ns/op	  100 B/op	  10 allocs/op
BenchmarkSeqLocalizedFewMovers/n=1000-4   	       3	 3000000 ns/op	  100 B/op	  10 allocs/op
`
	snap, err := Reduce(strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d rows, want 3", len(snap.Benchmarks))
	}
	wantProcs := []int{0, 2, 4} // go test omits the suffix at width 1
	for i, b := range snap.Benchmarks {
		if b.Name != "BenchmarkSeqLocalizedFewMovers/n=1000" {
			t.Errorf("row %d name = %q", i, b.Name)
		}
		if b.Procs != wantProcs[i] {
			t.Errorf("row %d procs = %d, want %d", i, b.Procs, wantProcs[i])
		}
	}
}

// Sweep rows must not shadow each other in compare: when a name appears at
// several widths, the keys are procs-qualified, so all rows participate.
func TestCompareCpusSweepKeys(t *testing.T) {
	oldPath := writeSnapshot(t, "old.json", Snapshot{
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 1000, Procs: 1},
			{Name: "BenchmarkA", NsPerOp: 600, Procs: 4},
		},
	})
	newPath := writeSnapshot(t, "new.json", Snapshot{
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 500, Procs: 1},
			{Name: "BenchmarkA", NsPerOp: 200, Procs: 4},
		},
	})
	var out strings.Builder
	if err := runCompare([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"A/procs=1", "A/procs=4", "-50.0%", "geomean speedup over 2 common benchmarks"} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareBadArgs(t *testing.T) {
	var out strings.Builder
	if err := runCompare([]string{"only-one.json"}, &out); err == nil {
		t.Error("compare with one file must error")
	}
	if err := runCompare([]string{"nope1.json", "nope2.json"}, &out); err == nil {
		t.Error("compare with missing files must error")
	}
}

func TestReduceEmpty(t *testing.T) {
	snap, err := Reduce(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Errorf("expected no benchmarks, got %d", len(snap.Benchmarks))
	}
}

func TestModePattern(t *testing.T) {
	for mode, wantPiece := range map[string]string{
		"sequential":  "SeqStepFewMovers",
		"localized":   "ScaleLocalizedFewMovers",
		"synchronous": "StepParallel",
	} {
		pat, err := modePattern(mode)
		if err != nil {
			t.Fatalf("modePattern(%q): %v", mode, err)
		}
		if !strings.Contains(pat, wantPiece) {
			t.Errorf("modePattern(%q) = %q, missing %q", mode, pat, wantPiece)
		}
	}
	if _, err := modePattern("bogus"); err == nil {
		t.Error("unknown mode must error")
	} else if !strings.Contains(err.Error(), "localized") {
		t.Errorf("error should list valid modes, got %v", err)
	}
}

// Every benchmark name a -mode pattern routes to must exist in the suite, so
// the filter cannot silently rot as benchmarks are renamed.
func TestModePatternsMatchSuite(t *testing.T) {
	data, err := os.ReadFile("../../bench_test.go")
	if err != nil {
		t.Fatal(err)
	}
	suite := string(data)
	for mode, pat := range modeBench {
		for _, piece := range strings.Split(pat, "|") {
			if !strings.Contains(suite, "func Benchmark"+piece) {
				t.Errorf("mode %q routes to %q, which is not a benchmark in bench_test.go", mode, piece)
			}
		}
	}
}
