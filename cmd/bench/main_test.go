package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: laacad
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig5Deployment 	       3	 103716472 ns/op	 5360136 B/op	   23017 allocs/op
BenchmarkStepParallel/n=250/workers=1-8         	       3	   4839431 ns/op	  224802 B/op	     704 allocs/op
BenchmarkWelzl-8                                	       3	      3048 ns/op	    1024 B/op	       1 allocs/op
BenchmarkNoMem 	     100	      50.5 ns/op
PASS
ok  	laacad	0.528s
`

func TestReduce(t *testing.T) {
	snap, err := Reduce(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" {
		t.Errorf("platform = %s/%s", snap.GOOS, snap.GOARCH)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("cpu = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(snap.Benchmarks))
	}
	fig5 := snap.Benchmarks[0]
	if fig5.Name != "BenchmarkFig5Deployment" || fig5.Iterations != 3 ||
		fig5.NsPerOp != 103716472 || fig5.BytesPerOp != 5360136 || fig5.AllocsPerOp != 23017 {
		t.Errorf("fig5 parsed as %+v", fig5)
	}
	// The -GOMAXPROCS suffix is stripped so snapshots from different
	// machines line up, but sub-benchmark path components survive.
	if got := snap.Benchmarks[1].Name; got != "BenchmarkStepParallel/n=250/workers=1" {
		t.Errorf("sub-benchmark name = %q", got)
	}
	if got := snap.Benchmarks[2].Name; got != "BenchmarkWelzl" {
		t.Errorf("suffix not stripped: %q", got)
	}
	// Rows without -benchmem columns still parse.
	if b := snap.Benchmarks[3]; b.NsPerOp != 50.5 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("no-mem row parsed as %+v", b)
	}
}

func TestReduceEmpty(t *testing.T) {
	snap, err := Reduce(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Errorf("expected no benchmarks, got %d", len(snap.Benchmarks))
	}
}
