package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"laacad/internal/core"
	"laacad/internal/scenario"
	"laacad/internal/service"
)

// syncBuf is a goroutine-safe writer the serve goroutine logs into.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var servingRe = regexp.MustCompile(`serving at http://([^ ]+) `)

// startDaemon runs `laacadd serve` in a goroutine and waits for its bound
// address. The returned stop function delivers SIGTERM (the real shutdown
// path: drain, checkpoint, spool) and waits for serve to exit.
func startDaemon(t *testing.T, spool string) (addr string, stop func()) {
	t.Helper()
	out := &syncBuf{}
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"serve", "-addr", "127.0.0.1:0", "-spool", spool, "-pool", "1"}, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not start; output:\n%s", out.String())
		}
		select {
		case err := <-errCh:
			t.Fatalf("serve exited early: %v\n%s", err, out.String())
		default:
		}
		if m := servingRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		}
		time.Sleep(2 * time.Millisecond)
	}
	return addr, func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatalf("signalling daemon: %v", err)
		}
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("serve: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon did not drain; output:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "jobs spooled for resume") {
			t.Errorf("shutdown message missing; output:\n%s", out.String())
		}
	}
}

// smokeScenario is small and non-converging (exactly 40 rounds), in
// Localized mode so message accounting is part of the bit-identity check.
func smokeScenario() scenario.Scenario {
	cfg := core.DefaultConfig(1)
	cfg.Epsilon = 1e-12
	cfg.MaxRounds = 40
	cfg.Mode = core.Localized
	cfg.Gamma = 0.6
	cfg.Seed = 9
	return scenario.Scenario{Region: "square", Placement: "uniform", N: 12, Config: cfg}
}

// TestDaemonSmoke is the end-to-end daemon exercise through the real
// subcommands over real HTTP: submit a paced job, SIGTERM the daemon
// mid-run (graceful drain: checkpoint + spool), restart it over the same
// spool, watch the job resume and finish, and verify the result is
// bit-identical to running the scenario uninterrupted in-process.
func TestDaemonSmoke(t *testing.T) {
	spool := t.TempDir()
	sc := smokeScenario()

	// Reference: the same scenario, uninterrupted.
	r, err := scenario.NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	specPath := filepath.Join(t.TempDir(), "job.json")
	spec := service.JobSpec{Scenario: sc, PaceMS: 10}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	addr, stop := startDaemon(t, spool)

	var out bytes.Buffer
	if err := run([]string{"submit", "-addr", addr, "-file", specPath}, &out); err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := strings.Fields(out.String())[0]
	if !strings.HasPrefix(id, "job-") {
		t.Fatalf("submit output %q has no job id", out.String())
	}

	// Wait until the run is past a couple of rounds, then SIGTERM mid-run.
	client := &service.Client{BaseURL: "http://" + addr}
	waitJob(t, client, id, "running past round 2", func(st *service.JobStatus) bool { return st.Rounds >= 2 })
	stop()

	// The journal holds the checkpointed job.
	jobs, err := service.LoadJobs(spool)
	if err != nil {
		t.Fatalf("replaying journal: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("journal holds %d jobs, want exactly %s", len(jobs), id)
	}
	if job := jobs[0]; job.State != service.StatePreempted || job.Checkpoint == nil {
		t.Fatalf("journaled job state=%s checkpoint=%v, want preempted with checkpoint", job.State, job.Checkpoint != nil)
	}

	// Restart over the same spool: the job resumes and finishes.
	addr2, stop2 := startDaemon(t, spool)
	defer stop2()
	client2 := &service.Client{BaseURL: "http://" + addr2}
	waitJob(t, client2, id, "job done after restart", func(st *service.JobStatus) bool {
		return st.State == service.StateDone
	})

	// `laacadd watch` replays the full stream (resumable across restarts).
	out.Reset()
	if err := run([]string{"watch", "-addr", addr2, id}, &out); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if c := strings.Count(out.String(), "round"); c < 40 {
		t.Errorf("watch replayed %d round lines, want >= 40:\n%s", c, out.String())
	}
	if !strings.Contains(out.String(), "→ done") {
		t.Errorf("watch did not reach the terminal state:\n%s", out.String())
	}

	// `laacadd result` returns the bit-identical deployment.
	out.Reset()
	if err := run([]string{"result", "-addr", addr2, id}, &out); err != nil {
		t.Fatalf("result: %v", err)
	}
	var res core.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if !reflect.DeepEqual(&res, solo) {
		t.Errorf("daemon result differs from uninterrupted in-process run (rounds=%d/%d msgs=%d/%d)",
			res.Rounds, solo.Rounds, res.Messages, solo.Messages)
	}

	// status and cancel round out the surface (cancel is idempotent here).
	out.Reset()
	if err := run([]string{"status", "-addr", addr2}, &out); err != nil {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(out.String(), id) || !strings.Contains(out.String(), "done") {
		t.Errorf("status listing missing the job:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"cancel", "-addr", addr2, id}, &out); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("cancel of a done job should report done, got: %s", out.String())
	}
}

func waitJob(t *testing.T, c *service.Client, id, what string, cond func(*service.JobStatus) bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Job(context.Background(), id)
		if err == nil && cond(st) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRunRejectsUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no subcommand should fail with usage")
	}
}
