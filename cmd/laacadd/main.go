// Command laacadd is the LAACAD deployment daemon and its client.
//
// The daemon owns a durable job queue and a bounded pool of concurrent
// deployment runs: submit Scenarios over HTTP, watch per-round statistics
// stream live, let higher-priority work preempt (checkpoint + requeue)
// lower-priority runs, and restart the daemon without losing anything —
// interrupted jobs resume bit-identically from their spooled checkpoints.
//
// Usage:
//
//	laacadd serve  -addr localhost:7600 -spool ./spool -pool 4 -sync always
//	laacadd submit -scenario corner -priority 5
//	laacadd submit -scenario corner -id run-42 -retries 3 -deadline-ms 60000
//	laacadd submit -file job.json            # a full JobSpec document
//	laacadd status [job-000001]              # list all, or one job
//	laacadd watch  job-000001                # follow the SSE round stream
//	laacadd cancel job-000001
//	laacadd result job-000001                # finished deployment as JSON
//
// Client subcommands read -addr (default localhost:7600) to find the
// daemon. The daemon also serves GET /metrics with service counters
// (jobs accepted/completed/preempted/..., queue depth, pool occupancy).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laacad"

	"laacad/internal/fault"
	metricshttp "laacad/internal/metrics"
	"laacad/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "laacadd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: laacadd <serve|submit|status|watch|cancel|result> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return serveCmd(rest, out)
	case "submit":
		return submitCmd(rest, out)
	case "status":
		return statusCmd(rest, out)
	case "watch":
		return watchCmd(rest, out)
	case "cancel":
		return cancelCmd(rest, out)
	case "result":
		return resultCmd(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q (want serve|submit|status|watch|cancel|result)", cmd)
	}
}

// serveCmd runs the daemon until SIGINT/SIGTERM, then drains: every running
// job is checkpointed and spooled so the next serve over the same spool
// resumes it bit-identically.
func serveCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("laacadd serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:7600", "HTTP listen address")
	spool := fs.String("spool", "laacadd-spool", "durable job spool directory")
	pool := fs.Int("pool", 0, "worker slots (concurrent runs); 0 = all CPUs")
	syncMode := fs.String("sync", "always", "journal fsync policy: always (crash-safe) or none (faster, trusts the OS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := service.Config{SpoolDir: *spool, Pool: *pool}
	switch *syncMode {
	case "always":
		cfg.Journal.Sync = service.SyncAlways
	case "none":
		cfg.Journal.Sync = service.SyncNone
	default:
		return fmt.Errorf("-sync must be always or none, got %q", *syncMode)
	}
	// LAACAD_FAULT arms deterministic fault injection on the spool's
	// filesystem operations — the chaos-testing seam, e.g.
	// "crash:write:40" or "tear:write:3:10,fail:sync:2". Empty means none.
	rules, err := fault.FromEnv("LAACAD_FAULT")
	if err != nil {
		return err
	}
	if len(rules) > 0 {
		cfg.FS = fault.NewInject(fault.OS{}, rules...)
		fmt.Fprintf(out, "laacadd: fault injection armed (%d rule(s) from LAACAD_FAULT)\n", len(rules))
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	for _, warn := range srv.Warnings() {
		fmt.Fprintln(out, "warning:", warn)
	}
	bound, shutdownHTTP, err := metricshttp.ListenAndServe(*addr, srv.Handler())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "laacadd serving at http://%s (spool %s, pool %d)\n", bound, *spool, *pool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(out, "laacadd draining: checkpointing running jobs...")
	shutdownHTTP()
	drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drain); err != nil {
		return fmt.Errorf("draining pool: %w", err)
	}
	fmt.Fprintln(out, "laacadd stopped; jobs spooled for resume")
	return nil
}

// clientFlags adds the shared -addr flag and returns the Client factory.
func clientFlags(fs *flag.FlagSet) func() *service.Client {
	addr := fs.String("addr", "localhost:7600", "daemon address (host:port or URL)")
	return func() *service.Client {
		base := *addr
		if len(base) < 7 || (base[:7] != "http://" && (len(base) < 8 || base[:8] != "https://")) {
			base = "http://" + base
		}
		return &service.Client{BaseURL: base}
	}
}

// submitCmd builds a JobSpec — from a registered scenario name plus
// overrides, or a full JSON document via -file — and submits it.
func submitCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("laacadd submit", flag.ContinueOnError)
	client := clientFlags(fs)
	var (
		scName   = fs.String("scenario", "", "registered scenario to run (see laacad -list)")
		file     = fs.String("file", "", "JSON JobSpec document ('-' = stdin); overrides -scenario")
		priority = fs.Int("priority", 0, "scheduling priority; higher runs first and may preempt")
		workers  = fs.Int("workers", 0, "engine worker goroutines (0 = daemon default)")
		rounds   = fs.Int("rounds", 0, "override the scenario's round budget (0 = keep)")
		pace     = fs.Int("pace", 0, "minimum milliseconds per round (observation pacing)")
		id       = fs.String("id", "", "client-supplied idempotency ID; makes the POST safe to retry")
		retries  = fs.Int("retries", 0, "requeue a failed run up to this many times with backoff")
		backoff  = fs.Int("backoff-ms", 0, "base retry backoff in milliseconds (0 = daemon default)")
		deadline = fs.Int("deadline-ms", 0, "wall-clock budget from submission; expiry fails the job")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec service.JobSpec
	switch {
	case *file != "":
		data, err := readInput(*file)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("decoding %s: %w", *file, err)
		}
	case *scName != "":
		sc, err := laacad.LookupScenario(*scName)
		if err != nil {
			return err
		}
		spec.Scenario = sc
	default:
		return errors.New("submit needs -scenario or -file")
	}
	if *priority != 0 {
		spec.Priority = *priority
	}
	if *workers != 0 {
		spec.Workers = workers
	}
	if *rounds != 0 {
		spec.MaxRounds = rounds
	}
	if *pace != 0 {
		spec.PaceMS = *pace
	}
	if *id != "" {
		spec.ClientID = *id
	}
	if *retries != 0 {
		spec.MaxRetries = *retries
	}
	if *backoff != 0 {
		spec.RetryBackoffMS = *backoff
	}
	if *deadline != 0 {
		spec.DeadlineMS = *deadline
	}
	c := client()
	if spec.ClientID != "" {
		// An idempotency key makes retransmission safe, so use it: ride out
		// daemon restarts and drains instead of failing the submission.
		c.MaxRetries = 5
	}
	st, err := c.Submit(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s %s (scenario=%s region=%s n=%d priority=%d)\n",
		st.ID, st.State, st.Scenario, st.Region, st.N, st.Priority)
	return nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// statusCmd prints one job's status, or the whole queue.
func statusCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("laacadd status", flag.ContinueOnError)
	client := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if id := fs.Arg(0); id != "" {
		st, err := client().Job(ctx, id)
		if err != nil {
			return err
		}
		return json.NewEncoder(out).Encode(st)
	}
	jobs, err := client().Jobs(ctx)
	if err != nil {
		return err
	}
	for _, st := range jobs {
		fmt.Fprintln(out, formatStatus(st))
	}
	return nil
}

func formatStatus(st *service.JobStatus) string {
	extra := ""
	if st.Preemptions > 0 {
		extra = fmt.Sprintf(" preemptions=%d slots=%v", st.Preemptions, st.Slots)
	}
	if st.Error != "" {
		extra += " error=" + st.Error
	}
	return fmt.Sprintf("%-12s %-10s prio=%-3d rounds=%-4d %s/%s n=%d%s",
		st.ID, st.State, st.Priority, st.Rounds, st.Scenario, st.Region, st.N, extra)
}

// watchCmd follows a job's event stream until it reaches a terminal state.
func watchCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("laacadd watch", flag.ContinueOnError)
	client := clientFlags(fs)
	after := fs.Int("after", 0, "resume the stream after this event ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return errors.New("usage: laacadd watch <job-id>")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return client().Watch(ctx, id, *after, func(e service.Event) error {
		switch e.Type {
		case "round":
			fmt.Fprintf(out, "%s round %d: max_cr=%.6g max_move=%.3g moved=%d msgs=%d\n",
				e.JobID, e.Round.Round, e.Round.MaxCircumradius, e.Round.MaxMove, e.Round.Moved, e.Round.Messages)
		case "state":
			line := fmt.Sprintf("%s → %s", e.JobID, e.State)
			if e.Error != "" {
				line += ": " + e.Error
			}
			fmt.Fprintln(out, line)
		}
		return nil
	})
}

// cancelCmd cancels a job (idempotent).
func cancelCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("laacadd cancel", flag.ContinueOnError)
	client := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return errors.New("usage: laacadd cancel <job-id>")
	}
	st, err := client().Cancel(context.Background(), id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s %s\n", st.ID, st.State)
	return nil
}

// resultCmd prints a finished job's deployment result as JSON.
func resultCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("laacadd result", flag.ContinueOnError)
	client := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if id == "" {
		return errors.New("usage: laacadd result <job-id>")
	}
	res, err := client().Result(context.Background(), id)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	return enc.Encode(res)
}
