package main

import "testing"

func TestRunSummary(t *testing.T) {
	if err := run([]string{"-n", "10", "-k", "2", "-plot=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithCellDump(t *testing.T) {
	if err := run([]string{"-n", "8", "-k", "1", "-cells", "-plot=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadK(t *testing.T) {
	if err := run([]string{"-n", "3", "-k", "5"}); err == nil {
		t.Error("k > n should error")
	}
	if err := run([]string{"-n", "3", "-k", "0"}); err == nil {
		t.Error("k = 0 should error")
	}
}
