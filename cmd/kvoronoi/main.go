// Command kvoronoi computes the k-order Voronoi diagram of a random node set
// over the unit square and dumps its cells (generator sets, areas, vertex
// polygons) — the structure behind the paper's Fig. 1.
//
// Usage:
//
//	kvoronoi -n 30 -k 2            # summary table
//	kvoronoi -n 30 -k 2 -cells    # one line per cell with polygon vertices
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"laacad"

	"laacad/internal/asciiplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kvoronoi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kvoronoi", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 30, "number of generator nodes")
		k        = fs.Int("k", 2, "Voronoi order")
		seed     = fs.Int64("seed", 1, "random seed")
		cells    = fs.Bool("cells", false, "dump one line per cell with polygon vertices")
		showPlot = fs.Bool("plot", true, "render generators as ASCII")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := laacad.UnitSquareKm()
	rng := rand.New(rand.NewSource(*seed))
	pts := laacad.PlaceUniform(reg, *n, rng)
	sites := make([]laacad.Site, *n)
	for i, p := range pts {
		sites[i] = laacad.Site{ID: i, Pos: p}
	}
	d, err := laacad.KOrderVoronoi(sites, *k, reg)
	if err != nil {
		return err
	}

	fmt.Printf("%d-order Voronoi diagram of %d nodes: %d cells, total area %.6g (|A|=%.6g)\n",
		*k, *n, len(d.Cells), d.TotalArea(), reg.Area())
	if *showPlot {
		fmt.Print(asciiplot.Scatter(reg.BBox(), 64, 24, asciiplot.Layer{Points: pts, Mark: 'o'}))
	}
	if *cells {
		for _, c := range d.Cells {
			var sb strings.Builder
			fmt.Fprintf(&sb, "gens=%v area=%.6g polys=", c.Generators, c.Area())
			for _, poly := range c.Polys {
				sb.WriteString("[")
				for i, v := range poly {
					if i > 0 {
						sb.WriteString(" ")
					}
					fmt.Fprintf(&sb, "(%.4f,%.4f)", v.X, v.Y)
				}
				sb.WriteString("]")
			}
			fmt.Println(sb.String())
		}
	}
	return nil
}
