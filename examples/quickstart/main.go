// Quickstart: deploy 100 mobile sensor nodes for 2-coverage of a 1 km² area
// and verify the result — the minimal end-to-end use of the laacad library
// through the unified Scenario/Runner API.
package main

import (
	"context"
	"fmt"
	"log"

	"laacad"
)

func main() {
	// The registered "uniform" scenario is the paper's canonical setting:
	// 100 nodes dropped uniformly at random over the 1 km² square, deployed
	// for 2-coverage with the default parameters (step size α = 0.5,
	// centralized dominating-region computation). A Scenario is a single
	// replayable value: same scenario, same result, on any machine.
	sc, err := laacad.LookupScenario("uniform")
	if err != nil {
		log.Fatal(err)
	}

	// Run drives the scenario under a context (cancel it to stop cleanly
	// with a partial result). WithWorkers(-1) fans each round's per-node
	// region computations across all CPUs; the trajectory is bit-identical
	// to a serial run, so this is purely a speed knob. The observer streams
	// rounds as they complete.
	res, err := laacad.Run(context.Background(), sc,
		laacad.WithWorkers(-1),
		laacad.WithObserver(func(_ laacad.Runner, st laacad.RoundStats) error {
			if st.Round%20 == 0 {
				fmt.Printf("  round %3d: max circumradius %.4f, %d nodes moving\n",
					st.Round, st.MaxCircumradius, st.Moved)
			}
			return nil
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v after %d rounds\n", res.Converged, res.Rounds)
	fmt.Printf("max sensing range R* = %.4f km, min = %.4f km\n",
		res.MaxRadius(), res.MinRadius())

	// Verify Definition 1: every point of the area is covered by ≥ 2 nodes.
	reg, err := laacad.LookupRegionByName(sc.Region)
	if err != nil {
		log.Fatal(err)
	}
	rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, 100)
	fmt.Printf("2-covered: %v (coverage depth %d..%d over %d samples)\n",
		rep.KCovered(2), rep.MinDepth, rep.MaxDepth, rep.Samples)

	// Sensing load balance (the paper's objective): E(r) = πr².
	model := laacad.DiskAreaEnergy{}
	loads := make([]float64, len(res.Radii))
	for i, r := range res.Radii {
		loads[i] = model.Cost(r)
	}
	fmt.Printf("max load %.5f, total load %.4f, Jain fairness %.3f\n",
		laacad.MaxLoad(res.Radii, model),
		laacad.TotalLoad(res.Radii, model),
		laacad.JainIndex(loads))

	fmt.Println("\nFinal deployment:")
	fmt.Print(laacad.RenderDeployment(reg, res.Positions, 64, 24))
}
