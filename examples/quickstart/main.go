// Quickstart: deploy 100 mobile sensor nodes for 2-coverage of a 1 km² area
// and verify the result — the minimal end-to-end use of the laacad library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laacad"
)

func main() {
	// The paper's canonical setting: a 1 km² square area.
	reg := laacad.UnitSquareKm()

	// 100 nodes dropped uniformly at random.
	rng := rand.New(rand.NewSource(1))
	start := laacad.PlaceUniform(reg, 100, rng)

	// Deploy for 2-coverage with the paper's default parameters
	// (step size α = 0.5, centralized dominating-region computation).
	// Workers = -1 fans each round's per-node region computations across
	// all CPUs; the trajectory is bit-identical to a serial run, so this
	// is purely a speed knob.
	cfg := laacad.DefaultConfig(2)
	cfg.Workers = -1
	res, err := laacad.Deploy(reg, start, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v after %d rounds\n", res.Converged, res.Rounds)
	fmt.Printf("max sensing range R* = %.4f km, min = %.4f km\n",
		res.MaxRadius(), res.MinRadius())

	// Verify Definition 1: every point of the area is covered by ≥ 2 nodes.
	rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, 100)
	fmt.Printf("2-covered: %v (coverage depth %d..%d over %d samples)\n",
		rep.KCovered(2), rep.MinDepth, rep.MaxDepth, rep.Samples)

	// Sensing load balance (the paper's objective): E(r) = πr².
	model := laacad.DiskAreaEnergy{}
	loads := make([]float64, len(res.Radii))
	for i, r := range res.Radii {
		loads[i] = model.Cost(r)
	}
	fmt.Printf("max load %.5f, total load %.4f, Jain fairness %.3f\n",
		laacad.MaxLoad(res.Radii, model),
		laacad.TotalLoad(res.Radii, model),
		laacad.JainIndex(loads))

	fmt.Println("\nFinal deployment:")
	fmt.Print(laacad.RenderDeployment(reg, res.Positions, 64, 24))
}
