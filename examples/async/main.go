// Async: run LAACAD the way the paper actually describes it — every node on
// its own periodic τ-clock, moving at a finite (Robomote-class) speed — and
// compare the outcome with the idealized synchronous rounds. The fixed
// points coincide; asynchrony costs wall-clock time and travel, not
// coverage quality.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laacad"
)

func main() {
	reg := laacad.UnitSquareKm()
	rng := rand.New(rand.NewSource(21))
	start := laacad.PlaceUniform(reg, 50, rng)
	const k = 2

	// Idealized synchronous rounds.
	syncCfg := laacad.DefaultConfig(k)
	syncCfg.Epsilon = 2e-3
	syncRes, err := laacad.Deploy(reg, start, syncCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Event-driven: τ = 1 s activations with 10% jitter, nodes crawling at
	// 10 m/s (0.01 km/s).
	asyncCfg := laacad.DefaultAsyncConfig(k)
	asyncCfg.Epsilon = 2e-3
	asyncCfg.Tau = 1.0
	asyncCfg.Speed = 0.01
	asyncCfg.MaxTime = 5000
	asyncRes, err := laacad.DeployAsync(reg, start, asyncCfg)
	if err != nil {
		log.Fatal(err)
	}

	sRep := laacad.VerifyCoverage(syncRes.Positions, syncRes.Radii, reg, 80)
	aRep := laacad.VerifyCoverage(asyncRes.Positions, asyncRes.Radii, reg, 80)

	fmt.Printf("%-12s %10s %10s %10s\n", "engine", "R* (km)", "covered", "cost")
	fmt.Printf("%-12s %10.4f %10v %7d rounds\n",
		"synchronous", syncRes.MaxRadius(), sRep.KCovered(k), syncRes.Rounds)
	fmt.Printf("%-12s %10.4f %10v %7.0f s sim-time (%d activations, %.2f km driven)\n",
		"async", asyncRes.MaxRadius(), aRep.KCovered(k),
		asyncRes.Time, asyncRes.Activations, asyncRes.TotalTravel)

	fmt.Println("\nAsynchronous final deployment:")
	fmt.Print(laacad.RenderDeployment(reg, asyncRes.Positions, 56, 20))
}
