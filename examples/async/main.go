// Async: run LAACAD the way the paper actually describes it — every node on
// its own periodic τ-clock, moving at a finite (Robomote-class) speed — and
// compare the outcome with the idealized synchronous rounds. Both regimes
// run through the same laacad.Run entry point; the fixed points coincide,
// and asynchrony costs wall-clock time and travel, not coverage quality.
package main

import (
	"context"
	"fmt"
	"log"

	"laacad"
)

func main() {
	const k = 2
	ctx := context.Background()

	// Idealized synchronous rounds: an ad-hoc scenario (named region and
	// placement from the registry, explicit node count and config).
	syncCfg := laacad.DefaultConfig(k)
	syncCfg.Epsilon = 2e-3
	syncCfg.Seed = 21
	syncSc := laacad.Scenario{
		Region: "square", Placement: "uniform", N: 50,
		Config: syncCfg,
	}
	syncRes, err := laacad.Run(ctx, syncSc)
	if err != nil {
		log.Fatal(err)
	}

	// Event-driven: the same scenario value with the Async flag — τ = 1 s
	// activations with 10% jitter, nodes crawling at 10 m/s (0.01 km/s).
	// NewRunner (instead of Run) keeps the Runner handle so the async-
	// specific measures can be read back with RunAsync's result type.
	asyncCfg := laacad.DefaultAsyncConfig(k)
	asyncCfg.Epsilon = 2e-3
	asyncCfg.Tau = 1.0
	asyncCfg.Speed = 0.01
	asyncCfg.MaxTime = 5000
	asyncCfg.Seed = 21
	asyncSc := laacad.Scenario{
		Region: "square", Placement: "uniform", N: 50,
		Async: true, AsyncConfig: asyncCfg,
	}
	r, err := laacad.NewRunner(asyncSc)
	if err != nil {
		log.Fatal(err)
	}
	d, _ := laacad.AsyncDeploymentOf(r)
	asyncRes, err := d.RunAsync(ctx)
	if err != nil {
		log.Fatal(err)
	}

	reg, err := laacad.LookupRegionByName("square")
	if err != nil {
		log.Fatal(err)
	}
	sRep := laacad.VerifyCoverage(syncRes.Positions, syncRes.Radii, reg, 80)
	aRep := laacad.VerifyCoverage(asyncRes.Positions, asyncRes.Radii, reg, 80)

	fmt.Printf("%-12s %10s %10s %10s\n", "engine", "R* (km)", "covered", "cost")
	fmt.Printf("%-12s %10.4f %10v %7d rounds\n",
		"synchronous", syncRes.MaxRadius(), sRep.KCovered(k), syncRes.Rounds)
	fmt.Printf("%-12s %10.4f %10v %7.0f s sim-time (%d activations, %.2f km driven)\n",
		"async", asyncRes.MaxRadius(), aRep.KCovered(k),
		asyncRes.Time, asyncRes.Activations, asyncRes.TotalTravel)

	fmt.Println("\nAsynchronous final deployment:")
	fmt.Print(laacad.RenderDeployment(reg, asyncRes.Positions, 56, 20))
}
