// Checkpoint: interrupt a deployment mid-run, write a resume file, and
// continue it later — bit-identically. This is the pattern long-running
// jobs use: WithSnapshotEvery keeps a crash-safe checkpoint on disk, SIGINT
// (here simulated by cancelling the context from the observer) stops the
// run cleanly with a partial result, and Resume picks the run back up as if
// it had never stopped.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"laacad"
)

func main() {
	sc, err := laacad.LookupScenario("corner") // the paper's Fig. 5/6 run
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "laacad-checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "resume.json")

	// Reference: the uninterrupted run.
	full, err := laacad.Run(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted run: %d rounds, R*=%.6f\n", full.Rounds, full.MaxRadius())

	// Interrupted run: checkpoint every 10 rounds, "pull the plug" at
	// round 25 by cancelling the context.
	ctx, cancel := context.WithCancel(context.Background())
	partial, err := laacad.Run(ctx, sc,
		laacad.WithSnapshotEvery(10, func(st *laacad.Checkpoint) error {
			return st.WriteFile(path)
		}),
		laacad.WithObserver(func(_ laacad.Runner, st laacad.RoundStats) error {
			if st.Round == 25 {
				cancel()
			}
			return nil
		}))
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected a cancelled run, got err=%v", err)
	}
	fmt.Printf("interrupted run:   %d rounds completed, partial R*=%.6f\n",
		partial.Rounds, partial.MaxRadius())

	// Resume from the last on-disk checkpoint (round 20) and finish.
	st, err := laacad.ReadCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resuming from %q (round %d)\n", st.Region, st.Round)
	resumed, err := laacad.Resume(context.Background(), st)
	if err != nil {
		log.Fatal(err)
	}

	// The determinism contract extends to interrupted runs: the resumed
	// deployment is bit-identical to the uninterrupted one.
	identical := resumed.Rounds == full.Rounds
	for i := range full.Positions {
		if !full.Positions[i].Eq(resumed.Positions[i]) || full.Radii[i] != resumed.Radii[i] {
			identical = false
		}
	}
	fmt.Printf("resumed run:       %d rounds, R*=%.6f, bit-identical=%v\n",
		resumed.Rounds, resumed.MaxRadius(), identical)
}
