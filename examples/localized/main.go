// Localized: run the fully distributed LAACAD (Algorithm 2 of the paper) —
// every node discovers its neighborhood with an expanding-ring search over
// the multi-hop WSN, pays real message costs, and still converges to the
// same load-balanced k-coverage as the centralized ideal.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laacad"
)

func main() {
	reg := laacad.UnitSquareKm()
	rng := rand.New(rand.NewSource(5))
	start := laacad.PlaceUniform(reg, 60, rng)

	run := func(mode laacad.Mode) *laacad.Result {
		cfg := laacad.DefaultConfig(2)
		cfg.Mode = mode
		cfg.Gamma = 0.22 // transmission range γ (km)
		cfg.Epsilon = 2e-3
		cfg.MaxRounds = 200
		res, err := laacad.Deploy(reg, start, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	central := run(laacad.Centralized)
	local := run(laacad.Localized)

	fmt.Printf("%-12s %8s %10s %12s %10s\n", "engine", "rounds", "R* (km)", "messages", "covered")
	for _, row := range []struct {
		name string
		res  *laacad.Result
	}{{"centralized", central}, {"localized", local}} {
		rep := laacad.VerifyCoverage(row.res.Positions, row.res.Radii, reg, 80)
		fmt.Printf("%-12s %8d %10.4f %12d %10v\n",
			row.name, row.res.Rounds, row.res.MaxRadius(), row.res.Messages, rep.KCovered(2))
	}

	fmt.Println("\nconvergence trace (localized):")
	fmt.Print(laacad.RenderConvergence(local, 64, 14))
}
