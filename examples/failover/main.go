// Failover: k-coverage is motivated by fault tolerance. This example deploys
// for 3-coverage and then uses the Observer API to kill several nodes
// mid-run — the moment the deployment first converges — showing that
// coverage degrades gracefully and that LAACAD re-converges to restore full
// 3-coverage with the survivors, all within a single observable run.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"laacad"
)

func main() {
	cfg := laacad.DefaultConfig(3)
	cfg.Seed = 11
	sc := laacad.Scenario{
		Region: "square", Placement: "uniform", N: 80,
		Config: cfg,
	}
	reg, err := laacad.LookupRegionByName(sc.Region)
	if err != nil {
		log.Fatal(err)
	}

	const failures = 5
	rng := rand.New(rand.NewSource(11))
	killed := false
	var before *laacad.Result

	res, err := laacad.Run(context.Background(), sc,
		laacad.WithObserver(func(r laacad.Runner, st laacad.RoundStats) error {
			// The observer runs between rounds; topology mutation here is
			// deterministic (randomness is per (seed, round, node)).
			if st.Moved > 0 || killed {
				return nil
			}
			killed = true
			eng, _ := laacad.EngineOf(r)
			snap, err := eng.Finalize()
			if err != nil {
				return err
			}
			before = snap
			rep := laacad.VerifyCoverage(snap.Positions, snap.Radii, reg, 80)
			fmt.Printf("initial deployment: %d nodes, %d rounds, R*=%.4f, 3-covered=%v\n",
				len(snap.Positions), st.Round, snap.MaxRadius(), rep.KCovered(3))

			for i := 0; i < failures; i++ {
				if err := eng.RemoveNode(rng.Intn(eng.Network().Len())); err != nil {
					return err
				}
			}
			// Coverage right after the failures, before any healing motion:
			// conservatively give every survivor the old R*.
			surv := eng.Positions()
			oldRadii := make([]float64, len(surv))
			for i := range oldRadii {
				oldRadii[i] = snap.MaxRadius()
			}
			repAfter := laacad.VerifyCoverage(surv, oldRadii, reg, 80)
			fmt.Printf("after %d failures (before healing): min coverage depth %d\n",
				failures, repAfter.MinDepth)
			return nil // run continues: the survivors heal
		}))
	if err != nil {
		log.Fatal(err)
	}
	if before == nil {
		log.Fatal("deployment never converged, so no failure was injected")
	}

	repHealed := laacad.VerifyCoverage(res.Positions, res.Radii, reg, 80)
	fmt.Printf("after healing: %d nodes, %d rounds total, R*=%.4f, 3-covered=%v\n",
		len(res.Positions), res.Rounds, res.MaxRadius(), repHealed.KCovered(3))
	fmt.Printf("R* grew by %.1f%% to compensate for the lost nodes\n",
		(res.MaxRadius()/before.MaxRadius()-1)*100)
}
