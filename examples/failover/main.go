// Failover: k-coverage is motivated by fault tolerance. This example deploys
// for 3-coverage, kills several nodes, shows that coverage degrades
// gracefully (the area is still (3−f)-covered), and lets LAACAD re-converge
// to restore full 3-coverage with the survivors.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laacad"
)

func main() {
	reg := laacad.UnitSquareKm()
	rng := rand.New(rand.NewSource(11))
	start := laacad.PlaceUniform(reg, 80, rng)

	cfg := laacad.DefaultConfig(3)
	eng, err := laacad.NewEngine(reg, start, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, 80)
	fmt.Printf("initial deployment: %d nodes, R*=%.4f, 3-covered=%v\n",
		len(res.Positions), res.MaxRadius(), rep.KCovered(3))

	// Fail 5 random nodes. With the old positions and radii the region is
	// still at least (3−failures-per-point)-covered.
	const failures = 5
	for i := 0; i < failures; i++ {
		if err := eng.RemoveNode(rng.Intn(eng.Network().Len())); err != nil {
			log.Fatal(err)
		}
	}
	// Coverage right after the failures, before any movement: reuse the old
	// radii for the survivors (they have not recomputed anything yet).
	surv := eng.Positions()
	oldRadii := make([]float64, len(surv))
	for i := range oldRadii {
		oldRadii[i] = res.MaxRadius() // conservative: all at R*
	}
	repAfter := laacad.VerifyCoverage(surv, oldRadii, reg, 80)
	fmt.Printf("after %d failures (before healing): min coverage depth %d\n",
		failures, repAfter.MinDepth)

	// Let the survivors re-run LAACAD and restore 3-coverage.
	healed, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	repHealed := laacad.VerifyCoverage(healed.Positions, healed.Radii, reg, 80)
	fmt.Printf("after healing: %d nodes, %d rounds, R*=%.4f, 3-covered=%v\n",
		len(healed.Positions), healed.Rounds, healed.MaxRadius(), repHealed.KCovered(3))
	fmt.Printf("R* grew by %.1f%% to compensate for the lost nodes\n",
		(healed.MaxRadius()/res.MaxRadius()-1)*100)
}
