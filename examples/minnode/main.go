// Minnode: the Sec. IV-C adaptation — find the minimum number of nodes that
// k-covers an area when every node has the same fixed sensing range, by
// iterating LAACAD while adding/removing nodes, and compare with the Bai et
// al. analytic lower bound for 2-coverage.
package main

import (
	"fmt"
	"log"

	"laacad"
)

func main() {
	// 100 m × 100 m area (the effective scale of the paper's Tables I–II),
	// fixed sensing range 6 m, 2-coverage.
	reg := laacad.RectRegion(0, 0, 100, 100)
	const rs = 6.0

	cfg := laacad.DefaultConfig(2)
	cfg.Epsilon = 0.02  // meters now, not km
	cfg.MaxRounds = 120 // R* stabilizes well before full convergence

	res, err := laacad.MinNodes(reg, rs, cfg, 3)
	if err != nil {
		log.Fatal(err)
	}

	bound := laacad.BaiMinNodes2Coverage(reg.Area(), rs)
	fmt.Printf("target sensing range rs = %.1f m over %.0f m²\n", rs, reg.Area())
	fmt.Printf("LAACAD minimum node count: %d (achieved R* = %.3f m, %d LAACAD runs)\n",
		res.N, res.MaxRadius, res.Evaluations)
	fmt.Printf("Bai et al. density bound:  %.0f nodes (boundary effects ignored)\n", bound)
	fmt.Printf("overhead over the bound:   %.1f%% (paper reports ≈15%%)\n",
		(float64(res.N)/bound-1)*100)

	// Double-check the found deployment with the uniform range.
	radii := make([]float64, len(res.Result.Positions))
	for i := range radii {
		radii[i] = rs
	}
	rep := laacad.VerifyCoverage(res.Result.Positions, radii, reg, 100)
	fmt.Printf("verification: 2-covered=%v (min depth %d)\n", rep.KCovered(2), rep.MinDepth)
}
