// Obstacles: reproduce the paper's Fig. 8 scenario — autonomous deployment
// into an irregular area containing obstacles that mobile nodes cannot move
// onto, starting from a corner pile, for several coverage orders.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laacad"
)

func main() {
	// A 1×1 area with two obstacles: a circular one and a rectangular one.
	reg := laacad.SquareWithTwoObstacles()
	fmt.Printf("region area: %.4f (obstacles excluded)\n\n", reg.Area())

	rng := rand.New(rand.NewSource(7))
	start := laacad.PlaceCorner(reg, 120, 0.15, rng)

	for _, k := range []int{2, 4} {
		cfg := laacad.DefaultConfig(k)
		cfg.MaxRounds = 250
		res, err := laacad.Deploy(reg, start, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, 90)

		// No node may end up inside an obstacle.
		inside := 0
		for _, p := range res.Positions {
			if !reg.Contains(p) {
				inside++
			}
		}
		fmt.Printf("k=%d: rounds=%d R*=%.4f %d-covered=%v nodes-in-obstacles=%d\n",
			k, res.Rounds, res.MaxRadius(), k, rep.KCovered(k), inside)
		fmt.Print(laacad.RenderDeployment(reg, res.Positions, 56, 20))
		fmt.Println()
	}
}
