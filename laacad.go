// Package laacad is a Go implementation of LAACAD — Load bAlancing k-Area
// Coverage through Autonomous Deployment (Li, Luo, Xin, Wang, He;
// ICDCS 2012) — together with every substrate the paper's evaluation rests
// on: computational geometry, k-order Voronoi diagrams, a wireless-sensor-
// network simulator with message accounting, coverage verification, energy
// models and the published baselines.
//
// LAACAD moves mobile sensor nodes so that a target area becomes k-covered
// (every point within sensing range of at least k nodes) while minimizing
// the maximum sensing range any node needs — balancing sensing load and
// thereby maximizing network lifetime. Each node repeatedly computes its
// k-order Voronoi dominating region and steps toward the region's Chebyshev
// center; at convergence its sensing range is the region's circumradius.
//
// # Quick start
//
// Every execution regime flows through one entry point: a Scenario (a
// replayable bundle of region, placement, node count and configuration)
// driven by Run under a context.
//
//	sc, err := laacad.LookupScenario("uniform") // 100 nodes, 2-coverage, 1 km²
//	if err != nil { ... }
//	res, err := laacad.Run(ctx, sc, laacad.WithWorkers(-1))
//	if err != nil { ... }
//	reg, _ := laacad.LookupRegionByName(sc.Region)
//	rep := laacad.VerifyCoverage(res.Positions, res.Radii, reg, 100)
//	fmt.Println(res.MaxRadius(), rep.KCovered(2)) // R*, true
//
// Cancelling ctx returns a partial Result; WithObserver streams per-round
// statistics (and enables early stop and failure injection mid-run);
// Runner.Snapshot/Resume checkpoint and continue a run bit-identically.
// See scenario.go for the full Scenario/Runner surface, NewEngine for
// step-by-step control, Localized mode for the fully distributed
// Algorithm 2 with message accounting, and the baseline helpers for the
// paper's Table I/II comparisons.
//
// # Parallelism and determinism
//
// Each node's dominating region depends only on the previous round's
// positions (Proposition 1), so a Synchronous round is embarrassingly
// parallel. Config.Workers sets the number of goroutines the engine fans
// the per-node region computations across (0 or 1 = serial, -1 = all
// CPUs); Finalize and DebugRegions use the same pool.
//
// The determinism contract: a run is a pure function of (initial
// positions, Config) — the worker count and goroutine scheduling never
// affect the outcome. Trajectories, traces, final positions and radii are
// bit-identical for every Workers value. The Chebyshev-center computation
// is fully deterministic (Welzl's algorithm over a permutation derived by
// hashing the input vertices — no RNG at all), and the one remaining
// randomized component, Localized-mode message-loss sampling, draws from a
// private stream derived from (Config.Seed, round, node ID) rather than
// from a shared sequential source. Deterministic replay therefore holds
// across machines and core counts: record (region, start, Config) and any
// run can be reproduced exactly.
//
// # Performance
//
// The dominating-region hot path runs on per-worker scratch arenas (zero
// heap allocations in steady state), and the Centralized engine keeps an
// incremental dirty-set: a node whose exactness neighborhood did not change
// reuses its previous round outcome bit-for-bit, which collapses the
// converged tail of a deployment. Config.DisableCache restores the eager
// engine; results are identical either way. See README.md ("Performance")
// for the design and the tracked benchmark baselines (BENCH_*.json,
// cmd/bench).
package laacad

import (
	"context"
	"math/rand"

	"laacad/internal/asciiplot"
	"laacad/internal/baseline"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/energy"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/sim"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Geometry types. These are aliases of the implementation types, so values
// returned by the library interoperate directly with the helpers below.
type (
	// Point is a point (or vector) in the plane.
	Point = geom.Point
	// Polygon is a simple polygon as a CCW vertex list.
	Polygon = geom.Polygon
	// Circle is a disk given by center and radius.
	Circle = geom.Circle
	// BBox is an axis-aligned bounding box.
	BBox = geom.BBox
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// SmallestEnclosingCircle computes the minimum enclosing circle of a point
// set with Welzl's algorithm — the Chebyshev-center primitive LAACAD uses.
// The computation is a pure, deterministic function of pts: the randomized
// insertion order that keeps Welzl's algorithm expected-O(n) is derived by
// hashing the input vertices, so no RNG is needed (or accepted — see the
// determinism contract above).
func SmallestEnclosingCircle(pts []Point) Circle {
	return geom.SmallestEnclosingCircle(pts)
}

// Region types and constructors.

// Region is a target deployment area: a simple outer polygon minus convex
// obstacle holes.
type Region = region.Region

// NewRegion builds a region from an outer polygon and optional convex holes.
func NewRegion(outer Polygon, holes ...Polygon) (*Region, error) {
	return region.New(outer, holes...)
}

// RectRegion returns the rectangular region [x0,x1]×[y0,y1].
func RectRegion(x0, y0, x1, y1 float64) *Region { return region.Rect(x0, y0, x1, y1) }

// UnitSquareKm returns the paper's 1 km² square target area.
func UnitSquareKm() *Region { return region.UnitSquareKm() }

// LShapeRegion returns a non-convex L-shaped demo region.
func LShapeRegion() *Region { return region.LShape() }

// CrossRegion returns a plus-shaped demo region.
func CrossRegion() *Region { return region.Cross() }

// SquareWithCircularObstacle returns the unit square with a circular
// obstacle (Fig. 8 scenario I).
func SquareWithCircularObstacle(center Point, r float64) *Region {
	return region.SquareWithCircularObstacle(center, r)
}

// SquareWithTwoObstacles returns the unit square with two obstacles (Fig. 8
// scenario II).
func SquareWithTwoObstacles() *Region { return region.SquareWithTwoObstacles() }

// Node placement helpers.

// PlaceUniform samples n node positions uniformly from the region.
func PlaceUniform(r *Region, n int, rng *rand.Rand) []Point {
	return region.PlaceUniform(r, n, rng)
}

// PlaceCorner packs n nodes into a corner patch of relative size frac — the
// paper's Fig. 5(a) initial deployment.
func PlaceCorner(r *Region, n int, frac float64, rng *rand.Rand) []Point {
	return region.PlaceCorner(r, n, frac, rng)
}

// Deployment engine.

// Config parameterizes a LAACAD run; see the field documentation in the
// core package. Construct with DefaultConfig and adjust.
type Config = core.Config

// Mode selects centralized or localized dominating-region computation.
type Mode = core.Mode

// Deployment modes.
const (
	// Centralized computes dominating regions from global knowledge.
	Centralized = core.Centralized
	// Localized runs the paper's Algorithm 2 (expanding-ring search) over
	// the WSN substrate with message accounting.
	Localized = core.Localized
)

// UpdateOrder selects how node moves are applied within a round.
type UpdateOrder = core.UpdateOrder

// Update orders.
const (
	// Synchronous applies all moves simultaneously at the end of a round.
	Synchronous = core.Synchronous
	// Sequential applies each move immediately, modeling nodes acting on
	// independent periodic clocks.
	Sequential = core.Sequential
)

// Ring query modes for Localized deployments.
const (
	// RingGeometric discovers exactly the nodes within Euclidean distance ρ.
	RingGeometric = wsn.RingGeometric
	// RingHopLimited floods the real unit-disk graph hop by hop.
	RingHopLimited = wsn.RingHopLimited
)

// DefaultConfig returns the paper's default parameters for coverage order k.
func DefaultConfig(k int) Config { return core.DefaultConfig(k) }

// Engine runs LAACAD round by round; create with NewEngine.
type Engine = core.Engine

// Result is a finished deployment: final positions, per-node sensing ranges,
// convergence trace and message counts.
type Result = core.Result

// RoundStats is one round of a deployment trace.
type RoundStats = core.RoundStats

// NewEngine creates a deployment engine over reg starting from the given
// node positions.
func NewEngine(reg *Region, initial []Point, cfg Config) (*Engine, error) {
	return core.New(reg, initial, cfg)
}

// Deploy runs LAACAD to convergence (or cfg.MaxRounds) and returns the
// result.
//
// Deprecated: Deploy predates the unified Scenario/Runner API and cannot
// be cancelled, observed, or checkpointed. New code should call Run with a
// Scenario (for explicit positions, build the Engine with NewEngine and
// drive it via its Runner methods). Deploy remains as a thin wrapper over
// the same engine path.
func Deploy(reg *Region, initial []Point, cfg Config) (*Result, error) {
	eng, err := core.New(reg, initial, cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run(context.Background())
}

// Coverage verification.

// CoverageReport summarizes grid-based k-coverage verification.
type CoverageReport = coverage.Report

// VerifyCoverage samples the region on a resolution×resolution grid and
// reports the coverage depth of the deployment.
func VerifyCoverage(positions []Point, radii []float64, reg *Region, resolution int) CoverageReport {
	return coverage.Verify(positions, radii, reg, resolution)
}

// VerifyCoverageWorkers is VerifyCoverage with the sample sweep fanned
// across worker goroutines (0 = serial, negative = all CPUs); the report is
// identical for every worker count.
func VerifyCoverageWorkers(positions []Point, radii []float64, reg *Region, resolution, workers int) CoverageReport {
	return coverage.VerifyWorkers(positions, radii, reg, resolution, workers)
}

// Energy model.

// EnergyModel maps a sensing range to an energy cost.
type EnergyModel = energy.Model

// DiskAreaEnergy is the paper's model E(r) = πr².
type DiskAreaEnergy = energy.DiskArea

// MaxLoad returns max_i E(r_i).
func MaxLoad(radii []float64, m EnergyModel) float64 { return energy.MaxLoad(radii, m) }

// TotalLoad returns Σ_i E(r_i).
func TotalLoad(radii []float64, m EnergyModel) float64 { return energy.TotalLoad(radii, m) }

// JainIndex quantifies load balance in (0, 1] (1 = perfectly balanced).
func JainIndex(loads []float64) float64 { return energy.JainIndex(loads) }

// k-order Voronoi diagrams (the geometric structure behind LAACAD).

// Site is a Voronoi generator: a node index with its position.
type Site = voronoi.Site

// VoronoiCell is one cell of a k-order diagram.
type VoronoiCell = voronoi.Cell

// VoronoiDiagram is a k-order Voronoi diagram clipped to a region.
type VoronoiDiagram = voronoi.Diagram

// KOrderVoronoi computes the k-order Voronoi diagram of sites over reg.
func KOrderVoronoi(sites []Site, k int, reg *Region) (*VoronoiDiagram, error) {
	return voronoi.KOrderDiagram(sites, k, reg)
}

// DominatingRegion returns the dominating region of self among others for
// coverage order k, clipped to the region — the set of points where fewer
// than k other nodes are closer.
func DominatingRegion(self Site, others []Site, k int, reg *Region) []Polygon {
	return voronoi.DominatingRegion(self, others, k, reg.Pieces())
}

// Baselines (paper Sec. V-C).

// BaiMinNodes2Coverage is the Bai et al. lower bound on node count for
// 2-coverage at common range r (Table I comparator).
func BaiMinNodes2Coverage(area, r float64) float64 {
	return baseline.BaiMinNodes2Coverage(area, r)
}

// AmmariLensNodes is the Ammari & Das lens-deployment node count for
// k-coverage at common range r (Table II comparator).
func AmmariLensNodes(k int, area, r float64) float64 {
	return baseline.AmmariLensNodes(k, area, r)
}

// TriangularCover returns a triangular-lattice 1-coverage deployment with
// sensing range r.
func TriangularCover(reg *Region, r float64) []Point {
	return baseline.TriangularCover(reg, r)
}

// MinNodesResult is the outcome of the min-node search of Sec. IV-C.
type MinNodesResult = baseline.MinNodesResult

// MinNodes searches for the minimum node count whose LAACAD deployment
// achieves max sensing range ≤ rs (the paper's min-node k-coverage
// adaptation).
func MinNodes(reg *Region, rs float64, cfg Config, seed int64) (*MinNodesResult, error) {
	return baseline.MinNodes(reg, rs, cfg, seed)
}

// Asynchronous (event-driven) execution — the paper's τ-periodic node
// clocks with finite motion speed, without the synchronous-round
// idealization.

// AsyncConfig parameterizes an event-driven deployment (activation period
// Tau, clock Jitter, motion Speed, MaxTime).
type AsyncConfig = sim.Config

// AsyncResult is the outcome of an asynchronous deployment, including the
// simulated time, activation count and total distance traveled.
type AsyncResult = sim.Result

// AsyncDeployment is an event-driven deployment in progress; it implements
// Runner, so laacad.Run drives it through the same interface as the
// synchronous engine.
type AsyncDeployment = sim.Deployment

// DefaultAsyncConfig returns asynchronous defaults for coverage order k.
func DefaultAsyncConfig(k int) AsyncConfig { return sim.DefaultConfig(k) }

// DeployAsync runs LAACAD as a discrete-event asynchronous system: each
// node acts on its own jittered τ-clock and moves with finite speed,
// computing dominating regions from whatever (possibly in-flight) neighbor
// positions it currently observes.
//
// Deprecated: DeployAsync predates the unified Scenario/Runner API and
// cannot be cancelled, observed, or checkpointed. New code should call Run
// with a Scenario whose Async flag is set; the async-specific measures
// (simulated time, activations, travel) come from RunAsync on the
// AsyncDeployment. DeployAsync remains as a thin wrapper over the same
// simulator path.
func DeployAsync(reg *Region, initial []Point, cfg AsyncConfig) (*AsyncResult, error) {
	return sim.Deploy(reg, initial, cfg)
}

// RenderDeployment draws node positions over the region's bounding box as a
// width×height ASCII grid — a quick visual check of a deployment.
func RenderDeployment(reg *Region, positions []Point, width, height int) string {
	return asciiplot.Scatter(reg.BBox(), width, height,
		asciiplot.Layer{Points: positions, Mark: 'o'})
}

// RenderConvergence draws the max-circumradius trace of a result as an ASCII
// line chart (the paper's Fig. 6 series).
func RenderConvergence(res *Result, width, height int) string {
	maxS := make([]float64, len(res.Trace))
	minS := make([]float64, len(res.Trace))
	for i, tr := range res.Trace {
		maxS[i] = tr.MaxCircumradius
		minS[i] = tr.MinCircumradius
	}
	return asciiplot.LineChart(width, height,
		asciiplot.Series{Name: "max circumradius", Ys: maxS, Mark: '*'},
		asciiplot.Series{Name: "min circumradius", Ys: minS, Mark: '.'},
	)
}
