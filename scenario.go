package laacad

import (
	"context"

	"laacad/internal/core"
	"laacad/internal/metrics"
	"laacad/internal/scenario"
	"laacad/internal/snapshot"
)

// Unified deployment API: Scenario + Runner.
//
// A Scenario is a single replayable value bundling everything that defines
// a run — named region, named placement generator, node count, and engine
// configuration — and Run drives any execution regime (synchronous rounds,
// localized Algorithm 2, event-driven async) through one cancellable,
// observable entry point:
//
//	sc, _ := laacad.LookupScenario("corner")
//	ctx, cancel := context.WithCancel(context.Background())
//	res, err := laacad.Run(ctx, sc,
//		laacad.WithWorkers(-1),
//		laacad.WithObserver(func(r laacad.Runner, st laacad.RoundStats) error {
//			fmt.Printf("round %d: R=%.4f\n", st.Round, st.MaxCircumradius)
//			return nil // or laacad.ErrStop to end the run early
//		}))
//
// Cancelling ctx mid-run returns the partial Result together with ctx's
// error; a checkpoint taken afterwards (Runner.Snapshot, or automatically
// via WithSnapshotEvery) resumes the remaining rounds bit-identically to an
// uninterrupted run — the determinism contract extended to interrupted runs.

// Scenario is a complete, replayable deployment definition; resolve named
// ones with LookupScenario or build ad-hoc values directly.
type Scenario = scenario.Scenario

// Runner is the common interface of every execution regime: Run(ctx) plus
// Snapshot(). Both the synchronous core engine and the event-driven
// simulator implement it.
type Runner = scenario.Runner

// Observer streams RoundStats to the caller as rounds (or τ epochs)
// complete; see WithObserver.
type Observer = scenario.Observer

// RunOption customizes a Run/NewRunner/Resume call.
type RunOption = scenario.Option

// Checkpoint is a resumable deployment state (see Runner.Snapshot and
// Resume). Engine checkpoints resume bit-identically; async checkpoints
// resume positionally.
type Checkpoint = snapshot.State

// ErrStop is the sentinel an Observer returns to end a run early and
// cleanly: Run finalizes and returns the partial Result with a nil error.
var ErrStop = core.ErrStop

// Run builds the scenario's Runner and drives it to completion (or
// cancellation) under ctx — the unified entry point every regime flows
// through.
func Run(ctx context.Context, sc Scenario, opts ...RunOption) (*Result, error) {
	return scenario.Run(ctx, sc, opts...)
}

// NewRunner builds the Runner for a scenario without starting it — use
// this when you need the Runner handle afterwards (e.g. to Snapshot an
// interrupted run).
func NewRunner(sc Scenario, opts ...RunOption) (Runner, error) {
	return scenario.NewRunner(sc, opts...)
}

// Resume continues a checkpointed run to completion under ctx, resolving
// the region through the registry.
func Resume(ctx context.Context, st *Checkpoint, opts ...RunOption) (*Result, error) {
	return scenario.Resume(ctx, st, opts...)
}

// ResumeRunner rebuilds a Runner from a checkpoint without starting it.
func ResumeRunner(st *Checkpoint, opts ...RunOption) (Runner, error) {
	return scenario.ResumeRunner(st, opts...)
}

// ReadCheckpoint parses the resumable checkpoint at path.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	return snapshot.ReadStateFile(path)
}

// WithObserver streams every completed round (or τ epoch) to fn. The
// observer runs between rounds and may stop the run (ErrStop), abort it
// (any other error), checkpoint it, or mutate topology via EngineOf for
// failure injection.
func WithObserver(fn Observer) RunOption { return scenario.WithObserver(fn) }

// WithWorkers overrides Config.Workers for this run; results are
// bit-identical for every value.
func WithWorkers(n int) RunOption { return scenario.WithWorkers(n) }

// WithMaxRounds overrides Config.MaxRounds for this run (ignored by async
// scenarios, whose budget is AsyncConfig.MaxTime).
func WithMaxRounds(n int) RunOption { return scenario.WithMaxRounds(n) }

// WithShards runs the synchronous engine sharded across n stripe-partitioned
// shard goroutines exchanging ρ-halos of border positions. Positions, trace,
// radii and message totals are bit-identical to the shared-memory engine for
// every shard count; halo traffic is observable via WithMetrics
// ("shard.halo_msgs", "shard.halo_bytes", "shard.exchanges"). n ≤ 1 selects
// the shared-memory engine; async scenarios ignore the option.
func WithShards(n int) RunOption { return scenario.WithShards(n) }

// WithSnapshotEvery checkpoints the run every `every` rounds into sink —
// e.g. a file writer for crash-safe long runs.
func WithSnapshotEvery(every int, sink func(*Checkpoint) error) RunOption {
	return scenario.WithSnapshotEvery(every, sink)
}

// MetricsRegistry is a set of named int64 metrics — live gauges over the
// WSN's concurrency-safe counters plus per-round snapshots of the engine's
// cumulative work counters. It implements http.Handler (a flat JSON object
// with sorted keys), so exposing a live run is one line:
//
//	var reg laacad.MetricsRegistry
//	go http.ListenAndServe(addr, &reg)
//	res, err := laacad.Run(ctx, sc, laacad.WithMetrics(&reg))
type MetricsRegistry = metrics.Registry

// WithMetrics publishes the run's observability surface into reg: live
// gauges ("wsn.messages", "wsn.escrow_depth") that are exact and monotone
// even when sampled mid-round, and per-round counters ("engine.*",
// "cache.*", "spec.*", "flags.evals", "wsn.rebuilds",
// "wsn.incremental_moves") published after every completed round.
func WithMetrics(reg *MetricsRegistry) RunOption { return scenario.WithMetrics(reg) }

// EngineOf unwraps the synchronous round engine behind a Runner, when the
// Runner is one — the handle for AddNode/RemoveNode failure injection from
// an Observer.
func EngineOf(r Runner) (*Engine, bool) { return scenario.Engine(r) }

// AsyncDeploymentOf unwraps the event-driven simulator behind a Runner,
// when the Runner is one.
func AsyncDeploymentOf(r Runner) (*AsyncDeployment, bool) { return scenario.AsyncDeployment(r) }

// Scenario registry.

// Scenarios returns every registered scenario in name order.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// LookupScenario resolves a registered scenario by name.
func LookupScenario(name string) (Scenario, error) { return scenario.Lookup(name) }

// RegisterScenario installs (or replaces) a named scenario; its Region and
// Placement must already be registered.
func RegisterScenario(sc Scenario) error { return scenario.Register(sc) }

// RegionNames returns the registered region names, sorted.
func RegionNames() []string { return scenario.RegionNames() }

// RegisterRegion installs (or replaces) a named region constructor.
func RegisterRegion(name string, fn func() *Region) { scenario.RegisterRegion(name, fn) }

// LookupRegionByName builds the named registered region.
func LookupRegionByName(name string) (*Region, error) { return scenario.LookupRegion(name) }

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string { return scenario.PlacementNames() }

// RegisterPlacement installs (or replaces) a named placement generator.
func RegisterPlacement(name string, fn scenario.PlacementFunc) {
	scenario.RegisterPlacement(name, fn)
}
