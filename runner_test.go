package laacad

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// These tests pin the PR's acceptance criteria for the unified
// Scenario/Runner API: one entry point for both engines, clean
// cancellation with a partial Result, and bit-identical resume from a
// checkpoint — including a trip through the on-disk JSON encoding.

// testScenario is a small ad-hoc scenario that converges in a few dozen
// rounds.
func testScenario(seed int64) Scenario {
	cfg := DefaultConfig(2)
	cfg.Epsilon = 2e-3
	cfg.MaxRounds = 200
	cfg.Seed = seed
	return Scenario{Region: "square", Placement: "uniform", N: 24, Config: cfg}
}

func sameDeployment(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if len(a.Positions) != len(b.Positions) {
		t.Fatalf("%s: %d vs %d nodes", label, len(a.Positions), len(b.Positions))
	}
	for i := range a.Positions {
		if !a.Positions[i].Eq(b.Positions[i]) {
			t.Fatalf("%s: position %d differs: %v vs %v", label, i, a.Positions[i], b.Positions[i])
		}
		if a.Radii[i] != b.Radii[i] {
			t.Fatalf("%s: radius %d differs: %v vs %v", label, i, a.Radii[i], b.Radii[i])
		}
	}
}

// TestCancelThenResumeBitIdentical is the acceptance test: cancelling
// mid-run yields a partial Result, and resuming from the snapshot (after a
// disk round-trip) finishes with positions and radii bit-identical to an
// uninterrupted run of the same Scenario.
func TestCancelThenResumeBitIdentical(t *testing.T) {
	sc := testScenario(42)

	full, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatalf("reference run did not converge in %d rounds", full.Rounds)
	}

	// Interrupt the same scenario after 5 rounds via context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewRunner(sc, WithObserver(func(_ Runner, st RoundStats) error {
		if st.Round == 5 {
			cancel()
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned err=%v, want context.Canceled", err)
	}
	if partial == nil || partial.Rounds != 5 || partial.Converged {
		t.Fatalf("partial result: %+v", partial)
	}
	if len(partial.Positions) != sc.N || len(partial.Radii) != sc.N {
		t.Fatalf("partial result incomplete: %d positions, %d radii", len(partial.Positions), len(partial.Radii))
	}

	// Checkpoint the interrupted runner, write it to disk, read it back.
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Region != "square" || st.Round != 5 {
		t.Fatalf("checkpoint mislabeled: region=%q round=%d", st.Region, st.Round)
	}
	path := filepath.Join(t.TempDir(), "resume.json")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := Resume(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds != full.Rounds || resumed.Converged != full.Converged {
		t.Fatalf("resumed run shape differs: rounds %d vs %d, converged %v vs %v",
			resumed.Rounds, full.Rounds, resumed.Converged, full.Converged)
	}
	sameDeployment(t, full, resumed, "resume")
	// The stitched trace must equal the uninterrupted one round for round.
	if len(resumed.Trace) != len(full.Trace) {
		t.Fatalf("trace length %d vs %d", len(resumed.Trace), len(full.Trace))
	}
	for i := range full.Trace {
		if resumed.Trace[i] != full.Trace[i] {
			t.Fatalf("trace diverges at round %d: %+v vs %+v", i+1, resumed.Trace[i], full.Trace[i])
		}
	}
}

// TestLocalizedCancelResume extends the resume contract to the Localized
// (Algorithm 2) regime, where rounds also draw message-loss randomness.
func TestLocalizedCancelResume(t *testing.T) {
	sc := testScenario(7)
	sc.N = 20
	sc.Config.Mode = Localized
	sc.Config.Gamma = 0.3
	sc.Config.Epsilon = 3e-3

	full, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewRunner(sc, WithObserver(func(_ Runner, st RoundStats) error {
		if st.Round == 3 {
			cancel()
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	sameDeployment(t, full, resumed, "localized resume")
}

// TestAsyncThroughRunnerInterface drives the event-driven simulator through
// the same Run/Runner path as the synchronous engine, and checks that
// cancellation yields a partial result there too.
func TestAsyncThroughRunnerInterface(t *testing.T) {
	sc, err := LookupScenario("async")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 12
	sc.AsyncConfig.Epsilon = 3e-3
	sc.AsyncConfig.MaxTime = 500

	res, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != sc.N || res.Rounds == 0 || len(res.Trace) != res.Rounds {
		t.Fatalf("unified async result malformed: rounds=%d trace=%d", res.Rounds, len(res.Trace))
	}

	// Cancel after 3 epochs; the partial result must still be usable and
	// the checkpoint resumable (positionally) through the registry.
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewRunner(sc, WithObserver(func(r Runner, st RoundStats) error {
		if _, ok := AsyncDeploymentOf(r); !ok {
			t.Error("async runner should unwrap to an AsyncDeployment")
		}
		if st.Round == 3 {
			cancel()
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if partial == nil || len(partial.Positions) != sc.N {
		t.Fatalf("partial async result malformed: %+v", partial)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Converged {
		t.Errorf("resumed async run did not converge (rounds=%d)", resumed.Rounds)
	}
}

// TestObserverTopologyChangesReplayDeterministically injects failures and
// reinforcements mid-run from the Observer — RemoveNode at round 4, AddNode
// at round 8 — and asserts the run replays bit-identically across repeats
// and worker counts (the PR 1 determinism contract under the new API).
func TestObserverTopologyChangesReplayDeterministically(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		sc := testScenario(11)
		sc.Config.MaxRounds = 40
		res, err := Run(context.Background(), sc,
			WithWorkers(workers),
			WithObserver(func(r Runner, st RoundStats) error {
				eng, ok := EngineOf(r)
				if !ok {
					t.Fatal("sync runner should unwrap to an Engine")
				}
				switch st.Round {
				case 4:
					if err := eng.RemoveNode(2); err != nil {
						return err
					}
				case 8:
					eng.AddNode(Pt(0.25, 0.75))
				}
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if len(base.Positions) != 24 { // 24 - 1 + 1
		t.Fatalf("topology churn lost nodes: %d", len(base.Positions))
	}
	sameDeployment(t, base, run(1), "repeat")
	sameDeployment(t, base, run(-1), "workers")
}

// TestResumeFinishedRunIsNoOp pins that a checkpoint of an already
// converged run resumes to the identical Result without executing any
// further rounds.
func TestResumeFinishedRunIsNoOp(t *testing.T) {
	sc := testScenario(13)
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatalf("run did not converge in %d rounds", full.Rounds)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("checkpoint of a finished run should record convergence")
	}
	resumed, err := Resume(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds != full.Rounds {
		t.Fatalf("resuming a finished run executed extra rounds: %d vs %d", resumed.Rounds, full.Rounds)
	}
	sameDeployment(t, full, resumed, "finished resume")
}

// TestEmptyRadiiGuards pins the degenerate-result guards on both Result
// variants.
func TestEmptyRadiiGuards(t *testing.T) {
	var r Result
	if r.MaxRadius() != 0 || r.MinRadius() != 0 {
		t.Errorf("core empty radii: max=%v min=%v, want 0,0", r.MaxRadius(), r.MinRadius())
	}
	var a AsyncResult
	if a.MaxRadius() != 0 || a.MinRadius() != 0 {
		t.Errorf("sim empty radii: max=%v min=%v, want 0,0", a.MaxRadius(), a.MinRadius())
	}
}
