module laacad

go 1.21
