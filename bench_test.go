package laacad

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"laacad/internal/boundary"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/region"
	"laacad/internal/shard"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Benchmarks: one per paper artifact (DESIGN.md §4) plus the ablations
// (§5). Each benchmark exercises the code path that regenerates the
// corresponding table or figure at a representative size, so `go test
// -bench=.` doubles as a performance regression harness for the whole
// reproduction pipeline.

func benchSites(n int, seed int64) []Site {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = Site{ID: i, Pos: Pt(rng.Float64(), rng.Float64())}
	}
	return sites
}

func benchStart(reg *Region, n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	return PlaceUniform(reg, n, rng)
}

// BenchmarkFig1KOrderVoronoi builds the 2-order Voronoi diagram of 30 nodes
// (Fig. 1's structure).
func BenchmarkFig1KOrderVoronoi(b *testing.B) {
	reg := UnitSquareKm()
	sites := benchSites(30, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KOrderVoronoi(sites, 2, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2ExpandingRing runs the Algorithm 2 expanding-ring search for
// the central node of a hex lattice at k=4 (Fig. 2's measurement).
func BenchmarkFig2ExpandingRing(b *testing.B) {
	pts := wsn.HexLattice(25, 25, 0.04)
	bb := geomBBoxOf(pts)
	reg := RectRegion(bb.Min.X, bb.Min.Y, bb.Max.X, bb.Max.Y)
	center := wsn.CenterIndex(pts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := wsn.New(pts, 0.05)
		probe := core.ExpandingRing(net, reg, center, 4, 64, wsn.RingGeometric, 0)
		if len(probe.Region) == 0 {
			b.Fatal("empty region")
		}
	}
}

func geomBBoxOf(pts []Point) BBox {
	out := BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts {
		out = out.Expand(p)
	}
	return out
}

// BenchmarkFig5Deployment runs a full corner-start deployment to
// convergence at a reduced size (Fig. 5's workload).
func BenchmarkFig5Deployment(b *testing.B) {
	reg := UnitSquareKm()
	rng := rand.New(rand.NewSource(3))
	start := PlaceCorner(reg, 50, 0.1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 150
		if _, err := Deploy(reg, start, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Convergence measures one LAACAD round at the Fig. 6 scale
// (100 nodes, k=4) — the unit of the convergence trace.
func BenchmarkFig6Convergence(b *testing.B) {
	reg := UnitSquareKm()
	eng, err := NewEngine(reg, benchStart(reg, 100, 4), DefaultConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkFig7LoadSweep runs one cell of the Fig. 7 sweep (N=100, k=2,
// full deployment plus load computation).
func BenchmarkFig7LoadSweep(b *testing.B) {
	reg := UnitSquareKm()
	start := benchStart(reg, 100, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 150
		res, err := Deploy(reg, start, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = MaxLoad(res.Radii, DiskAreaEnergy{})
		_ = TotalLoad(res.Radii, DiskAreaEnergy{})
	}
}

// BenchmarkTable1MinNode2Coverage measures one LAACAD round at the Table I
// scale (1000 nodes, k=2, 100×100 m).
func BenchmarkTable1MinNode2Coverage(b *testing.B) {
	reg := RectRegion(0, 0, 100, 100)
	cfg := DefaultConfig(2)
	cfg.Epsilon = 0.02
	eng, err := NewEngine(reg, benchStart(reg, 1000, 6), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkTable2LensComparison measures one LAACAD round at the Table II
// scale (180 nodes, k=6, 100×100 m).
func BenchmarkTable2LensComparison(b *testing.B) {
	reg := RectRegion(0, 0, 100, 100)
	cfg := DefaultConfig(6)
	cfg.Epsilon = 0.02
	eng, err := NewEngine(reg, benchStart(reg, 180, 7), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkFig8Obstacles runs a full deployment over the two-obstacle
// region (Fig. 8's workload) at a reduced size.
func BenchmarkFig8Obstacles(b *testing.B) {
	reg := SquareWithTwoObstacles()
	start := benchStart(reg, 60, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 150
		if _, err := Deploy(reg, start, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStepSize compares rounds-to-converge across step sizes
// (DESIGN.md ablation).
func BenchmarkAblationStepSize(b *testing.B) {
	reg := UnitSquareKm()
	start := benchStart(reg, 40, 9)
	for _, alpha := range []float64{0.25, 0.5, 1.0} {
		b.Run(f64Name(alpha), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(2)
				cfg.Alpha = alpha
				cfg.Epsilon = 1e-3
				cfg.MaxRounds = 300
				if _, err := Deploy(reg, start, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func f64Name(v float64) string {
	switch v {
	case 0.25:
		return "alpha=0.25"
	case 0.5:
		return "alpha=0.50"
	default:
		return "alpha=1.00"
	}
}

// BenchmarkAblationLocalizedVsCentralized compares one round of dominating-
// region computation in both engine modes (50 nodes, k=2).
func BenchmarkAblationLocalizedVsCentralized(b *testing.B) {
	reg := UnitSquareKm()
	start := benchStart(reg, 50, 10)
	for _, mode := range []Mode{Centralized, Localized} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig(2)
			cfg.Mode = mode
			cfg.Gamma = 0.25
			eng, err := NewEngine(reg, start, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.DebugRegions()
			}
		})
	}
}

// BenchmarkKOrderVoronoiAlgorithms compares the direct dominating-region
// computation against the iterative-refinement diagram at k=3.
func BenchmarkKOrderVoronoiAlgorithms(b *testing.B) {
	reg := UnitSquareKm()
	sites := benchSites(25, 11)
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range sites {
				voronoi.DominatingRegion(s, sites, 3, reg.Pieces())
			}
		}
	})
	b.Run("diagram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := voronoi.KOrderDiagram(sites, 3, reg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchWorkerCounts is the worker sweep for the parallel-step benchmarks:
// 1, 2, 4 and NumCPU (deduplicated and capped to available CPUs, so the
// sweep is meaningful on any machine).
func benchWorkerCounts() []int {
	counts := []int{1}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		if w > runtime.NumCPU() {
			continue
		}
		if w != counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	return counts
}

// BenchmarkStepParallel measures one synchronous LAACAD round across worker
// counts at two network sizes — the regression surface for the parallel
// round engine. The trajectory is bit-identical for every worker count, so
// the sub-benchmarks time the same work; with W workers on ≥W free cores
// the round should approach a W× speedup (region computations dominate and
// are embarrassingly parallel).
func BenchmarkStepParallel(b *testing.B) {
	reg := UnitSquareKm()
	for _, n := range []int{250, 1000} {
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				cfg := DefaultConfig(2)
				cfg.Epsilon = 1e-9 // keep every node moving for the whole run
				cfg.Workers = w
				eng, err := NewEngine(reg, benchStart(reg, n, 42), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
		}
	}
}

// BenchmarkShardStep measures one synchronous round through the
// stripe-partitioned sharded engine across shard counts at two network
// sizes. shards=1 is the baseline (one shard owning the whole region, no
// halo traffic beyond the protocol's fixed skeleton); higher counts add the
// ρ-halo exchange overhead the sharding design must amortize. The
// trajectory is bit-identical to the shared-memory engine for every cell,
// so all sub-benchmarks time the same deployment work.
func BenchmarkShardStep(b *testing.B) {
	reg := UnitSquareKm()
	for _, n := range []int{250, 1000} {
		for _, s := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, s), func(b *testing.B) {
				cfg := DefaultConfig(2)
				cfg.Epsilon = 1e-9 // keep every node moving for the whole run
				eng, err := shard.New(reg, benchStart(reg, n, 42), cfg, s)
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
		}
	}
}

// BenchmarkFinalizeParallel measures the Finalize/DebugRegions fan-out (the
// other parallelized surface) at the Table I scale.
func BenchmarkFinalizeParallel(b *testing.B) {
	reg := UnitSquareKm()
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := DefaultConfig(2)
			cfg.Workers = w
			eng, err := NewEngine(reg, benchStart(reg, 500, 43), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if regions := eng.DebugRegions(); len(regions) != 500 {
					b.Fatal("bad region count")
				}
			}
		})
	}
}

// benchScaleSizes is the n-sweep of the scale benchmarks: 1k and 10k always,
// 100k only without -short (CI's bench smoke runs -short, so the 100k cells
// are exercised by the committed snapshots, not on shared runners).
func benchScaleSizes() []int {
	sizes := []int{1000, 10000}
	if !testing.Short() {
		sizes = append(sizes, 100000)
	}
	return sizes
}

// BenchmarkScaleGridDynamic measures the steady-state index pattern of a
// large deployment: one node moves, then its neighborhood is queried. A
// throwaway index pays a full O(n) rebuild per move; an incremental one pays
// for the two touched cells only.
func BenchmarkScaleGridDynamic(b *testing.B) {
	for _, n := range benchScaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, pitch := wsn.UnitLattice(n, 0)
			net := wsn.New(pts, 0.05)
			net.Rebuild()
			net.NeighborsWithin(0, 3*pitch) // warm the lazy path too
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % n
				p := pts[j]
				net.SetPosition(j, Pt(p.X, p.Y+0.25*pitch))
				net.SetPosition(j, p)
				if len(net.NeighborsWithin(j, 3*pitch)) == 0 {
					b.Fatal("no neighbors")
				}
			}
		})
	}
}

// BenchmarkScaleStepFewMovers measures Engine.Step in the few-movers regime
// (lattice start, 64 displaced nodes): after the first round populates the
// outcome cache, each round recomputes only the displaced neighborhoods.
// The round cost should track what moved, not what exists.
func BenchmarkScaleStepFewMovers(b *testing.B) {
	for _, n := range benchScaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, pitch := wsn.UnitLattice(n, 64)
			cfg := DefaultConfig(2)
			cfg.Epsilon = pitch / 50
			eng, err := NewEngine(UnitSquareKm(), pts, cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng.Step() // warm: compute and cache every node once
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

// benchSeqWorkerCounts is the fixed worker sweep of the Sequential-order
// benchmarks. Unlike benchWorkerCounts it is not capped to NumCPU: the cells
// must exist on every machine so committed snapshots line up, and the
// colored-sweep schedule is bit-identical regardless (oversubscribed workers
// just time-share the cores).
func benchSeqWorkerCounts() []int { return []int{1, 2, 4} }

// BenchmarkSeqStepFewMovers measures one Sequential (Gauss–Seidel) round in
// the few-movers regime across worker counts — the regression surface for
// the graph-colored parallel sweep. The trajectory is bit-identical for
// every worker count; with W workers on ≥W free cores the dirty-node
// recomputations fan out across the color waves, so the round should
// approach the synchronous round's scaling.
func BenchmarkSeqStepFewMovers(b *testing.B) {
	for _, n := range benchScaleSizes() {
		for _, w := range benchSeqWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				pts, pitch := wsn.UnitLattice(n, 64)
				cfg := DefaultConfig(2)
				cfg.Order = Sequential
				cfg.Epsilon = pitch / 50
				cfg.Workers = w
				eng, err := NewEngine(UnitSquareKm(), pts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				eng.Step() // warm: compute and cache every node once
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
		}
	}
}

// BenchmarkSeqStepActive measures a Sequential round with every node moving
// (epsilon ~ 0) — the mover-heavy regime where the colored schedule's wave
// depth, not the dirty-set size, bounds the parallel speedup.
func BenchmarkSeqStepActive(b *testing.B) {
	reg := UnitSquareKm()
	for _, w := range benchSeqWorkerCounts() {
		b.Run(fmt.Sprintf("n=1000/workers=%d", w), func(b *testing.B) {
			cfg := DefaultConfig(2)
			cfg.Order = Sequential
			cfg.Epsilon = 1e-9 // keep every node moving for the whole run
			cfg.Workers = w
			eng, err := NewEngine(reg, benchStart(reg, 1000, 42), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

// BenchmarkSeqStepLevels measures Sequential rounds in the mover-heavy,
// sparse-interference regime — a quarter of the lattice displaced — where
// the level scheduler's layered waves (rather than the dirty-set size or a
// fixed wave budget) determine how much of the sweep parallelizes. Worker
// scaling here is the level schedule's regression surface: the serial
// reference (workers=1) never plans, and each wider run executes the same
// trajectory through batched waves.
func BenchmarkSeqStepLevels(b *testing.B) {
	for _, n := range benchScaleSizes() {
		for _, w := range benchSeqWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				pts, pitch := wsn.UnitLattice(n, n/4)
				cfg := DefaultConfig(2)
				cfg.Order = Sequential
				cfg.Epsilon = pitch / 50
				cfg.Workers = w
				eng, err := NewEngine(UnitSquareKm(), pts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				eng.Step() // warm: compute and cache every node once
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
		}
	}
}

// BenchmarkScaleLocalizedFewMovers measures a Localized (Algorithm 2) round
// in the few-movers regime. Unlike the Centralized lattice, a Localized
// lattice start has a real transient: boundary nodes (ring-closed regions)
// push outward for ~20 rounds before settling, so the warm loop steps until
// fewer than n/128 nodes still move — the regime a long-lived deployment
// spends almost all of its life in. There the message-faithful cache lets
// unaffected nodes skip their expanding-ring searches while re-charging the
// recorded message cost, so the round cost tracks what moved while the
// per-round message count stays exactly equal to the eager run's.
func BenchmarkScaleLocalizedFewMovers(b *testing.B) {
	for _, n := range benchScaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, pitch := wsn.UnitLattice(n, 64)
			cfg := DefaultConfig(2)
			cfg.Mode = Localized
			cfg.Gamma = 3 * pitch
			cfg.Epsilon = pitch / 50
			eng, err := NewEngine(UnitSquareKm(), pts, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < 30; r++ { // settle the boundary transient
				if st, done := eng.Step(); done || st.Moved <= n/128 {
					break
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.StopTimer()
			if eng.Network().MessageCount() == 0 {
				b.Fatal("no messages charged; accounting broken")
			}
		})
	}
}

// BenchmarkSeqLocalizedFewMovers measures a Sequential-order Localized round
// in the few-movers regime. The outcome cache already confines the
// expanding-ring searches to γ-ball-touched nodes, so whole-network boundary
// detection is the last O(n) term in the round — this is the regression
// surface for the incremental boundary-flag cache.
func BenchmarkSeqLocalizedFewMovers(b *testing.B) {
	for _, n := range benchScaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, pitch := wsn.UnitLattice(n, 64)
			cfg := DefaultConfig(2)
			cfg.Mode = Localized
			cfg.Order = Sequential
			cfg.Gamma = 3 * pitch
			cfg.Epsilon = pitch / 50
			eng, err := NewEngine(UnitSquareKm(), pts, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < 30; r++ { // settle the boundary transient
				if st, done := eng.Step(); done || st.Moved <= n/128 {
					break
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
			b.StopTimer()
			if eng.Network().MessageCount() == 0 {
				b.Fatal("no messages charged; accounting broken")
			}
		})
	}
}

// BenchmarkBoundaryDetector measures the AngularGap whole-network scan — the
// per-round boundary-detection cost a Localized run pays whenever flags
// cannot be served from the incremental cache (cold start, global writes).
func BenchmarkBoundaryDetector(b *testing.B) {
	for _, n := range []int{2500, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, pitch := wsn.UnitLattice(n, 0)
			net := wsn.New(pts, 3*pitch)
			net.Rebuild()
			det := boundary.AngularGap{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flags := det.Boundary(net)
				if !flags[0] {
					b.Fatal("corner lattice node must be a boundary node")
				}
			}
		})
	}
}

// BenchmarkWelzl measures the Chebyshev-center primitive on 64 points.
func BenchmarkWelzl(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SmallestEnclosingCircle(pts)
	}
}

// BenchmarkCoverageVerify measures grid verification at the scale used by
// the experiment harness (100 nodes, 100×100 grid).
func BenchmarkCoverageVerify(b *testing.B) {
	reg := UnitSquareKm()
	start := benchStart(reg, 100, 13)
	radii := make([]float64, len(start))
	for i := range radii {
		radii[i] = 0.15
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := coverage.Verify(start, radii, regionPtr(reg), 100)
		if rep.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

func regionPtr(r *Region) *region.Region { return r }
