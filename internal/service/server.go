package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"laacad/internal/core"
	"laacad/internal/fault"
	"laacad/internal/metrics"
	"laacad/internal/scenario"
	"laacad/internal/snapshot"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrUnknownJob wraps lookups of job IDs the server does not know.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrDraining rejects submissions during shutdown.
	ErrDraining = errors.New("service: server is draining")
	// ErrNoResult wraps result requests for jobs that have not finished.
	ErrNoResult = errors.New("service: no result yet")
)

// Config parameterizes a Server.
type Config struct {
	// SpoolDir is the durable job spool (required). The server owns the
	// directory: an append-only journal of job transition records (see
	// OpenJournal for the format and crash-recovery semantics).
	SpoolDir string
	// Pool is the number of worker slots — concurrent laacad runs. Zero or
	// negative means runtime.NumCPU().
	Pool int
	// Metrics, if non-nil, receives the service counters and gauges;
	// otherwise the server creates its own registry. Either way the
	// registry is exposed at /metrics by Handler.
	Metrics *metrics.Registry
	// FS is the filesystem seam every durable operation runs through; nil
	// means the real filesystem. Fault-injection tests interpose here.
	FS fault.FS
	// Clock drives retry backoff and deadlines; nil means the wall clock.
	// Policy tests substitute a fault.Manual clock.
	Clock fault.Clock
	// Journal tunes the job journal (sync policy, segment rotation,
	// compaction). Its FS field, if nil, inherits Config.FS.
	Journal JournalOptions
	// RunHook, if set, is consulted at the start of every run attempt; a
	// non-nil error fails the attempt without touching the engine. It is a
	// deterministic seam for retry-policy tests (fail the first k attempts
	// of a job, then let it through).
	RunHook func(id string, attempt int) error
}

// job is the runtime wrapper around the durable record: scheduling state
// that must not (cancel funcs) or need not (event buffers, rebuildable from
// the spooled trace) survive a restart. All fields are guarded by Server.mu.
type job struct {
	Job

	cancel          context.CancelFunc
	preempting      bool
	cancelRequested bool
	deadlined       bool

	events []Event
	// notify is closed and replaced every time an event is appended;
	// subscribers grab the current channel together with their cursor.
	notify chan struct{}
}

// Server owns the job queue, the spool, and the worker pool. Create with
// New; all methods are safe for concurrent use.
type Server struct {
	cfg     Config
	pool    int
	reg     *metrics.Registry
	journal *Journal
	clock   fault.Clock

	mu       sync.Mutex
	jobs     map[string]*job
	clients  map[string]string // ClientID -> job ID (idempotent submission)
	slots    []string          // job ID per worker slot; "" = free
	seq      uint64
	draining bool
	warns    []error

	wg sync.WaitGroup

	// wake nudges the policy loop after anything that changes the next
	// backoff/deadline instant; stop ends it.
	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once

	accepted    *metrics.Counter
	completed   *metrics.Counter
	failed      *metrics.Counter
	cancelled   *metrics.Counter
	preempted   *metrics.Counter
	resumed     *metrics.Counter
	retried     *metrics.Counter
	deadlined   *metrics.Counter
	quarantined *metrics.Counter
}

// New builds a Server over the spool directory, recovering any jobs a
// previous daemon left behind: terminal jobs keep their results, queued
// jobs re-enter the queue, and jobs that were running (clean shutdown or
// crash) resume from their checkpoint — or restart from scratch when no
// checkpoint was captured, which is safe because a scenario is a replayable
// value. Recovered runnable jobs dispatch immediately.
func New(cfg Config) (*Server, error) {
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("service: Config.SpoolDir is required")
	}
	pool := cfg.Pool
	if pool <= 0 {
		pool = runtime.NumCPU()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = &metrics.Registry{}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = fault.Wall{}
	}
	jopts := cfg.Journal
	if jopts.FS == nil {
		jopts.FS = cfg.FS
	}
	jopts = jopts.withDefaults()
	jl, recovery, err := OpenJournal(cfg.SpoolDir, jopts)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		reg:     reg,
		journal: jl,
		clock:   clock,
		jobs:    make(map[string]*job),
		clients: make(map[string]string),
		slots:   make([]string, pool),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),

		accepted:    reg.Counter("service.jobs_accepted"),
		completed:   reg.Counter("service.jobs_completed"),
		failed:      reg.Counter("service.jobs_failed"),
		cancelled:   reg.Counter("service.jobs_cancelled"),
		preempted:   reg.Counter("service.jobs_preempted"),
		resumed:     reg.Counter("service.jobs_resumed"),
		retried:     reg.Counter("service.jobs_retried"),
		deadlined:   reg.Counter("service.jobs_deadline_exceeded"),
		quarantined: reg.Counter("service.records_quarantined"),
	}
	reg.Gauge("service.queue_depth", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var n int64
		for _, j := range s.jobs {
			if j.State.runnable() {
				n++
			}
		}
		return n
	})
	reg.Gauge("service.pool_occupancy", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var n int64
		for _, id := range s.slots {
			if id != "" {
				n++
			}
		}
		return n
	})
	reg.Counter("service.pool_size").Set(int64(pool))
	reg.Gauge("service.journal_segments", func() int64 { return int64(s.journal.Stats().Segments) })
	reg.Gauge("service.journal_records", func() int64 { return int64(s.journal.Stats().Records) })
	reg.Gauge("service.journal_live", func() int64 { return int64(s.journal.Stats().Live) })
	reg.Gauge("service.journal_compactions", func() int64 { return s.journal.Stats().Compactions })
	reg.Gauge("service.quarantine_files", func() int64 {
		names, err := jopts.FS.ReadDir(quarantineDir(cfg.SpoolDir))
		if err != nil {
			return 0
		}
		return int64(len(names))
	})

	s.quarantined.Add(int64(recovery.Quarantined))
	s.mu.Lock()
	s.warns = append(s.warns, recovery.Warnings...)
	for _, rec := range recovery.Jobs {
		j := &job{Job: *rec, notify: make(chan struct{})}
		j.Slot = -1
		switch {
		case j.State.Terminal():
			// Keep as-is.
		case j.Checkpoint != nil:
			// Cleanly preempted, or interrupted after a checkpoint was
			// journaled: resume from it.
			j.State = StatePreempted
			s.accepted.Add(1)
		default:
			// Queued, or interrupted before any checkpoint: replay from the
			// start (the scenario is deterministic, so nothing is lost).
			j.State = StateQueued
			s.accepted.Add(1)
		}
		seedEvents(j)
		s.jobs[j.ID] = j
		if cid := j.Spec.ClientID; cid != "" {
			s.clients[cid] = j.ID
		}
		if j.Seq > s.seq {
			s.seq = j.Seq
		}
		s.spoolLocked(j)
	}
	s.dispatchLocked()
	s.mu.Unlock()
	go s.policyLoop()
	return s, nil
}

// seedEvents rebuilds a recovered job's event stream from its durable trace
// (checkpoint for interrupted jobs, result for finished ones), so SSE
// clients reconnecting after a daemon restart still replay history.
func seedEvents(j *job) {
	j.events = j.events[:0]
	push := func(e Event) {
		e.ID = len(j.events) + 1
		e.JobID = j.ID
		j.events = append(j.events, e)
	}
	push(Event{Type: "state", State: StateQueued})
	var trace []core.RoundStats
	switch {
	case j.Result != nil:
		trace = j.Result.Trace
	case j.Checkpoint != nil:
		trace = coreTrace(j.Checkpoint)
	}
	for i := range trace {
		push(Event{Type: "round", Round: &trace[i]})
	}
	if j.State.Terminal() {
		push(Event{Type: "state", State: j.State, Error: j.Error})
	} else if j.State == StatePreempted {
		push(Event{Type: "state", State: StatePreempted})
	}
}

// coreTrace converts a checkpoint's archived trace back to RoundStats.
func coreTrace(st *snapshot.State) []core.RoundStats {
	out := make([]core.RoundStats, len(st.Trace))
	for i, tr := range st.Trace {
		out[i] = core.RoundStats{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
			Messages:        tr.Messages,
		}
	}
	return out
}

// Metrics returns the server's registry (service.* counters and gauges).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Warnings returns journal-recovery and journal-write problems collected so
// far.
func (s *Server) Warnings() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.warns = append(s.warns, s.journal.Warnings()...)
	return append([]error(nil), s.warns...)
}

// Journal exposes the server's job journal (stats for tests and tools).
func (s *Server) Journal() *Journal { return s.journal }

// Submit validates spec, durably journals it as a new queued job, and
// dispatches. The scheduler may preempt lower-priority running work to make
// room; see JobSpec.Priority. A spec carrying a ClientID the server has
// already accepted returns the existing job — retried POSTs never create
// duplicates.
func (s *Server) Submit(spec JobSpec) (*JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cid := spec.ClientID; cid != "" {
		if id, ok := s.clients[cid]; ok {
			return s.statusLocked(s.jobs[id]), nil
		}
	}
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	now := s.clock.Now()
	j := &job{
		Job: Job{
			ID:          fmt.Sprintf("job-%06d", s.seq),
			Seq:         s.seq,
			Spec:        spec,
			State:       StateQueued,
			SubmittedAt: now,
			Slot:        -1,
		},
		notify: make(chan struct{}),
	}
	if spec.DeadlineMS > 0 {
		dl := now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
		j.Deadline = &dl
	}
	payload, err := json.Marshal(&j.Job)
	if err != nil {
		s.seq--
		return nil, fmt.Errorf("service: encoding job %s: %w", j.ID, err)
	}
	if err := s.journal.Append(j.ID, payload); err != nil {
		s.seq--
		return nil, err
	}
	s.jobs[j.ID] = j
	if cid := spec.ClientID; cid != "" {
		s.clients[cid] = j.ID
	}
	s.accepted.Add(1)
	s.appendEventLocked(j, Event{Type: "state", State: StateQueued})
	s.dispatchLocked()
	if j.Deadline != nil {
		s.wakePolicy()
	}
	return s.statusLocked(j), nil
}

// Cancel moves a job to StateCancelled: queued and preempted jobs
// immediately, running jobs by cancelling their context (the transition
// lands when the worker yields). Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch {
	case j.State.Terminal():
		// Idempotent.
	case j.State == StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	default:
		s.terminalLocked(j, StateCancelled, "")
		s.dispatchLocked()
	}
	return s.statusLocked(j), nil
}

// Status returns the client-facing view of one job.
func (s *Server) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

// List returns every job in submission order.
func (s *Server) List() []*JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Result returns a finished job's deployment result.
func (s *Server) Result(id string) (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if j.Result == nil {
		return nil, fmt.Errorf("%w: job %s is %s", ErrNoResult, id, j.State)
	}
	return j.Result, nil
}

// Events returns the job's events with ID > after (IDs are 1-based), a
// channel closed when more events arrive, and whether the job is terminal
// (terminal means the returned slice completes the stream).
func (s *Server) Events(id string, after int) ([]Event, <-chan struct{}, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, false, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	if after < 0 {
		after = 0
	}
	if after > len(j.events) {
		after = len(j.events)
	}
	return j.events[after:], j.notify, j.State.Terminal(), nil
}

// Idle reports whether no job is runnable or running — the queue is fully
// drained.
func (s *Server) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			return false
		}
	}
	return true
}

// Shutdown drains the server for a restart: no new submissions, every
// running job is cancelled at its next round boundary, checkpointed, and
// journaled as preempted — the generalization of cmd/laacad's checkpoint-on-
// interrupt to a whole pool. Queued jobs stay journaled as queued. A fresh
// Server over the same spool resumes everything. Returns ctx.Err() if the
// pool does not quiesce in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	s.draining = true
	for _, id := range s.slots {
		if id == "" {
			continue
		}
		j := s.jobs[id]
		if j.cancel != nil && !j.cancelRequested {
			j.preempting = true
			j.cancel()
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if err := s.journal.Close(); err != nil {
			s.mu.Lock()
			s.warns = append(s.warns, err)
			s.mu.Unlock()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry/deadline policy. The policy loop sleeps (on the injectable clock)
// until the earliest pending backoff release or deadline, applies whatever
// became due, and redispatches. Anything that changes the schedule nudges
// it through s.wake.

func (s *Server) wakePolicy() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// nextPolicyEventLocked returns the earliest instant the policy loop must
// act on (zero time when nothing is pending).
func (s *Server) nextPolicyEventLocked() time.Time {
	var next time.Time
	sooner := func(t time.Time) {
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	for _, j := range s.jobs {
		if j.State.Terminal() {
			continue
		}
		if j.NotBefore != nil {
			sooner(*j.NotBefore)
		}
		if j.Deadline != nil && !j.deadlined {
			sooner(*j.Deadline)
		}
	}
	return next
}

// applyPolicyLocked releases expired backoffs and fails expired deadlines.
func (s *Server) applyPolicyLocked() {
	now := s.clock.Now()
	for _, j := range s.jobs {
		if j.State.Terminal() {
			continue
		}
		if j.Deadline != nil && !j.deadlined && !now.Before(*j.Deadline) {
			if j.State == StateRunning {
				// Cancel at the next round boundary; settle maps the
				// cancellation to deadline_exceeded via j.deadlined.
				j.deadlined = true
				if j.cancel != nil {
					j.cancel()
				}
			} else {
				s.deadlined.Add(1)
				s.terminalLocked(j, StateFailed, errDeadlineExceeded)
			}
			continue
		}
		if j.NotBefore != nil && !now.Before(*j.NotBefore) {
			j.NotBefore = nil
			s.spoolLocked(j)
		}
	}
}

func (s *Server) policyLoop() {
	for {
		s.mu.Lock()
		next := s.nextPolicyEventLocked()
		now := s.clock.Now()
		s.mu.Unlock()
		var timer <-chan time.Time
		if !next.IsZero() {
			timer = s.clock.After(next.Sub(now))
		}
		select {
		case <-s.stop:
			return
		case <-s.wake:
		case <-timer:
		}
		s.mu.Lock()
		s.applyPolicyLocked()
		s.dispatchLocked()
		s.mu.Unlock()
	}
}

// Scheduling. All *Locked methods require s.mu.

// appendEventLocked stamps and stores an event and wakes subscribers.
func (s *Server) appendEventLocked(j *job, e Event) {
	e.ID = len(j.events) + 1
	e.JobID = j.ID
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
}

// spoolLocked appends the job's current state to the journal, downgrading
// IO errors to warnings: the in-memory queue stays authoritative.
func (s *Server) spoolLocked(j *job) {
	payload, err := json.Marshal(&j.Job)
	if err != nil {
		s.warns = append(s.warns, fmt.Errorf("service: encoding job %s: %w", j.ID, err))
		return
	}
	if err := s.journal.Append(j.ID, payload); err != nil {
		s.warns = append(s.warns, err)
	}
}

// terminalLocked finishes a job: state, counters, event, journal.
func (s *Server) terminalLocked(j *job, state JobState, errMsg string) {
	now := s.clock.Now()
	j.State = state
	j.FinishedAt = &now
	j.Error = errMsg
	switch state {
	case StateDone:
		s.completed.Add(1)
		j.Checkpoint = nil
	case StateFailed:
		s.failed.Add(1)
	case StateCancelled:
		s.cancelled.Add(1)
		j.Checkpoint = nil
	}
	s.appendEventLocked(j, Event{Type: "state", State: state, Error: errMsg})
	s.spoolLocked(j)
}

// bestQueuedLocked picks the runnable job to start next: highest priority,
// then submission order. Jobs inside a retry-backoff window (NotBefore in
// the future) are invisible until the policy loop releases them.
func (s *Server) bestQueuedLocked() *job {
	now := s.clock.Now()
	var best *job
	for _, j := range s.jobs {
		if !j.State.runnable() {
			continue
		}
		if j.NotBefore != nil && now.Before(*j.NotBefore) {
			continue
		}
		if best == nil ||
			j.Spec.Priority > best.Spec.Priority ||
			(j.Spec.Priority == best.Spec.Priority && j.Seq < best.Seq) {
			best = j
		}
	}
	return best
}

// freeSlotLocked returns the lowest free worker slot, or -1.
func (s *Server) freeSlotLocked() int {
	for i, id := range s.slots {
		if id == "" {
			return i
		}
	}
	return -1
}

// victimLocked picks the running job to preempt for an arrival with the
// given priority: the lowest-priority running job, provided it is strictly
// below the arrival (equal priorities never preempt — the queue drains in
// order instead). Among equals the youngest yields, losing the least
// progress.
func (s *Server) victimLocked(priority int) *job {
	var victim *job
	for _, id := range s.slots {
		if id == "" {
			continue
		}
		j := s.jobs[id]
		if j.preempting || j.cancelRequested {
			continue
		}
		if victim == nil ||
			j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.Seq > victim.Seq) {
			victim = j
		}
	}
	if victim == nil || victim.Spec.Priority >= priority {
		return nil
	}
	return victim
}

// dispatchLocked is the scheduler: fill free slots in priority order, and
// when the pool is full, preempt one strictly-lower-priority victim for the
// best queued job. The victim's worker re-enters dispatch when it yields,
// so cascaded preemptions and the actual start of the waiting job follow
// naturally, one slot handoff at a time.
func (s *Server) dispatchLocked() {
	if s.draining {
		return
	}
	for {
		j := s.bestQueuedLocked()
		if j == nil {
			return
		}
		slot := s.freeSlotLocked()
		if slot < 0 {
			if v := s.victimLocked(j.Spec.Priority); v != nil {
				v.preempting = true
				v.cancel()
			}
			return
		}
		s.startLocked(j, slot)
	}
}

// startLocked moves a runnable job onto a worker slot.
func (s *Server) startLocked(j *job, slot int) {
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.State = StateRunning
	j.Slot = slot
	j.Slots = append(j.Slots, slot)
	if j.StartedAt == nil {
		now := s.clock.Now()
		j.StartedAt = &now
	}
	chk := j.Checkpoint
	if chk != nil {
		s.resumed.Add(1)
	}
	s.slots[slot] = j.ID
	s.appendEventLocked(j, Event{Type: "state", State: StateRunning})
	s.spoolLocked(j)
	s.wg.Add(1)
	go s.runJob(ctx, cancel, j, slot, chk)
}

// runJob drives one job on one worker slot: build (or resume) the runner,
// stream rounds into the event log, and settle the outcome. A context
// cancellation is either a client cancel or a preemption/shutdown; the
// latter captures a checkpoint so the job resumes bit-identically — the
// engine checks its context between rounds, so the checkpoint is always a
// clean round boundary.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, slot int, chk *snapshot.State) {
	defer s.wg.Done()
	defer cancel()

	if s.cfg.RunHook != nil {
		s.mu.Lock()
		id, attempt := j.ID, j.Retries
		s.mu.Unlock()
		if err := s.cfg.RunHook(id, attempt); err != nil {
			s.settle(j, slot, nil, chk, err)
			return
		}
	}

	pace := time.Duration(j.Spec.PaceMS) * time.Millisecond
	opts := []scenario.Option{scenario.WithObserver(func(_ scenario.Runner, st core.RoundStats) error {
		s.onRound(j, st)
		if pace > 0 {
			t := time.NewTimer(pace)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		return nil
	})}
	if j.Spec.Workers != nil {
		opts = append(opts, scenario.WithWorkers(*j.Spec.Workers))
	}
	if j.Spec.MaxRounds != nil {
		opts = append(opts, scenario.WithMaxRounds(*j.Spec.MaxRounds))
	}

	var r scenario.Runner
	var err error
	if chk != nil {
		r, err = scenario.ResumeRunner(chk, opts...)
	} else {
		r, err = scenario.NewRunner(j.Spec.Scenario, opts...)
	}
	if err != nil {
		if ctx.Err() != nil {
			// Preempted (or cancelled) before the run even started: keep the
			// checkpoint we were about to resume from, if any.
			s.settle(j, slot, nil, chk, context.Canceled)
			return
		}
		s.settle(j, slot, nil, nil, err)
		return
	}
	res, runErr := r.Run(ctx)
	if errors.Is(runErr, context.Canceled) {
		st, serr := r.Snapshot()
		if serr != nil {
			s.settle(j, slot, nil, nil, fmt.Errorf("checkpointing cancelled run: %w", serr))
			return
		}
		s.settle(j, slot, nil, st, runErr)
		return
	}
	s.settle(j, slot, res, nil, runErr)
}

// onRound records one completed round into the job's event stream.
func (s *Server) onRound(j *job, st core.RoundStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.Rounds = st.Round
	stat := st
	s.appendEventLocked(j, Event{Type: "round", Round: &stat})
}

// settle releases the worker slot and applies the run's outcome: done,
// failed (possibly re-queued by retry policy), cancelled, deadline-expired,
// or preempted-with-checkpoint.
func (s *Server) settle(j *job, slot int, res *core.Result, chk *snapshot.State, runErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots[slot] = ""
	j.Slot = -1
	j.preempting = false
	j.cancel = nil
	switch {
	case errors.Is(runErr, context.Canceled) && j.cancelRequested:
		s.terminalLocked(j, StateCancelled, "")
	case errors.Is(runErr, context.Canceled) && j.deadlined:
		s.deadlined.Add(1)
		s.terminalLocked(j, StateFailed, errDeadlineExceeded)
	case errors.Is(runErr, context.Canceled):
		j.Checkpoint = chk
		j.State = StatePreempted
		if chk == nil {
			// Yielded before any checkpoint existed: replay from the start.
			j.State = StateQueued
		}
		j.Preemptions++
		s.preempted.Add(1)
		s.appendEventLocked(j, Event{Type: "state", State: j.State})
		s.spoolLocked(j)
	case runErr != nil:
		if s.retryLocked(j, runErr) {
			break
		}
		s.terminalLocked(j, StateFailed, runErr.Error())
	default:
		j.Result = res
		s.terminalLocked(j, StateDone, "")
	}
	s.dispatchLocked()
}

// errDeadlineExceeded is the distinguished failure a job carries when its
// Spec.DeadlineMS budget expires.
const errDeadlineExceeded = "deadline_exceeded"

// retryLocked applies retry policy to a failed run: if attempts remain (and
// the deadline, if any, has not passed) the job re-queues behind an
// exponential backoff with deterministic jitter. Reports whether the job
// was re-queued.
func (s *Server) retryLocked(j *job, runErr error) bool {
	if j.Retries >= j.Spec.MaxRetries || j.cancelRequested {
		return false
	}
	now := s.clock.Now()
	if j.Deadline != nil && !now.Before(*j.Deadline) {
		return false
	}
	j.Retries++
	base := time.Duration(j.Spec.RetryBackoffMS) * time.Millisecond
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	shift := j.Retries - 1
	if shift > 20 {
		shift = 20
	}
	backoff := base << uint(shift)
	nb := now.Add(backoff + retryJitter(j.ID, j.Retries, base))
	j.NotBefore = &nb
	j.State = StateQueued
	j.Checkpoint = nil // a failed run restarts from scratch
	j.Error = runErr.Error()
	s.retried.Add(1)
	s.appendEventLocked(j, Event{Type: "state", State: StateQueued, Error: runErr.Error()})
	s.spoolLocked(j)
	s.wakePolicy()
	return true
}

// retryJitter derives a deterministic jitter in [0, base) from the job ID
// and attempt number, decorrelating retry herds without a random source.
func retryJitter(id string, attempt int, base time.Duration) time.Duration {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", id, attempt)
	if base <= 0 {
		return 0
	}
	return time.Duration(h.Sum64() % uint64(base))
}

// statusLocked builds the wire view of a job.
func (s *Server) statusLocked(j *job) *JobStatus {
	sc := j.Spec.Scenario
	return &JobStatus{
		ID:          j.ID,
		State:       j.State,
		Priority:    j.Spec.Priority,
		Scenario:    sc.Name,
		Region:      sc.Region,
		Placement:   sc.Placement,
		N:           sc.N,
		Async:       sc.Async,
		SubmittedAt: j.SubmittedAt,
		StartedAt:   j.StartedAt,
		FinishedAt:  j.FinishedAt,
		Slot:        j.Slot,
		Slots:       append([]int(nil), j.Slots...),
		Preemptions: j.Preemptions,
		Rounds:      j.Rounds,
		Error:       j.Error,
		ClientID:    j.Spec.ClientID,
		Retries:     j.Retries,
		NotBefore:   j.NotBefore,
		Deadline:    j.Deadline,
		HasResult:   j.Result != nil,
		Events:      len(j.events),
	}
}
