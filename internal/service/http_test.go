package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"laacad/internal/metrics"
)

// startHTTP serves the Server's API on a real loopback listener.
func startHTTP(t *testing.T, s *Server) string {
	t.Helper()
	addr, shutdown, err := metrics.ListenAndServe("127.0.0.1:0", s.Handler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(shutdown)
	return "http://" + addr
}

// waitState polls a job over HTTP until cond holds on its status.
func waitState(t *testing.T, c *Client, id, what string, cond func(*JobStatus) bool) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if cond(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
	return nil
}

// TestHTTPPreemptResumeDifferentSlot is the end-to-end acceptance: over real
// HTTP, a job is preempted mid-run by a higher-priority arrival and later
// resumes on a DIFFERENT worker slot, finishing with Positions/Trace/
// Messages exactly equal to the same scenario run uninterrupted — while an
// SSE watcher follows the whole lifecycle without losing an event.
func TestHTTPPreemptResumeDifferentSlot(t *testing.T) {
	s := newTestServer(t, 2)
	base := startHTTP(t, s)
	c := &Client{BaseURL: base}
	ctx := context.Background()

	scA := testScenario(12, 40, 1e-12, 51) // the preempted job
	scB := testScenario(12, 200, 1e-12, 52)
	scH := testScenario(12, 200, 1e-12, 53)
	solo := soloRun(t, scA)

	// A (prio 0) takes slot 0; B (prio 5) takes slot 1. Both paced so they
	// hold their slots.
	a, err := c.Submit(ctx, JobSpec{Scenario: scA, PaceMS: 10})
	if err != nil {
		t.Fatal(err)
	}

	// Follow A's event stream concurrently from the very beginning.
	var evMu sync.Mutex
	var events []Event
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- c.Watch(ctx, a.ID, 0, func(e Event) error {
			evMu.Lock()
			events = append(events, e)
			evMu.Unlock()
			return nil
		})
	}()

	waitState(t, c, a.ID, "A on slot 0", func(st *JobStatus) bool {
		return st.State == StateRunning && st.Slot == 0
	})
	b, err := c.Submit(ctx, JobSpec{Scenario: scB, PaceMS: 10, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, b.ID, "B on slot 1", func(st *JobStatus) bool {
		return st.State == StateRunning && st.Slot == 1
	})
	waitState(t, c, a.ID, "A past round 2", func(st *JobStatus) bool { return st.Rounds >= 2 })

	// H (prio 9) preempts the lowest-priority running job: A, freeing slot 0.
	h, err := c.Submit(ctx, JobSpec{Scenario: scH, PaceMS: 10, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, a.ID, "A preempted", func(st *JobStatus) bool { return st.Preemptions == 1 })
	waitState(t, c, h.ID, "H on slot 0", func(st *JobStatus) bool {
		return st.State == StateRunning && st.Slot == 0
	})
	// A (prio 0) must NOT preempt B (prio 5): it waits until we cancel B,
	// then resumes on B's slot 1 while H still occupies slot 0.
	if st, _ := c.Job(ctx, a.ID); st.State == StateRunning {
		t.Fatalf("A resumed while both slots were held by higher priorities")
	}
	if _, err := c.Cancel(ctx, b.ID); err != nil {
		t.Fatal(err)
	}
	resumedA := waitState(t, c, a.ID, "A resumed", func(st *JobStatus) bool { return st.State == StateRunning })
	if resumedA.Slot != 1 {
		t.Errorf("A resumed on slot %d, want 1 (a different slot)", resumedA.Slot)
	}
	doneA := waitState(t, c, a.ID, "A done", func(st *JobStatus) bool { return st.State == StateDone })
	if want := []int{0, 1}; !reflect.DeepEqual(doneA.Slots, want) {
		t.Errorf("A slot history = %v, want %v", doneA.Slots, want)
	}

	// Bit-identity over the wire: the HTTP result of the preempted+resumed
	// run equals the in-process uninterrupted run exactly (encoding/json
	// round-trips float64 losslessly).
	res, err := c.Result(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Positions, solo.Positions) {
		t.Error("Positions differ from uninterrupted run")
	}
	if !reflect.DeepEqual(res.Trace, solo.Trace) {
		t.Error("Trace differs from uninterrupted run")
	}
	if res.Messages != solo.Messages {
		t.Errorf("Messages = %d, want %d (uninterrupted run)", res.Messages, solo.Messages)
	}
	if !reflect.DeepEqual(res, solo) {
		t.Error("full Result differs from uninterrupted run")
	}

	// The watcher saw the complete lifecycle: every round exactly once, in
	// order, bracketed by queued → running → preempted → running → done.
	if err := <-watchDone; err != nil {
		t.Fatalf("watch: %v", err)
	}
	evMu.Lock()
	defer evMu.Unlock()
	var rounds []int
	var states []JobState
	for _, e := range events {
		switch e.Type {
		case "round":
			rounds = append(rounds, e.Round.Round)
		case "state":
			states = append(states, e.State)
		}
	}
	if len(rounds) != 40 {
		t.Fatalf("watcher saw %d round events, want 40", len(rounds))
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("round event %d has Round=%d, want %d (no gaps, no duplicates)", i, r, i+1)
		}
	}
	wantStates := []JobState{StateQueued, StateRunning, StatePreempted, StateRunning, StateDone}
	if !reflect.DeepEqual(states, wantStates) {
		t.Errorf("state sequence = %v, want %v", states, wantStates)
	}

	if _, err := c.Cancel(ctx, h.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, c, h.ID, "H cancelled", func(st *JobStatus) bool { return st.State == StateCancelled })

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap["service.jobs_preempted"] != 1 || snap["service.jobs_resumed"] != 1 {
		t.Errorf("preempted=%d resumed=%d, want 1/1", snap["service.jobs_preempted"], snap["service.jobs_resumed"])
	}
	if snap["service.jobs_accepted"] != 3 {
		t.Errorf("accepted = %d, want 3", snap["service.jobs_accepted"])
	}
}

// TestSSEResumeWithLastEventID drops an SSE connection mid-stream and
// reconnects with the cursor: the continuation starts at exactly the next
// event ID.
func TestSSEResumeWithLastEventID(t *testing.T) {
	s := newTestServer(t, 1)
	base := startHTTP(t, s)
	c := &Client{BaseURL: base}
	ctx := context.Background()

	st, err := c.Submit(ctx, JobSpec{Scenario: testScenario(12, 30, 1e-12, 61), PaceMS: 5})
	if err != nil {
		t.Fatal(err)
	}

	// First connection: read a handful of events, then drop it.
	after := 0
	firstCtx, cancel := context.WithCancel(ctx)
	seen := 0
	err = c.Watch(firstCtx, st.ID, after, func(e Event) error {
		after = e.ID
		if seen++; seen >= 5 {
			cancel()
		}
		return nil
	})
	if err != nil && firstCtx.Err() == nil {
		t.Fatalf("first watch: %v", err)
	}
	cancel()

	// Reconnect with the cursor: the stream must continue at after+1.
	first := 0
	if err := c.Watch(ctx, st.ID, after, func(e Event) error {
		if first == 0 {
			first = e.ID
		}
		return nil
	}); err != nil {
		t.Fatalf("resumed watch: %v", err)
	}
	if first != after+1 {
		t.Errorf("resumed stream started at event %d, want %d", first, after+1)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, 1)
	base := startHTTP(t, s)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/jobs/job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code, _ := get("/jobs/job-999999/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", code)
	}
	if code, _ := get("/jobs/job-999999/events"); code != http.StatusNotFound {
		t.Errorf("unknown job events = %d, want 404", code)
	}

	// Invalid spec → 400 with the validation message.
	bad := `{"scenario": {"name": "x", "region": "atlantis", "placement": "uniform", "n": 10, "config": {"k": 1, "alpha": 0.5, "epsilon": 0.001, "max_rounds": 10}}}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) != nil || !strings.Contains(e.Error, "atlantis") {
		t.Errorf("validation error should name the bad region, got: %s", body)
	}

	// Result of an unfinished job → 409.
	c := &Client{BaseURL: base}
	st, err := c.Submit(context.Background(), JobSpec{Scenario: testScenario(12, 200, 1e-12, 71), PaceMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(fmt.Sprintf("/jobs/%s/result", st.ID)); code != http.StatusConflict {
		t.Errorf("result of running job = %d, want 409", code)
	}
	if _, err := c.Cancel(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	// Wrong method → 405.
	req, _ := http.NewRequest(http.MethodPut, base+"/jobs", nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /jobs = %d, want 405", r2.StatusCode)
	}
}
