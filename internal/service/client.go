package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"laacad/internal/core"
)

// Client talks to a laacadd daemon over HTTP.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:7600".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the daemon's {"error": ...} body for non-2xx responses.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// do issues a request and decodes a JSON response into out (if non-nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a job spec; the daemon validates, spools, and schedules it.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]*JobStatus, error) {
	var out []*JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation (idempotent) and returns the updated status.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's deployment result.
func (c *Client) Result(ctx context.Context, id string) (*core.Result, error) {
	var res core.Result
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Watch follows a job's SSE event stream from after the given event ID,
// invoking fn for each event in order. It reconnects automatically (with
// its cursor, so nothing is duplicated or lost) and returns nil once the
// job reaches a terminal state, or ctx's error on cancellation.
func (c *Client) Watch(ctx context.Context, id string, after int, fn func(Event) error) error {
	for {
		terminal, err := c.watchOnce(ctx, id, &after, fn)
		if terminal || ctx.Err() != nil {
			return err
		}
		// Stream ended without a terminal event (daemon restart, network
		// hiccup): reconnect from the cursor.
	}
}

// watchOnce consumes one SSE connection, advancing *after past every event
// delivered. terminal reports whether the job finished.
func (c *Client) watchOnce(ctx context.Context, id string, after *int, fn func(Event) error) (terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/jobs/%s/events", c.BaseURL, id), nil)
	if err != nil {
		return true, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", fmt.Sprint(*after))
	resp, err := c.http().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return true, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return true, fmt.Errorf("service: bad event payload: %w", err)
			}
			data = nil
			if e.ID <= *after {
				continue
			}
			*after = e.ID
			if err := fn(e); err != nil {
				return true, err
			}
			if e.Type == "state" && e.State.Terminal() {
				return true, nil
			}
		}
	}
	return false, sc.Err()
}
