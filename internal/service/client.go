package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"laacad/internal/core"
	"laacad/internal/fault"
)

// Client talks to a laacadd daemon over HTTP. Requests that are safe to
// repeat (reads, cancels, and submissions carrying a ClientID) are retried
// on connection errors and 5xx responses with exponential backoff, honoring
// the daemon's Retry-After header when it names a comeback time.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:7600".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retransmissions of retriable requests (default 0:
	// fail fast; the laacadd CLI sets it for submissions with an -id).
	MaxRetries int
	// RetryBackoff is the base backoff between attempts (default 100ms),
	// doubling per retry. Retry-After overrides the computed wait.
	RetryBackoff time.Duration
	// Clock lets tests run the backoff schedule instantly; nil means the
	// wall clock.
	Clock fault.Clock
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) clock() fault.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return fault.Wall{}
}

// backoffWait sleeps between retry attempts (0-based), honoring a
// Retry-After duration when the server provided one. Returns ctx.Err() on
// cancellation.
func (c *Client) backoffWait(ctx context.Context, attempt int, retryAfter time.Duration) error {
	wait := c.RetryBackoff
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	wait <<= uint(attempt)
	if retryAfter > 0 {
		wait = retryAfter
	}
	select {
	case <-c.clock().After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads a Retry-After header (seconds form) from a response.
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	var secs int
	if _, err := fmt.Sscanf(v, "%d", &secs); err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// apiError decodes the daemon's {"error": ...} body for non-2xx responses.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// do issues a request and decodes a JSON response into out (if non-nil).
// When retriable, connection errors and 5xx responses are retransmitted up
// to MaxRetries times with backoff (Retry-After wins when present); other
// statuses are terminal — a 400 will not improve with repetition.
func (c *Client) do(ctx context.Context, method, path string, in, out any, retriable bool) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		var retryAfter time.Duration
		resp, err := c.http().Do(req)
		if err == nil {
			if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
				defer resp.Body.Close()
				if out == nil {
					return nil
				}
				return json.NewDecoder(resp.Body).Decode(out)
			}
			retryAfter = parseRetryAfter(resp)
			err = apiError(resp)
			resp.Body.Close()
			if resp.StatusCode < 500 {
				return err
			}
		}
		lastErr = err
		if !retriable || attempt >= c.MaxRetries || ctx.Err() != nil {
			return lastErr
		}
		if werr := c.backoffWait(ctx, attempt, retryAfter); werr != nil {
			return lastErr
		}
	}
}

// Submit sends a job spec; the daemon validates, journals, and schedules
// it. A spec with a ClientID is safe to retransmit — the daemon deduplicates
// — so only those submissions participate in retry.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs", spec, &st, spec.ClientID != ""); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]*JobStatus, error) {
	var out []*JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cancellation (idempotent) and returns the updated status.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's deployment result.
func (c *Client) Result(ctx context.Context, id string) (*core.Result, error) {
	var res core.Result
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Watch follows a job's SSE event stream from after the given event ID,
// invoking fn for each event in order. It reconnects automatically (with
// its cursor, so nothing is duplicated or lost) and returns nil once the
// job reaches a terminal state, or ctx's error on cancellation. Reconnects
// back off exponentially while the daemon is unreachable and reset as soon
// as events flow again.
func (c *Client) Watch(ctx context.Context, id string, after int, fn func(Event) error) error {
	attempt := 0
	for {
		before := after
		terminal, err := c.watchOnce(ctx, id, &after, fn)
		if terminal || ctx.Err() != nil {
			return err
		}
		// Stream ended without a terminal event (daemon restart, network
		// hiccup): reconnect from the cursor, pausing if no progress was
		// made so a down daemon is not hammered.
		if after > before {
			attempt = 0
			continue
		}
		if attempt > 6 {
			attempt = 6 // cap the wait at base·2⁶
		}
		if werr := c.backoffWait(ctx, attempt, 0); werr != nil {
			return werr
		}
		attempt++
	}
}

// watchOnce consumes one SSE connection, advancing *after past every event
// delivered. terminal reports whether the job finished.
func (c *Client) watchOnce(ctx context.Context, id string, after *int, fn func(Event) error) (terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/jobs/%s/events", c.BaseURL, id), nil)
	if err != nil {
		return true, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", fmt.Sprint(*after))
	resp, err := c.http().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return true, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		case line == "" && len(data) > 0:
			var e Event
			if err := json.Unmarshal(data, &e); err != nil {
				return true, fmt.Errorf("service: bad event payload: %w", err)
			}
			data = nil
			if e.ID <= *after {
				continue
			}
			*after = e.ID
			if err := fn(e); err != nil {
				return true, err
			}
			if e.Type == "state" && e.State.Terminal() {
				return true, nil
			}
		}
	}
	return false, sc.Err()
}
