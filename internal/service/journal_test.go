package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"laacad/internal/fault"
)

// jobPayload builds a minimal valid job record for journal-level tests.
func jobPayload(t *testing.T, id string, seq uint64, state JobState) []byte {
	t.Helper()
	data, err := json.Marshal(&Job{ID: id, Seq: seq, State: state, Slot: -1})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustOpen(t *testing.T, dir string, opts JournalOptions) (*Journal, *Recovery) {
	t.Helper()
	jl, rec, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return jl, rec
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl, rec := mustOpen(t, dir, JournalOptions{})
	if len(rec.Jobs) != 0 || rec.Quarantined != 0 || rec.TornTail {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	// Three jobs, several transitions each; the last record per job wins.
	for _, step := range []struct {
		id    string
		seq   uint64
		state JobState
	}{
		{"job-000001", 1, StateQueued},
		{"job-000002", 2, StateQueued},
		{"job-000001", 1, StateRunning},
		{"job-000003", 3, StateQueued},
		{"job-000001", 1, StateDone},
		{"job-000002", 2, StateRunning},
	} {
		if err := jl.Append(step.id, jobPayload(t, step.id, step.seq, step.state)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := mustOpen(t, dir, JournalOptions{})
	if len(rec2.Jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(rec2.Jobs))
	}
	want := map[string]JobState{"job-000001": StateDone, "job-000002": StateRunning, "job-000003": StateQueued}
	for _, j := range rec2.Jobs {
		if j.State != want[j.ID] {
			t.Errorf("job %s recovered as %s, want %s", j.ID, j.State, want[j.ID])
		}
	}
	// Seq order.
	for i, j := range rec2.Jobs {
		if j.Seq != uint64(i+1) {
			t.Errorf("recovery order: jobs[%d].Seq = %d", i, j.Seq)
		}
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; huge compaction threshold disables
	// compaction so the segment count is observable.
	jl, _ := mustOpen(t, dir, JournalOptions{SegmentMaxBytes: 256, CompactMinRecords: 1 << 30})
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("job-%06d", i+1)
		if err := jl.Append(id, jobPayload(t, id, uint64(i+1), StateQueued)); err != nil {
			t.Fatal(err)
		}
	}
	st := jl.Stats()
	if st.Segments < 2 {
		t.Fatalf("segments = %d, want rotation to have produced several", st.Segments)
	}
	if st.Records != 50 || st.Live != 50 {
		t.Fatalf("stats = %+v, want 50 records, 50 live", st)
	}
	jl.Close()

	_, rec := mustOpen(t, dir, JournalOptions{CompactMinRecords: 1 << 30})
	if len(rec.Jobs) != 50 {
		t.Fatalf("recovered %d jobs across segments, want 50", len(rec.Jobs))
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl, _ := mustOpen(t, dir, JournalOptions{CompactMinRecords: 16, CompactLiveRatio: 0.5})
	// One job, many transitions: live/total collapses and compaction fires.
	for i := 0; i < 64; i++ {
		if err := jl.Append("job-000001", jobPayload(t, "job-000001", 1, StateRunning)); err != nil {
			t.Fatal(err)
		}
	}
	jl.Barrier()
	st := jl.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 64 dead transitions: %+v", st)
	}
	if st.Live != 1 {
		t.Fatalf("live = %d, want 1", st.Live)
	}
	if st.Records > 16 {
		t.Fatalf("records = %d after compaction, want few", st.Records)
	}
	// The journal still appends and recovers after compaction.
	if err := jl.Append("job-000002", jobPayload(t, "job-000002", 2, StateQueued)); err != nil {
		t.Fatal(err)
	}
	jl.Close()
	_, rec := mustOpen(t, dir, JournalOptions{})
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs after compaction, want 2", len(rec.Jobs))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	jl, _ := mustOpen(t, dir, JournalOptions{})
	jl.Append("job-000001", jobPayload(t, "job-000001", 1, StateQueued))
	jl.Append("job-000002", jobPayload(t, "job-000002", 2, StateQueued))
	jl.Close()

	// Tear the last frame: chop bytes off the end of the segment.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, JournalOptions{})
	if !rec.TornTail {
		t.Error("recovery did not report the torn tail")
	}
	if rec.Quarantined != 0 {
		t.Errorf("a torn tail is not corruption; quarantined = %d", rec.Quarantined)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-000001" {
		t.Fatalf("recovered %v, want exactly job-000001", rec.Jobs)
	}
}

func TestJournalCorruptionQuarantinedWithResync(t *testing.T) {
	dir := t.TempDir()
	jl, _ := mustOpen(t, dir, JournalOptions{})
	jl.Append("job-000001", jobPayload(t, "job-000001", 1, StateQueued))
	jl.Append("job-000002", jobPayload(t, "job-000002", 2, StateQueued))
	jl.Append("job-000003", jobPayload(t, "job-000003", 3, StateQueued))
	jl.Close()

	// Flip a byte inside the middle record's payload: CRC fails, but the
	// scanner must resync and still recover job-000003.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	first := len(jobPayload(t, "job-000001", 1, StateQueued)) + 8
	data[first+12] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, JournalOptions{})
	if rec.Quarantined == 0 {
		t.Fatal("corruption was not quarantined")
	}
	got := map[string]bool{}
	for _, j := range rec.Jobs {
		got[j.ID] = true
	}
	if !got["job-000001"] || !got["job-000003"] || got["job-000002"] {
		t.Fatalf("recovered %v, want 1 and 3 (2 was corrupted)", got)
	}
	// The damaged bytes are preserved under quarantine/.
	names, err := fault.OS{}.ReadDir(quarantineDir(dir))
	if err != nil || len(names) == 0 {
		t.Fatalf("quarantine dir: %v, %v", names, err)
	}
	// Recovery compacts the damage away: a further reopen is clean.
	_, rec2 := mustOpen(t, dir, JournalOptions{})
	if rec2.Quarantined != 0 {
		t.Errorf("reopen re-quarantined %d records; damage should have been compacted away", rec2.Quarantined)
	}
	if len(rec2.Jobs) != 2 {
		t.Errorf("reopen recovered %d jobs, want 2", len(rec2.Jobs))
	}
}

func TestJournalMigratesLegacySpool(t *testing.T) {
	dir := t.TempDir()
	// A pre-journal spool: one JSON file per job.
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("job-%06d", i)
		data, _ := json.Marshal(&Job{ID: id, Seq: uint64(i), State: StateQueued, Slot: -1})
		if err := os.WriteFile(filepath.Join(dir, id+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	jl, rec := mustOpen(t, dir, JournalOptions{})
	if rec.Migrated != 3 || len(rec.Jobs) != 3 {
		t.Fatalf("migrated = %d, jobs = %d, want 3 and 3", rec.Migrated, len(rec.Jobs))
	}
	jl.Close()
	// The legacy files are gone; the journal alone carries the jobs now.
	names, err := fault.OS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".json") {
			t.Errorf("legacy file %s still present after migration", n)
		}
	}
	_, rec2 := mustOpen(t, dir, JournalOptions{})
	if len(rec2.Jobs) != 3 || rec2.Migrated != 0 {
		t.Fatalf("post-migration reopen: jobs = %d, migrated = %d", len(rec2.Jobs), rec2.Migrated)
	}
}

func TestLoadJobsReadsJournal(t *testing.T) {
	dir := t.TempDir()
	jl, _ := mustOpen(t, dir, JournalOptions{})
	jl.Append("job-000001", jobPayload(t, "job-000001", 1, StateQueued))
	jl.Append("job-000001", jobPayload(t, "job-000001", 1, StateDone))
	jl.Append("job-000002", jobPayload(t, "job-000002", 2, StateQueued))
	jl.Close()
	jobs, err := LoadJobs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].State != StateDone || jobs[1].State != StateQueued {
		t.Fatalf("LoadJobs = %+v", jobs)
	}
}

// TestTornWriteRecoveryMatrix replays the same append sequence against a
// fault.Inject FS that tears the write stream at byte k — for every k in the
// journal — and proves recovery at each tear point: every record whose frame
// landed fully before the tear survives, the torn tail is truncated (never
// quarantined), and the journal remains appendable.
func TestTornWriteRecoveryMatrix(t *testing.T) {
	// Size the journal once, untorn, to learn the total byte count and the
	// frame boundaries.
	payloads := make([][]byte, 4)
	for i := range payloads {
		id := fmt.Sprintf("job-%06d", i+1)
		payloads[i] = jobPayload(t, id, uint64(i+1), StateQueued)
	}
	var boundaries []int64 // cumulative frame end offsets
	var total int64
	for _, p := range payloads {
		total += int64(8 + len(p))
		boundaries = append(boundaries, total)
	}

	for k := int64(0); k <= total; k++ {
		dir := t.TempDir()
		inj := fault.NewInject(fault.OS{}, fault.Rule{Op: "write", TearByte: k + 1})
		jl, _, err := OpenJournal(dir, JournalOptions{FS: inj})
		if err != nil {
			t.Fatalf("k=%d: open: %v", k, err)
		}
		for i, p := range payloads {
			if err := jl.Append(fmt.Sprintf("job-%06d", i+1), p); err != nil {
				break // the tear landed; stop like a crashed process would
			}
		}
		// No Close: simulate the process dying with the tear on disk.

		_, rec, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("k=%d: recovery: %v", k, err)
		}
		wantJobs := 0
		for _, b := range boundaries {
			if b <= k {
				wantJobs++
			}
		}
		if len(rec.Jobs) != wantJobs {
			t.Errorf("k=%d: recovered %d jobs, want %d", k, len(rec.Jobs), wantJobs)
		}
		if rec.Quarantined != 0 {
			t.Errorf("k=%d: %d quarantined; torn writes must truncate, not quarantine", k, rec.Quarantined)
		}
		midFrame := k != 0 && k != total && func() bool {
			for _, b := range boundaries {
				if b == k {
					return false
				}
			}
			return true
		}()
		if midFrame && !rec.TornTail {
			t.Errorf("k=%d: tear mid-frame not reported as torn tail", k)
		}
	}
}

// FuzzJournalRecords feeds arbitrary bytes to the segment scanner (the code
// recovery trusts with whatever a crash left on disk): it must never panic,
// and everything it accepts must be CRC-exact.
func FuzzJournalRecords(f *testing.F) {
	valid := frameRecord([]byte(`{"id":"job-000001","seq":1,"state":"queued","slot":-1}`))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                              // torn tail
	f.Add(append([]byte{0xFF, 0xFF}, valid...))              // garbage prefix, then a frame
	f.Add(append(append([]byte{}, valid...), valid[:11]...)) // frame + torn frame
	big := frameRecord(make([]byte, 1024))
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, chunks, keep, _ := scanSegment(data)
		if keep < 0 || keep > len(data) {
			t.Fatalf("keep = %d out of range", keep)
		}
		for _, c := range chunks {
			if c.start < 0 || c.end > len(data) || c.start >= c.end {
				t.Fatalf("bad chunk %+v", c)
			}
		}
		// Re-scanning the kept prefix must reproduce exactly the same
		// records: truncation never invents or loses accepted data.
		again, _, _, _ := scanSegment(data[:keep])
		if len(again) != len(payloads) {
			t.Fatalf("rescan of kept prefix: %d records, want %d", len(again), len(payloads))
		}
	})
}

// FuzzJournalOpen drives full recovery (not just the scanner) with arbitrary
// segment bytes: OpenJournal must never panic and must always leave behind a
// journal that accepts appends.
func FuzzJournalOpen(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(frameRecord([]byte(`{"id":"job-000001","seq":1}`)), []byte{0x01, 0x02})
	f.Fuzz(func(t *testing.T, seg1, seg2 []byte) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644)
		os.WriteFile(filepath.Join(dir, segName(2)), seg2, 0o644)
		jl, _, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Skip() // IO errors are legal outcomes; panics are not
		}
		if err := jl.Append("job-fuzz", jobPayload(t, "job-fuzz", 99, StateQueued)); err != nil {
			t.Fatalf("journal not appendable after recovery: %v", err)
		}
		jl.Close()
	})
}
