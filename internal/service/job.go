// Package service runs LAACAD deployments as a long-lived service: a Server
// owns a durable job queue and a bounded worker pool, multiplexing many
// concurrent laacad runs in one process.
//
// A job is a JSON-submitted Scenario plus run options and a priority. Jobs
// are spooled to a directory as they change state, so a daemon restart (or
// crash) loses nothing: terminal jobs keep their results, queued jobs stay
// queued, and interrupted jobs resume from their last checkpoint. The
// scheduler drains the queue highest-priority-first onto the pool and
// preempts running work when something more urgent arrives: the victim's
// context is cancelled, its engine checkpoint is captured through the
// existing snapshot machinery, and the job is requeued to resume later —
// bit-identically, on whichever worker slot next frees up. That guarantee is
// inherited from the engine's determinism contract: a checkpoint plus config
// is the complete state of a run.
//
// Lifecycle:
//
//	POST /jobs
//	    │
//	 queued ──────────────────────────┐ cancel
//	   │ slot free                    ▼
//	 running ───── error ──────────▶ failed │ cancelled
//	   │   │
//	   │   └── converged / MaxRounds ──▶ done
//	   │ higher-priority arrival (or daemon shutdown):
//	   │ ctx cancel + checkpoint
//	   ▼
//	preempted ── slot free ──▶ running (resumes bit-identically)
//
// The HTTP surface (Server.Handler) exposes submit/list/status/cancel, a
// Server-Sent-Events stream of per-round statistics resumable via
// Last-Event-ID, job results, and the service metrics registry.
package service

import (
	"fmt"
	"time"

	"laacad/internal/core"
	"laacad/internal/scenario"
	"laacad/internal/snapshot"
)

// JobState is a point in the job lifecycle.
type JobState string

// Job lifecycle states.
const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker slot.
	StateRunning JobState = "running"
	// StatePreempted: checkpointed off its slot by a higher-priority job
	// (or a daemon shutdown); waiting to resume from the checkpoint.
	StatePreempted JobState = "preempted"
	// StateDone: finished with a Result.
	StateDone JobState = "done"
	// StateFailed: finished with an error.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by the client (from any non-terminal state).
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// runnable reports whether the scheduler may start (or resume) the job.
func (s JobState) runnable() bool { return s == StateQueued || s == StatePreempted }

// JobSpec is what a client submits: the scenario to run plus scheduling and
// run options.
type JobSpec struct {
	// Scenario defines the deployment (see the scenario wire format).
	Scenario scenario.Scenario `json:"scenario"`
	// Priority orders the queue; higher runs first. A job whose priority is
	// strictly greater than a running job's may preempt it when the pool is
	// full. Ties drain in submission order.
	Priority int `json:"priority,omitempty"`
	// Workers overrides Config.Workers for this run (results are
	// bit-identical for every value).
	Workers *int `json:"workers,omitempty"`
	// MaxRounds overrides the scenario's round budget.
	MaxRounds *int `json:"max_rounds,omitempty"`
	// PaceMS, if positive, is a minimum duration per round in milliseconds —
	// observation pacing for demos and streaming clients (and the lever
	// tests use to hold a job mid-run). Pacing never changes results.
	PaceMS int `json:"pace_ms,omitempty"`
	// ClientID, if set, makes submission idempotent: resubmitting a spec
	// with the same ClientID returns the already-accepted job instead of
	// creating a duplicate. This is what lets a client safely retry a POST
	// whose acknowledgment was lost.
	ClientID string `json:"client_id,omitempty"`
	// MaxRetries re-queues a failed run up to this many times (with
	// exponential backoff) before the job settles as failed.
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoffMS is the base retry backoff in milliseconds (default
	// 100): retry i waits base·2^(i-1) plus deterministic jitter.
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// DeadlineMS, if positive, is a wall-clock budget measured from
	// submission. A job that is not terminal when it expires fails with
	// error "deadline_exceeded" — including a running job, which is
	// cancelled at its next round boundary.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// Validate rejects a spec that could not run, with submit-time errors (the
// scenario's registry/parameter checks plus the spec's own options).
func (sp JobSpec) Validate() error {
	sc := sp.Scenario
	if sp.MaxRounds != nil {
		if *sp.MaxRounds < 1 {
			return fmt.Errorf("service: max_rounds override must be positive, got %d", *sp.MaxRounds)
		}
		sc.Config.MaxRounds = *sp.MaxRounds
	}
	if sp.PaceMS < 0 {
		return fmt.Errorf("service: pace_ms must be non-negative, got %d", sp.PaceMS)
	}
	if sp.MaxRetries < 0 {
		return fmt.Errorf("service: max_retries must be non-negative, got %d", sp.MaxRetries)
	}
	if sp.RetryBackoffMS < 0 {
		return fmt.Errorf("service: retry_backoff_ms must be non-negative, got %d", sp.RetryBackoffMS)
	}
	if sp.DeadlineMS < 0 {
		return fmt.Errorf("service: deadline_ms must be non-negative, got %d", sp.DeadlineMS)
	}
	return sc.Validate()
}

// Job is the durable job record — exactly what one journal record holds.
// The Server mutates it under its lock and appends a fresh record on every
// state transition, so replaying the journal (latest record per ID wins)
// always reconstructs a consistent picture of the queue.
type Job struct {
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`

	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Slot is the worker slot the job currently occupies (-1 when not
	// running); Slots is the history of slots across starts and resumes.
	Slot  int   `json:"slot"`
	Slots []int `json:"slots,omitempty"`
	// Preemptions counts how many times the job was checkpointed off a slot.
	Preemptions int `json:"preemptions,omitempty"`
	// Rounds is the last completed round observed from the run.
	Rounds int    `json:"rounds,omitempty"`
	Error  string `json:"error,omitempty"`

	// Retries counts failed runs the retry policy has re-queued.
	Retries int `json:"retries,omitempty"`
	// NotBefore, when set, holds the job out of the scheduler until the
	// backoff expires.
	NotBefore *time.Time `json:"not_before,omitempty"`
	// Deadline is the absolute expiry derived from Spec.DeadlineMS.
	Deadline *time.Time `json:"deadline,omitempty"`

	// Checkpoint is the resume point of a preempted (or interrupted) job.
	Checkpoint *snapshot.State `json:"checkpoint,omitempty"`
	// Result is the finished deployment (StateDone).
	Result *core.Result `json:"result,omitempty"`
}

// Event is one entry of a job's observable stream: a completed round or a
// state transition. IDs are 1-based and strictly increasing per job, which
// is what makes the SSE stream resumable via Last-Event-ID.
type Event struct {
	ID    int    `json:"id"`
	JobID string `json:"job_id"`
	// Type is "round" or "state".
	Type  string           `json:"type"`
	State JobState         `json:"state,omitempty"`
	Round *core.RoundStats `json:"round,omitempty"`
	Error string           `json:"error,omitempty"`
}

// JobStatus is the client-facing view of a job (everything but the bulky
// checkpoint and result payloads).
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Priority int      `json:"priority"`

	Scenario  string `json:"scenario,omitempty"`
	Region    string `json:"region"`
	Placement string `json:"placement"`
	N         int    `json:"n"`
	Async     bool   `json:"async,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Slot        int        `json:"slot"`
	Slots       []int      `json:"slots,omitempty"`
	Preemptions int        `json:"preemptions,omitempty"`
	Rounds      int        `json:"rounds,omitempty"`
	Error       string     `json:"error,omitempty"`
	ClientID    string     `json:"client_id,omitempty"`
	Retries     int        `json:"retries,omitempty"`
	NotBefore   *time.Time `json:"not_before,omitempty"`
	Deadline    *time.Time `json:"deadline,omitempty"`
	HasResult   bool       `json:"has_result"`
	Events      int        `json:"events"`
}
