package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"laacad/internal/fault"
	"laacad/internal/metrics"
)

// Chaos harness: the daemon is run in a child process with a fault rule that
// SIGKILLs it on the Nth filesystem operation — any operation, so the sweep
// lands kills inside journal appends, fsyncs, rotations, compactions, and
// recovery itself. The parent then reopens the same journal in-process,
// retransmits every submission under its original ClientID (a real client
// whose ack was lost would do exactly this), drains the queue, and asserts
// the crash cost nothing: every acknowledged job survived with its identity,
// no ClientID maps to two jobs, nothing completed twice, and every result is
// bit-identical to an uninterrupted solo run.

const (
	chaosChildEnv = "LAACAD_CHAOS_CHILD" // guards the child-mode test
	chaosDirEnv   = "LAACAD_CHAOS_DIR"   // scratch dir shared with the parent
	chaosKillEnv  = "LAACAD_CHAOS_KILL"  // op number to die on (0: run clean)
)

// chaosSpecs is the deterministic mixed workload: paced low-priority jobs
// that get preempted, high-priority arrivals that do the preempting, and
// quick fillers. Every spec carries a ClientID so submission is idempotent.
func chaosSpecs() []JobSpec {
	specs := []JobSpec{
		{Scenario: testScenario(8, 40, 1e-9, 101), PaceMS: 3, Priority: 0},
		{Scenario: testScenario(8, 40, 1e-9, 102), PaceMS: 3, Priority: 0},
		{Scenario: testScenario(8, 4, 1e-3, 103), Priority: 5},
		{Scenario: testScenario(8, 4, 1e-3, 104), Priority: 5},
		{Scenario: testScenario(8, 6, 1e-3, 105), Priority: 1},
		{Scenario: testScenario(8, 4, 1e-3, 106), Priority: 9},
	}
	for i := range specs {
		specs[i].ClientID = fmt.Sprintf("chaos-%03d", i)
	}
	return specs
}

// TestChaosChild is the daemon side of the harness. It only runs when
// re-executed by TestChaosCrashRecovery with the guard env set: it opens a
// Server over the shared spool with the kill rule armed, submits the
// workload (recording each acknowledgment durably), and waits for the queue
// to drain — dying by SIGKILL somewhere along the way when the rule fires.
func TestChaosChild(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "" {
		t.Skip("chaos child mode: driven by TestChaosCrashRecovery")
	}
	base := os.Getenv(chaosDirEnv)
	killOp, err := strconv.Atoi(os.Getenv(chaosKillEnv))
	if err != nil {
		t.Fatalf("bad %s: %v", chaosKillEnv, err)
	}
	var rules []fault.Rule
	if killOp > 0 {
		rules = append(rules, fault.Rule{N: int64(killOp), Crash: true})
	}
	inj := fault.NewInject(fault.OS{}, rules...)
	s, err := New(Config{
		SpoolDir: filepath.Join(base, "spool"),
		Pool:     2,
		Metrics:  &metrics.Registry{},
		FS:       inj,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// The ack log lives beside the spool (inside it, the journal's recovery
	// would quarantine it as a foreign file) and is appended one complete
	// line per acknowledged submission. A line exists only after Submit
	// returned, i.e. after the journal fsynced the accepted job — so every
	// logged ack names a job the daemon promised to keep.
	acks, err := os.OpenFile(filepath.Join(base, "acks.txt"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open ack log: %v", err)
	}
	defer acks.Close()
	for _, spec := range chaosSpecs() {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.ClientID, err)
		}
		if _, err := fmt.Fprintf(acks, "%s %s\n", spec.ClientID, st.ID); err != nil {
			t.Fatalf("log ack: %v", err)
		}
		_ = acks.Sync()
	}
	waitFor(t, 60*time.Second, "child workload drained", func() bool {
		for _, st := range s.List() {
			if !st.State.Terminal() {
				return false
			}
		}
		return true
	})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Probe runs (killOp 0) report how many FS operations a clean pass
	// makes, so the parent can sample kill points across the whole range.
	if err := os.WriteFile(filepath.Join(base, "ops.txt"),
		[]byte(strconv.FormatInt(inj.Ops(), 10)), 0o644); err != nil {
		t.Fatalf("write op count: %v", err)
	}
}

// runChaosChild re-executes the test binary in child mode. It returns
// (killed, output): killed is true when the child died by SIGKILL, false when
// it ran the workload to completion; any other outcome fails the test.
func runChaosChild(t *testing.T, base string, killOp int) (bool, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosChild$")
	cmd.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosDirEnv+"="+base,
		chaosKillEnv+"="+strconv.Itoa(killOp),
	)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err == nil {
		return false, out.String()
	}
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		if ws, ok := exitErr.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			return true, out.String()
		}
	}
	t.Fatalf("chaos child (kill op %d) failed for the wrong reason: %v\n%s", killOp, err, out.String())
	return false, ""
}

// readAcks parses the child's ack log into ClientID → job ID.
func readAcks(t *testing.T, base string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(base, "acks.txt"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil // killed before the first ack
		}
		t.Fatalf("read ack log: %v", err)
	}
	acked := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		clientID, jobID, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed ack line %q", line)
		}
		acked[clientID] = jobID
	}
	return acked
}

func TestChaosCrashRecovery(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 8
	}
	specs := chaosSpecs()

	// Uninterrupted references: the engine's determinism contract says every
	// recovered run must reproduce these bit-for-bit.
	refs := make(map[string]interface{}, len(specs))
	for _, spec := range specs {
		refs[spec.ClientID] = soloRun(t, spec.Scenario)
	}

	// Probe: one clean child pass measures the op-count range to sample.
	probe := t.TempDir()
	if killed, out := runChaosChild(t, probe, 0); killed {
		t.Fatalf("probe run was killed with no rule armed:\n%s", out)
	}
	opsData, err := os.ReadFile(filepath.Join(probe, "ops.txt"))
	if err != nil {
		t.Fatalf("probe op count: %v", err)
	}
	totalOps, err := strconv.ParseInt(strings.TrimSpace(string(opsData)), 10, 64)
	if err != nil || totalOps < 10 {
		t.Fatalf("implausible probe op count %q (err %v)", opsData, err)
	}
	t.Logf("probe: clean run makes %d FS ops; sweeping %d seeded kill points", totalOps, trials)

	rng := rand.New(rand.NewSource(20260808))
	kills := 0
	for trial := 0; trial < trials; trial++ {
		killOp := 1 + rng.Intn(int(totalOps))
		base := t.TempDir()
		killed, _ := runChaosChild(t, base, killOp)
		if killed {
			kills++
		}
		acked := readAcks(t, base)

		// Recover over the very journal the child was murdered on top of.
		s, err := New(Config{SpoolDir: filepath.Join(base, "spool"), Pool: 2, Metrics: &metrics.Registry{}})
		if err != nil {
			t.Fatalf("trial %d (kill op %d): recovery: %v", trial, killOp, err)
		}
		doneAtRecovery := 0
		for _, st := range s.List() {
			if st.State == StateDone {
				doneAtRecovery++
			}
		}
		// No acknowledged job may be lost: each one must come back under the
		// same identity it was acked with.
		for clientID, jobID := range acked {
			st, err := s.Status(jobID)
			if err != nil {
				t.Fatalf("trial %d (kill op %d): acked job %s (%s) lost: %v", trial, killOp, jobID, clientID, err)
			}
			if st.ClientID != clientID {
				t.Fatalf("trial %d (kill op %d): job %s recovered with ClientID %q, want %q", trial, killOp, jobID, st.ClientID, clientID)
			}
		}
		// The client's view: every ack was (maybe) lost, so retransmit the
		// whole workload. Idempotency must dedupe what survived and accept
		// the rest fresh.
		for _, spec := range specs {
			st, err := s.Submit(spec)
			if err != nil {
				t.Fatalf("trial %d (kill op %d): resubmit %s: %v", trial, killOp, spec.ClientID, err)
			}
			if want, ok := acked[spec.ClientID]; ok && st.ID != want {
				t.Fatalf("trial %d (kill op %d): resubmitting %s made a duplicate: got %s, want %s",
					trial, killOp, spec.ClientID, st.ID, want)
			}
		}
		waitFor(t, 60*time.Second, "recovered workload drained", func() bool {
			for _, st := range s.List() {
				if !st.State.Terminal() {
					return false
				}
			}
			return true
		})

		// Exactly one job per ClientID, every one done, every result
		// bit-identical to the uninterrupted reference.
		jobs := s.List()
		if len(jobs) != len(specs) {
			t.Fatalf("trial %d (kill op %d): %d jobs after recovery, want %d", trial, killOp, len(jobs), len(specs))
		}
		byClient := make(map[string]*JobStatus, len(jobs))
		for _, st := range jobs {
			if prev, dup := byClient[st.ClientID]; dup {
				t.Fatalf("trial %d (kill op %d): ClientID %s maps to both %s and %s", trial, killOp, st.ClientID, prev.ID, st.ID)
			}
			byClient[st.ClientID] = st
			if st.State != StateDone {
				t.Fatalf("trial %d (kill op %d): job %s (%s) ended %s (%s), want done",
					trial, killOp, st.ID, st.ClientID, st.State, st.Error)
			}
			res, err := s.Result(st.ID)
			if err != nil {
				t.Fatalf("trial %d (kill op %d): result of %s: %v", trial, killOp, st.ID, err)
			}
			if !reflect.DeepEqual(res, refs[st.ClientID]) {
				t.Fatalf("trial %d (kill op %d): job %s (%s) result differs from the uninterrupted run",
					trial, killOp, st.ID, st.ClientID)
			}
		}
		// No double-completion: this server instance completed exactly the
		// jobs that were not already done when it recovered the journal.
		snap := s.Metrics().Snapshot()
		if got, want := snap["service.jobs_completed"], int64(len(specs)-doneAtRecovery); got != want {
			t.Fatalf("trial %d (kill op %d): jobs_completed = %d, want %d (%d were already done at recovery)",
				trial, killOp, got, want, doneAtRecovery)
		}
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("trial %d (kill op %d): shutdown: %v", trial, killOp, err)
		}
	}
	if kills == 0 {
		t.Fatal("no trial actually killed the child; the sweep proved nothing")
	}
	t.Logf("%d/%d trials died by SIGKILL and recovered clean", kills, trials)
}
