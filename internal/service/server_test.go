package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"laacad/internal/core"
	"laacad/internal/metrics"
	"laacad/internal/scenario"
)

// testScenario builds a fast, deterministic ad-hoc scenario. A tiny epsilon
// keeps the run from converging early, so it executes exactly rounds rounds
// — the lever the preemption tests use to hold a job mid-run.
func testScenario(n, rounds int, eps float64, seed int64) scenario.Scenario {
	cfg := core.DefaultConfig(1)
	cfg.Epsilon = eps
	cfg.MaxRounds = rounds
	cfg.Mode = core.Localized
	cfg.Gamma = 0.6
	cfg.Seed = seed
	return scenario.Scenario{Region: "square", Placement: "uniform", N: n, Config: cfg}
}

// soloRun executes the scenario uninterrupted in-process: the reference for
// every bit-identity assertion.
func soloRun(t *testing.T, sc scenario.Scenario) *core.Result {
	t.Helper()
	r, err := scenario.NewRunner(sc)
	if err != nil {
		t.Fatalf("solo runner: %v", err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	return res
}

func newTestServer(t *testing.T, pool int) *Server {
	t.Helper()
	s, err := New(Config{SpoolDir: t.TempDir(), Pool: pool, Metrics: &metrics.Registry{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// state polls a job's current state.
func state(t *testing.T, s *Server, id string) JobState {
	t.Helper()
	st, err := s.Status(id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	return st.State
}

func TestSubmitRunsToDone(t *testing.T) {
	s := newTestServer(t, 1)
	sc := testScenario(12, 30, 1e-2, 3)
	st, err := s.Submit(JobSpec{Scenario: sc})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, 30*time.Second, "job done", func() bool { return state(t, s, st.ID) == StateDone })

	res, err := s.Result(st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if want := soloRun(t, sc); !reflect.DeepEqual(res, want) {
		t.Errorf("service result differs from solo run")
	}
	snap := s.Metrics().Snapshot()
	for name, want := range map[string]int64{
		"service.jobs_accepted":  1,
		"service.jobs_completed": 1,
		"service.queue_depth":    0,
		"service.pool_occupancy": 0,
	} {
		if snap[name] != want {
			t.Errorf("%s = %d, want %d", name, snap[name], want)
		}
	}
}

func TestSubmitValidates(t *testing.T) {
	s := newTestServer(t, 1)
	sc := testScenario(12, 30, 1e-2, 3)

	bad := sc
	bad.Region = "atlantis"
	if _, err := s.Submit(JobSpec{Scenario: bad}); err == nil || !strings.Contains(err.Error(), "square") {
		t.Errorf("unknown region should list valid names, got: %v", err)
	}
	if _, err := s.Submit(JobSpec{Scenario: sc, PaceMS: -1}); err == nil {
		t.Error("negative pace_ms should be rejected")
	}
	zero := 0
	if _, err := s.Submit(JobSpec{Scenario: sc, MaxRounds: &zero}); err == nil {
		t.Error("non-positive max_rounds should be rejected")
	}
}

func TestCancelLifecycle(t *testing.T) {
	s := newTestServer(t, 1)
	long := testScenario(12, 200, 1e-12, 5)

	a, err := s.Submit(JobSpec{Scenario: long, PaceMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(JobSpec{Scenario: long})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "A running", func() bool { return state(t, s, a.ID) == StateRunning })
	if got := state(t, s, b.ID); got != StateQueued {
		t.Fatalf("B state = %s, want queued (pool is 1)", got)
	}

	// Queued job cancels immediately.
	st, err := s.Cancel(b.ID)
	if err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: state=%v err=%v", st.State, err)
	}
	// Running job cancels at its next round boundary.
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "A cancelled", func() bool { return state(t, s, a.ID) == StateCancelled })
	// Terminal cancel is idempotent.
	if st, err := s.Cancel(a.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("re-cancel: state=%v err=%v", st.State, err)
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown = %v, want ErrUnknownJob", err)
	}
	snap := s.Metrics().Snapshot()
	if snap["service.jobs_cancelled"] != 2 || snap["service.jobs_completed"] != 0 {
		t.Errorf("cancelled=%d completed=%d, want 2/0",
			snap["service.jobs_cancelled"], snap["service.jobs_completed"])
	}
}

// TestPreemptResumeBitIdentical pins the core scheduler guarantee: a job
// preempted mid-run by a higher-priority arrival resumes from its
// checkpoint and finishes with exactly the result of an uninterrupted run.
func TestPreemptResumeBitIdentical(t *testing.T) {
	s := newTestServer(t, 1)
	low := testScenario(12, 40, 1e-12, 11) // paced: held mid-run
	high := testScenario(10, 20, 1e-2, 12) // quick: drains fast

	a, err := s.Submit(JobSpec{Scenario: low, PaceMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "A past round 2", func() bool {
		st, _ := s.Status(a.ID)
		return st != nil && st.Rounds >= 2
	})
	h, err := s.Submit(JobSpec{Scenario: high, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The preempted window can be microseconds (H converges fast and A
	// resumes immediately), so assert via the monotone preemption counter
	// rather than trying to observe the transient state.
	waitFor(t, 10*time.Second, "A preempted", func() bool {
		st, _ := s.Status(a.ID)
		return st != nil && st.Preemptions >= 1
	})
	waitFor(t, 30*time.Second, "H done", func() bool { return state(t, s, h.ID) == StateDone })
	waitFor(t, 30*time.Second, "A resumed and done", func() bool { return state(t, s, a.ID) == StateDone })

	st, err := s.Status(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Preemptions != 1 {
		t.Errorf("A preemptions = %d, want 1", st.Preemptions)
	}
	res, err := s.Result(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := soloRun(t, low)
	if !reflect.DeepEqual(res, want) {
		t.Errorf("preempted+resumed result differs from uninterrupted run:\n got rounds=%d msgs=%d\nwant rounds=%d msgs=%d",
			res.Rounds, res.Messages, want.Rounds, want.Messages)
	}
	snap := s.Metrics().Snapshot()
	if snap["service.jobs_preempted"] != 1 || snap["service.jobs_resumed"] != 1 {
		t.Errorf("preempted=%d resumed=%d, want 1/1",
			snap["service.jobs_preempted"], snap["service.jobs_resumed"])
	}
}

// TestEqualPriorityDoesNotPreempt: ties drain in submission order instead
// of thrashing checkpoints.
func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	s := newTestServer(t, 1)
	long := testScenario(12, 40, 1e-12, 21)

	a, err := s.Submit(JobSpec{Scenario: long, PaceMS: 5, Priority: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "A running", func() bool { return state(t, s, a.ID) == StateRunning })
	b, err := s.Submit(JobSpec{Scenario: long, Priority: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "A done", func() bool { return state(t, s, a.ID) == StateDone })
	st, _ := s.Status(a.ID)
	if st.Preemptions != 0 {
		t.Errorf("equal-priority arrival preempted A (%d times)", st.Preemptions)
	}
	waitFor(t, 30*time.Second, "B done", func() bool { return state(t, s, b.ID) == StateDone })
}

// TestDrainThousandJobs is the throughput acceptance: ≥1000 queued jobs
// drain over a bounded pool with exact accounting — accepted equals
// completed + cancelled + failed, the gauges return to zero, and the journal
// compacts itself along the way instead of growing one record per
// transition forever. SyncNone keeps the test measuring scheduling, not
// fsync latency.
func TestDrainThousandJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-job drain: skipped under -short")
	}
	s, err := New(Config{
		SpoolDir: t.TempDir(),
		Pool:     4,
		Metrics:  &metrics.Registry{},
		Journal:  JournalOptions{Sync: SyncNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	const total = 1000
	ids := make([]string, 0, total)
	for i := 0; i < total; i++ {
		sc := testScenario(8, 4, 1e-3, int64(i+1))
		sc.Config.Mode = core.Centralized
		st, err := s.Submit(JobSpec{Scenario: sc, Priority: i % 7})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		if i%10 == 9 {
			if _, err := s.Cancel(st.ID); err != nil {
				t.Fatalf("cancel %s: %v", st.ID, err)
			}
		}
	}
	waitFor(t, 300*time.Second, "queue drained", s.Idle)

	snap := s.Metrics().Snapshot()
	if snap["service.jobs_accepted"] != total {
		t.Errorf("accepted = %d, want %d", snap["service.jobs_accepted"], total)
	}
	sum := snap["service.jobs_completed"] + snap["service.jobs_cancelled"] + snap["service.jobs_failed"]
	if sum != snap["service.jobs_accepted"] {
		t.Errorf("completed+cancelled+failed = %d, want accepted = %d", sum, snap["service.jobs_accepted"])
	}
	if snap["service.queue_depth"] != 0 || snap["service.pool_occupancy"] != 0 {
		t.Errorf("queue_depth=%d pool_occupancy=%d after drain, want 0/0",
			snap["service.queue_depth"], snap["service.pool_occupancy"])
	}
	for _, id := range ids {
		if st := state(t, s, id); !st.Terminal() {
			t.Errorf("%s still %s after drain", id, st)
		}
	}
	s.Journal().Barrier()
	stats := s.Journal().Stats()
	if stats.Compactions == 0 {
		t.Errorf("journal never compacted across %d appends (%d records, %d live)",
			stats.Appends, stats.Records, stats.Live)
	}
	if stats.Live != total {
		t.Errorf("journal live records = %d, want %d", stats.Live, total)
	}
}

// TestRestartRecovery: a daemon shutdown checkpoints running work, and a
// fresh Server over the same spool resumes it to the bit-identical result.
func TestRestartRecovery(t *testing.T) {
	spool := t.TempDir()
	sc := testScenario(12, 40, 1e-12, 31)

	s1, err := New(Config{SpoolDir: spool, Pool: 1, Metrics: &metrics.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s1.Submit(JobSpec{Scenario: sc, PaceMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	queuedID, err := s1.Submit(JobSpec{Scenario: testScenario(8, 4, 1e-3, 32)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "A past round 2", func() bool {
		st, _ := s1.Status(a.ID)
		return st != nil && st.Rounds >= 2
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := state(t, s1, a.ID); st != StatePreempted {
		t.Fatalf("after shutdown A = %s, want preempted", st)
	}

	// "Restart": a new server over the same spool picks both jobs up.
	s2, err := New(Config{SpoolDir: spool, Pool: 1, Metrics: &metrics.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	for _, w := range s2.Warnings() {
		t.Errorf("unexpected recovery warning: %v", w)
	}
	// The resumed job's event stream replays the checkpointed rounds.
	evs, _, _, err := s2.Events(a.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for _, e := range evs {
		if e.Type == "round" {
			rounds++
		}
	}
	if rounds < 2 {
		t.Errorf("recovered event stream has %d round events, want >= 2", rounds)
	}

	waitFor(t, 60*time.Second, "both jobs done", func() bool {
		return state(t, s2, a.ID) == StateDone && state(t, s2, queuedID.ID) == StateDone
	})
	res, err := s2.Result(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := soloRun(t, sc); !reflect.DeepEqual(res, want) {
		t.Error("post-restart result differs from uninterrupted run")
	}
	st, _ := s2.Status(a.ID)
	if st.Preemptions != 1 {
		t.Errorf("A preemptions = %d, want 1 (the shutdown)", st.Preemptions)
	}
}

func TestSpoolQuarantinesCorruptFiles(t *testing.T) {
	spool := t.TempDir()
	if err := os.WriteFile(filepath.Join(spool, "job-000001.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spool, "notes.txt"), []byte("unrelated"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := &metrics.Registry{}
	s, err := New(Config{SpoolDir: spool, Pool: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("New over dirty spool: %v", err)
	}
	if len(s.List()) != 0 {
		t.Errorf("jobs = %d, want 0", len(s.List()))
	}
	snap := reg.Snapshot()
	if snap["service.records_quarantined"] != 2 {
		t.Errorf("records_quarantined = %d, want 2", snap["service.records_quarantined"])
	}
	if snap["service.quarantine_files"] != 2 {
		t.Errorf("quarantine_files = %d, want 2", snap["service.quarantine_files"])
	}
	// The damaged bytes are preserved, not deleted, and out of the replay
	// path.
	qdata, err := os.ReadFile(filepath.Join(spool, "quarantine", "job-000001.json"))
	if err != nil || string(qdata) != "{not json" {
		t.Errorf("quarantined record = %q, %v; want original bytes", qdata, err)
	}
	if _, err := os.Stat(filepath.Join(spool, "job-000001.json")); !os.IsNotExist(err) {
		t.Errorf("corrupt file should have moved out of the spool, stat err = %v", err)
	}
	// The queue still works.
	st, err := s.Submit(JobSpec{Scenario: testScenario(8, 4, 1e-3, 41)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "job done", func() bool { return state(t, s, st.ID) == StateDone })

	// Quarantined records survive a daemon restart and are still reported.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	reg2 := &metrics.Registry{}
	s2, err := New(Config{SpoolDir: spool, Pool: 1, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	snap2 := reg2.Snapshot()
	if snap2["service.quarantine_files"] != 2 {
		t.Errorf("after restart quarantine_files = %d, want 2", snap2["service.quarantine_files"])
	}
	if snap2["service.records_quarantined"] != 0 {
		t.Errorf("after restart records_quarantined = %d, want 0 (nothing newly quarantined)", snap2["service.records_quarantined"])
	}
	if got := len(s2.List()); got != 1 {
		t.Errorf("after restart jobs = %d, want 1 (the completed submission)", got)
	}
}
