package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"laacad/internal/fault"
	"laacad/internal/metrics"
)

// Retry/deadline/idempotency policy tests. Every test here runs on a
// fault.Manual clock, so backoff schedules that would span seconds of wall
// time execute instantly — and deterministically.

func newPolicyServer(t *testing.T, pool int, clock fault.Clock, hook func(id string, attempt int) error) *Server {
	t.Helper()
	s, err := New(Config{
		SpoolDir: t.TempDir(),
		Pool:     pool,
		Metrics:  &metrics.Registry{},
		Clock:    clock,
		RunHook:  hook,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestIdempotentSubmit(t *testing.T) {
	s := newTestServer(t, 1)
	spec := JobSpec{Scenario: testScenario(8, 4, 1e-3, 7), ClientID: "client-abc"}
	a, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The retried POST of the same ClientID must not create a second job —
	// even if the rest of the spec drifted.
	b, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("resubmission created %s, want the original %s", b.ID, a.ID)
	}
	if len(s.List()) != 1 {
		t.Fatalf("jobs = %d, want 1", len(s.List()))
	}
	if got := s.Metrics().Snapshot()["service.jobs_accepted"]; got != 1 {
		t.Fatalf("jobs_accepted = %d, want 1", got)
	}
	waitFor(t, 30*time.Second, "job done", func() bool { return state(t, s, a.ID) == StateDone })

	// A different ClientID is a different job.
	other := spec
	other.ClientID = "client-xyz"
	c, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("distinct ClientIDs must map to distinct jobs")
	}
}

func TestIdempotentSubmitSurvivesRestart(t *testing.T) {
	spool := t.TempDir()
	spec := JobSpec{Scenario: testScenario(8, 4, 1e-3, 9), ClientID: "client-restart"}
	s1, err := New(Config{SpoolDir: spool, Pool: 1, Metrics: &metrics.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "job done", func() bool { return state(t, s1, a.ID) == StateDone })
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The client never saw the ack and retries against the restarted daemon:
	// it must get the original (already finished) job back.
	s2, err := New(Config{SpoolDir: spool, Pool: 1, Metrics: &metrics.Registry{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	b, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != a.ID || b.State != StateDone {
		t.Fatalf("post-restart resubmit = %s (%s), want %s (done)", b.ID, b.State, a.ID)
	}
}

// advancePolicy waits until the server's policy loop is parked on the manual
// clock, then advances it.
func advancePolicy(t *testing.T, clock *fault.Manual, d time.Duration) {
	t.Helper()
	waitFor(t, 10*time.Second, "policy loop to arm its timer", func() bool { return clock.Pending() > 0 })
	clock.Advance(d)
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	clock := fault.NewManual(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	// The first two attempts fail before touching the engine; the third runs.
	hook := func(id string, attempt int) error {
		if attempt < 2 {
			return fmt.Errorf("transient failure %d", attempt)
		}
		return nil
	}
	s := newPolicyServer(t, 1, clock, hook)
	sc := testScenario(8, 4, 1e-3, 11)
	st, err := s.Submit(JobSpec{Scenario: sc, MaxRetries: 3, RetryBackoffMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 0 fails; the job re-queues behind backoff.
	waitFor(t, 10*time.Second, "first retry scheduled", func() bool {
		js, _ := s.Status(st.ID)
		return js.Retries == 1 && js.State == StateQueued
	})
	js, _ := s.Status(st.ID)
	if js.NotBefore == nil {
		t.Fatal("retried job has no backoff window")
	}
	if wait := js.NotBefore.Sub(clock.Now()); wait < 100*time.Millisecond || wait > 200*time.Millisecond {
		t.Fatalf("first backoff = %v, want base(100ms) + jitter(<100ms)", wait)
	}
	// Nothing runs while the backoff holds, even with a free slot.
	if s := state(t, s, st.ID); s != StateQueued {
		t.Fatalf("state during backoff = %s", s)
	}

	advancePolicy(t, clock, time.Second)
	waitFor(t, 10*time.Second, "second retry scheduled", func() bool {
		js, _ := s.Status(st.ID)
		return js.Retries == 2 && js.State == StateQueued
	})
	js, _ = s.Status(st.ID)
	if wait := js.NotBefore.Sub(clock.Now()); wait < 200*time.Millisecond || wait > 300*time.Millisecond {
		t.Fatalf("second backoff = %v, want doubled base(200ms) + jitter", wait)
	}

	advancePolicy(t, clock, time.Second)
	waitFor(t, 30*time.Second, "job done after retries", func() bool { return state(t, s, st.ID) == StateDone })
	snap := s.Metrics().Snapshot()
	if snap["service.jobs_retried"] != 2 {
		t.Errorf("jobs_retried = %d, want 2", snap["service.jobs_retried"])
	}
	if snap["service.jobs_failed"] != 0 {
		t.Errorf("jobs_failed = %d, want 0 (the job eventually succeeded)", snap["service.jobs_failed"])
	}
}

func TestRetryExhaustedFails(t *testing.T) {
	clock := fault.NewManual(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	boom := errors.New("persistent failure")
	s := newPolicyServer(t, 1, clock, func(string, int) error { return boom })
	st, err := s.Submit(JobSpec{Scenario: testScenario(8, 4, 1e-3, 13), MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		waitFor(t, 10*time.Second, "retry scheduled", func() bool {
			js, _ := s.Status(st.ID)
			return js.Retries == i && js.State == StateQueued
		})
		advancePolicy(t, clock, time.Minute)
	}
	waitFor(t, 10*time.Second, "job failed for good", func() bool { return state(t, s, st.ID) == StateFailed })
	js, _ := s.Status(st.ID)
	if js.Error != boom.Error() {
		t.Errorf("terminal error = %q, want %q", js.Error, boom.Error())
	}
	snap := s.Metrics().Snapshot()
	if snap["service.jobs_retried"] != 2 || snap["service.jobs_failed"] != 1 {
		t.Errorf("retried = %d, failed = %d, want 2 and 1", snap["service.jobs_retried"], snap["service.jobs_failed"])
	}
}

func TestDeadlineExceededQueued(t *testing.T) {
	clock := fault.NewManual(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	s := newPolicyServer(t, 1, clock, nil)
	// Occupy the only slot with a paced job so the deadlined one never runs.
	long, err := s.Submit(JobSpec{Scenario: testScenario(8, 400, 1e-9, 15), PaceMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "long job running", func() bool { return state(t, s, long.ID) == StateRunning })

	st, err := s.Submit(JobSpec{Scenario: testScenario(8, 4, 1e-3, 17), DeadlineMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadline == nil {
		t.Fatal("submission did not stamp a deadline")
	}
	advancePolicy(t, clock, 2*time.Second)
	waitFor(t, 10*time.Second, "queued job deadline-failed", func() bool { return state(t, s, st.ID) == StateFailed })
	js, _ := s.Status(st.ID)
	if js.Error != errDeadlineExceeded {
		t.Errorf("error = %q, want %q", js.Error, errDeadlineExceeded)
	}
	if got := s.Metrics().Snapshot()["service.jobs_deadline_exceeded"]; got != 1 {
		t.Errorf("jobs_deadline_exceeded = %d, want 1", got)
	}
	if _, err := s.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineExceededRunning(t *testing.T) {
	clock := fault.NewManual(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	s := newPolicyServer(t, 1, clock, nil)
	// Paced so it is still mid-run when the deadline fires.
	st, err := s.Submit(JobSpec{Scenario: testScenario(8, 400, 1e-9, 19), PaceMS: 20, DeadlineMS: 500})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "job running", func() bool { return state(t, s, st.ID) == StateRunning })
	advancePolicy(t, clock, time.Second)
	waitFor(t, 10*time.Second, "running job deadline-failed", func() bool { return state(t, s, st.ID) == StateFailed })
	js, _ := s.Status(st.ID)
	if js.Error != errDeadlineExceeded {
		t.Errorf("error = %q, want %q", js.Error, errDeadlineExceeded)
	}
	if got := s.Metrics().Snapshot()["service.jobs_deadline_exceeded"]; got != 1 {
		t.Errorf("jobs_deadline_exceeded = %d, want 1", got)
	}
}

// TestDeadlineBlocksRetry: when the deadline expires before the backoff
// window ends, the job fails for good instead of retrying forever.
func TestDeadlineBlocksRetry(t *testing.T) {
	clock := fault.NewManual(time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	boom := errors.New("always failing")
	s := newPolicyServer(t, 1, clock, func(string, int) error { return boom })
	st, err := s.Submit(JobSpec{
		Scenario:       testScenario(8, 4, 1e-3, 21),
		MaxRetries:     100,
		RetryBackoffMS: 400,
		DeadlineMS:     1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the clock until the job settles; the deadline must win long
	// before 100 retries.
	waitFor(t, 30*time.Second, "job terminal", func() bool {
		if clock.Pending() > 0 {
			clock.Advance(500 * time.Millisecond)
		}
		return state(t, s, st.ID) == StateFailed
	})
	js, _ := s.Status(st.ID)
	if js.Retries > 4 {
		t.Errorf("retries = %d before deadline, want a small number", js.Retries)
	}
}
