package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs             submit a JobSpec; 200 → JobStatus
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status
//	DELETE /jobs/{id}        cancel (idempotent)
//	GET    /jobs/{id}/events Server-Sent-Events stream of round statistics
//	                         and state transitions; resume with Last-Event-ID
//	                         (or ?after=N)
//	GET    /jobs/{id}/result the finished deployment (core.Result JSON)
//	GET    /metrics          service + engine metrics registry
//	GET    /healthz          liveness
//
// Routing is done by hand (not ServeMux patterns) to stay compatible with
// the module's Go 1.21 floor.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/jobs", http.HandlerFunc(s.handleJobs))
	mux.Handle("/jobs/", http.HandlerFunc(s.handleJob))
	mux.Handle("/metrics", s.reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrNoResult):
		status = http.StatusConflict
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
		// A draining daemon is about to restart; tell well-behaved clients
		// when to come back instead of letting them hammer the socket.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleJobs serves the /jobs collection: submit and list.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var spec JobSpec
		if err := dec.Decode(&spec); err != nil {
			writeError(w, fmt.Errorf("service: decoding job spec: %w", err))
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.List())
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
	}
}

// handleJob routes /jobs/{id}, /jobs/{id}/events and /jobs/{id}/result.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, fmt.Errorf("%w: empty id", ErrUnknownJob))
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			st, err := s.Status(id)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		case http.MethodDelete:
			st, err := s.Cancel(id)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		default:
			w.Header().Set("Allow", "GET, DELETE")
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		}
	case "events":
		s.handleEvents(w, r, id)
	case "result":
		res, err := s.Result(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		writeError(w, fmt.Errorf("%w: %q has no %q resource", ErrUnknownJob, id, sub))
	}
}

// handleEvents streams a job's events as Server-Sent-Events. Each event is
//
//	id: <event id>
//	event: <"round" | "state">
//	data: <Event JSON>
//
// The stream replays history from the client's cursor (Last-Event-ID header
// or ?after=N), follows the live run, and closes after the terminal state
// event — so a dropped client reconnects with its last seen ID and misses
// nothing, including across a daemon restart.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, fmt.Errorf("service: bad Last-Event-ID %q", v))
			return
		}
		after = n
	} else if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, fmt.Errorf("service: bad after %q", v))
			return
		}
		after = n
	}
	// Probe the job before committing to the stream content type.
	if _, _, _, err := s.Events(id, after); err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		evs, more, terminal, err := s.Events(id, after)
		if err != nil {
			return
		}
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, data); err != nil {
				return
			}
			after = e.ID
		}
		fl.Flush()
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}
