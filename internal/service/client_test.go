package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"laacad/internal/fault"
)

// scriptedTransport serves canned responses (or errors) in order, recording
// how many attempts the client made. The last entry repeats.
type scriptedTransport struct {
	attempts atomic.Int64
	script   []func() (*http.Response, error)
}

func (s *scriptedTransport) RoundTrip(*http.Request) (*http.Response, error) {
	n := int(s.attempts.Add(1)) - 1
	if n >= len(s.script) {
		n = len(s.script) - 1
	}
	return s.script[n]()
}

func respond(code int, headers map[string]string, body string) func() (*http.Response, error) {
	return func() (*http.Response, error) {
		h := http.Header{}
		for k, v := range headers {
			h.Set(k, v)
		}
		return &http.Response{
			StatusCode: code,
			Status:     http.StatusText(code),
			Header:     h,
			Body:       io.NopCloser(strings.NewReader(body)),
		}, nil
	}
}

func fail(err error) func() (*http.Response, error) {
	return func() (*http.Response, error) { return nil, err }
}

func retryClient(tr *scriptedTransport, clock fault.Clock) *Client {
	return &Client{
		BaseURL:    "http://daemon.test",
		HTTPClient: &http.Client{Transport: tr},
		MaxRetries: 3,
		Clock:      clock,
	}
}

func TestClientRetriesIdempotentSubmit(t *testing.T) {
	clock := fault.NewManual(time.Unix(0, 0))
	tr := &scriptedTransport{script: []func() (*http.Response, error){
		fail(errors.New("connection refused")),
		respond(http.StatusBadGateway, nil, `{"error":"upstream"}`),
		respond(http.StatusOK, nil, `{"id":"job-000001","state":"queued","slot":-1}`),
	}}
	c := retryClient(tr, clock)

	done := make(chan error, 1)
	var st *JobStatus
	go func() {
		var err error
		st, err = c.Submit(context.Background(), JobSpec{ClientID: "c1"})
		done <- err
	}()
	// Two backoff waits separate the three attempts.
	for i := 0; i < 2; i++ {
		waitFor(t, 10*time.Second, "client parked on backoff", func() bool { return clock.Pending() > 0 })
		clock.Advance(time.Minute)
	}
	if err := <-done; err != nil {
		t.Fatalf("Submit after retries: %v", err)
	}
	if st.ID != "job-000001" {
		t.Fatalf("status = %+v", st)
	}
	if got := tr.attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	clock := fault.NewManual(time.Unix(0, 0))
	tr := &scriptedTransport{script: []func() (*http.Response, error){
		respond(http.StatusServiceUnavailable, map[string]string{"Retry-After": "3"}, `{"error":"service: server is draining"}`),
		respond(http.StatusOK, nil, `{"id":"job-000002","state":"queued","slot":-1}`),
	}}
	c := retryClient(tr, clock)

	done := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), JobSpec{ClientID: "c2"})
		done <- err
	}()
	waitFor(t, 10*time.Second, "client parked on Retry-After", func() bool { return clock.Pending() > 0 })
	// Before the advertised 3 seconds, no retransmission.
	clock.Advance(2 * time.Second)
	time.Sleep(20 * time.Millisecond)
	if got := tr.attempts.Load(); got != 1 {
		t.Fatalf("attempts before Retry-After elapsed = %d, want 1", got)
	}
	clock.Advance(time.Second)
	if err := <-done; err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := tr.attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestClientDoesNotRetryWithoutClientID(t *testing.T) {
	tr := &scriptedTransport{script: []func() (*http.Response, error){
		fail(errors.New("connection refused")),
	}}
	c := retryClient(tr, fault.NewManual(time.Unix(0, 0)))
	if _, err := c.Submit(context.Background(), JobSpec{}); err == nil {
		t.Fatal("Submit without ClientID should fail fast")
	}
	if got := tr.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry without idempotency key)", got)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	tr := &scriptedTransport{script: []func() (*http.Response, error){
		respond(http.StatusBadRequest, nil, `{"error":"service: bad spec"}`),
	}}
	c := retryClient(tr, fault.NewManual(time.Unix(0, 0)))
	if _, err := c.Submit(context.Background(), JobSpec{ClientID: "c3"}); err == nil {
		t.Fatal("400 must surface, not retry")
	}
	if got := tr.attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (a 400 will not improve)", got)
	}
}
