package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"laacad/internal/fault"
)

// The job journal is the durable heart of the server: an append-only log of
// job-state transition records replacing the rewrite-whole-file spool. Each
// record is one length+CRC-framed JSON Job snapshot; the latest record per
// job ID wins on replay. The format is
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload]
//
// appended to numbered segment files (00000001.wal, 00000002.wal, ...) with
// rotation at SegmentMaxBytes. One append is one frame in one Write call, so
// a crash can only produce a *torn tail*: a frame prefix at the end of the
// last segment, which recovery detects (incomplete frame) and truncates back
// to the last valid record. Anything else that fails the CRC or the framing
// mid-segment is *corruption* — a different animal, preserved byte-for-byte
// under quarantine/ instead of being silently skipped, with recovery
// resyncing to the next CRC-valid frame so records behind the damage are not
// lost.
//
// Durability policy (SyncPolicy): under SyncAlways (the default) every
// append is fsynced before the transition is acknowledged, and segment
// create/rotate/rename boundaries fsync the directory — a crash loses at
// most the in-flight transition, never an acknowledged one. SyncNone leaves
// flushing to the OS for throughput benchmarking; the frame format still
// confines damage to the tail.
//
// Compaction: transitions accumulate dead records (a done job's queued and
// running records). When the live/total ratio drops below CompactLiveRatio
// (with at least CompactMinRecords written), a background pass rewrites the
// live set into a fresh segment numbered after every existing one and
// removes the old segments. Replay order makes this crash-safe at every
// instant: the compacted segment replays last, so last-wins semantics are
// unchanged whether the crash lands before the rename, between the rename
// and the removes, or mid-remove — stale segments are swept by the next
// compaction. This is what makes thousands of concurrent deployments
// spool-able: O(1) bytes per transition instead of O(job) rewrites.

// SyncPolicy selects when the journal fsyncs.
type SyncPolicy string

// Sync policies.
const (
	// SyncAlways fsyncs every append before acknowledging the transition.
	SyncAlways SyncPolicy = "always"
	// SyncNone never fsyncs explicitly; the OS flushes when it pleases.
	SyncNone SyncPolicy = "none"
)

const (
	segSuffix = ".wal"
	// maxRecordBytes is the framing sanity bound: a length field above this
	// is treated as corruption, not an allocation request.
	maxRecordBytes = 64 << 20

	defaultSegmentMaxBytes   = 4 << 20
	defaultCompactMinRecords = 256
	defaultCompactLiveRatio  = 0.5
)

// JournalOptions parameterizes OpenJournal. The zero value is ready to use.
type JournalOptions struct {
	// FS is the filesystem seam (fault injection point). Nil means the real
	// filesystem.
	FS fault.FS
	// Sync is the fsync policy; empty means SyncAlways.
	Sync SyncPolicy
	// SegmentMaxBytes rotates the active segment when it exceeds this size
	// (default 4 MiB).
	SegmentMaxBytes int64
	// CompactMinRecords is the minimum total record count before compaction
	// is considered (default 256).
	CompactMinRecords int
	// CompactLiveRatio triggers compaction when live/total drops below it
	// (default 0.5).
	CompactLiveRatio float64
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.FS == nil {
		o.FS = fault.OS{}
	}
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = defaultSegmentMaxBytes
	}
	if o.CompactMinRecords <= 0 {
		o.CompactMinRecords = defaultCompactMinRecords
	}
	if o.CompactLiveRatio <= 0 {
		o.CompactLiveRatio = defaultCompactLiveRatio
	}
	return o
}

// Recovery reports what OpenJournal found in the directory.
type Recovery struct {
	// Jobs is the latest durable record of every job, in Seq order.
	Jobs []*Job
	// TornTail reports that the last segment ended mid-frame (the classic
	// crash-during-append) and was truncated back to its last valid record.
	TornTail bool
	// Quarantined counts corrupt or foreign items moved to quarantine/.
	Quarantined int
	// Migrated counts legacy whole-file spool records (*.json) imported into
	// the journal.
	Migrated int
	// Warnings collects non-fatal recovery problems.
	Warnings []error
}

// JournalStats is a point-in-time view of the journal's shape.
type JournalStats struct {
	Segments    int
	Records     int   // total records across all segments
	Live        int   // distinct job IDs (records a compaction would keep)
	Appends     int64 // appends since open
	Compactions int64 // compaction passes since open
	Bytes       int64 // bytes in the active segment
}

// Journal is the append-only job journal. All methods are safe for
// concurrent use; appends are serialized internally.
type Journal struct {
	dir  string
	fs   fault.FS
	opts JournalOptions

	mu          sync.Mutex
	active      fault.File
	activeSeq   int
	activeSize  int64
	segments    []int             // existing segment numbers, ascending
	latest      map[string][]byte // job ID -> latest payload
	records     int
	appends     int64
	compactions int64
	compacting  bool
	closed      bool
	warnMu      sync.Mutex
	warns       []error
	compactWG   sync.WaitGroup
}

func segName(n int) string { return fmt.Sprintf("%08d%s", n, segSuffix) }

func quarantineDir(dir string) string { return filepath.Join(dir, "quarantine") }

// frameRecord builds the on-disk frame for one payload.
func frameRecord(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

// Record decode statuses.
const (
	recOK = iota
	// recTorn: the frame runs past the end of the data — an interrupted
	// append if it is the tail of the last segment.
	recTorn
	// recCorrupt: the frame is fully present but lies (bad length or CRC).
	recCorrupt
)

// decodeRecordAt tries to read one frame at off. n is the full frame length
// when status is recOK.
func decodeRecordAt(data []byte, off int) (payload []byte, n int, status int) {
	if off+8 > len(data) {
		return nil, 0, recTorn
	}
	length := binary.LittleEndian.Uint32(data[off : off+4])
	if length == 0 || length > maxRecordBytes {
		return nil, 0, recCorrupt
	}
	end := off + 8 + int(length)
	if end > len(data) {
		return nil, 0, recTorn
	}
	payload = data[off+8 : end]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
		return nil, 0, recCorrupt
	}
	return payload, 8 + int(length), recOK
}

// segmentChunk is a damaged byte range found while scanning a segment.
type segmentChunk struct{ start, end int }

// scanSegment walks a segment's bytes, returning the intact record payloads
// in order, the damaged chunks (to quarantine), the prefix length that holds
// everything valid (keep < len(data) means the tail beyond the last valid
// record must be truncated), and whether the tail was a clean torn append
// rather than corruption.
//
// On damage the scanner resyncs: it slides forward until the next offset
// that parses as a CRC-valid frame, so records written after a corrupted one
// are recovered, not abandoned. The skipped range is reported for
// quarantine. A trailing incomplete frame with no valid frame after it is a
// torn tail — the expected shape of a crash mid-append — and is truncated
// without quarantine.
func scanSegment(data []byte) (payloads [][]byte, chunks []segmentChunk, keep int, torn bool) {
	off := 0
	keep = 0
	for off < len(data) {
		payload, n, status := decodeRecordAt(data, off)
		if status == recOK {
			payloads = append(payloads, payload)
			off += n
			keep = off
			continue
		}
		// Invalid at off: look for a later frame that parses.
		next := -1
		for o := off + 1; o+8 <= len(data); o++ {
			if _, _, st := decodeRecordAt(data, o); st == recOK {
				next = o
				break
			}
		}
		if next < 0 {
			// Nothing valid follows. A torn frame is a crashed append;
			// anything else is tail corruption.
			torn = status == recTorn
			if !torn {
				chunks = append(chunks, segmentChunk{off, len(data)})
			}
			return payloads, chunks, keep, torn
		}
		chunks = append(chunks, segmentChunk{off, next})
		off = next
	}
	return payloads, chunks, keep, false
}

// OpenJournal opens (or creates) the journal in dir, replaying every segment
// to recover the job set. Legacy whole-file spool records (*.json, the
// pre-journal format) are imported and removed; corrupt or foreign files and
// damaged byte ranges are preserved under quarantine/. If recovery found
// damage or stale segments, a compaction pass rewrites the journal into a
// clean segment before new appends land.
func OpenJournal(dir string, opts JournalOptions) (*Journal, *Recovery, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	jl := &Journal{dir: dir, fs: fs, opts: opts, latest: make(map[string][]byte)}
	rec := &Recovery{}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: creating journal dir: %w", err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("service: reading journal dir: %w", err)
	}

	jobs := make(map[string]*Job)
	order := []string{} // IDs in first-seen replay order (refined by Seq below)

	absorb := func(payload []byte) bool {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil || j.ID == "" {
			return false
		}
		if _, seen := jobs[j.ID]; !seen {
			order = append(order, j.ID)
		}
		jobs[j.ID] = &j
		jl.latest[j.ID] = payload
		jl.records++
		return true
	}

	quarantine := func(name string, data []byte, remove bool) {
		qdir := quarantineDir(dir)
		if err := fs.MkdirAll(qdir, 0o755); err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: creating quarantine dir: %w", err))
			return
		}
		if err := fs.WriteFile(filepath.Join(qdir, name), data, 0o644); err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: quarantining %s: %w", name, err))
			return
		}
		rec.Quarantined++
		if remove {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				rec.Warnings = append(rec.Warnings, fmt.Errorf("service: removing quarantined %s: %w", name, err))
			}
		}
	}

	var segs []int
	var legacy []string
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, segSuffix):
			var n int
			if _, err := fmt.Sscanf(name, "%d.wal", &n); err != nil || segName(n) != name {
				quarantine(name, readOrEmpty(fs, filepath.Join(dir, name)), true)
				continue
			}
			segs = append(segs, n)
		case strings.HasSuffix(name, ".tmp"):
			// Half-written rotation or compaction output: superseded.
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				rec.Warnings = append(rec.Warnings, fmt.Errorf("service: removing stale %s: %w", name, err))
			}
		case strings.HasSuffix(name, ".json"):
			legacy = append(legacy, name)
		default:
			// Foreign file in the journal's directory: not ours, not skipped
			// silently — preserved out of the replay path.
			quarantine(name, readOrEmpty(fs, filepath.Join(dir, name)), true)
		}
	}
	sort.Ints(segs)

	dirty := false // a segment carried damage or stale data worth compacting away
	for i, n := range segs {
		name := segName(n)
		path := filepath.Join(dir, name)
		data, err := fs.ReadFile(path)
		if err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: reading segment %s: %w", name, err))
			dirty = true
			continue
		}
		payloads, chunks, keep, torn := scanSegment(data)
		for _, p := range payloads {
			if !absorb(p) {
				// CRC-valid but not a job record: foreign or software-bug
				// bytes — quarantine the record, keep replaying.
				quarantine(fmt.Sprintf("%s@%d.rec", name, jl.records), p, false)
				dirty = true
			}
		}
		for _, c := range chunks {
			quarantine(fmt.Sprintf("%s@%d.corrupt", name, c.start), data[c.start:c.end], false)
			dirty = true
		}
		if keep < len(data) {
			if torn && i == len(segs)-1 {
				rec.TornTail = true
			} else {
				dirty = true
			}
			if err := fs.Truncate(path, int64(keep)); err != nil {
				rec.Warnings = append(rec.Warnings, fmt.Errorf("service: truncating %s: %w", name, err))
				// Appending after unremoved garbage would corrupt the log:
				// retire this segment and start a fresh one instead.
				dirty = true
				if i == len(segs)-1 {
					segs = append(segs, n+1)
					if err := fs.WriteFile(filepath.Join(dir, segName(n+1)), nil, 0o644); err != nil {
						return nil, nil, fmt.Errorf("service: starting fresh segment: %w", err)
					}
				}
			}
		}
	}
	if len(segs) == 0 {
		segs = append(segs, 1)
		if err := fs.WriteFile(filepath.Join(dir, segName(1)), nil, 0o644); err != nil {
			return nil, nil, fmt.Errorf("service: creating first segment: %w", err)
		}
		if err := fs.SyncDir(dir); err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: syncing journal dir: %w", err))
		}
	}
	jl.segments = segs
	jl.activeSeq = segs[len(segs)-1]

	// Open the tail segment for appending.
	activePath := filepath.Join(dir, segName(jl.activeSeq))
	if data, err := fs.ReadFile(activePath); err == nil {
		jl.activeSize = int64(len(data))
	}
	f, err := fs.Append(activePath)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening active segment: %w", err)
	}
	jl.active = f

	// Import legacy whole-file spool records into the journal, so a PR-era
	// spool directory upgrades in place on first open.
	for _, name := range legacy {
		data, err := fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: reading legacy %s: %w", name, err))
			continue
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil || j.ID == "" || j.ID+".json" != name {
			quarantine(name, data, true)
			continue
		}
		payload, err := json.Marshal(&j)
		if err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: re-encoding legacy %s: %w", name, err))
			continue
		}
		if err := jl.append(j.ID, payload); err != nil {
			rec.Warnings = append(rec.Warnings, err)
			continue
		}
		absorb(payload)
		rec.Migrated++
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			rec.Warnings = append(rec.Warnings, fmt.Errorf("service: removing migrated %s: %w", name, err))
		}
	}

	// Order the recovered jobs by submission sequence for deterministic
	// scheduler recovery.
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Seq < jobs[order[b]].Seq })
	for _, id := range order {
		rec.Jobs = append(rec.Jobs, jobs[id])
	}

	// Recovery found damage, stale compaction leftovers, or a ratio already
	// under water: rewrite into a clean segment now, synchronously, so the
	// quarantined bytes are the only trace of the damage.
	if dirty || (len(segs) > 1 && jl.needsCompactLocked()) {
		jl.mu.Lock()
		if err := jl.compactLocked(); err != nil {
			rec.Warnings = append(rec.Warnings, err)
		}
		jl.mu.Unlock()
	}
	return jl, rec, nil
}

func readOrEmpty(fs fault.FS, path string) []byte {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

// Append durably records the payload as job id's latest state. Under
// SyncAlways the record has reached stable storage when Append returns.
func (jl *Journal) Append(id string, payload []byte) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := jl.append(id, payload); err != nil {
		return err
	}
	jl.latest[id] = payload
	jl.records++
	jl.appends++
	if jl.needsCompactLocked() && !jl.compacting {
		jl.compacting = true
		jl.compactWG.Add(1)
		go func() {
			defer jl.compactWG.Done()
			jl.mu.Lock()
			defer jl.mu.Unlock()
			defer func() { jl.compacting = false }()
			if err := jl.compactLocked(); err != nil {
				jl.warn(err)
			}
		}()
	}
	return nil
}

// append writes one frame to the active segment, rotating first when full.
// Caller holds mu (or is single-threaded during open).
func (jl *Journal) append(id string, payload []byte) error {
	if jl.closed {
		return fmt.Errorf("service: journal closed")
	}
	frame := frameRecord(payload)
	if jl.activeSize > 0 && jl.activeSize+int64(len(frame)) > jl.opts.SegmentMaxBytes {
		if err := jl.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := jl.active.Write(frame); err != nil {
		return fmt.Errorf("service: journaling job %s: %w", id, err)
	}
	if jl.opts.Sync == SyncAlways {
		if err := jl.active.Sync(); err != nil {
			return fmt.Errorf("service: syncing journal for job %s: %w", id, err)
		}
	}
	jl.activeSize += int64(len(frame))
	return nil
}

// rotateLocked closes the active segment and starts the next one.
func (jl *Journal) rotateLocked() error {
	if err := jl.active.Close(); err != nil {
		jl.warn(fmt.Errorf("service: closing segment %d: %w", jl.activeSeq, err))
	}
	next := jl.activeSeq + 1
	f, err := jl.fs.Create(filepath.Join(jl.dir, segName(next)))
	if err != nil {
		// Reopen the old segment: appends must keep landing somewhere.
		if re, rerr := jl.fs.Append(filepath.Join(jl.dir, segName(jl.activeSeq))); rerr == nil {
			jl.active = re
		}
		return fmt.Errorf("service: rotating journal: %w", err)
	}
	if err := jl.fs.SyncDir(jl.dir); err != nil {
		jl.warn(fmt.Errorf("service: syncing journal dir: %w", err))
	}
	jl.active = f
	jl.activeSeq = next
	jl.activeSize = 0
	jl.segments = append(jl.segments, next)
	return nil
}

// needsCompactLocked is the live/total ratio trigger.
func (jl *Journal) needsCompactLocked() bool {
	return jl.records >= jl.opts.CompactMinRecords &&
		float64(len(jl.latest)) < jl.opts.CompactLiveRatio*float64(jl.records)
}

// compactLocked rewrites the live set into a fresh segment numbered after
// every existing one, then removes the old segments. Crash-safe by replay
// order: the compacted segment replays last, so whichever prefix of this
// sequence survives a crash, recovery sees the same final state.
func (jl *Journal) compactLocked() error {
	next := jl.activeSeq + 1
	tmp := filepath.Join(jl.dir, segName(next)+".tmp")
	f, err := jl.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	ids := make([]string, 0, len(jl.latest))
	for id := range jl.latest {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var size int64
	for _, id := range ids {
		frame := frameRecord(jl.latest[id])
		if _, err := f.Write(frame); err != nil {
			f.Close()
			return fmt.Errorf("service: compacting journal: %w", err)
		}
		size += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("service: syncing compacted segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: closing compacted segment: %w", err)
	}
	if err := jl.fs.Rename(tmp, filepath.Join(jl.dir, segName(next))); err != nil {
		return fmt.Errorf("service: publishing compacted segment: %w", err)
	}
	if err := jl.fs.SyncDir(jl.dir); err != nil {
		jl.warn(fmt.Errorf("service: syncing journal dir: %w", err))
	}
	// The compacted segment is durable; everything before it is dead weight.
	if jl.active != nil {
		if err := jl.active.Close(); err != nil {
			jl.warn(fmt.Errorf("service: closing old active segment: %w", err))
		}
	}
	old := jl.segments
	for _, n := range old {
		if err := jl.fs.Remove(filepath.Join(jl.dir, segName(n))); err != nil {
			jl.warn(fmt.Errorf("service: removing stale segment %d: %w", n, err))
		}
	}
	if err := jl.fs.SyncDir(jl.dir); err != nil {
		jl.warn(fmt.Errorf("service: syncing journal dir: %w", err))
	}
	active, err := jl.fs.Append(filepath.Join(jl.dir, segName(next)))
	if err != nil {
		return fmt.Errorf("service: reopening compacted segment: %w", err)
	}
	jl.active = active
	jl.activeSeq = next
	jl.activeSize = size
	jl.segments = []int{next}
	jl.records = len(jl.latest)
	jl.compactions++
	return nil
}

// Barrier waits for any in-flight background compaction to finish.
func (jl *Journal) Barrier() { jl.compactWG.Wait() }

// Close waits for background work and closes the active segment.
func (jl *Journal) Close() error {
	jl.compactWG.Wait()
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return nil
	}
	jl.closed = true
	return jl.active.Close()
}

// Stats returns the journal's current shape.
func (jl *Journal) Stats() JournalStats {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return JournalStats{
		Segments:    len(jl.segments),
		Records:     jl.records,
		Live:        len(jl.latest),
		Appends:     jl.appends,
		Compactions: jl.compactions,
		Bytes:       jl.activeSize,
	}
}

func (jl *Journal) warn(err error) {
	jl.warnMu.Lock()
	defer jl.warnMu.Unlock()
	jl.warns = append(jl.warns, err)
}

// Warnings drains the journal's background warnings.
func (jl *Journal) Warnings() []error {
	jl.warnMu.Lock()
	defer jl.warnMu.Unlock()
	out := jl.warns
	jl.warns = nil
	return out
}

// LoadJobs replays the journal in dir read-only and returns the latest
// record of every job — the inspection path for tools and tests (the daemon
// itself holds the journal open via OpenJournal).
func LoadJobs(dir string) ([]*Job, error) {
	fs := fault.OS{}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: reading journal dir: %w", err)
	}
	var segs []int
	for _, name := range names {
		var n int
		if strings.HasSuffix(name, segSuffix) {
			if _, err := fmt.Sscanf(name, "%d.wal", &n); err == nil && segName(n) == name {
				segs = append(segs, n)
			}
		}
	}
	sort.Ints(segs)
	jobs := make(map[string]*Job)
	var order []string
	for _, n := range segs {
		data, err := fs.ReadFile(filepath.Join(dir, segName(n)))
		if err != nil {
			return nil, err
		}
		payloads, _, _, _ := scanSegment(data)
		for _, p := range payloads {
			var j Job
			if json.Unmarshal(p, &j) != nil || j.ID == "" {
				continue
			}
			if _, seen := jobs[j.ID]; !seen {
				order = append(order, j.ID)
			}
			jobs[j.ID] = &j
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Seq < jobs[order[b]].Seq })
	out := make([]*Job, 0, len(order))
	for _, id := range order {
		out = append(out, jobs[id])
	}
	return out, nil
}
