package experiment

import (
	"fmt"
	"math/rand"

	"laacad/internal/asciiplot"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/geom"
	"laacad/internal/wsn"
)

func init() {
	register("extra-maxcov", runExtraMaxCov)
	register("extra-connectivity", runExtraConnectivity)
}

// runExtraMaxCov probes the Sec. IV-C claim that LAACAD's output is a good
// approximation to the maximum-k-coverage problem (maximize the k-covered
// area under a fixed sensing range):
//
//  1. the paper's extreme example — 3 nodes asked for 3-coverage must
//     co-locate, the provably optimal configuration;
//  2. with a sensing range too small for full k-coverage, the k-covered
//     fraction of a LAACAD deployment must beat random placement.
func runExtraMaxCov(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	out := &Output{
		Name:  "extra-maxcov",
		Title: "LAACAD as an approximation to maximum k-coverage (Sec. IV-C)",
		CSV:   map[string]string{},
	}

	// Part 1: three nodes, 3-coverage → co-location at the area's center.
	rng := rand.New(rand.NewSource(cfg.Seed + 700))
	three := uniform(reg, 3, rng)
	c3 := core.DefaultConfig(3)
	c3.Epsilon = 1e-4
	c3.MaxRounds = 100
	c3.Seed = cfg.Seed
	eng, err := core.New(reg, three, c3)
	if err != nil {
		return nil, err
	}
	res3, err := eng.Run(cfg.Context())
	if err != nil {
		return nil, err
	}
	var maxPair float64
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if d := res3.Positions[i].Dist(res3.Positions[j]); d > maxPair {
				maxPair = d
			}
		}
	}
	center := geom.Pt(0.5, 0.5)
	drift := 0.0
	for _, p := range res3.Positions {
		if d := p.Dist(center); d > drift {
			drift = d
		}
	}
	out.Checks = append(out.Checks,
		check("3 nodes co-locate for 3-coverage", maxPair < 1e-3,
			"max pairwise distance %s", f64(maxPair)),
		check("co-location at the Chebyshev center of A", drift < 1e-2,
			"max distance from center %s", f64(drift)))

	// Part 2: fixed (slightly insufficient) range — LAACAD vs random
	// placement. The range is set just below LAACAD's achieved R*, where a
	// balanced deployment keeps almost everything k-covered while random
	// placement leaves holes.
	n, k := 40, 2
	if cfg.Quick {
		n = 25
	}
	rng2 := rand.New(rand.NewSource(cfg.Seed + 701))
	start := uniform(reg, n, rng2)
	res, err := deploy(cfg, "square", n, k, 1e-3, 250, cfg.Seed+702)
	if err != nil {
		return nil, err
	}
	fixedR := 0.95 * res.MaxRadius()
	fixed := make([]float64, n)
	for i := range fixed {
		fixed[i] = fixedR
	}
	laacadFrac := coverage.VerifyWorkers(res.Positions, fixed, reg, 80, cfg.Workers).FracAtLeast(k)
	randomFrac := coverage.VerifyWorkers(start, fixed, reg, 80, cfg.Workers).FracAtLeast(k)
	out.Checks = append(out.Checks,
		check("LAACAD beats random at fixed range", laacadFrac > randomFrac+0.1,
			"k-covered fraction %.3f vs %.3f at r=0.95·R*", laacadFrac, randomFrac))

	rows := [][]string{
		{"3-node co-location max pair dist", f64(maxPair)},
		{"LAACAD 2-covered fraction @0.95R*", f64(laacadFrac)},
		{"random 2-covered fraction @0.95R*", f64(randomFrac)},
	}
	out.Text = asciiplot.Table([]string{"metric", "value"}, rows)
	out.CSV["extra-maxcov.csv"] = asciiplot.CSV(append([][]string{{"metric", "value"}}, rows...))
	return out, nil
}

// runExtraConnectivity probes the Sec. IV-C connectivity discussion. The
// provable form: adjacent dominating regions share boundary points, and a
// node is within R* of every point of its own region, so adjacent
// generators are at most 2·R* apart — the region-adjacency graph makes the
// WSN connected whenever γ ≥ 2·R* (the k-coverage analogue of the classic
// R_t ≥ 2·R_s result). At γ = R* exactly, connectivity is reported as data:
// a min-max-balanced deployment can leave inter-group gaps just above R*.
func runExtraConnectivity(cfg RunConfig) (*Output, error) {
	ks := []int{2, 3, 4}
	n := 80
	if cfg.Quick {
		ks, n = []int{2}, 40
	}
	out := &Output{
		Name:  "extra-connectivity",
		Title: "k-coverage connectivity: γ = 2·R* guarantees a connected WSN (Sec. IV-C)",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"k", "r_star", "connected_at_2R", "connected_at_R", "min_degree_2R", "mean_degree_2R"}}
	for _, k := range ks {
		res, err := deploy(cfg, "square", n, k, 1e-3, 250, cfg.Seed+int64(800+k))
		if err != nil {
			return nil, err
		}
		rStar := res.MaxRadius()
		net2R := wsn.New(res.Positions, 2*rStar)
		netR := wsn.New(res.Positions, rStar*(1+1e-9))
		conn2R := net2R.Connected()
		connR := netR.Connected()
		minDeg, _, meanDeg := net2R.DegreeStats()
		rows = append(rows, []string{fmt.Sprint(k), f64(rStar),
			fmt.Sprint(conn2R), fmt.Sprint(connR), fmt.Sprint(minDeg), f64(meanDeg)})
		csv = append(csv, []string{fmt.Sprint(k), f64(rStar),
			fmt.Sprint(conn2R), fmt.Sprint(connR), fmt.Sprint(minDeg), f64(meanDeg)})
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d connected at γ=2R*", k), conn2R,
				"min degree %d, mean %.1f", minDeg, meanDeg),
			check(fmt.Sprintf("k=%d min degree ≥ k−1 at γ=2R*", k), minDeg >= k-1,
				"min degree %d (a k-covered node hears its co-coverers)", minDeg))
	}
	out.Text = asciiplot.Table(
		[]string{"k", "R*", "connected@2R*", "connected@R*", "min deg", "mean deg"}, rows)
	out.CSV["extra-connectivity.csv"] = asciiplot.CSV(csv)
	return out, nil
}
