package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"laacad/internal/asciiplot"
	"laacad/internal/baseline"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/energy"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/scenario"
)

func init() {
	register("fig7", runFig7)
	register("table1", runTable1)
	register("table2", runTable2)
	register("fig8", runFig8)

	// The effective-area regions of Tables I/II (the paper's numbers are
	// consistent with |A| = 10⁴ m²; quick mode shrinks to 2.5·10³ m²).
	// Registering them means every harness deployment — like the CLIs —
	// resolves its geometry from the scenario registry by name.
	scenario.RegisterRegion("square100m", func() *region.Region { return region.Rect(0, 0, 100, 100) })
	scenario.RegisterRegion("square50m", func() *region.Region { return region.Rect(0, 0, 50, 50) })
}

// deploy runs one uniform-start LAACAD deployment with the harness
// conventions: the region resolves from the scenario registry by name, and
// the run is cancellable through cfg.Ctx.
func deploy(cfg RunConfig, regionName string, n, k int, eps float64, maxRounds int, seed int64) (*core.Result, error) {
	c := core.DefaultConfig(k)
	c.Epsilon = eps
	c.MaxRounds = maxRounds
	c.Seed = seed
	return scenario.Run(cfg.Context(), scenario.Scenario{
		Region:    regionName,
		Placement: "uniform",
		N:         n,
		Config:    c,
	})
}

// runFig7 regenerates Fig. 7: maximum and total sensing load versus network
// size for k = 1..4 with E(r) = πr² over the 1 km² area.
func runFig7(cfg RunConfig) (*Output, error) {
	sizes := []int{20, 60, 100, 140, 180}
	ks := []int{1, 2, 3, 4}
	maxRounds := 200
	if cfg.Quick {
		sizes, ks, maxRounds = []int{20, 60, 100}, []int{1, 2}, 100
	}
	model := energy.DiskArea{}
	out := &Output{
		Name:  "fig7",
		Title: "max & total sensing load vs network size (E(r)=πr²)",
		CSV:   map[string]string{},
	}
	maxLoad := map[int][]float64{}
	totLoad := map[int][]float64{}
	csv := [][]string{{"k", "n", "max_load", "total_load", "max_r", "min_r"}}
	// Every (k, n) cell is an independent deployment with its own seed: fan
	// them across the trial pool, then assemble rows in sweep order.
	results := make([]*core.Result, len(ks)*len(sizes))
	err := forTrials(len(results), cfg, func(t int) error {
		k, n := ks[t/len(sizes)], sizes[t%len(sizes)]
		res, err := deploy(cfg, "square", n, k, 1e-3, maxRounds, cfg.Seed+int64(1000*k+n))
		if err != nil {
			return err
		}
		results[t] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		for ni, n := range sizes {
			res := results[ki*len(sizes)+ni]
			ml := energy.MaxLoad(res.Radii, model)
			tl := energy.TotalLoad(res.Radii, model)
			maxLoad[k] = append(maxLoad[k], ml)
			totLoad[k] = append(totLoad[k], tl)
			csv = append(csv, []string{fmt.Sprint(k), fmt.Sprint(n),
				f64(ml), f64(tl), f64(res.MaxRadius()), f64(res.MinRadius())})
		}
	}

	// Shape checks from the paper's discussion.
	for _, k := range ks {
		ml := maxLoad[k]
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d max load decreases with N", k),
				ml[len(ml)-1] < ml[0], "%s → %s", f64(ml[0]), f64(ml[len(ml)-1])),
			check(fmt.Sprintf("k=%d total load decreases with N", k),
				totLoad[k][len(totLoad[k])-1] < totLoad[k][0],
				"%s → %s", f64(totLoad[k][0]), f64(totLoad[k][len(totLoad[k])-1])),
		)
	}
	for i := 1; i < len(ks); i++ {
		lo, hi := ks[0], ks[i]
		// The paper observes max-load(k₁)/max-load(k₂) ≈ k₁/k₂ because every
		// node ends up covering ≈ k|A|/N.
		lastIdx := len(sizes) - 1
		got := maxLoad[hi][lastIdx] / maxLoad[lo][lastIdx]
		want := float64(hi) / float64(lo)
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("max-load ratio k=%d/k=%d ≈ %d/%d", hi, lo, hi, lo),
				got > want*0.6 && got < want*1.5,
				"measured %.2f, ideal %.2f", got, want))
	}
	for _, k := range ks {
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d load grows with k (vs k=%d)", k, ks[0]),
				k == ks[0] || maxLoad[k][0] > maxLoad[ks[0]][0],
				"max load at N=%d: %s vs %s", sizes[0], f64(maxLoad[k][0]), f64(maxLoad[ks[0]][0])))
	}

	var b strings.Builder
	hdr := []string{"N"}
	for _, k := range ks {
		hdr = append(hdr, fmt.Sprintf("maxload k=%d", k), fmt.Sprintf("total k=%d", k))
	}
	rows := [][]string{}
	for i, n := range sizes {
		row := []string{fmt.Sprint(n)}
		for _, k := range ks {
			row = append(row, f64(maxLoad[k][i]), f64(totLoad[k][i]))
		}
		rows = append(rows, row)
	}
	b.WriteString(asciiplot.Table(hdr, rows))
	b.WriteString("\nMax sensing load vs N:\n")
	marks := []rune{'1', '2', '3', '4'}
	var series []asciiplot.Series
	for i, k := range ks {
		series = append(series, asciiplot.Series{
			Name: fmt.Sprintf("k=%d", k), Ys: maxLoad[k], Mark: marks[i%4]})
	}
	b.WriteString(asciiplot.LineChart(60, 14, series...))
	out.Text = b.String()
	out.CSV["fig7.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runTable1 regenerates Table I: min-node 2-coverage versus the Bai et al.
// density bound. The paper states a 1 km² area but its numbers are
// consistent with an effective |A| = 10⁴ m² (100 m × 100 m, R* in meters);
// we use that area so the magnitudes line up (see EXPERIMENTS.md).
func runTable1(cfg RunConfig) (*Output, error) {
	regName := "square100m"
	sizes := []int{1000, 1200, 1400, 1600}
	maxRounds := 400
	eps := 0.01
	if cfg.Quick {
		regName, sizes, maxRounds = "square50m", []int{250, 350}, 150
	}
	reg, err := scenario.LookupRegion(regName)
	if err != nil {
		return nil, err
	}
	out := &Output{
		Name:  "table1",
		Title: "min-node 2-coverage vs Bai et al. bound (Table I)",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"n", "start", "r_star", "bai_n_star", "overhead"}}

	type table1Trial struct {
		rStar, overhead float64
		rep             coverage.Report
	}
	uniform, err := scenario.LookupPlacement("uniform")
	if err != nil {
		return nil, err
	}
	runOne := func(n int, paired bool) (table1Trial, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var start []geom.Point
		if paired {
			// Seed co-located pairs: the clustered local optima the paper's
			// deployments exhibit (Fig. 5) and the better basin for k=2.
			for len(start) < n {
				s := reg.RandomPoint(rng)
				start = append(start, s,
					geom.Pt(s.X+1e-5*rng.Float64(), s.Y+1e-5*rng.Float64()))
			}
			start = start[:n]
		} else {
			start = uniform(reg, n, rng)
		}
		c := core.DefaultConfig(2)
		c.Alpha = 1 // fastest convergence; Prop. 4 covers α=1
		c.Epsilon = eps
		c.MaxRounds = maxRounds
		c.Seed = cfg.Seed
		eng, err := core.New(reg, start, c)
		if err != nil {
			return table1Trial{}, err
		}
		res, err := eng.Run(cfg.Context())
		if err != nil {
			return table1Trial{}, err
		}
		rStar := res.MaxRadius()
		nStar := baseline.BaiMinNodes2Coverage(reg.Area(), rStar)
		// The deployment must genuinely 2-cover with the uniform range.
		radii := make([]float64, len(res.Positions))
		for i := range radii {
			radii[i] = rStar
		}
		// Serial verify: runs trial-parallel under forTrials already.
		rep := coverage.Verify(res.Positions, radii, reg, 100)
		return table1Trial{rStar: rStar, overhead: float64(n)/nStar - 1, rep: rep}, nil
	}

	trials := make([]table1Trial, 2*len(sizes))
	if err := forTrials(len(trials), cfg, func(t int) error {
		var err error
		trials[t], err = runOne(sizes[t/2], t%2 == 1)
		return err
	}); err != nil {
		return nil, err
	}

	for si, n := range sizes {
		for pi, paired := range []bool{false, true} {
			tr := trials[2*si+pi]
			rStar, overhead := tr.rStar, tr.overhead
			label := "uniform"
			if paired {
				label = "paired"
			}
			out.Checks = append(out.Checks,
				check(fmt.Sprintf("N=%d %s uniform-range 2-coverage", n, label),
					tr.rep.KCovered(2), "min depth %d", tr.rep.MinDepth))
			rows = append(rows, []string{fmt.Sprint(n), label, f64(rStar),
				f64(baseline.BaiMinNodes2Coverage(reg.Area(), rStar)),
				fmt.Sprintf("%.1f%%", overhead*100)})
			csv = append(csv, []string{fmt.Sprint(n), label, f64(rStar),
				f64(baseline.BaiMinNodes2Coverage(reg.Area(), rStar)), f64(overhead)})
			// Paper: ≈15–20% above the boundary-free bound. Our uniform
			// random starts converge to unclustered local optima ≈30% above;
			// the paired starts (the paper's clustered regime) land lower.
			// See EXPERIMENTS.md for the full analysis.
			hiBound := 0.40
			if cfg.Quick {
				hiBound = 0.70
			}
			if paired {
				hiBound -= 0.05
			}
			out.Checks = append(out.Checks,
				check(fmt.Sprintf("N=%d %s overhead window", n, label),
					overhead > 0.02 && overhead < hiBound,
					"N/N* − 1 = %.1f%% (paper ≈15–20%%)", overhead*100))
		}
	}
	out.Text = asciiplot.Table([]string{"N", "start", "R* (m)", "Bai N*", "overhead"}, rows)
	out.CSV["table1.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runTable2 regenerates Table II: LAACAD with 180 nodes versus the Ammari &
// Das Reuleaux-lens deployment node count for k = 3..8 (same effective area
// convention as Table I).
func runTable2(cfg RunConfig) (*Output, error) {
	n := 180
	ks := []int{3, 4, 5, 6, 7, 8}
	maxRounds := 250
	if cfg.Quick {
		ks, maxRounds = []int{3, 4}, 100
	}
	reg, err := scenario.LookupRegion("square100m")
	if err != nil {
		return nil, err
	}
	out := &Output{
		Name:  "table2",
		Title: "k-coverage with 180 nodes vs Ammari lens deployment (Table II)",
		CSV:   map[string]string{},
	}
	// Paper's measured R*_k for reference (meters).
	paperR := map[int]float64{3: 8.77, 4: 10.21, 5: 11.24, 6: 12.36, 7: 13.39, 8: 14.32}
	rows := [][]string{}
	csv := [][]string{{"k", "r_star", "paper_r_star", "ammari_n_star", "advantage"}}
	results := make([]*core.Result, len(ks))
	if err := forTrials(len(ks), cfg, func(t int) error {
		res, err := deploy(cfg, "square100m", n, ks[t], 0.02, maxRounds, cfg.Seed+int64(10*ks[t]))
		results[t] = res
		return err
	}); err != nil {
		return nil, err
	}
	var prevR float64
	for ki, k := range ks {
		res := results[ki]
		rStar := res.MaxRadius()
		nStar := baseline.AmmariLensNodes(k, reg.Area(), rStar)
		adv := nStar / float64(n)
		rows = append(rows, []string{fmt.Sprint(k), f64(rStar), f64(paperR[k]),
			f64(nStar), fmt.Sprintf("%.2fx", adv)})
		csv = append(csv, []string{fmt.Sprint(k), f64(rStar), f64(paperR[k]), f64(nStar), f64(adv)})
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d lens needs more nodes", k), nStar > float64(n)*1.3,
				"lens N*=%s vs LAACAD %d (paper: ~1.75x)", f64(nStar), n),
			check(fmt.Sprintf("k=%d R* near paper value", k),
				math.Abs(rStar-paperR[k]) < 0.3*paperR[k],
				"measured %s vs paper %s", f64(rStar), f64(paperR[k])))
		if prevR > 0 {
			out.Checks = append(out.Checks,
				check(fmt.Sprintf("R* grows with k (k=%d)", k), rStar > prevR,
					"%s > %s", f64(rStar), f64(prevR)))
		}
		prevR = rStar
	}
	out.Text = asciiplot.Table([]string{"k", "R* (m)", "paper R*", "Ammari N*", "lens/LAACAD"}, rows)
	out.CSV["table2.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runFig8 regenerates Fig. 8: adaptability to irregular regions with
// obstacles, for k = 2, 4, 6, 8.
func runFig8(cfg RunConfig) (*Output, error) {
	n := 120
	ks := []int{2, 4, 6, 8}
	maxRounds := 250
	if cfg.Quick {
		n, ks, maxRounds = 50, []int{2}, 120
	}
	// Both obstacle regions resolve from the scenario registry — the same
	// definitions cmd/laacad's -region flag and the built-in "obstacle1"/
	// "obstacles2" scenarios use.
	scenarios := []struct {
		name    string
		regName string
		reg     *region.Region
	}{
		{name: "I: square + circular obstacle", regName: "obstacle1"},
		{name: "II: square + two obstacles", regName: "obstacles2"},
	}
	for i := range scenarios {
		reg, err := scenario.LookupRegion(scenarios[i].regName)
		if err != nil {
			return nil, err
		}
		scenarios[i].reg = reg
	}
	out := &Output{
		Name:  "fig8",
		Title: "adaptability to arbitrarily shaped areas and obstacles",
		CSV:   map[string]string{},
	}
	var b strings.Builder
	csv := [][]string{{"scenario", "k", "rounds", "max_r", "covered"}}
	type fig8Trial struct {
		res *core.Result
		rep coverage.Report
	}
	trials := make([]fig8Trial, len(scenarios)*len(ks))
	if err := forTrials(len(trials), cfg, func(t int) error {
		sc, k := scenarios[t/len(ks)], ks[t%len(ks)]
		res, err := deploy(cfg, sc.regName, n, k, 1e-3, maxRounds, cfg.Seed+int64(100*k))
		if err != nil {
			return err
		}
		// Serial verify: runs trial-parallel under forTrials already.
		trials[t] = fig8Trial{res: res, rep: coverage.Verify(res.Positions, res.Radii, sc.reg, 90)}
		return nil
	}); err != nil {
		return nil, err
	}
	for si, sc := range scenarios {
		fmt.Fprintf(&b, "Scenario %s (|A|=%s):\n", sc.name, f64(sc.reg.Area()))
		for ki, k := range ks {
			res, rep := trials[si*len(ks)+ki].res, trials[si*len(ks)+ki].rep
			inObstacle := 0
			for _, p := range res.Positions {
				if !sc.reg.Contains(p) {
					inObstacle++
				}
			}
			fmt.Fprintf(&b, "\nk=%d (rounds=%d, R*=%s):\n", k, res.Rounds, f64(res.MaxRadius()))
			b.WriteString(asciiplot.Scatter(sc.reg.BBox(), 48, 18,
				asciiplot.Layer{Points: res.Positions, Mark: 'o'}))
			csv = append(csv, []string{sc.name, fmt.Sprint(k), fmt.Sprint(res.Rounds),
				f64(res.MaxRadius()), fmt.Sprint(rep.KCovered(k))})
			out.Checks = append(out.Checks,
				check(fmt.Sprintf("%s k=%d covered", sc.name, k), rep.KCovered(k),
					"min depth %d (want ≥ %d)", rep.MinDepth, k),
				check(fmt.Sprintf("%s k=%d avoids obstacles", sc.name, k), inObstacle == 0,
					"%d nodes inside obstacles", inObstacle))
		}
		b.WriteString("\n")
	}
	out.Text = b.String()
	out.CSV["fig8.csv"] = asciiplot.CSV(csv)
	return out, nil
}
