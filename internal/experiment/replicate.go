package experiment

import (
	"fmt"

	"laacad/internal/asciiplot"
	"laacad/internal/coverage"
	"laacad/internal/stats"
)

func init() {
	register("replication", runReplication)
}

// runReplication tests the paper's "results from our extensive experiments
// are all similar" claim: the same workload (uniform start, k=2) is run
// across independent seeds and the spread of the objective R* is measured.
// A well-behaved algorithm shows a small coefficient of variation, and every
// replicate must k-cover.
func runReplication(cfg RunConfig) (*Output, error) {
	reg, _, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n, k := 60, 2
	seeds := 10
	if cfg.Quick {
		n, seeds = 30, 4
	}
	out := &Output{
		Name:  "replication",
		Title: "seed-to-seed variability of the deployment objective",
		CSV:   map[string]string{},
	}
	var rStars, rounds []float64
	covered := 0
	csv := [][]string{{"seed", "r_star", "rounds", "covered"}}
	type replica struct {
		rStar   float64
		rounds  int
		covered bool
	}
	reps := make([]replica, seeds)
	if err := forTrials(seeds, cfg, func(s int) error {
		res, err := deploy(cfg, "square", n, k, 1e-3, 300, cfg.Seed+int64(1000+s))
		if err != nil {
			return err
		}
		// Serial verify: this closure already runs trial-parallel under
		// forTrials, so an inner fan-out would only add scheduler churn.
		rep := coverage.Verify(res.Positions, res.Radii, reg, 60)
		reps[s] = replica{rStar: res.MaxRadius(), rounds: res.Rounds, covered: rep.KCovered(k)}
		return nil
	}); err != nil {
		return nil, err
	}
	for s, r := range reps {
		if r.covered {
			covered++
		}
		rStars = append(rStars, r.rStar)
		rounds = append(rounds, float64(r.rounds))
		csv = append(csv, []string{fmt.Sprint(cfg.Seed + int64(1000+s)), f64(r.rStar),
			fmt.Sprint(r.rounds), fmt.Sprint(r.covered)})
	}
	rSum := stats.Summarize(rStars)
	roundSum := stats.Summarize(rounds)
	out.Checks = append(out.Checks,
		check("every replicate k-covers", covered == seeds, "%d/%d", covered, seeds),
		check("R* spread is small", rSum.CoefficientVar < 0.10,
			"cv = %.1f%% over %d seeds", 100*rSum.CoefficientVar, seeds),
	)
	rows := [][]string{
		{"R*", rSum.String()},
		{"rounds", roundSum.String()},
	}
	out.Text = asciiplot.Table([]string{"metric", "summary"}, rows)
	out.CSV["replication.csv"] = asciiplot.CSV(csv)
	return out, nil
}
