package experiment

import (
	"fmt"

	"laacad/internal/asciiplot"
	"laacad/internal/coverage"
	"laacad/internal/region"
	"laacad/internal/stats"
)

func init() {
	register("replication", runReplication)
}

// runReplication tests the paper's "results from our extensive experiments
// are all similar" claim: the same workload (uniform start, k=2) is run
// across independent seeds and the spread of the objective R* is measured.
// A well-behaved algorithm shows a small coefficient of variation, and every
// replicate must k-cover.
func runReplication(cfg RunConfig) (*Output, error) {
	reg := region.UnitSquareKm()
	n, k := 60, 2
	seeds := 10
	if cfg.Quick {
		n, seeds = 30, 4
	}
	out := &Output{
		Name:  "replication",
		Title: "seed-to-seed variability of the deployment objective",
		CSV:   map[string]string{},
	}
	var rStars, rounds []float64
	covered := 0
	csv := [][]string{{"seed", "r_star", "rounds", "covered"}}
	for s := 0; s < seeds; s++ {
		seed := cfg.Seed + int64(1000+s)
		res, err := deploy(reg, n, k, 1e-3, 300, seed)
		if err != nil {
			return nil, err
		}
		rep := coverage.Verify(res.Positions, res.Radii, reg, 60)
		if rep.KCovered(k) {
			covered++
		}
		rStars = append(rStars, res.MaxRadius())
		rounds = append(rounds, float64(res.Rounds))
		csv = append(csv, []string{fmt.Sprint(seed), f64(res.MaxRadius()),
			fmt.Sprint(res.Rounds), fmt.Sprint(rep.KCovered(k))})
	}
	rSum := stats.Summarize(rStars)
	roundSum := stats.Summarize(rounds)
	out.Checks = append(out.Checks,
		check("every replicate k-covers", covered == seeds, "%d/%d", covered, seeds),
		check("R* spread is small", rSum.CoefficientVar < 0.10,
			"cv = %.1f%% over %d seeds", 100*rSum.CoefficientVar, seeds),
	)
	rows := [][]string{
		{"R*", rSum.String()},
		{"rounds", roundSum.String()},
	}
	out.Text = asciiplot.Table([]string{"metric", "summary"}, rows)
	out.CSV["replication.csv"] = asciiplot.CSV(csv)
	return out, nil
}
