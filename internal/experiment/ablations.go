package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"laacad/internal/asciiplot"
	"laacad/internal/boundary"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/voronoi"
)

func init() {
	register("ablation-alpha", runAblationAlpha)
	register("ablation-localized", runAblationLocalized)
	register("ablation-arcsamples", runAblationArcSamples)
	register("ablation-grid", runAblationGrid)
	register("ablation-kvor", runAblationKVor)
}

// runAblationAlpha sweeps the step size α: the paper proves convergence for
// any α ∈ (0, 1] and notes smaller α converges more slowly but moves more
// smoothly. We measure rounds-to-converge and the largest single-round move.
func runAblationAlpha(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n, k := 60, 2
	alphas := []float64{0.25, 0.5, 0.75, 1.0}
	maxRounds := 400
	if cfg.Quick {
		n, alphas, maxRounds = 25, []float64{0.5, 1.0}, 200
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 900))
	start := uniform(reg, n, rng)

	out := &Output{
		Name:  "ablation-alpha",
		Title: "step size α: convergence speed vs motion smoothness",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"alpha", "rounds", "converged", "max_single_move", "max_r"}}
	type point struct {
		alpha   float64
		rounds  int
		maxMove float64
	}
	var pts []point
	results := make([]*core.Result, len(alphas))
	if err := forTrials(len(alphas), cfg, func(t int) error {
		c := core.DefaultConfig(k)
		c.Alpha = alphas[t]
		c.Epsilon = 1e-3
		c.MaxRounds = maxRounds
		c.Seed = cfg.Seed
		eng, err := core.New(reg, start, c)
		if err != nil {
			return err
		}
		results[t], err = eng.Run(cfg.Context())
		return err
	}); err != nil {
		return nil, err
	}
	for ai, a := range alphas {
		res := results[ai]
		var worstMove float64
		for _, tr := range res.Trace {
			if tr.MaxMove > worstMove {
				worstMove = tr.MaxMove
			}
		}
		pts = append(pts, point{a, res.Rounds, worstMove})
		rows = append(rows, []string{f64(a), fmt.Sprint(res.Rounds),
			fmt.Sprint(res.Converged), f64(worstMove), f64(res.MaxRadius())})
		csv = append(csv, []string{f64(a), fmt.Sprint(res.Rounds),
			fmt.Sprint(res.Converged), f64(worstMove), f64(res.MaxRadius())})
		rep := coverage.VerifyWorkers(res.Positions, res.Radii, reg, 60, cfg.Workers)
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("α=%.2f converges and covers", a),
				res.Converged && rep.KCovered(k),
				"rounds=%d covered=%v", res.Rounds, rep.KCovered(k)))
	}
	// Smoothness: the largest single-round move grows with α.
	out.Checks = append(out.Checks,
		check("larger α moves less smoothly",
			pts[len(pts)-1].maxMove > pts[0].maxMove,
			"max move %.4f (α=%.2f) vs %.4f (α=%.2f)",
			pts[len(pts)-1].maxMove, pts[len(pts)-1].alpha, pts[0].maxMove, pts[0].alpha))
	out.Text = asciiplot.Table([]string{"alpha", "rounds", "converged", "max move", "R*"}, rows)
	out.CSV["ablation-alpha.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runAblationLocalized compares the localized (Algorithm 2) and centralized
// engines: identical dominating regions for interior nodes, message cost of
// the expanding-ring search, and end-to-end deployment agreement.
func runAblationLocalized(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n, k := 50, 2
	gamma := 0.22
	if cfg.Quick {
		n = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 910))
	start := uniform(reg, n, rng)

	mk := func(mode core.Mode) (*core.Engine, error) {
		c := core.DefaultConfig(k)
		c.Mode = mode
		c.Gamma = gamma
		c.ArcSamples = 128
		c.Epsilon = 2e-3
		c.MaxRounds = 200
		c.Seed = cfg.Seed
		return core.New(reg, start, c)
	}
	cEng, err := mk(core.Centralized)
	if err != nil {
		return nil, err
	}
	lEng, err := mk(core.Localized)
	if err != nil {
		return nil, err
	}

	// Single-round region agreement for interior nodes.
	cRes, err := cEng.Run(cfg.Context())
	if err != nil {
		return nil, err
	}
	lRes, err := lEng.Run(cfg.Context())
	if err != nil {
		return nil, err
	}
	cRep := coverage.VerifyWorkers(cRes.Positions, cRes.Radii, reg, 60, cfg.Workers)
	lRep := coverage.VerifyWorkers(lRes.Positions, lRes.Radii, reg, 60, cfg.Workers)
	_ = boundary.AngularGap{} // detector exercised inside the localized engine

	out := &Output{
		Name:  "ablation-localized",
		Title: "localized (Algorithm 2) vs centralized engine",
		CSV:   map[string]string{},
	}
	rows := [][]string{
		{"centralized", fmt.Sprint(cRes.Rounds), f64(cRes.MaxRadius()), "0", fmt.Sprint(cRep.KCovered(k))},
		{"localized", fmt.Sprint(lRes.Rounds), f64(lRes.MaxRadius()),
			fmt.Sprint(lRes.Messages), fmt.Sprint(lRep.KCovered(k))},
	}
	out.Checks = append(out.Checks,
		check("both engines k-cover", cRep.KCovered(k) && lRep.KCovered(k),
			"centralized=%v localized=%v", cRep.KCovered(k), lRep.KCovered(k)),
		check("localized R* within 25% of centralized",
			lRes.MaxRadius() < 1.25*cRes.MaxRadius() && lRes.MaxRadius() > 0.75*cRes.MaxRadius(),
			"localized %s vs centralized %s", f64(lRes.MaxRadius()), f64(cRes.MaxRadius())),
		check("localized pays messages", lRes.Messages > 0, "%d messages", lRes.Messages),
	)
	out.Text = asciiplot.Table([]string{"engine", "rounds", "R*", "messages", "covered"}, rows)
	out.CSV["ablation-localized.csv"] = asciiplot.CSV(append(
		[][]string{{"engine", "rounds", "r_star", "messages", "covered"}}, rows...))
	return out, nil
}

// runAblationArcSamples probes the Algorithm 2 domination check resolution:
// too few circle samples can stop the ring early and mis-shape regions; we
// measure the fraction of nodes whose region area deviates from the
// centralized reference at each resolution.
func runAblationArcSamples(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n, k := 40, 2
	gamma := 0.25
	samples := []int{16, 32, 64, 128}
	if cfg.Quick {
		n, samples = 25, []int{16, 64}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 920))
	start := uniform(reg, n, rng)

	// Centralized reference regions.
	refCfg := core.DefaultConfig(k)
	refCfg.Seed = cfg.Seed
	refEng, err := core.New(reg, start, refCfg)
	if err != nil {
		return nil, err
	}
	ref := refEng.DebugRegions()

	isBoundary := (boundary.Hull{Tol: gamma * 0.8}).Boundary(refEng.Network())

	out := &Output{
		Name:  "ablation-arcsamples",
		Title: "Algorithm 2 circle-sampling resolution vs region exactness",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"arc_samples", "interior_nodes", "mismatched", "messages"}}
	var mismatches []int
	for _, s := range samples {
		c := core.DefaultConfig(k)
		c.Mode = core.Localized
		c.Gamma = gamma
		c.ArcSamples = s
		c.Seed = cfg.Seed
		lEng, err := core.New(reg, start, c)
		if err != nil {
			return nil, err
		}
		regions := lEng.DebugRegions()
		interior, bad := 0, 0
		for i := range regions {
			if isBoundary[i] {
				continue
			}
			interior++
			ra := voronoi.RegionArea(ref[i])
			la := voronoi.RegionArea(regions[i])
			if math.Abs(ra-la) > 1e-6*(1+ra) {
				bad++
			}
		}
		msgs := lEng.Network().Stats().Messages
		mismatches = append(mismatches, bad)
		rows = append(rows, []string{fmt.Sprint(s), fmt.Sprint(interior),
			fmt.Sprint(bad), fmt.Sprint(msgs)})
		csv = append(csv, []string{fmt.Sprint(s), fmt.Sprint(interior),
			fmt.Sprint(bad), fmt.Sprint(msgs)})
	}
	last := mismatches[len(mismatches)-1]
	out.Checks = append(out.Checks,
		check("high resolution matches centralized", last == 0, "%d mismatched at max resolution", last),
		check("resolution does not hurt", last <= mismatches[0],
			"mismatches %v across resolutions %v", mismatches, samples))
	out.Text = asciiplot.Table([]string{"arc samples", "interior nodes", "mismatched", "messages"}, rows)
	out.CSV["ablation-arcsamples.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runAblationGrid probes the coverage-verification grid: the k-coverage
// verdict must be stable across sufficiently fine resolutions.
func runAblationGrid(cfg RunConfig) (*Output, error) {
	reg, _, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n, k := 40, 2
	resolutions := []int{20, 40, 80, 160}
	if cfg.Quick {
		n, resolutions = 25, []int{20, 60}
	}
	res, err := deploy(cfg, "square", n, k, 1e-3, 250, cfg.Seed+930)
	if err != nil {
		return nil, err
	}
	out := &Output{
		Name:  "ablation-grid",
		Title: "coverage-grid resolution vs verification verdict",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"resolution", "samples", "min_depth", "mean_depth", "covered"}}
	verdicts := map[int]bool{}
	for _, r := range resolutions {
		rep := coverage.VerifyWorkers(res.Positions, res.Radii, reg, r, cfg.Workers)
		verdicts[r] = rep.KCovered(k)
		rows = append(rows, []string{fmt.Sprint(r), fmt.Sprint(rep.Samples),
			fmt.Sprint(rep.MinDepth), f64(rep.MeanDepth), fmt.Sprint(rep.KCovered(k))})
		csv = append(csv, []string{fmt.Sprint(r), fmt.Sprint(rep.Samples),
			fmt.Sprint(rep.MinDepth), f64(rep.MeanDepth), fmt.Sprint(rep.KCovered(k))})
	}
	stable := true
	for _, r := range resolutions[1:] {
		if verdicts[r] != verdicts[resolutions[0]] {
			stable = false
		}
	}
	out.Checks = append(out.Checks,
		check("verdict stable across resolutions", stable, "%v", verdicts),
		check("deployment verified covered", verdicts[resolutions[len(resolutions)-1]],
			"finest grid verdict"))
	out.Text = asciiplot.Table([]string{"resolution", "samples", "min depth", "mean depth", "covered"}, rows)
	out.CSV["ablation-grid.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runAblationKVor cross-validates and times the two k-order Voronoi
// algorithms: the direct depth-bounded dominating-region computation versus
// the full diagram by iterative refinement.
func runAblationKVor(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n := 25
	ks := []int{1, 2, 3, 4}
	if cfg.Quick {
		n, ks = 12, []int{1, 2, 3}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 940))
	pts := uniform(reg, n, rng)
	sites := make([]voronoi.Site, n)
	for i, p := range pts {
		sites[i] = voronoi.Site{ID: i, Pos: p}
	}
	out := &Output{
		Name:  "ablation-kvor",
		Title: "direct dominating regions vs iterative-refinement diagram",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"k", "direct_ms", "diagram_ms", "max_area_diff"}}
	for _, k := range ks {
		t0 := time.Now()
		direct := make([]float64, n)
		for i, s := range sites {
			direct[i] = voronoi.RegionArea(voronoi.DominatingRegion(s, sites, k, reg.Pieces()))
		}
		directMS := float64(time.Since(t0).Microseconds()) / 1000

		t1 := time.Now()
		d, err := voronoi.KOrderDiagram(sites, k, reg)
		if err != nil {
			return nil, err
		}
		diagMS := float64(time.Since(t1).Microseconds()) / 1000

		var worst float64
		for i := range sites {
			a := voronoi.RegionArea(d.DominatingRegionOf(i))
			if diff := math.Abs(a - direct[i]); diff > worst {
				worst = diff
			}
		}
		rows = append(rows, []string{fmt.Sprint(k), f64(directMS), f64(diagMS), f64(worst)})
		csv = append(csv, []string{fmt.Sprint(k), f64(directMS), f64(diagMS), f64(worst)})
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d algorithms agree", k), worst < 1e-6,
				"max per-node area difference %g", worst))
	}
	out.Text = asciiplot.Table([]string{"k", "direct (ms)", "diagram (ms)", "max area diff"}, rows)
	out.CSV["ablation-kvor.csv"] = asciiplot.CSV(csv)
	return out, nil
}
