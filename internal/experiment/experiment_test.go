package experiment

import (
	"strings"
	"testing"
)

func quickCfg() RunConfig { return RunConfig{Quick: true, Seed: 1, Workers: -1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-alpha", "ablation-arcsamples", "ablation-async", "ablation-grid",
		"ablation-kvor", "ablation-localized",
		"extra-connectivity", "extra-maxcov",
		"fig1", "fig2", "fig5", "fig6", "fig7", "fig8",
		"replication",
		"table1", "table2",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment should error")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get should miss")
	}
	if _, ok := Get("fig1"); !ok {
		t.Error("Get should find fig1")
	}
}

// slowRunners are the runners dominated by full deployments; they are
// skipped under -short so the package has a fast mode (the remaining
// runners still cover every code path at small sizes).
var slowRunners = map[string]bool{
	"fig5": true, "fig7": true, "fig8": true,
	"replication": true, "table1": true, "table2": true,
}

// Each runner executes in quick mode, produces text, CSV and passing checks.
func TestRunnersQuick(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && slowRunners[name] {
				t.Skipf("%s runs full deployments; skipped in -short mode", name)
			}
			out, err := Run(name, quickCfg())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.Name != name {
				t.Errorf("output name %q", out.Name)
			}
			if strings.TrimSpace(out.Text) == "" {
				t.Error("empty text rendering")
			}
			if len(out.CSV) == 0 {
				t.Error("no CSV emitted")
			}
			for f, content := range out.CSV {
				if !strings.Contains(content, ",") {
					t.Errorf("CSV %s looks empty: %q", f, content)
				}
			}
			if len(out.Checks) == 0 {
				t.Error("no shape checks evaluated")
			}
			if failed := out.Failed(); len(failed) > 0 {
				t.Errorf("failed checks:\n  %s", strings.Join(failed, "\n  "))
			}
			if !strings.Contains(out.Summary(), "PASS") {
				t.Error("summary missing check lines")
			}
		})
	}
}

func TestOutputFailedAndSummary(t *testing.T) {
	o := &Output{
		Name:  "x",
		Title: "t",
		Text:  "body\n",
		Checks: []Check{
			{Name: "good", OK: true, Detail: "d1"},
			{Name: "bad", OK: false, Detail: "d2"},
		},
	}
	failed := o.Failed()
	if len(failed) != 1 || !strings.Contains(failed[0], "bad") {
		t.Errorf("Failed() = %v", failed)
	}
	s := o.Summary()
	if !strings.Contains(s, "[PASS] good") || !strings.Contains(s, "[FAIL] bad") {
		t.Errorf("summary:\n%s", s)
	}
}

func TestRunAllQuickSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll repeats every runner; TestRunnersQuick already covers them")
	}
	// RunAll over the full registry is exercised by cmd/experiments; here we
	// just validate the error path and the happy path on one runner by
	// temporarily consulting the registry.
	outs, err := RunAll(RunConfig{Quick: true, Seed: 2})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(outs) != len(Names()) {
		t.Errorf("got %d outputs, want %d", len(outs), len(Names()))
	}
}
