// Package experiment regenerates every table and figure of the paper's
// evaluation (Sec. V) plus the ablations listed in DESIGN.md. Each runner is
// deterministic given a seed, produces a human-readable text rendering, CSV
// data series, and a list of shape checks — assertions about the qualitative
// result the paper reports (who wins, what is monotone, where ratios land)
// rather than absolute numbers.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"laacad/internal/parallel"
	"laacad/internal/region"
	"laacad/internal/scenario"
)

// RunConfig parameterizes a runner invocation.
type RunConfig struct {
	// Quick shrinks workloads for CI/tests; the full sizes match the paper.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Workers is the number of goroutines running independent trials
	// (deployments within a sweep) concurrently, with the same convention
	// as core Config.Workers: 0 or 1 = serial, negative = runtime.NumCPU.
	// Every trial is seeded independently, so outputs are byte-identical
	// for any worker count.
	Workers int
	// Ctx, when non-nil, cancels in-flight deployments and skips pending
	// trials — SIGINT on cmd/experiments aborts a sweep mid-deployment
	// instead of at the next experiment boundary.
	Ctx context.Context
}

// Context returns the run's cancellation context (Background if unset).
func (c RunConfig) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// forTrials fans fn(i) for i in [0, n) across the configured trial workers
// and returns the first error by trial index. fn must confine its writes to
// the i-th slot of its outputs so results are deterministic; callers render
// tables and evaluate shape checks serially afterwards. Trials not yet
// started when cfg.Ctx is cancelled fail fast with the context error.
func forTrials(n int, cfg RunConfig, fn func(i int) error) error {
	ctx := cfg.Context()
	errs := make([]error, n)
	parallel.For(n, parallel.Workers(cfg.Workers), func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Check is one shape assertion evaluated by a runner.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Output is the product of one experiment runner.
type Output struct {
	// Name is the experiment ID (fig1 … table2, ablation-…).
	Name string
	// Title describes the paper artifact being regenerated.
	Title string
	// Text is the human-readable rendering (tables, ASCII plots).
	Text string
	// CSV maps series names to CSV documents for external plotting.
	CSV map[string]string
	// Checks are the shape assertions with their outcomes.
	Checks []Check
}

// Failed returns the names of failed checks.
func (o *Output) Failed() []string {
	var out []string
	for _, c := range o.Checks {
		if !c.OK {
			out = append(out, c.Name+": "+c.Detail)
		}
	}
	return out
}

// Summary renders the text plus a PASS/FAIL line per check.
func (o *Output) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n\n", o.Name, o.Title)
	b.WriteString(o.Text)
	if len(o.Checks) > 0 {
		b.WriteString("\nShape checks:\n")
		for _, c := range o.Checks {
			status := "PASS"
			if !c.OK {
				status = "FAIL"
			}
			fmt.Fprintf(&b, "  [%s] %-38s %s\n", status, c.Name, c.Detail)
		}
	}
	return b.String()
}

// Runner regenerates one paper artifact.
type Runner func(cfg RunConfig) (*Output, error)

// registry maps experiment IDs to runners; populated by init functions in
// the sibling files.
var registry = map[string]Runner{}

func register(name string, r Runner) {
	if _, dup := registry[name]; dup {
		panic("experiment: duplicate runner " + name)
	}
	registry[name] = r
}

// Names returns the registered experiment IDs in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the runner registered under name.
func Get(name string) (Runner, bool) {
	r, ok := registry[name]
	return r, ok
}

// Run executes the named experiment.
func Run(name string, cfg RunConfig) (*Output, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown experiment %q (have %v)", name, Names())
	}
	return r(cfg)
}

// RunAll executes every registered experiment in name order, stopping at
// the first cancellation of cfg.Ctx.
func RunAll(cfg RunConfig) ([]*Output, error) {
	var outs []*Output
	for _, n := range Names() {
		if err := cfg.Context().Err(); err != nil {
			return outs, err
		}
		o, err := Run(n, cfg)
		if err != nil {
			return outs, fmt.Errorf("experiment %s: %w", n, err)
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// resolve returns the named region and placement from the scenario
// registry; the harness resolves all geometry by name, the same way the
// CLIs do, instead of hand-wiring constructors.
func resolve(regionName, placementName string) (*region.Region, scenario.PlacementFunc, error) {
	reg, err := scenario.LookupRegion(regionName)
	if err != nil {
		return nil, nil, err
	}
	place, err := scenario.LookupPlacement(placementName)
	if err != nil {
		return nil, nil, err
	}
	return reg, place, nil
}

// check is a small helper to build Check values.
func check(name string, ok bool, format string, args ...any) Check {
	return Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}

// f64 formats a float compactly for tables.
func f64(v float64) string { return fmt.Sprintf("%.4g", v) }
