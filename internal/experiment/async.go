package experiment

import (
	"fmt"
	"math/rand"

	"laacad/internal/asciiplot"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/sim"
)

func init() {
	register("ablation-async", runAblationAsync)
}

// runAblationAsync compares the three execution models over the same
// instance: synchronous rounds (the idealization the proofs analyze),
// sequential rounds (interleaved updates), and the event-driven
// asynchronous simulator with jittered τ-clocks and finite motion speed
// (the setting the paper describes). All three must reach k-coverage with
// comparable R*.
func runAblationAsync(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n, k := 50, 2
	if cfg.Quick {
		n = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 950))
	start := uniform(reg, n, rng)

	out := &Output{
		Name:  "ablation-async",
		Title: "execution model: synchronous vs sequential rounds vs event-driven async",
		CSV:   map[string]string{},
	}

	type row struct {
		name    string
		rStar   float64
		covered bool
		cost    string
	}
	var rows []row

	for _, order := range []core.UpdateOrder{core.Synchronous, core.Sequential} {
		c := core.DefaultConfig(k)
		c.Order = order
		c.Epsilon = 2e-3
		c.MaxRounds = 300
		c.Seed = cfg.Seed
		eng, err := core.New(reg, start, c)
		if err != nil {
			return nil, err
		}
		res, err := eng.Run(cfg.Context())
		if err != nil {
			return nil, err
		}
		rep := coverage.VerifyWorkers(res.Positions, res.Radii, reg, 60, cfg.Workers)
		rows = append(rows, row{
			name:    order.String(),
			rStar:   res.MaxRadius(),
			covered: rep.KCovered(k),
			cost:    fmt.Sprintf("%d rounds", res.Rounds),
		})
	}

	ac := sim.DefaultConfig(k)
	ac.Epsilon = 2e-3
	ac.Speed = 0.02 // 20 m/s simulated crawl over the 1 km² area
	ac.MaxTime = 4000
	ac.Seed = cfg.Seed
	ares, err := sim.Deploy(reg, start, ac)
	if err != nil {
		return nil, err
	}
	aRep := coverage.VerifyWorkers(ares.Positions, ares.Radii, reg, 60, cfg.Workers)
	rows = append(rows, row{
		name:    "async (τ=1s, 20 m/s)",
		rStar:   ares.MaxRadius(),
		covered: aRep.KCovered(k),
		cost:    fmt.Sprintf("%.0f s, %d activations, %.2f km driven", ares.Time, ares.Activations, ares.TotalTravel),
	})

	tbl := [][]string{}
	csv := [][]string{{"model", "r_star", "covered", "cost"}}
	for _, r := range rows {
		tbl = append(tbl, []string{r.name, f64(r.rStar), fmt.Sprint(r.covered), r.cost})
		csv = append(csv, []string{r.name, f64(r.rStar), fmt.Sprint(r.covered), r.cost})
	}
	base := rows[0].rStar
	for _, r := range rows {
		out.Checks = append(out.Checks,
			check(r.name+" covers", r.covered, "R*=%s", f64(r.rStar)),
			check(r.name+" R* within 25% of synchronous",
				r.rStar > 0.75*base && r.rStar < 1.25*base,
				"%s vs %s", f64(r.rStar), f64(base)))
	}
	out.Checks = append(out.Checks,
		check("async converged before deadline", ares.Converged,
			"t=%.0f of %.0f s", ares.Time, ac.MaxTime))

	out.Text = asciiplot.Table([]string{"model", "R*", "covered", "cost"}, tbl)
	out.CSV["ablation-async.csv"] = asciiplot.CSV(csv)
	return out, nil
}
