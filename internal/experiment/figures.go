package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"laacad/internal/asciiplot"
	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

func init() {
	register("fig1", runFig1)
	register("fig2", runFig2)
	register("fig5", runFig5)
	register("fig6", runFig6)
}

// runFig1 regenerates Fig. 1: k-order Voronoi partitions (k = 1..4) of 30
// random nodes, verifying the structural invariants of the diagrams.
func runFig1(cfg RunConfig) (*Output, error) {
	reg, uniform, err := resolve("square", "uniform")
	if err != nil {
		return nil, err
	}
	n := 30
	ks := []int{1, 2, 3, 4}
	if cfg.Quick {
		n, ks = 15, []int{1, 2, 3}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	pts := uniform(reg, n, rng)
	sites := make([]voronoi.Site, n)
	for i, p := range pts {
		sites[i] = voronoi.Site{ID: i, Pos: p}
	}

	out := &Output{
		Name:  "fig1",
		Title: "k-order Voronoi partitions (k=1..4, 30 nodes)",
		CSV:   map[string]string{},
	}
	rows := [][]string{}
	csv := [][]string{{"k", "cells", "total_area", "max_cell_area", "min_cell_area"}}
	cellCounts := map[int]int{}
	for _, k := range ks {
		d, err := voronoi.KOrderDiagram(sites, k, reg)
		if err != nil {
			return nil, err
		}
		cellCounts[k] = len(d.Cells)
		maxA, minA := 0.0, math.Inf(1)
		for _, c := range d.Cells {
			a := c.Area()
			if a > maxA {
				maxA = a
			}
			if a < minA {
				minA = a
			}
		}
		total := d.TotalArea()
		rows = append(rows, []string{fmt.Sprint(k), fmt.Sprint(len(d.Cells)), f64(total), f64(maxA), f64(minA)})
		csv = append(csv, []string{fmt.Sprint(k), fmt.Sprint(len(d.Cells)), f64(total), f64(maxA), f64(minA)})
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d cells partition A", k),
				math.Abs(total-reg.Area()) < 1e-6,
				"total cell area %v vs |A|=%v", total, reg.Area()))
	}
	out.Checks = append(out.Checks,
		check("1-order has N cells", cellCounts[1] == n, "N̂₁=%d, N=%d", cellCounts[1], n),
		check("higher order has more cells", cellCounts[ks[1]] > cellCounts[1],
			"N̂₂=%d > N̂₁=%d", cellCounts[ks[1]], cellCounts[1]),
	)
	var b strings.Builder
	b.WriteString(asciiplot.Table([]string{"k", "cells", "total area", "max cell", "min cell"}, rows))
	b.WriteString("\nNode layout:\n")
	b.WriteString(asciiplot.Scatter(reg.BBox(), 56, 22, asciiplot.Layer{Points: pts, Mark: 'o'}))
	out.Text = b.String()
	out.CSV["fig1.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// runFig2 regenerates Fig. 2: the number of hops the expanding-ring search
// (Algorithm 2) needs to compute the central node's k-order dominating
// region on a regular triangular lattice, for k = 1..12.
func runFig2(cfg RunConfig) (*Output, error) {
	rows, cols := 25, 25
	maxK := 12
	if cfg.Quick {
		rows, cols, maxK = 15, 15, 6
	}
	pitch := 0.04
	gamma := 1.25 * pitch // transmission range slightly above lattice pitch
	pts := wsn.HexLattice(rows, cols, pitch)
	bb := geom.BBoxOf(pts)
	reg := region.Rect(bb.Min.X, bb.Min.Y, bb.Max.X, bb.Max.Y)
	center := wsn.CenterIndex(pts)

	out := &Output{
		Name:  "fig2",
		Title: "expanding-ring hops needed for the dominating region (hex lattice)",
		CSV:   map[string]string{},
	}
	tbl := [][]string{}
	csv := [][]string{{"k", "hops", "neighbors", "messages", "region_area"}}
	hops := make([]int, maxK+1)
	for k := 1; k <= maxK; k++ {
		net := wsn.New(pts, gamma)
		probe := core.ExpandingRing(net, reg, center, k, 128, wsn.RingGeometric, 0)
		hops[k] = probe.Hops
		area := voronoi.RegionArea(probe.Region)
		tbl = append(tbl, []string{fmt.Sprint(k), fmt.Sprint(probe.Hops),
			fmt.Sprint(probe.Neighbors), fmt.Sprint(probe.Messages), f64(area)})
		csv = append(csv, []string{fmt.Sprint(k), fmt.Sprint(probe.Hops),
			fmt.Sprint(probe.Neighbors), fmt.Sprint(probe.Messages), f64(area)})
	}
	nonDecreasing := true
	for k := 2; k <= maxK; k++ {
		if hops[k] < hops[k-1] {
			nonDecreasing = false
		}
	}
	out.Checks = append(out.Checks,
		check("k=1 needs 1 hop", hops[1] == 1, "hops=%d", hops[1]),
		check("k=2..4 need ≤2 hops", hops[2] <= 2 && hops[min(4, maxK)] <= 2,
			"hops(2)=%d hops(4)=%d", hops[2], hops[min(4, maxK)]),
		check("hop count non-decreasing in k", nonDecreasing, "hops=%v", hops[1:]),
	)
	if maxK >= 12 {
		out.Checks = append(out.Checks,
			check("k=5..12 need ≤3-4 hops", hops[5] >= 3 && hops[12] <= 4,
				"hops(5)=%d hops(12)=%d", hops[5], hops[12]))
	}
	out.Text = asciiplot.Table([]string{"k", "hops", "neighbors", "messages", "region area"}, tbl)
	out.CSV["fig2.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// fig5Cache shares the corner-deployment runs between fig5 and fig6 (they
// are the same experiment: one shows final layouts, the other the traces).
var fig5Cache = map[string]map[int]*core.Result{}

func cornerDeployments(cfg RunConfig) (map[int]*core.Result, *region.Region, []geom.Point, []int, error) {
	reg, corner, err := resolve("square", "corner")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	n := 100
	ks := []int{1, 2, 3, 4}
	maxRounds := 300
	if cfg.Quick {
		n, ks, maxRounds = 36, []int{1, 2}, 120
	}
	key := fmt.Sprintf("%v-%d", cfg.Quick, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 500))
	start := corner(reg, n, rng)
	if res, ok := fig5Cache[key]; ok {
		return res, reg, start, ks, nil
	}
	results := map[int]*core.Result{}
	for _, k := range ks {
		c := core.DefaultConfig(k)
		c.Epsilon = 1e-3
		c.MaxRounds = maxRounds
		c.Seed = cfg.Seed
		eng, err := core.New(reg, start, c)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		res, err := eng.Run(cfg.Context())
		if err != nil {
			return nil, nil, nil, nil, err
		}
		results[k] = res
	}
	fig5Cache[key] = results
	return results, reg, start, ks, nil
}

// runFig5 regenerates Fig. 5: the corner-pile initial deployment and the
// final k-coverage deployments for k = 1..4, checking coverage and the
// "even clustering in groups of size k" phenomenon.
func runFig5(cfg RunConfig) (*Output, error) {
	results, reg, start, ks, err := cornerDeployments(cfg)
	if err != nil {
		return nil, err
	}
	out := &Output{
		Name:  "fig5",
		Title: "corner start → k-coverage deployments (k=1..4)",
		CSV:   map[string]string{},
	}
	var b strings.Builder
	b.WriteString("Initial deployment (corner pile):\n")
	b.WriteString(asciiplot.Scatter(reg.BBox(), 48, 18, asciiplot.Layer{Points: start, Mark: '.'}))
	csv := [][]string{{"k", "rounds", "converged", "max_r", "min_r", "cluster_ratio"}}
	for _, k := range ks {
		res := results[k]
		rep := coverage.VerifyWorkers(res.Positions, res.Radii, reg, 80, cfg.Workers)
		ratio := clusterRatio(res.Positions, k)
		fmt.Fprintf(&b, "\nk=%d deployment (rounds=%d, R*=%s, cluster ratio=%.3f):\n",
			k, res.Rounds, f64(res.MaxRadius()), ratio)
		b.WriteString(asciiplot.Scatter(reg.BBox(), 48, 18, asciiplot.Layer{Points: res.Positions, Mark: 'o'}))
		csv = append(csv, []string{fmt.Sprint(k), fmt.Sprint(res.Rounds),
			fmt.Sprint(res.Converged), f64(res.MaxRadius()), f64(res.MinRadius()), f64(ratio)})
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d covered", k), rep.KCovered(k),
				"min depth %d (want ≥ %d)", rep.MinDepth, k))
		if k == 1 {
			out.Checks = append(out.Checks,
				check("k=1 spreads evenly", ratio > 0.6,
					"d_0/d_1 … nearest gaps comparable: %.3f", ratio))
		}
	}

	// The paper's "even clustering in groups of k" claim (Fig. 5(c)-(e)).
	// Under exact synchronous dynamics the corner start converges to
	// unclustered local optima of the same R* (see EXPERIMENTS.md), so we
	// assert the claim in its stability form: a deployment seeded with
	// k-groups is a stable fixed point — LAACAD keeps the groups together
	// and they tighten to co-location.
	stabRatio, stabR, err := pairStability(cfg)
	if err != nil {
		return nil, err
	}
	// Stability is cleanest at the paper's density (50 pairs in 1 km²);
	// quick mode's sparser instance keeps most but not all pairs together.
	stabBound := 0.1
	if cfg.Quick {
		stabBound = 0.45
	}
	out.Checks = append(out.Checks,
		check("k=2 groups are stable fixed points", stabRatio < stabBound,
			"seeded pairs converge to d₁/d₂ = %.4f (R*=%s)", stabRatio, f64(stabR)))

	out.Text = b.String()
	out.CSV["fig5.csv"] = asciiplot.CSV(csv)
	return out, nil
}

// pairStability seeds 2-node groups with small jitter, runs LAACAD for k=2,
// and returns the final cluster ratio and R*.
func pairStability(cfg RunConfig) (float64, float64, error) {
	reg, _, err := resolve("square", "uniform")
	if err != nil {
		return 0, 0, err
	}
	pairSites := 50
	if cfg.Quick {
		pairSites = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 600))
	var start []geom.Point
	for i := 0; i < pairSites; i++ {
		s := reg.RandomPoint(rng)
		start = append(start, s,
			geom.Pt(s.X+1e-5*(rng.Float64()-0.5), s.Y+1e-5*(rng.Float64()-0.5)))
	}
	c := core.DefaultConfig(2)
	c.Epsilon = 1e-4
	c.MaxRounds = 400
	c.Seed = cfg.Seed
	eng, err := core.New(reg, start, c)
	if err != nil {
		return 0, 0, err
	}
	res, err := eng.Run(cfg.Context())
	if err != nil {
		return 0, 0, err
	}
	return clusterRatio(res.Positions, 2), res.MaxRadius(), nil
}

// clusterRatio returns mean over nodes of (distance to (k−1)-th nearest) /
// (distance to k-th nearest), using 1-indexed nearest neighbors. For k = 1
// it degenerates to d₁/d₂ (spacing uniformity). Values ≪ 1 mean nodes sit in
// tight groups of k; the paper's "even clustering" signature.
func clusterRatio(pts []geom.Point, k int) float64 {
	if len(pts) <= k+1 {
		return math.NaN()
	}
	var sum float64
	d := make([]float64, 0, len(pts)-1)
	for i, p := range pts {
		d = d[:0]
		for j, q := range pts {
			if i != j {
				d = append(d, p.Dist(q))
			}
		}
		sort.Float64s(d)
		num, den := k-1, k
		if k == 1 {
			num, den = 0, 1
		}
		// d is 0-indexed: d[0] is the nearest neighbor = d_1.
		var a float64
		if num == 0 {
			a = d[0] / d[1]
		} else {
			a = d[num-1] / d[den-1]
		}
		sum += a
	}
	return sum / float64(len(pts))
}

// runFig6 regenerates Fig. 6: max/min circumradius versus round for the
// corner-start deployments.
func runFig6(cfg RunConfig) (*Output, error) {
	results, _, _, ks, err := cornerDeployments(cfg)
	if err != nil {
		return nil, err
	}
	out := &Output{
		Name:  "fig6",
		Title: "convergence of LAACAD: max/min circumradius vs round",
		CSV:   map[string]string{},
	}
	var b strings.Builder
	marks := []rune{'1', '2', '3', '4'}
	var series []asciiplot.Series
	csv := [][]string{{"k", "round", "max_circumradius", "min_circumradius", "max_rhat"}}
	for idx, k := range ks {
		res := results[k]
		maxS := make([]float64, len(res.Trace))
		for i, tr := range res.Trace {
			maxS[i] = tr.MaxCircumradius
			csv = append(csv, []string{
				fmt.Sprint(k), fmt.Sprint(tr.Round),
				f64(tr.MaxCircumradius), f64(tr.MinCircumradius), f64(tr.MaxRhat),
			})
		}
		series = append(series, asciiplot.Series{
			Name: fmt.Sprintf("max circumradius k=%d", k),
			Ys:   maxS, Mark: marks[idx%len(marks)],
		})

		first, last := res.Trace[0], res.Trace[len(res.Trace)-1]
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d max radius shrinks", k),
				last.MaxCircumradius < 0.6*first.MaxCircumradius,
				"%s → %s", f64(first.MaxCircumradius), f64(last.MaxCircumradius)),
			check(fmt.Sprintf("k=%d min rises toward max", k),
				last.MinCircumradius > first.MinCircumradius &&
					last.MinCircumradius > 0.5*last.MaxCircumradius,
				"min %s→%s vs max %s", f64(first.MinCircumradius),
				f64(last.MinCircumradius), f64(last.MaxCircumradius)),
		)
		// R̂ must never increase beyond numerical slack (Prop. 4 byproduct
		// holds exactly for α=1; for α=0.5 it is near-monotone — allow 2%).
		worstGrowth := 0.0
		for i := 1; i < len(res.Trace); i++ {
			if g := res.Trace[i].MaxRhat / res.Trace[i-1].MaxRhat; g > worstGrowth {
				worstGrowth = g
			}
		}
		out.Checks = append(out.Checks,
			check(fmt.Sprintf("k=%d R̂ near-monotone", k), worstGrowth < 1.05,
				"worst round-over-round growth ×%.4f", worstGrowth))
	}
	// Larger k needs larger sensing ranges throughout.
	if len(ks) >= 2 {
		a := results[ks[0]].Trace
		z := results[ks[len(ks)-1]].Trace
		out.Checks = append(out.Checks,
			check("larger k → larger final radius",
				z[len(z)-1].MaxCircumradius > a[len(a)-1].MaxCircumradius,
				"k=%d final %s vs k=%d final %s",
				ks[len(ks)-1], f64(z[len(z)-1].MaxCircumradius),
				ks[0], f64(a[len(a)-1].MaxCircumradius)))
	}
	b.WriteString(asciiplot.LineChart(72, 18, series...))
	out.Text = b.String()
	out.CSV["fig6.csv"] = asciiplot.CSV(csv)
	return out, nil
}
