package boundary

import (
	"testing"

	"laacad/internal/geom"
	"laacad/internal/wsn"
)

func TestAngularGapOnHexLattice(t *testing.T) {
	pts := wsn.HexLattice(7, 7, 1)
	net := wsn.New(pts, 1.1)
	got := AngularGap{}.Boundary(net)

	// Interior nodes of a hex lattice have 6 neighbors at 60° spacing: never
	// boundary. Extremal-row/column nodes must be boundary.
	center := wsn.CenterIndex(pts)
	if got[center] {
		t.Error("central lattice node misclassified as boundary")
	}
	if !got[0] {
		t.Error("corner node not classified as boundary")
	}
	// Compare against the hull oracle: every hull-boundary node with the
	// default tolerance must also be flagged by the angular gap detector.
	oracle := Hull{}.Boundary(net)
	for i := range got {
		if oracle[i] && !got[i] {
			// Hull tolerance γ/2 can flag second-ring nodes; only strict
			// hull vertices are a hard requirement. Check distance 0 nodes.
			hull := geom.ConvexHull(net.Positions())
			onHull := false
			for _, v := range hull {
				if v.Eq(net.Position(i)) {
					onHull = true
					break
				}
			}
			if onHull {
				t.Errorf("node %d on convex hull but AngularGap says interior", i)
			}
		}
	}
}

func TestAngularGapFewNeighbors(t *testing.T) {
	// Isolated and degree-1/2 nodes are always boundary.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(50, 50)}
	net := wsn.New(pts, 1.5)
	got := AngularGap{}.Boundary(net)
	for i, b := range got {
		if !b {
			t.Errorf("node %d with <3 neighbors should be boundary", i)
		}
	}
}

func TestAngularGapCoincidentNeighbors(t *testing.T) {
	// Neighbors stacked on the node contribute no bearing; the node should
	// fall back to boundary rather than crash.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(0, 0)}
	net := wsn.New(pts, 1)
	got := AngularGap{}.Boundary(net)
	if !got[0] {
		t.Error("node with only coincident neighbors should be boundary")
	}
}

func TestAngularGapThreshold(t *testing.T) {
	// A node with 4 neighbors at 90° spacing: max gap π/2.
	pts := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(-1, 0), geom.Pt(0, -1),
	}
	net := wsn.New(pts, 1.5)
	if (AngularGap{Threshold: 2.0}).Boundary(net)[0] {
		t.Error("π/2 gaps with threshold 2.0: should be interior")
	}
	if !(AngularGap{Threshold: 1.0}).Boundary(net)[0] {
		t.Error("π/2 gaps with threshold 1.0: should be boundary")
	}
}

// The scratch variant must agree with the plain per-node evaluation on every
// node, including the degenerate low-degree and coincident cases.
func TestBoundaryNodeScratchMatchesPlain(t *testing.T) {
	pts := wsn.HexLattice(9, 9, 1)
	pts = append(pts, geom.Pt(0, 0), geom.Pt(50, 50)) // coincident + isolated
	net := wsn.New(pts, 1.1)
	d := AngularGap{}
	var s Scratch
	for i := 0; i < net.Len(); i++ {
		if got, want := d.BoundaryNodeScratch(net, i, &s), d.BoundaryNode(net, i); got != want {
			t.Errorf("node %d: scratch says %v, plain says %v", i, got, want)
		}
	}
}

// The boundary path is allocation-free through a warmed Scratch — the
// contract the engine's per-round flag repairs rely on.
func TestBoundaryNodeScratchZeroAllocs(t *testing.T) {
	pts := wsn.HexLattice(10, 10, 1)
	net := wsn.New(pts, 1.1)
	net.Rebuild()
	d := AngularGap{}
	center := wsn.CenterIndex(pts)
	var s Scratch
	d.BoundaryNodeScratch(net, center, &s) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		if d.BoundaryNodeScratch(net, center, &s) {
			t.Fatal("lattice center misclassified as boundary")
		}
		if !d.BoundaryNodeScratch(net, 0, &s) {
			t.Fatal("lattice corner misclassified as interior")
		}
	})
	if allocs != 0 {
		t.Errorf("BoundaryNodeScratch allocates %v per run, want 0", allocs)
	}
}

func TestHullDetector(t *testing.T) {
	pts := wsn.SquareLattice(5, 5, 1)
	net := wsn.New(pts, 1.5)
	got := Hull{Tol: 0.1}.Boundary(net)
	// Exactly the outer ring (16 nodes of 25) is within 0.1 of the hull.
	count := 0
	for _, b := range got {
		if b {
			count++
		}
	}
	if count != 16 {
		t.Errorf("boundary count = %d, want 16", count)
	}
	// Center node interior.
	if got[12] {
		t.Error("center of 5x5 lattice misclassified")
	}
}

func TestHullDegenerate(t *testing.T) {
	// Two collinear nodes: hull has < 3 vertices, everyone is boundary.
	net := wsn.New([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 2)
	got := Hull{}.Boundary(net)
	if !got[0] || !got[1] {
		t.Error("degenerate hull: all nodes should be boundary")
	}
}
