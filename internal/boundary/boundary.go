// Package boundary provides network-boundary detection for LAACAD.
//
// The paper delegates boundary detection to the UNFOLD service [29]; the
// deployment algorithm consumes only a single bit per node ("am I on the
// boundary of the network's coverage"). We provide two detectors with that
// contract:
//
//   - AngularGap: the standard localized heuristic — a node is a boundary
//     node if the directions to its one-hop neighbors leave an angular gap
//     larger than a threshold. It uses only local ranging/bearing
//     information, matching the localized spirit of the paper.
//
//   - Hull: a centralized geometric oracle — a node is a boundary node if it
//     lies within a tolerance of the convex hull of all node positions. It
//     exists to validate AngularGap in tests and for centralized runs.
package boundary

import (
	"math"
	"slices"

	"laacad/internal/geom"
	"laacad/internal/wsn"
)

// Detector reports which nodes currently lie on the network boundary.
type Detector interface {
	// Boundary returns a boolean per node: true if the node is on the
	// network's coverage boundary.
	Boundary(net *wsn.Network) []bool
}

// PerNode is the optional refinement of Detector for detectors whose verdict
// for node i depends only on positions within the transmission range γ of
// node i. Implementing it is a locality CONTRACT, not just an API: consumers
// (the round engine's incremental boundary-flag cache) rely on "one-hop ball
// unchanged ⇒ flag unchanged" to keep cached flags for nodes whose γ-ball is
// provably untouched and re-evaluate only the invalidated rest. Global
// detectors (Hull) must not implement it; they are re-evaluated wholesale
// every round instead.
type PerNode interface {
	Detector
	// BoundaryNode reports whether node i is a boundary node. It must be
	// safe for concurrent use between network mutations and must read only
	// positions within γ of node i.
	BoundaryNode(net *wsn.Network, i int) bool
}

// Scratch holds the reusable buffers of one boundary-detection consumer:
// the neighbor-ID and bearing slices a per-node evaluation needs. Following
// the voronoi.Scratch pattern, a zero Scratch is ready to use, buffers grow
// to the working-set size on first use, and subsequent evaluations through
// the same Scratch are allocation-free. A Scratch must not be shared between
// goroutines.
type Scratch struct {
	nbrs   []int
	angles []float64
}

// PerNodeScratch is the optional refinement of PerNode for detectors that
// can evaluate a single node through caller-owned scratch buffers without
// heap allocation — the variant hot loops (the engine's incremental
// boundary-flag cache) use.
type PerNodeScratch interface {
	PerNode
	// BoundaryNodeScratch is BoundaryNode using s for all temporary storage.
	BoundaryNodeScratch(net *wsn.Network, i int, s *Scratch) bool
}

// AngularGap is a localized boundary detector. A node with fewer than three
// one-hop neighbors is always a boundary node; otherwise the node sorts the
// bearings of its neighbors and reports boundary if the largest gap between
// consecutive bearings exceeds Threshold radians.
type AngularGap struct {
	// Threshold is the angular-gap limit in radians. Zero means the default
	// of 2π/3, which classifies hexagonal-lattice interiors as interior.
	Threshold float64
}

// Boundary implements Detector. One Scratch serves the whole scan, so the
// only allocation is the result slice itself.
func (d AngularGap) Boundary(net *wsn.Network) []bool {
	out := make([]bool, net.Len())
	var s Scratch
	for i := 0; i < net.Len(); i++ {
		out[i] = d.BoundaryNodeScratch(net, i, &s)
	}
	return out
}

// BoundaryNode implements PerNode: the angular-gap test reads only the
// one-hop neighbors' positions (all within γ of node i), so it satisfies the
// locality contract.
func (d AngularGap) BoundaryNode(net *wsn.Network, i int) bool {
	var s Scratch
	return d.BoundaryNodeScratch(net, i, &s)
}

// BoundaryNodeScratch implements PerNodeScratch: BoundaryNode with all
// temporaries in s, allocation-free once s has grown to the neighborhood
// size.
func (d AngularGap) BoundaryNodeScratch(net *wsn.Network, i int, s *Scratch) bool {
	thr := d.Threshold
	if thr == 0 {
		thr = 2 * math.Pi / 3
	}
	return d.isBoundary(net, i, thr, s)
}

func (d AngularGap) isBoundary(net *wsn.Network, i int, thr float64, s *Scratch) bool {
	s.nbrs = net.NeighborsWithinBuf(i, net.Gamma(), s.nbrs)
	if len(s.nbrs) < 3 {
		return true
	}
	p := net.Position(i)
	angles := s.angles[:0]
	for _, j := range s.nbrs {
		q := net.Position(j)
		if q.Dist2(p) < geom.Eps*geom.Eps {
			continue // coincident neighbor has no bearing
		}
		angles = append(angles, q.Sub(p).Angle())
	}
	s.angles = angles
	if len(angles) < 3 {
		return true
	}
	slices.Sort(angles)
	maxGap := 2*math.Pi - (angles[len(angles)-1] - angles[0]) // wrap-around gap
	for i := 1; i < len(angles); i++ {
		if g := angles[i] - angles[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap > thr
}

// Hull is a centralized boundary oracle: nodes within Tol of the convex hull
// of all positions are boundary nodes. A zero Tol uses γ/2.
type Hull struct {
	Tol float64
}

// Boundary implements Detector.
func (d Hull) Boundary(net *wsn.Network) []bool {
	tol := d.Tol
	if tol == 0 {
		tol = net.Gamma() / 2
	}
	out := make([]bool, net.Len())
	hull := geom.ConvexHull(net.Positions())
	if len(hull) < 3 {
		for i := range out {
			out[i] = true
		}
		return out
	}
	for i := 0; i < net.Len(); i++ {
		out[i] = distToPolyBoundary(net.Position(i), hull) <= tol
	}
	return out
}

func distToPolyBoundary(p geom.Point, poly geom.Polygon) float64 {
	best := math.Inf(1)
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		d := b.Sub(a)
		l2 := d.Norm2()
		var q geom.Point
		if l2 < geom.Eps*geom.Eps {
			q = a
		} else {
			t := p.Sub(a).Dot(d) / l2
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			q = a.Add(d.Scale(t))
		}
		if dd := p.Dist(q); dd < best {
			best = dd
		}
	}
	return best
}
