// Package baseline implements the comparison points used in the paper's
// evaluation (Sec. V-C):
//
//   - the Bai et al. optimal 2-coverage density bound (Table I),
//   - the Ammari & Das Reuleaux-triangle "lens" deployment node count and an
//     actual regular deployment generator (Table II),
//   - a min-node adapter that iterates LAACAD while adding/removing nodes
//     until the max sensing range matches a target fixed range (Sec. IV-C).
package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/region"
)

// BaiMinNodes2Coverage returns the minimum node count for 2-coverage of an
// area with common sensing range r, from the optimal congruent deployment
// density 4π/(3√3) proven by Bai et al. [3] (boundary effects ignored):
//
//	N* = |A| · (4π/3√3) / (πr²) = 4|A| / (3√3 r²)
func BaiMinNodes2Coverage(area, r float64) float64 {
	return 4 * area / (3 * math.Sqrt(3) * r * r)
}

// AmmariLensNodes returns the node count of the Reuleaux-triangle lens
// deployment of Ammari & Das [15] for k-coverage (k ≥ 3) of an area with
// common sensing range r:
//
//	N*_k = 6k|A| / ((4π − 3√3) r²)
func AmmariLensNodes(k int, area, r float64) float64 {
	return 6 * float64(k) * area / ((4*math.Pi - 3*math.Sqrt(3)) * r * r)
}

// TriangularCover returns node positions on a triangular lattice with pitch
// √3·r over the region's bounding box (plus one pitch of margin), restricted
// to points within r of the region. A disk of radius r at each lattice point
// 1-covers the plane at this pitch, so the returned deployment 1-covers the
// region.
func TriangularCover(reg *region.Region, r float64) []geom.Point {
	pitch := math.Sqrt(3) * r
	b := reg.BBox()
	dy := pitch * math.Sqrt(3) / 2
	var pts []geom.Point
	row := 0
	for y := b.Min.Y - pitch; y <= b.Max.Y+pitch; y += dy {
		offset := 0.0
		if row%2 == 1 {
			offset = pitch / 2
		}
		for x := b.Min.X - pitch + offset; x <= b.Max.X+pitch; x += pitch {
			p := geom.Pt(x, y)
			if reg.Contains(p) || reg.DistToBoundary(p) <= r {
				pts = append(pts, p)
			}
		}
		row++
	}
	return pts
}

// StackedK replicates each position k times — the trivial lift of a
// 1-coverage deployment to k-coverage by co-locating k nodes (the paper
// notes co-location is in fact optimal for the 3-nodes/3-coverage extreme).
func StackedK(pts []geom.Point, k int) []geom.Point {
	out := make([]geom.Point, 0, len(pts)*k)
	for i := 0; i < k; i++ {
		out = append(out, pts...)
	}
	return out
}

// MinNodesResult is the outcome of the min-node search.
type MinNodesResult struct {
	// N is the smallest node count found whose converged LAACAD deployment
	// achieves max sensing range ≤ the target range.
	N int
	// MaxRadius is the achieved max sensing range at N nodes.
	MaxRadius float64
	// Result is the deployment at N nodes.
	Result *core.Result
	// Evaluations counts LAACAD runs performed during the search.
	Evaluations int
}

// MinNodes searches for the minimum number of nodes that k-cover reg with a
// common sensing range at most rs, by the iterative adaptation of Sec. IV-C:
// LAACAD is run to convergence and nodes are added while R* > rs and removed
// while R* ≤ rs still holds with fewer nodes (binary search over N). cfg
// carries the LAACAD parameters (K, Alpha, Epsilon, MaxRounds, Mode); node
// positions for each trial size are sampled uniformly with the given seed.
func MinNodes(reg *region.Region, rs float64, cfg core.Config, seed int64) (*MinNodesResult, error) {
	if rs <= 0 {
		return nil, fmt.Errorf("baseline: target sensing range must be positive, got %v", rs)
	}
	// Analytic starting guess: each node covers ≈ πr²/k of the area.
	guess := int(math.Ceil(float64(cfg.K) * reg.Area() / (math.Pi * rs * rs)))
	if guess < cfg.K {
		guess = cfg.K
	}
	evals := 0
	runAt := func(n int) (*core.Result, error) {
		evals++
		rng := rand.New(rand.NewSource(seed))
		start := region.PlaceUniform(reg, n, rng)
		eng, err := core.New(reg, start, cfg)
		if err != nil {
			return nil, err
		}
		return eng.Run(context.Background())
	}

	// Exponential search for an upper bound that satisfies the target.
	lo, hi := cfg.K, guess
	var hiRes *core.Result
	for {
		res, err := runAt(hi)
		if err != nil {
			return nil, err
		}
		if res.MaxRadius() <= rs {
			hiRes = res
			break
		}
		lo = hi + 1
		hi *= 2
		if hi > 1<<20 {
			return nil, fmt.Errorf("baseline: no feasible node count found up to %d", hi)
		}
	}
	// Binary search for the smallest feasible N in [lo, hi].
	bestN, bestRes := hi, hiRes
	for lo < hi {
		mid := (lo + hi) / 2
		res, err := runAt(mid)
		if err != nil {
			return nil, err
		}
		if res.MaxRadius() <= rs {
			bestN, bestRes = mid, res
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return &MinNodesResult{
		N:           bestN,
		MaxRadius:   bestRes.MaxRadius(),
		Result:      bestRes,
		Evaluations: evals,
	}, nil
}
