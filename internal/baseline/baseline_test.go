package baseline

import (
	"math"
	"testing"

	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/region"
)

func TestBaiFormula(t *testing.T) {
	// Spot value: |A| = 1, r = 0.05 → 4/(3√3·0.0025) ≈ 307.9.
	got := BaiMinNodes2Coverage(1, 0.05)
	want := 4.0 / (3 * math.Sqrt(3) * 0.0025)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("got %v, want %v", got, want)
	}
	// Scaling: doubling the range divides the count by 4.
	if math.Abs(BaiMinNodes2Coverage(1, 0.1)*4-got) > 1e-9 {
		t.Error("inverse-square scaling violated")
	}
}

func TestAmmariFormula(t *testing.T) {
	// Paper Table II: k=3, R*=8.77 m → N* ≈ 318. The paper states a 1 km²
	// area, but its Table I/II numbers are only consistent with |A| = 10⁴ m²
	// (e.g. Bai at N=1000, R*=3.035 gives 836 exactly for 10⁴ m²); we adopt
	// that effective area. See EXPERIMENTS.md.
	got := AmmariLensNodes(3, 1e4, 8.77)
	if math.Abs(got-318) > 2 {
		t.Errorf("k=3 lens nodes = %v, paper says ≈318", got)
	}
	// k=8, R*=14.32 → ≈318.
	got = AmmariLensNodes(8, 1e4, 14.32)
	if math.Abs(got-318) > 3 {
		t.Errorf("k=8 lens nodes = %v, paper says ≈318", got)
	}
	// Linear in k at fixed r.
	if math.Abs(AmmariLensNodes(6, 1, 0.1)/AmmariLensNodes(3, 1, 0.1)-2) > 1e-9 {
		t.Error("linear-in-k scaling violated")
	}
}

func TestTriangularCoverOneCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	r := 0.12
	pts := TriangularCover(reg, r)
	if len(pts) == 0 {
		t.Fatal("no lattice points")
	}
	radii := make([]float64, len(pts))
	for i := range radii {
		radii[i] = r
	}
	rep := coverage.Verify(pts, radii, reg, 80)
	if !rep.KCovered(1) {
		t.Errorf("triangular lattice does not 1-cover: %v (worst %v)", rep, rep.WorstPoint)
	}
	// Density sanity: ≈ |A| / (√3·r² · 3/2)… node count should be within 2x
	// of area/(pitch row spacing) = |A|/(√3r · 3r/2).
	expect := reg.Area() / (math.Sqrt(3) * r * 1.5 * r)
	if float64(len(pts)) < expect*0.8 || float64(len(pts)) > expect*2.5 {
		t.Errorf("lattice count %d far from expected ~%v", len(pts), expect)
	}
}

func TestStackedK(t *testing.T) {
	reg := region.UnitSquareKm()
	r := 0.15
	base := TriangularCover(reg, r)
	k := 3
	stacked := StackedK(base, k)
	if len(stacked) != k*len(base) {
		t.Fatalf("len = %d, want %d", len(stacked), k*len(base))
	}
	radii := make([]float64, len(stacked))
	for i := range radii {
		radii[i] = r
	}
	rep := coverage.Verify(stacked, radii, reg, 60)
	if !rep.KCovered(k) {
		t.Errorf("stacked lattice does not %d-cover: %v", k, rep)
	}
}

func TestMinNodesRejectsBadRange(t *testing.T) {
	if _, err := MinNodes(region.UnitSquareKm(), 0, core.DefaultConfig(1), 1); err == nil {
		t.Error("rs=0 should error")
	}
}

func TestMinNodesFindsFeasibleCount(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := core.DefaultConfig(1)
	cfg.Epsilon = 2e-3
	cfg.MaxRounds = 120
	rs := 0.25
	res, err := MinNodes(reg, rs, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRadius > rs {
		t.Errorf("achieved R* = %v > target %v", res.MaxRadius, rs)
	}
	if res.N < 4 || res.N > 40 {
		t.Errorf("suspicious node count %d for 1-coverage at r=%v", res.N, rs)
	}
	if res.Evaluations < 1 {
		t.Error("no evaluations recorded")
	}
	// The found deployment must actually 1-cover with the uniform range rs.
	radii := make([]float64, len(res.Result.Positions))
	for i := range radii {
		radii[i] = rs
	}
	rep := coverage.Verify(res.Result.Positions, radii, reg, 60)
	if !rep.KCovered(1) {
		t.Errorf("min-node deployment fails coverage: %v", rep)
	}
}
