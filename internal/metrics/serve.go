package metrics

import (
	"net"
	"net/http"
)

// HTTP wiring shared by every process that exposes an observability surface
// (cmd/laacad's -metrics flag and the cmd/laacadd daemon), so the two serve
// the same handler instead of drifting copies.

// Mux returns a mux exposing reg at /metrics and at the root — the standard
// layout for a standalone metrics listener.
func Mux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/", reg)
	return mux
}

// ListenAndServe binds addr, serves h on it in the background, and returns
// the bound address (useful with a ":0" port) together with a shutdown
// function that closes the listener and any active connections.
func ListenAndServe(addr string, h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return ln.Addr().String(), func() { srv.Close() }, nil
}
