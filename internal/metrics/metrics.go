// Package metrics is a small expvar-style registry of named int64 metrics —
// the process-level observability surface over a running deployment.
//
// Two kinds of metric live in a Registry:
//
//   - Counter: an atomic cell owned by the registry. Producers publish into
//     it with Set/Add; readers Load it at any time. The engine's cumulative
//     work counters (cache invalidation work, speculation accounting,
//     boundary-flag evaluations, index rebuilds) are snapshotted into
//     counters once per round by an observer, because their underlying
//     fields are plain ints owned by the engine goroutine.
//
//   - Gauge: a read-time callback returning the current value. Gauges are
//     registered only over sources that are themselves safe for concurrent
//     reads (true atomics: the WSN's committed message total, the escrow
//     depth), so sampling a gauge mid-round is exact, never torn.
//
// The registry serializes to a flat JSON object with sorted keys
// (WriteJSON), and implements http.Handler so a live process can expose it
// with one line — see the -metrics flag of cmd/laacad.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a registry-owned atomic cell. The zero value is ready to use,
// but Counters are normally obtained from Registry.Counter so they are
// published.
type Counter struct {
	v atomic.Int64
}

// Set stores v.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Add adds d and returns the new value.
func (c *Counter) Add(d int64) int64 { return c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry is a set of named metrics. The zero value is ready to use. All
// methods are safe for concurrent use; registration is idempotent by name.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]func() int64
}

// Counter returns the counter registered under name, creating it if needed.
// Registering a name that already holds a gauge panics: the two kinds answer
// reads differently and a silent replacement would corrupt dashboards.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers fn as the read-time source for name, replacing any
// previous gauge under that name. fn must be safe to call from any
// goroutine at any time — register only over atomically-read sources.
// Registering over an existing counter panics.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if r.gauges == nil {
		r.gauges = make(map[string]func() int64)
	}
	r.gauges[name] = fn
}

// Snapshot evaluates every metric and returns the values by name.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	fns := make(map[string]func() int64, len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, fn := range r.gauges {
		fns[name] = fn
	}
	r.mu.RUnlock()
	// Gauges run outside the lock: they may read foreign state and must not
	// be able to deadlock registration.
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// WriteJSON writes the current snapshot as one flat JSON object with keys
// in sorted order, so successive scrapes diff cleanly.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n  %q: %d", sep, name, snap[name]); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// ServeHTTP implements http.Handler: the snapshot as application/json.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = r.WriteJSON(w)
}
