package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterAndGaugeRoundTrip(t *testing.T) {
	var r Registry
	c := r.Counter("engine.rounds")
	c.Set(4)
	c.Add(1)
	var live atomic.Int64
	live.Store(42)
	r.Gauge("wsn.messages", live.Load)

	snap := r.Snapshot()
	if snap["engine.rounds"] != 5 {
		t.Errorf("counter = %d, want 5", snap["engine.rounds"])
	}
	if snap["wsn.messages"] != 42 {
		t.Errorf("gauge = %d, want 42", snap["wsn.messages"])
	}
	live.Store(43)
	if got := r.Snapshot()["wsn.messages"]; got != 43 {
		t.Errorf("gauge is not read-time: %d, want 43", got)
	}
	// Counter registration is idempotent: same cell back.
	if r.Counter("engine.rounds") != c {
		t.Error("re-registering a counter returned a different cell")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	var r Registry
	r.Counter("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Gauge over an existing counter must panic")
			}
		}()
		r.Gauge("x", func() int64 { return 0 })
	}()
	r.Gauge("y", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("Counter over an existing gauge must panic")
		}
	}()
	r.Counter("y")
}

func TestWriteJSONSortedAndValid(t *testing.T) {
	var r Registry
	r.Counter("b.two").Set(2)
	r.Counter("a.one").Set(1)
	r.Gauge("c.three", func() int64 { return 3 })
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, out)
	}
	want := map[string]int64{"a.one": 1, "b.two": 2, "c.three": 3}
	for k, v := range want {
		if decoded[k] != v {
			t.Errorf("%s = %d, want %d", k, decoded[k], v)
		}
	}
	if i, j := strings.Index(out, "a.one"), strings.Index(out, "b.two"); i > j {
		t.Error("keys not sorted")
	}
}

func TestServeHTTP(t *testing.T) {
	var r Registry
	r.Counter("hits").Set(7)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if decoded["hits"] != 7 {
		t.Errorf("hits = %d, want 7", decoded["hits"])
	}
}

// Registration, publication and snapshots from many goroutines must be
// race-free (run under -race in CI).
func TestConcurrentUse(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 500; i++ {
				c.Add(1)
				r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 2000 {
		t.Errorf("shared = %d, want 2000", got)
	}
}
