package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestListenAndServeMetricsMux(t *testing.T) {
	reg := &Registry{}
	reg.Counter("engine.rounds").Set(11)
	addr, shutdown, err := ListenAndServe("127.0.0.1:0", Mux(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	for _, path := range []string{"/metrics", "/"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]int64
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("%s returned invalid JSON: %v\n%s", path, err, body)
		}
		if snap["engine.rounds"] != 11 {
			t.Errorf("%s: engine.rounds = %d, want 11", path, snap["engine.rounds"])
		}
	}
}

func TestListenAndServeRejectsBadAddr(t *testing.T) {
	if _, _, err := ListenAndServe("not-an-address:-1", Mux(&Registry{})); err == nil {
		t.Error("unusable address should fail")
	}
}
