package region

import (
	"fmt"

	"laacad/internal/geom"
)

// Triangulate decomposes a simple CCW polygon into triangles using the
// ear-clipping algorithm (O(n²)). It returns an error if the polygon is
// degenerate or no ear can be found, which indicates a self-intersecting
// input.
func Triangulate(poly geom.Polygon) ([]geom.Polygon, error) {
	n := len(poly)
	if n < 3 {
		return nil, fmt.Errorf("region: cannot triangulate polygon with %d vertices", n)
	}
	if n == 3 {
		return []geom.Polygon{poly.Clone()}, nil
	}
	// Work on an index list into the original vertices.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tris := make([]geom.Polygon, 0, n-2)
	guard := 0
	for len(idx) > 3 {
		guard++
		if guard > 2*n*n {
			return nil, fmt.Errorf("region: ear clipping did not terminate (self-intersecting polygon?)")
		}
		clipped := false
		for i := 0; i < len(idx); i++ {
			prev := idx[(i-1+len(idx))%len(idx)]
			cur := idx[i]
			next := idx[(i+1)%len(idx)]
			a, b, c := poly[prev], poly[cur], poly[next]
			if geom.Orientation(a, b, c) <= 0 {
				continue // reflex or collinear vertex: not an ear
			}
			if earContainsOther(poly, idx, prev, cur, next) {
				continue
			}
			if !diagonalValid(poly, idx, prev, next) {
				continue
			}
			tris = append(tris, geom.Polygon{a, b, c})
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Fallback: drop a collinear vertex if one exists (it contributes
			// no area), otherwise report failure.
			dropped := false
			for i := 0; i < len(idx); i++ {
				prev := idx[(i-1+len(idx))%len(idx)]
				cur := idx[i]
				next := idx[(i+1)%len(idx)]
				if geom.Orientation(poly[prev], poly[cur], poly[next]) == 0 {
					idx = append(idx[:i], idx[i+1:]...)
					dropped = true
					break
				}
			}
			if !dropped {
				return nil, fmt.Errorf("region: no ear found (self-intersecting polygon?)")
			}
		}
	}
	last := geom.Polygon{poly[idx[0]], poly[idx[1]], poly[idx[2]]}
	if last.Area() > geom.Eps {
		tris = append(tris, last)
	}
	return tris, nil
}

// earContainsOther reports whether any remaining polygon vertex lies inside
// the closed candidate ear triangle (prev, cur, next). Points exactly on the
// triangle boundary also block the ear: a reflex vertex touching the ear
// diagonal would otherwise let the diagonal escape the polygon.
func earContainsOther(poly geom.Polygon, idx []int, prev, cur, next int) bool {
	a, b, c := poly[prev], poly[cur], poly[next]
	for _, j := range idx {
		if j == prev || j == cur || j == next {
			continue
		}
		p := poly[j]
		if geom.Orientation(a, b, p) >= 0 &&
			geom.Orientation(b, c, p) >= 0 &&
			geom.Orientation(c, a, p) >= 0 {
			return true
		}
	}
	return false
}

// diagonalValid reports whether the candidate ear diagonal prev–next stays
// inside the remaining polygon: it must not properly cross any non-adjacent
// remaining edge (guards against thin spikes slicing through the ear with
// both endpoints outside the triangle) and its midpoint must be interior.
func diagonalValid(poly geom.Polygon, idx []int, prev, next int) bool {
	a, c := poly[prev], poly[next]
	m := len(idx)
	for i := 0; i < m; i++ {
		e1, e2 := idx[i], idx[(i+1)%m]
		if e1 == prev || e1 == next || e2 == prev || e2 == next {
			continue
		}
		if p, ok := geom.SegmentIntersection(a, c, poly[e1], poly[e2]); ok {
			// Shared endpoints were excluded above, so any hit is a proper
			// crossing unless it is a grazing touch at a/c themselves.
			if !p.Eq(a) && !p.Eq(c) {
				return false
			}
		}
	}
	// Midpoint must be inside the remaining sub-polygon.
	remaining := make(geom.Polygon, 0, m)
	for _, j := range idx {
		remaining = append(remaining, poly[j])
	}
	return remaining.Contains(a.Mid(c))
}
