package region

import (
	"math"
	"math/rand"
	"testing"

	"laacad/internal/geom"
)

func TestRectRegionBasics(t *testing.T) {
	r := Rect(0, 0, 2, 1)
	if math.Abs(r.Area()-2) > 1e-9 {
		t.Errorf("Area = %v, want 2", r.Area())
	}
	if !r.Contains(geom.Pt(1, 0.5)) {
		t.Error("interior point not contained")
	}
	if r.Contains(geom.Pt(3, 0.5)) {
		t.Error("exterior point contained")
	}
	if !r.Contains(geom.Pt(0, 0)) {
		t.Error("corner should be contained")
	}
	b := r.BBox()
	if b.Min != geom.Pt(0, 0) || b.Max != geom.Pt(2, 1) {
		t.Errorf("BBox = %+v", b)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 1)}); err == nil {
		t.Error("expected error for 2-vertex outer")
	}
	if _, err := New(geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}); err == nil {
		t.Error("expected error for zero-area outer")
	}
	sq := geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	nonConvexHole := geom.Polygon{
		geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.2), geom.Pt(0.8, 0.8),
		geom.Pt(0.5, 0.4), geom.Pt(0.2, 0.8),
	}
	if _, err := New(sq, nonConvexHole); err == nil {
		t.Error("expected error for non-convex hole")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad input")
		}
	}()
	MustNew(nil)
}

func TestRegionWithHole(t *testing.T) {
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.25, 0.25), Max: geom.Pt(0.75, 0.75)})
	r := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	if math.Abs(r.Area()-0.75) > 1e-9 {
		t.Errorf("Area = %v, want 0.75", r.Area())
	}
	if r.Contains(geom.Pt(0.5, 0.5)) {
		t.Error("hole interior should not be contained")
	}
	if !r.Contains(geom.Pt(0.1, 0.1)) {
		t.Error("point outside hole should be contained")
	}
	if !r.Contains(geom.Pt(0.25, 0.5)) {
		t.Error("hole boundary should count as inside the region")
	}
	// Pieces must be disjoint and sum to the region area.
	var sum float64
	for _, p := range r.Pieces() {
		sum += p.Area()
	}
	if math.Abs(sum-r.Area()) > 1e-9 {
		t.Errorf("piece areas sum to %v, want %v", sum, r.Area())
	}
}

func TestRegionWithOverlappingHoles(t *testing.T) {
	h1 := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.2, 0.2), Max: geom.Pt(0.6, 0.6)})
	h2 := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.8, 0.8)})
	r := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), h1, h2)
	// Union of holes: 0.16 + 0.16 − 0.04 = 0.28.
	if math.Abs(r.Area()-0.72) > 1e-9 {
		t.Errorf("Area = %v, want 0.72", r.Area())
	}
	if r.Contains(geom.Pt(0.5, 0.5)) {
		t.Error("overlap interior should be excluded")
	}
}

func TestLShape(t *testing.T) {
	r := LShape()
	if math.Abs(r.Area()-0.75) > 1e-9 {
		t.Errorf("LShape area = %v, want 0.75", r.Area())
	}
	if r.Contains(geom.Pt(0.75, 0.75)) {
		t.Error("removed quadrant should be outside")
	}
	if !r.Contains(geom.Pt(0.25, 0.75)) || !r.Contains(geom.Pt(0.75, 0.25)) {
		t.Error("L arms should be inside")
	}
}

func TestCross(t *testing.T) {
	r := Cross()
	// Cross area: vertical bar 0.4×1 + horizontal bar 0.4×1 − center 0.4×0.4
	want := 0.4 + 0.4 - 0.16
	if math.Abs(r.Area()-want) > 1e-9 {
		t.Errorf("Cross area = %v, want %v", r.Area(), want)
	}
	if r.Contains(geom.Pt(0.1, 0.1)) {
		t.Error("cross corner notch should be outside")
	}
	if !r.Contains(geom.Pt(0.5, 0.9)) {
		t.Error("top arm should be inside")
	}
}

func TestFig8Regions(t *testing.T) {
	r1 := SquareWithCircularObstacle(geom.Pt(0.5, 0.5), 0.15)
	if !(r1.Area() < 1) || !(r1.Area() > 0.9) {
		t.Errorf("circular obstacle area = %v", r1.Area())
	}
	if r1.Contains(geom.Pt(0.5, 0.5)) {
		t.Error("obstacle center should be excluded")
	}
	r2 := SquareWithTwoObstacles()
	if r2.Contains(geom.Pt(0.3, 0.65)) || r2.Contains(geom.Pt(0.7, 0.3)) {
		t.Error("obstacle interiors should be excluded")
	}
	if !r2.Contains(geom.Pt(0.05, 0.05)) {
		t.Error("free space should be included")
	}
}

func TestClipConvexToRegion(t *testing.T) {
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.6, 0.6)})
	r := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	// A cell covering the middle of the region: its clip must exclude the hole.
	cell := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.3, 0.3), Max: geom.Pt(0.7, 0.7)})
	pieces := r.ClipConvex(cell)
	var area float64
	for _, p := range pieces {
		area += p.Area()
		c := p.Centroid()
		if !r.Contains(c) {
			t.Errorf("piece centroid %v outside region", c)
		}
	}
	want := 0.16 - 0.04 // cell area minus hole area
	if math.Abs(area-want) > 1e-9 {
		t.Errorf("clipped area = %v, want %v", area, want)
	}
	// Cell fully outside the region.
	if pieces := r.ClipConvex(geom.RectPolygon(geom.BBox{Min: geom.Pt(2, 2), Max: geom.Pt(3, 3)})); len(pieces) != 0 {
		t.Errorf("expected no pieces, got %d", len(pieces))
	}
	// Degenerate cell.
	if pieces := r.ClipConvex(geom.Polygon{geom.Pt(0, 0)}); pieces != nil {
		t.Error("degenerate cell should clip to nil")
	}
}

func TestDistToBoundary(t *testing.T) {
	r := Rect(0, 0, 1, 1)
	if d := r.DistToBoundary(geom.Pt(0.5, 0.5)); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("center dist = %v, want 0.5", d)
	}
	if d := r.DistToBoundary(geom.Pt(0.1, 0.5)); math.Abs(d-0.1) > 1e-9 {
		t.Errorf("near-left dist = %v, want 0.1", d)
	}
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.6, 0.6)})
	rh := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	if d := rh.DistToBoundary(geom.Pt(0.35, 0.5)); math.Abs(d-0.05) > 1e-9 {
		t.Errorf("near-hole dist = %v, want 0.05", d)
	}
}

func TestClampInside(t *testing.T) {
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.6, 0.6)})
	r := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	// Inside point unchanged.
	p := geom.Pt(0.2, 0.2)
	if got := r.ClampInside(p); !got.Eq(p) {
		t.Errorf("inside point moved to %v", got)
	}
	// Point in hole moves to hole boundary.
	got := r.ClampInside(geom.Pt(0.5, 0.5))
	if !r.Contains(got) {
		t.Errorf("clamped point %v not in region", got)
	}
	if d := got.Dist(geom.Pt(0.5, 0.5)); d > 0.15 {
		t.Errorf("clamp moved too far: %v", d)
	}
	// Point outside the outer boundary.
	got = r.ClampInside(geom.Pt(1.5, 0.5))
	if !r.Contains(got) || got.Dist(geom.Pt(1, 0.5)) > 1e-6 {
		t.Errorf("outside clamp got %v", got)
	}
}

func TestRandomPointUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.25, 0.25), Max: geom.Pt(0.75, 0.75)})
	r := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	const n = 20000
	var leftHalf int
	for i := 0; i < n; i++ {
		p := r.RandomPoint(rng)
		if !r.Contains(p) {
			t.Fatalf("sampled point %v outside region", p)
		}
		if p.X < 0.5 {
			leftHalf++
		}
	}
	// By symmetry, half the mass is on each side; allow 3% slack.
	frac := float64(leftHalf) / n
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("left-half fraction = %v, want ~0.5", frac)
	}
}

func TestGridPoints(t *testing.T) {
	r := Rect(0, 0, 1, 1)
	pts := r.GridPoints(10)
	if len(pts) != 100 {
		t.Errorf("grid on square: %d points, want 100", len(pts))
	}
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.25, 0.25), Max: geom.Pt(0.75, 0.75)})
	rh := MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	ptsH := rh.GridPoints(20)
	for _, p := range ptsH {
		if !rh.Contains(p) {
			t.Fatalf("grid point %v outside region", p)
		}
	}
	wantFrac := rh.Area()
	gotFrac := float64(len(ptsH)) / 400
	if math.Abs(gotFrac-wantFrac) > 0.05 {
		t.Errorf("grid fraction = %v, want ~%v", gotFrac, wantFrac)
	}
	// Resolution below 2 is clamped.
	if len(r.GridPoints(1)) != 4 {
		t.Errorf("clamped resolution should give 2x2 grid")
	}
}

func TestTriangulate(t *testing.T) {
	tests := []struct {
		name string
		poly geom.Polygon
		want float64
	}{
		{"square", geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), 1},
		{"triangle", geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}, 0.5},
		{"L-shape", geom.Polygon{
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 0.5),
			geom.Pt(0.5, 0.5), geom.Pt(0.5, 1), geom.Pt(0, 1),
		}, 0.75},
		{"cross", Cross().Outer(), 0.64},
		{"spiky", geom.Polygon{
			geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 1), geom.Pt(3, 1),
			geom.Pt(3, 0.5), geom.Pt(2, 0.5), geom.Pt(2, 1), geom.Pt(0, 1),
		}, 3.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tris, err := Triangulate(tt.poly.Clone().EnsureCCW())
			if err != nil {
				t.Fatalf("Triangulate: %v", err)
			}
			var sum float64
			for _, tr := range tris {
				if len(tr) != 3 {
					t.Fatalf("non-triangle piece: %v", tr)
				}
				sum += tr.Area()
			}
			if math.Abs(sum-tt.want) > 1e-9 {
				t.Errorf("triangle areas sum to %v, want %v", sum, tt.want)
			}
		})
	}
}

func TestTriangulateErrors(t *testing.T) {
	if _, err := Triangulate(geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 1)}); err == nil {
		t.Error("expected error for < 3 vertices")
	}
}

func TestPlaceUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := UnitSquareKm()
	pts := PlaceUniform(r, 50, rng)
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestPlaceCorner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := UnitSquareKm()
	pts := PlaceCorner(r, 100, 0.1, rng)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
		if p.X > 0.1+1e-9 || p.Y > 0.1+1e-9 {
			t.Fatalf("point %v outside corner patch", p)
		}
	}
	// Zero frac falls back to default.
	pts = PlaceCorner(r, 10, 0, rng)
	for _, p := range pts {
		if p.X > 0.1+1e-9 {
			t.Fatalf("default frac: point %v outside patch", p)
		}
	}
}

func TestPlaceGaussianCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := UnitSquareKm()
	pts := PlaceGaussianCluster(r, 200, geom.Pt(0.5, 0.5), 0.05, rng)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
	c := geom.Centroid(pts)
	if c.Dist(geom.Pt(0.5, 0.5)) > 0.05 {
		t.Errorf("cluster centroid %v far from center", c)
	}
}

// Property: for random convex cells, the clipped pieces always lie inside
// the region and their total area never exceeds the cell area.
func TestClipConvexInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := SquareWithTwoObstacles()
	for trial := 0; trial < 100; trial++ {
		c := geom.Circle{
			Center: geom.Pt(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1),
			R:      0.05 + rng.Float64()*0.3,
		}
		cell := geom.RegularPolygon(c, 8, rng.Float64())
		pieces := r.ClipConvex(cell)
		var sum float64
		for _, p := range pieces {
			sum += p.Area()
			if !r.Contains(p.Centroid()) {
				t.Fatalf("trial %d: piece centroid outside region", trial)
			}
		}
		if sum > cell.Area()+1e-9 {
			t.Fatalf("trial %d: clipped area %v > cell area %v", trial, sum, cell.Area())
		}
	}
}
