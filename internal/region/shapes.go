package region

import (
	"math"

	"laacad/internal/geom"
)

// Prefabricated regions matching the scenarios in the paper's evaluation.
// Coordinates are in km; the nominal scale is the paper's 1 km² area.

// LShape returns an L-shaped region (a 1×1 square with the top-right
// quadrant removed) — a simple non-convex outline for adaptability tests.
func LShape() *Region {
	return MustNew(geom.Polygon{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 0.5),
		geom.Pt(0.5, 0.5), geom.Pt(0.5, 1), geom.Pt(0, 1),
	})
}

// Cross returns a plus/cross-shaped region inscribed in the unit square,
// with arm width 0.4.
func Cross() *Region {
	const lo, hi = 0.3, 0.7
	return MustNew(geom.Polygon{
		geom.Pt(lo, 0), geom.Pt(hi, 0), geom.Pt(hi, lo), geom.Pt(1, lo),
		geom.Pt(1, hi), geom.Pt(hi, hi), geom.Pt(hi, 1), geom.Pt(lo, 1),
		geom.Pt(lo, hi), geom.Pt(0, hi), geom.Pt(0, lo), geom.Pt(lo, lo),
	})
}

// SquareWithCircularObstacle returns the unit square with a regular-polygon
// approximation of a circular obstacle of radius r at center c — the
// "Initial deployment I" scenario family of Fig. 8.
func SquareWithCircularObstacle(c geom.Point, r float64) *Region {
	hole := geom.RegularPolygon(geom.Circle{Center: c, R: r}, 24, math.Pi/24)
	return MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
}

// Campus returns the 1 km² square dotted with a small campus of convex
// obstacles — four rectangular buildings and a circular pond — the
// multi-obstacle stress region for large-scale deployments: plenty of
// boundary for dominating regions to clip against everywhere in the area,
// not just around one hole.
func Campus() *Region {
	pond := geom.RegularPolygon(geom.Circle{Center: geom.Pt(0.72, 0.74), R: 0.08}, 20, 0)
	return MustNew(
		geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}),
		geom.RectPolygon(geom.BBox{Min: geom.Pt(0.12, 0.15), Max: geom.Pt(0.3, 0.28)}),
		geom.RectPolygon(geom.BBox{Min: geom.Pt(0.45, 0.1), Max: geom.Pt(0.55, 0.35)}),
		geom.RectPolygon(geom.BBox{Min: geom.Pt(0.15, 0.55), Max: geom.Pt(0.35, 0.68)}),
		geom.RectPolygon(geom.BBox{Min: geom.Pt(0.6, 0.45), Max: geom.Pt(0.85, 0.55)}),
		pond,
	)
}

// SquareWithTwoObstacles returns the unit square with two convex obstacles
// (one circular-ish, one rectangular) — the "Initial deployment II" scenario
// family of Fig. 8.
func SquareWithTwoObstacles() *Region {
	circ := geom.RegularPolygon(geom.Circle{Center: geom.Pt(0.3, 0.65), R: 0.12}, 20, 0)
	rect := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.6, 0.2), Max: geom.Pt(0.85, 0.45)})
	return MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), circ, rect)
}
