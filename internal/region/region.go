// Package region models the targeted area A that a wireless sensor network
// must k-cover: a simple (possibly non-convex) outer polygon with optional
// convex obstacle holes that mobile nodes cannot move onto (Fig. 8 in the
// paper).
//
// Internally a Region is decomposed once into disjoint convex pieces
// (ear-clipping triangulation of the outer polygon followed by sequential
// convex-hole subtraction). All geometric queries — containment, area,
// clipping a convex Voronoi cell to the region — run against that
// decomposition, which keeps every downstream computation in the convex
// world where half-plane clipping is exact.
package region

import (
	"fmt"
	"math"
	"math/rand"

	"laacad/internal/geom"
)

// Region is a targeted area: an outer boundary polygon minus a set of convex
// holes (obstacles). Construct with New; the zero value is not usable.
type Region struct {
	outer  geom.Polygon
	holes  []geom.Polygon
	pieces []geom.Polygon // disjoint convex decomposition of outer − holes
	bbox   geom.BBox
	area   float64
}

// New builds a Region from a simple outer polygon and optional holes.
// The outer polygon may be non-convex; orientation is normalized. Each hole
// must be convex (non-convex obstacles can be modeled as several overlapping
// convex holes). New returns an error if the outer polygon is degenerate or
// a hole is not convex.
func New(outer geom.Polygon, holes ...geom.Polygon) (*Region, error) {
	if len(outer) < 3 {
		return nil, fmt.Errorf("region: outer polygon needs >= 3 vertices, got %d", len(outer))
	}
	o := outer.Clone().EnsureCCW()
	if o.Area() <= geom.Eps {
		return nil, fmt.Errorf("region: outer polygon has zero area")
	}
	tris, err := Triangulate(o)
	if err != nil {
		return nil, fmt.Errorf("region: triangulating outer polygon: %w", err)
	}
	pieces := tris
	normHoles := make([]geom.Polygon, 0, len(holes))
	for i, h := range holes {
		hc := h.Clone().EnsureCCW()
		if len(hc) < 3 {
			return nil, fmt.Errorf("region: hole %d needs >= 3 vertices", i)
		}
		if !isConvex(hc) {
			return nil, fmt.Errorf("region: hole %d is not convex", i)
		}
		normHoles = append(normHoles, hc)
		pieces = subtractConvex(pieces, hc)
	}
	var area float64
	for _, p := range pieces {
		area += p.Area()
	}
	r := &Region{
		outer:  o,
		holes:  normHoles,
		pieces: pieces,
		bbox:   o.BBox(),
		area:   area,
	}
	return r, nil
}

// MustNew is New but panics on error; convenient for static region literals
// in examples and tests.
func MustNew(outer geom.Polygon, holes ...geom.Polygon) *Region {
	r, err := New(outer, holes...)
	if err != nil {
		panic(err)
	}
	return r
}

// Rect returns the rectangular region [x0,x1]×[y0,y1].
func Rect(x0, y0, x1, y1 float64) *Region {
	return MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(x0, y0), Max: geom.Pt(x1, y1)}))
}

// UnitSquareKm returns the 1 km² targeted area used throughout the paper's
// evaluation (coordinates in km).
func UnitSquareKm() *Region { return Rect(0, 0, 1, 1) }

// Outer returns the outer boundary polygon (CCW). Callers must not modify
// the returned slice.
func (r *Region) Outer() geom.Polygon { return r.outer }

// Holes returns the obstacle polygons (CCW). Callers must not modify them.
func (r *Region) Holes() []geom.Polygon { return r.holes }

// Pieces returns the disjoint convex decomposition of the region. Callers
// must not modify the returned polygons.
func (r *Region) Pieces() []geom.Polygon { return r.pieces }

// BBox returns the bounding box of the outer polygon.
func (r *Region) BBox() geom.BBox { return r.bbox }

// Area returns the area of the region (outer minus holes).
func (r *Region) Area() float64 { return r.area }

// Contains reports whether p lies in the region: inside the outer polygon
// and not strictly inside any hole. Points on hole boundaries count as
// inside the region.
func (r *Region) Contains(p geom.Point) bool {
	if !r.bbox.Contains(p) {
		return false
	}
	if !r.outer.Contains(p) {
		return false
	}
	for _, h := range r.holes {
		if h.Contains(p) && !h.OnBoundary(p) {
			return false
		}
	}
	return true
}

// ClipConvex intersects the convex polygon cell with the region and returns
// the (disjoint) convex pieces of the intersection. The result is empty if
// the cell lies outside the region.
func (r *Region) ClipConvex(cell geom.Polygon) []geom.Polygon {
	if len(cell) < 3 {
		return nil
	}
	cb := cell.BBox()
	var out []geom.Polygon
	for _, piece := range r.pieces {
		pb := piece.BBox()
		if cb.Min.X > pb.Max.X || cb.Max.X < pb.Min.X ||
			cb.Min.Y > pb.Max.Y || cb.Max.Y < pb.Min.Y {
			continue
		}
		if clipped := cell.ClipConvex(piece); len(clipped) >= 3 && clipped.Area() > areaEps(r) {
			out = append(out, clipped)
		}
	}
	return out
}

// areaEps is the area below which a clip fragment is considered numerical
// noise, scaled to the region size.
func areaEps(r *Region) float64 { return 1e-12 * (1 + r.area) }

// DistToBoundary returns the distance from p to the nearest boundary of the
// region (outer edges or hole edges). It does not require p to be inside.
func (r *Region) DistToBoundary(p geom.Point) float64 {
	best := math.Inf(1)
	scan := func(poly geom.Polygon) {
		n := len(poly)
		for i := 0; i < n; i++ {
			if d := distToSegment(p, poly[i], poly[(i+1)%n]); d < best {
				best = d
			}
		}
	}
	scan(r.outer)
	for _, h := range r.holes {
		scan(h)
	}
	return best
}

// ClampInside returns p if p is in the region; otherwise the nearest point
// of the region's convex decomposition to p. It is used to keep node motion
// targets legal (a Chebyshev center can fall inside an obstacle).
func (r *Region) ClampInside(p geom.Point) geom.Point {
	if r.Contains(p) {
		return p
	}
	best := p
	bestD := math.Inf(1)
	for _, piece := range r.pieces {
		q := nearestPointInConvex(p, piece)
		if d := p.Dist2(q); d < bestD {
			bestD = d
			best = q
		}
	}
	return best
}

// RandomPoint returns a uniformly distributed point inside the region, via
// piece-area-weighted triangle sampling.
func (r *Region) RandomPoint(rng *rand.Rand) geom.Point {
	target := rng.Float64() * r.area
	var acc float64
	for _, piece := range r.pieces {
		acc += piece.Area()
		if target <= acc {
			return randomPointInConvex(piece, rng)
		}
	}
	return randomPointInConvex(r.pieces[len(r.pieces)-1], rng)
}

// GridPoints returns the points of a resolution×resolution grid over the
// region bounding box that fall inside the region. It is the sampling basis
// for coverage verification.
func (r *Region) GridPoints(resolution int) []geom.Point {
	if resolution < 2 {
		resolution = 2
	}
	pts := make([]geom.Point, 0, resolution*resolution)
	w, h := r.bbox.Width(), r.bbox.Height()
	for i := 0; i < resolution; i++ {
		// Offset by half a cell so samples sit at cell centers, away from
		// boundary degeneracies.
		x := r.bbox.Min.X + (float64(i)+0.5)*w/float64(resolution)
		for j := 0; j < resolution; j++ {
			y := r.bbox.Min.Y + (float64(j)+0.5)*h/float64(resolution)
			p := geom.Pt(x, y)
			if r.Contains(p) {
				pts = append(pts, p)
			}
		}
	}
	return pts
}

// isConvex reports whether the CCW polygon p is convex (allowing collinear
// vertices).
func isConvex(p geom.Polygon) bool {
	n := len(p)
	for i := 0; i < n; i++ {
		if geom.Orientation(p[i], p[(i+1)%n], p[(i+2)%n]) < 0 {
			return false
		}
	}
	return true
}

// subtractConvex removes the convex hole h from each convex piece, returning
// a new list of disjoint convex pieces covering pieces − h.
func subtractConvex(pieces []geom.Polygon, h geom.Polygon) []geom.Polygon {
	var out []geom.Polygon
	for _, piece := range pieces {
		remaining := piece
		for i := 0; i < len(h) && len(remaining) >= 3; i++ {
			edge := geom.HalfPlaneFromEdge(h[i], h[(i+1)%len(h)])
			// The part of `remaining` outside this hole edge is definitely
			// outside the hole: keep it as a final piece.
			if outside := remaining.ClipHalfPlane(edge.Complement()); len(outside) >= 3 && outside.Area() > 1e-14 {
				out = append(out, outside)
			}
			remaining = remaining.ClipHalfPlane(edge)
		}
		// Whatever survived all edges lies inside the hole: discard.
	}
	return out
}

// distToSegment returns the distance from p to the closed segment a–b.
func distToSegment(p, a, b geom.Point) float64 {
	d := b.Sub(a)
	l2 := d.Norm2()
	if l2 < geom.Eps*geom.Eps {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(d.Scale(t)))
}

// nearestPointInConvex returns the point of the convex polygon nearest to p.
func nearestPointInConvex(p geom.Point, poly geom.Polygon) geom.Point {
	if poly.Contains(p) {
		return p
	}
	best := poly[0]
	bestD := math.Inf(1)
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		d := b.Sub(a)
		l2 := d.Norm2()
		var q geom.Point
		if l2 < geom.Eps*geom.Eps {
			q = a
		} else {
			t := p.Sub(a).Dot(d) / l2
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			q = a.Add(d.Scale(t))
		}
		if dd := p.Dist2(q); dd < bestD {
			bestD = dd
			best = q
		}
	}
	return best
}

// randomPointInConvex samples uniformly from a convex polygon via fan
// triangulation + triangle sampling.
func randomPointInConvex(poly geom.Polygon, rng *rand.Rand) geom.Point {
	total := poly.Area()
	target := rng.Float64() * total
	var acc float64
	for i := 1; i < len(poly)-1; i++ {
		a, b, c := poly[0], poly[i], poly[i+1]
		triArea := math.Abs(b.Sub(a).Cross(c.Sub(a))) / 2
		acc += triArea
		if target <= acc || i == len(poly)-2 {
			// Uniform point in triangle abc.
			u, v := rng.Float64(), rng.Float64()
			if u+v > 1 {
				u, v = 1-u, 1-v
			}
			return a.Add(b.Sub(a).Scale(u)).Add(c.Sub(a).Scale(v))
		}
	}
	return poly[0]
}
