package region

import (
	"math"
	"math/rand"

	"laacad/internal/geom"
)

// Placement strategies for the initial node deployment. The paper's
// convergence experiment (Fig. 5/6) starts all nodes at the bottom-left
// corner; the load experiments (Fig. 7, Tables I–II) start from uniform
// random deployments.

// PlaceUniform returns n points sampled uniformly at random from the region.
func PlaceUniform(r *Region, n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = r.RandomPoint(rng)
	}
	return pts
}

// PlaceCorner returns n points packed into a small square patch of side
// frac·min(width,height) anchored at the bottom-left corner of the region's
// bounding box, jittered uniformly and clamped into the region. This matches
// the paper's Fig. 5(a) initial deployment.
func PlaceCorner(r *Region, n int, frac float64, rng *rand.Rand) []geom.Point {
	if frac <= 0 {
		frac = 0.1
	}
	b := r.BBox()
	side := frac * min(b.Width(), b.Height())
	pts := make([]geom.Point, n)
	for i := range pts {
		p := geom.Pt(
			b.Min.X+rng.Float64()*side,
			b.Min.Y+rng.Float64()*side,
		)
		pts[i] = r.ClampInside(p)
	}
	return pts
}

// PlaceGrid returns n points laid out as a near-uniform lattice over the
// region, generated streaming row by row (no candidate set is materialized
// beyond the result), with a small jitter that breaks the exact
// cocircularities a perfect lattice would feed the Voronoi kernel. The pitch
// starts at the density-matched value √(area/n) and shrinks geometrically
// until the region yields n in-region points, so obstacles and non-convex
// outlines are handled without rejection sampling the whole area. It is the
// placement of choice for very large n: the deployment starts close to its
// steady state, so the converging tail (where per-round cost tracks what
// moved) dominates the run.
func PlaceGrid(r *Region, n int, rng *rand.Rand) []geom.Point {
	b := r.BBox()
	pitch := math.Sqrt(r.Area() / float64(n))
	pts := make([]geom.Point, 0, n)
	for {
		pts = pts[:0]
		jitter := pitch * 0.05
		rows := int(b.Height()/pitch) + 1
		cols := int(b.Width()/pitch) + 1
		for row := 0; row < rows && len(pts) < n; row++ {
			y := b.Min.Y + (float64(row)+0.5)*pitch
			for col := 0; col < cols && len(pts) < n; col++ {
				x := b.Min.X + (float64(col)+0.5)*pitch
				p := geom.Pt(
					x+(rng.Float64()*2-1)*jitter,
					y+(rng.Float64()*2-1)*jitter,
				)
				if r.Contains(p) {
					pts = append(pts, p)
				}
			}
		}
		if len(pts) == n {
			return pts
		}
		pitch *= 0.97 // a touch denser; holes and boundary ate some slots
	}
}

// PlaceGaussianCluster returns n points from a clipped Gaussian cloud around
// center with standard deviation sigma, clamped into the region. Useful for
// modeling an air-drop style initial deployment.
func PlaceGaussianCluster(r *Region, n int, center geom.Point, sigma float64, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := geom.Pt(center.X+rng.NormFloat64()*sigma, center.Y+rng.NormFloat64()*sigma)
		pts[i] = r.ClampInside(p)
	}
	return pts
}
