package region

import (
	"math/rand"

	"laacad/internal/geom"
)

// Placement strategies for the initial node deployment. The paper's
// convergence experiment (Fig. 5/6) starts all nodes at the bottom-left
// corner; the load experiments (Fig. 7, Tables I–II) start from uniform
// random deployments.

// PlaceUniform returns n points sampled uniformly at random from the region.
func PlaceUniform(r *Region, n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = r.RandomPoint(rng)
	}
	return pts
}

// PlaceCorner returns n points packed into a small square patch of side
// frac·min(width,height) anchored at the bottom-left corner of the region's
// bounding box, jittered uniformly and clamped into the region. This matches
// the paper's Fig. 5(a) initial deployment.
func PlaceCorner(r *Region, n int, frac float64, rng *rand.Rand) []geom.Point {
	if frac <= 0 {
		frac = 0.1
	}
	b := r.BBox()
	side := frac * minF(b.Width(), b.Height())
	pts := make([]geom.Point, n)
	for i := range pts {
		p := geom.Pt(
			b.Min.X+rng.Float64()*side,
			b.Min.Y+rng.Float64()*side,
		)
		pts[i] = r.ClampInside(p)
	}
	return pts
}

// PlaceGaussianCluster returns n points from a clipped Gaussian cloud around
// center with standard deviation sigma, clamped into the region. Useful for
// modeling an air-drop style initial deployment.
func PlaceGaussianCluster(r *Region, n int, center geom.Point, sigma float64, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := geom.Pt(center.X+rng.NormFloat64()*sigma, center.Y+rng.NormFloat64()*sigma)
		pts[i] = r.ClampInside(p)
	}
	return pts
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
