// Package sim executes LAACAD as a discrete-event asynchronous system — the
// setting the paper actually describes ("for every node n_i periodically,
// every τ ms"): each node acts on its own jittered τ-clock and moves with
// finite speed (the Robomote-class platforms the paper cites crawl, they do
// not teleport). Between a node's activations its neighbors observe its
// in-flight position, so nodes compute dominating regions from slightly
// stale, mutually inconsistent views — the realistic regime the synchronous
// round Engine idealizes away.
package sim

import (
	"container/heap"
)

// event is a scheduled callback. seq breaks ties FIFO for equal timestamps,
// keeping execution deterministic.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Sim is a deterministic discrete-event scheduler. The zero value is ready
// to use.
type Sim struct {
	pq   eventHeap
	now  float64
	seq  int64
	done int64
	halt bool
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() int64 { return s.done }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// are clamped to zero (run at the current time, after already-queued events
// with the same timestamp).
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute time at (clamped to now).
func (s *Sim) ScheduleAt(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	heap.Push(&s.pq, event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// Halt stops Run before the next event.
func (s *Sim) Halt() { s.halt = true }

// Run executes events in timestamp order until the queue empties, the
// clock passes until, or Halt is called. It returns the number of events
// processed by this call.
func (s *Sim) Run(until float64) int64 {
	s.halt = false
	var count int64
	for {
		if s.halt {
			break
		}
		head, ok := s.pq.Peek()
		if !ok || head.at > until {
			break
		}
		heap.Pop(&s.pq)
		s.now = head.at
		head.fn()
		count++
		s.done++
	}
	if s.now < until && !s.halt {
		s.now = until
	}
	return count
}
