package sim

import (
	"context"

	"math/rand"
	"testing"

	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/geom"
	"laacad/internal/region"
)

func TestSchedulerOrdering(t *testing.T) {
	var s Sim
	var got []int
	s.Schedule(2, func() { got = append(got, 2) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(3, func() { got = append(got, 3) })
	// Same-timestamp events run FIFO.
	s.ScheduleAt(1, func() { got = append(got, 10) })
	n := s.Run(10)
	if n != 4 {
		t.Fatalf("processed %d events", n)
	}
	want := []int{1, 10, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10", s.Now())
	}
	if s.Processed() != 4 {
		t.Errorf("Processed = %d", s.Processed())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	var s Sim
	ran := 0
	s.Schedule(1, func() { ran++ })
	s.Schedule(5, func() { ran++ })
	s.Run(2)
	if ran != 1 {
		t.Errorf("ran %d events before t=2, want 1", ran)
	}
	s.Run(10)
	if ran != 2 {
		t.Errorf("ran %d events total, want 2", ran)
	}
}

func TestSchedulerHalt(t *testing.T) {
	var s Sim
	ran := 0
	s.Schedule(1, func() { ran++; s.Halt() })
	s.Schedule(2, func() { ran++ })
	s.Run(10)
	if ran != 1 {
		t.Errorf("halt did not stop execution: ran=%d", ran)
	}
	// A later Run resumes.
	s.Run(10)
	if ran != 2 {
		t.Errorf("resume failed: ran=%d", ran)
	}
}

func TestSchedulerClampsPastTimes(t *testing.T) {
	var s Sim
	s.Schedule(5, func() {})
	s.Run(5)
	fired := false
	s.ScheduleAt(1, func() { fired = true }) // in the past: clamp to now
	s.Schedule(-3, func() {})                // negative delay: clamp to now
	s.Run(5)
	if !fired {
		t.Error("past-scheduled event never fired")
	}
}

func TestConfigValidation(t *testing.T) {
	reg := region.UnitSquareKm()
	pts := []geom.Point{geom.Pt(0.5, 0.5)}
	bad := []Config{
		{K: 0, Alpha: 0.5, Epsilon: 1e-3, Tau: 1, MaxTime: 10},
		{K: 2, Alpha: 0.5, Epsilon: 1e-3, Tau: 1, MaxTime: 10},            // K > n
		{K: 1, Alpha: 0, Epsilon: 1e-3, Tau: 1, MaxTime: 10},              // alpha
		{K: 1, Alpha: 0.5, Epsilon: 0, Tau: 1, MaxTime: 10},               // eps
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, Tau: 0, MaxTime: 10},            // tau
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, Tau: 1, MaxTime: 0},             // time
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, Tau: 1, MaxTime: 10, Jitter: 1}, // jitter
	}
	for i, cfg := range bad {
		if _, err := NewDeployment(reg, pts, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewDeployment(nil, pts, DefaultConfig(1)); err == nil {
		t.Error("nil region should be rejected")
	}
}

func asyncStart(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestAsyncDeploymentConvergesAndCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = 2e-3
	cfg.MaxTime = 1000
	cfg.Seed = 3
	res, err := Deploy(reg, asyncStart(25, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge by t=%v (activations %d)", res.Time, res.Activations)
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 50)
	if !rep.KCovered(2) {
		t.Errorf("async deployment not 2-covered: %v", rep)
	}
	if res.Activations == 0 || res.MaxRadius() <= 0 {
		t.Errorf("suspicious result: %+v", res)
	}
}

func TestAsyncFiniteSpeedTravelsAndCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(1)
	cfg.Epsilon = 3e-3
	cfg.Speed = 0.02 // km per second: 20 m/s of simulated crawl
	cfg.MaxTime = 3000
	cfg.Seed = 4
	res, err := Deploy(reg, asyncStart(16, 9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTravel <= 0 {
		t.Error("finite-speed run should record travel")
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 40)
	if !rep.KCovered(1) {
		t.Errorf("finite-speed deployment not covered: %v", rep)
	}
}

// With a very low speed cap and a short deadline the run must time out
// gracefully (Converged=false) while still reporting a usable snapshot.
func TestAsyncTimeoutGraceful(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(1)
	cfg.Speed = 1e-6
	cfg.MaxTime = 20
	cfg.Seed = 5
	res, err := Deploy(reg, asyncStart(10, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("crawling nodes cannot converge in 20s")
	}
	if len(res.Positions) != 10 || len(res.Radii) != 10 {
		t.Error("snapshot incomplete")
	}
}

func TestAsyncDeterminism(t *testing.T) {
	reg := region.UnitSquareKm()
	run := func() *Result {
		cfg := DefaultConfig(1)
		cfg.Epsilon = 3e-3
		cfg.MaxTime = 300
		cfg.Seed = 6
		res, err := Deploy(reg, asyncStart(12, 11), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Activations != b.Activations || a.Time != b.Time {
		t.Fatalf("non-deterministic: %d@%v vs %d@%v", a.Activations, a.Time, b.Activations, b.Time)
	}
	for i := range a.Positions {
		if !a.Positions[i].Eq(b.Positions[i]) {
			t.Fatalf("position %d differs", i)
		}
	}
}

// A checkpoint must always record the run's ORIGINAL time budget, even
// across multiple checkpoint/resume generations: storing the remaining
// slice instead would double-subtract the time already consumed.
func TestAsyncSnapshotPreservesOriginalMaxTime(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(1)
	cfg.Speed = 1e-6 // crawl: the run never converges inside the budget
	cfg.MaxTime = 50
	cfg.Seed = 14

	stopAfter := func(d *Deployment, epochs int) {
		d.SetObserver(func(st core.RoundStats) error {
			if st.Round >= epochs {
				return core.ErrStop
			}
			return nil
		})
	}

	d, err := NewDeployment(reg, asyncStart(6, 15), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stopAfter(d, 10)
	if _, err := d.RunAsync(context.Background()); err != nil {
		t.Fatal(err)
	}
	st1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Config.MaxTime != 50 || st1.Time < 9 {
		t.Fatalf("gen-1 checkpoint: MaxTime=%v Time=%v, want 50 and ≈10", st1.Config.MaxTime, st1.Time)
	}

	// Second generation: resume, run 10 more epochs, checkpoint again.
	d2, err := Resume(reg, st1)
	if err != nil {
		t.Fatal(err)
	}
	stopAfter(d2, st1.Round+10)
	if _, err := d2.RunAsync(context.Background()); err != nil {
		t.Fatal(err)
	}
	st2, err := d2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Config.MaxTime != 50 {
		t.Fatalf("gen-2 checkpoint lost the original budget: MaxTime=%v, want 50", st2.Config.MaxTime)
	}
	if st2.Time <= st1.Time {
		t.Fatalf("cumulative time did not advance: %v then %v", st1.Time, st2.Time)
	}

	// Third generation still has the correct remainder available.
	d3, err := Resume(reg, st2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d3.RunAsync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 49.9 || res.Time > 50.1 {
		t.Fatalf("final cumulative time %v, want ≈50 (the original budget)", res.Time)
	}
}

// Asynchronous and synchronous fixed points optimize the same objective:
// final R* should land in the same ballpark.
func TestAsyncMatchesSyncObjective(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = 2e-3
	cfg.MaxTime = 1500
	cfg.Seed = 7
	res, err := Deploy(reg, asyncStart(30, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal interior radius for k=2, N=30 over 1 km²:
	// r ≈ sqrt(2·|A|/(N·π)) ≈ 0.146; allow generous slack for boundary.
	if res.MaxRadius() < 0.12 || res.MaxRadius() > 0.28 {
		t.Errorf("async R* = %v out of plausible range", res.MaxRadius())
	}
}
