package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/snapshot"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Config parameterizes an asynchronous LAACAD deployment.
type Config struct {
	// K is the coverage order.
	K int
	// Alpha is the per-activation step size in (0, 1].
	Alpha float64
	// Epsilon is the stopping tolerance (distance to the Chebyshev center).
	Epsilon float64
	// Tau is the activation period in seconds (the paper's "every τ ms").
	Tau float64
	// Jitter is the uniform activation-period jitter as a fraction of Tau
	// (e.g. 0.1 → periods in [0.9τ, 1.1τ]). Zero means 0.1; clocks never
	// align exactly, which is the point of the asynchronous model.
	Jitter float64
	// Speed is the maximum motion speed in region units per second. Zero
	// means effectively unbounded (a node reaches its target within one
	// activation period).
	Speed float64
	// MaxTime caps the simulated duration in seconds.
	MaxTime float64
	// StableActivations is the number of consecutive no-move activations
	// after which a node is considered settled (default 3). The deployment
	// converges when every node is settled.
	StableActivations int
	// Seed drives activation jitter and the randomized geometry.
	Seed int64
}

// DefaultConfig mirrors core.DefaultConfig for the asynchronous setting.
func DefaultConfig(k int) Config {
	return Config{
		K:       k,
		Alpha:   0.5,
		Epsilon: 1e-4,
		Tau:     1.0,
		MaxTime: 2000,
	}
}

func (c *Config) validate(n int) error {
	if c.K < 1 || n < c.K {
		return fmt.Errorf("sim: need K >= 1 and at least K nodes (K=%d, n=%d)", c.K, n)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("sim: Alpha must be in (0, 1], got %v", c.Alpha)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("sim: Epsilon must be positive, got %v", c.Epsilon)
	}
	if c.Tau <= 0 {
		return fmt.Errorf("sim: Tau must be positive, got %v", c.Tau)
	}
	if c.MaxTime <= 0 {
		return fmt.Errorf("sim: MaxTime must be positive, got %v", c.MaxTime)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("sim: Jitter must be in [0, 1), got %v", c.Jitter)
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.StableActivations == 0 {
		c.StableActivations = 3
	}
	return nil
}

// Result is the outcome of an asynchronous deployment.
type Result struct {
	// Positions and Radii are the final deployment (as in core.Result).
	Positions []geom.Point
	Radii     []float64
	// Time is the simulated time at which the run ended.
	Time float64
	// Activations is the total number of node activations executed.
	Activations int64
	// Converged reports whether every node settled before MaxTime.
	Converged bool
	// TotalTravel is the summed path length driven by all nodes — with
	// finite speed this is the real motion cost of the deployment.
	TotalTravel float64
}

// MaxRadius returns the paper's objective R = max_i r_i. A degenerate
// result with no radii reports 0.
func (r *Result) MaxRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinRadius returns min_i r_i. A degenerate result with no radii reports 0.
func (r *Result) MinRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Deployment is an asynchronous LAACAD run in progress.
type Deployment struct {
	sim *Sim
	reg *region.Region
	net *wsn.Network
	cfg Config
	rng *rand.Rand
	// scr is the deployment's geometry workspace: the event loop is a
	// single goroutine, so one scratch serves every activation and the
	// dominating-region → Chebyshev pipeline runs allocation-free.
	scr *core.Scratch

	targets     []geom.Point
	lastAdvance []float64
	stable      []int
	settled     int
	activations int64
	travel      float64

	// Epoch bookkeeping: the run is segmented into τ-wide epochs, each
	// reduced to one core.RoundStats entry — the async analogue of a round,
	// streamed to the observer and archived in the trace.
	epoch    int
	acc      epochAcc
	trace    []core.RoundStats
	observer func(core.RoundStats) error

	// runCtx and stopErr carry cancellation/early-stop out of event
	// callbacks; valid only while a Run/RunAsync is executing.
	runCtx  context.Context
	stopErr error

	// Resume bases: progress carried over from the checkpoint this
	// deployment was resumed from (zero for a fresh run).
	baseTime        float64
	baseActivations int64
	baseTravel      float64
}

// epochAcc accumulates per-activation statistics within one τ epoch.
type epochAcc struct {
	maxCR, minCR float64
	maxRhat      float64
	maxMove      float64
	moved        int
}

func newEpochAcc() epochAcc { return epochAcc{minCR: math.Inf(1)} }

func (a *epochAcc) stats(epoch int) core.RoundStats {
	st := core.RoundStats{
		Round:           epoch,
		MaxCircumradius: a.maxCR,
		MinCircumradius: a.minCR,
		MaxRhat:         a.maxRhat,
		MaxMove:         a.maxMove,
		Moved:           a.moved,
	}
	if math.IsInf(st.MinCircumradius, 1) {
		st.MinCircumradius = 0
	}
	return st
}

// NewDeployment prepares an asynchronous deployment of the given initial
// positions over reg.
func NewDeployment(reg *region.Region, initial []geom.Point, cfg Config) (*Deployment, error) {
	if reg == nil {
		return nil, fmt.Errorf("sim: nil region")
	}
	if err := cfg.validate(len(initial)); err != nil {
		return nil, err
	}
	pos := make([]geom.Point, len(initial))
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
	}
	net := wsn.New(pos, reg.BBox().Diagonal()/8)
	// Every position stays clamped inside reg, so region-seeded grid bounds
	// absorb all mid-simulation moves without bounds-exit rebuilds.
	net.SetBoundsHint(reg.BBox())
	d := &Deployment{
		sim:         &Sim{},
		reg:         reg,
		net:         net,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed + 11)),
		scr:         core.NewScratch(),
		targets:     append([]geom.Point(nil), pos...),
		lastAdvance: make([]float64, len(initial)),
		stable:      make([]int, len(initial)),
		acc:         newEpochAcc(),
	}
	// Stagger first activations uniformly across one period so the system
	// never starts in lock-step.
	for i := range pos {
		i := i
		d.sim.Schedule(d.rng.Float64()*cfg.Tau, func() { d.activate(i) })
	}
	// Epoch ticks reduce activity into per-τ statistics and are where
	// cancellation and the observer run. They touch no node state and draw
	// no randomness, so they do not perturb the deployment's trajectory.
	d.sim.Schedule(cfg.Tau, d.epochTick)
	return d, nil
}

// SetObserver installs a per-epoch callback invoked with each τ epoch's
// statistics (the async analogue of core.Engine.SetObserver). Returning
// core.ErrStop halts the run cleanly; any other error halts it and is
// returned from Run/RunAsync alongside the partial result.
func (d *Deployment) SetObserver(fn func(core.RoundStats) error) { d.observer = fn }

// epochTick closes the current τ epoch: it flushes the accumulated
// statistics into the trace, notifies the observer, checks cancellation,
// and schedules the next tick.
func (d *Deployment) epochTick() {
	if d.runCtx != nil {
		if err := d.runCtx.Err(); err != nil {
			d.stopErr = err
			d.sim.Halt()
			return
		}
	}
	d.epoch++
	st := d.acc.stats(d.epoch)
	d.acc = newEpochAcc()
	d.trace = append(d.trace, st)
	if d.observer != nil {
		if err := d.observer(st); err != nil {
			d.stopErr = err
			d.sim.Halt()
			return
		}
	}
	d.sim.Schedule(d.cfg.Tau, d.epochTick)
}

// activate is one node's periodic action: advance along the current motion
// segment, recompute the dominating region from the *current* (possibly
// stale-looking) neighbor positions, retarget, and reschedule.
func (d *Deployment) activate(i int) {
	d.activations++
	d.advance(i)

	polys := core.CentralizedDominatingRegionScratch(d.net, d.reg, i, d.cfg.K, d.scr)
	if len(polys) > 0 {
		c, ri := core.ChebyshevOfRegion(polys, d.scr)
		c = d.reg.ClampInside(c)
		ui := d.net.Position(i)
		if ri > d.acc.maxCR {
			d.acc.maxCR = ri
		}
		if ri < d.acc.minCR {
			d.acc.minCR = ri
		}
		if rhat := voronoi.MaxDistFrom(ui, polys); rhat > d.acc.maxRhat {
			d.acc.maxRhat = rhat
		}
		if ui.Dist(c) > d.cfg.Epsilon {
			d.acc.moved++
			target := ui.Add(c.Sub(ui).Scale(d.cfg.Alpha))
			d.targets[i] = d.reg.ClampInside(target)
			if d.stable[i] >= d.cfg.StableActivations {
				d.settled--
			}
			d.stable[i] = 0
		} else {
			d.targets[i] = ui
			d.stable[i]++
			if d.stable[i] == d.cfg.StableActivations {
				d.settled++
				if d.settled == d.net.Len() {
					d.sim.Halt()
					return
				}
			}
		}
	}

	period := d.cfg.Tau * (1 + d.cfg.Jitter*(2*d.rng.Float64()-1))
	d.sim.Schedule(period, func() { d.activate(i) })
}

// advance moves node i along its motion segment according to the elapsed
// time and the speed limit.
func (d *Deployment) advance(i int) {
	now := d.sim.Now()
	dt := now - d.lastAdvance[i]
	d.lastAdvance[i] = now
	ui := d.net.Position(i)
	seg := d.targets[i].Sub(ui)
	dist := seg.Norm()
	if dist < 1e-15 {
		return
	}
	reach := dist
	if d.cfg.Speed > 0 {
		if maxStep := d.cfg.Speed * dt; maxStep < reach {
			reach = maxStep
		}
	}
	step := seg.Scale(reach / dist)
	d.travel += reach
	if reach > d.acc.maxMove {
		d.acc.maxMove = reach
	}
	d.net.SetPosition(i, d.reg.ClampInside(ui.Add(step)))
}

// RunAsync executes the deployment until convergence, MaxTime, ctx
// cancellation, or an observer-requested stop, and returns the
// async-flavored result (simulated time, activation count, travel).
//
// As with core.Engine.Run, cancellation yields the partial Result together
// with ctx's error; an observer returning core.ErrStop yields the partial
// Result with a nil error. Cancellation is checked at τ-epoch boundaries.
func (d *Deployment) RunAsync(ctx context.Context) (*Result, error) {
	d.runCtx = ctx
	d.stopErr = nil
	d.sim.Run(d.cfg.MaxTime)
	d.runCtx = nil
	n := d.net.Len()
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		polys := core.CentralizedDominatingRegionScratch(d.net, d.reg, i, d.cfg.K, d.scr)
		radii[i] = voronoi.MaxDistFrom(d.net.Position(i), polys)
	}
	res := &Result{
		Positions:   d.net.Positions(),
		Radii:       radii,
		Time:        d.baseTime + d.sim.Now(),
		Activations: d.baseActivations + d.activations,
		Converged:   d.settled == n,
		TotalTravel: d.baseTravel + d.travel,
	}
	err := d.stopErr
	if errors.Is(err, core.ErrStop) {
		err = nil
	}
	return res, err
}

// Run executes the deployment and packages the outcome in the unified
// result form shared with the synchronous engine, with τ epochs playing the
// role of rounds: Rounds is the number of completed epochs and Trace holds
// one entry per epoch. Use RunAsync for the async-specific measures
// (simulated time, activations, travel).
func (d *Deployment) Run(ctx context.Context) (*core.Result, error) {
	ar, err := d.RunAsync(ctx)
	if ar == nil {
		return nil, err
	}
	return &core.Result{
		Positions: ar.Positions,
		Radii:     ar.Radii,
		Rounds:    d.epoch,
		Converged: ar.Converged,
		Trace:     append([]core.RoundStats(nil), d.trace...),
	}, err
}

// Trace returns the per-epoch statistics collected so far.
func (d *Deployment) Trace() []core.RoundStats { return d.trace }

// Snapshot captures the deployment's positions and progress as a resumable
// checkpoint. Unlike the synchronous engine's checkpoints, async checkpoints
// are positional: the pending event queue and clock-jitter generator state
// are not serializable, so Resume continues from the saved positions with
// freshly staggered clocks. The fixed points (and hence final coverage) are
// the same; the activation-by-activation event sequence is not.
func (d *Deployment) Snapshot() (*snapshot.State, error) {
	st := snapshot.NewState(snapshot.KindAsync, d.net.Positions())
	st.Round = d.epoch
	st.Converged = d.settled == d.net.Len()
	st.Time = d.baseTime + d.sim.Now()
	st.Activations = d.baseActivations + d.activations
	st.Travel = d.baseTravel + d.travel
	st.Trace = make([]snapshot.RoundState, len(d.trace))
	for i, tr := range d.trace {
		st.Trace[i] = snapshot.RoundState{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
		}
	}
	st.Config = snapshot.ConfigState{
		K:       d.cfg.K,
		Alpha:   d.cfg.Alpha,
		Epsilon: d.cfg.Epsilon,
		Seed:    d.cfg.Seed,
		Tau:     d.cfg.Tau,
		Jitter:  d.cfg.Jitter,
		Speed:   d.cfg.Speed,
		// The checkpoint records the run's ORIGINAL time budget: for a
		// resumed deployment d.cfg.MaxTime is only the remaining slice, so
		// re-add the time consumed before this generation. Resume then
		// subtracts the cumulative st.Time exactly once.
		MaxTime:           d.baseTime + d.cfg.MaxTime,
		StableActivations: d.cfg.StableActivations,
	}
	return st, nil
}

// Resume reconstructs an asynchronous deployment from a checkpoint over
// reg. The remaining simulated-time budget is the original MaxTime minus
// the time already consumed; progress counters (time, activations, travel)
// continue from the checkpointed values.
func Resume(reg *region.Region, st *snapshot.State) (*Deployment, error) {
	if st.Kind != snapshot.KindAsync {
		return nil, fmt.Errorf("sim: cannot resume %q checkpoint with the async simulator", st.Kind)
	}
	cfg := Config{
		K:                 st.Config.K,
		Alpha:             st.Config.Alpha,
		Epsilon:           st.Config.Epsilon,
		Seed:              st.Config.Seed,
		Tau:               st.Config.Tau,
		Jitter:            st.Config.Jitter,
		Speed:             st.Config.Speed,
		MaxTime:           st.Config.MaxTime - st.Time,
		StableActivations: st.Config.StableActivations,
	}
	if cfg.MaxTime <= 0 {
		return nil, fmt.Errorf("sim: checkpoint has no remaining time budget (t=%v of %v)", st.Time, st.Config.MaxTime)
	}
	d, err := NewDeployment(reg, st.Positions(), cfg)
	if err != nil {
		return nil, err
	}
	d.baseTime = st.Time
	d.baseActivations = st.Activations
	d.baseTravel = st.Travel
	d.epoch = st.Round
	d.trace = make([]core.RoundStats, len(st.Trace))
	for i, tr := range st.Trace {
		d.trace[i] = core.RoundStats{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
		}
	}
	return d, nil
}

// Deploy is the one-call asynchronous entry point.
func Deploy(reg *region.Region, initial []geom.Point, cfg Config) (*Result, error) {
	d, err := NewDeployment(reg, initial, cfg)
	if err != nil {
		return nil, err
	}
	return d.RunAsync(context.Background())
}
