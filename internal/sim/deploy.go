package sim

import (
	"fmt"
	"math/rand"

	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Config parameterizes an asynchronous LAACAD deployment.
type Config struct {
	// K is the coverage order.
	K int
	// Alpha is the per-activation step size in (0, 1].
	Alpha float64
	// Epsilon is the stopping tolerance (distance to the Chebyshev center).
	Epsilon float64
	// Tau is the activation period in seconds (the paper's "every τ ms").
	Tau float64
	// Jitter is the uniform activation-period jitter as a fraction of Tau
	// (e.g. 0.1 → periods in [0.9τ, 1.1τ]). Zero means 0.1; clocks never
	// align exactly, which is the point of the asynchronous model.
	Jitter float64
	// Speed is the maximum motion speed in region units per second. Zero
	// means effectively unbounded (a node reaches its target within one
	// activation period).
	Speed float64
	// MaxTime caps the simulated duration in seconds.
	MaxTime float64
	// StableActivations is the number of consecutive no-move activations
	// after which a node is considered settled (default 3). The deployment
	// converges when every node is settled.
	StableActivations int
	// Seed drives activation jitter and the randomized geometry.
	Seed int64
}

// DefaultConfig mirrors core.DefaultConfig for the asynchronous setting.
func DefaultConfig(k int) Config {
	return Config{
		K:       k,
		Alpha:   0.5,
		Epsilon: 1e-4,
		Tau:     1.0,
		MaxTime: 2000,
	}
}

func (c *Config) validate(n int) error {
	if c.K < 1 || n < c.K {
		return fmt.Errorf("sim: need K >= 1 and at least K nodes (K=%d, n=%d)", c.K, n)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("sim: Alpha must be in (0, 1], got %v", c.Alpha)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("sim: Epsilon must be positive, got %v", c.Epsilon)
	}
	if c.Tau <= 0 {
		return fmt.Errorf("sim: Tau must be positive, got %v", c.Tau)
	}
	if c.MaxTime <= 0 {
		return fmt.Errorf("sim: MaxTime must be positive, got %v", c.MaxTime)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("sim: Jitter must be in [0, 1), got %v", c.Jitter)
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.StableActivations == 0 {
		c.StableActivations = 3
	}
	return nil
}

// Result is the outcome of an asynchronous deployment.
type Result struct {
	// Positions and Radii are the final deployment (as in core.Result).
	Positions []geom.Point
	Radii     []float64
	// Time is the simulated time at which the run ended.
	Time float64
	// Activations is the total number of node activations executed.
	Activations int64
	// Converged reports whether every node settled before MaxTime.
	Converged bool
	// TotalTravel is the summed path length driven by all nodes — with
	// finite speed this is the real motion cost of the deployment.
	TotalTravel float64
}

// MaxRadius returns the paper's objective R = max_i r_i.
func (r *Result) MaxRadius() float64 {
	var m float64
	for _, v := range r.Radii {
		if v > m {
			m = v
		}
	}
	return m
}

// Deployment is an asynchronous LAACAD run in progress.
type Deployment struct {
	sim  *Sim
	reg  *region.Region
	net  *wsn.Network
	cfg  Config
	rng  *rand.Rand
	chey *rand.Rand

	targets     []geom.Point
	lastAdvance []float64
	stable      []int
	settled     int
	activations int64
	travel      float64
}

// NewDeployment prepares an asynchronous deployment of the given initial
// positions over reg.
func NewDeployment(reg *region.Region, initial []geom.Point, cfg Config) (*Deployment, error) {
	if reg == nil {
		return nil, fmt.Errorf("sim: nil region")
	}
	if err := cfg.validate(len(initial)); err != nil {
		return nil, err
	}
	pos := make([]geom.Point, len(initial))
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
	}
	d := &Deployment{
		sim:         &Sim{},
		reg:         reg,
		net:         wsn.New(pos, reg.BBox().Diagonal()/8),
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed + 11)),
		chey:        rand.New(rand.NewSource(cfg.Seed + 13)),
		targets:     append([]geom.Point(nil), pos...),
		lastAdvance: make([]float64, len(initial)),
		stable:      make([]int, len(initial)),
	}
	// Stagger first activations uniformly across one period so the system
	// never starts in lock-step.
	for i := range pos {
		i := i
		d.sim.Schedule(d.rng.Float64()*cfg.Tau, func() { d.activate(i) })
	}
	return d, nil
}

// activate is one node's periodic action: advance along the current motion
// segment, recompute the dominating region from the *current* (possibly
// stale-looking) neighbor positions, retarget, and reschedule.
func (d *Deployment) activate(i int) {
	d.activations++
	d.advance(i)

	polys := core.CentralizedDominatingRegion(d.net, d.reg, i, d.cfg.K)
	if len(polys) > 0 {
		c, _ := geom.ChebyshevCenter(voronoi.Vertices(polys), d.chey)
		c = d.reg.ClampInside(c)
		ui := d.net.Position(i)
		if ui.Dist(c) > d.cfg.Epsilon {
			target := ui.Add(c.Sub(ui).Scale(d.cfg.Alpha))
			d.targets[i] = d.reg.ClampInside(target)
			if d.stable[i] >= d.cfg.StableActivations {
				d.settled--
			}
			d.stable[i] = 0
		} else {
			d.targets[i] = ui
			d.stable[i]++
			if d.stable[i] == d.cfg.StableActivations {
				d.settled++
				if d.settled == d.net.Len() {
					d.sim.Halt()
					return
				}
			}
		}
	}

	period := d.cfg.Tau * (1 + d.cfg.Jitter*(2*d.rng.Float64()-1))
	d.sim.Schedule(period, func() { d.activate(i) })
}

// advance moves node i along its motion segment according to the elapsed
// time and the speed limit.
func (d *Deployment) advance(i int) {
	now := d.sim.Now()
	dt := now - d.lastAdvance[i]
	d.lastAdvance[i] = now
	ui := d.net.Position(i)
	seg := d.targets[i].Sub(ui)
	dist := seg.Norm()
	if dist < 1e-15 {
		return
	}
	reach := dist
	if d.cfg.Speed > 0 {
		if maxStep := d.cfg.Speed * dt; maxStep < reach {
			reach = maxStep
		}
	}
	step := seg.Scale(reach / dist)
	d.travel += reach
	d.net.SetPosition(i, d.reg.ClampInside(ui.Add(step)))
}

// Run executes the deployment until convergence or MaxTime and returns the
// result with final sensing ranges.
func (d *Deployment) Run() (*Result, error) {
	d.sim.Run(d.cfg.MaxTime)
	n := d.net.Len()
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		polys := core.CentralizedDominatingRegion(d.net, d.reg, i, d.cfg.K)
		radii[i] = voronoi.MaxDistFrom(d.net.Position(i), polys)
	}
	return &Result{
		Positions:   d.net.Positions(),
		Radii:       radii,
		Time:        d.sim.Now(),
		Activations: d.activations,
		Converged:   d.settled == n,
		TotalTravel: d.travel,
	}, nil
}

// Deploy is the one-call asynchronous entry point.
func Deploy(reg *region.Region, initial []geom.Point, cfg Config) (*Result, error) {
	d, err := NewDeployment(reg, initial, cfg)
	if err != nil {
		return nil, err
	}
	return d.Run()
}
