package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiskArea(t *testing.T) {
	m := DiskArea{}
	if math.Abs(m.Cost(1)-math.Pi) > 1e-12 {
		t.Errorf("Cost(1) = %v", m.Cost(1))
	}
	if m.Cost(0) != 0 {
		t.Errorf("Cost(0) = %v", m.Cost(0))
	}
	// Quadratic scaling.
	if math.Abs(m.Cost(2)-4*m.Cost(1)) > 1e-12 {
		t.Error("not quadratic")
	}
}

func TestPowerDefaults(t *testing.T) {
	m := Power{}
	if math.Abs(m.Cost(3)-9) > 1e-12 {
		t.Errorf("default power cost(3) = %v, want 9", m.Cost(3))
	}
	m4 := Power{C: 2, P: 4}
	if math.Abs(m4.Cost(2)-32) > 1e-12 {
		t.Errorf("2·2⁴ = %v, want 32", m4.Cost(2))
	}
}

func TestLoadsMaxTotal(t *testing.T) {
	radii := []float64{1, 2, 3}
	m := Power{} // r²
	loads := Loads(radii, m)
	if len(loads) != 3 || loads[2] != 9 {
		t.Errorf("loads = %v", loads)
	}
	if MaxLoad(radii, m) != 9 {
		t.Errorf("MaxLoad = %v", MaxLoad(radii, m))
	}
	if TotalLoad(radii, m) != 14 {
		t.Errorf("TotalLoad = %v", TotalLoad(radii, m))
	}
	if MaxLoad(nil, m) != 0 || TotalLoad(nil, m) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("balanced loads: %v", got)
	}
	// One active node among n: index = 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single load: %v", got)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty should give 0")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero loads are balanced by convention")
	}
}

// Property: Jain's index is scale-invariant and within (0, 1].
func TestJainIndexProperties(t *testing.T) {
	f := func(a, b, c, scale float64) bool {
		abs := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Abs(math.Mod(v, 100)) + 0.01
		}
		loads := []float64{abs(a), abs(b), abs(c)}
		j := JainIndex(loads)
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		s := abs(scale)
		scaled := []float64{loads[0] * s, loads[1] * s, loads[2] * s}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLifetime(t *testing.T) {
	radii := []float64{1, 2}
	m := Power{} // loads 1, 4
	if got := Lifetime(radii, m, 100); math.Abs(got-25) > 1e-12 {
		t.Errorf("lifetime = %v, want 25", got)
	}
	if !math.IsInf(Lifetime(nil, m, 100), 1) {
		t.Error("zero load should give infinite lifetime")
	}
}

// Monotonicity: both models increase with r.
func TestModelsMonotone(t *testing.T) {
	models := []Model{DiskArea{}, Power{}, Power{C: 3, P: 4}}
	for _, m := range models {
		prev := -1.0
		for r := 0.0; r <= 2.0; r += 0.1 {
			c := m.Cost(r)
			if c < prev {
				t.Errorf("%T not monotone at r=%v", m, r)
			}
			prev = c
		}
	}
}
