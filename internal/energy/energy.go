// Package energy models per-node sensing energy cost as a monotone function
// of the sensing range, following the paper's choice E(r) = πr² (the area of
// the sensing disk), and provides the aggregate load metrics of Fig. 7 plus
// a load-balance index.
package energy

import (
	"math"
)

// Model maps a sensing range to an energy cost. Implementations must be
// monotonically increasing in r.
type Model interface {
	Cost(r float64) float64
}

// DiskArea is the paper's model: E(r) = πr².
type DiskArea struct{}

// Cost implements Model.
func (DiskArea) Cost(r float64) float64 { return math.Pi * r * r }

// Power is a generalized model E(r) = c·r^p, covering common path-loss
// exponents (p = 2…4).
type Power struct {
	C float64 // scale; zero means 1
	P float64 // exponent; zero means 2
}

// Cost implements Model.
func (m Power) Cost(r float64) float64 {
	c, p := m.C, m.P
	if c == 0 {
		c = 1
	}
	if p == 0 {
		p = 2
	}
	return c * math.Pow(r, p)
}

// Loads returns each node's energy cost under the model.
func Loads(radii []float64, m Model) []float64 {
	out := make([]float64, len(radii))
	for i, r := range radii {
		out[i] = m.Cost(r)
	}
	return out
}

// MaxLoad returns max_i E(r_i) — the paper's "maximum sensing load".
func MaxLoad(radii []float64, m Model) float64 {
	var mx float64
	for _, r := range radii {
		if c := m.Cost(r); c > mx {
			mx = c
		}
	}
	return mx
}

// TotalLoad returns Σ_i E(r_i) — the paper's "total sensing load".
func TotalLoad(radii []float64, m Model) float64 {
	var s float64
	for _, r := range radii {
		s += m.Cost(r)
	}
	return s
}

// JainIndex returns Jain's fairness index of the load vector:
// (Σx)²/(n·Σx²) ∈ (0, 1], reaching 1 for perfectly balanced loads. It
// quantifies the paper's min-max-fairness claim at convergence.
func JainIndex(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, sum2 float64
	for _, x := range loads {
		sum += x
		sum2 += x * x
	}
	if sum2 == 0 {
		return 1 // all-zero loads are trivially balanced
	}
	return sum * sum / (float64(len(loads)) * sum2)
}

// Lifetime returns the network lifetime under a per-node energy budget B:
// the time until the most loaded node exhausts its budget, B / max-load.
// It returns +Inf when the maximum load is zero.
func Lifetime(radii []float64, m Model, budget float64) float64 {
	mx := MaxLoad(radii, m)
	if mx == 0 {
		return math.Inf(1)
	}
	return budget / mx
}
