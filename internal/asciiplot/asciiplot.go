// Package asciiplot renders deployments, convergence curves and result
// tables as plain text. Go has no standard plotting stack, so the paper's
// figures are reproduced as deterministic data series plus these ASCII
// renderings (experiment runners also emit CSV for external plotting).
package asciiplot

import (
	"fmt"
	"math"
	"strings"

	"laacad/internal/geom"
)

// Layer is one set of points drawn with a common mark.
type Layer struct {
	Points []geom.Point
	Mark   rune
}

// Scatter renders point layers into a width×height character grid spanning
// bbox. Later layers overdraw earlier ones. Points outside bbox are skipped.
func Scatter(bbox geom.BBox, width, height int, layers ...Layer) string {
	if width < 2 {
		width = 2
	}
	if height < 2 {
		height = 2
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	w, h := bbox.Width(), bbox.Height()
	if w <= 0 || h <= 0 {
		return ""
	}
	for _, layer := range layers {
		for _, p := range layer.Points {
			if !bbox.Contains(p) {
				continue
			}
			x := int((p.X - bbox.Min.X) / w * float64(width-1))
			// Rows are top-down; y axis points up.
			y := height - 1 - int((p.Y-bbox.Min.Y)/h*float64(height-1))
			grid[clampInt(y, 0, height-1)][clampInt(x, 0, width-1)] = layer.Mark
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return b.String()
}

// Series is one named curve for LineChart.
type Series struct {
	Name string
	Ys   []float64
	Mark rune
}

// LineChart renders the series against their index (x = sample number) into
// a width×height plot with a y-axis scale line above and below.
func LineChart(width, height int, series ...Series) string {
	if width < 4 {
		width = 4
	}
	if height < 3 {
		height = 3
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, y := range s.Ys {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		if len(s.Ys) > maxLen {
			maxLen = len(s.Ys)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i, y := range s.Ys {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			ry := height - 1 - int((y-lo)/(hi-lo)*float64(height-1))
			grid[clampInt(ry, 0, height-1)][clampInt(x, 0, width-1)] = s.Mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y_max = %.4g\n", hi)
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "y_min = %.4g   (x: 0..%d)\n", lo, maxLen-1)
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", s.Mark, s.Name)
	}
	return b.String()
}

// Table formats rows under headers with per-column alignment.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
			if i < len(widths)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows (first row = header) as comma-separated values. Cells
// containing commas or quotes are quoted.
func CSV(rows [][]string) string {
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
