package asciiplot

import (
	"strings"
	"testing"

	"laacad/internal/geom"
)

func TestScatterBasic(t *testing.T) {
	bb := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	out := Scatter(bb, 10, 5, Layer{Points: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}, Mark: 'o'})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // border + 5 rows + border
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Bottom-left point appears in last content row, first column.
	if !strings.Contains(lines[5], "o") {
		t.Errorf("bottom row missing mark:\n%s", out)
	}
	if !strings.Contains(lines[1], "o") {
		t.Errorf("top row missing mark:\n%s", out)
	}
	if strings.Count(out, "o") != 2 {
		t.Errorf("mark count = %d:\n%s", strings.Count(out, "o"), out)
	}
}

func TestScatterSkipsOutside(t *testing.T) {
	bb := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	out := Scatter(bb, 8, 4, Layer{Points: []geom.Point{geom.Pt(5, 5)}, Mark: 'x'})
	if strings.Contains(out, "x") {
		t.Error("outside point should be skipped")
	}
}

func TestScatterLayerOverdraw(t *testing.T) {
	bb := geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	p := []geom.Point{geom.Pt(0.5, 0.5)}
	out := Scatter(bb, 8, 4,
		Layer{Points: p, Mark: 'a'},
		Layer{Points: p, Mark: 'b'},
	)
	if strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("later layer should overdraw:\n%s", out)
	}
}

func TestScatterDegenerateBBox(t *testing.T) {
	if out := Scatter(geom.BBox{}, 8, 4); out != "" {
		t.Errorf("degenerate bbox should give empty output, got %q", out)
	}
}

func TestLineChart(t *testing.T) {
	out := LineChart(20, 6, Series{Name: "max", Ys: []float64{5, 4, 3, 2, 1}, Mark: '*'})
	if !strings.Contains(out, "y_max = 5") || !strings.Contains(out, "y_min = 1") {
		t.Errorf("missing scale:\n%s", out)
	}
	if !strings.Contains(out, "* = max") {
		t.Errorf("missing legend:\n%s", out)
	}
	if strings.Count(out, "*") < 5 { // 5 points + legend
		t.Errorf("marks missing:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	if out := LineChart(10, 4); out != "(no data)\n" {
		t.Errorf("got %q", out)
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	out := LineChart(10, 4, Series{Name: "c", Ys: []float64{2, 2, 2}, Mark: '#'})
	if !strings.Contains(out, "#") {
		t.Errorf("constant series should still render:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"N", "R*"}, [][]string{{"1000", "3.035"}, {"1600", "2.357"}})
	if !strings.Contains(out, "N") || !strings.Contains(out, "1000") {
		t.Errorf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table lines = %d:\n%s", len(lines), out)
	}
	// Separator row present.
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([][]string{{"a", "b"}, {"1", `x,"y`}})
	want := "a,b\n1,\"x,\"\"y\"\n"
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}
