// Package fault is the deterministic fault-injection seam the service layer
// runs through. It defines two interfaces — FS over the filesystem operations
// the durable job journal performs, and Clock over time — plus
// implementations that pass straight through to the OS (OS, Wall) and
// implementations that misbehave on demand for tests:
//
//   - Inject wraps an FS and applies Rules: fail the Nth matching operation
//     with an error, tear a write after k bytes, or crash the whole process
//     (a real self-delivered SIGKILL, so no deferred cleanup or buffered
//     flush softens the landing) at a named operation — which is exactly the
//     adversarial instant a crash-consistency test wants to own.
//   - Manual is a hand-advanced clock, so retry/backoff and deadline policy
//     run instantly and deterministically under test.
//
// Every rule is counted deterministically: operations are numbered in the
// order they reach the Inject layer, so a single-threaded workload replays
// the same fault at the same instant on every run, and a seeded chaos
// harness can sweep the crash point across the whole operation sequence.
package fault

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// File is the writable-file surface the journal needs: append bytes, force
// them to stable storage, close.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem seam. All service-layer durability code performs its
// IO through an FS so tests can interpose failures at any single operation.
//
// Operation names, as seen by Inject rules: "mkdirall", "readdir",
// "readfile", "writefile", "rename", "remove", "create", "append", "write",
// "sync", "close", "truncate", "syncdir".
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir returns the names of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// WriteFile writes data to path in one operation (create/truncate).
	WriteFile(path string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Create opens path for writing, truncating it if it exists.
	Create(path string) (File, error)
	// Append opens path for appending, creating it if needed.
	Append(path string) (File, error)
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making renames/creates durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFile implements FS.
func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Create implements FS.
func (OS) Create(path string) (File, error) { return os.Create(path) }

// Append implements FS.
func (OS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Truncate implements FS.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ParseRule parses the wire form of one injection rule, the format the
// LAACAD_FAULT environment variable and chaos harnesses use:
//
//	fail:<op>:<n>         error the Nth operation matching op
//	crash:<op>:<n>        SIGKILL the process at the Nth matching operation
//	tear:<op>:<n>:<k>     on the Nth matching op, write only k bytes, then error
//	tearcrash:<op>:<n>:<k> write k bytes, then SIGKILL
//	tearbyte:<k>          tear the write stream at cumulative byte offset k,
//	                      then error (op is implicitly "write")
//
// op may be "" or "*" to match every operation.
func ParseRule(s string) (Rule, error) {
	parts := strings.Split(s, ":")
	bad := func() (Rule, error) { return Rule{}, fmt.Errorf("fault: bad rule %q", s) }
	atoi := func(v string) (int64, bool) {
		var n int64
		_, err := fmt.Sscanf(v, "%d", &n)
		return n, err == nil
	}
	norm := func(op string) string {
		if op == "*" {
			return ""
		}
		return op
	}
	switch parts[0] {
	case "fail", "crash":
		if len(parts) != 3 {
			return bad()
		}
		n, ok := atoi(parts[2])
		if !ok || n < 1 {
			return bad()
		}
		r := Rule{Op: norm(parts[1]), N: n}
		if parts[0] == "crash" {
			r.Crash = true
		} else {
			r.Err = fmt.Errorf("fault: injected failure (%s)", s)
		}
		return r, nil
	case "tear", "tearcrash":
		if len(parts) != 4 {
			return bad()
		}
		n, ok1 := atoi(parts[2])
		k, ok2 := atoi(parts[3])
		if !ok1 || !ok2 || n < 1 || k < 0 {
			return bad()
		}
		r := Rule{Op: norm(parts[1]), N: n, Tear: true, TearAt: int(k)}
		if parts[0] == "tearcrash" {
			r.Crash = true
		} else {
			r.Err = fmt.Errorf("fault: injected torn write (%s)", s)
		}
		return r, nil
	case "tearbyte":
		if len(parts) != 2 {
			return bad()
		}
		k, ok := atoi(parts[1])
		if !ok || k < 0 {
			return bad()
		}
		return Rule{Op: "write", TearByte: k + 1, Err: fmt.Errorf("fault: injected torn write (%s)", s)}, nil
	default:
		return bad()
	}
}

// FromEnv builds the rules armed in the named environment variable
// (comma-separated ParseRule forms). An empty or unset variable yields no
// rules. This is how a child daemon process in a chaos test — or a real
// laacadd started with LAACAD_FAULT set — arms its own faults.
func FromEnv(name string) ([]Rule, error) {
	v := os.Getenv(name)
	if v == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(v, ",") {
		r, err := ParseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

var _ FS = OS{}
var _ Clock = Wall{}
