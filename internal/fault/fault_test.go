package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(filepath.Join(sub, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Append(filepath.Join(sub, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(filepath.Join(sub, "x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("read %q, want %q", data, "hello world")
	}
	if err := fs.Truncate(filepath.Join(sub, "x.txt"), 5); err != nil {
		t.Fatal(err)
	}
	if data, _ = fs.ReadFile(filepath.Join(sub, "x.txt")); string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := fs.Rename(filepath.Join(sub, "x.txt"), filepath.Join(sub, "y.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "y.txt" {
		t.Fatalf("ReadDir = %v, want [y.txt]", names)
	}
	if err := fs.Remove(filepath.Join(sub, "y.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFailsNthOp(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	fs := NewInject(OS{}, Rule{Op: "sync", N: 2, Err: boom})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("second sync = %v, want injected error", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("rules fire once; third sync = %v", err)
	}
}

func TestInjectTearWritesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := NewInject(OS{}, Rule{Op: "write", N: 2, Tear: true, TearAt: 3, Err: errors.New("torn")})
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if err == nil || n != 3 {
		t.Fatalf("torn write returned n=%d err=%v, want 3 bytes and an error", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "aaaabbb" {
		t.Fatalf("file = %q, want %q (4 full + 3 torn)", data, "aaaabbb")
	}
}

func TestInjectTearByteOffset(t *testing.T) {
	// A TearByte rule tears whichever write spans the cumulative offset.
	for k := int64(0); k < 8; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		fs := NewInject(OS{}, Rule{Op: "write", TearByte: k + 1, Err: errors.New("torn")})
		f, _ := fs.Create(path)
		var wrote int64
		for _, chunk := range []string{"abc", "defgh"} {
			n, err := f.Write([]byte(chunk))
			wrote += int64(n)
			if err != nil {
				break
			}
		}
		f.Close()
		if wrote != k {
			t.Fatalf("tearbyte %d: wrote %d bytes, want %d", k, wrote, k)
		}
		data, _ := os.ReadFile(path)
		if string(data) != "abcdefgh"[:k] {
			t.Fatalf("tearbyte %d: file = %q, want %q", k, data, "abcdefgh"[:k])
		}
	}
}

func TestInjectOpsCountAndTrace(t *testing.T) {
	dir := t.TempDir()
	fs := NewInject(OS{})
	var ops []string
	fs.SetTrace(func(op, path string) { ops = append(ops, op) })
	f, _ := fs.Create(filepath.Join(dir, "f"))
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	want := []string{"create", "write", "sync", "close"}
	if fs.Ops() != int64(len(want)) {
		t.Fatalf("Ops = %d, want %d", fs.Ops(), len(want))
	}
	for i, op := range want {
		if ops[i] != op {
			t.Fatalf("trace = %v, want %v", ops, want)
		}
	}
}

func TestInjectCrashUsesKillHook(t *testing.T) {
	dir := t.TempDir()
	killed := false
	old := Kill
	Kill = func() { killed = true }
	defer func() { Kill = old }()
	fs := NewInject(OS{}, Rule{Op: "rename", N: 1, Crash: true})
	if err := fs.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_ = fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
	if !killed {
		t.Fatal("crash rule did not invoke Kill")
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want Rule
	}{
		{"crash:append:7", Rule{Op: "append", N: 7, Crash: true}},
		{"crash:*:3", Rule{Op: "", N: 3, Crash: true}},
		{"tearcrash:write:2:10", Rule{Op: "write", N: 2, Tear: true, TearAt: 10, Crash: true}},
	}
	for _, c := range cases {
		got, err := ParseRule(c.in)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.in, err)
		}
		got.Err = nil
		if got != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if r, err := ParseRule("fail:sync:2"); err != nil || r.Err == nil || r.Op != "sync" || r.N != 2 {
		t.Errorf("fail rule: %+v err=%v", r, err)
	}
	if r, err := ParseRule("tearbyte:5"); err != nil || r.TearByte != 6 || r.Op != "write" {
		t.Errorf("tearbyte rule: %+v err=%v", r, err)
	}
	for _, bad := range []string{"", "crash", "crash:write", "crash:write:0", "tear:write:1", "frob:1", "tearbyte:x"} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) should fail", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("TEST_FAULT_RULES", "crash:append:2, fail:sync:1")
	rules, err := FromEnv("TEST_FAULT_RULES")
	if err != nil || len(rules) != 2 {
		t.Fatalf("FromEnv = %v, %v", rules, err)
	}
	if !rules[0].Crash || rules[0].Op != "append" || rules[0].N != 2 {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	t.Setenv("TEST_FAULT_RULES", "")
	if rules, err := FromEnv("TEST_FAULT_RULES"); err != nil || rules != nil {
		t.Errorf("empty env should produce no rules, got %v, %v", rules, err)
	}
	t.Setenv("TEST_FAULT_RULES", "nope")
	if _, err := FromEnv("TEST_FAULT_RULES"); err == nil {
		t.Error("bad env rule should error")
	}
}

func TestManualClock(t *testing.T) {
	start := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v", m.Now())
	}
	a := m.After(10 * time.Second)
	b := m.After(30 * time.Second)
	imm := m.After(0)
	select {
	case <-imm:
	default:
		t.Fatal("After(0) should fire immediately")
	}
	if m.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", m.Pending())
	}
	m.Advance(9 * time.Second)
	select {
	case <-a:
		t.Fatal("timer fired early")
	default:
	}
	m.Advance(1 * time.Second)
	select {
	case ts := <-a:
		if !ts.Equal(start.Add(10 * time.Second)) {
			t.Fatalf("fired at %v", ts)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	m.Advance(time.Hour)
	<-b
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", m.Pending())
	}
}
