package fault

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for retry/backoff and deadline policy: Wall is the
// real clock, Manual is a test clock advanced by hand so backoff schedules
// that span minutes execute in microseconds — deterministically.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time once d
	// has elapsed. Non-positive d fires immediately.
	After(d time.Duration) <-chan time.Time
}

// Wall is the passthrough Clock over real time.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// After implements Clock.
func (Wall) After(d time.Duration) <-chan time.Time {
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- time.Now()
		return ch
	}
	return time.After(d)
}

// Manual is a hand-advanced Clock. The zero value starts at the Unix epoch;
// use NewManual to pick a start. All methods are safe for concurrent use.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	timers []manualTimer
}

type manualTimer struct {
	at time.Time
	ch chan time.Time
}

// NewManual returns a Manual clock reading start.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock: the channel fires when Advance moves the clock to
// (or past) now+d. Non-positive d fires immediately.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.timers = append(m.timers, manualTimer{at: m.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var due []manualTimer
	rest := m.timers[:0]
	for _, t := range m.timers {
		if !t.at.After(now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	m.timers = rest
	m.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, t := range due {
		t.ch <- now
	}
}

// Pending reports how many timers are waiting — the lever tests use to wait
// for the system under test to block on the clock before advancing it.
func (m *Manual) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}

var _ Clock = (*Manual)(nil)
