package fault

import (
	"errors"
	"os"
	"sync"
	"syscall"
)

// Rule arms one fault. A rule fires at most once, on the Nth operation whose
// name matches Op (1-based, counted per rule; Op "" matches every
// operation) — or, for TearByte rules, during whichever matching operation
// spans cumulative payload byte TearByte-1.
type Rule struct {
	// Op is the operation name to match ("write", "sync", "rename", ...);
	// empty matches all. See FS for the full vocabulary.
	Op string
	// N fires the rule on the Nth matching operation (1-based).
	N int64
	// TearByte, if positive, fires instead during the matching operation that
	// covers cumulative byte offset TearByte-1 of all matched operations'
	// payloads — writing only the bytes before the offset. This is how a
	// recovery matrix tears a journal at every byte.
	TearByte int64
	// Tear, for write-carrying operations, truncates the payload to TearAt
	// bytes before applying the consequence below.
	Tear   bool
	TearAt int
	// Consequence: Crash SIGKILLs the process (after any partial write
	// reached the disk); otherwise Err is returned from the operation.
	Crash bool
	Err   error
}

// Kill is the process-termination hook Crash rules use: a self-delivered
// SIGKILL, the closest a process can come to pulling its own power cord.
// Tests that must survive their own crash rule may substitute it.
var Kill = func() {
	_ = syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL cannot be caught; park until the kernel reaps us
}

// Inject wraps an inner FS and applies Rules. Operations are counted under a
// lock, so concurrent callers see a consistent numbering (the order is the
// order operations reach the layer). The zero rule set passes everything
// through untouched.
type Inject struct {
	inner FS

	mu    sync.Mutex
	rules []*injectRule
	ops   int64
	// Trace, if set, observes every operation (after counting, before any
	// fault fires). Guarded by mu during calls.
	trace func(op, path string)
}

type injectRule struct {
	Rule
	matched int64 // matching ops seen so far
	bytes   int64 // cumulative payload bytes over matching ops (TearByte rules)
	fired   bool
}

// NewInject wraps inner with the given rules.
func NewInject(inner FS, rules ...Rule) *Inject {
	in := &Inject{inner: inner}
	for _, r := range rules {
		in.rules = append(in.rules, &injectRule{Rule: r})
	}
	return in
}

// SetTrace installs an operation observer (op name + path).
func (in *Inject) SetTrace(fn func(op, path string)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.trace = fn
}

// Ops returns the number of operations that have reached the layer.
func (in *Inject) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// check counts one operation and returns the consequence to apply:
// err != nil to fail, tearTo >= 0 to truncate the payload to tearTo bytes
// first, crash to die after writing. payload is the operation's write size
// (0 for non-writing ops).
func (in *Inject) check(op, path string, payload int) (tearTo int, crash bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	if in.trace != nil {
		in.trace(op, path)
	}
	tearTo = -1
	for _, r := range in.rules {
		if r.fired || (r.Op != "" && r.Op != op) {
			continue
		}
		r.matched++
		if r.TearByte > 0 {
			start := r.bytes
			r.bytes += int64(payload)
			if r.TearByte <= start || r.TearByte > start+int64(payload) {
				continue
			}
			r.fired = true
			return int(r.TearByte - 1 - start), r.Crash, tearErr(r)
		}
		if r.matched != r.N {
			continue
		}
		r.fired = true
		to := -1
		if r.Tear {
			to = r.TearAt
			if to > payload {
				to = payload
			}
			return to, r.Crash, tearErr(r)
		}
		return to, r.Crash, r.Err
	}
	return -1, false, nil
}

// tearErr guarantees a torn write carries an error consequence: a short
// write silently reported as success would violate the io.Writer contract
// and let the caller sail past the hole it just left on disk. (Crash rules
// keep a nil error — the process dies instead.)
func tearErr(r *injectRule) error {
	if r.Err != nil || r.Crash {
		return r.Err
	}
	return errors.New("fault: injected torn write")
}

// apply runs the real operation honoring a consequence from check.
func apply(tearTo int, crash bool, err error, run func() error) error {
	if tearTo < 0 && !crash && err == nil {
		return run()
	}
	if tearTo != 0 { // tearTo < 0 (no tear: full op) or a partial prefix
		_ = run()
	}
	if crash {
		Kill()
	}
	return err
}

// MkdirAll implements FS.
func (in *Inject) MkdirAll(dir string, perm os.FileMode) error {
	tearTo, crash, err := in.check("mkdirall", dir, 0)
	return apply(tearTo, crash, err, func() error { return in.inner.MkdirAll(dir, perm) })
}

// ReadDir implements FS.
func (in *Inject) ReadDir(dir string) (names []string, _ error) {
	tearTo, crash, err := in.check("readdir", dir, 0)
	e := apply(tearTo, crash, err, func() error {
		var rerr error
		names, rerr = in.inner.ReadDir(dir)
		return rerr
	})
	if e != nil {
		return nil, e
	}
	return names, nil
}

// ReadFile implements FS.
func (in *Inject) ReadFile(path string) (data []byte, _ error) {
	tearTo, crash, err := in.check("readfile", path, 0)
	e := apply(tearTo, crash, err, func() error {
		var rerr error
		data, rerr = in.inner.ReadFile(path)
		return rerr
	})
	if e != nil {
		return nil, e
	}
	return data, nil
}

// WriteFile implements FS. Tear rules truncate the written data.
func (in *Inject) WriteFile(path string, data []byte, perm os.FileMode) error {
	tearTo, crash, err := in.check("writefile", path, len(data))
	if tearTo >= 0 && tearTo < len(data) {
		data = data[:tearTo]
	}
	return apply(tearTo, crash, err, func() error { return in.inner.WriteFile(path, data, perm) })
}

// Rename implements FS.
func (in *Inject) Rename(oldpath, newpath string) error {
	tearTo, crash, err := in.check("rename", newpath, 0)
	return apply(tearTo, crash, err, func() error { return in.inner.Rename(oldpath, newpath) })
}

// Remove implements FS.
func (in *Inject) Remove(path string) error {
	tearTo, crash, err := in.check("remove", path, 0)
	return apply(tearTo, crash, err, func() error { return in.inner.Remove(path) })
}

// Create implements FS.
func (in *Inject) Create(path string) (File, error) {
	tearTo, crash, err := in.check("create", path, 0)
	var f File
	e := apply(tearTo, crash, err, func() error {
		var cerr error
		f, cerr = in.inner.Create(path)
		return cerr
	})
	if e != nil {
		return nil, e
	}
	return &injectFile{in: in, f: f, path: path}, nil
}

// Append implements FS.
func (in *Inject) Append(path string) (File, error) {
	tearTo, crash, err := in.check("append", path, 0)
	var f File
	e := apply(tearTo, crash, err, func() error {
		var aerr error
		f, aerr = in.inner.Append(path)
		return aerr
	})
	if e != nil {
		return nil, e
	}
	return &injectFile{in: in, f: f, path: path}, nil
}

// Truncate implements FS.
func (in *Inject) Truncate(path string, size int64) error {
	tearTo, crash, err := in.check("truncate", path, 0)
	return apply(tearTo, crash, err, func() error { return in.inner.Truncate(path, size) })
}

// SyncDir implements FS.
func (in *Inject) SyncDir(dir string) error {
	tearTo, crash, err := in.check("syncdir", dir, 0)
	return apply(tearTo, crash, err, func() error { return in.inner.SyncDir(dir) })
}

// injectFile routes a File's write/sync/close through the rule engine.
type injectFile struct {
	in   *Inject
	f    File
	path string
}

// Write implements File. A tear rule writes only the prefix before the
// consequence (error or crash) lands — the definition of a torn write.
func (w *injectFile) Write(p []byte) (int, error) {
	tearTo, crash, err := w.in.check("write", w.path, len(p))
	if tearTo >= 0 && tearTo < len(p) {
		if tearTo > 0 {
			if n, werr := w.f.Write(p[:tearTo]); werr != nil {
				return n, werr
			}
			// A torn write that crashes must reach the platters first, or the
			// "tear" would be silently absorbed by the page cache on restart
			// of an in-process test double.
			_ = w.f.Sync()
		}
		if crash {
			Kill()
		}
		return tearTo, err
	}
	if crash || err != nil {
		if crash {
			Kill()
		}
		return 0, err
	}
	return w.f.Write(p)
}

// Sync implements File.
func (w *injectFile) Sync() error {
	tearTo, crash, err := w.in.check("sync", w.path, 0)
	return apply(tearTo, crash, err, func() error { return w.f.Sync() })
}

// Close implements File.
func (w *injectFile) Close() error {
	tearTo, crash, err := w.in.check("close", w.path, 0)
	return apply(tearTo, crash, err, func() error { return w.f.Close() })
}

var _ FS = (*Inject)(nil)
