package geom

import (
	"math"
)

// Polygon is a simple polygon given by its vertices in counter-clockwise
// order. Most operations in this package produce and consume convex
// polygons (Voronoi cells and their clips), but Area, Centroid, Contains and
// bounding boxes are valid for any simple polygon.
type Polygon []Point

// Clone returns a deep copy of the polygon.
func (p Polygon) Clone() Polygon {
	out := make(Polygon, len(p))
	copy(out, p)
	return out
}

// Area returns the (positive) area of the polygon via the shoelace formula.
// It returns the absolute value so it is orientation-agnostic.
func (p Polygon) Area() float64 { return math.Abs(p.SignedArea()) }

// SignedArea returns the signed shoelace area: positive for counter-
// clockwise orientation, negative for clockwise.
func (p Polygon) SignedArea() float64 {
	if len(p) < 3 {
		return 0
	}
	var s float64
	for i := range p {
		j := (i + 1) % len(p)
		s += p[i].Cross(p[j])
	}
	return s / 2
}

// IsCCW reports whether the polygon is counter-clockwise oriented.
func (p Polygon) IsCCW() bool { return p.SignedArea() >= 0 }

// Reverse reverses vertex order in place and returns p.
func (p Polygon) Reverse() Polygon {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// EnsureCCW returns the polygon with counter-clockwise orientation,
// reversing in place if necessary.
func (p Polygon) EnsureCCW() Polygon {
	if !p.IsCCW() {
		p.Reverse()
	}
	return p
}

// Centroid returns the area centroid of the polygon. For degenerate
// (zero-area) polygons it falls back to the vertex mean.
func (p Polygon) Centroid() Point {
	if len(p) == 0 {
		panic("geom: Centroid of empty polygon")
	}
	a := p.SignedArea()
	if math.Abs(a) < Eps {
		return Centroid(p)
	}
	var cx, cy float64
	for i := range p {
		j := (i + 1) % len(p)
		w := p[i].Cross(p[j])
		cx += (p[i].X + p[j].X) * w
		cy += (p[i].Y + p[j].Y) * w
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// BBox returns the axis-aligned bounding box of the polygon.
func (p Polygon) BBox() BBox { return BBoxOf(p) }

// Contains reports whether q lies inside or on the boundary of the simple
// polygon, using the winding/crossing rule with boundary tolerance.
func (p Polygon) Contains(q Point) bool {
	n := len(p)
	if n < 3 {
		return false
	}
	if p.OnBoundary(q) {
		return true
	}
	inside := false
	for i := 0; i < n; i++ {
		a, b := p[i], p[(i+1)%n]
		if (a.Y > q.Y) != (b.Y > q.Y) {
			xCross := a.X + (q.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// OnBoundary reports whether q lies on an edge of the polygon within
// tolerance.
func (p Polygon) OnBoundary(q Point) bool {
	n := len(p)
	for i := 0; i < n; i++ {
		if PointOnSegment(q, p[i], p[(i+1)%n]) {
			return true
		}
	}
	return false
}

// Perimeter returns the total edge length of the polygon.
func (p Polygon) Perimeter() float64 {
	var s float64
	n := len(p)
	for i := 0; i < n; i++ {
		s += p[i].Dist(p[(i+1)%n])
	}
	return s
}

// MaxDistFrom returns the largest distance from q to any vertex of the
// polygon. For a convex polygon this is the farthest distance from q to any
// point of the polygon; LAACAD uses it as the circumradius of a dominating
// region about a node position.
func (p Polygon) MaxDistFrom(q Point) float64 {
	var m float64
	for _, v := range p {
		if d := q.Dist(v); d > m {
			m = d
		}
	}
	return m
}

// ClipHalfPlane clips the convex polygon against the closed half-plane h
// (Sutherland–Hodgman, single plane). The result is convex and CCW if the
// input was. An empty result means the polygon lies strictly outside h.
func (p Polygon) ClipHalfPlane(h HalfPlane) Polygon {
	out := p.ClipHalfPlaneInto(make(Polygon, 0, len(p)+2), h)
	if len(out) < 3 {
		return nil
	}
	return out
}

// ClipHalfPlaneInto is the allocation-free form of ClipHalfPlane: it writes
// the clipped polygon into dst[:0] (growing it only if its capacity is too
// small) and returns the result, which may have fewer than 3 vertices when
// the polygon is clipped away. dst must not alias p. Reusing dst across
// calls lets hot loops (the dominating-region kernel) clip without heap
// allocation.
func (p Polygon) ClipHalfPlaneInto(dst Polygon, h HalfPlane) Polygon {
	dst = dst[:0]
	n := len(p)
	if n == 0 {
		return dst
	}
	// Tolerance scaled by normal magnitude and coordinate size keeps the
	// classification stable for raw (unnormalized) bisector coefficients.
	prev := p[n-1]
	prevVal := h.Eval(prev)
	nNorm := h.N.Norm()
	prevIn := prevVal <= Eps*(1+nNorm*(1+prev.Norm()))
	for i := 0; i < n; i++ {
		cur := p[i]
		curVal := h.Eval(cur)
		curIn := curVal <= Eps*(1+nNorm*(1+cur.Norm()))
		switch {
		case prevIn && curIn:
			dst = append(dst, cur)
		case prevIn && !curIn:
			dst = append(dst, intersectEdgePlane(prev, cur, prevVal, curVal))
		case !prevIn && curIn:
			dst = append(dst, intersectEdgePlane(prev, cur, prevVal, curVal), cur)
		}
		prev, prevVal, prevIn = cur, curVal, curIn
	}
	return dedupeInPlace(dst)
}

// ClipConvex clips the convex polygon against another convex polygon
// (intersection of convex sets). Both inputs must be CCW.
func (p Polygon) ClipConvex(clip Polygon) Polygon {
	out := p
	n := len(clip)
	for i := 0; i < n && len(out) > 0; i++ {
		out = out.ClipHalfPlane(HalfPlaneFromEdge(clip[i], clip[(i+1)%n]))
	}
	return out
}

// intersectEdgePlane returns the point where segment a→b crosses the
// half-plane boundary, given the precomputed signed values va, vb at the
// endpoints (which must have opposite signs).
func intersectEdgePlane(a, b Point, va, vb float64) Point {
	t := va / (va - vb)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return a.Lerp(b, t)
}

// dedupeInPlace removes consecutive (near-)duplicate vertices, compacting p
// in place. The result may have fewer than 3 vertices (a polygon clipped
// away); it always shares p's backing array, so capacity is preserved for
// buffer reuse.
func dedupeInPlace(p Polygon) Polygon {
	if len(p) == 0 {
		return p
	}
	// Tolerance proportional to polygon size avoids collapsing legitimate
	// short edges of tiny cells while removing clip artifacts.
	tol := Eps * (1 + p.BBox().Diagonal())
	out := p[:0]
	for _, v := range p {
		if len(out) == 0 || !out[len(out)-1].EqTol(v, tol) {
			out = append(out, v)
		}
	}
	for len(out) >= 2 && out[0].EqTol(out[len(out)-1], tol) {
		out = out[:len(out)-1]
	}
	return out
}

// RectPolygon returns the CCW rectangle polygon for the bounding box b.
func RectPolygon(b BBox) Polygon {
	return Polygon{
		{b.Min.X, b.Min.Y},
		{b.Max.X, b.Min.Y},
		{b.Max.X, b.Max.Y},
		{b.Min.X, b.Max.Y},
	}
}

// RegularPolygon returns an n-gon inscribed in the circle c, starting at
// angle phase. It panics if n < 3.
func RegularPolygon(c Circle, n int, phase float64) Polygon {
	if n < 3 {
		panic("geom: RegularPolygon needs n >= 3")
	}
	return Polygon(SamplePointsOnCircle(c, n, phase))
}

// PointOnSegment reports whether q lies on the closed segment a–b within
// tolerance.
func PointOnSegment(q, a, b Point) bool {
	d := b.Sub(a)
	l2 := d.Norm2()
	if l2 < Eps*Eps {
		return q.EqTol(a, Eps)
	}
	t := q.Sub(a).Dot(d) / l2
	if t < -Eps || t > 1+Eps {
		return false
	}
	proj := a.Add(d.Scale(t))
	return q.Dist(proj) <= Eps*(1+math.Sqrt(l2))
}

// SegmentIntersection returns the intersection point of closed segments
// a1–a2 and b1–b2 and ok=false if they do not intersect or are (nearly)
// parallel.
func SegmentIntersection(a1, a2, b1, b2 Point) (Point, bool) {
	r := a2.Sub(a1)
	s := b2.Sub(b1)
	denom := r.Cross(s)
	scale := r.Norm()*s.Norm() + 1
	if math.Abs(denom) <= Eps*scale {
		return Point{}, false
	}
	qp := b1.Sub(a1)
	t := qp.Cross(s) / denom
	u := qp.Cross(r) / denom
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Point{}, false
	}
	return a1.Add(r.Scale(t)), true
}
