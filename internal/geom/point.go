// Package geom provides the 2-D computational-geometry substrate used by the
// LAACAD reproduction: points and vectors, circles, segments, convex
// polygons with half-plane clipping, convex hulls, and smallest enclosing
// circles (Welzl's algorithm).
//
// All coordinates are float64. The package uses a small absolute tolerance
// (Eps) for orientation and incidence decisions, which is adequate for the
// coordinate magnitudes that appear in the paper's experiments (areas on the
// order of 1 km² with coordinates expressed in km or m).
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by geometric predicates.
const Eps = 1e-9

// Point is a point (or position vector) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean norm ‖p‖₂. Computed as Sqrt(x²+y²) rather
// than math.Hypot: the package contract is region-scale coordinates (see
// the package comment), where Hypot's overflow/underflow rescaling is dead
// weight — and Norm sits on the half-plane clipping tolerance path, the
// single hottest call site in a deployment round.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Norm2 returns the squared Euclidean norm ‖p‖₂².
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance ‖p−q‖₂ (same Sqrt-over-Hypot
// trade-off as Norm).
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance ‖p−q‖₂².
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the linear interpolation p + t·(q−p).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Rot90 returns p rotated 90° counter-clockwise.
func (p Point) Rot90() Point { return Point{-p.Y, p.X} }

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n < Eps {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Angle returns the polar angle of p in (−π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Eq reports whether p and q coincide within tolerance Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// EqTol reports whether p and q coincide within tolerance tol.
func (p Point) EqTol(q Point, tol float64) bool {
	return math.Abs(p.X-q.X) <= tol && math.Abs(p.Y-q.Y) <= tol
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Orientation returns +1 if a→b→c turns counter-clockwise, −1 if clockwise,
// and 0 if the three points are collinear within tolerance.
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	// Scale tolerance with the magnitude of the operands so the predicate
	// behaves consistently for meter- and kilometer-scale coordinates.
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := Eps * (1 + scale)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// Centroid returns the arithmetic mean of pts. It panics if pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	Min, Max Point
}

// EmptyBBox returns a bounding box that contains nothing and absorbs points
// via Expand.
func EmptyBBox() BBox {
	inf := math.Inf(1)
	return BBox{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// Expand grows b to include p and returns the result.
func (b BBox) Expand(p Point) BBox {
	if p.X < b.Min.X {
		b.Min.X = p.X
	}
	if p.Y < b.Min.Y {
		b.Min.Y = p.Y
	}
	if p.X > b.Max.X {
		b.Max.X = p.X
	}
	if p.Y > b.Max.Y {
		b.Max.Y = p.Y
	}
	return b
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox { return b.Expand(o.Min).Expand(o.Max) }

// Contains reports whether p lies inside or on the boundary of b.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X-Eps && p.X <= b.Max.X+Eps &&
		p.Y >= b.Min.Y-Eps && p.Y <= b.Max.Y+Eps
}

// Width returns the horizontal extent of b.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of b.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the center point of b.
func (b BBox) Center() Point { return b.Min.Mid(b.Max) }

// IsEmpty reports whether b contains no points.
func (b BBox) IsEmpty() bool { return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y }

// Diagonal returns the length of the box diagonal.
func (b BBox) Diagonal() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Min.Dist(b.Max)
}

// BBoxOf returns the bounding box of pts.
func BBoxOf(pts []Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.Expand(p)
	}
	return b
}
