package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon {
	return Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
}

func TestPolygonArea(t *testing.T) {
	tests := []struct {
		name string
		p    Polygon
		want float64
	}{
		{"unit square", unitSquare(), 1},
		{"triangle", Polygon{Pt(0, 0), Pt(2, 0), Pt(0, 2)}, 2},
		{"clockwise square", Polygon{Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0)}, 1},
		{"degenerate 2pt", Polygon{Pt(0, 0), Pt(1, 1)}, 0},
		{"empty", nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Area(); math.Abs(got-tt.want) > Eps {
				t.Errorf("Area = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignedAreaOrientation(t *testing.T) {
	ccw := unitSquare()
	if ccw.SignedArea() <= 0 || !ccw.IsCCW() {
		t.Error("CCW square misclassified")
	}
	cw := ccw.Clone().Reverse()
	if cw.SignedArea() >= 0 || cw.IsCCW() {
		t.Error("CW square misclassified")
	}
	if !cw.EnsureCCW().IsCCW() {
		t.Error("EnsureCCW failed")
	}
}

func TestPolygonCentroid(t *testing.T) {
	if got := unitSquare().Centroid(); !got.Eq(Pt(0.5, 0.5)) {
		t.Errorf("square centroid = %v", got)
	}
	tri := Polygon{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if got := tri.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("triangle centroid = %v", got)
	}
	// Degenerate polygon falls back to vertex mean.
	line := Polygon{Pt(0, 0), Pt(2, 0), Pt(4, 0)}
	if got := line.Centroid(); !got.Eq(Pt(2, 0)) {
		t.Errorf("degenerate centroid = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := unitSquare()
	tests := []struct {
		name string
		q    Point
		want bool
	}{
		{"center", Pt(0.5, 0.5), true},
		{"outside right", Pt(1.5, 0.5), false},
		{"outside diag", Pt(-0.1, -0.1), false},
		{"on edge", Pt(1, 0.5), true},
		{"on vertex", Pt(0, 0), true},
		{"just inside", Pt(0.999999, 0.5), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sq.Contains(tt.q); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.q, got, tt.want)
			}
		})
	}
}

func TestPolygonPerimeterAndMaxDist(t *testing.T) {
	sq := unitSquare()
	if got := sq.Perimeter(); math.Abs(got-4) > Eps {
		t.Errorf("Perimeter = %v, want 4", got)
	}
	if got := sq.MaxDistFrom(Pt(0, 0)); math.Abs(got-math.Sqrt2) > Eps {
		t.Errorf("MaxDistFrom = %v, want sqrt2", got)
	}
}

func TestClipHalfPlane(t *testing.T) {
	sq := unitSquare()
	// Keep the left half: x <= 0.5.
	h := HalfPlane{N: Pt(1, 0), C: 0.5}
	clipped := sq.ClipHalfPlane(h)
	if math.Abs(clipped.Area()-0.5) > 1e-9 {
		t.Errorf("clipped area = %v, want 0.5", clipped.Area())
	}
	for _, v := range clipped {
		if v.X > 0.5+Eps {
			t.Errorf("vertex %v violates clip plane", v)
		}
	}
	// Clip that removes everything.
	gone := sq.ClipHalfPlane(HalfPlane{N: Pt(1, 0), C: -1})
	if len(gone) != 0 {
		t.Errorf("expected empty polygon, got %v", gone)
	}
	// Clip that keeps everything.
	all := sq.ClipHalfPlane(HalfPlane{N: Pt(1, 0), C: 2})
	if math.Abs(all.Area()-1) > 1e-9 {
		t.Errorf("full keep area = %v", all.Area())
	}
}

func TestClipHalfPlaneDiagonal(t *testing.T) {
	sq := unitSquare()
	// Keep below the diagonal y <= x: half the square.
	h := HalfPlane{N: Pt(-1, 1), C: 0}
	clipped := sq.ClipHalfPlane(h)
	if math.Abs(clipped.Area()-0.5) > 1e-9 {
		t.Errorf("diagonal clip area = %v, want 0.5", clipped.Area())
	}
}

func TestClipConvex(t *testing.T) {
	sq := unitSquare()
	tri := Polygon{Pt(0, 0), Pt(2, 0), Pt(0, 2)}
	inter := sq.ClipConvex(tri)
	// Square ∩ triangle(0,0)-(2,0)-(0,2) = square minus top-right triangle
	// above x+y=2... actually x+y<=2 cuts corner (1,1): area = 1 - 0 = 1?
	// x+y <= 2 holds everywhere in the unit square except nowhere (max=2 at
	// corner). So intersection is the whole square.
	if math.Abs(inter.Area()-1) > 1e-9 {
		t.Errorf("intersection area = %v, want 1", inter.Area())
	}
	tri2 := Polygon{Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	inter2 := sq.ClipConvex(tri2)
	if math.Abs(inter2.Area()-0.5) > 1e-9 {
		t.Errorf("intersection2 area = %v, want 0.5", inter2.Area())
	}
}

func TestBisector(t *testing.T) {
	a, b := Pt(0, 0), Pt(2, 0)
	h := Bisector(a, b)
	if !h.Contains(Pt(0.5, 7)) {
		t.Error("point nearer a should be in bisector half-plane of a")
	}
	if h.Contains(Pt(1.5, -3)) {
		t.Error("point nearer b should not be in a's half-plane")
	}
	if !h.Contains(Pt(1, 5)) {
		t.Error("equidistant point should be contained (closed half-plane)")
	}
	comp := h.Complement()
	if !comp.Contains(Pt(1.5, -3)) || comp.Contains(Pt(0.5, 7)) {
		t.Error("complement misclassifies")
	}
}

func TestBisectorPanicsOnCoincident(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Bisector(Pt(1, 1), Pt(1, 1))
}

func TestHalfPlaneFromEdge(t *testing.T) {
	// Left of edge (0,0)->(1,0) is the upper half-plane y >= 0.
	h := HalfPlaneFromEdge(Pt(0, 0), Pt(1, 0))
	if !h.Contains(Pt(0.5, 1)) || h.Contains(Pt(0.5, -1)) {
		t.Error("HalfPlaneFromEdge misclassifies")
	}
	if !h.Contains(Pt(0.5, 0)) {
		t.Error("boundary should be contained")
	}
}

func TestLineIntersection(t *testing.T) {
	h1 := HalfPlane{N: Pt(1, 0), C: 1} // x = 1
	h2 := HalfPlane{N: Pt(0, 1), C: 2} // y = 2
	p, ok := LineIntersection(h1, h2)
	if !ok || !p.Eq(Pt(1, 2)) {
		t.Errorf("intersection = %v ok=%v", p, ok)
	}
	_, ok = LineIntersection(h1, HalfPlane{N: Pt(2, 0), C: 5})
	if ok {
		t.Error("parallel lines should not intersect")
	}
}

func TestSegmentIntersection(t *testing.T) {
	tests := []struct {
		name           string
		a1, a2, b1, b2 Point
		want           Point
		wantOK         bool
	}{
		{"cross", Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0), Pt(1, 1), true},
		{"miss", Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1), Point{}, false},
		{"parallel", Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1), Point{}, false},
		{"touch endpoint", Pt(0, 0), Pt(1, 1), Pt(1, 1), Pt(2, 0), Pt(1, 1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, ok := SegmentIntersection(tt.a1, tt.a2, tt.b1, tt.b2)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && !p.Eq(tt.want) {
				t.Errorf("p = %v, want %v", p, tt.want)
			}
		})
	}
}

func TestPointOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(2, 2)
	if !PointOnSegment(Pt(1, 1), a, b) {
		t.Error("midpoint should be on segment")
	}
	if PointOnSegment(Pt(3, 3), a, b) {
		t.Error("point beyond endpoint should not be on segment")
	}
	if PointOnSegment(Pt(1, 1.1), a, b) {
		t.Error("off-line point should not be on segment")
	}
	if !PointOnSegment(Pt(0, 0), Pt(0, 0), Pt(0, 0)) {
		t.Error("degenerate segment should contain its point")
	}
}

func TestRectPolygon(t *testing.T) {
	p := RectPolygon(BBox{Min: Pt(0, 0), Max: Pt(2, 3)})
	if math.Abs(p.Area()-6) > Eps || !p.IsCCW() {
		t.Errorf("rect polygon area = %v ccw=%v", p.Area(), p.IsCCW())
	}
}

func TestRegularPolygon(t *testing.T) {
	c := Circle{Center: Pt(1, 1), R: 2}
	p := RegularPolygon(c, 64, 0)
	// Area should be close to but below the disk area.
	if p.Area() >= c.Area() || p.Area() < 0.98*c.Area() {
		t.Errorf("64-gon area %v vs disk %v", p.Area(), c.Area())
	}
	defer func() {
		if recover() == nil {
			t.Error("RegularPolygon(n<3) should panic")
		}
	}()
	RegularPolygon(c, 2, 0)
}

// Property: clipping never increases area and the result stays inside the
// half-plane.
func TestClipNeverGrowsArea(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		poly := randomConvexPolygon(rng)
		h := HalfPlane{
			N: Pt(rng.Float64()*2-1, rng.Float64()*2-1),
			C: rng.Float64()*2 - 1,
		}
		if h.N.Norm() < 1e-3 {
			continue
		}
		clipped := poly.ClipHalfPlane(h)
		if clipped.Area() > poly.Area()+1e-9 {
			t.Fatalf("trial %d: clip grew area %v -> %v", trial, poly.Area(), clipped.Area())
		}
		for _, v := range clipped {
			if h.Eval(v) > 1e-6*(1+h.N.Norm()) {
				t.Fatalf("trial %d: vertex %v outside half-plane by %v", trial, v, h.Eval(v))
			}
		}
	}
}

// Property: areas of the two halves of a bisector split sum to the whole.
func TestBisectorSplitPartitionsArea(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		poly := randomConvexPolygon(rng)
		a := Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		b := Pt(rng.Float64()*2-1, rng.Float64()*2-1)
		if a.Dist(b) < 1e-6 {
			continue
		}
		h := Bisector(a, b)
		a1 := poly.ClipHalfPlane(h).Area()
		a2 := poly.ClipHalfPlane(h.Complement()).Area()
		if math.Abs(a1+a2-poly.Area()) > 1e-6*(1+poly.Area()) {
			t.Fatalf("trial %d: %v + %v != %v", trial, a1, a2, poly.Area())
		}
	}
}

func randomConvexPolygon(rng *rand.Rand) Polygon {
	n := 3 + rng.Intn(10)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*10-5, rng.Float64()*10-5)
	}
	h := ConvexHull(pts)
	if len(h) < 3 {
		return unitSquare()
	}
	return h
}

// Property (quick): polygon containment is invariant under translation.
func TestContainsTranslationInvariance(t *testing.T) {
	sq := unitSquare()
	f := func(qx, qy, dx, dy float64) bool {
		q := clampPt(qx, qy)
		d := clampPt(dx, dy)
		moved := make(Polygon, len(sq))
		for i, v := range sq {
			moved[i] = v.Add(d)
		}
		return sq.Contains(q) == moved.Contains(q.Add(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
