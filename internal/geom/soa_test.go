package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randConvexish returns a polygon whose vertices lie on a jittered circle —
// convex for the clip kernel's purposes (the scalar kernel is the oracle, so
// mild non-convexity only has to be handled identically, not correctly).
func randConvexish(rng *rand.Rand, n int, scale float64) Polygon {
	p := make(Polygon, 0, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * (float64(i) + 0.8*rng.Float64()) / float64(n)
		r := scale * (0.3 + rng.Float64())
		p = append(p, Point{r * math.Cos(ang), r * math.Sin(ang)})
	}
	return p
}

func polyEqualBits(t *testing.T, want Polygon, s *PolySlab, got PolyRef) {
	t.Helper()
	if len(want) != got.N {
		t.Fatalf("vertex count: scalar %d, slab %d", len(want), got.N)
	}
	for i, v := range want {
		g := s.Vertex(got, i)
		if math.Float64bits(v.X) != math.Float64bits(g.X) ||
			math.Float64bits(v.Y) != math.Float64bits(g.Y) {
			t.Fatalf("vertex %d: scalar %v (bits %x,%x), slab %v (bits %x,%x)",
				i, v, math.Float64bits(v.X), math.Float64bits(v.Y),
				g, math.Float64bits(g.X), math.Float64bits(g.Y))
		}
	}
}

// TestClipHalfPlaneSlabMatchesScalar sweeps random polygons and bisector-like
// half-planes and requires the slab clip to be bitwise equal to the scalar
// ClipHalfPlaneInto pipeline, including the dedupe pass.
func TestClipHalfPlaneSlabMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var slab PolySlab
	dst := make(Polygon, 0, 16)
	for trial := 0; trial < 5000; trial++ {
		n := 3 + rng.Intn(8)
		scale := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
		p := randConvexish(rng, n, scale)
		a := Point{scale * (rng.Float64() - 0.5), scale * (rng.Float64() - 0.5)}
		b := Point{scale * (rng.Float64() - 0.5), scale * (rng.Float64() - 0.5)}
		if a.Eq(b) {
			continue
		}
		h := Bisector(a, b)
		if rng.Intn(2) == 0 {
			h = h.Complement()
		}
		want := p.ClipHalfPlaneInto(dst, h)
		slab.Reset()
		r := slab.Append(p)
		got := slab.ClipHalfPlane(r, h)
		polyEqualBits(t, want, &slab, got)
	}
}

// TestClipHalfPlaneSlabDegenerate covers the chains the dedupe pass produces:
// empty input, fully-clipped polygons, and near-duplicate vertices.
func TestClipHalfPlaneSlabDegenerate(t *testing.T) {
	var slab PolySlab
	h := Bisector(Point{0, 0}, Point{1, 0}) // keep x <= 0.5
	cases := []Polygon{
		nil,
		{{2, 0}, {3, 0}, {2.5, 1}},                   // fully outside
		{{0, 0}, {0.1, 0}, {0.1, 0.1}, {0, 0.1}},     // fully inside
		{{0, 0}, {1, 0}, {1, 1}, {0, 1}},             // straddles
		{{0, 0}, {0, 0}, {1, 0}, {1, 1}, {0, 1}},     // duplicate vertex
		{{0.5, 0}, {0.5, 1}, {0.4999999999, 0.5}},    // sliver on the boundary
		{{0, 0}, {1e-12, 1e-12}, {1, 0}, {0.5, 0.5}}, // near-duplicate
	}
	dst := make(Polygon, 0, 16)
	for ci, p := range cases {
		want := p.ClipHalfPlaneInto(dst, h)
		slab.Reset()
		r := slab.Append(p)
		got := slab.ClipHalfPlane(r, h)
		if len(want) != got.N {
			t.Fatalf("case %d: scalar %d verts, slab %d", ci, len(want), got.N)
		}
		polyEqualBits(t, want, &slab, got)
	}
}

// TestAreaBBoxMatchesScalar checks the fused area+bbox pass against the
// separate scalar computations, bit for bit.
func TestAreaBBoxMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var slab PolySlab
	for trial := 0; trial < 2000; trial++ {
		p := randConvexish(rng, 3+rng.Intn(9), math.Pow(10, float64(rng.Intn(5)-2)))
		slab.Reset()
		r := slab.Append(p)
		area, bb := slab.AreaBBox(r)
		if math.Float64bits(area) != math.Float64bits(p.Area()) {
			t.Fatalf("area: scalar %v, slab %v", p.Area(), area)
		}
		want := p.BBox()
		if bb != want {
			t.Fatalf("bbox: scalar %+v, slab %+v", want, bb)
		}
		if m := slab.MaxDistFrom(r, p[0]); math.Float64bits(m) != math.Float64bits(p.MaxDistFrom(p[0])) {
			t.Fatalf("maxdist: scalar %v, slab %v", p.MaxDistFrom(p[0]), m)
		}
	}
}

// TestClipHalfPlaneBatch checks the edge-major batch entry against per-poly
// scalar clips, including the carry-through of collapsed polygons.
func TestClipHalfPlaneBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var slab PolySlab
	polys := make([]Polygon, 6)
	refs := make([]PolyRef, 6)
	slab.Reset()
	for i := range polys {
		polys[i] = randConvexish(rng, 3+rng.Intn(6), 1)
		refs[i] = slab.Append(polys[i])
	}
	clip := Polygon{{-0.4, -0.4}, {0.4, -0.4}, {0.4, 0.4}, {-0.4, 0.4}}
	for e := 0; e < len(clip); e++ {
		h := HalfPlaneFromEdge(clip[e], clip[(e+1)%len(clip)])
		slab.ClipHalfPlaneBatch(refs, h)
		for i := range polys {
			if len(polys[i]) < 3 {
				continue
			}
			polys[i] = polys[i].ClipHalfPlaneInto(make(Polygon, 0, 16), h)
		}
	}
	for i := range polys {
		want := polys[i]
		if len(want) < 3 {
			if refs[i].N >= 3 {
				t.Fatalf("poly %d: scalar collapsed, slab has %d verts", i, refs[i].N)
			}
			continue
		}
		polyEqualBits(t, want, &slab, refs[i])
	}
}

// FuzzBatchClipMatchesScalar fuzzes raw polygon coordinates and half-plane
// coefficients and requires the slab clip to match the scalar
// ClipHalfPlaneInto bitwise — vertex count and every coordinate.
func FuzzBatchClipMatchesScalar(f *testing.F) {
	f.Add(int64(1), 4, 0.0, 0.0, 1.0, 0.0)
	f.Add(int64(2), 6, -3.5, 2.25, 0.5, -0.5)
	f.Add(int64(3), 3, 1e-12, 1e-12, 2e-12, 0.0)
	f.Add(int64(4), 8, 1e6, -1e6, 0.0, 12345.0)
	f.Fuzz(func(t *testing.T, seed int64, n int, ax, ay, bx, by float64) {
		if n < 0 || n > 32 {
			return
		}
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
		}
		rng := rand.New(rand.NewSource(seed))
		p := make(Polygon, 0, n)
		for i := 0; i < n; i++ {
			p = append(p, Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
		}
		a, b := Point{ax, ay}, Point{bx, by}
		var h HalfPlane
		if a.Eq(b) {
			h = HalfPlane{N: Point{1, 1}, C: ax} // coincident: use a raw plane instead
		} else {
			h = Bisector(a, b)
		}
		want := p.ClipHalfPlaneInto(make(Polygon, 0, n+2), h)
		var slab PolySlab
		r := slab.Append(p)
		got := slab.ClipHalfPlane(r, h)
		if len(want) != got.N {
			t.Fatalf("vertex count: scalar %d, slab %d", len(want), got.N)
		}
		for i, v := range want {
			g := slab.Vertex(got, i)
			if math.Float64bits(v.X) != math.Float64bits(g.X) ||
				math.Float64bits(v.Y) != math.Float64bits(g.Y) {
				t.Fatalf("vertex %d differs: scalar %v slab %v", i, v, g)
			}
		}

		// The fast entries (screens + cached classification) must be bitwise
		// equal to the same scalar pipeline, on untrusted input.
		nNorm := h.N.Norm()
		var slab2 PolySlab
		r2 := slab2.Append(p)
		_, bb := slab2.AreaBBox(r2)
		mN := bb.MaxCornerNorm()
		fast, _ := slab2.ClipHalfPlaneFast(r2, h, nNorm, bb, mN, false)
		if len(want) != fast.N {
			t.Fatalf("fast vertex count: scalar %d, slab %d", len(want), fast.N)
		}
		for i, v := range want {
			g := slab2.Vertex(fast, i)
			if math.Float64bits(v.X) != math.Float64bits(g.X) ||
				math.Float64bits(v.Y) != math.Float64bits(g.Y) {
				t.Fatalf("fast vertex %d differs: scalar %v slab %v", i, v, g)
			}
		}

		wantC := p.ClipHalfPlaneInto(make(Polygon, 0, n+2), h.Complement())
		var slab3 PolySlab
		r3 := slab3.Append(p)
		kept, closer, _ := slab3.ClipSplitFast(r3, h, nNorm, bb, mN, false)
		polyEqualBits(t, want, &slab3, kept)
		polyEqualBits(t, wantC, &slab3, closer)
	})
}

// TestClipFastTrustedMatchesScalar exercises the fast entries the way the
// dominating-region walk does: the input of each clip is the (dedupe-stable)
// output of a previous clip emission, passed with trusted=true alongside its
// tracked bounding box. Every step must stay bitwise equal to the scalar
// ClipHalfPlaneInto chain.
func TestClipFastTrustedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var slab PolySlab
	for trial := 0; trial < 3000; trial++ {
		scale := math.Pow(10, float64(rng.Intn(5)-2))
		p := randConvexish(rng, 3+rng.Intn(8), scale)
		slab.Reset()
		r := slab.Append(p)

		// First clip establishes a trusted polygon on both paths.
		a := Point{scale * (rng.Float64() - 0.5), scale * (rng.Float64() - 0.5)}
		b := Point{scale * (rng.Float64() - 0.5), scale * (rng.Float64() - 0.5)}
		if a.Eq(b) {
			continue
		}
		h0 := Bisector(a, b)
		want := p.ClipHalfPlaneInto(make(Polygon, 0, 16), h0)
		r = slab.ClipHalfPlane(r, h0)
		polyEqualBits(t, want, &slab, r)
		if r.N < 3 {
			continue
		}
		_, bb := slab.AreaBBox(r)

		// Chain of trusted fast clips, mixing the single and split entries.
		for step := 0; step < 4; step++ {
			c := Point{scale * (rng.Float64() - 0.5), scale * (rng.Float64() - 0.5)}
			d := Point{scale * 3 * (rng.Float64() - 0.5), scale * 3 * (rng.Float64() - 0.5)}
			if c.Eq(d) {
				continue
			}
			h := Bisector(c, d)
			nNorm := h.N.Norm()
			mN := bb.MaxCornerNorm()
			if step%2 == 0 {
				got, _ := slab.ClipHalfPlaneFast(r, h, nNorm, bb, mN, true)
				want = Polygon(want).ClipHalfPlaneInto(make(Polygon, 0, 16), h)
				polyEqualBits(t, want, &slab, got)
				r = got
			} else {
				kept, closer, _ := slab.ClipSplitFast(r, h, nNorm, bb, mN, true)
				wantC := Polygon(want).ClipHalfPlaneInto(make(Polygon, 0, 16), h.Complement())
				want = Polygon(want).ClipHalfPlaneInto(make(Polygon, 0, 16), h)
				polyEqualBits(t, want, &slab, kept)
				polyEqualBits(t, wantC, &slab, closer)
				r = kept
			}
			if r.N < 3 {
				break
			}
			_, bb = slab.AreaBBox(r)
		}
	}
}
