package geom

import (
	"fmt"
	"math"
)

// Circle is a disk described by its center and radius. The zero value is the
// degenerate disk {origin}.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies inside or on the circle, within tolerance.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= (c.R+Eps)*(c.R+Eps)
}

// ContainsAll reports whether every point in pts lies inside or on c.
func (c Circle) ContainsAll(pts []Point) bool {
	for _, p := range pts {
		if !c.Contains(p) {
			return false
		}
	}
	return true
}

// Area returns the disk area πR².
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("circle{c=%v r=%.6g}", c.Center, c.R)
}

// CircleFrom2 returns the smallest circle through a and b (diameter circle).
func CircleFrom2(a, b Point) Circle {
	return Circle{Center: a.Mid(b), R: a.Dist(b) / 2}
}

// CircleFrom3 returns the circumcircle of the triangle abc. If the points
// are (nearly) collinear it falls back to the smallest circle spanning the
// two farthest of the three points, which is the correct smallest enclosing
// circle for a degenerate triple.
func CircleFrom3(a, b, c Point) Circle {
	// Solve for the circumcenter via the perpendicular-bisector linear
	// system expressed relative to a for numerical stability.
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	scale := (math.Abs(bx)+math.Abs(by))*(math.Abs(cx)+math.Abs(cy)) + 1
	if math.Abs(d) <= Eps*scale {
		// Degenerate: collinear points. The smallest enclosing circle is the
		// diameter circle of the farthest pair.
		ab, ac, bc := a.Dist2(b), a.Dist2(c), b.Dist2(c)
		switch {
		case ab >= ac && ab >= bc:
			return CircleFrom2(a, b)
		case ac >= bc:
			return CircleFrom2(a, c)
		default:
			return CircleFrom2(b, c)
		}
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	center := Point{a.X + ux, a.Y + uy}
	return Circle{Center: center, R: center.Dist(a)}
}

// CirclePolygonIntersectionArea approximates the area of the intersection
// between circle c and convex polygon poly by clipping a fine regular
// polygonal approximation of the circle against poly. n controls the number
// of circle segments (n ≥ 8; larger is more accurate).
func CirclePolygonIntersectionArea(c Circle, poly Polygon, n int) float64 {
	if n < 8 {
		n = 8
	}
	approx := make(Polygon, 0, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		approx = append(approx, Point{
			X: c.Center.X + c.R*math.Cos(th),
			Y: c.Center.Y + c.R*math.Sin(th),
		})
	}
	clipped := approx
	for i := 0; i < len(poly) && len(clipped) > 0; i++ {
		a, b := poly[i], poly[(i+1)%len(poly)]
		clipped = clipped.ClipHalfPlane(HalfPlaneFromEdge(a, b))
	}
	return clipped.Area()
}

// SamplePointsOnCircle returns n points evenly spaced on the circle boundary
// starting at angle phase (radians).
func SamplePointsOnCircle(c Circle, n int, phase float64) []Point {
	if n <= 0 {
		return nil
	}
	return AppendCirclePoints(make([]Point, 0, n), c, n, phase)
}

// AppendCirclePoints appends n points evenly spaced on the circle boundary
// to dst and returns it — the allocation-free form of SamplePointsOnCircle
// for callers with a reusable buffer.
func AppendCirclePoints(dst []Point, c Circle, n int, phase float64) []Point {
	pts := dst
	for i := 0; i < n; i++ {
		th := phase + 2*math.Pi*float64(i)/float64(n)
		pts = append(pts, Point{
			X: c.Center.X + c.R*math.Cos(th),
			Y: c.Center.Y + c.R*math.Sin(th),
		})
	}
	return pts
}
