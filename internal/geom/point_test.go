package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, 4)), Pt(4, 6)},
		{"sub", Pt(1, 2).Sub(Pt(3, 4)), Pt(-2, -2)},
		{"scale", Pt(1, -2).Scale(3), Pt(3, -6)},
		{"lerp mid", Pt(0, 0).Lerp(Pt(2, 4), 0.5), Pt(1, 2)},
		{"lerp zero", Pt(5, 5).Lerp(Pt(9, 9), 0), Pt(5, 5)},
		{"lerp one", Pt(5, 5).Lerp(Pt(9, 9), 1), Pt(9, 9)},
		{"mid", Pt(0, 0).Mid(Pt(4, 2)), Pt(2, 1)},
		{"rot90", Pt(1, 0).Rot90(), Pt(0, 1)},
		{"rot90 y", Pt(0, 1).Rot90(), Pt(-1, 0)},
		{"unit", Pt(3, 4).Unit(), Pt(0.6, 0.8)},
		{"unit zero", Pt(0, 0).Unit(), Pt(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Eq(tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestPointScalarOps(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"dot", Pt(1, 2).Dot(Pt(3, 4)), 11},
		{"cross", Pt(1, 0).Cross(Pt(0, 1)), 1},
		{"cross anti", Pt(0, 1).Cross(Pt(1, 0)), -1},
		{"norm", Pt(3, 4).Norm(), 5},
		{"norm2", Pt(3, 4).Norm2(), 25},
		{"dist", Pt(1, 1).Dist(Pt(4, 5)), 5},
		{"dist2", Pt(1, 1).Dist2(Pt(4, 5)), 25},
		{"angle", Pt(0, 2).Angle(), math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if math.Abs(tt.got-tt.want) > Eps {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestOrientation(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	tests := []struct {
		name string
		c    Point
		want int
	}{
		{"ccw", Pt(0, 1), 1},
		{"cw", Pt(0, -1), -1},
		{"collinear ahead", Pt(2, 0), 0},
		{"collinear behind", Pt(-1, 0), 0},
		{"collinear on", Pt(0.5, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Orientation(a, b, tt.c); got != tt.want {
				t.Errorf("Orientation(%v,%v,%v) = %d, want %d", a, b, tt.c, got, tt.want)
			}
		})
	}
}

func TestOrientationScaleInvariance(t *testing.T) {
	// The predicate must give the same answer at meter and kilometer scales.
	for _, s := range []float64{1e-3, 1, 1e3, 1e6} {
		a, b, c := Pt(0, 0), Pt(s, 0), Pt(s/2, s/3)
		if got := Orientation(a, b, c); got != 1 {
			t.Errorf("scale %g: Orientation = %d, want 1", s, got)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid of empty set did not panic")
		}
	}()
	Centroid(nil)
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	if !b.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	b = b.Expand(Pt(1, 2)).Expand(Pt(-1, 5))
	if b.IsEmpty() {
		t.Fatal("expanded box still empty")
	}
	if b.Min != Pt(-1, 2) || b.Max != Pt(1, 5) {
		t.Errorf("box = %+v", b)
	}
	if got := b.Width(); got != 2 {
		t.Errorf("Width = %v, want 2", got)
	}
	if got := b.Height(); got != 3 {
		t.Errorf("Height = %v, want 3", got)
	}
	if got := b.Center(); !got.Eq(Pt(0, 3.5)) {
		t.Errorf("Center = %v", got)
	}
	if !b.Contains(Pt(0, 3)) || b.Contains(Pt(2, 3)) {
		t.Error("Contains misclassifies")
	}
	u := b.Union(BBox{Min: Pt(0, 0), Max: Pt(3, 3)})
	if u.Min != Pt(-1, 0) || u.Max != Pt(3, 5) {
		t.Errorf("Union = %+v", u)
	}
}

func TestBBoxOf(t *testing.T) {
	b := BBoxOf([]Point{Pt(3, 1), Pt(-2, 4), Pt(0, 0)})
	if b.Min != Pt(-2, 0) || b.Max != Pt(3, 4) {
		t.Errorf("BBoxOf = %+v", b)
	}
	if d := b.Diagonal(); math.Abs(d-math.Hypot(5, 4)) > Eps {
		t.Errorf("Diagonal = %v", d)
	}
	if EmptyBBox().Diagonal() != 0 {
		t.Error("empty box diagonal should be 0")
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if (Point{math.NaN(), 0}).IsFinite() {
		t.Error("NaN point reported finite")
	}
	if (Point{0, math.Inf(1)}).IsFinite() {
		t.Error("Inf point reported finite")
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistanceMetricProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := clampPt(ax, ay), clampPt(bx, by), clampPt(cx, cy)
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-12*(1+a.Dist(b)) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Lerp stays on the segment: |a-lerp| + |lerp-b| == |a-b| for t in [0,1].
func TestLerpOnSegment(t *testing.T) {
	f := func(ax, ay, bx, by, traw float64) bool {
		a, b := clampPt(ax, ay), clampPt(bx, by)
		tt := math.Abs(math.Mod(traw, 1))
		p := a.Lerp(b, tt)
		return math.Abs(a.Dist(p)+p.Dist(b)-a.Dist(b)) <= 1e-9*(1+a.Dist(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// clampPt maps arbitrary quick-generated floats into a sane bounded range so
// the geometric tolerances remain meaningful.
func clampPt(x, y float64) Point {
	c := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e3)
	}
	return Pt(c(x), c(y))
}
