package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSmallestEnclosingCircleSmallCases(t *testing.T) {
	tests := []struct {
		name  string
		pts   []Point
		wantC Point
		wantR float64
	}{
		{"empty", nil, Pt(0, 0), 0},
		{"single", []Point{Pt(3, 4)}, Pt(3, 4), 0},
		{"pair", []Point{Pt(0, 0), Pt(2, 0)}, Pt(1, 0), 1},
		{"equilateral-ish", []Point{Pt(0, 0), Pt(2, 0), Pt(1, math.Sqrt(3))}, Pt(1, math.Sqrt(3)/3), 2 / math.Sqrt(3)},
		{"square", []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}, Pt(0.5, 0.5), math.Sqrt2 / 2},
		{"obtuse triangle", []Point{Pt(0, 0), Pt(4, 0), Pt(1, 0.1)}, Pt(2, 0.05), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := SmallestEnclosingCircle(tt.pts)
			if !c.ContainsAll(tt.pts) {
				t.Fatalf("circle %v does not contain all input points", c)
			}
			if tt.name == "obtuse triangle" {
				// For an obtuse triangle, the SEC is the diameter circle of
				// the longest side; just verify radius ≈ half that side.
				want := Pt(0, 0).Dist(Pt(4, 0)) / 2
				if math.Abs(c.R-want) > 1e-6 {
					t.Errorf("R = %v, want %v", c.R, want)
				}
				return
			}
			if !c.Center.EqTol(tt.wantC, 1e-9) {
				t.Errorf("center = %v, want %v", c.Center, tt.wantC)
			}
			if math.Abs(c.R-tt.wantR) > 1e-9 {
				t.Errorf("R = %v, want %v", c.R, tt.wantR)
			}
		})
	}
}

func TestSmallestEnclosingCircleDuplicates(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(1, 1), Pt(1, 1), Pt(3, 1), Pt(3, 1)}
	c := SmallestEnclosingCircle(pts)
	if !c.Center.EqTol(Pt(2, 1), 1e-9) || math.Abs(c.R-1) > 1e-9 {
		t.Errorf("got %v", c)
	}
}

func TestSmallestEnclosingCircleCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(5, 0), Pt(3, 0)}
	c := SmallestEnclosingCircle(pts)
	if !c.Center.EqTol(Pt(2.5, 0), 1e-9) || math.Abs(c.R-2.5) > 1e-9 {
		t.Errorf("got %v", c)
	}
}

// Property: the SEC contains every input point and no circle through a
// brute-force search over pairs/triples is smaller.
func TestSmallestEnclosingCircleVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(12)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		got := SmallestEnclosingCircle(pts)
		if !got.ContainsAll(pts) {
			t.Fatalf("trial %d: SEC %v misses a point", trial, got)
		}
		want := bruteForceSEC(pts)
		if got.R > want.R+1e-7*(1+want.R) {
			t.Fatalf("trial %d: SEC R=%v > brute-force R=%v", trial, got.R, want.R)
		}
		// It also cannot be smaller than the true minimum.
		if got.R < want.R-1e-7*(1+want.R) {
			t.Fatalf("trial %d: SEC R=%v < brute-force min R=%v (circle misses a point?)", trial, got.R, want.R)
		}
	}
}

// bruteForceSEC finds the minimum enclosing circle by trying all circles
// determined by pairs (as diameter) and triples (circumcircle). O(n⁴) but
// exact; for tests only.
func bruteForceSEC(pts []Point) Circle {
	best := Circle{R: math.Inf(1)}
	consider := func(c Circle) {
		// Tolerant containment for the candidate check.
		for _, p := range pts {
			if c.Center.Dist(p) > c.R+1e-9*(1+c.R) {
				return
			}
		}
		if c.R < best.R {
			best = c
		}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			consider(CircleFrom2(pts[i], pts[j]))
			for k := j + 1; k < len(pts); k++ {
				consider(CircleFrom3(pts[i], pts[j], pts[k]))
			}
		}
	}
	if math.IsInf(best.R, 1) {
		// Degenerate: all points coincide.
		return Circle{Center: pts[0]}
	}
	return best
}

func TestChebyshevCenterMatchesSEC(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 3), Pt(0, 3)}
	center, r := ChebyshevCenter(pts)
	if !center.EqTol(Pt(2, 1.5), 1e-9) {
		t.Errorf("center = %v", center)
	}
	if math.Abs(r-2.5) > 1e-9 {
		t.Errorf("r = %v, want 2.5", r)
	}
}

func TestSECDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Pt(rng.Float64(), rng.Float64())
	}
	a := SmallestEnclosingCircle(pts)
	b := SmallestEnclosingCircle(pts)
	if a != b {
		t.Errorf("SEC not deterministic: %v vs %v", a, b)
	}
	// The in-place variant computes the same circle and must not allocate.
	scratch := append([]Point(nil), pts...)
	if c := SmallestEnclosingCircleInPlace(scratch); c != a {
		t.Errorf("in-place SEC differs: %v vs %v", c, a)
	}
	copy(scratch, pts)
	if allocs := testing.AllocsPerRun(100, func() {
		copy(scratch, pts)
		SmallestEnclosingCircleInPlace(scratch)
	}); allocs > 0 {
		t.Errorf("SmallestEnclosingCircleInPlace allocates %v/op, want 0", allocs)
	}
}

func TestCircleFrom3RightTriangle(t *testing.T) {
	// Circumcircle of a right triangle is centered at the hypotenuse midpoint.
	c := CircleFrom3(Pt(0, 0), Pt(4, 0), Pt(0, 3))
	if !c.Center.EqTol(Pt(2, 1.5), 1e-9) || math.Abs(c.R-2.5) > 1e-9 {
		t.Errorf("got %v", c)
	}
}

func TestCircleFrom3Collinear(t *testing.T) {
	c := CircleFrom3(Pt(0, 0), Pt(1, 0), Pt(2, 0))
	if !c.Center.EqTol(Pt(1, 0), 1e-9) || math.Abs(c.R-1) > 1e-9 {
		t.Errorf("collinear fallback got %v", c)
	}
}

func TestConvexHull(t *testing.T) {
	tests := []struct {
		name     string
		pts      []Point
		wantLen  int
		wantArea float64
	}{
		{"square with interior", []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), Pt(1, 1)}, 4, 4},
		{"triangle", []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1)}, 3, 0.5},
		{"collinear", []Point{Pt(0, 0), Pt(1, 0), Pt(2, 0)}, 2, 0},
		{"duplicates", []Point{Pt(0, 0), Pt(0, 0), Pt(1, 1)}, 2, 0},
		{"single", []Point{Pt(5, 5)}, 1, 0},
		{"empty", nil, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := ConvexHull(tt.pts)
			if len(h) != tt.wantLen {
				t.Fatalf("hull len = %d (%v), want %d", len(h), h, tt.wantLen)
			}
			if math.Abs(h.Area()-tt.wantArea) > Eps {
				t.Errorf("hull area = %v, want %v", h.Area(), tt.wantArea)
			}
			if len(h) >= 3 && !h.IsCCW() {
				t.Error("hull not CCW")
			}
		})
	}
}

// Property: every input point is inside the hull and hull vertices are a
// subset of the input.
func TestConvexHullContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*10, rng.Float64()*10)
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			continue
		}
		for _, p := range pts {
			if !h.Contains(p) {
				t.Fatalf("trial %d: hull does not contain input point %v", trial, p)
			}
		}
		set := make(map[Point]bool, n)
		for _, p := range pts {
			set[p] = true
		}
		for _, v := range h {
			if !set[v] {
				t.Fatalf("trial %d: hull vertex %v not an input point", trial, v)
			}
		}
	}
}

func TestCirclePolygonIntersectionArea(t *testing.T) {
	// Circle fully inside polygon: area ≈ πr².
	big := RectPolygon(BBox{Min: Pt(-10, -10), Max: Pt(10, 10)})
	c := Circle{Center: Pt(0, 0), R: 1}
	got := CirclePolygonIntersectionArea(c, big, 256)
	if math.Abs(got-math.Pi) > 0.01 {
		t.Errorf("inside: got %v, want ~pi", got)
	}
	// Circle centered on an edge: half the disk.
	half := RectPolygon(BBox{Min: Pt(0, -10), Max: Pt(10, 10)})
	got = CirclePolygonIntersectionArea(c, half, 256)
	if math.Abs(got-math.Pi/2) > 0.01 {
		t.Errorf("half: got %v, want ~pi/2", got)
	}
	// Circle fully outside.
	got = CirclePolygonIntersectionArea(Circle{Center: Pt(-5, 0), R: 1}, half, 64)
	if got > 1e-9 {
		t.Errorf("outside: got %v, want 0", got)
	}
}

func TestSamplePointsOnCircle(t *testing.T) {
	c := Circle{Center: Pt(2, 3), R: 5}
	pts := SamplePointsOnCircle(c, 16, 0.1)
	if len(pts) != 16 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Dist(c.Center)-5) > 1e-9 {
			t.Errorf("sample %v not on circle", p)
		}
	}
	if SamplePointsOnCircle(c, 0, 0) != nil {
		t.Error("n=0 should return nil")
	}
}
