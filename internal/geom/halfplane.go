package geom

import (
	"fmt"
	"math"
)

// HalfPlane represents the closed half-plane {p : N·p ≤ C}, i.e. the set of
// points on the non-positive side of the directed line N·p = C. N need not
// be normalized, but predicates scale tolerances with ‖N‖ so callers may
// pass raw bisector coefficients.
type HalfPlane struct {
	N Point   // outward normal
	C float64 // offset: interior satisfies N·p ≤ C
}

// String implements fmt.Stringer.
func (h HalfPlane) String() string {
	return fmt.Sprintf("halfplane{%.6g·x + %.6g·y ≤ %.6g}", h.N.X, h.N.Y, h.C)
}

// Contains reports whether p lies in the closed half-plane, within a
// tolerance scaled by the normal's magnitude.
func (h HalfPlane) Contains(p Point) bool {
	return h.N.Dot(p)-h.C <= Eps*(1+h.N.Norm()*(1+p.Norm()))
}

// Eval returns the signed value N·p − C (negative inside, positive outside).
func (h HalfPlane) Eval(p Point) float64 { return h.N.Dot(p) - h.C }

// Complement returns the closed complement half-plane {p : N·p ≥ C},
// expressed as {p : (−N)·p ≤ −C}. The shared boundary line belongs to both,
// which is the correct convention for partitioning by a bisector: measure-
// zero overlap does not affect any area computation.
func (h HalfPlane) Complement() HalfPlane {
	return HalfPlane{N: h.N.Scale(-1), C: -h.C}
}

// HalfPlaneFromEdge returns the half-plane to the left of the directed edge
// a→b. A counter-clockwise polygon is the intersection of the half-planes of
// its directed edges.
func HalfPlaneFromEdge(a, b Point) HalfPlane {
	d := b.Sub(a)
	// Left of a→b means cross(d, p−a) ≥ 0  ⇔  (−d.Y, d.X)·p ≥ (−d.Y, d.X)·a
	// ⇔ (d.Y, −d.X)·p ≤ (d.Y, −d.X)·a.
	n := Point{d.Y, -d.X}
	return HalfPlane{N: n, C: n.Dot(a)}
}

// Bisector returns the half-plane of points at least as close to a as to b:
// {p : ‖p−a‖ ≤ ‖p−b‖}. It panics if a and b coincide (the bisector is
// undefined).
func Bisector(a, b Point) HalfPlane {
	if a.Eq(b) {
		panic(fmt.Sprintf("geom: Bisector of coincident points %v", a))
	}
	// ‖p−a‖² ≤ ‖p−b‖²  ⇔  2(b−a)·p ≤ ‖b‖² − ‖a‖²
	n := b.Sub(a).Scale(2)
	return HalfPlane{N: n, C: b.Norm2() - a.Norm2()}
}

// LineIntersection returns the intersection point of the boundary lines of
// h1 and h2 and ok=false if the lines are (nearly) parallel.
func LineIntersection(h1, h2 HalfPlane) (Point, bool) {
	det := h1.N.Cross(h2.N)
	scale := h1.N.Norm()*h2.N.Norm() + 1
	if math.Abs(det) <= Eps*scale {
		return Point{}, false
	}
	x := (h1.C*h2.N.Y - h2.C*h1.N.Y) / det
	y := (h1.N.X*h2.C - h2.N.X*h1.C) / det
	return Point{x, y}, true
}
