package geom

import "math"

// Structure-of-arrays polygon arena: the batch form of the half-plane
// clipping kernel. Vertices of many polygons live in two parallel []float64
// slabs (X and Y), and a polygon is a PolyRef — an (offset, length) window
// into the slabs. Clipping appends its output at the slab tail, so a whole
// color class of dominating-region walks runs against one pair of hot,
// contiguous arrays instead of a free-list of scattered []Point buffers.
//
// Every predicate and every arithmetic step routes through the exact same
// functions as the scalar pipeline (HalfPlane.Eval, Point.Norm,
// intersectEdgePlane, BBox.Expand, Point.Cross), in the exact same order, so
// a clip of the same vertices against the same half-plane produces bitwise-
// identical output — the property the engine's bit-identity matrices gate
// on. The scalar path (Polygon.ClipHalfPlaneInto) stays as the oracle.

// PolyRef is a polygon stored in a PolySlab: vertices i ∈ [Off, Off+N).
type PolyRef struct {
	Off int // index of the first vertex in the slab
	N   int // vertex count
}

// PolySlab is a reusable structure-of-arrays vertex arena. One PolySlab
// serves one goroutine; the zero value is ready to use, and buffers grow on
// demand and are retained across Resets.
type PolySlab struct {
	XS, YS []float64

	// Classification scratch of the fast clip entries: the signed half-plane
	// value and the scalar pipeline's per-vertex tolerance for each vertex of
	// the polygon last classified. Stored so the emission passes (and the
	// complement's, whose value is the exact negation) never re-evaluate.
	vals, tols []float64
}

// Reset discards all polygons while keeping the slab capacity.
func (s *PolySlab) Reset() {
	s.XS = s.XS[:0]
	s.YS = s.YS[:0]
}

// Len returns the current number of vertices stored in the slab.
func (s *PolySlab) Len() int { return len(s.XS) }

// Vertex returns vertex i of the polygon r.
func (s *PolySlab) Vertex(r PolyRef, i int) Point {
	return Point{s.XS[r.Off+i], s.YS[r.Off+i]}
}

func (s *PolySlab) push(p Point) {
	s.XS = append(s.XS, p.X)
	s.YS = append(s.YS, p.Y)
}

// Append copies the vertices of p into the slab and returns its ref.
func (s *PolySlab) Append(p Polygon) PolyRef {
	r := PolyRef{Off: len(s.XS), N: len(p)}
	for _, v := range p {
		s.push(v)
	}
	return r
}

// AppendTo appends the vertices of r to dst and returns it.
func (s *PolySlab) AppendTo(dst []Point, r PolyRef) []Point {
	for i := 0; i < r.N; i++ {
		dst = append(dst, s.Vertex(r, i))
	}
	return dst
}

// ClipHalfPlane clips the convex polygon r against the closed half-plane h,
// writing the result at the slab tail and returning its ref. It is the slab
// form of Polygon.ClipHalfPlaneInto: same classification tolerances, same
// intersection arithmetic, same consecutive-duplicate removal, so the output
// vertices are bitwise equal to the scalar clip of the same input. The input
// polygon is not modified.
func (s *PolySlab) ClipHalfPlane(r PolyRef, h HalfPlane) PolyRef {
	out := PolyRef{Off: len(s.XS)}
	n := r.N
	if n == 0 {
		return out
	}
	// Pre-grow for the worst case (each edge emits an intersection plus a
	// kept vertex) so the emission loop never reallocates, then pin the input
	// window — growth copies, so the offsets stay valid either way.
	s.XS = growFloats(s.XS, out.Off+2*n)
	s.YS = growFloats(s.YS, out.Off+2*n)
	xs := s.XS[r.Off : r.Off+n]
	ys := s.YS[r.Off : r.Off+n]
	// Tolerance scaled by normal magnitude and coordinate size keeps the
	// classification stable for raw (unnormalized) bisector coefficients.
	// The pre-dedupe bounding box is accumulated while emitting (the scalar
	// path recomputes it afterward; Expand order is identical).
	prev := Point{xs[n-1], ys[n-1]}
	prevVal := h.Eval(prev)
	nNorm := h.N.Norm()
	prevIn := prevVal <= Eps*(1+nNorm*(1+prev.Norm()))
	bb := EmptyBBox()
	for i := 0; i < n; i++ {
		cur := Point{xs[i], ys[i]}
		curVal := h.Eval(cur)
		curIn := curVal <= Eps*(1+nNorm*(1+cur.Norm()))
		switch {
		case prevIn && curIn:
			bb = bb.Expand(cur)
			s.push(cur)
		case prevIn && !curIn:
			v := intersectEdgePlane(prev, cur, prevVal, curVal)
			bb = bb.Expand(v)
			s.push(v)
		case !prevIn && curIn:
			v := intersectEdgePlane(prev, cur, prevVal, curVal)
			bb = bb.Expand(v)
			s.push(v)
			bb = bb.Expand(cur)
			s.push(cur)
		}
		prev, prevVal, prevIn = cur, curVal, curIn
	}
	out.N = len(s.XS) - out.Off
	return s.dedupeTail(out, bb)
}

// dedupeTail is dedupeInPlace on the slab tail: it removes consecutive
// (near-)duplicate vertices of the just-emitted polygon out (which must end
// at the slab tail), truncates the slab to the compacted length, and returns
// the shortened ref. bb is the bounding box of the pre-dedupe vertices —
// exactly what dedupeInPlace derives its tolerance from.
func (s *PolySlab) dedupeTail(out PolyRef, bb BBox) PolyRef {
	if out.N == 0 {
		return out
	}
	// Tolerance proportional to polygon size avoids collapsing legitimate
	// short edges of tiny cells while removing clip artifacts.
	tol := Eps * (1 + bb.Diagonal())
	w := 0
	for i := 0; i < out.N; i++ {
		v := s.Vertex(out, i)
		if w == 0 || !s.Vertex(out, w-1).EqTol(v, tol) {
			s.XS[out.Off+w] = v.X
			s.YS[out.Off+w] = v.Y
			w++
		}
	}
	for w >= 2 && s.Vertex(out, 0).EqTol(Point{s.XS[out.Off+w-1], s.YS[out.Off+w-1]}, tol) {
		w--
	}
	out.N = w
	s.XS = s.XS[:out.Off+w]
	s.YS = s.YS[:out.Off+w]
	return out
}

// ClipHalfPlaneBatch clips every live polygon in refs against h in place:
// refs[i] is replaced by the ref of its clipped result. Polygons already
// collapsed below 3 vertices are carried through untouched — the scalar
// pipeline stops clipping those, and re-clipping a degenerate chain could
// resurrect vertices. This is the batch entry the ring-closure path uses:
// edge-major iteration keeps each clipping round's output contiguous.
func (s *PolySlab) ClipHalfPlaneBatch(refs []PolyRef, h HalfPlane) {
	for i, r := range refs {
		if r.N < 3 {
			continue
		}
		refs[i] = s.ClipHalfPlane(r, h)
	}
}

// Area returns the (positive) shoelace area of r — Polygon.Area on the slab,
// same accumulation order.
func (s *PolySlab) Area(r PolyRef) float64 {
	a, _ := s.AreaBBox(r)
	return a
}

// AreaBBox returns the (positive) shoelace area and the bounding box of r in
// one pass. The area accumulates p[i] × p[(i+1) mod n] in index order and
// the box expands in index order — bitwise identical to Polygon.Area and
// BBoxOf computed separately.
func (s *PolySlab) AreaBBox(r PolyRef) (float64, BBox) {
	bb := EmptyBBox()
	xs := s.XS[r.Off : r.Off+r.N]
	ys := s.YS[r.Off : r.Off+r.N]
	if r.N < 3 {
		for i := range xs {
			bb = bb.Expand(Point{xs[i], ys[i]})
		}
		return 0, bb
	}
	var sum float64
	for i := 0; i < r.N; i++ {
		j := i + 1
		if j == r.N {
			j = 0
		}
		v := Point{xs[i], ys[i]}
		sum += v.Cross(Point{xs[j], ys[j]})
		bb = bb.Expand(v)
	}
	return math.Abs(sum / 2), bb
}

// MaxDistFrom returns the largest distance from q to any vertex of r —
// Polygon.MaxDistFrom on the slab.
func (s *PolySlab) MaxDistFrom(r PolyRef, q Point) float64 {
	var m float64
	xs := s.XS[r.Off : r.Off+r.N]
	ys := s.YS[r.Off : r.Off+r.N]
	for i := range xs {
		if d := q.Dist(Point{xs[i], ys[i]}); d > m {
			m = d
		}
	}
	return m
}

// growFloats ensures cap(b) >= need without changing b's contents or length.
func growFloats(b []float64, need int) []float64 {
	if cap(b) >= need {
		return b
	}
	c := 2 * cap(b)
	if c < need {
		c = need
	}
	nb := make([]float64, len(b), c)
	copy(nb, b)
	return nb
}

// Fast clip entries: the dominating-region walk clips the same shrinking
// polygon against one bisector per visited generator, and in the converged
// regime nearly every one of those clips is a no-op — the polygon lies
// entirely on the kept side. The entries below recognize those cases without
// touching the vertices, via two O(1) screens over the polygon's (caller-
// tracked) bounding box, and fall back to an exact per-vertex classification
// whose values are computed once and shared by the kept-side and complement
// emissions. Every accepted shortcut is bitwise-equivalent to running the
// full scalar pipeline (classify → emit → dedupe): the screens only fire when
// the scalar outcome is forced, with a wide float-error margin on top of the
// scalar tolerance band (Eps-scaled, ~10⁶ × the double-precision rounding
// error of the evaluations involved), and ambiguous polygons take the exact
// path.
//
// "Trusted" inputs are polygons known to be dedupe-stable: running the scalar
// dedupe pass over them removes nothing. Every polygon built by a clip
// emission is trusted from then on — dedupeTail leaves no consecutive pair
// within its tolerance, and every later clip of the polygon (or of any piece
// of it) sees an equal or smaller bounding box, hence an equal or smaller
// tolerance. For a trusted input a provably all-inside clip can return the
// input ref unchanged; an untrusted input (the walk's entry pieces) must
// still be copied through the dedupe pass, because the scalar pipeline would
// dedupe it.

// MaxCornerNorm returns an upper bound on the distance from the origin to
// any point of b: the norm of the componentwise farthest corner.
func (b BBox) MaxCornerNorm() float64 {
	mx := math.Max(math.Abs(b.Min.X), math.Abs(b.Max.X))
	my := math.Max(math.Abs(b.Min.Y), math.Abs(b.Max.Y))
	return math.Sqrt(mx*mx + my*my)
}

// bbMaxEval returns h.Eval at the bounding-box corner that maximizes it;
// no point inside bb evaluates (meaningfully) higher. bbMinEval likewise.
func bbMaxEval(h HalfPlane, bb BBox) float64 {
	c := bb.Min
	if h.N.X >= 0 {
		c.X = bb.Max.X
	}
	if h.N.Y >= 0 {
		c.Y = bb.Max.Y
	}
	return h.Eval(c)
}

func bbMinEval(h HalfPlane, bb BBox) float64 {
	c := bb.Max
	if h.N.X >= 0 {
		c.X = bb.Min.X
	}
	if h.N.Y >= 0 {
		c.Y = bb.Min.Y
	}
	return h.Eval(c)
}

// classify evaluates h at every vertex of r with the scalar clip's exact
// per-vertex tolerance, caching values and tolerances in the slab scratch.
// It reports the four aggregate facts the fast clips dispatch on: every
// vertex inside h (allIn), none inside h (allOut), every vertex inside the
// complement (cAllIn), and none inside the complement (cEmpty). The
// complement's value is the exact negation of h's and its tolerance is
// identical (|−N| = |N| bitwise), so one pass decides both sides.
func (s *PolySlab) classify(r PolyRef, h HalfPlane, nNorm float64) (allIn, allOut, cAllIn, cEmpty bool) {
	n := r.N
	s.vals = growFloats(s.vals[:0], n)[:n]
	s.tols = growFloats(s.tols[:0], n)[:n]
	xs := s.XS[r.Off : r.Off+n]
	ys := s.YS[r.Off : r.Off+n]
	allIn, allOut, cAllIn, cEmpty = true, true, true, true
	for i := 0; i < n; i++ {
		v := Point{xs[i], ys[i]}
		val := h.Eval(v)
		tol := Eps * (1 + nNorm*(1+v.Norm()))
		s.vals[i], s.tols[i] = val, tol
		if val <= tol {
			allOut = false
		} else {
			allIn = false
		}
		if -val <= tol {
			cEmpty = false
		} else {
			cAllIn = false
		}
	}
	return allIn, allOut, cAllIn, cEmpty
}

// emitClip emits the clip of r against the classified half-plane (neg=false)
// or its complement (neg=true) from the cached classification — the same
// emission and dedupe the scalar pipeline performs, with the evaluations
// read back instead of recomputed. Negating a cached value is exact, and the
// complement's intersection parameter t = (−va)/((−va)−(−vb)) equals
// va/(va−vb) bitwise, so the emitted vertices match a from-scratch complement
// clip bit for bit.
func (s *PolySlab) emitClip(r PolyRef, neg bool) PolyRef {
	out := PolyRef{Off: len(s.XS)}
	n := r.N
	if n == 0 {
		return out
	}
	s.XS = growFloats(s.XS, out.Off+2*n)
	s.YS = growFloats(s.YS, out.Off+2*n)
	xs := s.XS[r.Off : r.Off+n]
	ys := s.YS[r.Off : r.Off+n]
	vals := s.vals[:n]
	tols := s.tols[:n]
	sign := 1.0
	if neg {
		sign = -1.0
	}
	prev := Point{xs[n-1], ys[n-1]}
	prevVal := sign * vals[n-1]
	prevIn := prevVal <= tols[n-1]
	bb := EmptyBBox()
	for i := 0; i < n; i++ {
		cur := Point{xs[i], ys[i]}
		curVal := sign * vals[i]
		curIn := curVal <= tols[i]
		switch {
		case prevIn && curIn:
			bb = bb.Expand(cur)
			s.push(cur)
		case prevIn && !curIn:
			v := intersectEdgePlane(prev, cur, prevVal, curVal)
			bb = bb.Expand(v)
			s.push(v)
		case !prevIn && curIn:
			v := intersectEdgePlane(prev, cur, prevVal, curVal)
			bb = bb.Expand(v)
			s.push(v)
			bb = bb.Expand(cur)
			s.push(cur)
		}
		prev, prevVal, prevIn = cur, curVal, curIn
	}
	out.N = len(s.XS) - out.Off
	return s.dedupeTail(out, bb)
}

// copyDedupe runs the scalar pipeline's all-inside outcome for an untrusted
// input: copy the vertices and dedupe them with the tolerance derived from
// bb (the exact bounding box of r's vertices — what the scalar dedupe would
// compute over the emitted copy). If nothing is removed the copy is rewound
// and the input ref returned with same=true; the input was dedupe-stable
// after all.
func (s *PolySlab) copyDedupe(r PolyRef, bb BBox) (PolyRef, bool) {
	out := PolyRef{Off: len(s.XS), N: r.N}
	s.XS = append(s.XS, s.XS[r.Off:r.Off+r.N]...)
	s.YS = append(s.YS, s.YS[r.Off:r.Off+r.N]...)
	out = s.dedupeTail(out, bb)
	if out.N == r.N {
		s.XS = s.XS[:out.Off]
		s.YS = s.YS[:out.Off]
		return r, true
	}
	return out, false
}

// ClipHalfPlaneFast is ClipHalfPlane for the walk's budget-0 step: clip r
// against h, returning (out, true) with out == r untouched when the clip is
// provably the identity. The caller supplies nNorm = h.N.Norm(), r's exact
// bounding box bb, and mN = bb.MaxCornerNorm() (an upper bound on any
// vertex's distance from the origin), all tracked across the walk; trusted
// marks r dedupe-stable.
func (s *PolySlab) ClipHalfPlaneFast(r PolyRef, h HalfPlane, nNorm float64, bb BBox, mN float64, trusted bool) (PolyRef, bool) {
	// Screen 1: every bb point is inside h by at least half the minimum
	// vertex tolerance — the clip keeps every vertex.
	if bbMaxEval(h, bb) <= 0.5*Eps*(1+nNorm) {
		if trusted {
			return r, true
		}
		return s.copyDedupe(r, bb)
	}
	// Screen 2: every bb point is outside h by at least twice the maximum
	// vertex tolerance — the clip keeps nothing.
	tolMax := Eps * (1 + nNorm*(1+mN))
	if bbMinEval(h, bb) > 2*tolMax {
		return PolyRef{Off: len(s.XS)}, false
	}
	allIn, allOut, _, _ := s.classify(r, h, nNorm)
	if allOut {
		return PolyRef{Off: len(s.XS)}, false
	}
	if allIn && trusted {
		return r, true
	}
	out := s.emitClip(r, false)
	if allIn && out.N == r.N {
		// The emission was the input verbatim and the dedupe removed nothing:
		// rewind the copy, the input ref is the result.
		s.XS = s.XS[:out.Off]
		s.YS = s.YS[:out.Off]
		return r, true
	}
	return out, false
}

// ClipSplitFast serves the walk's budget branch: one classification yields
// both the kept side (clip against h) and the closer side (clip against the
// complement), each with the identity/empty shortcuts of ClipHalfPlaneFast.
// keptSame reports kept == r untouched. The bbox screens here use the strict
// band-free margins in both directions, because a polygon hugging the
// bisector line legitimately produces a sliver on the complement side that
// the scalar pipeline goes on to area-test — only polygons clear of the
// whole tolerance band may skip that.
func (s *PolySlab) ClipSplitFast(r PolyRef, h HalfPlane, nNorm float64, bb BBox, mN float64, trusted bool) (kept, closer PolyRef, keptSame bool) {
	tolMax := Eps * (1 + nNorm*(1+mN))
	if bbMaxEval(h, bb) < -2*tolMax {
		// Strictly inside h, clear of the band: kept is r, closer is empty.
		closer = PolyRef{Off: len(s.XS)}
		if trusted {
			return r, closer, true
		}
		kept, same := s.copyDedupe(r, bb)
		return kept, PolyRef{Off: len(s.XS)}, same
	}
	if bbMinEval(h, bb) > 2*tolMax {
		// Strictly outside h: kept is empty, closer is r.
		if trusted {
			return PolyRef{Off: len(s.XS)}, r, false
		}
		closer, _ = s.copyDedupe(r, bb)
		return PolyRef{Off: len(s.XS)}, closer, false
	}
	allIn, allOut, cAllIn, cEmpty := s.classify(r, h, nNorm)
	// Closer side first — the order the scalar walk emits in. The two
	// emissions read only the input window and the cached classification, so
	// the order cannot affect any value.
	switch {
	case cEmpty:
		closer = PolyRef{Off: len(s.XS)}
	case cAllIn && trusted:
		closer = r
	case cAllIn:
		closer, _ = s.copyDedupe(r, bb)
	default:
		closer = s.emitClip(r, true)
	}
	switch {
	case allOut:
		kept = PolyRef{Off: len(s.XS)}
	case allIn && trusted:
		kept, keptSame = r, true
	default:
		kept = s.emitClip(r, false)
		if allIn && kept.N == r.N {
			s.XS = s.XS[:kept.Off]
			s.YS = s.YS[:kept.Off]
			kept, keptSame = r, true
		}
	}
	return kept, closer, keptSame
}
