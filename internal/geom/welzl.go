package geom

import "math/rand"

// SmallestEnclosingCircle computes the minimum enclosing circle of pts using
// Welzl's randomized incremental algorithm [Welzl 1991], the method the
// LAACAD paper prescribes for computing Chebyshev centers of dominating
// regions (the Chebyshev center of a polygon is the center of the smallest
// circle enclosing its vertices).
//
// The expected running time is O(n). rng drives the randomized insertion
// order; passing a seeded source makes the computation deterministic. A nil
// rng uses a fixed-seed source, so results are reproducible by default.
//
// Degenerate inputs are handled: an empty slice yields the zero circle and a
// single point yields a zero-radius circle at that point.
func SmallestEnclosingCircle(pts []Point, rng *rand.Rand) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{Center: pts[0]}
	case 2:
		return CircleFrom2(pts[0], pts[1])
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	shuffled := make([]Point, len(pts))
	copy(shuffled, pts)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	c := Circle{Center: shuffled[0]}
	for i := 1; i < len(shuffled); i++ {
		if !c.Contains(shuffled[i]) {
			c = secWithOnePoint(shuffled[:i], shuffled[i])
		}
	}
	return c
}

// secWithOnePoint returns the smallest circle enclosing pts that has q on
// its boundary.
func secWithOnePoint(pts []Point, q Point) Circle {
	c := Circle{Center: q}
	for i := 0; i < len(pts); i++ {
		if !c.Contains(pts[i]) {
			c = secWithTwoPoints(pts[:i], pts[i], q)
		}
	}
	return c
}

// secWithTwoPoints returns the smallest circle enclosing pts that has both
// q1 and q2 on its boundary.
func secWithTwoPoints(pts []Point, q1, q2 Point) Circle {
	c := CircleFrom2(q1, q2)
	for i := 0; i < len(pts); i++ {
		if !c.Contains(pts[i]) {
			c = CircleFrom3(q1, q2, pts[i])
		}
	}
	return c
}

// ChebyshevCenter returns the Chebyshev center (Definition 2 in the paper)
// of the point set pts — the point minimizing the maximum distance to any
// point of the set — together with that maximum distance. It is the center
// and radius of the smallest enclosing circle.
func ChebyshevCenter(pts []Point, rng *rand.Rand) (Point, float64) {
	c := SmallestEnclosingCircle(pts, rng)
	return c.Center, c.R
}
