package geom

import "math"

// SmallestEnclosingCircle computes the minimum enclosing circle of pts using
// Welzl's randomized incremental algorithm [Welzl 1991], the method the
// LAACAD paper prescribes for computing Chebyshev centers of dominating
// regions (the Chebyshev center of a polygon is the center of the smallest
// circle enclosing its vertices).
//
// The insertion order that gives the algorithm its expected-O(n) running
// time is a deterministic permutation derived purely from the input
// vertices (a splitmix64-keyed Fisher–Yates shuffle seeded by hashing the
// coordinate bits), so the function is a pure value-level function of pts:
// the same vertex sequence always produces the bit-identical circle, on any
// machine, with no RNG state threaded through callers. This is what makes
// the deployment engine's round outcomes cacheable.
//
// Degenerate inputs are handled: an empty slice yields the zero circle and a
// single point yields a zero-radius circle at that point.
func SmallestEnclosingCircle(pts []Point) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{Center: pts[0]}
	case 2:
		return CircleFrom2(pts[0], pts[1])
	}
	shuffled := make([]Point, len(pts))
	copy(shuffled, pts)
	return SmallestEnclosingCircleInPlace(shuffled)
}

// SmallestEnclosingCircleInPlace is the allocation-free form of
// SmallestEnclosingCircle: it permutes pts in place (the deterministic
// insertion-order shuffle) and computes the circle directly over the
// permuted slice. Callers that own a scratch copy of the vertices — the
// dominating-region hot path — use this to avoid the defensive copy.
func SmallestEnclosingCircleInPlace(pts []Point) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{Center: pts[0]}
	case 2:
		return CircleFrom2(pts[0], pts[1])
	}
	permuteDeterministic(pts)
	c := Circle{Center: pts[0]}
	for i := 1; i < len(pts); i++ {
		if !c.Contains(pts[i]) {
			c = secWithOnePoint(pts[:i], pts[i])
		}
	}
	return c
}

// permuteDeterministic applies a Fisher–Yates shuffle to pts whose swap
// indices come from a splitmix64 stream seeded by hashing the coordinate
// bits of the input. The permutation is a pure function of the vertex
// sequence: statistically random enough to preserve Welzl's expected-O(n)
// bound, yet bit-reproducible without any external RNG.
func permuteDeterministic(pts []Point) {
	state := Mix64(0x9E3779B97F4A7C15 ^ uint64(len(pts)))
	for _, p := range pts {
		state = Mix64(state ^ math.Float64bits(p.X))
		state = Mix64(state ^ math.Float64bits(p.Y))
	}
	for i := len(pts) - 1; i > 0; i-- {
		state += 0x9E3779B97F4A7C15
		j := int(Finalize64(state) % uint64(i+1))
		pts[i], pts[j] = pts[j], pts[i]
	}
}

// Mix64 is the splitmix64 increment-then-finalize step — a bijective
// avalanche mix. It seeds the deterministic-Welzl shuffle here and the
// per-node RNG streams in the deployment engine (one shared definition, so
// the two can never drift).
func Mix64(x uint64) uint64 { return Finalize64(x + 0x9E3779B97F4A7C15) }

// Finalize64 is the splitmix64 output finalizer [Steele, Lea, Flood 2014].
func Finalize64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// secWithOnePoint returns the smallest circle enclosing pts that has q on
// its boundary.
func secWithOnePoint(pts []Point, q Point) Circle {
	c := Circle{Center: q}
	for i := 0; i < len(pts); i++ {
		if !c.Contains(pts[i]) {
			c = secWithTwoPoints(pts[:i], pts[i], q)
		}
	}
	return c
}

// secWithTwoPoints returns the smallest circle enclosing pts that has both
// q1 and q2 on its boundary.
func secWithTwoPoints(pts []Point, q1, q2 Point) Circle {
	c := CircleFrom2(q1, q2)
	for i := 0; i < len(pts); i++ {
		if !c.Contains(pts[i]) {
			c = CircleFrom3(q1, q2, pts[i])
		}
	}
	return c
}

// ChebyshevCenter returns the Chebyshev center (Definition 2 in the paper)
// of the point set pts — the point minimizing the maximum distance to any
// point of the set — together with that maximum distance. It is the center
// and radius of the smallest enclosing circle, and like
// SmallestEnclosingCircle it is a pure, deterministic function of pts.
func ChebyshevCenter(pts []Point) (Point, float64) {
	c := SmallestEnclosingCircle(pts)
	return c.Center, c.R
}

// ChebyshevCenterInPlace is ChebyshevCenter without the defensive copy: pts
// is permuted in place. Use when pts is already a scratch buffer.
func ChebyshevCenterInPlace(pts []Point) (Point, float64) {
	c := SmallestEnclosingCircleInPlace(pts)
	return c.Center, c.R
}
