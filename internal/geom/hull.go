package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone-chain algorithm. Collinear points on the hull boundary
// are dropped. Degenerate inputs return what hull exists: 0, 1 or 2 points.
// The input slice is not modified.
func ConvexHull(pts []Point) Polygon {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Remove exact duplicates to keep the chain construction simple.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 1 {
		return Polygon{uniq[0]}
	}
	if len(uniq) == 2 {
		return Polygon{uniq[0], uniq[1]}
	}

	hull := make(Polygon, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}
