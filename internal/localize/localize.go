// Package localize builds per-node local coordinate systems from ranging
// (pairwise distance) measurements only.
//
// The paper notes that LAACAD does not require global location information:
// each node constructs a local coordinate system from ranging to nearby
// nodes (it cites an MDS-based embedding [28]). Because every geometric
// quantity LAACAD computes — bisectors, dominating regions, Chebyshev
// centers, motion vectors — is equivariant under rigid motions, a frame that
// is correct up to rotation, translation and reflection is exactly as good
// as ground truth. This package implements the classical trilateration
// construction of such a frame and the error metrics used to validate it.
package localize

import (
	"fmt"
	"math"

	"laacad/internal/geom"
)

// Frame is a local coordinate system anchored at a center node: the center
// maps to the origin and one reference neighbor defines the +x axis. Coords
// holds the local position of every input node in input order.
type Frame struct {
	Coords []geom.Point
}

// Build constructs a local frame for the node at index center from the
// pairwise distance oracle dist (dist(i, j) must return the measured
// distance between nodes i and j; it is assumed symmetric). n is the number
// of nodes (indices 0..n−1). axis is the neighbor placed on the +x axis and
// witness a third non-collinear node that fixes the reflection.
//
// Build returns an error if the three anchors are (nearly) collinear or
// coincident, or if some node's distances are geometrically inconsistent
// beyond tolerance (negative squared coordinates are clamped).
func Build(n, center, axis, witness int, dist func(i, j int) float64) (*Frame, error) {
	if center == axis || center == witness || axis == witness {
		return nil, fmt.Errorf("localize: anchors must be distinct (%d,%d,%d)", center, axis, witness)
	}
	dCA := dist(center, axis)
	if dCA <= geom.Eps {
		return nil, fmt.Errorf("localize: center and axis nodes coincide")
	}
	// Witness position from its distances to center and axis.
	wx, wy2 := trilaterate1D(dist(center, witness), dist(axis, witness), dCA)
	if wy2 <= geom.Eps {
		return nil, fmt.Errorf("localize: witness is collinear with center and axis")
	}
	wy := math.Sqrt(wy2) // choose +y for the witness; this fixes chirality

	coords := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		switch i {
		case center:
			coords[i] = geom.Pt(0, 0)
		case axis:
			coords[i] = geom.Pt(dCA, 0)
		case witness:
			coords[i] = geom.Pt(wx, wy)
		default:
			x, y2 := trilaterate1D(dist(center, i), dist(axis, i), dCA)
			if y2 < 0 {
				y2 = 0
			}
			y := math.Sqrt(y2)
			// Resolve the sign of y with the distance to the witness.
			dPlus := math.Abs(geom.Pt(x, y).Dist(geom.Pt(wx, wy)) - dist(witness, i))
			dMinus := math.Abs(geom.Pt(x, -y).Dist(geom.Pt(wx, wy)) - dist(witness, i))
			if dMinus < dPlus {
				y = -y
			}
			coords[i] = geom.Pt(x, y)
		}
	}
	return &Frame{Coords: coords}, nil
}

// trilaterate1D returns the x coordinate and squared y coordinate of a point
// at distance dC from the origin and dA from (base, 0).
func trilaterate1D(dC, dA, base float64) (x, y2 float64) {
	x = (dC*dC - dA*dA + base*base) / (2 * base)
	y2 = dC*dC - x*x
	return x, y2
}

// RigidError returns the root-mean-square distance between the frame's
// coordinates and the ground-truth positions after the best rigid alignment
// (rotation + translation, with reflection allowed) — a Procrustes
// residual. A frame built from exact distances has error ~0.
func RigidError(frame *Frame, truth []geom.Point) float64 {
	if len(frame.Coords) != len(truth) {
		panic("localize: RigidError length mismatch")
	}
	n := len(truth)
	if n == 0 {
		return 0
	}
	ca := geom.Centroid(frame.Coords)
	cb := geom.Centroid(truth)
	// Cross-covariance of centered point sets.
	var sxx, sxy, syx, syy float64
	for i := 0; i < n; i++ {
		a := frame.Coords[i].Sub(ca)
		b := truth[i].Sub(cb)
		sxx += a.X * b.X
		sxy += a.X * b.Y
		syx += a.Y * b.X
		syy += a.Y * b.Y
	}
	best := math.Inf(1)
	// Try both chiralities: rotation angle that maximizes trace for the
	// direct and the reflected alignment.
	for _, reflect := range []bool{false, rTrue} {
		axx, axy, ayx, ayy := sxx, sxy, syx, syy
		if reflect {
			// Reflect frame across the x axis first: y -> -y.
			ayx, ayy = -ayx, -ayy
		}
		theta := math.Atan2(axy-ayx, axx+ayy)
		cos, sin := math.Cos(theta), math.Sin(theta)
		var sum float64
		for i := 0; i < n; i++ {
			a := frame.Coords[i].Sub(ca)
			if reflect {
				a.Y = -a.Y
			}
			rot := geom.Pt(a.X*cos-a.Y*sin, a.X*sin+a.Y*cos)
			b := truth[i].Sub(cb)
			sum += rot.Dist2(b)
		}
		if rmse := math.Sqrt(sum / float64(n)); rmse < best {
			best = rmse
		}
	}
	return best
}

// rTrue exists to keep the reflection loop readable.
const rTrue = true

// DistanceOracle returns a pairwise-distance function over ground-truth
// positions, optionally perturbed by multiplicative ranging noise of the
// given relative magnitude using the deterministic hash-like jitter source
// seed (noise = 0 gives exact ranging).
func DistanceOracle(truth []geom.Point, noise float64, seed int64) func(i, j int) float64 {
	return func(i, j int) float64 {
		d := truth[i].Dist(truth[j])
		if noise == 0 {
			return d
		}
		// Deterministic symmetric jitter in [−noise, +noise] from a cheap
		// integer hash of the unordered pair.
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		h := uint64(seed)*1099511628211 ^ uint64(a)*16777619 ^ uint64(b)*2166136261
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		frac := float64(h%1000000)/500000 - 1 // in [−1, 1)
		return d * (1 + noise*frac)
	}
}
