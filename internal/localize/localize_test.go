package localize

import (
	"math"
	"math/rand"
	"testing"

	"laacad/internal/geom"
)

func truthCloud(n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	return pts
}

func TestBuildExactRanging(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	truth := truthCloud(12, rng)
	oracle := DistanceOracle(truth, 0, 0)
	frame, err := Build(len(truth), 0, 1, 2, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if got := RigidError(frame, truth); got > 1e-6 {
		t.Errorf("rigid error = %v, want ~0", got)
	}
	// Pairwise distances in the frame must match the oracle exactly.
	for i := 0; i < len(truth); i++ {
		d := frame.Coords[0].Dist(frame.Coords[i])
		if math.Abs(d-oracle(0, i)) > 1e-9 {
			t.Errorf("frame distance 0-%d = %v, oracle %v", i, d, oracle(0, i))
		}
	}
	// Anchor layout: center at origin, axis on +x, witness in upper half.
	if !frame.Coords[0].Eq(geom.Pt(0, 0)) {
		t.Errorf("center not at origin: %v", frame.Coords[0])
	}
	if math.Abs(frame.Coords[1].Y) > 1e-9 || frame.Coords[1].X <= 0 {
		t.Errorf("axis node not on +x: %v", frame.Coords[1])
	}
	if frame.Coords[2].Y <= 0 {
		t.Errorf("witness not in upper half-plane: %v", frame.Coords[2])
	}
}

func TestBuildRejectsBadAnchors(t *testing.T) {
	truth := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(1, 1)}
	oracle := DistanceOracle(truth, 0, 0)
	if _, err := Build(4, 0, 0, 2, oracle); err == nil {
		t.Error("duplicate anchors should error")
	}
	if _, err := Build(4, 0, 1, 2, oracle); err == nil {
		t.Error("collinear witness should error")
	}
	coincident := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(1, 1)}
	if _, err := Build(3, 0, 1, 2, DistanceOracle(coincident, 0, 0)); err == nil {
		t.Error("coincident center/axis should error")
	}
}

func TestBuildReflectedTruthStillAligns(t *testing.T) {
	// The frame has arbitrary chirality; RigidError must align either way.
	rng := rand.New(rand.NewSource(32))
	truth := truthCloud(10, rng)
	mirrored := make([]geom.Point, len(truth))
	for i, p := range truth {
		mirrored[i] = geom.Pt(-p.X, p.Y)
	}
	frame, err := Build(len(truth), 0, 1, 2, DistanceOracle(truth, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := RigidError(frame, mirrored); got > 1e-6 {
		t.Errorf("rigid error vs mirrored truth = %v, want ~0", got)
	}
}

func TestBuildNoisyRanging(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	truth := truthCloud(15, rng)
	frame, err := Build(len(truth), 0, 1, 2, DistanceOracle(truth, 0.01, 7))
	if err != nil {
		t.Fatal(err)
	}
	got := RigidError(frame, truth)
	if got > 0.5 {
		t.Errorf("1%% ranging noise produced rigid error %v", got)
	}
	if got == 0 {
		t.Error("noisy ranging should not align perfectly")
	}
}

func TestRigidErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RigidError(&Frame{Coords: make([]geom.Point, 2)}, make([]geom.Point, 3))
}

func TestRigidErrorEmpty(t *testing.T) {
	if got := RigidError(&Frame{}, nil); got != 0 {
		t.Errorf("empty rigid error = %v", got)
	}
}

func TestDistanceOracleSymmetricDeterministic(t *testing.T) {
	truth := truthCloud(8, rand.New(rand.NewSource(34)))
	o := DistanceOracle(truth, 0.05, 99)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(o(i, j)-o(j, i)) > 1e-12 {
				t.Fatalf("oracle asymmetric at (%d,%d)", i, j)
			}
		}
	}
	o2 := DistanceOracle(truth, 0.05, 99)
	if o(1, 2) != o2(1, 2) {
		t.Error("oracle not deterministic for same seed")
	}
	o3 := DistanceOracle(truth, 0.05, 100)
	if o(1, 2) == o3(1, 2) {
		t.Error("different seeds should perturb differently")
	}
}

// Frames are rigid-motion equivalent: bisectors computed in a frame map to
// the same separating sets as in ground truth. Spot-check via point-side
// consistency.
func TestFrameBisectorConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	truth := truthCloud(10, rng)
	frame, err := Build(len(truth), 0, 1, 2, DistanceOracle(truth, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// For every pair (a, b) and every node v: v closer to a than b must be
	// invariant between frames.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			for v := 0; v < len(truth); v++ {
				want := truth[v].Dist2(truth[a]) < truth[v].Dist2(truth[b])
				got := frame.Coords[v].Dist2(frame.Coords[a]) < frame.Coords[v].Dist2(frame.Coords[b])
				if want != got {
					t.Fatalf("closer-relation flipped for v=%d a=%d b=%d", v, a, b)
				}
			}
		}
	}
}
