package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
)

func sitesFromPoints(pts []geom.Point) []Site {
	out := make([]Site, len(pts))
	for i, p := range pts {
		out[i] = Site{ID: i, Pos: p}
	}
	return out
}

func randomSites(n int, rng *rand.Rand) []Site {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return sitesFromPoints(pts)
}

func TestOrder1DiagramTwoSites(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := sitesFromPoints([]geom.Point{geom.Pt(0.25, 0.5), geom.Pt(0.75, 0.5)})
	d, err := KOrderDiagram(sites, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(d.Cells))
	}
	for _, c := range d.Cells {
		if math.Abs(c.Area()-0.5) > 1e-9 {
			t.Errorf("cell %v area = %v, want 0.5", c.Generators, c.Area())
		}
	}
	if math.Abs(d.TotalArea()-1) > 1e-9 {
		t.Errorf("total area = %v", d.TotalArea())
	}
}

func TestKOrderDiagramErrors(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := randomSites(3, rand.New(rand.NewSource(1)))
	if _, err := KOrderDiagram(sites, 0, reg); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KOrderDiagram(sites, 4, reg); err == nil {
		t.Error("k > len(sites) should error")
	}
}

func TestKOrderDiagramPartition(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(2))
	sites := randomSites(12, rng)
	for k := 1; k <= 4; k++ {
		d, err := KOrderDiagram(sites, k, reg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := d.TotalArea(); math.Abs(got-reg.Area()) > 1e-6 {
			t.Errorf("k=%d: cells cover %v, want %v", k, got, reg.Area())
		}
		for _, c := range d.Cells {
			if len(c.Generators) != k {
				t.Errorf("k=%d: cell with %d generators", k, len(c.Generators))
			}
		}
	}
}

// Every sampled point's k nearest sites must equal the generator set of the
// cell containing it.
func TestKOrderCellsMatchKNearest(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(3))
	sites := randomSites(10, rng)
	for k := 1; k <= 3; k++ {
		d, err := KOrderDiagram(sites, k, reg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			v := geom.Pt(rng.Float64(), rng.Float64())
			want := KNearest(sites, v, k)
			cell := locate(d, v)
			if cell == nil {
				// Point can fall on a cell boundary; skip rare misses.
				continue
			}
			if !equalInts(cell.Generators, want) {
				// Boundary-adjacent points can legitimately disagree when
				// distances tie; verify the disagreement is a near-tie.
				if !nearTie(sites, v, cell.Generators, want) {
					t.Fatalf("k=%d: point %v in cell %v but k-nearest = %v",
						k, v, cell.Generators, want)
				}
			}
		}
	}
}

// locate returns the cell containing v, preferring cells where v is interior.
func locate(d *Diagram, v geom.Point) *Cell {
	for i := range d.Cells {
		for _, p := range d.Cells[i].Polys {
			if p.Contains(v) {
				return &d.Cells[i]
			}
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nearTie reports whether the symmetric difference of the two generator sets
// consists of sites nearly equidistant from v (numerical boundary case).
func nearTie(sites []Site, v geom.Point, a, b []int) bool {
	inA := map[int]bool{}
	for _, x := range a {
		inA[x] = true
	}
	inB := map[int]bool{}
	for _, x := range b {
		inB[x] = true
	}
	var da, db []float64
	for _, x := range a {
		if !inB[x] {
			da = append(da, sites[x].Pos.Dist(v))
		}
	}
	for _, x := range b {
		if !inA[x] {
			db = append(db, sites[x].Pos.Dist(v))
		}
	}
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if math.Abs(da[i]-db[i]) > 1e-6 {
			return false
		}
	}
	return true
}

// Sum over all sites of the dominating-region area must equal k·|A|:
// every point is in exactly k dominating regions.
func TestDominatingRegionsCoverKTimes(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(4))
	sites := randomSites(15, rng)
	for k := 1; k <= 4; k++ {
		var total float64
		for _, s := range sites {
			polys := DominatingRegion(s, sites, k, reg.Pieces())
			total += RegionArea(polys)
		}
		want := float64(k) * reg.Area()
		if math.Abs(total-want) > 1e-6 {
			t.Errorf("k=%d: dominating regions total %v, want %v", k, total, want)
		}
	}
}

// The direct dominating-region algorithm and the k-order diagram must agree
// per site (equal areas; and direct pieces lie inside the diagram's region).
func TestDominatingRegionMatchesDiagram(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(5))
	sites := randomSites(9, rng)
	for k := 1; k <= 3; k++ {
		d, err := KOrderDiagram(sites, k, reg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sites {
			direct := DominatingRegion(s, sites, k, reg.Pieces())
			fromDiagram := d.DominatingRegionOf(s.ID)
			a1, a2 := RegionArea(direct), RegionArea(fromDiagram)
			if math.Abs(a1-a2) > 1e-6 {
				t.Errorf("k=%d site %d: direct area %v != diagram area %v", k, s.ID, a1, a2)
			}
		}
	}
}

// Dominating region membership check against the Prop. 1 definition on
// random interior points.
func TestDominatingRegionPointwise(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(6))
	sites := randomSites(12, rng)
	k := 3
	for _, s := range sites {
		polys := DominatingRegion(s, sites, k, reg.Pieces())
		for trial := 0; trial < 100; trial++ {
			v := geom.Pt(rng.Float64(), rng.Float64())
			// Count how many others are strictly closer.
			closer := 0
			for _, o := range sites {
				if o.ID != s.ID && o.Pos.Dist2(v) < s.Pos.Dist2(v) {
					closer++
				}
			}
			inRegion := false
			for _, p := range polys {
				if p.Contains(v) {
					inRegion = true
					break
				}
			}
			want := closer <= k-1
			if inRegion != want {
				// Allow boundary cases where the closer-count flips within
				// numerical tolerance of a bisector.
				if !bisectorBoundary(sites, s, v) {
					t.Fatalf("site %d point %v: in=%v want=%v (closer=%d)",
						s.ID, v, inRegion, want, closer)
				}
			}
		}
	}
}

// bisectorBoundary reports whether v is within tolerance of a bisector
// between s and some other site.
func bisectorBoundary(sites []Site, s Site, v geom.Point) bool {
	ds := s.Pos.Dist(v)
	for _, o := range sites {
		if o.ID == s.ID {
			continue
		}
		if math.Abs(o.Pos.Dist(v)-ds) < 1e-6 {
			return true
		}
	}
	return false
}

func TestDominatingRegionCoincidentSites(t *testing.T) {
	// Two nodes stacked at the same point plus one elsewhere: ties broken by
	// index, and areas must still sum to k·|A|.
	reg := region.UnitSquareKm()
	sites := []Site{
		{ID: 0, Pos: geom.Pt(0.3, 0.3)},
		{ID: 1, Pos: geom.Pt(0.3, 0.3)},
		{ID: 2, Pos: geom.Pt(0.7, 0.7)},
	}
	for k := 1; k <= 2; k++ {
		var total float64
		for _, s := range sites {
			total += RegionArea(DominatingRegion(s, sites, k, reg.Pieces()))
		}
		want := float64(k) * reg.Area()
		if math.Abs(total-want) > 1e-6 {
			t.Errorf("k=%d: total %v, want %v", k, total, want)
		}
	}
	// With k=1, the lower-index coincident node wins the shared half.
	r0 := RegionArea(DominatingRegion(sites[0], sites, 1, reg.Pieces()))
	r1 := RegionArea(DominatingRegion(sites[1], sites, 1, reg.Pieces()))
	if r0 <= 0 || r1 > 1e-9 {
		t.Errorf("tie-break: r0=%v r1=%v", r0, r1)
	}
}

func TestDominatingRegionPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	DominatingRegion(Site{}, nil, 0, nil)
}

func TestDominatingRegionWithHoles(t *testing.T) {
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.6, 0.6)})
	reg := region.MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	rng := rand.New(rand.NewSource(8))
	var sites []Site
	for len(sites) < 10 {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if reg.Contains(p) {
			sites = append(sites, Site{ID: len(sites), Pos: p})
		}
	}
	k := 2
	var total float64
	for _, s := range sites {
		polys := DominatingRegion(s, sites, k, reg.Pieces())
		for _, p := range polys {
			if !reg.Contains(p.Centroid()) {
				t.Fatalf("piece centroid inside hole or outside region")
			}
		}
		total += RegionArea(polys)
	}
	want := float64(k) * reg.Area()
	if math.Abs(total-want) > 1e-6 {
		t.Errorf("total %v, want %v", total, want)
	}
}

func TestVerticesAndMaxDist(t *testing.T) {
	polys := []geom.Polygon{
		{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)},
		{geom.Pt(2, 2), geom.Pt(3, 2), geom.Pt(2, 3)},
	}
	vs := Vertices(polys)
	if len(vs) != 6 {
		t.Fatalf("len = %d", len(vs))
	}
	if d := MaxDistFrom(geom.Pt(0, 0), polys); math.Abs(d-math.Hypot(2, 3)) > 1e-9 {
		t.Errorf("MaxDistFrom = %v", d)
	}
	if MaxDistFrom(geom.Pt(0, 0), nil) != 0 {
		t.Error("empty polys should give 0")
	}
}

func TestKNearest(t *testing.T) {
	sites := sitesFromPoints([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0),
	})
	got := KNearest(sites, geom.Pt(0.1, 0), 2)
	if !equalInts(got, []int{0, 1}) {
		t.Errorf("KNearest = %v", got)
	}
	got = KNearest(sites, geom.Pt(2.9, 0), 10) // k larger than n clamps
	if len(got) != 4 {
		t.Errorf("clamped KNearest len = %d", len(got))
	}
}

// The dominating region of every site must contain the site itself (a
// generator is always among the k nearest to its own position).
func TestDominatingRegionContainsSelf(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(10))
	sites := randomSites(20, rng)
	for k := 1; k <= 3; k++ {
		for _, s := range sites {
			polys := DominatingRegion(s, sites, k, reg.Pieces())
			found := false
			for _, p := range polys {
				if p.Contains(s.Pos) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("k=%d: site %d not inside its dominating region", k, s.ID)
			}
		}
	}
}

// For k = N (every generator dominates everywhere), each dominating region
// is the whole region.
func TestDominatingRegionKEqualsN(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(11))
	sites := randomSites(5, rng)
	for _, s := range sites {
		polys := DominatingRegion(s, sites, len(sites), reg.Pieces())
		if math.Abs(RegionArea(polys)-reg.Area()) > 1e-9 {
			t.Errorf("site %d: area %v, want full region", s.ID, RegionArea(polys))
		}
	}
}
