// Package voronoi computes 1-order and k-order (higher-order) Voronoi
// diagrams clipped to a target region, plus per-node dominating regions —
// the geometric core of LAACAD.
//
// Two independent algorithms are provided:
//
//   - DominatingRegion computes a single node's dominating region V^k_{n_i}
//     directly from Proposition 1 of the paper: the set of points for which
//     at most k−1 other generators are closer. It splits region pieces by
//     one bisector at a time, tracking the remaining "closer" budget — a
//     depth-bounded half-plane arrangement walk whose output is a set of
//     disjoint convex polygons. This is what the distributed algorithm runs,
//     since it needs only the node's own neighborhood.
//
//   - KOrderDiagram computes the full k-order Voronoi partition of the
//     region by Lee-style iterative refinement: the order-(j+1) diagram is
//     obtained by subdividing each order-j cell with the 1-order diagram of
//     the non-generators. This is the centralized/global structure used for
//     Fig. 1 and for cross-validating the direct algorithm.
//
// Ties (coincident generators) are broken by generator index: the lower
// index counts as closer. This keeps both algorithms consistent when many
// mobile nodes start stacked in a corner (Fig. 5(a)).
package voronoi

import (
	"fmt"
	"math"
	"sort"

	"laacad/internal/geom"
	"laacad/internal/region"
)

// Site is a Voronoi generator: a sensor node position tagged with its
// stable index in the network.
type Site struct {
	ID  int
	Pos geom.Point
}

// coincidentTol is the squared distance below which two generators are
// considered coincident and index tie-breaking applies.
const coincidentTol = 1e-24

// DominatingRegion returns the dominating region of self among the given
// other generators, clipped to the polygons in clip, as a set of disjoint
// convex pieces. k is the coverage order (k ≥ 1): a point belongs to the
// region iff fewer than k of the others are closer to it than self
// (Proposition 1). The clip polygons are typically the region's convex
// pieces, or those pieces further clipped to a search disk in the localized
// algorithm.
//
// The others slice may contain self's ID; it is ignored.
//
// DominatingRegion is the convenience form over a throwaway Scratch; hot
// loops should hold a Scratch and call DominatingRegionScratch (plus
// CompactRegion when the result must outlive the Scratch).
//
// The kernel walk lives in splitByBudgetScratch (scratch.go): it splits each
// clip piece by one bisector at a time, tracking how many "closer"
// generators the current branch may still tolerate. The neighbor list is
// sorted by ascending distance to self, so once a neighbor's distance d
// satisfies d ≥ 2·max_{v∈poly}‖v−self‖, every point of poly is at least as
// close to self as to that neighbor (‖v−o‖ ≥ d − d/2 = d/2 ≥ ‖v−self‖) and
// the bisector scan stops early — pruning the O(N) scan down to the
// geometrically relevant neighborhood.
func DominatingRegion(self Site, others []Site, k int, clip []geom.Polygon) []geom.Polygon {
	if k < 1 {
		panic(fmt.Sprintf("voronoi: DominatingRegion needs k >= 1, got %d", k))
	}
	var s Scratch
	// The Scratch is throwaway, so its arena-owned output needs no compact
	// copy — nothing will ever recycle it.
	return DominatingRegionScratch(self, others, k, clip, &s)
}

// RegionArea returns the total area of a set of disjoint polygons; a
// convenience for dominating regions.
func RegionArea(polys []geom.Polygon) float64 {
	var a float64
	for _, p := range polys {
		a += p.Area()
	}
	return a
}

// Vertices returns all vertices of the given polygons concatenated. The
// Chebyshev center of a dominating region is the smallest-enclosing-circle
// center of these points.
func Vertices(polys []geom.Polygon) []geom.Point {
	var n int
	for _, p := range polys {
		n += len(p)
	}
	out := make([]geom.Point, 0, n)
	for _, p := range polys {
		out = append(out, p...)
	}
	return out
}

// MaxDistFrom returns the farthest distance from q to any vertex of the
// polygons — the circumradius R̂ of a dominating region about a node at q.
func MaxDistFrom(q geom.Point, polys []geom.Polygon) float64 {
	var m float64
	for _, p := range polys {
		if d := p.MaxDistFrom(q); d > m {
			m = d
		}
	}
	return m
}

// Cell is one cell of a k-order Voronoi diagram: the set of points whose k
// nearest generators are exactly Generators (as a sorted ID set), realized
// as disjoint convex polygon pieces clipped to the region.
type Cell struct {
	Generators []int
	Polys      []geom.Polygon
}

// Area returns the total area of the cell.
func (c Cell) Area() float64 { return RegionArea(c.Polys) }

// Diagram is a k-order Voronoi diagram over a region.
type Diagram struct {
	K     int
	Sites []Site
	Cells []Cell
}

// KOrderDiagram computes the k-order Voronoi diagram of sites clipped to
// reg, by iterative refinement from the 1-order diagram. It returns an error
// for invalid k or if fewer than k generators exist.
func KOrderDiagram(sites []Site, k int, reg *region.Region) (*Diagram, error) {
	if k < 1 {
		return nil, fmt.Errorf("voronoi: k must be >= 1, got %d", k)
	}
	if len(sites) < k {
		return nil, fmt.Errorf("voronoi: need at least k=%d sites, got %d", k, len(sites))
	}
	cells := order1Cells(sites, reg.Pieces())
	for order := 1; order < k; order++ {
		cells = refine(sites, cells)
	}
	return &Diagram{K: k, Sites: append([]Site(nil), sites...), Cells: cells}, nil
}

// order1Cells computes the 1-order Voronoi cells of sites clipped to the
// given convex pieces.
func order1Cells(sites []Site, pieces []geom.Polygon) []Cell {
	cells := make([]Cell, 0, len(sites))
	for i, s := range sites {
		var polys []geom.Polygon
		for _, piece := range pieces {
			poly := clipToNearest(s, sites, piece, nil)
			if len(poly) >= 3 && poly.Area() >= 1e-16 {
				polys = append(polys, poly)
			}
		}
		if len(polys) > 0 {
			cells = append(cells, Cell{Generators: []int{sites[i].ID}, Polys: polys})
		}
	}
	return cells
}

// clipToNearest clips piece to the set of points for which s is at least as
// close as every other site not in the skip set; skip maps site IDs to
// ignore (the current cell's generators during refinement).
func clipToNearest(s Site, sites []Site, piece geom.Polygon, skip map[int]bool) geom.Polygon {
	poly := piece
	for _, o := range sites {
		if len(poly) < 3 {
			return nil
		}
		if o.ID == s.ID || skip[o.ID] {
			continue
		}
		if o.Pos.Dist2(s.Pos) < coincidentTol {
			if o.ID < s.ID {
				return nil // tie lost everywhere
			}
			continue
		}
		poly = poly.ClipHalfPlane(geom.Bisector(s.Pos, o.Pos))
	}
	return poly
}

// refine lifts an order-j cell set to order j+1: each cell is subdivided by
// the 1-order Voronoi diagram of the non-generator sites, and each sub-cell
// gains the locally-nearest non-generator.
func refine(sites []Site, cells []Cell) []Cell {
	merged := make(map[string]*Cell)
	for _, c := range cells {
		skip := make(map[int]bool, len(c.Generators))
		for _, g := range c.Generators {
			skip[g] = true
		}
		for _, cand := range sites {
			if skip[cand.ID] {
				continue
			}
			var polys []geom.Polygon
			for _, piece := range c.Polys {
				sub := clipToNearest(cand, sites, piece, skip)
				if len(sub) >= 3 && sub.Area() >= 1e-16 {
					polys = append(polys, sub)
				}
			}
			if len(polys) == 0 {
				continue
			}
			gens := append(append([]int(nil), c.Generators...), cand.ID)
			sort.Ints(gens)
			key := genKey(gens)
			if m, ok := merged[key]; ok {
				m.Polys = append(m.Polys, polys...)
			} else {
				merged[key] = &Cell{Generators: gens, Polys: polys}
			}
		}
	}
	out := make([]Cell, 0, len(merged))
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic order
	for _, k := range keys {
		out = append(out, *merged[k])
	}
	return out
}

// maxDistToBBox returns the maximum distance from p to the corners of b —
// an upper bound on the distance from p to any point inside b. Plain
// Sqrt(dx²+dy²) rather than math.Hypot: Hypot's overflow/underflow guards
// cost several times the arithmetic and are dead weight at region-coordinate
// scale, and this runs once per bisector cut in the kernel's hottest loop.
func maxDistToBBox(p geom.Point, b geom.BBox) float64 {
	dx := math.Max(math.Abs(b.Min.X-p.X), math.Abs(b.Max.X-p.X))
	dy := math.Max(math.Abs(b.Min.Y-p.Y), math.Abs(b.Max.Y-p.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

func genKey(gens []int) string {
	b := make([]byte, 0, 4*len(gens))
	for _, g := range gens {
		b = append(b, byte(g>>24), byte(g>>16), byte(g>>8), byte(g))
	}
	return string(b)
}

// DominatingRegionOf returns the dominating region of the site with the
// given ID as the union of the diagram cells that list it as a generator.
func (d *Diagram) DominatingRegionOf(id int) []geom.Polygon {
	var out []geom.Polygon
	for _, c := range d.Cells {
		for _, g := range c.Generators {
			if g == id {
				out = append(out, c.Polys...)
				break
			}
		}
	}
	return out
}

// TotalArea returns the summed area of all cells — for a valid diagram this
// equals the region area (the cells partition the region).
func (d *Diagram) TotalArea() float64 {
	var a float64
	for _, c := range d.Cells {
		a += c.Area()
	}
	return a
}

// KNearest returns the IDs of the k generators nearest to v, using the same
// index tie-breaking as the diagram construction. It keeps a bounded
// selection buffer of the k best candidates instead of sorting all n sites —
// O(n·k) worst case but O(n + k²) on typical inputs, versus O(n log n) for
// the full sort, and it never materializes an n-sized scratch array.
func KNearest(sites []Site, v geom.Point, k int) []int {
	if k > len(sites) {
		k = len(sites)
	}
	if k <= 0 {
		return []int{}
	}
	type ds struct {
		d  float64
		id int
	}
	less := func(a, b ds) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		return a.id < b.id
	}
	best := make([]ds, 0, k)
	for _, s := range sites {
		c := ds{d: s.Pos.Dist2(v), id: s.ID}
		if len(best) == k && !less(c, best[k-1]) {
			continue
		}
		// Insert c at its sorted position, dropping the current worst when
		// the buffer is full.
		if len(best) < k {
			best = append(best, c)
		} else {
			best[k-1] = c
		}
		for i := len(best) - 1; i > 0 && less(best[i], best[i-1]); i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
	}
	out := make([]int, len(best))
	for i, b := range best {
		out[i] = b.id
	}
	sort.Ints(out)
	return out
}
