package voronoi

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
)

func scratchSites(n int, seed int64) []Site {
	rng := rand.New(rand.NewSource(seed))
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = Site{ID: i, Pos: geom.Pt(rng.Float64(), rng.Float64())}
	}
	return sites
}

// The scratch kernel must produce bit-identical regions to the convenience
// wrapper, for every site and coverage order, with the Scratch reused
// (dirty) across calls — reuse must not leak state between computations.
func TestDominatingRegionScratchMatchesWrapper(t *testing.T) {
	reg := region.UnitSquareKm()
	var s Scratch
	for _, seed := range []int64{1, 7, 42} {
		sites := scratchSites(30, seed)
		for _, k := range []int{1, 2, 4} {
			for _, self := range sites {
				want := DominatingRegion(self, sites, k, reg.Pieces())
				got := DominatingRegionScratch(self, sites, k, reg.Pieces(), &s)
				if !reflect.DeepEqual(CompactRegion(got), CompactRegion(want)) {
					t.Fatalf("seed=%d k=%d site=%d: scratch result differs", seed, k, self.ID)
				}
			}
		}
	}
}

// A warmed-up Scratch computes dominating regions with zero heap
// allocations — the kernel's core guarantee.
func TestDominatingRegionScratchZeroAllocs(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(60, 3)
	s := &Scratch{}
	pieces := reg.Pieces()
	// Warm up every buffer (all sites, so the arena high-water mark is hit).
	for _, self := range sites {
		DominatingRegionScratch(self, sites, 2, pieces, s)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, self := range sites {
			DominatingRegionScratch(self, sites, 2, pieces, s)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed DominatingRegionScratch allocates %v/run over %d sites, want 0", allocs, len(sites))
	}
}

// CompactRegion preserves values exactly, shares one backing array across
// pieces, and costs at most two allocations.
func TestCompactRegion(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(25, 9)
	var s Scratch
	polys := DominatingRegionScratch(sites[0], sites, 3, reg.Pieces(), &s)
	if len(polys) == 0 {
		t.Fatal("expected a non-empty region")
	}
	compact := CompactRegion(polys)
	if !reflect.DeepEqual(asValues(compact), asValues(polys)) {
		t.Fatal("compacted region changed vertex values")
	}
	for i, p := range compact {
		if cap(p) != len(p) {
			t.Errorf("piece %d: cap %d != len %d (not minimal)", i, cap(p), len(p))
		}
	}
	allocs := testing.AllocsPerRun(100, func() { CompactRegion(polys) })
	if allocs > 2 {
		t.Errorf("CompactRegion allocates %v/op, want <= 2", allocs)
	}
	if CompactRegion(nil) != nil {
		t.Error("CompactRegion(nil) should be nil")
	}
	// Mutating the scratch afterwards must not disturb the compacted copy.
	before := asValues(compact)
	for _, self := range sites {
		DominatingRegionScratch(self, sites, 3, reg.Pieces(), &s)
	}
	if !reflect.DeepEqual(asValues(compact), before) {
		t.Error("compacted region aliases scratch storage")
	}
}

func asValues(polys []geom.Polygon) [][]geom.Point {
	out := make([][]geom.Point, len(polys))
	for i, p := range polys {
		out[i] = append([]geom.Point(nil), p...)
	}
	return out
}

// ClipToConvex must agree with the allocating ClipConvex path.
func TestClipToConvexMatchesClipConvex(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(20, 5)
	ring := geom.RegularPolygon(geom.Circle{Center: geom.Pt(0.5, 0.5), R: 0.3}, 48, 0.065)
	var s Scratch
	for _, self := range sites {
		polys := DominatingRegionScratch(self, sites, 2, reg.Pieces(), &s)
		var want []geom.Polygon
		for _, p := range polys {
			if c := p.ClipConvex(ring); len(c) >= 3 && c.Area() > 1e-16 {
				want = append(want, c)
			}
		}
		got := s.ClipToConvex(polys, ring)
		if !reflect.DeepEqual(asValues(got), asValues(want)) {
			t.Fatalf("site %d: ClipToConvex differs from ClipConvex", self.ID)
		}
	}
}

// VerticesInto matches Vertices and reuses the buffer.
func TestVerticesInto(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(15, 11)
	polys := DominatingRegion(sites[0], sites, 2, reg.Pieces())
	want := Vertices(polys)
	buf := make([]geom.Point, 0, len(want))
	got := VerticesInto(buf[:0], polys)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("VerticesInto differs from Vertices")
	}
	if allocs := testing.AllocsPerRun(100, func() { VerticesInto(buf[:0], polys) }); allocs > 0 {
		t.Errorf("VerticesInto with sufficient capacity allocates %v/op", allocs)
	}
}

// KNearest's partial selection must agree with a full sort for every k,
// including the tie-breaking rule.
func TestKNearestMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		sites := scratchSites(n, int64(trial))
		// Inject duplicates to exercise ID tie-breaking.
		if n > 4 {
			sites[3].Pos = sites[1].Pos
		}
		v := geom.Pt(rng.Float64(), rng.Float64())
		for _, k := range []int{0, 1, 2, n / 2, n, n + 3} {
			got := KNearest(sites, v, k)
			want := kNearestRef(sites, v, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d n=%d k=%d: got %v, want %v", trial, n, k, got, want)
			}
		}
	}
}

// kNearestRef is the original full-sort implementation, kept as the oracle.
func kNearestRef(sites []Site, v geom.Point, k int) []int {
	type ds struct {
		d  float64
		id int
	}
	all := make([]ds, len(sites))
	for i, s := range sites {
		all[i] = ds{d: s.Pos.Dist2(v), id: s.ID}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	sort.Ints(out)
	return out
}
