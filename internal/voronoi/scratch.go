package voronoi

import (
	"laacad/internal/geom"
)

// Scratch is the reusable workspace of the dominating-region kernel: a
// free-list of polygon buffers for the half-plane clipping walk, the
// filtered-and-sorted relevant-neighbor list with precomputed squared
// distances, and the survivor accumulator. One Scratch serves one goroutine;
// the round engine keeps one per worker so a steady-state round performs no
// heap allocation in the geometry kernel.
//
// The zero value is ready to use; buffers grow on demand and are retained
// across calls.
type Scratch struct {
	rel  []relSite      // filtered neighbors sorted by (distance², ID)
	free []geom.Polygon // recycled polygon buffers for the clipping walk
	out  []geom.Polygon // survivors of the current call (arena-owned)
	out2 []geom.Polygon // ClipToConvex survivors (arena-owned)

	// Batch (structure-of-arrays) kernel state — see batch.go. The relevant-
	// neighbor list is split into a sorted key pair and unsorted per-entry
	// storage: (relD2, relVal) are sorted by (distance², ID) — relVal packs
	// the generator ID in its high 32 bits and the entry's append slot in
	// the low 32, so one int64 comparison breaks distance ties and one int64
	// swap carries everything the sort must move — while relHx/relHy/relHc/
	// relHn stay in append (slot) order, reached through the packed slot.
	// Those four hold a lazily filled memo of each generator's bisector
	// half-plane (computed on the walk's first visit, reused across
	// recursion branches): while relHc[slot] is NaN the memo is unset and
	// (relHx, relHy) hold the generator's position; the first visit
	// overwrites them with the bisector coefficients and |N|. Bisector
	// offsets are never NaN for finite positions, so the sentinel is
	// unambiguous. Polygon vertices live in Slab, survivors are refs into
	// it.
	Slab   geom.PolySlab  // vertex arena of the batch clipping walk
	relD2  []float64      // squared distance to the query site (sorted)
	relVal []int64        // generator ID << 32 | append slot (sorted with relD2)
	relHx  []float64      // by slot: bisector normal X (position X while unset)
	relHy  []float64      // by slot: bisector normal Y (position Y while unset)
	relHc  []float64      // by slot: bisector offset C (NaN: memo unset)
	relHn  []float64      // by slot: bisector normal magnitude |N|
	refs   []geom.PolyRef // survivors of the current batch walk
	refs2  []geom.PolyRef // ClipToConvexSoA survivors
}

// relSite pairs a generator with its precomputed squared distance to the
// query site, so the sort and the clipping walk never recompute distances.
type relSite struct {
	d2   float64
	site Site
}

// getPoly pops a recycled polygon buffer (or allocates a small one).
func (s *Scratch) getPoly() geom.Polygon {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		return p[:0]
	}
	return make(geom.Polygon, 0, 8)
}

// putPoly returns a polygon buffer to the free list.
func (s *Scratch) putPoly(p geom.Polygon) {
	if cap(p) > 0 {
		s.free = append(s.free, p[:0])
	}
}

// recycleOut returns every survivor buffer of the previous call to the free
// list. Called at the top of DominatingRegionScratch, which is what bounds
// the returned region's lifetime to "until the next call on this Scratch".
func (s *Scratch) recycleOut() {
	for _, p := range s.out {
		s.putPoly(p)
	}
	s.out = s.out[:0]
}

// sortRel sorts s.rel by (d2, ID) ascending — the canonical total order of
// the kernel (IDs are unique, so the order is independent of the input
// order). Hand-rolled insertion+quicksort instead of sort.Slice because the
// standard library's reflection-based swapper allocates on every call.
func (s *Scratch) sortRel() { quickSortRel(s.rel) }

func relLess(a, b relSite) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.site.ID < b.site.ID
}

func quickSortRel(rel []relSite) {
	for len(rel) > 12 {
		// Median-of-three pivot, moved to the end.
		m := len(rel) / 2
		hi := len(rel) - 1
		if relLess(rel[m], rel[0]) {
			rel[m], rel[0] = rel[0], rel[m]
		}
		if relLess(rel[hi], rel[0]) {
			rel[hi], rel[0] = rel[0], rel[hi]
		}
		if relLess(rel[hi], rel[m]) {
			rel[hi], rel[m] = rel[m], rel[hi]
		}
		pivot := rel[m]
		rel[m], rel[hi-1] = rel[hi-1], rel[m]
		i := 0
		for j := 0; j < hi-1; j++ {
			if relLess(rel[j], pivot) {
				rel[i], rel[j] = rel[j], rel[i]
				i++
			}
		}
		rel[i], rel[hi-1] = rel[hi-1], rel[i]
		// Recurse into the smaller half, iterate on the larger.
		if i < len(rel)-i-1 {
			quickSortRel(rel[:i])
			rel = rel[i+1:]
		} else {
			quickSortRel(rel[i+1:])
			rel = rel[:i]
		}
	}
	// Insertion sort for short runs.
	for i := 1; i < len(rel); i++ {
		for j := i; j > 0 && relLess(rel[j], rel[j-1]); j-- {
			rel[j], rel[j-1] = rel[j-1], rel[j]
		}
	}
}

// DominatingRegionScratch is the allocation-free form of DominatingRegion:
// all intermediate polygons come from s's buffer arena and the returned
// region reuses s's survivor storage, so a warmed-up Scratch computes a
// region with zero heap allocations.
//
// The returned polygons are valid only until the next call on s. Callers
// that keep the region (the round engine caches outcomes across rounds) must
// copy it out with CompactRegion first.
func DominatingRegionScratch(self Site, others []Site, k int, clip []geom.Polygon, s *Scratch) []geom.Polygon {
	if k < 1 {
		panic("voronoi: DominatingRegionScratch needs k >= 1")
	}
	s.recycleOut()

	// Filter out self and sort by distance: nearer bisectors cut away more
	// area early, which prunes the recursion fastest. The (distance², ID)
	// order is total, so the result is independent of the input order — a
	// prerequisite for cache-equivalence in the round engine.
	rel := s.rel[:0]
	for _, o := range others {
		if o.ID == self.ID {
			continue
		}
		rel = append(rel, relSite{d2: o.Pos.Dist2(self.Pos), site: o})
	}
	s.rel = rel
	s.sortRel()

	for _, piece := range clip {
		// Copy the borrowed clip piece into an arena buffer so ownership is
		// uniform inside the walk.
		poly := append(s.getPoly(), piece...)
		splitByBudgetScratch(self, s.rel, 0, k-1, poly, s)
	}
	return s.out
}

// splitByBudgetScratch is splitByBudget on the buffer arena: it owns poly
// (an arena buffer) and either appends it to s.out (survivor) or returns it
// to the free list. Clipping ping-pongs between arena buffers via
// ClipHalfPlaneInto; the arithmetic is identical to the allocating walk.
// The polygon's area and pruning bound are recomputed only when a clip
// actually changed it, not on every bisector scan iteration — same values,
// computed once.
func splitByBudgetScratch(self Site, others []relSite, j, budget int, poly geom.Polygon, s *Scratch) {
	area := poly.Area()
	bound := maxDistToBBox(self.Pos, poly.BBox())
	for ; j < len(others); j++ {
		if len(poly) < 3 || area < 1e-16 {
			s.putPoly(poly)
			return
		}
		o := others[j]
		d2 := o.d2
		if d2 >= 4*bound*bound {
			break // this and all farther neighbors leave poly untouched
		}
		if d2 < coincidentTol {
			// Coincident generator: tie broken by index uniformly over the
			// whole plane.
			if o.site.ID < self.ID {
				if budget == 0 {
					s.putPoly(poly)
					return
				}
				budget--
			}
			continue
		}
		h := geom.Bisector(self.Pos, o.site.Pos) // contains points at least as close to self
		if budget == 0 {
			// No allowance left: keep only the part where o is not closer.
			next := poly.ClipHalfPlaneInto(s.getPoly(), h)
			s.putPoly(poly)
			poly = next
		} else {
			// Branch: the part where o is closer consumes one budget unit.
			closer := poly.ClipHalfPlaneInto(s.getPoly(), h.Complement())
			if len(closer) >= 3 && closer.Area() >= 1e-16 {
				splitByBudgetScratch(self, others, j+1, budget-1, closer, s)
			} else {
				s.putPoly(closer)
			}
			next := poly.ClipHalfPlaneInto(s.getPoly(), h)
			s.putPoly(poly)
			poly = next
		}
		if len(poly) >= 3 {
			area = poly.Area()
			bound = maxDistToBBox(self.Pos, poly.BBox())
		} else {
			area = 0
		}
	}
	if len(poly) >= 3 && area >= 1e-16 {
		s.out = append(s.out, poly)
	} else {
		s.putPoly(poly)
	}
}

// ClipToConvex clips each polygon in polys against the convex CCW polygon
// clip (intersection of convex sets, one half-plane per clip edge), keeping
// pieces with at least 3 vertices and non-negligible area — the localized
// engine's search-ring closure, on the arena. polys may be (and typically
// is) the arena-owned result of a DominatingRegionScratch call on the same
// s; the inputs are not mutated. The returned polygons are arena-owned and
// valid only until the next DominatingRegionScratch or ClipToConvex call on
// s.
func (s *Scratch) ClipToConvex(polys []geom.Polygon, clip geom.Polygon) []geom.Polygon {
	for _, p := range s.out2 {
		s.putPoly(p)
	}
	s.out2 = s.out2[:0]
	n := len(clip)
	for _, p := range polys {
		cur := append(s.getPoly(), p...)
		for i := 0; i < n && len(cur) >= 3; i++ {
			h := geom.HalfPlaneFromEdge(clip[i], clip[(i+1)%n])
			next := cur.ClipHalfPlaneInto(s.getPoly(), h)
			s.putPoly(cur)
			cur = next
		}
		if len(cur) >= 3 && cur.Area() > 1e-16 {
			s.out2 = append(s.out2, cur)
		} else {
			s.putPoly(cur)
		}
	}
	return s.out2
}

// CompactRegion copies polys into freshly allocated minimal storage: one
// backing vertex array shared by all pieces plus one slice of headers — two
// allocations total, regardless of piece count. Use it to keep a region
// returned by DominatingRegionScratch beyond the next call on its Scratch.
// An empty region compacts to nil.
func CompactRegion(polys []geom.Polygon) []geom.Polygon {
	if len(polys) == 0 {
		return nil
	}
	total := 0
	for _, p := range polys {
		total += len(p)
	}
	backing := make([]geom.Point, 0, total)
	out := make([]geom.Polygon, len(polys))
	for i, p := range polys {
		start := len(backing)
		backing = append(backing, p...)
		out[i] = geom.Polygon(backing[start:len(backing):len(backing)])
	}
	return out
}

// VerticesInto appends all vertices of the given polygons to buf and returns
// it — the allocation-free form of Vertices for callers with a scratch
// buffer.
func VerticesInto(buf []geom.Point, polys []geom.Polygon) []geom.Point {
	for _, p := range polys {
		buf = append(buf, p...)
	}
	return buf
}
