package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"laacad/internal/region"
)

// Randomized tiling properties of the k-order structure on random site sets:
//
//  1. Exactly k sites dominate any point, so the dominating-region areas of
//     all sites must sum to k·|A| (for k < n; at k ≥ n every site dominates
//     everywhere).
//  2. The direct per-site DominatingRegion computation and the full
//     KOrderDiagram must assign each site the same area.
func TestDominatingRegionsTileKFold(t *testing.T) {
	reg := region.UnitSquareKm()
	area := reg.Area()
	rng := rand.New(rand.NewSource(1234))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 6 + rng.Intn(18)
		sites := make([]Site, n)
		for i := range sites {
			p := reg.RandomPoint(rng)
			sites[i] = Site{ID: i, Pos: p}
		}
		for _, k := range []int{1, 2, 3} {
			if k >= n {
				continue
			}
			var sum float64
			direct := make([]float64, n)
			for i, s := range sites {
				direct[i] = RegionArea(DominatingRegion(s, sites, k, reg.Pieces()))
				sum += direct[i]
			}
			if rel := math.Abs(sum-float64(k)*area) / (float64(k) * area); rel > 1e-6 {
				t.Errorf("trial %d n=%d k=%d: region areas sum to %v, want k·|A|=%v (rel err %g)",
					trial, n, k, sum, float64(k)*area, rel)
			}
			d, err := KOrderDiagram(sites, k, reg)
			if err != nil {
				t.Fatalf("trial %d n=%d k=%d: KOrderDiagram: %v", trial, n, k, err)
			}
			for i := range sites {
				da := RegionArea(d.DominatingRegionOf(i))
				if diff := math.Abs(da - direct[i]); diff > 1e-6*(1+direct[i]) {
					t.Errorf("trial %d n=%d k=%d site %d: diagram area %v != direct area %v",
						trial, n, k, i, da, direct[i])
				}
			}
		}
	}
}
