package voronoi

import (
	"math"

	"laacad/internal/geom"
)

// Batch (structure-of-arrays) form of the dominating-region kernel.
//
// The scalar kernel (DominatingRegionScratch) re-derives everything per
// call: it rebuilds and re-sorts the whole relevant-neighbor list, computes
// each bisector's coefficients at every recursion visit, and ping-pongs
// vertices through a free-list of scattered []Point buffers. The batch form
// keeps the neighbor list as parallel slabs that survive across the
// expanding-search ρ-doublings of one node (only the new suffix is appended
// and sorted — everything nearer is already in canonical (distance², ID)
// order), memoizes each bisector's half-plane coefficients on the walk's
// first visit (so recursion branches never recompute them, and generators
// the distance-sorted walk prunes never pay for one), and clips through the
// geom.PolySlab vertex arena.
//
// Every geometric operation routes through the same geom functions as the
// scalar walk, in the same order, so the survivor polygons are bitwise equal
// to the scalar kernel's — DominatingRegionScratch stays as the oracle and
// the engine's bit-identity matrices gate both paths against each other.

// ResetRel clears the relevant-neighbor slabs for a new query site.
func (s *Scratch) ResetRel() {
	s.relD2 = s.relD2[:0]
	s.relVal = s.relVal[:0]
	s.relHx = s.relHx[:0]
	s.relHy = s.relHy[:0]
	s.relHc = s.relHc[:0]
	s.relHn = s.relHn[:0]
}

// RelLen returns the number of entries in the relevant-neighbor slabs.
func (s *Scratch) RelLen() int { return len(s.relD2) }

// RelD2 returns the squared distance of rel entry i.
func (s *Scratch) RelD2(i int) float64 { return s.relD2[i] }

// AppendRel appends one generator with its precomputed squared distance to
// the query site self. Entries with o.ID == self.ID are ignored (same filter
// as the scalar kernel). The bisector memo starts unset — (relHx, relHy)
// carry the generator position, relHc the NaN sentinel; the walk fills the
// memo on first visit, so generators beyond the pruning bound never pay for
// a bisector. IDs must be non-negative and fit 32 bits (node indices), so
// the packed key is positive and orders by ID within equal distances.
func (s *Scratch) AppendRel(self, o Site, d2 float64) {
	if o.ID == self.ID {
		return
	}
	slot := len(s.relHx)
	s.relD2 = append(s.relD2, d2)
	s.relVal = append(s.relVal, int64(o.ID)<<32|int64(slot))
	s.relHx = append(s.relHx, o.Pos.X)
	s.relHy = append(s.relHy, o.Pos.Y)
	s.relHc = append(s.relHc, math.NaN())
	s.relHn = append(s.relHn, 0)
}

// SortRelTail sorts rel[start:] by (distance², ID) ascending. The expanding
// search appends only generators at distance ≥ the previous search radius —
// strictly beyond every existing entry — so sorting the new suffix alone
// leaves the whole list in the canonical total order the kernel requires.
// Pass start = 0 to sort everything.
//
// Only the key pair (relD2, relVal) moves; the per-entry storage stays in
// append order and is reached through the slot packed into relVal's low
// bits, so the sort touches half the memory of a full-slab permutation and
// the bisector memo (including its NaN sentinels) is untouched.
func (s *Scratch) SortRelTail(start int) {
	quickSortRelSlab(s.relD2, s.relVal, start, len(s.relD2))
}

// relSlabLess orders by (d², packed key). IDs are unique, so comparing the
// packed ID<<32|slot value whole is equivalent to comparing IDs: the high
// bits decide.
func relSlabLess(d2 []float64, val []int64, i, j int) bool {
	if d2[i] != d2[j] {
		return d2[i] < d2[j]
	}
	return val[i] < val[j]
}

func relSlabSwap(d2 []float64, val []int64, i, j int) {
	d2[i], d2[j] = d2[j], d2[i]
	val[i], val[j] = val[j], val[i]
}

// quickSortRelSlab sorts the index range [lo, hi) of the rel key slabs — the
// same median-of-three quicksort with insertion-sort tail as quickSortRel,
// over parallel arrays instead of an AoS slice. (d², ID) is a total order
// with unique IDs, so any comparison sort yields the same sequence. The
// slabs are passed as locals so the hot compare/swap paths never reload
// slice headers through the Scratch pointer.
func quickSortRelSlab(d2 []float64, val []int64, lo, hi int) {
	for hi-lo > 12 {
		m := lo + (hi-lo)/2
		last := hi - 1
		if relSlabLess(d2, val, m, lo) {
			relSlabSwap(d2, val, m, lo)
		}
		if relSlabLess(d2, val, last, lo) {
			relSlabSwap(d2, val, last, lo)
		}
		if relSlabLess(d2, val, last, m) {
			relSlabSwap(d2, val, last, m)
		}
		relSlabSwap(d2, val, m, last-1)
		pivot := last - 1
		i := lo
		for j := lo; j < last-1; j++ {
			if relSlabLess(d2, val, j, pivot) {
				relSlabSwap(d2, val, i, j)
				i++
			}
		}
		relSlabSwap(d2, val, i, last-1)
		if i-lo < hi-i-1 {
			quickSortRelSlab(d2, val, lo, i)
			lo = i + 1
		} else {
			quickSortRelSlab(d2, val, i+1, hi)
			hi = i
		}
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && relSlabLess(d2, val, j, j-1); j-- {
			relSlabSwap(d2, val, j, j-1)
		}
	}
}

// DominatingRegionSoA runs the dominating-region walk for self over the
// prepared rel slabs (ResetRel / AppendRel / SortRelTail), clipping to the
// given pieces, and returns the survivor polygons as refs into s.Slab. The
// refs are valid until the next DominatingRegionSoA call on s; callers that
// keep the region must copy it out with CompactRefs first.
func DominatingRegionSoA(self Site, k int, clip []geom.Polygon, s *Scratch) []geom.PolyRef {
	if k < 1 {
		panic("voronoi: DominatingRegionSoA needs k >= 1")
	}
	s.Slab.Reset()
	s.refs = s.refs[:0]
	for _, piece := range clip {
		poly := s.Slab.Append(piece)
		area, bb := s.Slab.AreaBBox(poly)
		// Entry pieces come from outside the kernel and are not known to be
		// dedupe-stable — the first clip of each must go through the dedupe
		// verification (trusted=false).
		s.splitByBudgetSoA(self, 0, k-1, poly, area, bb, false)
	}
	return s.refs
}

// DominatingRegionBatch is the self-contained batch entry: it rebuilds the
// rel slabs from others and runs DominatingRegionSoA — the drop-in
// replacement for DominatingRegionScratch when no incremental rel state is
// being carried. The engine's expanding search uses the incremental API
// directly.
func DominatingRegionBatch(self Site, others []Site, k int, clip []geom.Polygon, s *Scratch) []geom.PolyRef {
	s.ResetRel()
	for _, o := range others {
		if o.ID == self.ID {
			continue
		}
		s.AppendRel(self, o, o.Pos.Dist2(self.Pos))
	}
	s.SortRelTail(0)
	return DominatingRegionSoA(self, k, clip, s)
}

// splitByBudgetSoA is splitByBudgetScratch on the slabs: identical control
// flow, identical predicates, bitwise-identical survivors. The bisector
// coefficients come from the same geom.Bisector call the scalar walk makes
// (computed on first visit, memoized for revisits along with |N|), and the
// clips run through the fast entries (geom.PolySlab.ClipHalfPlaneFast /
// ClipSplitFast), which screen out provably no-op clips in O(1) using the
// polygon's caller-tracked area and bounding box and fall back to the exact
// scalar-equivalent emission otherwise. Identity clips leave the polygon ref
// — and therefore its area, bbox, pruning bound, and corner norm — unchanged,
// so the recomputation the scalar walk does after every clip is skipped
// exactly when it would reproduce the same values over the same vertices.
//
// Callers pass area, bb = Slab.AreaBBox(poly) and whether poly is known
// dedupe-stable (trusted). Recursion branches are always trusted: every
// polygon a clip emission builds has been through dedupeTail, and later
// clips see equal-or-smaller bounding boxes, hence equal-or-smaller dedupe
// tolerances.
func (s *Scratch) splitByBudgetSoA(self Site, j, budget int, poly geom.PolyRef, area float64, bb geom.BBox, trusted bool) {
	bound := maxDistToBBox(self.Pos, bb)
	mN := bb.MaxCornerNorm()
	for ; j < len(s.relD2); j++ {
		if poly.N < 3 || area < 1e-16 {
			return
		}
		d2 := s.relD2[j]
		if d2 >= 4*bound*bound {
			break // this and all farther neighbors leave poly untouched
		}
		if d2 < coincidentTol {
			// Coincident generator: tie broken by index uniformly over the
			// whole plane.
			if int(s.relVal[j]>>32) < self.ID {
				if budget == 0 {
					return
				}
				budget--
			}
			continue
		}
		slot := int(s.relVal[j] & 0xffffffff)
		if math.IsNaN(s.relHc[slot]) {
			// First visit: the same geom.Bisector call the scalar walk makes
			// (including its coincident-generator panic), memoized for
			// recursion-branch revisits.
			b := geom.Bisector(self.Pos, geom.Point{X: s.relHx[slot], Y: s.relHy[slot]})
			s.relHx[slot], s.relHy[slot], s.relHc[slot] = b.N.X, b.N.Y, b.C
			s.relHn[slot] = b.N.Norm()
		}
		h := geom.HalfPlane{N: geom.Point{X: s.relHx[slot], Y: s.relHy[slot]}, C: s.relHc[slot]}
		nNorm := s.relHn[slot]
		var same bool
		if budget == 0 {
			// No allowance left: keep only the part where o is not closer.
			poly, same = s.Slab.ClipHalfPlaneFast(poly, h, nNorm, bb, mN, trusted)
		} else {
			// Branch: the part where o is closer consumes one budget unit.
			var closer geom.PolyRef
			poly, closer, same = s.Slab.ClipSplitFast(poly, h, nNorm, bb, mN, trusted)
			if closer.N >= 3 {
				ca, cbb := s.Slab.AreaBBox(closer)
				if ca >= 1e-16 {
					s.splitByBudgetSoA(self, j+1, budget-1, closer, ca, cbb, true)
				}
			}
		}
		trusted = true // any clip output (or verified identity) is dedupe-stable
		if !same {
			if poly.N >= 3 {
				area, bb = s.Slab.AreaBBox(poly)
				bound = maxDistToBBox(self.Pos, bb)
				mN = bb.MaxCornerNorm()
			} else {
				area = 0
			}
		}
	}
	if poly.N >= 3 && area >= 1e-16 {
		s.refs = append(s.refs, poly)
	}
}

// ClipToConvexSoA clips each survivor ref against the convex CCW polygon
// clip — the batch form of Scratch.ClipToConvex, edge-major through
// geom.PolySlab.ClipHalfPlaneBatch so each clipping round's output stays
// contiguous in the slab. refs is mutated in place as working storage; the
// returned refs (the pieces with ≥ 3 vertices and non-negligible area, in
// input order) are valid until the next DominatingRegionSoA call on s.
func (s *Scratch) ClipToConvexSoA(refs []geom.PolyRef, clip geom.Polygon) []geom.PolyRef {
	n := len(clip)
	for i := 0; i < n; i++ {
		h := geom.HalfPlaneFromEdge(clip[i], clip[(i+1)%n])
		s.Slab.ClipHalfPlaneBatch(refs, h)
	}
	s.refs2 = s.refs2[:0]
	for _, r := range refs {
		if r.N >= 3 && s.Slab.Area(r) > 1e-16 {
			s.refs2 = append(s.refs2, r)
		}
	}
	return s.refs2
}

// CompactRefs copies the referenced polygons out of the slab into freshly
// allocated minimal storage — one backing vertex array plus one header
// slice, two allocations total — the ref-space analogue of CompactRegion.
// An empty region compacts to nil.
func CompactRefs(slab *geom.PolySlab, refs []geom.PolyRef) []geom.Polygon {
	if len(refs) == 0 {
		return nil
	}
	total := 0
	for _, r := range refs {
		total += r.N
	}
	backing := make([]geom.Point, 0, total)
	out := make([]geom.Polygon, len(refs))
	for i, r := range refs {
		start := len(backing)
		backing = slab.AppendTo(backing, r)
		out[i] = geom.Polygon(backing[start:len(backing):len(backing)])
	}
	return out
}

// MaxDistFromRefs returns the farthest distance from q to any vertex of the
// referenced polygons — MaxDistFrom on the slab.
func MaxDistFromRefs(q geom.Point, slab *geom.PolySlab, refs []geom.PolyRef) float64 {
	var m float64
	for _, r := range refs {
		if d := slab.MaxDistFrom(r, q); d > m {
			m = d
		}
	}
	return m
}

// VerticesOfRefsInto appends all vertices of the referenced polygons to buf
// and returns it — VerticesInto on the slab.
func VerticesOfRefsInto(buf []geom.Point, slab *geom.PolySlab, refs []geom.PolyRef) []geom.Point {
	for _, r := range refs {
		buf = slab.AppendTo(buf, r)
	}
	return buf
}
