package voronoi

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
)

// refsEqualBits fails unless the referenced slab polygons are bitwise equal
// to the scalar region — piece count, vertex counts, and every coordinate.
func refsEqualBits(t *testing.T, want []geom.Polygon, slab *geom.PolySlab, got []geom.PolyRef) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("piece count: scalar %d, batch %d", len(want), len(got))
	}
	for pi, p := range want {
		r := got[pi]
		if len(p) != r.N {
			t.Fatalf("piece %d: scalar %d verts, batch %d", pi, len(p), r.N)
		}
		for i, v := range p {
			g := slab.Vertex(r, i)
			if math.Float64bits(v.X) != math.Float64bits(g.X) ||
				math.Float64bits(v.Y) != math.Float64bits(g.Y) {
				t.Fatalf("piece %d vertex %d: scalar %v, batch %v", pi, i, v, g)
			}
		}
	}
}

// TestDominatingRegionBatchMatchesScalar sweeps random site sets, coverage
// orders and every query site, requiring the batch kernel to be bitwise equal
// to the scalar scratch kernel — including with coincident site clusters that
// exercise the index tie-break.
func TestDominatingRegionBatchMatchesScalar(t *testing.T) {
	reg := region.UnitSquareKm()
	var sc, sb Scratch
	for _, seed := range []int64{1, 7, 42} {
		for _, n := range []int{5, 30, 80} {
			sites := scratchSites(n, seed)
			if n > 6 {
				// Coincident cluster: exact duplicates tie-break by ID.
				sites[4].Pos = sites[2].Pos
				sites[6].Pos = sites[2].Pos
			}
			for _, k := range []int{1, 2, 4} {
				for _, self := range sites {
					want := DominatingRegionScratch(self, sites, k, reg.Pieces(), &sc)
					got := DominatingRegionBatch(self, sites, k, reg.Pieces(), &sb)
					refsEqualBits(t, want, &sb.Slab, got)
				}
			}
		}
	}
}

// TestDominatingRegionBatchWithHoles runs the comparison over a multi-piece
// clip region (square with a hole → pieces), so the per-piece walk and the
// survivor ordering across pieces are covered.
func TestDominatingRegionBatchWithHoles(t *testing.T) {
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.6, 0.6)})
	reg := region.MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	sites := scratchSites(40, 13)
	var sc, sb Scratch
	for _, self := range sites {
		want := DominatingRegionScratch(self, sites, 3, reg.Pieces(), &sc)
		got := DominatingRegionBatch(self, sites, 3, reg.Pieces(), &sb)
		refsEqualBits(t, want, &sb.Slab, got)
	}
}

// TestIncrementalRelMatchesRebuild feeds the rel slabs in radius chunks —
// the engine's expanding-search pattern: append only the suffix beyond the
// previous radius, sort the tail — and requires the result to be bitwise
// equal to a full rebuild-and-sort (and to the scalar kernel).
func TestIncrementalRelMatchesRebuild(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(23))
	var sc, sb Scratch
	for trial := 0; trial < 30; trial++ {
		sites := scratchSites(60, int64(trial))
		self := sites[rng.Intn(len(sites))]
		k := 1 + rng.Intn(3)

		// Incremental build over three expanding radii.
		radii := []float64{0.2, 0.4, 1.6}
		sb.ResetRel()
		prevRho2 := 0.0
		for _, rho := range radii {
			rho2 := rho * rho
			start := sb.RelLen()
			for _, o := range sites {
				d2 := o.Pos.Dist2(self.Pos)
				if d2 < rho2 && d2 >= prevRho2 {
					sb.AppendRel(self, o, d2)
				}
			}
			sb.SortRelTail(start)
			prevRho2 = rho2
		}
		got := DominatingRegionSoA(self, k, reg.Pieces(), &sb)

		// Oracle: scalar kernel over the same final neighbor set.
		final := sites[:0:0]
		for _, o := range sites {
			if o.Pos.Dist2(self.Pos) < prevRho2 {
				final = append(final, o)
			}
		}
		want := DominatingRegionScratch(self, final, k, reg.Pieces(), &sc)
		refsEqualBits(t, want, &sb.Slab, got)
	}
}

// TestClipToConvexSoAMatchesScalar checks the edge-major ring closure against
// the scalar ClipToConvex, bitwise.
func TestClipToConvexSoAMatchesScalar(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(20, 5)
	ring := geom.RegularPolygon(geom.Circle{Center: geom.Pt(0.5, 0.5), R: 0.3}, 48, 0.065)
	var sc, sb Scratch
	for _, self := range sites {
		polys := DominatingRegionScratch(self, sites, 2, reg.Pieces(), &sc)
		want := sc.ClipToConvex(polys, ring)
		refs := DominatingRegionBatch(self, sites, 2, reg.Pieces(), &sb)
		got := sb.ClipToConvexSoA(refs, ring)
		refsEqualBits(t, want, &sb.Slab, got)
	}
}

// TestCompactRefs mirrors TestCompactRegion for the ref-space copy-out.
func TestCompactRefs(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(25, 9)
	var sc, sb Scratch
	want := CompactRegion(DominatingRegionScratch(sites[0], sites, 3, reg.Pieces(), &sc))
	refs := DominatingRegionBatch(sites[0], sites, 3, reg.Pieces(), &sb)
	compact := CompactRefs(&sb.Slab, refs)
	if !reflect.DeepEqual(asValues(compact), asValues(want)) {
		t.Fatal("CompactRefs differs from CompactRegion of the scalar result")
	}
	for i, p := range compact {
		if cap(p) != len(p) {
			t.Errorf("piece %d: cap %d != len %d (not minimal)", i, cap(p), len(p))
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { CompactRefs(&sb.Slab, refs) }); allocs > 2 {
		t.Errorf("CompactRefs allocates %v/op, want <= 2", allocs)
	}
	if CompactRefs(&sb.Slab, nil) != nil {
		t.Error("CompactRefs of no refs should be nil")
	}
	// Mutating the scratch afterwards must not disturb the compacted copy.
	before := asValues(compact)
	for _, self := range sites {
		DominatingRegionBatch(self, sites, 3, reg.Pieces(), &sb)
	}
	if !reflect.DeepEqual(asValues(compact), before) {
		t.Error("compacted region aliases slab storage")
	}
}

// TestRefHelpersMatchScalar checks MaxDistFromRefs and VerticesOfRefsInto
// against their scalar counterparts.
func TestRefHelpersMatchScalar(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(15, 11)
	var sc, sb Scratch
	self := sites[0]
	polys := DominatingRegionScratch(self, sites, 2, reg.Pieces(), &sc)
	refs := DominatingRegionBatch(self, sites, 2, reg.Pieces(), &sb)
	wantD := MaxDistFrom(self.Pos, polys)
	gotD := MaxDistFromRefs(self.Pos, &sb.Slab, refs)
	if math.Float64bits(wantD) != math.Float64bits(gotD) {
		t.Fatalf("max dist: scalar %v, batch %v", wantD, gotD)
	}
	buf := make([]geom.Point, 0, 64)
	wantV := VerticesInto(buf[:0], polys)
	gotV := VerticesOfRefsInto(make([]geom.Point, 0, 64), &sb.Slab, refs)
	if !reflect.DeepEqual(wantV, gotV) {
		t.Fatal("VerticesOfRefsInto differs from VerticesInto")
	}
}

// TestBatchCoincidentPanicParity: generators inside the Bisector Eq tolerance
// but outside the index tie-break band make the scalar walk panic; the batch
// walk must reproduce it (and not panic any earlier than the walk reaches the
// offending generator).
func TestBatchCoincidentPanicParity(t *testing.T) {
	reg := region.UnitSquareKm()
	self := Site{ID: 0, Pos: geom.Pt(0.5, 0.5)}
	near := Site{ID: 1, Pos: geom.Pt(0.5+4e-10, 0.5)} // within Eq, above coincidentTol
	others := []Site{self, near, {ID: 2, Pos: geom.Pt(0.2, 0.8)}}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected coincident-generator panic", name)
			}
		}()
		f()
	}
	var sc, sb Scratch
	mustPanic("scalar", func() { DominatingRegionScratch(self, others, 1, reg.Pieces(), &sc) })
	mustPanic("batch", func() { DominatingRegionBatch(self, others, 1, reg.Pieces(), &sb) })
}

// TestDominatingRegionBatchZeroAllocs: a warmed batch scratch computes
// regions with zero heap allocations, like the scalar kernel.
func TestDominatingRegionBatchZeroAllocs(t *testing.T) {
	reg := region.UnitSquareKm()
	sites := scratchSites(60, 3)
	s := &Scratch{}
	pieces := reg.Pieces()
	for _, self := range sites {
		DominatingRegionBatch(self, sites, 2, pieces, s)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, self := range sites {
			DominatingRegionBatch(self, sites, 2, pieces, s)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed DominatingRegionBatch allocates %v/run over %d sites, want 0", allocs, len(sites))
	}
}

// BenchmarkBatchKernelDominatingRegion compares the batch and scalar kernels
// on the same workload: every site's dominating region over a uniform field.
func BenchmarkBatchKernelDominatingRegion(b *testing.B) {
	reg := region.UnitSquareKm()
	pieces := reg.Pieces()
	for _, n := range []int{100, 400} {
		sites := scratchSites(n, 3)
		b.Run(benchName("batch", n), func(b *testing.B) {
			s := &Scratch{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, self := range sites {
					DominatingRegionBatch(self, sites, 2, pieces, s)
				}
			}
		})
		b.Run(benchName("scalar", n), func(b *testing.B) {
			s := &Scratch{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, self := range sites {
					DominatingRegionScratch(self, sites, 2, pieces, s)
				}
			}
		})
	}
}

// BenchmarkBatchKernelClipToConvex compares the edge-major slab ring closure
// against the scalar per-piece path.
func BenchmarkBatchKernelClipToConvex(b *testing.B) {
	reg := region.UnitSquareKm()
	pieces := reg.Pieces()
	sites := scratchSites(100, 5)
	ring := geom.RegularPolygon(geom.Circle{Center: geom.Pt(0.5, 0.5), R: 0.3}, 48, 0.065)
	b.Run("batch", func(b *testing.B) {
		s := &Scratch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, self := range sites {
				refs := DominatingRegionBatch(self, sites, 2, pieces, s)
				s.ClipToConvexSoA(refs, ring)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		s := &Scratch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, self := range sites {
				polys := DominatingRegionScratch(self, sites, 2, pieces, s)
				s.ClipToConvex(polys, ring)
			}
		}
	})
}

func benchName(kind string, n int) string {
	switch n {
	case 100:
		return kind + "/n=100"
	case 400:
		return kind + "/n=400"
	default:
		return kind
	}
}
