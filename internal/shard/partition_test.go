package shard

import (
	"math"
	"math/rand"
	"testing"

	"laacad/internal/region"
)

// TestPartitionEveryNodeExactlyOneShard property-tests the ownership
// function: every x-coordinate inside the region maps to exactly one stripe,
// and that stripe's interval actually contains the coordinate (half-open
// below the last cut, closed at the top edge).
func TestPartitionEveryNodeExactlyOneShard(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(1))
	for _, s := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := NewPartition(reg, s)
		xmin, xmax := p.XRange()
		for trial := 0; trial < 2000; trial++ {
			var x float64
			switch trial % 4 {
			case 0:
				x = xmin + rng.Float64()*(xmax-xmin)
			case 1: // exact cut points — the half-open contract's edge
				x = p.Cut(rng.Intn(s + 1))
			case 2: // just below a cut
				x = math.Nextafter(p.Cut(rng.Intn(s+1)), math.Inf(-1))
			default: // just above a cut
				x = math.Nextafter(p.Cut(rng.Intn(s+1)), math.Inf(1))
			}
			if x < xmin || x > xmax {
				continue
			}
			owner := p.Shard(x)
			if owner < 0 || owner >= s {
				t.Fatalf("s=%d x=%v: owner %d out of range", s, x, owner)
			}
			// Count stripes claiming x under the ownership definition:
			// [Cut(i), Cut(i+1)) for i < s-1, [Cut(s-1), Cut(s)] for the last.
			claims := 0
			for i := 0; i < s; i++ {
				lo, hi := p.Bounds(i)
				if x >= lo && (x < hi || (i == s-1 && x <= hi)) {
					claims++
				}
			}
			if claims != 1 {
				t.Fatalf("s=%d x=%v: %d stripes claim the node, want exactly 1", s, x, claims)
			}
			lo, hi := p.Bounds(owner)
			if x < lo || x > hi {
				t.Fatalf("s=%d x=%v: owner stripe %d spans [%v,%v], does not contain x", s, x, owner, lo, hi)
			}
		}
	}
}

// TestPartitionHaloSymmetry property-tests halo reachability: stripe j lies
// within halo width w of stripe i exactly when i lies within w of j — the
// symmetry that makes the serve protocol's pairwise exchanges well-defined
// (if A must see B's border, B must see A's).
func TestPartitionHaloSymmetry(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(2))
	for _, s := range []int{2, 3, 4, 8} {
		p := NewPartition(reg, s)
		for trial := 0; trial < 500; trial++ {
			w := rng.Float64() * 1.5 // halo widths up to 1.5× the region
			for i := 0; i < s; i++ {
				ilo, ihi := p.Bounds(i)
				for j := 0; j < s; j++ {
					jlo, jhi := p.Bounds(j)
					// Stripe j intersects i's w-widened band iff the interval
					// gap is ≤ w — a symmetric relation.
					ij := jlo <= ihi+w && jhi >= ilo-w
					ji := ilo <= jhi+w && ihi >= jlo-w
					if ij != ji {
						t.Fatalf("s=%d w=%v: halo reach asymmetric between stripes %d and %d", s, w, i, j)
					}
					// Overlapping must cover every strictly-reachable stripe
					// (strict: exact cut-point grazes are ownership-dependent).
					if jlo < ihi+w && jhi > ilo-w {
						first, last := p.Overlapping(ilo-w, ihi+w)
						if j < first || j > last {
							t.Fatalf("s=%d w=%v: stripe %d reachable from %d but outside Overlapping=[%d,%d]",
								s, w, j, i, first, last)
						}
					}
				}
			}
		}
	}
}

// TestAssignmentIncrementalMatchesScratch property-tests the live ownership
// map: after any interleaving of AddNode, RemoveNode and Move, the
// incrementally maintained Assignment is identical to one rebuilt from
// scratch over the current coordinates.
func TestAssignmentIncrementalMatchesScratch(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(3))
	for _, s := range []int{1, 2, 4, 8} {
		p := NewPartition(reg, s)
		xmin, xmax := p.XRange()
		randX := func() float64 { return xmin + rng.Float64()*(xmax-xmin) }
		xs := make([]float64, 32)
		for i := range xs {
			xs[i] = randX()
		}
		a := NewAssignment(p, xs)
		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 2: // add
				x := randX()
				id := a.AddNode(x)
				if id != len(xs) {
					t.Fatalf("AddNode returned %d, want %d", id, len(xs))
				}
				xs = append(xs, x)
			case r < 4 && len(xs) > 1: // remove (renumbers above)
				i := rng.Intn(len(xs))
				a.RemoveNode(i)
				xs = append(xs[:i], xs[i+1:]...)
			default: // move
				i := rng.Intn(len(xs))
				xs[i] = randX()
				if got, want := a.Move(i, xs[i]), p.Shard(xs[i]); got != want {
					t.Fatalf("Move returned %d, want %d", got, want)
				}
			}
			if a.Len() != len(xs) {
				t.Fatalf("op %d: Len %d, want %d", op, a.Len(), len(xs))
			}
		}
		fresh := NewAssignment(p, xs)
		for i := range xs {
			if a.Owner(i) != fresh.Owner(i) {
				t.Fatalf("s=%d: node %d incremental owner %d != from-scratch %d", s, i, a.Owner(i), fresh.Owner(i))
			}
		}
	}
}
