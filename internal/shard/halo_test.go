package shard

import (
	"testing"

	"laacad/internal/core"
	"laacad/internal/region"
)

// TestHaloTrafficRhoBallBound asserts the metered halo traffic against the
// per-round ρ-ball bound the protocol is built on:
//
//   - Batch messages: migration and each serve cycle send at most one batch
//     per ordered shard pair, so a round's message count is bounded by
//     (1 + serve cycles) · S·(S−1) — independent of n.
//
//   - Batch entries: a serve cycle delivers to shard s at most the non-owned
//     nodes inside its granted window, and the window is by construction the
//     union of the shard's owned read balls (ρ-balls) clamped to the region —
//     so entry traffic is bounded by the nodes the ρ-balls actually reach
//     across stripe borders, plus the previous round's movers (migration).
func TestHaloTrafficRhoBallBound(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := core.DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 40
	start := uniformStart(40, 5)
	eng, err := New(reg, start, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng.start()
	defer eng.shutdown()
	S := eng.Shards()
	prev := eng.HaloStats()
	prevMoved := 0
	for r := 1; r <= cfg.MaxRounds; r++ {
		startPos := eng.Positions() // the truth the round's serves transmit
		stats, done := eng.step()
		cur := eng.HaloStats()
		dMsgs := cur.Msgs - prev.Msgs
		dBytes := cur.Bytes - prev.Bytes
		dExch := cur.Exchanges - prev.Exchanges
		if maxMsgs := (1 + dExch) * int64(S*(S-1)); dMsgs > maxMsgs {
			t.Fatalf("round %d: %d halo messages > structural bound %d (%d exchanges)", r, dMsgs, maxMsgs, dExch)
		}
		// Entries across all batches this round (16 bytes framing + 24 per
		// (id, x, y) entry; no posUpdates in Synchronous order).
		entries := (dBytes - 16*dMsgs) / 24
		var perCycle int64
		for s := 0; s < S; s++ {
			win := eng.windows[s]
			for g, p := range startPos {
				if eng.assign.Owner(g) != s && win.contains(p.X) {
					perCycle++
				}
			}
		}
		if bound := int64(prevMoved) + dExch*perCycle; entries > bound {
			t.Fatalf("round %d: %d halo entries > ρ-ball bound %d (%d non-owned window nodes × %d cycles + %d migrations)",
				r, entries, bound, perCycle, dExch, prevMoved)
		}
		prev = cur
		prevMoved = stats.Moved
		if done {
			return
		}
	}
}
