package shard

import (
	"sync/atomic"

	"laacad/internal/core"
	"laacad/internal/geom"
)

// Typed channel protocol between the orchestrator and the shard goroutines.
//
// Each shard owns three channels: a command channel (orchestrator → shard), a
// reply channel (shard → orchestrator) and a data inbox (anyone → shard).
// Data messages — position batches — flow shard-to-shard and orchestrator-to-
// shard; commands and replies only between the orchestrator and one shard.
//
// Ordering contract: every command carries `expect`, the total number of data
// messages ever sent to that shard at the moment the command was issued (the
// orchestrator learns send counts from the sender's reply before issuing the
// next command, so the count is exact). The shard drains its inbox until it
// has seen `expect` messages before executing the command — a happens-before
// fence that makes the protocol deterministic without any global locks. Data
// inboxes are buffered generously (≥ n + O(shards) slots) so a sender never
// blocks on a shard that is not currently draining; that capacity bound is
// what makes the protocol deadlock-free.

// op enumerates the orchestrator's commands.
type op int

const (
	// opMigrate: hand off owned nodes whose position left the stripe
	// (migrateMsg to the new owner), reply with per-target send counts.
	opMigrate op = iota
	// opAbsorb: take ownership of migrated-in nodes, predict the halo width
	// and reply with the desired window.
	opAbsorb
	// opServe: send each requesting shard the positions of owned nodes inside
	// its band (serveMsg), reply with per-target send counts.
	opServe
	// opMergeRefresh: wholesale window refresh — reconcile buffered serves
	// against the membership (add/update/remove), enforce the cache validity
	// invariant, rebuild the local network.
	opMergeRefresh
	// opMergeDelta: incorporate buffered serves for a window extension
	// (adds/updates only, no removal sweep) and widen the window.
	opMergeDelta
	// opComputeSync: compute outcomes for all owned nodes (or the pending
	// retry set) at start-of-round positions; reply with any halo deficit.
	opComputeSync
	// opCommitSync: apply the computed moves, fold partial round statistics.
	opCommitSync
	// opTurn: Sequential order — run one node's turn (compute, and commit if
	// trusted); reply with the move or a halo deficit.
	opTurn
	// opFold: Sequential order — fold the round's partial statistics.
	opFold
	// opFinalRhat: reply with the owned nodes' last-round R̂ values.
	opFinalRhat
	// opFinalRegions: reply with radii (and polygons) measured from the
	// retained last-round regions (converged KeepRegions runs).
	opFinalRegions
	// opFinalRecompute: out-of-round region recomputation at the final
	// positions (unconverged runs); reply radii/polygons or a halo deficit.
	opFinalRecompute
)

// cmd is one orchestrator command. expect is the data-message fence (see
// package comment); the remaining fields are per-op payloads.
type cmd struct {
	op     op
	expect int64
	round  int // Step round (opCompute*/opTurn) or negative final tag
	// bands[r] is the x-band shard r requested, for opServe (the issuing
	// shard skips itself and empty bands).
	bands []xband
	// window is the granted window for opMergeRefresh/opMergeDelta.
	window xband
	// node is the global ID taking its turn (opTurn).
	node int
	// retry marks an opComputeSync/opTurn/opFinalRecompute re-issue after a
	// deficit was served: only pending nodes recompute.
	retry bool
}

// xband is a closed x-interval, clamped to the region's bounding box. ok
// distinguishes an absent band from a real one.
type xband struct {
	lo, hi float64
	ok     bool
}

// contains reports whether x lies in the band.
func (b xband) contains(x float64) bool { return b.ok && x >= b.lo && x <= b.hi }

// union widens b to cover o.
func (b xband) union(o xband) xband {
	if !o.ok {
		return b
	}
	if !b.ok {
		return o
	}
	if o.lo < b.lo {
		b.lo = o.lo
	}
	if o.hi > b.hi {
		b.hi = o.hi
	}
	return b
}

// reply is a shard's answer to one command.
type reply struct {
	shard int
	// sentTo[r] counts data messages this command sent to shard r
	// (opMigrate, opServe) — the orchestrator folds them into its fence
	// counters before issuing the next command to r.
	sentTo []int64
	// window is the shard's desired window (opAbsorb) or deficit request
	// (opComputeSync/opTurn/opFinalRecompute when pending work remains).
	window xband
	// moved/old/new report a Sequential turn's committed move (opTurn).
	moved    bool
	old, new geom.Point
	// stats is the shard's partial round fold (opCommitSync, opFold) and
	// movedNodes the applied moves for the orchestrator's position mirror.
	stats      partialStats
	movedNodes []movedPos
	// ids/vals/polys carry the finalization payloads (opFinal*).
	ids   []int
	vals  []float64
	polys [][]geom.Polygon
	// msgs is the message cost charged by finalization recomputes
	// (opFinalRecompute).
	msgs int64
}

// movedPos is one applied move, in global IDs.
type movedPos struct {
	id       int
	old, new geom.Point
}

// partialStats is one shard's contribution to a round's RoundStats, folded
// over its owned nodes in ascending global-ID order. Extrema and counts over
// disjoint ID sets merge order-independently and bitwise-equal to the
// engine's single fold.
type partialStats struct {
	maxCR, minCR float64 // minCR is +Inf when no non-empty outcome
	maxRhat      float64
	maxMove      float64
	moved        int
	messages     int64
}

// dataMsg is a position batch delivered to a shard's inbox. Exactly three
// implementations exist: serveMsg, migrateMsg, posUpdateMsg.
type dataMsg interface{ isDataMsg() }

// serveMsg carries the positions of the sender's owned nodes inside a
// requested band — the ρ-halo exchange payload.
type serveMsg struct {
	from int
	ids  []int // global IDs, ascending
	pos  []geom.Point
}

// migrateMsg hands ownership of nodes whose position left the sender's
// stripe to the receiver. hints/reads carry each node's warm-start and
// read-radius history: the engine's rhoHint is deployment-global and follows
// the node wherever it roams, so the shard-local copy must travel with
// ownership — a recompute started from a stale hint walks a different probe
// sequence and breaks bit-identity in the last ulp.
type migrateMsg struct {
	from  int
	ids   []int
	pos   []geom.Point
	hints []float64
	reads []float64
}

// posUpdateMsg propagates one Sequential mid-round committed move to shards
// whose window sees either endpoint. Routed by the orchestrator.
type posUpdateMsg struct {
	id       int
	old, new geom.Point
}

func (serveMsg) isDataMsg()     {}
func (migrateMsg) isDataMsg()   {}
func (posUpdateMsg) isDataMsg() {}

// HaloStats is the cumulative halo-exchange traffic of a sharded run: the
// metered cost of keeping the shards' windows coherent. msgs counts data
// messages (batches count once), bytes their serialized size (16 bytes of
// framing per message plus 24 per (id, x, y) entry, 40 for a posUpdate's
// id + both endpoints), exchanges the serve cycles (one per wholesale
// refresh, one per deficit extension).
type HaloStats struct {
	Msgs, Bytes, Exchanges int64
}

// haloCounters is the atomic store behind HaloStats; shards and the
// orchestrator increment it concurrently, metrics gauges read it live.
type haloCounters struct {
	msgs, bytes, exchanges atomic.Int64
}

func (h *haloCounters) batch(entries int) {
	h.msgs.Add(1)
	h.bytes.Add(16 + 24*int64(entries))
}

func (h *haloCounters) posUpdate() {
	h.msgs.Add(1)
	h.bytes.Add(16 + 40)
}

func (h *haloCounters) snapshot() HaloStats {
	return HaloStats{
		Msgs:      h.msgs.Load(),
		Bytes:     h.bytes.Load(),
		Exchanges: h.exchanges.Load(),
	}
}

// entry is one node's cached round outcome on a shard, the shard-side mirror
// of the engine's nodeCache. Validity invariant: the invalidation ball
// (invRad around the node) has been inside the shard's window at every round
// since the entry was computed, and no known position change touched it —
// so recomputing would reproduce out bit for bit, and reusing it is exactly
// the engine's cache hit.
type entry struct {
	valid bool
	flag  bool // boundary flag the outcome was computed under (Localized)
	inv   float64
	cost  int64
	out   core.StepOutcome
}
