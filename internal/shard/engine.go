package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"laacad/internal/boundary"
	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/snapshot"
)

// Engine is the sharded LAACAD engine: a drop-in Runner that executes the
// same rounds as core.Engine, but with the deployment partitioned into
// stripe-owned shards (one goroutine each) exchanging ρ-halos of border
// positions over typed channels. Trajectories, trace, radii and message
// totals are bit-identical to the shared-memory engine for every shard
// count, worker count and update order — asserted by the bit-identity
// matrix test.
//
// The orchestrator (this type) runs the round protocol: migrate ownership,
// grant windows, drive the serve/merge halo exchange, fan computation out to
// the shards, fold their partial statistics, and route Sequential mid-round
// position updates. It keeps a global position mirror so Snapshot works at
// any round boundary without consulting the shards.
type Engine struct {
	cfg  core.Config
	reg  *region.Region
	bbox geom.BBox
	part Partition
	// assign tracks node→shard ownership; re-derived from the position
	// mirror at each round's migration point (the same pure function the
	// shards apply, so orchestrator and shards never disagree).
	assign *Assignment
	// fallbackRad is the expanding search's density guess — the first-round
	// halo width prediction before any node has a read-radius history.
	fallbackRad float64

	workers []*worker
	cmds    []chan cmd
	replies chan reply
	inbox   []chan dataMsg
	started bool
	once    sync.Once

	pos       []geom.Point // global position mirror (current truth)
	windows   []xband      // each shard's granted window
	sent      []int64      // data messages ever sent to each shard (fences)
	round     int
	converged bool
	stepped   bool // a round completed this session (finalization shortcuts)
	trace     []core.RoundStats
	roundMsgs int64
	msgBase   int64
	finalMsgs int64
	observer  func(core.RoundStats) error
	halo      haloCounters
	final     *core.Result
}

// New builds a sharded engine over reg with the given initial positions
// (clamped inside the region, like core.New) and shard count. Localized mode
// with more than one shard requires a per-node boundary detector (or the
// default): a global detector reads every position, which no window short of
// the whole deployment can serve.
func New(reg *region.Region, initial []geom.Point, cfg core.Config, shards int) (*Engine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	st0, err := core.NewStepper(reg, len(initial), cfg)
	if err != nil {
		return nil, err
	}
	cfg = st0.Config() // normalized (RingCap default applied)
	if shards > 1 && cfg.Mode == core.Localized && cfg.Detector != nil {
		if _, ok := cfg.Detector.(boundary.PerNode); !ok {
			return nil, fmt.Errorf("shard: Localized mode with %d shards requires a per-node boundary detector", shards)
		}
	}
	n := len(initial)
	pos := make([]geom.Point, n)
	xs := make([]float64, n)
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
		xs[i] = pos[i].X
	}
	part := NewPartition(reg, shards)
	S := part.Shards()
	diag := reg.BBox().Diagonal()
	e := &Engine{
		cfg:         cfg,
		reg:         reg,
		bbox:        reg.BBox(),
		part:        part,
		assign:      NewAssignment(part, xs),
		fallbackRad: diag / math.Sqrt(float64(n)) * math.Sqrt(float64(4*cfg.K+4)),
		pos:         pos,
		windows:     make([]xband, S),
		sent:        make([]int64, S),
		cmds:        make([]chan cmd, S),
		replies:     make(chan reply, S),
		inbox:       make([]chan dataMsg, S),
	}
	owners := make([]int, n)
	for g := 0; g < n; g++ {
		owners[g] = e.assign.Owner(g)
	}
	for s := 0; s < S; s++ {
		e.cmds[s] = make(chan cmd, 1)
		e.inbox[s] = make(chan dataMsg, n+4*S+64)
		st, err := core.NewStepper(reg, n, cfg)
		if err != nil {
			return nil, err
		}
		w := newWorker(s, e, st, n)
		w.seed(pos, owners)
		e.workers = append(e.workers, w)
	}
	return e, nil
}

// Resume reconstructs a sharded engine from an engine checkpoint — the
// sharded counterpart of core.Resume (same schema, KindEngine).
func Resume(reg *region.Region, st *snapshot.State, shards int) (*Engine, error) {
	if st.Kind != snapshot.KindEngine {
		return nil, fmt.Errorf("shard: cannot resume %q checkpoint with the sharded engine", st.Kind)
	}
	e, err := New(reg, st.Positions(), core.ConfigFromState(st.Config), shards)
	if err != nil {
		return nil, err
	}
	e.round = st.Round
	e.converged = st.Converged
	e.msgBase = st.Messages
	e.trace = make([]core.RoundStats, len(st.Trace))
	for i, tr := range st.Trace {
		e.trace[i] = core.RoundStats{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
			Messages:        tr.Messages,
		}
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.part.Shards() }

// Config returns the (normalized) configuration.
func (e *Engine) Config() core.Config { return e.cfg }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Converged reports whether the last round moved no node.
func (e *Engine) Converged() bool { return e.converged }

// Trace returns the per-round statistics collected so far.
func (e *Engine) Trace() []core.RoundStats { return e.trace }

// Positions returns a copy of the current node positions (the mirror).
func (e *Engine) Positions() []geom.Point { return append([]geom.Point(nil), e.pos...) }

// HaloStats returns the cumulative halo-exchange traffic counters. Safe to
// call concurrently with a running round (atomics).
func (e *Engine) HaloStats() HaloStats { return e.halo.snapshot() }

// SetObserver installs the per-round callback Run invokes after every
// completed round (scenario.observable).
func (e *Engine) SetObserver(fn func(core.RoundStats) error) { e.observer = fn }

func (e *Engine) start() {
	e.once.Do(func() {
		for _, w := range e.workers {
			go w.loop()
		}
		e.started = true
	})
}

// shutdown closes the command channels, releasing the shard goroutines.
// Terminal: the engine can only serve mirror reads afterwards.
func (e *Engine) shutdown() {
	if !e.started {
		return
	}
	for _, c := range e.cmds {
		close(c)
	}
	e.started = false
}

// send issues one command to shard s with the current data-message fence.
func (e *Engine) send(s int, c cmd) {
	c.expect = e.sent[s]
	e.cmds[s] <- c
}

// collect gathers k replies, folding any send counts into the fences.
func (e *Engine) collect(k int) []reply {
	out := make([]reply, 0, k)
	for i := 0; i < k; i++ {
		r := <-e.replies
		for t, c := range r.sentTo {
			e.sent[t] += c
		}
		out = append(out, r)
	}
	return out
}

// broadcast sends c to every shard and collects all replies.
func (e *Engine) broadcast(c cmd) []reply {
	S := e.part.Shards()
	for s := 0; s < S; s++ {
		e.send(s, c)
	}
	return e.collect(S)
}

// serveCycle runs one halo serve: every shard serves each requested band
// from its owned set. bands[r] is what shard r asked for; empty requests are
// skipped. Counts one exchange when any request exists.
func (e *Engine) serveCycle(bands []xband) {
	any := false
	for _, b := range bands {
		if b.ok {
			any = true
			break
		}
	}
	if !any || e.part.Shards() == 1 {
		return
	}
	e.halo.exchanges.Add(1)
	e.broadcast(cmd{op: opServe, bands: bands})
}

// deltaBands splits the extension of old to new into the (≤ 2) bands not
// already covered — what peers must additionally serve.
func deltaBands(old, new xband) (left, right xband) {
	if new.lo < old.lo {
		left = xband{lo: new.lo, hi: math.Nextafter(old.lo, math.Inf(-1)), ok: true}
	}
	if new.hi > old.hi {
		right = xband{lo: math.Nextafter(old.hi, math.Inf(1)), hi: new.hi, ok: true}
	}
	return
}

// extendWindows grows the deficit shards' windows and serves the deltas:
// one or two serve cycles (left and right extensions), then a merge-delta on
// each grown shard.
func (e *Engine) extendWindows(deficits []reply) {
	S := e.part.Shards()
	bandsL := make([]xband, S)
	bandsR := make([]xband, S)
	grown := make([]int, 0, len(deficits))
	newWins := make([]xband, S)
	for _, r := range deficits {
		s := r.shard
		newWin := e.windows[s].union(r.window)
		if newWin == e.windows[s] {
			// Request already covered (e.g. two nodes raised overlapping
			// deficits and an earlier cycle granted the union). The shard
			// still needs a merge-delta to clear its retry cleanly.
			newWin = e.windows[s]
		}
		bandsL[s], bandsR[s] = deltaBands(e.windows[s], newWin)
		newWins[s] = newWin
		grown = append(grown, s)
	}
	e.serveCycle(bandsL)
	e.serveCycle(bandsR)
	for _, s := range grown {
		e.windows[s] = newWins[s]
		e.send(s, cmd{op: opMergeDelta, window: newWins[s]})
	}
	e.collect(len(grown))
}

// refresh runs the round-start halo phases: migrate ownership of nodes that
// left their stripe (re-deriving the orchestrator's ownership map from the
// mirror — the same pure function of x the shards just applied), absorb and
// predict windows, then serve and merge every window wholesale. After it
// returns, every shard's window is complete at current truth.
func (e *Engine) refresh() {
	S := e.part.Shards()
	e.broadcast(cmd{op: opMigrate})
	for g := range e.pos {
		e.assign.Move(g, e.pos[g].X)
	}
	for _, r := range e.broadcast(cmd{op: opAbsorb}) {
		e.windows[r.shard] = r.window
	}
	bands := make([]xband, S)
	copy(bands, e.windows)
	e.serveCycle(bands)
	for s := 0; s < S; s++ {
		e.send(s, cmd{op: opMergeRefresh, window: e.windows[s]})
	}
	e.collect(S)
}

// Step executes one round and reports its statistics and whether the
// deployment converged — the sharded mirror of core.Engine.Step.
func (e *Engine) Step() (core.RoundStats, bool) {
	e.start()
	return e.step()
}

// Close releases the shard goroutines. Only needed by callers that drive
// rounds through Step directly; Run shuts down on its own. Terminal: the
// engine can only serve mirror reads afterwards.
func (e *Engine) Close() { e.shutdown() }

// step executes one round — the sharded mirror of core.Engine.Step.
func (e *Engine) step() (core.RoundStats, bool) {
	round := e.round + 1

	// Phases 1–4: migrate, absorb, serve, merge.
	e.refresh()

	// Phase 5: compute (+ deficit cycles), commit, fold.
	stats := core.RoundStats{Round: round, MinCircumradius: math.Inf(1)}
	if e.cfg.Order == core.Sequential {
		e.sequentialRound(round)
		for _, r := range e.broadcast(cmd{op: opFold}) {
			e.foldPartial(&stats, r.stats)
		}
	} else {
		retry := false
		for {
			var deficits []reply
			if retry {
				// Only deficit shards have pending work; everyone else
				// would no-op. They were recorded by the previous cycle.
				for _, r := range e.broadcast(cmd{op: opComputeSync, round: round, retry: true}) {
					if r.window.ok {
						deficits = append(deficits, r)
					}
				}
			} else {
				for _, r := range e.broadcast(cmd{op: opComputeSync, round: round}) {
					if r.window.ok {
						deficits = append(deficits, r)
					}
				}
			}
			if len(deficits) == 0 {
				break
			}
			e.extendWindows(deficits)
			retry = true
		}
		for _, r := range e.broadcast(cmd{op: opCommitSync}) {
			e.foldPartial(&stats, r.stats)
			for _, m := range r.movedNodes {
				e.pos[m.id] = m.new
			}
		}
	}
	if math.IsInf(stats.MinCircumradius, 1) {
		stats.MinCircumradius = 0
	}

	e.round++
	e.roundMsgs += stats.Messages
	e.trace = append(e.trace, stats)
	e.converged = stats.Moved == 0
	e.stepped = true
	return stats, e.converged
}

// sequentialRound drives the Gauss–Seidel sweep: every node's turn goes to
// its owner in ascending global-ID order; committed moves are mirrored and
// routed to every shard whose window sees either endpoint.
func (e *Engine) sequentialRound(round int) {
	S := e.part.Shards()
	for g := range e.pos {
		owner := e.assign.Owner(g)
		for {
			e.send(owner, cmd{op: opTurn, node: g, round: round})
			r := <-e.replies
			for t, c := range r.sentTo {
				e.sent[t] += c
			}
			if r.window.ok {
				e.extendWindows([]reply{r})
				continue
			}
			if r.moved {
				e.pos[g] = r.new
				for s := 0; s < S; s++ {
					if s == owner {
						continue
					}
					if e.windows[s].contains(r.old.X) || e.windows[s].contains(r.new.X) {
						e.inbox[s] <- posUpdateMsg{id: g, old: r.old, new: r.new}
						e.halo.posUpdate()
						e.sent[s]++
					}
				}
			}
			break
		}
	}
}

// foldPartial merges one shard's partial statistics into the round's. The
// per-shard folds ran over disjoint ID sets, and max/min/sum are
// order-independent, so the merged result is bitwise the engine's single
// ID-ordered fold.
func (e *Engine) foldPartial(st *core.RoundStats, p partialStats) {
	if p.maxCR > st.MaxCircumradius {
		st.MaxCircumradius = p.maxCR
	}
	if p.minCR < st.MinCircumradius {
		st.MinCircumradius = p.minCR
	}
	if p.maxRhat > st.MaxRhat {
		st.MaxRhat = p.maxRhat
	}
	if p.maxMove > st.MaxMove {
		st.MaxMove = p.maxMove
	}
	st.Moved += p.moved
	st.Messages += p.messages
}

// Run executes rounds until convergence, MaxRounds, ctx cancellation, or an
// observer stop — the same control flow as core.Engine.Run — then assigns
// final radii and returns the Result. A clean completion releases the shard
// goroutines; the Result and Snapshot stay available.
func (e *Engine) Run(ctx context.Context) (*core.Result, error) {
	if e.final != nil {
		return e.final, nil
	}
	e.start()
	for e.round < e.cfg.MaxRounds {
		if e.converged {
			break
		}
		if err := ctx.Err(); err != nil {
			return e.finalizePartial(err)
		}
		stats, _ := e.step()
		if e.observer != nil {
			if oerr := e.observer(stats); oerr != nil {
				if errors.Is(oerr, core.ErrStop) {
					return e.finishRun()
				}
				return e.finalizePartial(oerr)
			}
		}
	}
	return e.finishRun()
}

// finishRun finalizes a terminal run, caches the Result and releases the
// shard goroutines.
func (e *Engine) finishRun() (*core.Result, error) {
	res, err := e.finalize()
	if err != nil {
		return nil, err
	}
	e.final = res
	e.shutdown()
	return res, nil
}

// finalizePartial finalizes an interrupted run: the shards stay alive so the
// caller can Run again (core.Engine allows it), and the Result carries the
// interruption cause.
func (e *Engine) finalizePartial(cause error) (*core.Result, error) {
	res, err := e.finalize()
	if err != nil {
		return nil, err
	}
	return res, cause
}

// finalize assigns final radii — the sharded mirror of core.Engine.Finalize,
// with the same three paths: a converged run reuses the last round's R̂ (or
// retained regions under KeepRegions); anything else recomputes regions at
// the final positions under the negative round tag, charging finalization
// messages.
func (e *Engine) finalize() (*core.Result, error) {
	e.start()
	n := len(e.pos)
	radii := make([]float64, n)
	var regions [][]geom.Polygon
	if e.cfg.KeepRegions {
		regions = make([][]geom.Polygon, n)
	}
	switch {
	case e.converged && e.stepped && !e.cfg.KeepRegions:
		for _, r := range e.broadcast(cmd{op: opFinalRhat}) {
			for i, g := range r.ids {
				radii[g] = r.vals[i]
			}
		}
	case e.converged && e.stepped && e.cfg.KeepRegions:
		for _, r := range e.broadcast(cmd{op: opFinalRegions}) {
			for i, g := range r.ids {
				radii[g] = r.vals[i]
				regions[g] = r.polys[i]
			}
		}
	default:
		// The last committed round's remote moves were never served (a round
		// refreshes windows at its start, and there is no next round), so the
		// shards' non-owned copies are stale. Refresh first: the recompute
		// must read exactly the final positions the engine's recompute reads.
		e.refresh()
		tag := core.FinalRoundTag(e.round)
		retry := false
		for {
			var deficits []reply
			for _, r := range e.broadcast(cmd{op: opFinalRecompute, round: tag, retry: retry}) {
				e.finalMsgs += r.msgs
				if r.window.ok {
					deficits = append(deficits, r)
					continue
				}
				for i, g := range r.ids {
					radii[g] = r.vals[i]
					if regions != nil {
						regions[g] = r.polys[i]
					}
				}
			}
			if len(deficits) == 0 {
				break
			}
			e.extendWindows(deficits)
			retry = true
		}
	}
	res := &core.Result{
		Positions: append([]geom.Point(nil), e.pos...),
		Radii:     radii,
		Rounds:    e.round,
		Converged: e.converged,
		Trace:     append([]core.RoundStats(nil), e.trace...),
		Messages:  e.msgBase + e.roundMsgs + e.finalMsgs,
	}
	if e.cfg.KeepRegions {
		res.Regions = regions
	}
	return res, nil
}

// Snapshot captures a resumable checkpoint — byte-identical to what the
// shared-memory engine would write at the same round boundary (positions,
// round, convergence, trace, config; finalization messages excluded).
func (e *Engine) Snapshot() (*snapshot.State, error) {
	st := snapshot.NewState(snapshot.KindEngine, e.pos)
	st.Round = e.round
	st.Converged = e.converged
	st.Messages = e.msgBase + e.roundMsgs
	st.Trace = make([]snapshot.RoundState, len(e.trace))
	for i, tr := range e.trace {
		st.Trace[i] = snapshot.RoundState{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
			Messages:        tr.Messages,
		}
	}
	st.Config = core.ConfigToState(e.cfg)
	return st, nil
}
