package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/region"
)

func uniformStart(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

// requireIdentical asserts the sharded result is bit-identical to the
// shared-memory engine's: positions, radii, trace, message totals, rounds,
// convergence and (when kept) regions.
func requireIdentical(t *testing.T, want, got *core.Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Fatalf("rounds: got %d want %d", got.Rounds, want.Rounds)
	}
	if got.Converged != want.Converged {
		t.Fatalf("converged: got %v want %v", got.Converged, want.Converged)
	}
	if len(got.Positions) != len(want.Positions) {
		t.Fatalf("positions length: got %d want %d", len(got.Positions), len(want.Positions))
	}
	for i := range want.Positions {
		if got.Positions[i] != want.Positions[i] {
			t.Fatalf("node %d position: got %v want %v", i, got.Positions[i], want.Positions[i])
		}
	}
	for i := range want.Radii {
		if got.Radii[i] != want.Radii[i] {
			t.Fatalf("node %d radius: got %v want %v", i, got.Radii[i], want.Radii[i])
		}
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace length: got %d want %d", len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("trace[%d]: got %+v want %+v", i, got.Trace[i], want.Trace[i])
		}
	}
	if got.Messages != want.Messages {
		t.Fatalf("messages: got %d want %d", got.Messages, want.Messages)
	}
	if (got.Regions == nil) != (want.Regions == nil) {
		t.Fatalf("regions presence: got %v want %v", got.Regions != nil, want.Regions != nil)
	}
	for i := range want.Regions {
		if len(got.Regions[i]) != len(want.Regions[i]) {
			t.Fatalf("node %d: region count got %d want %d", i, len(got.Regions[i]), len(want.Regions[i]))
		}
		for j := range want.Regions[i] {
			a, b := got.Regions[i][j], want.Regions[i][j]
			if len(a) != len(b) {
				t.Fatalf("node %d region %d: vertex count got %d want %d", i, j, len(a), len(b))
			}
			for v := range b {
				if a[v] != b[v] {
					t.Fatalf("node %d region %d vertex %d: got %v want %v", i, j, v, a[v], b[v])
				}
			}
		}
	}
}

// identityCase is one cell of the bit-identity matrix.
type identityCase struct {
	name string
	cfg  core.Config
	n    int
	seed int64
}

func identityCases() []identityCase {
	sync := core.DefaultConfig(2)
	sync.Epsilon = 1e-3
	sync.MaxRounds = 60

	seq := sync
	seq.Order = core.Sequential

	loc := core.DefaultConfig(2)
	loc.Mode = core.Localized
	loc.Gamma = 0.25
	loc.Epsilon = 1e-3
	loc.MaxRounds = 60

	locSeq := loc
	locSeq.Order = core.Sequential

	short := sync
	short.MaxRounds = 8 // unconverged: exercises the finalize recompute path

	keep := sync
	keep.KeepRegions = true

	lossy := loc
	lossy.LossRate = 0.3
	lossy.MaxRounds = 25

	return []identityCase{
		{"sync-centralized", sync, 28, 42},
		{"seq-centralized", seq, 28, 42},
		{"localized", loc, 28, 42},
		{"localized-seq", locSeq, 24, 7},
		{"sync-unconverged", short, 28, 42},
		{"sync-keepregions", keep, 20, 9},
		{"localized-lossy", lossy, 24, 11},
	}
}

// TestShardBitIdentityMatrix is the tentpole acceptance test: for every case
// × shard count × worker count the sharded engine must reproduce the
// shared-memory engine's result bit for bit.
func TestShardBitIdentityMatrix(t *testing.T) {
	reg := region.UnitSquareKm()
	for _, tc := range identityCases() {
		start := uniformStart(tc.n, tc.seed)
		ref, err := core.New(reg, start, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			for _, workers := range []int{1, 3} {
				name := fmt.Sprintf("%s/s%d/w%d", tc.name, shards, workers)
				t.Run(name, func(t *testing.T) {
					cfg := tc.cfg
					cfg.Workers = workers
					eng, err := New(reg, start, cfg, shards)
					if err != nil {
						t.Fatal(err)
					}
					got, err := eng.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, want, got)
				})
			}
		}
	}
}
