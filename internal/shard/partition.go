// Package shard implements stage 1 of the sharded LAACAD engine (ROADMAP
// item 1): the deployment region is partitioned into vertical cell stripes,
// each owned by a shard goroutine holding its own wsn.Network sub-index and
// cache state; per round the shards exchange a ρ-halo of border positions
// over explicit typed channels. The sharded engine is bit-identical to the
// shared-memory core.Engine — Positions, Trace, Radii and Result.Messages —
// for every shard count, worker count and update order, because every
// per-node computation routes through the same core kernels over a local
// window proven complete for the node's read ball (see worker.go for the
// trust rule).
package shard

import (
	"math"

	"laacad/internal/region"
)

// Partition divides the region's bounding-box x-range into s equal-width
// vertical stripes. Stripe i owns the half-open interval
// [Cut(i), Cut(i+1)) — except the last stripe, which also owns its upper
// edge — so every x maps to exactly one stripe. The mapping is a pure
// function of x, which is what makes ownership reproducible across shards,
// rounds and processes without coordination.
type Partition struct {
	s          int
	xmin, xmax float64
	width      float64
}

// NewPartition builds an s-stripe partition over reg's bounding box. s < 1
// is clamped to 1; a degenerate (zero-width) region collapses to one stripe.
func NewPartition(reg *region.Region, s int) Partition {
	if s < 1 {
		s = 1
	}
	b := reg.BBox()
	w := (b.Max.X - b.Min.X) / float64(s)
	if !(w > 0) {
		s, w = 1, b.Max.X-b.Min.X
	}
	return Partition{s: s, xmin: b.Min.X, xmax: b.Max.X, width: w}
}

// Shards returns the stripe count.
func (p Partition) Shards() int { return p.s }

// XRange returns the partitioned x-interval (the region bounding box's
// x-extent). Node positions are always clamped inside the region, so every
// node's x lies within it.
func (p Partition) XRange() (xmin, xmax float64) { return p.xmin, p.xmax }

// Shard maps an x-coordinate to its owning stripe, clamping coordinates
// outside the partitioned interval to the nearest edge stripe.
func (p Partition) Shard(x float64) int {
	if p.s <= 1 {
		return 0
	}
	k := int(math.Floor((x - p.xmin) / p.width))
	if k < 0 {
		return 0
	}
	if k >= p.s {
		return p.s - 1
	}
	return k
}

// Cut returns the i-th stripe boundary, i in [0, Shards()]: Cut(0) is the
// region's left edge, Cut(Shards()) the right.
func (p Partition) Cut(i int) float64 {
	if i <= 0 {
		return p.xmin
	}
	if i >= p.s {
		return p.xmax
	}
	return p.xmin + float64(i)*p.width
}

// Bounds returns stripe s's x-interval [Cut(s), Cut(s+1)].
func (p Partition) Bounds(s int) (lo, hi float64) { return p.Cut(s), p.Cut(s + 1) }

// Overlapping returns the inclusive range [first, last] of stripes whose
// interval intersects the band [lo, hi] — the routing primitive for halo
// band requests (a ρ wider than one stripe spans several neighbors).
func (p Partition) Overlapping(lo, hi float64) (first, last int) {
	return p.Shard(lo), p.Shard(hi)
}

// Assignment tracks node→shard ownership as positions churn: the live
// ownership map the orchestrator routes turns and migrations with. Because
// ownership is a pure function of x, an assignment maintained incrementally
// through AddNode/RemoveNode/Move is always identical to one rebuilt from
// scratch over the current positions (the property test's invariant).
type Assignment struct {
	part  Partition
	owner []int
}

// NewAssignment builds the ownership map for the given x-coordinates.
func NewAssignment(p Partition, xs []float64) *Assignment {
	a := &Assignment{part: p, owner: make([]int, len(xs))}
	for i, x := range xs {
		a.owner[i] = p.Shard(x)
	}
	return a
}

// Partition returns the underlying stripe geometry.
func (a *Assignment) Partition() Partition { return a.part }

// Len returns the number of tracked nodes.
func (a *Assignment) Len() int { return len(a.owner) }

// Owner returns node i's owning shard.
func (a *Assignment) Owner(i int) int { return a.owner[i] }

// Move reassigns node i after its x-coordinate changed and reports its
// (possibly unchanged) owner.
func (a *Assignment) Move(i int, x float64) int {
	a.owner[i] = a.part.Shard(x)
	return a.owner[i]
}

// AddNode appends a node at x and returns its ID (the next node number,
// matching wsn.Network.AddNode).
func (a *Assignment) AddNode(x float64) int {
	a.owner = append(a.owner, a.part.Shard(x))
	return len(a.owner) - 1
}

// RemoveNode deletes node i, renumbering every node above it downward —
// the same renumbering wsn.Network.RemoveNode applies.
func (a *Assignment) RemoveNode(i int) {
	a.owner = append(a.owner[:i], a.owner[i+1:]...)
}
