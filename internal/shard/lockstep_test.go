package shard

import (
	"testing"

	"laacad/internal/core"
	"laacad/internal/region"
)

// TestLockstepRounds steps the reference and sharded engines side by side and
// requires bitwise-equal positions, statistics and convergence after every
// single round — a sharper diagnostic than the end-to-end matrix: when the
// protocols ever diverge, this pins the first round.
func TestLockstepRounds(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := core.DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 60
	start := uniformStart(28, 42)
	ref, err := core.New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(reg, start, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng.start()
	defer eng.shutdown()
	for r := 1; r <= cfg.MaxRounds; r++ {
		wstats, wdone := ref.Step()
		gstats, gdone := eng.step()
		gp := eng.Positions()
		wp := ref.Network().Positions()
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("round %d: node %d position got %v want %v", r, i, gp[i], wp[i])
			}
		}
		if wstats != gstats {
			t.Fatalf("round %d: stats got %+v want %+v", r, gstats, wstats)
		}
		if wdone != gdone {
			t.Fatalf("round %d: done got %v want %v", r, gdone, wdone)
		}
		if wdone {
			return
		}
	}
}
