package shard

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"laacad/internal/boundary"
	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/parallel"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// worker is one shard: the owner of a vertical stripe of the deployment. It
// holds a local wsn.Network over its window — every global node whose current
// position lies inside the window, plus its own owned nodes — and computes
// round outcomes for the nodes it owns through a core.Stepper over that
// local network.
//
// The correctness argument has three layers:
//
//  1. Window completeness: after a refresh the local membership contains
//     every global node positioned inside the window, at globally current
//     positions (peers serve their owned nodes by exact position test, and
//     the union of owned sets is the whole deployment). Extra members whose
//     position has left the window are removed, so strict range queries over
//     the local network agree with global queries for any ball inside the
//     window.
//
//  2. Trust: an outcome whose read ball (StepOutcome.ReadRad around the
//     node) lies inside the window read only globally current positions, so
//     by the stepper's any-start-radius contract it is bitwise the global
//     engine's outcome. Centralized outcomes additionally require the
//     exactness exit (2·R̂ ≤ ReadRad) unless the window spans the whole
//     deployment, because the expanding search may also stop by exhausting
//     the *local* node count. Untrusted outcomes raise a halo deficit; the
//     orchestrator widens the window and the node recomputes — windows only
//     grow within a round, so the loop terminates (at spansAll at the
//     latest).
//
//  3. Cache validity: an entry is reused only while its invalidation ball
//     has stayed inside the window at every round since it was computed and
//     no known position change touched it. Every position change the shard
//     learns of (serve diff, membership add/remove, posUpdate, own commit)
//     invalidates by both endpoints, and the per-refresh window check kills
//     entries whose ball a window shrink ever exposed — without it a
//     shrink-then-grow window could hide a move inside the ball.
type worker struct {
	id  int
	eng *Engine
	st  *core.Stepper
	cfg core.Config

	// Region bbox x-extent: windows and read balls are clamped to it before
	// comparison (nothing exists outside it).
	regLoX, regHiX float64
	stripe         xband // owned stripe bounds

	// Global-length state. pos is the shard's view of current-truth
	// positions (meaningful for members), localOf maps global→local index
	// (-1 when not a member).
	owned   []bool
	member  []bool
	pos     []geom.Point
	localOf []int32
	members []int // ascending global IDs of members (local i → members[i])
	ownedID []int // ascending global IDs of owned nodes

	net      *wsn.Network
	netStale bool // membership changed since the net was built

	window xband // current complete window

	// Caches, global-length, maintained only for owned nodes (absorbing a
	// migrated node drops its stale state).
	cache   []entry
	hint    []float64 // last InvRad per node: centralized warm start
	readRad []float64 // last ReadRad per node: halo width prediction
	flagVal []bool
	flagOK  []bool
	lastRH  []float64        // last committed R̂ per owned node
	lastPol [][]geom.Polygon // last committed regions (KeepRegions)
	outs    []core.StepOutcome

	// Round-scoped buffers.
	pending   []int // owned nodes whose last attempt was untrusted
	changes   []geom.Point
	mark      []uint32 // serve-mark generations (refresh sweep)
	markGen   uint32
	rxServe   []serveMsg
	rxMigrate []migrateMsg
	sendIDs   [][]int // per-target staging for migrate/serve
	sendPos   [][]geom.Point
	scanBuf   []int

	msgAcc atomic.Int64 // round message charges (compute fan-out adds)
	seen   int64        // data messages drained so far

	pool  []*core.Scratch
	bpool []*boundary.Scratch

	pendMu sync.Mutex // guards pending/deficit under the compute fan-out
	defic  xband
}

func newWorker(id int, eng *Engine, st *core.Stepper, n int) *worker {
	lo, hi := eng.part.Bounds(id)
	xmin, xmax := eng.part.XRange()
	w := &worker{
		id:      id,
		eng:     eng,
		st:      st,
		cfg:     st.Config(),
		regLoX:  xmin,
		regHiX:  xmax,
		stripe:  xband{lo: lo, hi: hi, ok: true},
		owned:   make([]bool, n),
		member:  make([]bool, n),
		pos:     make([]geom.Point, n),
		localOf: make([]int32, n),
		cache:   make([]entry, n),
		hint:    make([]float64, n),
		readRad: make([]float64, n),
		flagVal: make([]bool, n),
		flagOK:  make([]bool, n),
		lastRH:  make([]float64, n),
		outs:    make([]core.StepOutcome, n),
		mark:    make([]uint32, n),
		sendIDs: make([][]int, eng.part.Shards()),
		sendPos: make([][]geom.Point, eng.part.Shards()),
	}
	if w.cfg.KeepRegions {
		w.lastPol = make([][]geom.Polygon, n)
	}
	for i := range w.localOf {
		w.localOf[i] = -1
	}
	return w
}

// seed installs the initial ownership and positions (round 0). Every shard
// knows every initial position (they arrive with construction, not over the
// halo), but only window members enter the local net — the first refresh
// establishes the steady-state membership.
func (w *worker) seed(positions []geom.Point, owner []int) {
	for g, p := range positions {
		w.pos[g] = p
		if owner[g] == w.id {
			w.owned[g] = true
			w.ownedID = append(w.ownedID, g)
			w.memberAdd(g)
		}
	}
	w.netStale = true
	w.window = w.clampBand(w.stripe)
}

// loop is the shard goroutine: drain the inbox to the command's fence, then
// execute it and reply.
func (w *worker) loop() {
	for c := range w.eng.cmds[w.id] {
		w.drainTo(c.expect)
		w.eng.replies <- w.execute(c)
	}
}

func (w *worker) drainTo(expect int64) {
	for w.seen < expect {
		w.apply(<-w.eng.inbox[w.id])
		w.seen++
	}
}

// apply buffers serve/migrate batches for the phase handlers and applies
// position updates immediately (they are self-contained).
func (w *worker) apply(m dataMsg) {
	switch m := m.(type) {
	case serveMsg:
		w.rxServe = append(w.rxServe, m)
	case migrateMsg:
		w.rxMigrate = append(w.rxMigrate, m)
	case posUpdateMsg:
		w.applyPosUpdate(m)
	}
}

func (w *worker) execute(c cmd) reply {
	switch c.op {
	case opMigrate:
		return w.doMigrate()
	case opAbsorb:
		return w.doAbsorb()
	case opServe:
		return w.doServe(c.bands)
	case opMergeRefresh:
		return w.doMergeRefresh(c.window)
	case opMergeDelta:
		return w.doMergeDelta(c.window)
	case opComputeSync:
		return w.doComputeSync(c.round, c.retry)
	case opCommitSync:
		return w.doCommitSync()
	case opTurn:
		return w.doTurn(c.node, c.round, c.retry)
	case opFold:
		return w.doFold()
	case opFinalRhat:
		return w.doFinalRhat()
	case opFinalRegions:
		return w.doFinalRegions()
	case opFinalRecompute:
		return w.doFinalRecompute(c.round, c.retry)
	}
	return reply{shard: w.id}
}

// ---- membership -----------------------------------------------------------

func (w *worker) memberAdd(g int) {
	if w.member[g] {
		return
	}
	w.member[g] = true
	// Insert keeping members sorted by global ID: local IDs then preserve
	// global relative order, which is what makes local strict-range query
	// results (and loss-draw assignment) order-isomorphic to global ones.
	i := len(w.members)
	for i > 0 && w.members[i-1] > g {
		i--
	}
	w.members = append(w.members, 0)
	copy(w.members[i+1:], w.members[i:])
	w.members[i] = g
	w.netStale = true
}

func (w *worker) memberRemove(g int) {
	if !w.member[g] {
		return
	}
	w.member[g] = false
	for i, m := range w.members {
		if m == g {
			w.members = append(w.members[:i], w.members[i+1:]...)
			break
		}
	}
	w.localOf[g] = -1
	w.netStale = true
}

// syncNet brings the local network in line with the membership. A membership
// change rebuilds it wholesale (local IDs are positional); otherwise it is
// already current (position changes are applied incrementally as they land).
func (w *worker) syncNet() {
	if !w.netStale {
		return
	}
	ps := make([]geom.Point, len(w.members))
	for i, g := range w.members {
		ps[i] = w.pos[g]
		w.localOf[g] = int32(i)
	}
	w.net = wsn.New(ps, w.st.IndexGamma())
	w.net.SetSearchCount(len(w.pos)) // global n: keeps the probe sequence engine-identical
	w.net.SetBoundsHint(w.eng.bbox)
	w.st.SetNetwork(w.net)
	w.netStale = false
}

// ---- invalidation ---------------------------------------------------------

// noteChange records a position-change endpoint for cache and flag
// invalidation. Flushed by flushChanges; callers batch several endpoints
// before flushing.
func (w *worker) noteChange(p geom.Point) { w.changes = append(w.changes, p) }

// flushChanges drops every owned cache entry whose invalidation ball
// contains a recorded endpoint, and marks every owned boundary flag whose
// γ-ball does — the shard-side mirror of the engine's invalidateMoved +
// markFlagsNear, as dense scans over the owned set (O(owned × changes); the
// shard's owned set is 1/S of the deployment, and converged rounds record
// no changes at all).
func (w *worker) flushChanges() {
	if len(w.changes) == 0 {
		return
	}
	gamma := w.st.IndexGamma()
	g2 := gamma * gamma
	for _, g := range w.ownedID {
		ug := w.pos[g]
		if c := &w.cache[g]; c.valid {
			r2 := c.inv * c.inv
			for _, p := range w.changes {
				if ug.Dist2(p) <= r2 {
					c.valid = false
					break
				}
			}
		}
		if w.flagOK[g] {
			for _, p := range w.changes {
				if ug.Dist2(p) <= g2 {
					w.flagOK[g] = false
					break
				}
			}
		}
	}
	w.changes = w.changes[:0]
}

// enforceWindow kills owned cache entries whose invalidation ball is not
// inside the current window — the per-refresh half of the validity
// invariant (a ball that ever stuck out may have missed a move).
func (w *worker) enforceWindow() {
	for _, g := range w.ownedID {
		if c := &w.cache[g]; c.valid && !w.ballInWindow(w.pos[g], c.inv) {
			c.valid = false
		}
	}
}

// ballInWindow reports whether the ball of radius r around p, clamped to
// the region's x-extent, lies inside the window.
func (w *worker) ballInWindow(p geom.Point, r float64) bool {
	lo, hi := p.X-r, p.X+r
	if lo < w.regLoX {
		lo = w.regLoX
	}
	if hi > w.regHiX {
		hi = w.regHiX
	}
	return lo >= w.window.lo && hi <= w.window.hi
}

func (w *worker) clampBand(b xband) xband {
	if !b.ok {
		return b
	}
	if b.lo < w.regLoX {
		b.lo = w.regLoX
	}
	if b.hi > w.regHiX {
		b.hi = w.regHiX
	}
	return b
}

// spansAll reports whether the window covers the whole deployment — local
// computation is then unconditionally global.
func (w *worker) spansAll() bool {
	return w.window.lo <= w.regLoX && w.window.hi >= w.regHiX
}

// ---- phase handlers -------------------------------------------------------

// doMigrate hands off owned nodes whose position left the stripe. Ownership
// follows Partition.Shard(x) — the same pure function every shard applies —
// so no two shards ever claim a node.
func (w *worker) doMigrate() reply {
	S := w.eng.part.Shards()
	for t := 0; t < S; t++ {
		w.sendIDs[t] = w.sendIDs[t][:0]
		w.sendPos[t] = w.sendPos[t][:0]
	}
	kept := w.ownedID[:0]
	for _, g := range w.ownedID {
		t := w.eng.part.Shard(w.pos[g].X)
		if t == w.id {
			kept = append(kept, g)
			continue
		}
		w.owned[g] = false
		w.sendIDs[t] = append(w.sendIDs[t], g)
		w.sendPos[t] = append(w.sendPos[t], w.pos[g])
		// The node stays a member for now; the refresh sweep re-serves or
		// removes it. Its cache/flag state is dropped by the absorbing shard.
	}
	w.ownedID = kept
	sent := make([]int64, S)
	for t := 0; t < S; t++ {
		if len(w.sendIDs[t]) == 0 {
			continue
		}
		ids := append([]int(nil), w.sendIDs[t]...)
		ps := append([]geom.Point(nil), w.sendPos[t]...)
		hints := make([]float64, len(ids))
		reads := make([]float64, len(ids))
		for i, g := range ids {
			hints[i] = w.hint[g]
			reads[i] = w.readRad[g]
		}
		w.eng.inbox[t] <- migrateMsg{from: w.id, ids: ids, pos: ps, hints: hints, reads: reads}
		w.eng.halo.batch(len(ids))
		sent[t]++
	}
	return reply{shard: w.id, sentTo: sent}
}

// doAbsorb takes ownership of migrated-in nodes and predicts the halo width
// the coming round needs, replying with the desired window.
func (w *worker) doAbsorb() reply {
	for _, m := range w.rxMigrate {
		for i, g := range m.ids {
			w.owned[g] = true
			w.insertOwned(g)
			if w.member[g] {
				// Migration implies the node moved last round; a boundary
				// member's local copy still holds the pre-move position —
				// update the net and invalidate around both endpoints, just
				// as a refresh serve would.
				if old := w.pos[g]; old != m.pos[i] {
					w.noteChange(old)
					w.noteChange(m.pos[i])
					w.pos[g] = m.pos[i]
					if !w.netStale {
						w.net.SetPosition(int(w.localOf[g]), m.pos[i])
					}
				}
			} else {
				w.pos[g] = m.pos[i]
				w.memberAdd(g)
				w.noteChange(m.pos[i])
			}
			// The previous owner maintained this node's caches; ours are
			// stale from whenever we last owned it. Drop them — but adopt the
			// carried hint/read-radius history, which is global state.
			w.cache[g].valid = false
			w.flagOK[g] = false
			w.hint[g] = m.hints[i]
			w.readRad[g] = m.reads[i]
		}
	}
	w.rxMigrate = w.rxMigrate[:0]
	return reply{shard: w.id, window: w.desiredWindow()}
}

func (w *worker) insertOwned(g int) {
	i := len(w.ownedID)
	for i > 0 && w.ownedID[i-1] > g {
		i--
	}
	w.ownedID = append(w.ownedID, 0)
	copy(w.ownedID[i+1:], w.ownedID[i:])
	w.ownedID[i] = g
}

// desiredWindow predicts each edge's halo width as the maximum, over owned
// nodes, of the node's last read radius minus its distance to the edge —
// the ρ-ball bound: a node's search reads at most ReadRad out, so positions
// farther outside the stripe than that cannot influence it. Nodes with no
// history fall back to the expanding search's density guess. Localized
// windows are floored at γ (the boundary flag reads the full γ-ball).
func (w *worker) desiredWindow() xband {
	if w.eng.part.Shards() == 1 {
		return w.clampBand(xband{lo: math.Inf(-1), hi: math.Inf(1), ok: true})
	}
	guess := w.eng.fallbackRad
	minW := 0.0
	if w.cfg.Mode == core.Localized {
		minW = w.cfg.Gamma
	}
	wl, wr := minW, minW
	for _, g := range w.ownedID {
		r := w.readRad[g]
		if r <= 0 {
			r = guess
		}
		x := w.pos[g].X
		if v := r - (x - w.stripe.lo); v > wl {
			wl = v
		}
		if v := r - (w.stripe.hi - x); v > wr {
			wr = v
		}
	}
	return w.clampBand(xband{lo: w.stripe.lo - wl, hi: w.stripe.hi + wr, ok: true})
}

// doServe sends each requesting shard the current positions of owned nodes
// inside its band. During a round-start serve the local net may be stale
// (membership churn), so the scan walks the owned list directly; delta
// serves run mid-round on a fresh net and use the sub-range index view.
func (w *worker) doServe(bands []xband) reply {
	S := w.eng.part.Shards()
	sent := make([]int64, S)
	for t := 0; t < S; t++ {
		if t == w.id || !bands[t].ok {
			continue
		}
		b := bands[t]
		ids := []int(nil)
		ps := []geom.Point(nil)
		if !w.netStale && w.net != nil {
			w.scanBuf = w.net.AppendInXRange(b.lo, b.hi, w.scanBuf)
			for _, li := range w.scanBuf {
				g := w.members[li]
				if w.owned[g] {
					ids = append(ids, g)
					ps = append(ps, w.pos[g])
				}
			}
		} else {
			for _, g := range w.ownedID {
				if b.contains(w.pos[g].X) {
					ids = append(ids, g)
					ps = append(ps, w.pos[g])
				}
			}
		}
		if len(ids) == 0 {
			continue
		}
		w.eng.inbox[t] <- serveMsg{from: w.id, ids: ids, pos: ps}
		w.eng.halo.batch(len(ids))
		sent[t]++
	}
	return reply{shard: w.id, sentTo: sent}
}

// doMergeRefresh reconciles the buffered round-start serves against the
// membership: update changed positions, add newcomers, remove members the
// sweep proves have left the window (their owner did not re-serve them), and
// enforce the cache validity invariant against the new window.
func (w *worker) doMergeRefresh(win xband) reply {
	w.window = w.clampBand(win)
	w.markGen++
	for _, m := range w.rxServe {
		for i, g := range m.ids {
			w.mark[g] = w.markGen
			p := m.pos[i]
			if w.member[g] {
				if old := w.pos[g]; old != p {
					w.noteChange(old)
					w.noteChange(p)
					w.pos[g] = p
					if !w.netStale {
						w.net.SetPosition(int(w.localOf[g]), p)
					}
				}
			} else {
				w.pos[g] = p
				w.memberAdd(g)
				w.noteChange(p)
			}
		}
	}
	w.rxServe = w.rxServe[:0]
	// Sweep: a non-owned member the serves did not cover has (at its owner)
	// left the window — keeping the stale copy would poison strict range
	// queries inside the window.
	for i := 0; i < len(w.members); {
		g := w.members[i]
		if !w.owned[g] && w.mark[g] != w.markGen {
			w.noteChange(w.pos[g])
			w.memberRemove(g)
			continue // members shifted down; revisit index i
		}
		i++
	}
	w.enforceWindow()
	w.flushChanges()
	w.syncNet()
	// Repair boundary flags here — and only here — so every turn and fan-out
	// of the round reads start-of-round flag truth, exactly like the engine:
	// mid-round moves mark flags dirty for the NEXT round's repair.
	if w.cfg.Mode == core.Localized {
		w.repairFlags()
	}
	return reply{shard: w.id}
}

// doMergeDelta incorporates serves for a window extension: adds and updates
// only (no removal sweep — the extension adds coverage, it does not replace
// it), then widens the window.
func (w *worker) doMergeDelta(win xband) reply {
	w.window = w.window.union(w.clampBand(win))
	for _, m := range w.rxServe {
		for i, g := range m.ids {
			p := m.pos[i]
			if w.member[g] {
				if old := w.pos[g]; old != p {
					w.noteChange(old)
					w.noteChange(p)
					w.pos[g] = p
					if !w.netStale {
						w.net.SetPosition(int(w.localOf[g]), p)
					}
				}
			} else {
				w.pos[g] = p
				w.memberAdd(g)
				w.noteChange(p)
			}
		}
	}
	w.rxServe = w.rxServe[:0]
	w.flushChanges()
	w.syncNet()
	return reply{shard: w.id}
}

// applyPosUpdate incorporates one Sequential mid-round move. Membership
// follows the window: a node moving in becomes a member, one moving out is
// dropped (a stale copy inside the window would be unsound).
func (w *worker) applyPosUpdate(m posUpdateMsg) {
	inWin := w.window.contains(m.new.X)
	switch {
	case w.member[m.id]:
		old := w.pos[m.id]
		if inWin || w.owned[m.id] {
			w.noteChange(old)
			w.noteChange(m.new)
			w.pos[m.id] = m.new
			if !w.netStale {
				w.net.SetPosition(int(w.localOf[m.id]), m.new)
			}
		} else {
			w.noteChange(old)
			w.memberRemove(m.id)
		}
	case inWin:
		w.pos[m.id] = m.new
		w.memberAdd(m.id)
		w.noteChange(m.new)
	}
	w.flushChanges()
}

// ---- compute --------------------------------------------------------------

func (w *worker) ensurePool(workers int) {
	for len(w.pool) < workers {
		w.pool = append(w.pool, core.NewScratch())
		w.bpool = append(w.bpool, &boundary.Scratch{})
	}
}

// repairFlags brings the owned boundary flags up to date at start-of-round
// positions (Localized mode). The detector is PerNode by construction (the
// engine rejects global detectors for S > 1); the flag for an owned node
// reads only the γ-ball, which the window always covers.
func (w *worker) repairFlags() {
	pn, ok := w.st.Detector().(boundary.PerNode)
	if !ok {
		return
	}
	w.syncNet()
	w.net.Rebuild()
	w.ensurePool(1)
	scratched, scratchOK := pn.(boundary.PerNodeScratch)
	for _, g := range w.ownedID {
		if w.flagOK[g] {
			continue
		}
		li := int(w.localOf[g])
		if scratchOK {
			w.flagVal[g] = scratched.BoundaryNodeScratch(w.net, li, w.bpool[0])
		} else {
			w.flagVal[g] = pn.BoundaryNode(w.net, li)
		}
		w.flagOK[g] = true
	}
}

// lossRNG mirrors core.Engine.lossRNG: the node's private loss stream keyed
// by the GLOBAL node ID — local numbering must never leak into randomness —
// or nil when loss sampling is off.
func lossRNG(cfg core.Config, round, g int) *rand.Rand {
	if cfg.LossRate <= 0 {
		return nil
	}
	return core.NodeRNG(cfg.Seed, round, g)
}

// cacheEnabled mirrors core.Engine.cacheEnabled.
func (w *worker) cacheEnabled() bool {
	if w.cfg.DisableCache {
		return false
	}
	if w.cfg.Mode == core.Localized {
		return w.cfg.LossRate == 0
	}
	return true
}

// tryNode computes (or serves from cache) node g's round outcome and reports
// whether it is trusted. An untrusted attempt records the window the node
// needs into the shared deficit. Safe for concurrent use across distinct g.
func (w *worker) tryNode(g, round int, s *core.Scratch, cacheOn bool) bool {
	if cacheOn {
		if c := &w.cache[g]; c.valid && (w.cfg.Mode != core.Localized || c.flag == w.flagVal[g]) {
			// A Localized hit re-charges the recorded cost — reuse must cost
			// exactly what re-running would (mirrors stepNodeAny).
			if c.cost != 0 {
				w.msgAcc.Add(c.cost)
			}
			w.outs[g] = c.out
			return true
		}
	}
	li := int(w.localOf[g])
	before := w.net.NodeMessages(li)
	out := w.st.StepNode(li, w.hint[g], w.flagVal[g], lossRNG(w.cfg, round, g), s)
	cost := w.net.NodeMessages(li) - before
	w.readRad[g] = out.ReadRad
	if !w.trusted(g, out) {
		// The attempt's charges never reach the round accounting (only the
		// final, trusted attempt's do — matching the engine, whose single
		// global computation is the trusted one).
		w.raiseDeficit(g, out.ReadRad)
		return false
	}
	w.msgAcc.Add(cost)
	w.outs[g] = out
	if cacheOn {
		// The engine updates rhoHint only inside computeEntry — the cache-on
		// miss path. With the cache disabled its searches always start from
		// the density fallback, and the warm start steers the probe sequence
		// (and with it the floating-point evaluation order), so the shard
		// must follow the same rule bit for bit.
		w.hint[g] = out.InvRad
		w.cache[g] = entry{valid: true, flag: w.flagVal[g], inv: out.InvRad, cost: cost, out: out}
	}
	return true
}

// raiseDeficit records node g as pending and folds the window it needs into
// the shard's deficit request. When the read ball stuck out of the window,
// a band around it with doubling overshoot makes the retry loop converge in
// O(log) exchanges instead of ring-by-ring; when the ball was inside but the
// Centralized search exhausted the local membership without reaching
// exactness, only the full deployment settles the question — request it
// outright (the one-retry hammer; growth is strict either way, so the loop
// terminates at spansAll at the latest).
func (w *worker) raiseDeficit(g int, readRad float64) {
	var req xband
	if w.ballInWindow(w.pos[g], readRad) {
		req = xband{lo: w.regLoX, hi: w.regHiX, ok: true}
	} else {
		need := 2*readRad + w.st.IndexGamma()
		x := w.pos[g].X
		req = w.clampBand(xband{lo: x - need, hi: x + need, ok: true})
	}
	w.pendMu.Lock()
	w.pending = append(w.pending, g)
	w.defic = w.defic.union(req)
	w.pendMu.Unlock()
}

// trusted decides whether a locally computed outcome is bitwise the global
// one: the window spans everything, or the read ball stayed inside the
// window and — Centralized only — the search ended on the exactness exit
// (2·R̂ ≤ ρ) rather than by exhausting the local node count. (The runaway
// exit ρ > 4·diag implies the exactness disjunct: R̂ ≤ diag < ρ/2.)
func (w *worker) trusted(g int, out core.StepOutcome) bool {
	if w.spansAll() {
		return true
	}
	if !w.ballInWindow(w.pos[g], out.ReadRad) {
		return false
	}
	if w.cfg.Mode == core.Localized {
		return true
	}
	return 2*out.Rhat <= out.ReadRad
}

// doComputeSync computes outcomes for the owned set (or the pending retry
// set) at start-of-round positions, fanning out across Config.Workers.
// Replies with the union deficit when any node needs a wider window.
func (w *worker) doComputeSync(round int, retry bool) reply {
	w.syncNet()
	w.net.Rebuild()
	targets := w.ownedID
	if retry {
		targets = w.pending
	}
	w.pending = nil
	w.defic = xband{}
	cacheOn := w.cacheEnabled()
	workers := parallel.Workers(w.cfg.Workers)
	w.ensurePool(workers)
	parallel.ForWorker(len(targets), workers, func(wk, idx int) {
		w.tryNode(targets[idx], round, w.pool[wk], cacheOn)
	})
	return reply{shard: w.id, window: w.defic}
}

// doCommitSync applies the round's moves, invalidates around them, folds the
// shard's partial statistics, and reports the moves for the orchestrator's
// position mirror.
func (w *worker) doCommitSync() reply {
	var movedNodes []movedPos
	// Apply every move first (Synchronous: all reads were at start-of-round
	// positions), then invalidate: the engine, too, invalidates after the
	// bulk apply, testing each entry node at its (post-move) position —
	// entry nodes that moved are dropped outright.
	for _, g := range w.ownedID {
		o := &w.outs[g]
		if ui := w.pos[g]; o.Next != ui {
			w.cache[g].valid = false
			movedNodes = append(movedNodes, movedPos{id: g, old: ui, new: o.Next})
			w.pos[g] = o.Next
			if !w.netStale {
				w.net.SetPosition(int(w.localOf[g]), o.Next)
			}
			w.noteChange(ui)
			w.noteChange(o.Next)
		}
	}
	w.flushChanges()
	st := w.foldStats()
	w.msgAcc.Store(0)
	return reply{shard: w.id, stats: st, movedNodes: movedNodes}
}

// foldStats folds the shard's partial RoundStats over its owned nodes in
// ascending global-ID order and stores per-node finalization state.
func (w *worker) foldStats() partialStats {
	st := partialStats{minCR: math.Inf(1)}
	for _, g := range w.ownedID {
		o := &w.outs[g]
		w.lastRH[g] = o.Rhat
		if w.lastPol != nil {
			w.lastPol[g] = o.Polys
		}
		if o.Empty {
			continue
		}
		if o.Ri > st.maxCR {
			st.maxCR = o.Ri
		}
		if o.Ri < st.minCR {
			st.minCR = o.Ri
		}
		if o.Rhat > st.maxRhat {
			st.maxRhat = o.Rhat
		}
		if o.Moved {
			st.moved++
			if o.MoveDist > st.maxMove {
				st.maxMove = o.MoveDist
			}
		}
	}
	st.messages = w.msgAcc.Load()
	return st
}

// doTurn runs one node's Sequential turn: compute at current (mid-round)
// truth, and commit immediately when trusted — later turns must see the
// move, exactly the Gauss–Seidel contract.
func (w *worker) doTurn(g, round int, retry bool) reply {
	w.syncNet()
	w.net.Rebuild()
	w.pending = w.pending[:0]
	w.defic = xband{}
	w.ensurePool(1)
	if !w.tryNode(g, round, w.pool[0], w.cacheEnabled()) {
		return reply{shard: w.id, window: w.defic}
	}
	o := &w.outs[g]
	r := reply{shard: w.id}
	if ui := w.pos[g]; o.Next != ui {
		w.cache[g].valid = false
		w.pos[g] = o.Next
		if !w.netStale {
			w.net.SetPosition(int(w.localOf[g]), o.Next)
		}
		w.noteChange(ui)
		w.noteChange(o.Next)
		w.flushChanges()
		r.moved, r.old, r.new = true, ui, o.Next
	}
	return r
}

// doFold folds the Sequential round's partial statistics (every turn already
// committed).
func (w *worker) doFold() reply {
	st := w.foldStats()
	w.msgAcc.Store(0)
	return reply{shard: w.id, stats: st}
}

// ---- finalization ---------------------------------------------------------

// doFinalRhat reports the owned nodes' last committed R̂ — the converged,
// no-regions Finalize path (nothing moved, so R̂ is bitwise the radius a
// recompute would measure).
func (w *worker) doFinalRhat() reply {
	ids := append([]int(nil), w.ownedID...)
	vals := make([]float64, len(ids))
	for i, g := range ids {
		vals[i] = w.lastRH[g]
	}
	return reply{shard: w.id, ids: ids, vals: vals}
}

// doFinalRegions measures radii from the retained last-round regions
// (converged KeepRegions runs) and hands the regions over.
func (w *worker) doFinalRegions() reply {
	ids := append([]int(nil), w.ownedID...)
	vals := make([]float64, len(ids))
	polys := make([][]geom.Polygon, len(ids))
	for i, g := range ids {
		polys[i] = w.lastPol[g]
		vals[i] = voronoi.MaxDistFrom(w.pos[g], w.lastPol[g])
	}
	return reply{shard: w.id, ids: ids, vals: vals, polys: polys}
}

// doFinalRecompute recomputes every owned node's dominating region at the
// final positions under the negative round tag — the unconverged Finalize
// path — with the same trust/deficit loop as a round, but no cache in either
// direction (the engine's recompute is eager too). Charges accumulate and
// are reported as finalization messages.
func (w *worker) doFinalRecompute(roundTag int, retry bool) reply {
	w.syncNet()
	if w.cfg.Mode == core.Localized {
		w.repairFlags()
	}
	w.net.Rebuild()
	targets := w.ownedID
	if retry {
		targets = w.pending
	}
	w.pending = nil
	w.defic = xband{}
	workers := parallel.Workers(w.cfg.Workers)
	w.ensurePool(workers)
	if w.lastPol == nil {
		w.lastPol = make([][]geom.Polygon, len(w.pos))
	}
	var finalMsgs atomic.Int64
	parallel.ForWorker(len(targets), workers, func(wk, idx int) {
		g := targets[idx]
		s := w.pool[wk]
		li := int(w.localOf[g])
		rng := lossRNG(w.cfg, roundTag, g)
		before := w.net.NodeMessages(li)
		// Hint 0, not the warm start: the engine's finalization recompute
		// searches from the density fallback, and the probe sequence must
		// match bit for bit.
		polys, readRad := w.st.RegionPolys(li, 0, w.flagVal[g], rng, s)
		cost := w.net.NodeMessages(li) - before
		rhat := voronoi.MaxDistFrom(w.pos[g], polys)
		ok := w.spansAll() || (w.ballInWindow(w.pos[g], readRad) &&
			(w.cfg.Mode == core.Localized || 2*rhat <= readRad))
		if !ok {
			w.raiseDeficit(g, readRad)
			return
		}
		finalMsgs.Add(cost)
		w.lastRH[g] = rhat
		w.lastPol[g] = polys
	})
	if w.defic.ok {
		return reply{shard: w.id, window: w.defic, msgs: finalMsgs.Load()}
	}
	ids := append([]int(nil), w.ownedID...)
	vals := make([]float64, len(ids))
	polys := make([][]geom.Polygon, len(ids))
	for i, g := range ids {
		vals[i] = w.lastRH[g]
		polys[i] = w.lastPol[g]
	}
	return reply{shard: w.id, ids: ids, vals: vals, polys: polys, msgs: finalMsgs.Load()}
}
