package scenario

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"laacad/internal/core"
	"laacad/internal/wsn"
)

// Every registered scenario must survive a JSON round-trip exactly: the
// daemon spools submitted scenarios to disk and replays them, so a lossy
// wire format would silently change what runs.
func TestScenarioJSONRoundTripRegistered(t *testing.T) {
	for _, sc := range All() {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", sc.Name, err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%s: round-trip changed the scenario\n got: %+v\nwant: %+v", sc.Name, back, sc)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: decoded scenario fails validation: %v", sc.Name, err)
		}
	}
}

func TestScenarioJSONRejectsUnknownFields(t *testing.T) {
	_, err := ParseJSON([]byte(`{"region":"square","placement":"uniform","n":10,"nodes":10,"config":{"k":2,"alpha":0.5,"epsilon":1e-3,"max_rounds":5,"seed":1}}`))
	if err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("unknown field should be rejected by name, got %v", err)
	}
}

func TestValidateListsValidNames(t *testing.T) {
	base := func() Scenario {
		sc, err := Lookup("uniform")
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	sc := base()
	sc.Region = "hexagon"
	err := sc.Validate()
	if err == nil || !strings.Contains(err.Error(), `"hexagon"`) || !strings.Contains(err.Error(), "square") {
		t.Errorf("unknown region error should name it and list valid regions, got: %v", err)
	}

	sc = base()
	sc.Placement = "spiral"
	err = sc.Validate()
	if err == nil || !strings.Contains(err.Error(), `"spiral"`) || !strings.Contains(err.Error(), "uniform") {
		t.Errorf("unknown placement error should name it and list valid placements, got: %v", err)
	}

	sc = base()
	sc.N = 0
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("non-positive n should be rejected, got: %v", err)
	}

	sc = base()
	sc.N = 1 // < K
	if err := sc.Validate(); err == nil {
		t.Error("n < k should be rejected")
	}

	sc = base()
	sc.Config.Mode = core.Mode(7)
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Errorf("out-of-range mode should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.Mode = core.Localized
	sc.Config.Gamma = 0
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "gamma") {
		t.Errorf("localized without gamma should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.MaxRounds = 0
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "max_rounds") {
		t.Errorf("zero max_rounds should be rejected, got: %v", err)
	}
}

// The lossy-ring knobs (loss_rate, loss_retries, ring_mode, ring_cap) ride
// the wire inside the config block: a submitted scenario that models an
// unreliable link layer must reach the daemon with those knobs intact, and
// nonsense values must be rejected at submit time, not deep inside a run.
func TestScenarioJSONLossyRingKnobs(t *testing.T) {
	base := func() Scenario {
		sc, err := Lookup("uniform")
		if err != nil {
			t.Fatal(err)
		}
		sc.Config.Mode = core.Localized
		sc.Config.Gamma = 0.6
		sc.Config.RingMode = wsn.RingHopLimited
		sc.Config.LossRate = 0.15
		sc.Config.LossRetries = 4
		sc.Config.RingCap = 2.5
		return sc
	}

	sc := base()
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"ring_mode":1`, `"loss_rate":0.15`, `"loss_retries":4`, `"ring_cap":2.5`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("wire form missing %s:\n%s", field, data)
		}
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("lossy scenario failed to parse: %v", err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Errorf("round-trip changed the lossy scenario\n got: %+v\nwant: %+v", back, sc)
	}

	sc = base()
	sc.Config.RingMode = wsn.RingQueryMode(3)
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "ring_mode") {
		t.Errorf("out-of-range ring_mode should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.LossRate = 1.0 // certain loss can never terminate
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "loss_rate") {
		t.Errorf("loss_rate 1.0 should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.LossRate = -0.1
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "loss_rate") {
		t.Errorf("negative loss_rate should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.LossRetries = -1
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "loss_retries") {
		t.Errorf("negative loss_retries should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.RingCap = -1
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "ring_cap") {
		t.Errorf("negative ring_cap should be rejected, got: %v", err)
	}

	sc = base()
	sc.Config.Mode = core.Centralized
	sc.Config.Gamma = 0
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "localized") {
		t.Errorf("loss_rate outside localized mode should be rejected, got: %v", err)
	}
}

// A decoded lossy scenario must also RUN identically — the loss draws come
// from the seeded per-node streams, so the wire format must not perturb them.
func TestDecodedLossyScenarioRunsIdentically(t *testing.T) {
	sc, err := Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sc = sc.WithSeed(7)
	sc.N = 30
	sc.Config.MaxRounds = 6
	sc.Config.Mode = core.Localized
	sc.Config.Gamma = 0.6
	sc.Config.LossRate = 0.2
	sc.Config.LossRetries = 3

	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Positions, got.Positions) || !reflect.DeepEqual(want.Trace, got.Trace) {
		t.Error("decoded lossy scenario produced a different run")
	}
}

// A decoded scenario must RUN identically to its in-process original, not
// just compare equal: the wire format feeds the daemon, whose results are
// asserted bit-identical against solo runs.
func TestDecodedScenarioRunsIdentically(t *testing.T) {
	sc, err := Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	sc = sc.WithSeed(42)
	sc.N = 40
	sc.Config.MaxRounds = 8

	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}

	want, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Positions, got.Positions) ||
		!reflect.DeepEqual(want.Trace, got.Trace) ||
		!reflect.DeepEqual(want.Radii, got.Radii) {
		t.Error("decoded scenario produced a different run")
	}
}
