package scenario

import (
	"context"
	"fmt"

	"laacad/internal/core"
	"laacad/internal/metrics"
	"laacad/internal/shard"
	"laacad/internal/sim"
	"laacad/internal/snapshot"
)

// Runner is the common face of every LAACAD execution regime: the
// synchronous round engine (core.Engine) and the event-driven simulator
// (sim.Deployment) both implement it, so callers drive any regime through
// one code path.
//
// Run executes until convergence, the configured budget (MaxRounds /
// MaxTime), ctx cancellation, or an observer-requested stop. Cancellation
// returns the partial Result together with ctx's error; an Observer
// returning core.ErrStop returns the partial Result with a nil error.
//
// Snapshot captures a resumable checkpoint between rounds (or τ epochs).
// Engine checkpoints resume bit-identically; async checkpoints resume
// positionally (see the snapshot package).
type Runner interface {
	Run(ctx context.Context) (*core.Result, error)
	Snapshot() (*snapshot.State, error)
}

// observable is the hook both engines expose for streaming round stats.
type observable interface {
	SetObserver(func(core.RoundStats) error)
}

// Observer streams rounds as they complete. It runs between rounds with
// the Runner that produced them, so it may stop the run (return
// core.ErrStop), abort it (any other error), checkpoint it (r.Snapshot),
// or inject failures mid-run (Engine(r).RemoveNode / AddNode) — all
// without breaking determinism.
type Observer func(r Runner, stats core.RoundStats) error

// options collects the functional options accepted by NewRunner, Run,
// ResumeRunner and Resume.
type options struct {
	observer      Observer
	workers       *int
	maxRounds     *int
	shards        int
	snapshotEvery int
	snapshotSink  func(*snapshot.State) error
	metrics       *metrics.Registry
}

// Option customizes how a scenario is run.
type Option func(*options)

// WithObserver streams every completed round (or τ epoch) to fn.
func WithObserver(fn Observer) Option {
	return func(o *options) { o.observer = fn }
}

// WithWorkers overrides Config.Workers — the per-round fan-out width — for
// this run. Results are bit-identical for every value.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = &n }
}

// WithMaxRounds overrides Config.MaxRounds for this run. Ignored by async
// scenarios, whose budget is AsyncConfig.MaxTime.
func WithMaxRounds(n int) Option {
	return func(o *options) { o.maxRounds = &n }
}

// WithShards runs the synchronous engine sharded: the region is partitioned
// into n vertical stripes, each owned by one shard goroutine, exchanging
// ρ-halos of border positions over typed channels. Positions, trace, radii
// and message totals are bit-identical to the shared-memory engine for every
// shard count. n ≤ 1 selects the shared-memory engine; async scenarios
// ignore the option.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithSnapshotEvery checkpoints the run every `every` completed rounds
// (or τ epochs), passing each checkpoint to sink — e.g. a file writer for
// crash-safe long runs. A sink error aborts the run.
func WithSnapshotEvery(every int, sink func(*snapshot.State) error) Option {
	return func(o *options) {
		o.snapshotEvery = every
		o.snapshotSink = sink
	}
}

// labeledRunner stamps scenario/region names onto checkpoints so they can
// be resumed through the registry without the caller re-supplying geometry.
type labeledRunner struct {
	inner    Runner
	scenario string
	region   string
}

func (l *labeledRunner) Run(ctx context.Context) (*core.Result, error) { return l.inner.Run(ctx) }

func (l *labeledRunner) Snapshot() (*snapshot.State, error) {
	st, err := l.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	st.Scenario = l.scenario
	st.Region = l.region
	return st, nil
}

func (l *labeledRunner) SetObserver(fn func(core.RoundStats) error) {
	l.inner.(observable).SetObserver(fn)
}

// Engine unwraps the synchronous round engine behind a Runner, if that is
// what it is — the handle for mid-run topology mutation from an Observer.
func Engine(r Runner) (*core.Engine, bool) {
	switch v := r.(type) {
	case *core.Engine:
		return v, true
	case *labeledRunner:
		return Engine(v.inner)
	}
	return nil, false
}

// ShardEngine unwraps the sharded engine behind a Runner, if that is what
// it is — the handle for halo-traffic statistics.
func ShardEngine(r Runner) (*shard.Engine, bool) {
	switch v := r.(type) {
	case *shard.Engine:
		return v, true
	case *labeledRunner:
		return ShardEngine(v.inner)
	}
	return nil, false
}

// AsyncDeployment unwraps the event-driven simulator behind a Runner, if
// that is what it is.
func AsyncDeployment(r Runner) (*sim.Deployment, bool) {
	switch v := r.(type) {
	case *sim.Deployment:
		return v, true
	case *labeledRunner:
		return AsyncDeployment(v.inner)
	}
	return nil, false
}

// NewRunner builds the Runner for a scenario: the synchronous engine, or
// the event-driven simulator when sc.Async is set. The returned Runner is
// ready to Run once; options wire in observers, checkpoint sinks and
// config overrides.
func NewRunner(sc Scenario, opts ...Option) (Runner, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	reg, err := sc.BuildRegion()
	if err != nil {
		return nil, err
	}
	initial, err := sc.Initial(reg)
	if err != nil {
		return nil, err
	}
	var inner Runner
	if sc.Async {
		d, err := sim.NewDeployment(reg, initial, sc.AsyncConfig)
		if err != nil {
			return nil, err
		}
		inner = d
	} else {
		cfg := sc.Config
		if o.workers != nil {
			cfg.Workers = *o.workers
		}
		if o.maxRounds != nil {
			cfg.MaxRounds = *o.maxRounds
		}
		if o.shards > 1 {
			eng, err := shard.New(reg, initial, cfg, o.shards)
			if err != nil {
				return nil, err
			}
			inner = eng
		} else {
			eng, err := core.New(reg, initial, cfg)
			if err != nil {
				return nil, err
			}
			inner = eng
		}
	}
	r := &labeledRunner{inner: inner, scenario: sc.Name, region: sc.Region}
	attach(r, &o)
	return r, nil
}

// Run is the one-call unified entry point: build the scenario's Runner and
// drive it to completion (or cancellation) under ctx.
func Run(ctx context.Context, sc Scenario, opts ...Option) (*core.Result, error) {
	r, err := NewRunner(sc, opts...)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}

// ResumeRunner rebuilds a Runner from a checkpoint, resolving the region
// through the registry (checkpoints written by NewRunner carry the region
// name). Options apply as in NewRunner; for engine checkpoints
// WithWorkers/WithMaxRounds override the checkpointed config.
func ResumeRunner(st *snapshot.State, opts ...Option) (Runner, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	regName := st.Region
	if regName == "" && st.Scenario != "" {
		sc, err := Lookup(st.Scenario)
		if err != nil {
			return nil, err
		}
		regName = sc.Region
	}
	if regName == "" {
		return nil, fmt.Errorf("scenario: checkpoint names no region; resume it with core.Resume/sim.Resume and an explicit region")
	}
	reg, err := LookupRegion(regName)
	if err != nil {
		return nil, err
	}
	var inner Runner
	switch st.Kind {
	case snapshot.KindEngine:
		if o.workers != nil {
			st.Config.Workers = *o.workers
		}
		if o.maxRounds != nil {
			st.Config.MaxRounds = *o.maxRounds
		}
		if o.shards > 1 {
			eng, err := shard.Resume(reg, st, o.shards)
			if err != nil {
				return nil, err
			}
			inner = eng
		} else {
			eng, err := core.Resume(reg, st)
			if err != nil {
				return nil, err
			}
			inner = eng
		}
	case snapshot.KindAsync:
		d, err := sim.Resume(reg, st)
		if err != nil {
			return nil, err
		}
		inner = d
	default:
		return nil, fmt.Errorf("scenario: unknown checkpoint kind %q", st.Kind)
	}
	r := &labeledRunner{inner: inner, scenario: st.Scenario, region: regName}
	attach(r, &o)
	return r, nil
}

// Resume is the one-call counterpart of ResumeRunner.
func Resume(ctx context.Context, st *snapshot.State, opts ...Option) (*core.Result, error) {
	r, err := ResumeRunner(st, opts...)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}

// attach composes the metrics publisher, the checkpoint sink and the user
// observer into the engine-level per-round callback.
func attach(r *labeledRunner, o *options) {
	var publish func(core.RoundStats)
	if o.metrics != nil {
		publish = instrument(r, o.metrics)
	}
	if o.observer == nil && o.snapshotSink == nil && publish == nil {
		return
	}
	r.SetObserver(func(st core.RoundStats) error {
		if publish != nil {
			publish(st)
		}
		if o.snapshotSink != nil && o.snapshotEvery > 0 && st.Round > 0 && st.Round%o.snapshotEvery == 0 {
			snap, err := r.Snapshot()
			if err != nil {
				return err
			}
			if err := o.snapshotSink(snap); err != nil {
				return err
			}
		}
		if o.observer != nil {
			return o.observer(r, st)
		}
		return nil
	})
}
