// Package scenario turns a LAACAD run into a single replayable value.
//
// A Scenario bundles everything that defines a deployment — the target
// region, the initial-placement generator, the node count, and the engine
// configuration — referenced by name through three registries (regions,
// placements, scenarios) so that the CLIs, the experiment harness, and
// library users all resolve the same definitions instead of hand-wiring
// geometry and parameters. Because every ingredient is named and every
// random draw derives from the scenario's seed, a Scenario value (or its
// name plus overrides) is sufficient to reproduce a run bit-exactly on any
// machine.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"laacad/internal/core"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/sim"
)

// RegionFunc constructs a named target region.
type RegionFunc func() *region.Region

// PlacementFunc generates n initial node positions over a region. The rng
// is the only randomness source a placement may use, so placements are
// replayable from the scenario seed.
type PlacementFunc func(r *region.Region, n int, rng *rand.Rand) []geom.Point

// Scenario is a complete, replayable deployment definition.
type Scenario struct {
	// Name is the registry key; empty for ad-hoc scenarios.
	Name string
	// Description is a one-line summary shown by listings.
	Description string
	// Region names the target area (see RegionNames).
	Region string
	// Placement names the initial-deployment generator (see PlacementNames).
	Placement string
	// N is the number of nodes.
	N int
	// Config parameterizes the synchronous round engine. Config.Seed also
	// drives the placement generator, so (Scenario, nothing else) decides
	// the entire run.
	Config core.Config
	// Async switches the run to the event-driven simulator, parameterized
	// by AsyncConfig (whose Seed then drives the placement instead).
	Async bool
	// AsyncConfig parameterizes the event-driven simulator (Async == true).
	AsyncConfig sim.Config
}

// Seed returns the seed the scenario's randomness derives from.
func (s Scenario) Seed() int64 {
	if s.Async {
		return s.AsyncConfig.Seed
	}
	return s.Config.Seed
}

// WithSeed returns a copy of the scenario reseeded to seed (both the
// placement and the engine draw from it).
func (s Scenario) WithSeed(seed int64) Scenario {
	s.Config.Seed = seed
	s.AsyncConfig.Seed = seed
	return s
}

// BuildRegion resolves and constructs the scenario's region.
func (s Scenario) BuildRegion() (*region.Region, error) {
	return LookupRegion(s.Region)
}

// Initial generates the scenario's initial node positions over reg.
func (s Scenario) Initial(reg *region.Region) ([]geom.Point, error) {
	place, err := LookupPlacement(s.Placement)
	if err != nil {
		return nil, err
	}
	if s.N < 1 {
		return nil, fmt.Errorf("scenario: need at least 1 node, got %d", s.N)
	}
	return place(reg, s.N, rand.New(rand.NewSource(s.Seed()))), nil
}

// Registries. All three are safe for concurrent use; built-ins are
// installed at package init and may be extended (or shadowed) by callers.
var (
	mu         sync.RWMutex
	regions    = map[string]RegionFunc{}
	placements = map[string]PlacementFunc{}
	scenarios  = map[string]Scenario{}
)

// RegisterRegion installs (or replaces) a named region constructor.
func RegisterRegion(name string, fn RegionFunc) {
	if name == "" || fn == nil {
		panic("scenario: RegisterRegion with empty name or nil constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	regions[name] = fn
}

// LookupRegion builds the named region.
func LookupRegion(name string) (*region.Region, error) {
	mu.RLock()
	fn, ok := regions[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown region %q (have %v)", name, RegionNames())
	}
	return fn(), nil
}

// RegionNames returns the registered region names, sorted.
func RegionNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(regions)
}

// RegisterPlacement installs (or replaces) a named placement generator.
func RegisterPlacement(name string, fn PlacementFunc) {
	if name == "" || fn == nil {
		panic("scenario: RegisterPlacement with empty name or nil generator")
	}
	mu.Lock()
	defer mu.Unlock()
	placements[name] = fn
}

// LookupPlacement returns the named placement generator.
func LookupPlacement(name string) (PlacementFunc, error) {
	mu.RLock()
	fn, ok := placements[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown placement %q (have %v)", name, PlacementNames())
	}
	return fn, nil
}

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(placements)
}

// Register installs (or replaces) a named scenario. The scenario's Region
// and Placement must already be registered.
func Register(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: cannot register a scenario without a name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := regions[sc.Region]; !ok {
		return fmt.Errorf("scenario: %q references unknown region %q", sc.Name, sc.Region)
	}
	if _, ok := placements[sc.Placement]; !ok {
		return fmt.Errorf("scenario: %q references unknown placement %q", sc.Name, sc.Placement)
	}
	scenarios[sc.Name] = sc
	return nil
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, error) {
	mu.RLock()
	sc, ok := scenarios[name]
	mu.RUnlock()
	if !ok {
		names := Names()
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, names)
	}
	return sc, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return sortedKeys(scenarios)
}

// All returns every registered scenario in name order.
func All() []Scenario {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Scenario, 0, len(scenarios))
	for _, name := range sortedKeys(scenarios) {
		out = append(out, scenarios[name])
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mustRegister is the init-time Register that cannot fail.
func mustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

func init() {
	// Regions: the paper's 1 km² square, the two obstacle variants of
	// Fig. 8, and the non-convex demo shapes.
	RegisterRegion("square", region.UnitSquareKm)
	RegisterRegion("lshape", region.LShape)
	RegisterRegion("cross", region.Cross)
	RegisterRegion("obstacle1", func() *region.Region {
		return region.SquareWithCircularObstacle(geom.Pt(0.5, 0.5), 0.15)
	})
	RegisterRegion("obstacles2", region.SquareWithTwoObstacles)
	RegisterRegion("campus", region.Campus)

	// Placements.
	RegisterPlacement("uniform", region.PlaceUniform)
	RegisterPlacement("grid", region.PlaceGrid)
	RegisterPlacement("corner", func(r *region.Region, n int, rng *rand.Rand) []geom.Point {
		return region.PlaceCorner(r, n, 0.1, rng)
	})
	RegisterPlacement("cluster", func(r *region.Region, n int, rng *rand.Rand) []geom.Point {
		b := r.BBox()
		center := geom.Pt((b.Min.X+b.Max.X)/2, (b.Min.Y+b.Max.Y)/2)
		sigma := min(b.Width(), b.Height()) / 8
		return region.PlaceGaussianCluster(r, n, center, sigma, rng)
	})

	// Scenarios: one per execution regime / figure family of the paper's
	// evaluation. All default to seed 1; use WithSeed (or edit Config) for
	// replicates.
	defaultCfg := func(k int) core.Config {
		c := core.DefaultConfig(k)
		c.Seed = 1
		return c
	}
	mustRegister(Scenario{
		Name:        "uniform",
		Description: "100 nodes uniform over 1 km², 2-coverage (Fig. 7 regime)",
		Region:      "square", Placement: "uniform", N: 100,
		Config: defaultCfg(2),
	})
	mustRegister(Scenario{
		Name:        "corner",
		Description: "100 nodes piled in a corner, 2-coverage (Fig. 5/6 convergence)",
		Region:      "square", Placement: "corner", N: 100,
		Config: defaultCfg(2),
	})
	mustRegister(Scenario{
		Name:        "cluster",
		Description: "100 nodes air-dropped as a central Gaussian cluster, 2-coverage",
		Region:      "square", Placement: "cluster", N: 100,
		Config: defaultCfg(2),
	})
	mustRegister(Scenario{
		Name:        "obstacle1",
		Description: "120 nodes, square with a circular obstacle, 4-coverage (Fig. 8 I)",
		Region:      "obstacle1", Placement: "uniform", N: 120,
		Config: defaultCfg(4),
	})
	mustRegister(Scenario{
		Name:        "obstacles2",
		Description: "120 nodes, square with two obstacles, 4-coverage (Fig. 8 II)",
		Region:      "obstacles2", Placement: "uniform", N: 120,
		Config: defaultCfg(4),
	})
	mustRegister(Scenario{
		Name:        "lshape",
		Description: "80 nodes over the L-shaped region, 2-coverage",
		Region:      "lshape", Placement: "uniform", N: 80,
		Config: defaultCfg(2),
	})
	mustRegister(Scenario{
		Name:        "cross",
		Description: "80 nodes over the plus-shaped region, 2-coverage",
		Region:      "cross", Placement: "uniform", N: 80,
		Config: defaultCfg(2),
	})
	localized := defaultCfg(2)
	localized.Mode = core.Localized
	localized.Gamma = 0.2
	mustRegister(Scenario{
		Name:        "localized",
		Description: "100 nodes, fully distributed Algorithm 2 with message accounting",
		Region:      "square", Placement: "uniform", N: 100,
		Config: localized,
	})
	async := sim.DefaultConfig(2)
	async.Seed = 1
	// Large-scale scenarios: the production sizes the incremental spatial
	// layer exists for. Grid placement starts near the steady state, so the
	// runs spend their rounds in the few-movers regime where per-round cost
	// tracks what moved; epsilon scales with the lattice pitch √(area/n).
	large := func(k, n int) core.Config {
		c := defaultCfg(k)
		c.Epsilon = 0.1 / math.Sqrt(float64(n)) // pitch/10 on the unit square
		return c
	}
	mustRegister(Scenario{
		Name:        "square1km",
		Description: "10k nodes grid-seeded over 1 km², 2-coverage at production scale",
		Region:      "square", Placement: "grid", N: 10000,
		Config: large(2, 10000),
	})
	mustRegister(Scenario{
		Name:        "square1km-100k",
		Description: "100k nodes grid-seeded over 1 km², 2-coverage — the scale ceiling workload",
		Region:      "square", Placement: "grid", N: 100000,
		Config: large(2, 100000),
	})
	mustRegister(Scenario{
		Name:        "campus",
		Description: "10k nodes over the multi-obstacle campus (4 buildings + pond), 2-coverage",
		Region:      "campus", Placement: "grid", N: 10000,
		Config: large(2, 10000),
	})
	// Localized at production scale: Algorithm 2 with full message
	// accounting over 10k nodes. γ is three lattice pitches (pitch =
	// 1/√n on the unit square), so the expanding-ring search terminates
	// within a hop or two of its first ring; the message-faithful outcome
	// cache keeps the steady-state rounds proportional to what moved while
	// Result.Messages stays exactly what the eager protocol charges.
	largeLocalized := large(2, 10000)
	largeLocalized.Mode = core.Localized
	largeLocalized.Gamma = 0.03
	mustRegister(Scenario{
		Name:        "square1km-localized",
		Description: "10k nodes grid-seeded over 1 km², distributed Algorithm 2 with message accounting",
		Region:      "square", Placement: "grid", N: 10000,
		Config: largeLocalized,
	})
	mustRegister(Scenario{
		Name:        "async",
		Description: "50 nodes on jittered τ-clocks, event-driven execution",
		Region:      "square", Placement: "uniform", N: 50,
		Async:       true,
		AsyncConfig: async,
	})
}
