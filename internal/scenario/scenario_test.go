package scenario

import (
	"context"
	"errors"
	"testing"

	"laacad/internal/core"
	"laacad/internal/coverage"
	"laacad/internal/snapshot"
)

func TestRegistriesHaveBuiltins(t *testing.T) {
	for _, name := range []string{"square", "lshape", "cross", "obstacle1", "obstacles2", "campus"} {
		if _, err := LookupRegion(name); err != nil {
			t.Errorf("region %q missing: %v", name, err)
		}
	}
	for _, name := range []string{"uniform", "corner", "cluster", "grid"} {
		if _, err := LookupPlacement(name); err != nil {
			t.Errorf("placement %q missing: %v", name, err)
		}
	}
	names := []string{"uniform", "corner", "cluster", "obstacle1", "obstacles2", "lshape", "cross", "localized", "async", "square1km", "campus"}
	if !testing.Short() {
		names = append(names, "square1km-100k") // 100k-point placement: skip in -short
	}
	for _, name := range names {
		sc, err := Lookup(name)
		if err != nil {
			t.Errorf("scenario %q missing: %v", name, err)
			continue
		}
		reg, err := sc.BuildRegion()
		if err != nil {
			t.Errorf("scenario %q region: %v", name, err)
			continue
		}
		pts, err := sc.Initial(reg)
		if err != nil {
			t.Errorf("scenario %q placement: %v", name, err)
			continue
		}
		if len(pts) != sc.N {
			t.Errorf("scenario %q produced %d points, want %d", name, len(pts), sc.N)
		}
		for i, p := range pts {
			if !reg.Contains(p) {
				t.Errorf("scenario %q point %d outside region", name, i)
				break
			}
		}
	}
	if len(All()) != len(Names()) {
		t.Errorf("All/Names disagree: %d vs %d", len(All()), len(Names()))
	}
}

func TestLookupUnknownNames(t *testing.T) {
	if _, err := LookupRegion("mars"); err == nil {
		t.Error("unknown region should error")
	}
	if _, err := LookupPlacement("sideways"); err == nil {
		t.Error("unknown placement should error")
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown scenario should error")
	}
	if err := Register(Scenario{Name: "bad", Region: "mars", Placement: "uniform"}); err == nil {
		t.Error("registering a scenario with an unknown region should error")
	}
	if err := Register(Scenario{Name: "bad", Region: "square", Placement: "sideways"}); err == nil {
		t.Error("registering a scenario with an unknown placement should error")
	}
	if err := Register(Scenario{Region: "square", Placement: "uniform"}); err == nil {
		t.Error("registering a nameless scenario should error")
	}
}

func TestInitialIsReplayable(t *testing.T) {
	sc, err := Lookup("uniform")
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := sc.BuildRegion()
	a, _ := sc.Initial(reg)
	b, _ := sc.Initial(reg)
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatalf("placement not replayable at node %d", i)
		}
	}
	c, _ := sc.WithSeed(99).Initial(reg)
	same := true
	for i := range a {
		if !a[i].Eq(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("reseeded scenario produced identical placement")
	}
}

// quickScenario is a small, fast ad-hoc scenario for runner tests.
func quickScenario(seed int64) Scenario {
	cfg := core.DefaultConfig(1)
	cfg.Epsilon = 3e-3
	cfg.MaxRounds = 80
	cfg.Seed = seed
	return Scenario{
		Region: "square", Placement: "uniform", N: 14,
		Config: cfg,
	}
}

func TestRunSyncScenario(t *testing.T) {
	res, err := Run(context.Background(), quickScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge in %d rounds", res.Rounds)
	}
	reg, _ := LookupRegion("square")
	if rep := coverage.Verify(res.Positions, res.Radii, reg, 30); !rep.KCovered(1) {
		t.Errorf("not covered: min depth %d", rep.MinDepth)
	}
}

func TestRunAsyncScenarioThroughSameAPI(t *testing.T) {
	sc, err := Lookup("async")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 12
	sc.AsyncConfig.Epsilon = 3e-3
	sc.AsyncConfig.MaxTime = 400
	var epochs int
	res, err := Run(context.Background(), sc, WithObserver(func(r Runner, st core.RoundStats) error {
		if _, ok := AsyncDeployment(r); !ok {
			t.Error("async scenario should expose a sim.Deployment")
		}
		epochs++
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 12 || len(res.Radii) != 12 {
		t.Fatalf("bad result shape: %d positions, %d radii", len(res.Positions), len(res.Radii))
	}
	if epochs == 0 || res.Rounds == 0 {
		t.Errorf("observer saw %d epochs, result reports %d", epochs, res.Rounds)
	}
	if len(res.Trace) != res.Rounds {
		t.Errorf("trace has %d entries for %d epochs", len(res.Trace), res.Rounds)
	}
}

func TestObserverEarlyStopAndAbort(t *testing.T) {
	var seen int
	res, err := Run(context.Background(), quickScenario(4),
		WithObserver(func(r Runner, st core.RoundStats) error {
			seen++
			if st.Round >= 3 {
				return core.ErrStop
			}
			return nil
		}))
	if err != nil {
		t.Fatalf("ErrStop must end the run cleanly, got %v", err)
	}
	if res.Rounds != 3 || seen != 3 {
		t.Errorf("early stop after round 3: rounds=%d observed=%d", res.Rounds, seen)
	}

	boom := errors.New("boom")
	res, err = Run(context.Background(), quickScenario(4),
		WithObserver(func(r Runner, st core.RoundStats) error { return boom }))
	if !errors.Is(err, boom) {
		t.Fatalf("observer error must propagate, got %v", err)
	}
	if res == nil || res.Rounds != 1 {
		t.Errorf("aborted run should still return the partial result, got %+v", res)
	}
}

func TestWithWorkersAndMaxRoundsOverride(t *testing.T) {
	res1, err := Run(context.Background(), quickScenario(5), WithMaxRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Rounds != 2 || res1.Converged {
		t.Errorf("MaxRounds=2 override ignored: rounds=%d converged=%v", res1.Rounds, res1.Converged)
	}
	// The determinism contract: worker count never changes the outcome.
	resA, err := Run(context.Background(), quickScenario(6), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(context.Background(), quickScenario(6), WithWorkers(-1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.Positions {
		if !resA.Positions[i].Eq(resB.Positions[i]) || resA.Radii[i] != resB.Radii[i] {
			t.Fatalf("workers changed the outcome at node %d", i)
		}
	}
}

func TestSnapshotSinkAndRegistryResume(t *testing.T) {
	var states []*snapshot.State
	_, err := Run(context.Background(), quickScenario(7),
		WithSnapshotEvery(2, func(st *snapshot.State) error {
			states = append(states, st)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 {
		t.Fatal("no checkpoints delivered")
	}
	st := states[0]
	if st.Kind != snapshot.KindEngine || st.Region != "square" || st.Round != 2 {
		t.Fatalf("unexpected checkpoint: kind=%q region=%q round=%d", st.Kind, st.Region, st.Round)
	}
	// Resume the earliest checkpoint through the registry and finish the
	// run: the outcome must be bit-identical to an uninterrupted run.
	full, err := Run(context.Background(), quickScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds != full.Rounds || resumed.Converged != full.Converged {
		t.Fatalf("resumed run diverged: rounds %d vs %d", resumed.Rounds, full.Rounds)
	}
	for i := range full.Positions {
		if !full.Positions[i].Eq(resumed.Positions[i]) || full.Radii[i] != resumed.Radii[i] {
			t.Fatalf("resume not bit-identical at node %d", i)
		}
	}
}
