package scenario

import (
	"laacad/internal/core"
	"laacad/internal/metrics"
)

// WithMetrics publishes the run's observability surface into reg:
//
//   - Live gauges over the WSN's concurrency-safe counters — the committed
//     message total ("wsn.messages") and the speculative escrow depth
//     ("wsn.escrow_depth"). These read true atomics, so a scrape taken in
//     the middle of a round (even mid-wave) is exact and monotone: the
//     deferred-charge ledger guarantees the committed total never includes
//     speculative work and never moves backwards.
//
//   - Per-round counters snapshotted by an internal observer after every
//     completed round: the engine's cumulative cache/invalidation work
//     ("cache.*"), colored-sweep speculation accounting ("spec.*"), the
//     level scheduler's layout and wave widths ("engine.levels",
//     "engine.level_width_max", "batch.size_*") and batch-kernel volume
//     ("batch.calls", "batch.nodes"),
//     incremental boundary-flag evaluations ("flags.evals"), spatial-index
//     work ("wsn.rebuilds", "wsn.incremental_moves"), and round progress
//     ("engine.rounds", "engine.moved_last_round",
//     "engine.messages_last_round"). Their sources are plain fields owned
//     by the engine goroutine, so they are published only at the between-
//     rounds observation point.
//
// The option composes with WithObserver and WithSnapshotEvery; publication
// happens before the user observer runs, so an observer reading reg sees
// the round it was called for. Async (event-driven) runners publish only
// the round-progress counters. Sharded runs (WithShards) publish the
// round-progress counters plus live halo-traffic gauges ("shard.halo_msgs",
// "shard.halo_bytes", "shard.exchanges") and the shard count
// ("shard.shards").
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// instrument registers r's gauges in reg and returns the per-round
// publication callback attach folds into the engine observer.
func instrument(r *labeledRunner, reg *metrics.Registry) func(core.RoundStats) {
	rounds := reg.Counter("engine.rounds")
	moved := reg.Counter("engine.moved_last_round")
	msgs := reg.Counter("engine.messages_last_round")
	if sh, ok := ShardEngine(r); ok {
		// Sharded runs expose the halo-exchange traffic — the metered cost of
		// keeping the stripe windows coherent — as live gauges over atomics.
		reg.Gauge("shard.halo_msgs", func() int64 { return sh.HaloStats().Msgs })
		reg.Gauge("shard.halo_bytes", func() int64 { return sh.HaloStats().Bytes })
		reg.Gauge("shard.exchanges", func() int64 { return sh.HaloStats().Exchanges })
		reg.Counter("shard.shards").Set(int64(sh.Shards()))
		return func(st core.RoundStats) {
			rounds.Set(int64(st.Round))
			moved.Set(int64(st.Moved))
			msgs.Set(st.Messages)
		}
	}
	eng, ok := Engine(r)
	if !ok {
		return func(st core.RoundStats) {
			rounds.Set(int64(st.Round))
			moved.Set(int64(st.Moved))
			msgs.Set(st.Messages)
		}
	}
	net := eng.Network()
	reg.Gauge("wsn.messages", net.MessageCount)
	reg.Gauge("wsn.escrow_depth", net.EscrowDepth)
	counters := map[string]*metrics.Counter{
		"cache.hits":             reg.Counter("cache.hits"),
		"cache.inverse_scans":    reg.Counter("cache.inverse_scans"),
		"cache.pair_scans":       reg.Counter("cache.pair_scans"),
		"cache.cell_visits":      reg.Counter("cache.cell_visits"),
		"cache.candidate_visits": reg.Counter("cache.candidate_visits"),
		"cache.pair_visits":      reg.Counter("cache.pair_visits"),
		"cache.bound_rebuilds":   reg.Counter("cache.bound_rebuilds"),
		"cache.local_flushes":    reg.Counter("cache.local_flushes"),
		"spec.waves":             reg.Counter("spec.waves"),
		"spec.computed":          reg.Counter("spec.computed"),
		"spec.used":              reg.Counter("spec.used"),
		"spec.wasted":            reg.Counter("spec.wasted"),
		"engine.levels":          reg.Counter("engine.levels"),
		"engine.level_width_max": reg.Counter("engine.level_width_max"),
		"batch.calls":            reg.Counter("batch.calls"),
		"batch.nodes":            reg.Counter("batch.nodes"),
		"flags.evals":            reg.Counter("flags.evals"),
		"wsn.rebuilds":           reg.Counter("wsn.rebuilds"),
		"wsn.incremental_moves":  reg.Counter("wsn.incremental_moves"),
	}
	// Wave-size histogram: one counter per bucket, set from the engine's
	// cumulative BatchSizeHist after every round.
	sizeBuckets := [...]*metrics.Counter{
		reg.Counter("batch.size_1"),
		reg.Counter("batch.size_2_3"),
		reg.Counter("batch.size_4_7"),
		reg.Counter("batch.size_8_15"),
		reg.Counter("batch.size_16_31"),
		reg.Counter("batch.size_32_plus"),
	}
	return func(st core.RoundStats) {
		rounds.Set(int64(st.Round))
		moved.Set(int64(st.Moved))
		msgs.Set(st.Messages)
		cc := eng.CacheCounters()
		counters["cache.hits"].Set(int64(cc.CacheHits))
		counters["cache.inverse_scans"].Set(int64(cc.InverseScans))
		counters["cache.pair_scans"].Set(int64(cc.PairScans))
		counters["cache.cell_visits"].Set(int64(cc.CellVisits))
		counters["cache.candidate_visits"].Set(int64(cc.CandidateVisits))
		counters["cache.pair_visits"].Set(int64(cc.PairVisits))
		counters["cache.bound_rebuilds"].Set(int64(cc.BoundRebuilds))
		counters["cache.local_flushes"].Set(int64(cc.LocalFlushes))
		counters["spec.waves"].Set(int64(cc.Waves))
		counters["spec.computed"].Set(int64(cc.SpecComputed))
		counters["spec.used"].Set(int64(cc.SpecUsed))
		counters["spec.wasted"].Set(int64(cc.SpecWasted))
		counters["engine.levels"].Set(int64(cc.Levels))
		counters["engine.level_width_max"].Set(int64(cc.LevelWidthMax))
		counters["batch.calls"].Set(int64(cc.BatchCalls))
		counters["batch.nodes"].Set(int64(cc.BatchNodes))
		for b, ctr := range sizeBuckets {
			ctr.Set(int64(cc.BatchSizeHist[b]))
		}
		counters["flags.evals"].Set(int64(cc.FlagEvals))
		counters["wsn.rebuilds"].Set(int64(net.Rebuilds()))
		counters["wsn.incremental_moves"].Set(int64(net.IncrementalMoves()))
	}
}
