package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"laacad/internal/core"
	"laacad/internal/sim"
	"laacad/internal/snapshot"
	"laacad/internal/wsn"
)

// Scenario wire format.
//
// A Scenario round-trips through JSON so deployments can be submitted to a
// daemon, spooled to disk, and replayed elsewhere: names resolve through the
// registries on the receiving side, and the engine configuration reuses the
// snapshot.ConfigState schema already proven to round-trip bit-exactly for
// checkpoints. The wire form records the configuration of the active regime
// (engine config, or the event-driven simulator's when async is set); a
// decoded Scenario is therefore equal to the encoded one for every scenario
// whose inactive config is the zero value — which all registered scenarios
// are.

// scenarioJSON is the wire shape; Scenario's JSON methods go through it so
// the exported struct can keep richer types (core.Config holds a Detector
// interface the wire cannot carry).
type scenarioJSON struct {
	Name        string               `json:"name,omitempty"`
	Description string               `json:"description,omitempty"`
	Region      string               `json:"region"`
	Placement   string               `json:"placement"`
	N           int                  `json:"n"`
	Async       bool                 `json:"async,omitempty"`
	Config      snapshot.ConfigState `json:"config"`
}

// MarshalJSON encodes the scenario in its wire form.
func (s Scenario) MarshalJSON() ([]byte, error) {
	w := scenarioJSON{
		Name:        s.Name,
		Description: s.Description,
		Region:      s.Region,
		Placement:   s.Placement,
		N:           s.N,
		Async:       s.Async,
	}
	if s.Async {
		w.Config = asyncConfigToState(s.AsyncConfig)
	} else {
		w.Config = core.ConfigToState(s.Config)
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, rejecting unknown fields so a typo in
// a submitted job surfaces as an error instead of a silently ignored knob.
// It performs no registry resolution; call Validate before running the
// decoded scenario.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	var w scenarioJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("scenario: decoding: %w", err)
	}
	*s = Scenario{
		Name:        w.Name,
		Description: w.Description,
		Region:      w.Region,
		Placement:   w.Placement,
		N:           w.N,
		Async:       w.Async,
	}
	if w.Async {
		s.AsyncConfig = asyncConfigFromState(w.Config)
	} else {
		s.Config = core.ConfigFromState(w.Config)
	}
	return nil
}

// ParseJSON decodes and validates a scenario — the submit-time entry point:
// a scenario that parses is guaranteed to resolve against the registries and
// to carry parameters the engine will accept, so a bad submission fails here
// with a clear error instead of deep inside Run.
func ParseJSON(data []byte) (Scenario, error) {
	var s Scenario
	if err := s.UnmarshalJSON(data); err != nil {
		return Scenario{}, err
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Validate checks that the scenario resolves against the registries and that
// its parameters can build a runner. Unknown region/placement names are
// rejected with the list of valid names; non-positive N, out-of-range enums
// and regime-specific requirements (Localized needs γ > 0, async needs a
// time budget) fail with an error naming the offending field.
func (s Scenario) Validate() error {
	mu.RLock()
	_, regionOK := regions[s.Region]
	_, placementOK := placements[s.Placement]
	mu.RUnlock()
	if !regionOK {
		return fmt.Errorf("scenario: unknown region %q (valid regions: %s)",
			s.Region, strings.Join(RegionNames(), ", "))
	}
	if !placementOK {
		return fmt.Errorf("scenario: unknown placement %q (valid placements: %s)",
			s.Placement, strings.Join(PlacementNames(), ", "))
	}
	if s.N < 1 {
		return fmt.Errorf("scenario: n must be positive, got %d", s.N)
	}
	if s.Async {
		c := s.AsyncConfig
		if c.K < 1 || s.N < c.K {
			return fmt.Errorf("scenario: need k >= 1 and n >= k, got k=%d n=%d", c.K, s.N)
		}
		if c.Alpha <= 0 || c.Alpha > 1 {
			return fmt.Errorf("scenario: alpha must be in (0, 1], got %v", c.Alpha)
		}
		if c.Epsilon <= 0 {
			return fmt.Errorf("scenario: epsilon must be positive, got %v", c.Epsilon)
		}
		if c.Tau <= 0 {
			return fmt.Errorf("scenario: tau must be positive, got %v", c.Tau)
		}
		if c.MaxTime <= 0 {
			return fmt.Errorf("scenario: max_time must be positive, got %v", c.MaxTime)
		}
		return nil
	}
	c := s.Config
	if c.K < 1 || s.N < c.K {
		return fmt.Errorf("scenario: need k >= 1 and n >= k, got k=%d n=%d", c.K, s.N)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("scenario: alpha must be in (0, 1], got %v", c.Alpha)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("scenario: epsilon must be positive, got %v", c.Epsilon)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("scenario: max_rounds must be positive, got %d", c.MaxRounds)
	}
	if c.Mode != core.Centralized && c.Mode != core.Localized {
		return fmt.Errorf("scenario: unknown mode %d (0 = centralized, 1 = localized)", int(c.Mode))
	}
	if c.Order != core.Synchronous && c.Order != core.Sequential {
		return fmt.Errorf("scenario: unknown order %d (0 = synchronous, 1 = sequential)", int(c.Order))
	}
	if c.Mode == core.Localized && c.Gamma <= 0 {
		return fmt.Errorf("scenario: localized mode needs gamma > 0, got %v", c.Gamma)
	}
	if c.RingMode != wsn.RingGeometric && c.RingMode != wsn.RingHopLimited {
		return fmt.Errorf("scenario: unknown ring_mode %d (0 = geometric, 1 = hop-limited)", int(c.RingMode))
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("scenario: loss_rate must be in [0, 1), got %v", c.LossRate)
	}
	if c.LossRetries < 0 {
		return fmt.Errorf("scenario: loss_retries must be non-negative, got %d", c.LossRetries)
	}
	if c.RingCap < 0 {
		return fmt.Errorf("scenario: ring_cap must be non-negative, got %v", c.RingCap)
	}
	if c.LossRate > 0 && c.Mode != core.Localized {
		return fmt.Errorf("scenario: loss_rate %v needs localized mode (message loss models the expanding-ring query's link layer)", c.LossRate)
	}
	return nil
}

// asyncConfigToState maps the event-driven simulator's configuration onto
// the shared ConfigState schema (the async fields the checkpoint format
// already carries).
func asyncConfigToState(c sim.Config) snapshot.ConfigState {
	return snapshot.ConfigState{
		K:                 c.K,
		Alpha:             c.Alpha,
		Epsilon:           c.Epsilon,
		Seed:              c.Seed,
		Tau:               c.Tau,
		Jitter:            c.Jitter,
		Speed:             c.Speed,
		MaxTime:           c.MaxTime,
		StableActivations: c.StableActivations,
	}
}

func asyncConfigFromState(s snapshot.ConfigState) sim.Config {
	return sim.Config{
		K:                 s.K,
		Alpha:             s.Alpha,
		Epsilon:           s.Epsilon,
		Seed:              s.Seed,
		Tau:               s.Tau,
		Jitter:            s.Jitter,
		Speed:             s.Speed,
		MaxTime:           s.MaxTime,
		StableActivations: s.StableActivations,
	}
}
