package scenario

import (
	"context"
	"reflect"
	"testing"

	"laacad/internal/metrics"
	"laacad/internal/snapshot"
)

// WithShards must route the run through the sharded engine, produce a
// bitwise-identical Result, publish the halo-traffic gauges, and survive a
// checkpoint/resume cycle across different shard counts.
func TestWithShardsBitIdenticalAndMetered(t *testing.T) {
	ref, err := Run(context.Background(), quickScenario(11))
	if err != nil {
		t.Fatal(err)
	}
	var reg metrics.Registry
	r, err := NewRunner(quickScenario(11), WithShards(3), WithMetrics(&reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ShardEngine(r); !ok {
		t.Fatal("WithShards(3) did not build a sharded engine")
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("sharded result differs from shared-memory result")
	}
	snap := reg.Snapshot()
	if snap["shard.shards"] != 3 {
		t.Errorf("shard.shards = %d, want 3", snap["shard.shards"])
	}
	if snap["shard.halo_msgs"] <= 0 || snap["shard.halo_bytes"] <= 0 || snap["shard.exchanges"] <= 0 {
		t.Errorf("halo gauges not live: msgs=%d bytes=%d exchanges=%d",
			snap["shard.halo_msgs"], snap["shard.halo_bytes"], snap["shard.exchanges"])
	}
	sh, _ := ShardEngine(r)
	if hs := sh.HaloStats(); snap["shard.halo_msgs"] != hs.Msgs {
		t.Errorf("shard.halo_msgs = %d, want %d", snap["shard.halo_msgs"], hs.Msgs)
	}
}

// A checkpoint written mid-run by the sharded engine resumes bit-identically
// through ResumeRunner — under any shard count, including back onto the
// shared-memory engine.
func TestWithShardsCheckpointResume(t *testing.T) {
	ref, err := Run(context.Background(), quickScenario(12))
	if err != nil {
		t.Fatal(err)
	}
	// One full sharded run, checkpointing every 4 rounds; the first
	// checkpoint is the mid-run state the resume legs continue from.
	var mid *snapshot.State
	r, err := NewRunner(quickScenario(12), WithShards(2),
		WithSnapshotEvery(4, func(st *snapshot.State) error {
			if mid == nil {
				mid = st
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, ref) {
		t.Fatal("sharded run differs from shared-memory run")
	}
	if mid == nil {
		t.Fatal("no mid-run checkpoint captured")
	}
	for _, resumeShards := range []int{0, 2, 4} {
		st := mid
		var opts []Option
		if resumeShards > 0 {
			opts = append(opts, WithShards(resumeShards))
		}
		rr, err := ResumeRunner(st, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rr.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("resume with %d shards: result differs from uninterrupted shared-memory run", resumeShards)
		}
	}
}
