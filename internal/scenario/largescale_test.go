package scenario

import (
	"context"
	"testing"

	"laacad/internal/core"
)

// TestLargeScaleScenarioSmoke drives the square1km (n=10k) and campus
// scenarios for a few rounds end to end — the fail-fast guard against scale
// regressions in the spatial layer. Short mode shrinks the node count, not
// the path: the same registry resolution, placement, engine and invalidation
// machinery run either way.
func TestLargeScaleScenarioSmoke(t *testing.T) {
	rounds := 3
	for _, name := range []string{"square1km", "campus", "square1km-localized"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if sc.N < 10000 {
				t.Fatalf("scenario %q has n=%d; the smoke exists to exercise 10k+", name, sc.N)
			}
			if testing.Short() {
				sc.N = 2000
			}
			reg, err := sc.BuildRegion()
			if err != nil {
				t.Fatal(err)
			}
			var lastMoved int
			res, err := Run(context.Background(), sc,
				WithMaxRounds(rounds),
				WithObserver(func(r Runner, st core.RoundStats) error {
					lastMoved = st.Moved
					return nil
				}))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != rounds {
				t.Fatalf("ran %d rounds, want %d", res.Rounds, rounds)
			}
			if len(res.Positions) != sc.N || len(res.Radii) != sc.N {
				t.Fatalf("result shape: %d positions, %d radii, want %d", len(res.Positions), len(res.Radii), sc.N)
			}
			for i, p := range res.Positions {
				if !reg.Contains(p) {
					t.Fatalf("node %d ended outside the region at %v", i, p)
				}
				if res.Radii[i] <= 0 {
					t.Fatalf("node %d has non-positive sensing radius %v", i, res.Radii[i])
				}
			}
			// Grid placement starts near steady state: after the cold round,
			// the rounds must be in the few-movers regime, which is what
			// makes this scale affordable at all.
			if lastMoved > sc.N/4 {
				t.Errorf("round %d moved %d of %d nodes; grid placement should start near-converged",
					rounds, lastMoved, sc.N)
			}
			if sc.Config.Mode == core.Localized && res.Messages == 0 {
				t.Error("localized scale run charged no messages; accounting broken")
			}
		})
	}
}
