package scenario

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"laacad/internal/core"
)

// reentrantCases builds distinct ad-hoc scenarios spanning both modes, all
// orders, and several regions/placements — the mix a service worker pool
// runs side by side in one process.
func reentrantCases() []Scenario {
	mk := func(region, placement string, n int, mode core.Mode, order core.UpdateOrder, seed int64) Scenario {
		cfg := core.DefaultConfig(2)
		cfg.Epsilon = 1e-12 // never converges: exactly MaxRounds rounds
		cfg.MaxRounds = 20
		cfg.Mode = mode
		cfg.Order = order
		cfg.Gamma = 0.6
		cfg.Seed = seed
		return Scenario{Region: region, Placement: placement, N: n, Config: cfg}
	}
	return []Scenario{
		mk("square", "uniform", 16, core.Centralized, core.Synchronous, 1),
		mk("square", "corner", 14, core.Centralized, core.Sequential, 2),
		mk("lshape", "uniform", 16, core.Centralized, core.Synchronous, 3),
		mk("cross", "cluster", 15, core.Centralized, core.Synchronous, 4),
		mk("square", "uniform", 12, core.Localized, core.Synchronous, 5),
		mk("square", "grid", 16, core.Localized, core.Sequential, 6),
	}
}

// TestConcurrentRunsBitIdenticalToSolo pins runner reentrancy: many
// distinct scenarios executing simultaneously in one process (as the
// laacadd worker pool does) must each produce exactly the result of running
// alone. Run under -race in CI, this also proves the runners share no
// mutable state.
func TestConcurrentRunsBitIdenticalToSolo(t *testing.T) {
	cases := reentrantCases()

	solo := make([]*core.Result, len(cases))
	for i, sc := range cases {
		r, err := NewRunner(sc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res, err := r.Run(context.Background())
		if err != nil {
			t.Fatalf("case %d solo run: %v", i, err)
		}
		solo[i] = res
	}

	// Two concurrent copies of every case, all in flight at once.
	const copies = 2
	var wg sync.WaitGroup
	errs := make(chan error, len(cases)*copies)
	for i, sc := range cases {
		for c := 0; c < copies; c++ {
			wg.Add(1)
			go func(i, c int, sc Scenario) {
				defer wg.Done()
				r, err := NewRunner(sc)
				if err != nil {
					errs <- fmt.Errorf("case %d copy %d: %w", i, c, err)
					return
				}
				res, err := r.Run(context.Background())
				if err != nil {
					errs <- fmt.Errorf("case %d copy %d run: %w", i, c, err)
					return
				}
				if !reflect.DeepEqual(res, solo[i]) {
					errs <- fmt.Errorf("case %d copy %d: concurrent result differs from solo run", i, c)
				}
			}(i, c, sc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
