package scenario

import (
	"context"
	"testing"

	"laacad/internal/core"
	"laacad/internal/metrics"
)

// WithMetrics must publish the engine's observability surface: round
// progress after every round, the live message gauge agreeing with the
// result, and the work counters mirroring Engine.CacheCounters.
func TestWithMetricsPublishesEngineSurface(t *testing.T) {
	var reg metrics.Registry
	var last core.CacheCounters
	res, err := Run(context.Background(), quickScenario(7),
		WithMetrics(&reg),
		WithObserver(func(r Runner, st core.RoundStats) error {
			// Publication happens before the user observer: the registry
			// already reflects the round we are being called for.
			if got := reg.Snapshot()["engine.rounds"]; got != int64(st.Round) {
				t.Errorf("round %d: engine.rounds = %d", st.Round, got)
			}
			if eng, ok := Engine(r); ok {
				last = eng.CacheCounters()
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["engine.rounds"]; got != int64(res.Rounds) {
		t.Errorf("engine.rounds = %d, want %d", got, res.Rounds)
	}
	if got := snap["cache.hits"]; got != int64(last.CacheHits) {
		t.Errorf("cache.hits = %d, want %d", got, last.CacheHits)
	}
	if got := snap["batch.nodes"]; got != int64(last.BatchNodes) {
		t.Errorf("batch.nodes = %d, want %d", got, last.BatchNodes)
	}
	if snap["batch.nodes"] == 0 {
		t.Error("batch.nodes never published despite the batch kernel being live")
	}
	if got := snap["engine.levels"]; got != int64(last.Levels) {
		t.Errorf("engine.levels = %d, want %d", got, last.Levels)
	}
	for _, name := range []string{
		"engine.level_width_max", "batch.calls", "batch.size_1", "batch.size_2_3",
		"batch.size_4_7", "batch.size_8_15", "batch.size_16_31", "batch.size_32_plus",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("counter %q not registered", name)
		}
	}
	if got := snap["wsn.escrow_depth"]; got != 0 {
		t.Errorf("escrow depth nonzero between rounds: %d", got)
	}
	if snap["wsn.rebuilds"] == 0 {
		t.Error("wsn.rebuilds never published")
	}
}

// The localized cell additionally ties the live message gauge to the
// result's total: exact accounting means the last scrape equals
// Result.Messages.
func TestWithMetricsLocalizedMessageGauge(t *testing.T) {
	sc := quickScenario(9)
	sc.Config.Mode = core.Localized
	sc.Config.Gamma = 0.35
	var reg metrics.Registry
	res, err := Run(context.Background(), sc, WithMetrics(&reg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("localized run charged no messages")
	}
	if got := reg.Snapshot()["wsn.messages"]; got != res.Messages {
		t.Errorf("wsn.messages gauge = %d, want Result.Messages = %d", got, res.Messages)
	}
}

// Async runners have no engine to unwrap; the option still publishes round
// progress instead of failing.
func TestWithMetricsAsyncFallback(t *testing.T) {
	sc, err := Lookup("async")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 10
	sc.AsyncConfig.Epsilon = 3e-3
	sc.AsyncConfig.MaxTime = 200
	var reg metrics.Registry
	res, err := Run(context.Background(), sc, WithMetrics(&reg))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot()["engine.rounds"]; got != int64(res.Rounds) {
		t.Errorf("engine.rounds = %d, want %d", got, res.Rounds)
	}
}
