// Package coverage verifies k-area coverage of a sensor deployment and
// computes the load metrics reported in the paper's evaluation (max/total
// sensing load, min/max sensing range).
//
// Verification is grid-based: the region is sampled at cell centers of a
// uniform grid and each sample's coverage depth (number of sensing disks
// containing it) is counted. Definition 1 of the paper holds when the
// minimum depth over all samples is at least k.
package coverage

import (
	"fmt"
	"math"
	"sort"

	"laacad/internal/geom"
	"laacad/internal/region"
)

// Report summarizes the coverage of a deployment over a region.
type Report struct {
	// Samples is the number of in-region grid samples checked.
	Samples int
	// MinDepth and MaxDepth are the extrema of per-sample coverage depth.
	MinDepth, MaxDepth int
	// MeanDepth is the average coverage depth (the deployment's redundancy).
	MeanDepth float64
	// DepthHist[d] counts samples covered by exactly d sensors, for
	// d ≤ len(DepthHist)−1; deeper samples are accumulated in the last bin.
	DepthHist []int
	// WorstPoint is a sample achieving MinDepth (useful for debugging).
	WorstPoint geom.Point
}

// KCovered reports whether every sample is covered at least k times.
func (r Report) KCovered(k int) bool { return r.Samples > 0 && r.MinDepth >= k }

// FracAtLeast returns the fraction of samples covered by at least k sensors.
func (r Report) FracAtLeast(k int) float64 {
	if r.Samples == 0 {
		return 0
	}
	covered := 0
	for d := len(r.DepthHist) - 1; d >= 0 && d >= k; d-- {
		covered += r.DepthHist[d]
	}
	return float64(covered) / float64(r.Samples)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("coverage{samples=%d depth=[%d,%d] mean=%.2f}",
		r.Samples, r.MinDepth, r.MaxDepth, r.MeanDepth)
}

// Verify samples reg on a resolution×resolution grid and measures the
// coverage depth of the deployment given by node positions and per-node
// sensing radii. It panics if positions and radii lengths differ.
func Verify(positions []geom.Point, radii []float64, reg *region.Region, resolution int) Report {
	if len(positions) != len(radii) {
		panic(fmt.Sprintf("coverage: %d positions vs %d radii", len(positions), len(radii)))
	}
	samples := reg.GridPoints(resolution)
	rep := Report{
		Samples:   len(samples),
		MinDepth:  math.MaxInt,
		DepthHist: make([]int, 16),
	}
	if len(samples) == 0 {
		rep.MinDepth = 0
		return rep
	}
	// Spatial pruning: sort sensors by x and use the max radius as a window.
	type sensor struct {
		p geom.Point
		r float64
	}
	sensors := make([]sensor, len(positions))
	var maxR float64
	for i := range positions {
		sensors[i] = sensor{positions[i], radii[i]}
		if radii[i] > maxR {
			maxR = radii[i]
		}
	}
	sort.Slice(sensors, func(a, b int) bool { return sensors[a].p.X < sensors[b].p.X })
	xs := make([]float64, len(sensors))
	for i, s := range sensors {
		xs[i] = s.p.X
	}

	var totalDepth int64
	for _, v := range samples {
		depth := 0
		lo := sort.SearchFloat64s(xs, v.X-maxR)
		for j := lo; j < len(sensors) && xs[j] <= v.X+maxR; j++ {
			s := sensors[j]
			if s.p.Dist2(v) <= s.r*s.r*(1+1e-12)+geom.Eps {
				depth++
			}
		}
		totalDepth += int64(depth)
		if depth < rep.MinDepth {
			rep.MinDepth = depth
			rep.WorstPoint = v
		}
		if depth > rep.MaxDepth {
			rep.MaxDepth = depth
		}
		bin := depth
		if bin >= len(rep.DepthHist) {
			bin = len(rep.DepthHist) - 1
		}
		rep.DepthHist[bin]++
	}
	rep.MeanDepth = float64(totalDepth) / float64(rep.Samples)
	return rep
}

// UniformRadius returns the common sensing range that would replace the
// per-node radii without losing coverage: the maximum radius (the paper's
// min-node comparison assigns R* to every node).
func UniformRadius(radii []float64) float64 {
	var m float64
	for _, r := range radii {
		if r > m {
			m = r
		}
	}
	return m
}
