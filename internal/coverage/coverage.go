// Package coverage verifies k-area coverage of a sensor deployment and
// computes the load metrics reported in the paper's evaluation (max/total
// sensing load, min/max sensing range).
//
// Verification is grid-based: the region is sampled at cell centers of a
// uniform grid and each sample's coverage depth (number of sensing disks
// containing it) is counted. Definition 1 of the paper holds when the
// minimum depth over all samples is at least k.
package coverage

import (
	"fmt"
	"math"
	"sort"

	"laacad/internal/geom"
	"laacad/internal/parallel"
	"laacad/internal/region"
)

// Report summarizes the coverage of a deployment over a region.
type Report struct {
	// Samples is the number of in-region grid samples checked.
	Samples int
	// MinDepth and MaxDepth are the extrema of per-sample coverage depth.
	MinDepth, MaxDepth int
	// MeanDepth is the average coverage depth (the deployment's redundancy).
	MeanDepth float64
	// DepthHist[d] counts samples covered by exactly d sensors, for
	// d ≤ len(DepthHist)−1; deeper samples are accumulated in the last bin.
	DepthHist []int
	// WorstPoint is a sample achieving MinDepth (useful for debugging).
	WorstPoint geom.Point
}

// KCovered reports whether every sample is covered at least k times.
func (r Report) KCovered(k int) bool { return r.Samples > 0 && r.MinDepth >= k }

// FracAtLeast returns the fraction of samples covered by at least k sensors.
func (r Report) FracAtLeast(k int) float64 {
	if r.Samples == 0 {
		return 0
	}
	covered := 0
	for d := len(r.DepthHist) - 1; d >= 0 && d >= k; d-- {
		covered += r.DepthHist[d]
	}
	return float64(covered) / float64(r.Samples)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("coverage{samples=%d depth=[%d,%d] mean=%.2f}",
		r.Samples, r.MinDepth, r.MaxDepth, r.MeanDepth)
}

// Verify samples reg on a resolution×resolution grid and measures the
// coverage depth of the deployment given by node positions and per-node
// sensing radii. It panics if positions and radii lengths differ. The
// sample loop runs serially; use VerifyWorkers for the parallel form.
func Verify(positions []geom.Point, radii []float64, reg *region.Region, resolution int) Report {
	return VerifyWorkers(positions, radii, reg, resolution, 0)
}

// VerifyWorkers is Verify with the per-sample depth measurements fanned
// across worker goroutines (the shared convention of parallel.Workers:
// 0 = serial, negative = all CPUs). The report is bit-identical for every
// worker count: each worker reduces its own partial extrema tracking the
// earliest sample index achieving them, and the final reduction breaks ties
// the same way — so the MinDepth witness (WorstPoint) is always the sample
// the serial sweep would have picked.
func VerifyWorkers(positions []geom.Point, radii []float64, reg *region.Region, resolution, workers int) Report {
	if len(positions) != len(radii) {
		panic(fmt.Sprintf("coverage: %d positions vs %d radii", len(positions), len(radii)))
	}
	samples := reg.GridPoints(resolution)
	rep := Report{
		Samples:   len(samples),
		MinDepth:  math.MaxInt,
		DepthHist: make([]int, 16),
	}
	if len(samples) == 0 {
		rep.MinDepth = 0
		return rep
	}
	// Spatial pruning: sort sensors by x and use the max radius as a window.
	type sensor struct {
		p geom.Point
		r float64
	}
	sensors := make([]sensor, len(positions))
	var maxR float64
	for i := range positions {
		sensors[i] = sensor{positions[i], radii[i]}
		if radii[i] > maxR {
			maxR = radii[i]
		}
	}
	sort.Slice(sensors, func(a, b int) bool { return sensors[a].p.X < sensors[b].p.X })
	xs := make([]float64, len(sensors))
	for i, s := range sensors {
		xs[i] = s.p.X
	}

	type partial struct {
		minDepth, minIdx int
		maxDepth         int
		total            int64
		hist             [16]int
	}
	w := parallel.Workers(workers)
	parts := make([]partial, max(w, 1))
	for i := range parts {
		parts[i].minDepth = math.MaxInt
		parts[i].minIdx = math.MaxInt
	}
	parallel.ForWorker(len(samples), w, func(wk, si int) {
		v := samples[si]
		depth := 0
		lo := sort.SearchFloat64s(xs, v.X-maxR)
		for j := lo; j < len(sensors) && xs[j] <= v.X+maxR; j++ {
			s := sensors[j]
			if s.p.Dist2(v) <= s.r*s.r*(1+1e-12)+geom.Eps {
				depth++
			}
		}
		p := &parts[wk]
		p.total += int64(depth)
		if depth < p.minDepth || (depth == p.minDepth && si < p.minIdx) {
			p.minDepth, p.minIdx = depth, si
		}
		if depth > p.maxDepth {
			p.maxDepth = depth
		}
		p.hist[min(depth, len(p.hist)-1)]++
	})

	var totalDepth int64
	minIdx := math.MaxInt
	for i := range parts {
		p := &parts[i]
		if p.minIdx == math.MaxInt {
			continue // worker got no samples
		}
		totalDepth += p.total
		if p.minDepth < rep.MinDepth || (p.minDepth == rep.MinDepth && p.minIdx < minIdx) {
			rep.MinDepth, minIdx = p.minDepth, p.minIdx
		}
		if p.maxDepth > rep.MaxDepth {
			rep.MaxDepth = p.maxDepth
		}
		for d, c := range p.hist {
			rep.DepthHist[d] += c
		}
	}
	rep.WorstPoint = samples[minIdx]
	rep.MeanDepth = float64(totalDepth) / float64(rep.Samples)
	return rep
}

// UniformRadius returns the common sensing range that would replace the
// per-node radii without losing coverage: the maximum radius (the paper's
// min-node comparison assigns R* to every node).
func UniformRadius(radii []float64) float64 {
	var m float64
	for _, r := range radii {
		if r > m {
			m = r
		}
	}
	return m
}
