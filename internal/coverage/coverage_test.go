package coverage

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
)

func TestVerifySingleDiskCoversAll(t *testing.T) {
	reg := region.UnitSquareKm()
	// One node at center with radius covering the whole square.
	rep := Verify([]geom.Point{geom.Pt(0.5, 0.5)}, []float64{1.0}, reg, 20)
	if !rep.KCovered(1) {
		t.Errorf("should be 1-covered: %v", rep)
	}
	if rep.KCovered(2) {
		t.Error("single node cannot 2-cover")
	}
	if rep.MinDepth != 1 || rep.MaxDepth != 1 {
		t.Errorf("depth = [%d, %d], want [1, 1]", rep.MinDepth, rep.MaxDepth)
	}
	if math.Abs(rep.MeanDepth-1) > 1e-9 {
		t.Errorf("mean depth = %v", rep.MeanDepth)
	}
}

func TestVerifyUncovered(t *testing.T) {
	reg := region.UnitSquareKm()
	// Tiny disk in a corner: most samples uncovered.
	rep := Verify([]geom.Point{geom.Pt(0.1, 0.1)}, []float64{0.05}, reg, 20)
	if rep.KCovered(1) {
		t.Error("should not be covered")
	}
	if rep.MinDepth != 0 {
		t.Errorf("min depth = %d, want 0", rep.MinDepth)
	}
	frac := rep.FracAtLeast(1)
	if frac <= 0 || frac >= 0.1 {
		t.Errorf("covered fraction = %v, want small positive", frac)
	}
	// Worst point must actually be uncovered.
	if rep.WorstPoint.Dist(geom.Pt(0.1, 0.1)) <= 0.05 {
		t.Errorf("worst point %v is covered", rep.WorstPoint)
	}
}

func TestVerifyDepthCounts(t *testing.T) {
	reg := region.Rect(0, 0, 1, 1)
	// Two stacked full-cover disks: depth 2 everywhere.
	pos := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.5, 0.5)}
	rep := Verify(pos, []float64{1, 1}, reg, 10)
	if !rep.KCovered(2) || rep.KCovered(3) {
		t.Errorf("depth classification wrong: %v", rep)
	}
	if rep.DepthHist[2] != rep.Samples {
		t.Errorf("hist = %v", rep.DepthHist)
	}
	if rep.FracAtLeast(2) != 1 || rep.FracAtLeast(3) != 0 {
		t.Errorf("FracAtLeast wrong: %v %v", rep.FracAtLeast(2), rep.FracAtLeast(3))
	}
}

func TestVerifyHistOverflowBin(t *testing.T) {
	reg := region.Rect(0, 0, 1, 1)
	n := 20
	pos := make([]geom.Point, n)
	radii := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Pt(0.5, 0.5)
		radii[i] = 1
	}
	rep := Verify(pos, radii, reg, 5)
	if rep.MaxDepth != n {
		t.Errorf("max depth = %d, want %d", rep.MaxDepth, n)
	}
	if rep.DepthHist[len(rep.DepthHist)-1] != rep.Samples {
		t.Errorf("overflow bin = %v", rep.DepthHist)
	}
	if !rep.KCovered(n) {
		t.Error("should be n-covered")
	}
}

func TestVerifyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Verify(make([]geom.Point, 2), make([]float64, 3), region.UnitSquareKm(), 5)
}

func TestVerifyRegionWithHole(t *testing.T) {
	hole := geom.RectPolygon(geom.BBox{Min: geom.Pt(0.4, 0.4), Max: geom.Pt(0.6, 0.6)})
	reg := region.MustNew(geom.RectPolygon(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}), hole)
	// Node inside would-be hole area irrelevant; cover from corner reaching
	// everything.
	rep := Verify([]geom.Point{geom.Pt(0, 0)}, []float64{1.5}, reg, 20)
	if !rep.KCovered(1) {
		t.Errorf("hole samples should be excluded: %v", rep)
	}
	full := region.UnitSquareKm().GridPoints(20)
	if rep.Samples >= len(full) {
		t.Error("hole should reduce sample count")
	}
}

func TestVerifyBoundaryTolerance(t *testing.T) {
	// A sample exactly at distance r must count as covered (closed disks).
	reg := region.Rect(0, 0, 1, 1)
	// Grid resolution 2 gives samples at 0.25/0.75; sensor at (0.25, 0.25)
	// with radius exactly reaching (0.75, 0.75).
	d := geom.Pt(0.25, 0.25).Dist(geom.Pt(0.75, 0.75))
	rep := Verify([]geom.Point{geom.Pt(0.25, 0.25)}, []float64{d}, reg, 2)
	if rep.MinDepth != 1 {
		t.Errorf("boundary sample not covered: %v", rep)
	}
}

func TestFracAtLeastEmpty(t *testing.T) {
	var rep Report
	if rep.FracAtLeast(1) != 0 {
		t.Error("empty report should report 0")
	}
	if rep.KCovered(1) {
		t.Error("empty report cannot be covered")
	}
}

func TestUniformRadius(t *testing.T) {
	if got := UniformRadius([]float64{0.1, 0.5, 0.3}); got != 0.5 {
		t.Errorf("got %v", got)
	}
	if got := UniformRadius(nil); got != 0 {
		t.Errorf("empty: got %v", got)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Samples: 5, MinDepth: 1, MaxDepth: 3, MeanDepth: 2}
	if rep.String() == "" {
		t.Error("String should produce output")
	}
}

// VerifyWorkers must produce a bit-identical Report (including the MinDepth
// witness) for every worker count, across deployments with plenty of depth
// ties for the tie-break rule to resolve.
func TestVerifyWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		reg := region.UnitSquareKm()
		if trial%2 == 1 {
			reg = region.SquareWithTwoObstacles()
		}
		n := 20 + rng.Intn(120)
		pos := make([]geom.Point, n)
		radii := make([]float64, n)
		for i := range pos {
			pos[i] = geom.Pt(rng.Float64(), rng.Float64())
			radii[i] = 0.02 + rng.Float64()*0.2
		}
		res := 30 + rng.Intn(60)
		serial := Verify(pos, radii, reg, res)
		for _, w := range []int{2, 3, 7, -1} {
			got := VerifyWorkers(pos, radii, reg, res, w)
			if !reflect.DeepEqual(serial, got) {
				t.Fatalf("trial %d workers=%d: report differs:\nserial %+v\nparallel %+v",
					trial, w, serial, got)
			}
		}
	}
}
