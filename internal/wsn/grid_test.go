package wsn

import (
	"math/rand"
	"reflect"
	"testing"

	"laacad/internal/geom"
)

// TestIncrementalGridMatchesRebuildUnderChurn is the contract of the
// incremental index: under randomized interleaved move/add/remove/query
// sequences, every query answers identically — including order, which is
// canonical ascending — to a network freshly rebuilt from scratch over the
// same positions. Moves occasionally land far outside the grid bounds to
// exercise the rebuild fallback, and same-position writes exercise the
// no-op path.
func TestIncrementalGridMatchesRebuildUnderChurn(t *testing.T) {
	trials := 25
	ops := 120
	if testing.Short() {
		trials, ops = 8, 50
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < trials; trial++ {
		gamma := 0.03 + rng.Float64()*0.2
		live := make([]geom.Point, 20+rng.Intn(80))
		for i := range live {
			live[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		inc := New(live, gamma)
		inc.Rebuild()
		for op := 0; op < ops; op++ {
			switch rng.Intn(8) {
			case 0, 1, 2: // local move
				i := rng.Intn(len(live))
				p := geom.Pt(rng.Float64(), rng.Float64())
				inc.SetPosition(i, p)
				live[i] = p
			case 3: // far move: exits the grid bounds, forcing a rebuild
				i := rng.Intn(len(live))
				p := geom.Pt(5+rng.Float64(), -3+rng.Float64())
				inc.SetPosition(i, p)
				live[i] = p
			case 4: // no-op write
				i := rng.Intn(len(live))
				inc.SetPosition(i, live[i])
			case 5: // add
				p := geom.Pt(rng.Float64(), rng.Float64())
				if id := inc.AddNode(p); id != len(live) {
					t.Fatalf("trial %d op %d: AddNode returned id %d, want %d", trial, op, id, len(live))
				}
				live = append(live, p)
			case 6: // remove (renumbering)
				if len(live) > 5 {
					i := rng.Intn(len(live))
					inc.RemoveNode(i)
					live = append(live[:i], live[i+1:]...)
				}
			}
			if inc.Len() != len(live) {
				t.Fatalf("trial %d op %d: length %d, want %d", trial, op, inc.Len(), len(live))
			}

			fresh := New(live, gamma)
			fresh.Rebuild()
			i := rng.Intn(len(live))
			rho := rng.Float64() * 1.2

			got := inc.NeighborsWithin(i, rho)
			want := fresh.NeighborsWithin(i, rho)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d op %d: NeighborsWithin(%d, %v) incremental %v != rebuild %v",
					trial, op, i, rho, got, want)
			}
			gotRing := inc.RingQuery(i, rho, RingGeometric)
			wantRing := fresh.RingQuery(i, rho, RingGeometric)
			if !reflect.DeepEqual(gotRing, wantRing) {
				t.Fatalf("trial %d op %d: RingQuery(%d, %v) incremental %v != rebuild %v",
					trial, op, i, rho, gotRing, wantRing)
			}
			gotHop := inc.HopNeighborhood(i, 2)
			wantHop := fresh.HopNeighborhood(i, 2)
			if !reflect.DeepEqual(gotHop, wantHop) {
				t.Fatalf("trial %d op %d: HopNeighborhood(%d, 2) incremental %v != rebuild %v",
					trial, op, i, gotHop, wantHop)
			}
		}
	}
}

// A single in-bounds move must be absorbed incrementally: no full rebuild,
// and only the two touched cells' versions change.
func TestIncrementalMoveBumpsOnlyTouchedCells(t *testing.T) {
	var pos []geom.Point
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			pos = append(pos, geom.Pt(float64(x)*0.1+0.05, float64(y)*0.1+0.05))
		}
	}
	net := New(pos, 0.05)
	net.Rebuild()
	if got := net.Rebuilds(); got != 1 {
		t.Fatalf("after explicit Rebuild: %d rebuilds, want 1", got)
	}
	from, to, far := pos[0], geom.Pt(0.52, 0.57), geom.Pt(0.95, 0.95)
	genA, verFromA := net.CellVersion(from)
	_, verToA := net.CellVersion(to)
	_, verFarA := net.CellVersion(far)

	net.SetPosition(0, to)

	genB, verFromB := net.CellVersion(from)
	_, verToB := net.CellVersion(to)
	_, verFarB := net.CellVersion(far)
	if genA != genB {
		t.Errorf("in-bounds move changed the grid generation: %d -> %d", genA, genB)
	}
	if net.Rebuilds() != 1 {
		t.Errorf("in-bounds move triggered a full rebuild (%d total)", net.Rebuilds())
	}
	if net.IncrementalMoves() != 1 {
		t.Errorf("expected 1 incremental move, got %d", net.IncrementalMoves())
	}
	if verFromB != verFromA+1 || verToB != verToA+1 {
		t.Errorf("touched cell versions: from %d->%d, to %d->%d; want both +1",
			verFromA, verFromB, verToA, verToB)
	}
	if verFarB != verFarA {
		t.Errorf("untouched cell version changed: %d -> %d", verFarA, verFarB)
	}

	// A same-position write is a no-op end to end.
	v := net.Version()
	net.SetPosition(0, to)
	if net.Version() != v || net.IncrementalMoves() != 1 {
		t.Error("same-position write must be a no-op")
	}

	// A move outside the grid bounds falls back to a full rebuild.
	net.SetPosition(0, geom.Pt(40, 40))
	net.NeighborsWithin(0, 0.1) // lazy rebuild happens on the next query
	if net.Rebuilds() != 2 {
		t.Errorf("out-of-bounds move should force one rebuild, counter at %d", net.Rebuilds())
	}
	if gen, _ := net.CellVersion(to); gen != genA+1 {
		t.Errorf("rebuild should bump the generation: %d -> %d", genA, gen)
	}
}

// Bulk SetPositions remains the full-rebuild path, and node-count changes
// keep message accounting consistent.
func TestBulkWriteRebuildsAndCountersSurviveTopologyChange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pos := make([]geom.Point, 40)
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	net := New(pos, 0.2)
	net.Rebuild()
	base := net.Rebuilds()

	net.SetPositions(pos)
	net.NeighborsWithin(0, 0.3)
	if net.Rebuilds() != base+1 {
		t.Errorf("bulk SetPositions should rebuild once lazily: %d -> %d", base, net.Rebuilds())
	}

	net.Charge(3, 7)
	net.Charge(39, 2)
	net.RemoveNode(3) // renumbers: old node 39 becomes 38
	if net.Len() != 39 {
		t.Fatalf("RemoveNode left %d nodes", net.Len())
	}
	st := net.Stats()
	if st.Messages != 9 {
		t.Errorf("total messages must survive removal, got %d", st.Messages)
	}
	if st.ByNode[38] != 2 {
		t.Errorf("per-node counters must shift with the renumbering, ByNode[38]=%d", st.ByNode[38])
	}
	id := net.AddNode(geom.Pt(0.5, 0.5))
	if id != 39 || net.Len() != 40 {
		t.Fatalf("AddNode returned id %d with %d nodes", id, net.Len())
	}
	if got := net.Stats().ByNode[39]; got != 0 {
		t.Errorf("fresh node carries %d messages", got)
	}
}

// SetBoundsHint widens the grid to cover the declared area: moves anywhere
// inside the hint are absorbed incrementally (no bounds-exit rebuilds), and
// query answers stay canonical — identical to a brute-force scan — for any
// cell geometry the hint induces.
func TestBoundsHintAbsorbsWideMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := make([]geom.Point, 60)
	for i := range pts {
		// Clustered start in a corner of a much larger declared area.
		pts[i] = geom.Pt(rng.Float64()*0.1, rng.Float64()*0.1)
	}
	net := New(pts, 0.05)
	net.SetBoundsHint(geom.BBox{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	net.Rebuild()
	base := net.Rebuilds()
	for op := 0; op < 200; op++ {
		i := rng.Intn(len(pts))
		p := geom.Pt(rng.Float64(), rng.Float64()) // anywhere in the hint
		net.SetPosition(i, p)
		pts[i] = p
		j := rng.Intn(len(pts))
		rho := 0.05 + rng.Float64()*0.4
		got := net.NeighborsWithin(j, rho)
		var want []int
		for k, q := range pts {
			if k != j && q.Dist2(pts[j]) < rho*rho {
				want = append(want, k)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("op %d: NeighborsWithin(%d, %v) = %v, want %v", op, j, rho, got, want)
		}
	}
	if got := net.Rebuilds(); got != base {
		t.Errorf("moves inside the hinted bounds forced %d rebuilds, want 0", got-base)
	}
	// A move outside the hint still falls back to a rebuild with fresh
	// bounds (the hint widens the grid, it does not clamp nodes).
	net.SetPosition(0, geom.Pt(2.5, 2.5))
	pts[0] = geom.Pt(2.5, 2.5)
	if got := net.NeighborsWithin(0, 5.0); len(got) != len(pts)-1 {
		t.Errorf("post-exit query found %d neighbors, want %d", len(got), len(pts)-1)
	}
	if net.Rebuilds() == base {
		t.Error("a move outside the hinted bounds did not rebuild")
	}
}
