package wsn

import (
	"math/rand"
	"sort"
	"testing"

	"laacad/internal/geom"
)

func TestRingQueryLossyZeroLossMatchesIdeal(t *testing.T) {
	n := New(linePositions(5, 1), 1.1)
	got := n.RingQueryLossy(2, 1.5, LossyRingConfig{LossRate: 0}, nil)
	sort.Ints(got)
	if !equal(got, []int{1, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestRingQueryLossyPanicsOnBadRate(t *testing.T) {
	n := New(linePositions(3, 1), 1)
	for _, rate := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v should panic", rate)
				}
			}()
			n.RingQueryLossy(0, 1, LossyRingConfig{LossRate: rate}, nil)
		}()
	}
}

func TestRingQueryLossyReturnsSubsetOfIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 60)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	n := New(pts, 0.15)
	ideal := map[int]bool{}
	for _, j := range n.RingQuery(0, 0.5, RingGeometric) {
		ideal[j] = true
	}
	got := n.RingQueryLossy(0, 0.5, LossyRingConfig{LossRate: 0.5, Retries: 0, Mode: RingGeometric},
		rand.New(rand.NewSource(9)))
	for _, j := range got {
		if !ideal[j] {
			t.Fatalf("lossy result %d not in ideal set", j)
		}
	}
	if len(got) >= len(ideal) {
		t.Errorf("50%% loss with no retries should drop someone: %d of %d", len(got), len(ideal))
	}
}

func TestRingQueryLossyRetriesRecover(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	n := New(pts, 0.2)
	ideal := len(n.RingQuery(0, 0.4, RingGeometric))
	if ideal == 0 {
		t.Skip("degenerate instance")
	}
	// With aggressive retries nearly everything gets through.
	got := n.RingQueryLossy(0, 0.4, LossyRingConfig{LossRate: 0.3, Retries: 10, Mode: RingGeometric},
		rand.New(rand.NewSource(10)))
	if len(got) < ideal {
		t.Errorf("10 retries at 30%% loss should recover all %d, got %d", ideal, len(got))
	}
}

func TestRingQueryLossyChargesRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 30)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	mk := func(loss float64, retries int, seed int64) int64 {
		n := New(pts, 0.3)
		n.RingQueryLossy(0, 0.6, LossyRingConfig{LossRate: loss, Retries: retries, Mode: RingGeometric},
			rand.New(rand.NewSource(seed)))
		return n.Stats().Messages
	}
	clean := mk(0, 0, 1)
	lossy := mk(0.4, 5, 1)
	if lossy <= clean {
		t.Errorf("lossy query should cost more messages: %d vs %d", lossy, clean)
	}
}

func TestRingQueryLossyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := make([]geom.Point, 30)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	run := func() []int {
		n := New(pts, 0.2)
		got := n.RingQueryLossy(0, 0.5, LossyRingConfig{LossRate: 0.3, Retries: 1, Mode: RingGeometric},
			rand.New(rand.NewSource(42)))
		sort.Ints(got)
		return got
	}
	a, b := run(), run()
	if !equal(a, b) {
		t.Errorf("lossy query not deterministic: %v vs %v", a, b)
	}
}
