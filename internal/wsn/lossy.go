package wsn

import (
	"fmt"
	"math/rand"
)

// LossyRingConfig describes an unreliable link layer for the expanding-ring
// search: every link-level transmission is lost independently with
// probability LossRate, and a node retries the query up to Retries extra
// times for the neighbors it has not heard from yet.
type LossyRingConfig struct {
	// LossRate is the per-transmission loss probability in [0, 1).
	LossRate float64
	// Retries is the number of re-queries after the first attempt.
	Retries int
	// Mode selects the underlying discovery semantics.
	Mode RingQueryMode
}

// RingQueryLossy performs an expanding-ring query over an unreliable link
// layer. A discovered node's reply must survive its hop-count transmissions
// (each lost with probability cfg.LossRate); nodes whose replies are lost
// are retried up to cfg.Retries times. Every attempt is charged like a
// normal ring query restricted to the still-missing nodes.
//
// The returned set is the subset of the ideal query result whose replies
// got through — under loss, a node may compute its dominating region from
// incomplete information, which enlarges the region (fewer known "closer"
// nodes) but never breaks coverage: the true region is always a subset of
// the computed one.
func (n *Network) RingQueryLossy(i int, rho float64, cfg LossyRingConfig, rng *rand.Rand) []int {
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("wsn: loss rate must be in [0, 1), got %v", cfg.LossRate))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(0))
	}
	// The ideal result (charged as one normal query).
	ideal := n.RingQuery(i, rho, cfg.Mode)
	if cfg.LossRate == 0 {
		return ideal
	}
	heard := make(map[int]bool, len(ideal))
	missing := ideal
	for attempt := 0; attempt <= cfg.Retries && len(missing) > 0; attempt++ {
		if attempt > 0 {
			// A retry floods the ring again: charge the rebroadcasts plus
			// the replies we are about to receive.
			n.Charge(i, 1+int64(len(missing)))
		}
		var still []int
		for _, j := range missing {
			hops := n.replyHops(i, j)
			delivered := true
			for h := 0; h < hops; h++ {
				if rng.Float64() < cfg.LossRate {
					delivered = false
					break
				}
			}
			if delivered {
				heard[j] = true
				n.Charge(i, int64(hops))
			} else {
				still = append(still, j)
			}
		}
		missing = still
	}
	out := make([]int, 0, len(heard))
	for _, j := range ideal {
		if heard[j] {
			out = append(out, j)
		}
	}
	return out
}

// replyHops estimates the hop count of j's reply to i.
func (n *Network) replyHops(i, j int) int {
	h := int(n.pos[i].Dist(n.pos[j])/n.gamma) + 1
	if h < 1 {
		h = 1
	}
	return h
}
