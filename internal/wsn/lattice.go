package wsn

import (
	"math"

	"laacad/internal/geom"
)

// HexLattice returns the positions of a triangular (hexagonal-packing)
// lattice with the given number of rows and columns and nearest-neighbor
// pitch. Odd rows are offset by half a pitch, giving every interior node six
// equidistant neighbors — the regular deployment used in the paper's Fig. 2
// to illustrate the expanding-ring search.
func HexLattice(rows, cols int, pitch float64) []geom.Point {
	pts := make([]geom.Point, 0, rows*cols)
	dy := pitch * math.Sqrt(3) / 2
	for r := 0; r < rows; r++ {
		offset := 0.0
		if r%2 == 1 {
			offset = pitch / 2
		}
		for c := 0; c < cols; c++ {
			pts = append(pts, geom.Pt(offset+float64(c)*pitch, float64(r)*dy))
		}
	}
	return pts
}

// SquareLattice returns a rows×cols grid with the given pitch.
func SquareLattice(rows, cols int, pitch float64) []geom.Point {
	pts := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, geom.Pt(float64(c)*pitch, float64(r)*pitch))
		}
	}
	return pts
}

// UnitLattice returns n points on a ⌈√n⌉×⌈√n⌉ cell-centered lattice over
// the unit square, with `displaced` of them (evenly strided through the
// node IDs) pulled toward the center by half a pitch, plus the lattice
// pitch. A lattice is already near its deployment fixed point, so this is
// the canonical few-movers fixture: only the displaced nodes' neighborhoods
// move, which is the regime the incremental spatial layer is built for —
// the scale benchmarks and the engine's cache-counter tests must agree on
// it, so it lives here rather than in either copy.
func UnitLattice(n, displaced int) ([]geom.Point, float64) {
	side := 1
	for side*side < n {
		side++
	}
	pitch := 1.0 / float64(side)
	pts := make([]geom.Point, 0, n)
	for r := 0; r < side && len(pts) < n; r++ {
		for c := 0; c < side && len(pts) < n; c++ {
			pts = append(pts, geom.Pt((float64(c)+0.5)*pitch, (float64(r)+0.5)*pitch))
		}
	}
	for i := 0; i < displaced; i++ {
		j := i * (n / displaced)
		p := pts[j]
		pts[j] = geom.Pt(p.X+(0.5-p.X)*pitch, p.Y+(0.5-p.Y)*pitch)
	}
	return pts, pitch
}

// CenterIndex returns the index of the lattice point nearest the centroid of
// pts — the "central node" of a regular deployment.
func CenterIndex(pts []geom.Point) int {
	if len(pts) == 0 {
		return -1
	}
	c := geom.Centroid(pts)
	best, bestD := 0, math.Inf(1)
	for i, p := range pts {
		if d := p.Dist2(c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
