package wsn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"laacad/internal/geom"
)

func linePositions(n int, spacing float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*spacing, 0)
	}
	return pts
}

func TestNewPanicsOnBadGamma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for gamma <= 0")
		}
	}()
	New(nil, 0)
}

func TestBasicAccessors(t *testing.T) {
	pts := linePositions(3, 1)
	n := New(pts, 1.5)
	if n.Len() != 3 || n.Gamma() != 1.5 {
		t.Fatalf("Len=%d Gamma=%v", n.Len(), n.Gamma())
	}
	if !n.Position(1).Eq(geom.Pt(1, 0)) {
		t.Errorf("Position(1) = %v", n.Position(1))
	}
	cp := n.Positions()
	cp[0] = geom.Pt(99, 99)
	if n.Position(0).Eq(geom.Pt(99, 99)) {
		t.Error("Positions must return a copy")
	}
	n.SetPosition(0, geom.Pt(5, 5))
	if !n.Position(0).Eq(geom.Pt(5, 5)) {
		t.Error("SetPosition did not take effect")
	}
}

func TestSetPositionsPanicsOnCountMismatch(t *testing.T) {
	n := New(linePositions(3, 1), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.SetPositions(make([]geom.Point, 2))
}

func TestNeighborsWithin(t *testing.T) {
	// Nodes at x = 0, 1, 2, 3, 4.
	n := New(linePositions(5, 1), 1.1)
	got := n.NeighborsWithin(2, 1.5)
	sort.Ints(got)
	if !equal(got, []int{1, 3}) {
		t.Errorf("NeighborsWithin(2, 1.5) = %v", got)
	}
	got = n.NeighborsWithin(2, 2.5)
	sort.Ints(got)
	if !equal(got, []int{0, 1, 3, 4}) {
		t.Errorf("NeighborsWithin(2, 2.5) = %v", got)
	}
	// Strictly-within semantics: distance exactly rho is excluded.
	got = n.NeighborsWithin(0, 1.0)
	if len(got) != 0 {
		t.Errorf("strict inequality violated: %v", got)
	}
}

func TestNeighborsWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	n := New(pts, 0.7)
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(len(pts))
		rho := rng.Float64() * 3
		got := n.NeighborsWithin(i, rho)
		sort.Ints(got)
		var want []int
		for j, p := range pts {
			if j != i && p.Dist(pts[i]) < rho {
				want = append(want, j)
			}
		}
		if !equal(got, want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestOneHop(t *testing.T) {
	n := New(linePositions(4, 1), 1.5)
	got := n.OneHop(0)
	sort.Ints(got)
	if !equal(got, []int{1}) {
		t.Errorf("OneHop(0) = %v", got)
	}
}

func TestHopNeighborhood(t *testing.T) {
	n := New(linePositions(5, 1), 1.1)
	got := n.HopNeighborhood(0, 2)
	want := map[int]int{1: 1, 2: 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("hop[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Unlimited-ish hops reach everyone on the line.
	all := n.HopNeighborhood(0, 10)
	if len(all) != 4 {
		t.Errorf("full reach = %d nodes, want 4", len(all))
	}
	// A disconnected node is never reached.
	pts := append(linePositions(3, 1), geom.Pt(100, 100))
	n2 := New(pts, 1.1)
	if r := n2.HopNeighborhood(0, 50); len(r) != 2 {
		t.Errorf("disconnected reach = %v", r)
	}
}

func TestConnected(t *testing.T) {
	if !New(nil, 1).Connected() {
		t.Error("empty network should be connected")
	}
	if !New(linePositions(5, 1), 1.1).Connected() {
		t.Error("line should be connected")
	}
	if New(linePositions(5, 1), 0.9).Connected() {
		t.Error("sparse line should be disconnected")
	}
}

func TestDegreeStats(t *testing.T) {
	n := New(linePositions(3, 1), 1.1)
	minD, maxD, mean := n.DegreeStats()
	if minD != 1 || maxD != 2 {
		t.Errorf("min=%d max=%d", minD, maxD)
	}
	if math.Abs(mean-4.0/3.0) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	minD, maxD, mean = New(nil, 1).DegreeStats()
	if minD != 0 || maxD != 0 || mean != 0 {
		t.Error("empty network degree stats should be zero")
	}
}

func TestRingQueryGeometric(t *testing.T) {
	n := New(linePositions(5, 1), 1.1)
	found := n.RingQuery(2, 1.5, RingGeometric)
	sort.Ints(found)
	if !equal(found, []int{1, 3}) {
		t.Errorf("found = %v", found)
	}
	st := n.Stats()
	if st.Messages == 0 || st.ByNode[2] != st.Messages {
		t.Errorf("stats = %+v", st)
	}
	// Cost: 1 + 2 rebroadcasts + 2 replies of 1 hop + ... deterministic:
	// 1 + 2 + (1 + 1) = 5.
	if st.Messages != 5 {
		t.Errorf("messages = %d, want 5", st.Messages)
	}
}

func TestRingQueryHopLimited(t *testing.T) {
	// A gap in the line: node 3 is at x=10, unreachable.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(10, 0)}
	n := New(pts, 1.1)
	found := n.RingQuery(0, 3, RingHopLimited)
	sort.Ints(found)
	if !equal(found, []int{1, 2}) {
		t.Errorf("found = %v", found)
	}
	// The geometric mode would also return only 1, 2 here (3 is 10 away),
	// but with a reachable-but-far topology they differ:
	pts2 := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)} // within rho=3 but > gamma
	n2 := New(pts2, 1.1)
	if got := n2.RingQuery(0, 3, RingHopLimited); len(got) != 0 {
		t.Errorf("hop-limited should not reach isolated node, got %v", got)
	}
	if got := n2.RingQuery(0, 3, RingGeometric); len(got) != 1 {
		t.Errorf("geometric should see the node, got %v", got)
	}
}

func TestRingQueryPanicsOnBadMode(t *testing.T) {
	n := New(linePositions(2, 1), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.RingQuery(0, 1, RingQueryMode(99))
}

func TestResetStats(t *testing.T) {
	n := New(linePositions(3, 1), 1.1)
	n.RingQuery(0, 2, RingGeometric)
	if n.Stats().Messages == 0 {
		t.Fatal("expected nonzero messages")
	}
	n.ResetStats()
	st := n.Stats()
	if st.Messages != 0 || st.ByNode[0] != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestChargeAccumulates(t *testing.T) {
	n := New(linePositions(2, 1), 1)
	n.Charge(0, 3)
	n.Charge(1, 4)
	st := n.Stats()
	if st.Messages != 7 || st.ByNode[0] != 3 || st.ByNode[1] != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// Moving a node must invalidate the spatial index.
func TestIndexInvalidation(t *testing.T) {
	n := New(linePositions(3, 1), 1.1)
	if got := n.OneHop(0); !equal(sorted(got), []int{1}) {
		t.Fatalf("before move: %v", got)
	}
	n.SetPosition(2, geom.Pt(0.5, 0))
	got := sorted(n.OneHop(0))
	if !equal(got, []int{1, 2}) {
		t.Errorf("after move: %v", got)
	}
}

// Negative coordinates must hash into the grid correctly.
func TestNegativeCoordinates(t *testing.T) {
	pts := []geom.Point{geom.Pt(-0.5, -0.5), geom.Pt(-0.4, -0.5), geom.Pt(5, 5)}
	n := New(pts, 1)
	got := sorted(n.NeighborsWithin(0, 0.5))
	if !equal(got, []int{1}) {
		t.Errorf("got %v", got)
	}
}

func sorted(s []int) []int { sort.Ints(s); return s }

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NeighborsWithinBuf must return the same neighbors in the same order as
// NeighborsWithin, and reuse the caller's buffer without allocating once
// capacity suffices.
func TestNeighborsWithinBuf(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	n := New(pts, 0.1)
	n.Rebuild()
	buf := make([]int, 0, len(pts))
	for i := 0; i < len(pts); i += 7 {
		for _, rho := range []float64{0.05, 0.2, 0.6} {
			want := n.NeighborsWithin(i, rho)
			got := n.NeighborsWithinBuf(i, rho, buf)
			if !equal(got, want) {
				t.Fatalf("node %d rho=%v: buf variant differs: %v vs %v", i, rho, got, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		n.NeighborsWithinBuf(5, 0.3, buf)
	})
	if allocs > 0 {
		t.Errorf("NeighborsWithinBuf with capacity allocates %v/op, want 0", allocs)
	}
}

// Version must tick on every position mutation so cache consumers can
// detect out-of-band writes.
func TestVersionCountsMutations(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	n := New(pts, 1)
	v0 := n.Version()
	n.SetPosition(0, geom.Pt(0.5, 0.5))
	if n.Version() == v0 {
		t.Error("SetPosition did not bump Version")
	}
	v1 := n.Version()
	n.SetPositions([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	if n.Version() == v1 {
		t.Error("SetPositions did not bump Version")
	}
	if n.MessageCount() != n.Stats().Messages {
		t.Error("MessageCount disagrees with Stats().Messages")
	}
}
