package wsn

import (
	"math"

	"laacad/internal/geom"
	"laacad/internal/parallel"
)

// gridIndex is the flat spatial index over node positions: a uniform grid
// whose per-cell buckets are carved CSR-style out of one backing array by a
// full rebuild (cell-start offsets + node array) and then maintained
// incrementally — a position update moves one node between two buckets
// instead of invalidating the whole index.
//
// Invariants:
//   - every node lies inside the grid bounds; a mutation that would violate
//     this reports failure and the caller falls back to a full rebuild with
//     fresh bounds (the only remaining rebuild triggers are bulk
//     SetPositions and node-count changes);
//   - every bucket holds node IDs in ascending order, exactly what a full
//     rebuild produces, so query answers are bit-identical whichever path
//     built the index;
//   - vers[c] increments on every mutation touching cell c (a reader can
//     detect staleness of one neighborhood without any global flag), and gen
//     increments on every full rebuild (the cell geometry itself changed, so
//     cell indices from an older gen are meaningless).
type gridIndex struct {
	side   float64
	ox, oy int // cell coordinate of cells[0]
	nx, ny int

	cells    [][]int32 // per-cell ID buckets, ascending; sliced from backing
	vers     []uint32  // per-cell mutation versions
	nodeCell []int32   // linear cell index of every node
	gen      uint64    // full-rebuild generation
}

// gridMargin is the number of slack cell rings a rebuild reserves around the
// position bounding box, so nodes can drift outward for a while before a
// move falls off the grid and forces the next rebuild.
const gridMargin = 2

func (g *gridIndex) cellCoords(p geom.Point) (int, int) {
	return int(math.Floor(p.X / g.side)), int(math.Floor(p.Y / g.side))
}

// cellIndex returns the linear index of p's cell, or -1 if p lies outside
// the grid bounds.
func (g *gridIndex) cellIndex(p geom.Point) int {
	cx, cy := g.cellCoords(p)
	rx, ry := cx-g.ox, cy-g.oy
	if rx < 0 || rx >= g.nx || ry < 0 || ry >= g.ny {
		return -1
	}
	return ry*g.nx + rx
}

// cellDist2 returns a lower bound on the squared distance from p to any
// position hashing into cell ci. The cell rectangle is expanded by a hair so
// float rounding at cell boundaries can never make the bound exceed the true
// distance — consumers use it to prune cells, and an overestimate would turn
// pruning into wrong answers.
func (g *gridIndex) cellDist2(ci int, p geom.Point) float64 {
	rx, ry := ci%g.nx, ci/g.nx
	eps := g.side * 1e-9
	x0 := float64(g.ox+rx)*g.side - eps
	y0 := float64(g.oy+ry)*g.side - eps
	x1 := x0 + g.side + 2*eps
	y1 := y0 + g.side + 2*eps
	var dx, dy float64
	if p.X < x0 {
		dx = x0 - p.X
	} else if p.X > x1 {
		dx = p.X - x1
	}
	if p.Y < y0 {
		dy = y0 - p.Y
	} else if p.Y > y1 {
		dy = p.Y - y1
	}
	return dx*dx + dy*dy
}

// buildGrid constructs the index from scratch over the given positions.
// Cell side starts at gamma and grows to keep occupancy near one node per
// cell for deployments much wider than gamma. The per-node cell location
// (the float work) fans out across workers via internal/parallel; the
// counting-sort scatter runs serially in ascending node order, which is what
// keeps every bucket ascending. prevGen threads the rebuild generation
// across index lifetimes.
//
// A non-nil bounds hint (the deployment region's bounding box, see
// Network.SetBoundsHint) is unioned into both the grid bounds and the cell
// sizing: the grid then covers everywhere the nodes can ever be, so an
// expansion-phase deployment (corner pile spreading across the region) never
// exits the bounds and never forces a rebuild. While the nodes are still
// clustered the hint-scaled cells hold more than the usual ~4 nodes each —
// a transient query-cost tax the expansion pays instead of one full rebuild
// per round; query answers are canonical either way.
func buildGrid(pos []geom.Point, gamma float64, prevGen uint64, hint *geom.BBox) *gridIndex {
	g := &gridIndex{side: gamma, gen: prevGen + 1}
	n := len(pos)
	if n == 0 {
		g.nx, g.ny = 1, 1
		g.cells = make([][]int32, 1)
		g.vers = make([]uint32, 1)
		return g
	}
	b := geom.BBoxOf(pos)
	if hint != nil {
		b = b.Union(*hint)
	}
	span := math.Max(b.Width(), b.Height())
	// Size cells for a few nodes each: that is what makes both query windows
	// and bucket edits O(local). Occupancy ~4 (double-pitch cells) balances
	// the two per-query costs — scanning empty cells of the window vs.
	// distance-testing extra bucket members; occupancy 1 measurably loses to
	// it on the expanding-search radii (~5 pitches) the engine issues. The
	// map grid this index replaced floored the cell side at gamma to avoid
	// hashing lots of empty cells; with flat array cells gamma only
	// backstops degenerate (zero-span) layouts.
	if adaptive := 2 * span / math.Sqrt(float64(n)); adaptive > 0 {
		g.side = adaptive
	}
	minCx := int(math.Floor(b.Min.X / g.side))
	minCy := int(math.Floor(b.Min.Y / g.side))
	maxCx := int(math.Floor(b.Max.X / g.side))
	maxCy := int(math.Floor(b.Max.Y / g.side))
	g.ox, g.oy = minCx-gridMargin, minCy-gridMargin
	g.nx = maxCx - minCx + 1 + 2*gridMargin
	g.ny = maxCy - minCy + 1 + 2*gridMargin
	ncells := g.nx * g.ny

	// Phase 1 (parallel): locate every node's cell. Pure per-index work, so
	// the result is identical for any worker count. Parallelism only pays on
	// large rebuilds; small ones stay on the calling goroutine.
	g.nodeCell = make([]int32, n)
	workers := min(parallel.Workers(-1), max(1, n/4096))
	parallel.For(n, workers, func(i int) {
		g.nodeCell[i] = int32(g.cellIndex(pos[i]))
	})

	// Phase 2 (serial): CSR counting sort. offsets[c] is the start of cell
	// c's segment in the backing array; scattering in ascending node order
	// keeps each bucket ascending.
	offsets := make([]int32, ncells+1)
	for _, c := range g.nodeCell {
		offsets[c+1]++
	}
	for c := 1; c <= ncells; c++ {
		offsets[c] += offsets[c-1]
	}
	backing := make([]int32, n)
	next := make([]int32, ncells)
	copy(next, offsets[:ncells])
	for i := 0; i < n; i++ {
		c := g.nodeCell[i]
		backing[next[c]] = int32(i)
		next[c]++
	}
	g.cells = make([][]int32, ncells)
	for c := 0; c < ncells; c++ {
		s, e := offsets[c], offsets[c+1]
		// Capacity capped at the segment end: a bucket that outgrows its CSR
		// segment reallocates alone instead of clobbering its neighbor.
		g.cells[c] = backing[s:e:e]
	}
	g.vers = make([]uint32, ncells)
	return g
}

// windowRadius returns the cell-window radius covering every position
// within dist of a point (the +1 absorbs the partial cells at both ends and
// float rounding at the boundaries).
func (g *gridIndex) windowRadius(dist float64) int {
	return int(math.Ceil(dist/g.side)) + 1
}

// visitCells invokes fn(ci) for every grid cell that could contain a
// position within dist of p. The walk clamps to the grid bounds — every
// node is inside them, so nothing is lost — and is the one place that knows
// how cell windows map to linear indices.
func (g *gridIndex) visitCells(p geom.Point, dist float64, fn func(ci int)) {
	r := g.windowRadius(dist)
	cx, cy := g.cellCoords(p)
	x0, x1 := max(cx-r, g.ox), min(cx+r, g.ox+g.nx-1)
	y0, y1 := max(cy-r, g.oy), min(cy+r, g.oy+g.ny-1)
	for y := y0; y <= y1; y++ {
		row := (y - g.oy) * g.nx
		for x := x0; x <= x1; x++ {
			fn(row + x - g.ox)
		}
	}
}

// move relocates node i to p. It reports false when p falls outside the grid
// bounds, in which case the caller must schedule a full rebuild (the index
// is left unchanged and still describes the old position).
func (g *gridIndex) move(i int, p geom.Point) bool {
	ci := g.cellIndex(p)
	if ci < 0 {
		return false
	}
	old := g.nodeCell[i]
	if int32(ci) == old {
		// Same bucket, but the position backing it changed.
		g.vers[ci]++
		return true
	}
	g.cells[old] = removeID(g.cells[old], int32(i))
	g.vers[old]++
	g.cells[ci] = insertID(g.cells[ci], int32(i))
	g.vers[ci]++
	g.nodeCell[i] = int32(ci)
	return true
}

// add extends the index with a node at p whose ID is the next node number.
// It reports false when p falls outside the grid bounds.
func (g *gridIndex) add(p geom.Point) bool {
	ci := g.cellIndex(p)
	if ci < 0 {
		return false
	}
	id := int32(len(g.nodeCell))
	g.nodeCell = append(g.nodeCell, int32(ci))
	g.cells[ci] = insertID(g.cells[ci], id)
	g.vers[ci]++
	return true
}

// removeID deletes id from the ascending bucket b in place.
func removeID(b []int32, id int32) []int32 {
	for k, v := range b {
		if v == id {
			copy(b[k:], b[k+1:])
			return b[: len(b)-1 : cap(b)]
		}
	}
	return b // unreachable while the invariants hold
}

// insertID adds id to the ascending bucket b, keeping it sorted.
func insertID(b []int32, id int32) []int32 {
	k := len(b)
	b = append(b, id)
	for k > 0 && b[k-1] > id {
		b[k] = b[k-1]
		k--
	}
	b[k] = id
	return b
}
