package wsn

import (
	"math/rand"
	"sort"
	"testing"

	"laacad/internal/geom"
)

// bruteNeighbors is the O(n) reference for NeighborsWithin.
func bruteNeighbors(pos []geom.Point, i int, rho float64) []int {
	var out []int
	rho2 := rho * rho
	for j, q := range pos {
		if j != i && q.Dist2(pos[i]) < rho2 {
			out = append(out, j)
		}
	}
	return out
}

// Randomized cross-validation: the grid-indexed NeighborsWithin must agree
// with a brute-force linear scan for every node, radius and deployment shape
// — including clustered deployments that stress the adaptive cell sizing,
// and radii spanning sub-cell to whole-network scales.
func TestNeighborsWithinPropertyRandomDeployments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(120)
		clustered := trial%3 == 0
		pos := make([]geom.Point, n)
		for i := range pos {
			if clustered {
				// Tight cluster plus outliers: exercises the adaptive grid.
				cx, cy := rng.Float64(), rng.Float64()
				pos[i] = geom.Pt(cx+0.01*rng.NormFloat64(), cy+0.01*rng.NormFloat64())
			} else {
				pos[i] = geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
			}
		}
		gamma := 0.02 + rng.Float64()*0.3
		net := New(pos, gamma)
		for probe := 0; probe < 8; probe++ {
			i := rng.Intn(n)
			rho := rng.Float64() * 2.5
			got := net.NeighborsWithin(i, rho)
			want := bruteNeighbors(pos, i, rho)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d: node %d rho=%v: grid found %d, brute force %d",
					trial, i, rho, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d: node %d rho=%v: grid %v != brute %v",
						trial, i, rho, got, want)
				}
			}
		}
		// Moving a node must invalidate the grid and stay consistent.
		m := rng.Intn(n)
		net.SetPosition(m, geom.Pt(rng.Float64(), rng.Float64()))
		pos[m] = net.Position(m)
		got := net.NeighborsWithin(m, 0.5)
		want := bruteNeighbors(pos, m, 0.5)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d after move: grid %v != brute %v", trial, got, want)
		}
	}
}

// Rebuild is idempotent and query results do not depend on whether the grid
// was built eagerly (Rebuild) or lazily (first query).
func TestRebuildExplicitMatchesLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pos := make([]geom.Point, 80)
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	lazy := New(pos, 0.1)
	eager := New(pos, 0.1)
	eager.Rebuild()
	eager.Rebuild() // idempotent
	for i := 0; i < len(pos); i += 7 {
		a := lazy.NeighborsWithin(i, 0.3)
		b := eager.NeighborsWithin(i, 0.3)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("node %d: lazy %v != eager %v", i, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("node %d: lazy %v != eager %v", i, a, b)
			}
		}
	}
}
