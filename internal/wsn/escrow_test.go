package wsn

import (
	"sync"
	"testing"
)

func TestEscrowDeferCommitPublishes(t *testing.T) {
	n := New(linePositions(4, 1), 1.5)
	n.Charge(0, 5)
	n.BeginEscrow(1)
	n.Charge(1, 7)
	n.Charge(1, 3)
	if got := n.MessageCount(); got != 5 {
		t.Fatalf("escrowed charges visible in MessageCount: got %d, want 5", got)
	}
	if got := n.NodeMessages(1); got != 0 {
		t.Fatalf("escrowed charges visible in NodeMessages: got %d, want 0", got)
	}
	if got := n.EscrowDepth(); got != 10 {
		t.Fatalf("EscrowDepth = %d, want 10", got)
	}
	if got := n.EndEscrow(1); got != 10 {
		t.Fatalf("EndEscrow = %d, want 10", got)
	}
	// Closed but uncommitted: still invisible, still held.
	if got := n.MessageCount(); got != 5 {
		t.Fatalf("uncommitted escrow visible: got %d, want 5", got)
	}
	if got := n.CommitEscrow(1); got != 10 {
		t.Fatalf("CommitEscrow = %d, want 10", got)
	}
	if got := n.MessageCount(); got != 15 {
		t.Fatalf("after commit MessageCount = %d, want 15", got)
	}
	if got := n.NodeMessages(1); got != 10 {
		t.Fatalf("after commit NodeMessages(1) = %d, want 10", got)
	}
	if got := n.EscrowDepth(); got != 0 {
		t.Fatalf("after commit EscrowDepth = %d, want 0", got)
	}
	// Charges after EndEscrow go straight to the public counters again.
	n.Charge(1, 2)
	if got := n.NodeMessages(1); got != 12 {
		t.Fatalf("post-escrow charge lost: NodeMessages(1) = %d, want 12", got)
	}
}

func TestEscrowVoidDiscardsWithoutRefund(t *testing.T) {
	n := New(linePositions(3, 1), 1.5)
	n.BeginEscrow(2)
	n.Charge(2, 9)
	n.EndEscrow(2)
	if got := n.VoidEscrow(2); got != 9 {
		t.Fatalf("VoidEscrow = %d, want 9", got)
	}
	if got, depth := n.MessageCount(), n.EscrowDepth(); got != 0 || depth != 0 {
		t.Fatalf("after void: MessageCount=%d EscrowDepth=%d, want 0,0", got, depth)
	}
	// A fresh escrow on the same node starts clean.
	n.BeginEscrow(2)
	n.Charge(2, 4)
	n.EndEscrow(2)
	if got := n.CommitEscrow(2); got != 4 {
		t.Fatalf("second escrow commit = %d, want 4", got)
	}
	if got := n.MessageCount(); got != 4 {
		t.Fatalf("MessageCount = %d, want 4", got)
	}
}

func TestBeginEscrowPanicsOnUnresolvedBalance(t *testing.T) {
	n := New(linePositions(2, 1), 1.5)
	n.BeginEscrow(0)
	n.Charge(0, 1)
	n.EndEscrow(0)
	defer func() {
		if recover() == nil {
			t.Error("BeginEscrow over an unresolved balance must panic")
		}
	}()
	n.BeginEscrow(0)
}

func TestResetStatsDropsEscrowAndBumpsEpoch(t *testing.T) {
	n := New(linePositions(3, 1), 1.5)
	if n.StatsEpoch() != 0 {
		t.Fatalf("fresh network StatsEpoch = %d, want 0", n.StatsEpoch())
	}
	n.Charge(0, 3)
	n.BeginEscrow(1)
	n.Charge(1, 5)
	n.ResetStats()
	if got := n.StatsEpoch(); got != 1 {
		t.Fatalf("StatsEpoch after reset = %d, want 1", got)
	}
	if got := n.EscrowDepth(); got != 0 {
		t.Fatalf("EscrowDepth after reset = %d, want 0", got)
	}
	n.EndEscrow(1)
	if got := n.CommitEscrow(1); got != 0 {
		t.Fatalf("commit of reset escrow moved %d messages, want 0", got)
	}
	if got := n.MessageCount(); got != 0 {
		t.Fatalf("MessageCount after reset = %d, want 0", got)
	}
}

func TestEscrowSurvivesAddNode(t *testing.T) {
	n := New(linePositions(2, 1), 1.5)
	id := n.AddNode(linePositions(3, 1)[2])
	n.BeginEscrow(id)
	n.Charge(id, 6)
	n.EndEscrow(id)
	if got := n.CommitEscrow(id); got != 6 {
		t.Fatalf("escrow on added node commit = %d, want 6", got)
	}
	if got := n.NodeMessages(id); got != 6 {
		t.Fatalf("NodeMessages(%d) = %d, want 6", id, got)
	}
}

// TestStatsSelfConsistentUnderConcurrentCharges is the regression test for
// the torn Stats snapshot: with chargers running concurrently, every
// snapshot must satisfy sum(ByNode) == Messages and successive snapshots
// must be monotone. Run under -race this also exercises the atomics.
func TestStatsSelfConsistentUnderConcurrentCharges(t *testing.T) {
	n := New(linePositions(8, 1), 1.5)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					n.Charge(id, 3)
					n.Charge(id+4, 1)
				}
			}
		}(w)
	}
	prev := int64(-1)
	for i := 0; i < 5000; i++ {
		s := n.Stats()
		var sum int64
		for _, v := range s.ByNode {
			sum += v
		}
		if sum != s.Messages {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: sum(ByNode)=%d, Messages=%d", sum, s.Messages)
		}
		if s.Messages < prev {
			close(stop)
			wg.Wait()
			t.Fatalf("non-monotone snapshot: %d after %d", s.Messages, prev)
		}
		prev = s.Messages
	}
	close(stop)
	wg.Wait()
	// At quiescence the cheap total agrees with the snapshot.
	if got, want := n.MessageCount(), n.Stats().Messages; got != want {
		t.Fatalf("MessageCount=%d != Stats().Messages=%d at quiescence", got, want)
	}
}
