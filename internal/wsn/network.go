// Package wsn models the wireless-sensor-network substrate LAACAD runs on:
// node positions, the unit-disk communication graph induced by a common
// transmission range γ, distance and hop-limited neighborhood queries backed
// by a uniform spatial grid, and per-node message accounting for the
// localized expanding-ring search (Algorithm 2 in the paper).
//
// The package is deliberately independent of the deployment algorithm: it
// answers "who can I hear, and what does asking cost" and nothing else.
package wsn

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"laacad/internal/geom"
)

// Network is a set of sensor nodes with a common transmission range.
//
// Concurrency: position mutation (SetPosition, SetPositions) must not run
// concurrently with anything else, but the read path is safe for concurrent
// use — the lazy spatial-grid rebuild is mutex-guarded, and message
// accounting (Charge) is atomic — so queries such as NeighborsWithin,
// RingQuery and HopNeighborhood may fan out across goroutines between
// mutations. Callers doing so should invoke Rebuild first so the grid is
// built once up front rather than contended on first query.
type Network struct {
	pos   []geom.Point
	gamma float64

	// Message counters. atomic.Int64 (not bare int64 + atomic ops) so the
	// 8-byte alignment Charge needs is guaranteed on 32-bit platforms too.
	msgs   atomic.Int64
	byNode []atomic.Int64

	// Uniform grid spatial index over node positions, rebuilt lazily after
	// position updates. Cell side = gamma, so a range-ρ query scans
	// ⌈ρ/γ+1⌉² cells. dirty is the lock-free fast path: queries only take
	// mu (which guards the rebuild itself) when the grid is stale, so
	// concurrent readers of a clean grid never contend on the mutex.
	mu       sync.Mutex
	grid     map[gridKey][]int
	cellSide float64
	dirty    atomic.Bool

	// version counts position mutations (see Version): the round engine's
	// incremental cache uses it to detect out-of-band position writes.
	version atomic.Uint64
}

type gridKey struct{ cx, cy int }

// Stats accumulates communication cost. Messages counts link-level
// transmissions (each hop of each unicast/broadcast counts once).
type Stats struct {
	Messages int64
	ByNode   []int64
}

// New creates a network with the given node positions and transmission
// range gamma. It panics if gamma is not positive.
func New(pos []geom.Point, gamma float64) *Network {
	if gamma <= 0 {
		panic(fmt.Sprintf("wsn: transmission range must be positive, got %v", gamma))
	}
	n := &Network{
		pos:      append([]geom.Point(nil), pos...),
		gamma:    gamma,
		cellSide: gamma,
		byNode:   make([]atomic.Int64, len(pos)),
	}
	n.dirty.Store(true)
	return n
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.pos) }

// Gamma returns the transmission range γ.
func (n *Network) Gamma() float64 { return n.gamma }

// Position returns node i's position.
func (n *Network) Position(i int) geom.Point { return n.pos[i] }

// Positions returns a copy of all node positions.
func (n *Network) Positions() []geom.Point {
	return append([]geom.Point(nil), n.pos...)
}

// SetPosition moves node i to p. Must not run concurrently with queries.
func (n *Network) SetPosition(i int, p geom.Point) {
	n.pos[i] = p
	n.markDirty()
}

// SetPositions replaces all node positions (same count required). Must not
// run concurrently with queries.
func (n *Network) SetPositions(pos []geom.Point) {
	if len(pos) != len(n.pos) {
		panic(fmt.Sprintf("wsn: SetPositions with %d positions for %d nodes", len(pos), len(n.pos)))
	}
	copy(n.pos, pos)
	n.markDirty()
}

func (n *Network) markDirty() {
	n.dirty.Store(true)
	n.version.Add(1)
}

// Version returns a counter incremented by every position mutation
// (SetPosition, SetPositions). Consumers that cache position-derived state —
// the round engine's incremental dirty-set — compare versions to detect
// writes they did not perform themselves and flush accordingly.
func (n *Network) Version() uint64 { return n.version.Load() }

// MessageCount returns the total link-level message count — Stats().Messages
// without materializing the per-node slice, for per-round accounting in hot
// loops.
func (n *Network) MessageCount() int64 { return n.msgs.Load() }

// Stats returns a snapshot of the accumulated communication statistics.
func (n *Network) Stats() Stats {
	s := Stats{
		Messages: n.msgs.Load(),
		ByNode:   make([]int64, len(n.byNode)),
	}
	for i := range n.byNode {
		s.ByNode[i] = n.byNode[i].Load()
	}
	return s
}

// ResetStats zeroes the communication counters.
func (n *Network) ResetStats() {
	n.msgs.Store(0)
	for i := range n.byNode {
		n.byNode[i].Store(0)
	}
}

// Charge records m link-level transmissions attributed to node i. It is safe
// for concurrent use.
func (n *Network) Charge(i int, m int64) {
	n.msgs.Add(m)
	n.byNode[i].Add(m)
}

// Rebuild brings the spatial grid up to date with the current positions.
// Queries do this lazily on demand; callers about to fan queries across
// goroutines should call it explicitly so workers start from a clean,
// immutable index instead of contending on the first query.
func (n *Network) Rebuild() { n.rebuild() }

func (n *Network) rebuild() {
	// Fast path: the atomic load pairs with the Store(false) below, so a
	// reader that observes a clean flag also observes the built grid
	// (happens-before via the atomic), without touching the mutex.
	if !n.dirty.Load() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.dirty.Load() {
		return
	}
	// Pick a cell side that keeps occupancy near one node per cell: for
	// deployments much wider than γ, γ-sized cells would make range queries
	// scan huge empty cell windows.
	n.cellSide = n.gamma
	if len(n.pos) > 0 {
		b := geom.BBoxOf(n.pos)
		span := math.Max(b.Width(), b.Height())
		if adaptive := span / math.Sqrt(float64(len(n.pos))); adaptive > n.cellSide {
			n.cellSide = adaptive
		}
	}
	n.grid = make(map[gridKey][]int, len(n.pos))
	for i, p := range n.pos {
		k := n.keyOf(p)
		n.grid[k] = append(n.grid[k], i)
	}
	n.dirty.Store(false)
}

func (n *Network) keyOf(p geom.Point) gridKey {
	return gridKey{
		cx: int(math.Floor(p.X / n.cellSide)),
		cy: int(math.Floor(p.Y / n.cellSide)),
	}
}

// NeighborsWithin returns the IDs of all nodes other than i strictly within
// distance rho of node i (the paper's N(n_i, ρ)).
func (n *Network) NeighborsWithin(i int, rho float64) []int {
	return n.NeighborsWithinBuf(i, rho, nil)
}

// NeighborsWithinBuf is NeighborsWithin with a caller-supplied result
// buffer: matches are appended to buf[:0] and the (possibly grown) buffer is
// returned, so a hot loop that reuses its buffer performs the query without
// heap allocation. The returned order is identical to NeighborsWithin's.
func (n *Network) NeighborsWithinBuf(i int, rho float64, buf []int) []int {
	n.rebuild()
	p := n.pos[i]
	rho2 := rho * rho
	out := buf[:0]
	r := int(math.Ceil(rho/n.cellSide)) + 1
	if (2*r+1)*(2*r+1) > len(n.pos) {
		// The cell window would touch more cells than there are nodes:
		// a linear scan is cheaper and has no map overhead.
		for j, q := range n.pos {
			if j != i && q.Dist2(p) < rho2 {
				out = append(out, j)
			}
		}
		return out
	}
	base := n.keyOf(p)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, j := range n.grid[gridKey{base.cx + dx, base.cy + dy}] {
				if j != i && n.pos[j].Dist2(p) < rho2 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}

// OneHop returns node i's one-hop neighbors: nodes strictly within the
// transmission range γ.
func (n *Network) OneHop(i int) []int { return n.NeighborsWithin(i, n.gamma) }

// HopNeighborhood returns the nodes reachable from i within the given hop
// count over the unit-disk graph, as a map from node ID to hop distance
// (excluding i itself).
func (n *Network) HopNeighborhood(i, hops int) map[int]int {
	n.rebuild()
	dist := map[int]int{i: 0}
	frontier := []int{i}
	for h := 1; h <= hops && len(frontier) > 0; h++ {
		var next []int
		for _, u := range frontier {
			for _, v := range n.NeighborsWithin(u, n.gamma) {
				if _, seen := dist[v]; !seen {
					dist[v] = h
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	delete(dist, i)
	return dist
}

// RingQueryMode selects how the expanding-ring query of Algorithm 2
// discovers nodes.
type RingQueryMode int

const (
	// RingGeometric returns exactly N(n_i, ρ) — every node within Euclidean
	// distance ρ — matching the paper's idealized definition. Message cost
	// is modeled as if the query flooded ⌈ρ/γ⌉ hops.
	RingGeometric RingQueryMode = iota
	// RingHopLimited floods the real unit-disk graph ⌈ρ/γ⌉ hops and then
	// filters to distance < ρ, so partitioned or sparse networks return
	// fewer nodes than the geometric ideal.
	RingHopLimited
)

// RingQuery performs one expanding-ring neighborhood query of radius rho for
// node i and charges its communication cost: a flood to h = ⌈ρ/γ⌉ hops costs
// one broadcast per already-reached node, and each discovered node's reply
// is forwarded back over its hop distance.
func (n *Network) RingQuery(i int, rho float64, mode RingQueryMode) []int {
	hops := int(math.Ceil(rho / n.gamma))
	if hops < 1 {
		hops = 1
	}
	var found []int
	var cost int64
	switch mode {
	case RingGeometric:
		found = n.NeighborsWithin(i, rho)
		// Model: query rebroadcast by every node in the ring (+1 for the
		// origin), plus replies of ⌈d/γ⌉ hops each.
		cost = 1 + int64(len(found))
		for _, j := range found {
			h := int64(math.Ceil(n.pos[j].Dist(n.pos[i]) / n.gamma))
			if h < 1 {
				h = 1
			}
			cost += h
		}
	case RingHopLimited:
		reach := n.HopNeighborhood(i, hops)
		cost = 1
		rho2 := rho * rho
		// Iterate in node-ID order, not map order: callers consume the
		// result positionally (e.g. RingQueryLossy assigns per-reply loss
		// draws down this list), so the order is part of the determinism
		// contract.
		ids := make([]int, 0, len(reach))
		for j := range reach {
			ids = append(ids, j)
		}
		sort.Ints(ids)
		for _, j := range ids {
			cost++ // each reached node rebroadcasts once
			if n.pos[j].Dist2(n.pos[i]) < rho2 {
				found = append(found, j)
				cost += int64(reach[j]) // reply forwarded back over its hops
			}
		}
	default:
		panic(fmt.Sprintf("wsn: unknown ring query mode %d", mode))
	}
	n.Charge(i, cost)
	return found
}

// Connected reports whether the unit-disk graph is connected. An empty
// network is connected by convention.
func (n *Network) Connected() bool {
	if len(n.pos) == 0 {
		return true
	}
	seen := make([]bool, len(n.pos))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range n.NeighborsWithin(u, n.gamma) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(n.pos)
}

// DegreeStats returns the minimum, maximum and mean node degree of the
// unit-disk graph.
func (n *Network) DegreeStats() (minDeg, maxDeg int, mean float64) {
	if len(n.pos) == 0 {
		return 0, 0, 0
	}
	minDeg = math.MaxInt
	var sum int
	for i := range n.pos {
		d := len(n.OneHop(i))
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	return minDeg, maxDeg, float64(sum) / float64(len(n.pos))
}
