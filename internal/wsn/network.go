// Package wsn models the wireless-sensor-network substrate LAACAD runs on:
// node positions, the unit-disk communication graph induced by a common
// transmission range γ, distance and hop-limited neighborhood queries backed
// by a uniform spatial grid, and per-node message accounting for the
// localized expanding-ring search (Algorithm 2 in the paper).
//
// The package is deliberately independent of the deployment algorithm: it
// answers "who can I hear, and what does asking cost" and nothing else.
package wsn

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"laacad/internal/geom"
)

// Network is a set of sensor nodes with a common transmission range.
//
// Concurrency: mutation (SetPosition, SetPositions, AddNode, RemoveNode)
// must not run concurrently with anything else, but the read path is safe
// for concurrent use — the full-rebuild fallback is mutex-guarded, and
// message accounting (Charge) is atomic — so queries such as
// NeighborsWithin, RingQuery and HopNeighborhood may fan out across
// goroutines between mutations. Callers doing so should invoke Rebuild
// first so the grid is built once up front rather than contended on first
// query.
type Network struct {
	pos   []geom.Point
	gamma float64

	// searchCount, when positive, overrides the deployment size the
	// expanding search derives its fallback radius and exhaustion exit from
	// (see SetSearchCount).
	searchCount int

	// Message counters. atomic.Int64 (not bare int64 + atomic ops) so the
	// 8-byte alignment Charge needs is guaranteed on 32-bit platforms too.
	msgs   atomic.Int64
	byNode []atomic.Int64

	// Deferred-charge escrow (see BeginEscrow): while deferred[i] is set,
	// charges to node i accumulate in escrow[i] instead of the public
	// counters, and escrowed tracks the total held back. statsEpoch counts
	// ResetStats calls so consumers holding derived accounting state (the
	// engine's recorded-cost cache) can detect a reset and re-base.
	escrow     []atomic.Int64
	deferred   []atomic.Bool
	escrowed   atomic.Int64
	statsEpoch atomic.Uint64

	// detached accumulates the message totals of removed nodes, so Stats can
	// keep Messages == Detached + sum(ByNode) exact across topology changes.
	detached atomic.Int64

	// Incremental spatial index over node positions (see gridIndex). A
	// single-node move updates the two touched cell buckets in place; only
	// bulk rewrites (SetPositions), node-count changes and moves that leave
	// the grid bounds mark the index dirty for a full rebuild. dirty is the
	// lock-free fast path: queries only take mu (which guards the rebuild
	// itself) when a full rebuild is pending, so concurrent readers of a
	// live grid never contend on the mutex.
	mu    sync.Mutex
	idx   *gridIndex
	dirty atomic.Bool

	// boundsHint, when set, is unioned into every rebuild's grid bounds and
	// cell sizing (see SetBoundsHint).
	boundsHint *geom.BBox

	// Observability counters for the index maintenance policy: rebuilds
	// counts full O(n) reconstructions, incMoves the O(1) bucket updates.
	// They are maintained on the (single-threaded) mutation path; read them
	// only between mutations.
	rebuilds uint64
	incMoves uint64

	// version counts position mutations (see Version): the round engine's
	// incremental cache uses it to detect out-of-band position writes.
	version atomic.Uint64
}

// Stats accumulates communication cost. Messages counts link-level
// transmissions (each hop of each unicast/broadcast counts once). Detached
// carries the totals of nodes since removed (RemoveNode keeps totals but has
// no row to attribute them to); Messages == Detached + sum(ByNode) holds for
// every snapshot, even one taken mid-charge.
type Stats struct {
	Messages int64
	Detached int64
	ByNode   []int64
}

// New creates a network with the given node positions and transmission
// range gamma. It panics if gamma is not positive.
func New(pos []geom.Point, gamma float64) *Network {
	if gamma <= 0 {
		panic(fmt.Sprintf("wsn: transmission range must be positive, got %v", gamma))
	}
	n := &Network{
		pos:      append([]geom.Point(nil), pos...),
		gamma:    gamma,
		byNode:   make([]atomic.Int64, len(pos)),
		escrow:   make([]atomic.Int64, len(pos)),
		deferred: make([]atomic.Bool, len(pos)),
	}
	n.dirty.Store(true)
	return n
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.pos) }

// SetSearchCount overrides the node count SearchLen reports. A sharded
// engine's local network holds only a window of the deployment; the
// expanding search's density-based fallback radius and its all-nodes-seen
// exit must be computed against the GLOBAL deployment size to follow the
// same probe sequence — and therefore the same floating-point evaluation
// order — as the shared-memory engine. Zero restores the default (Len).
func (n *Network) SetSearchCount(c int) { n.searchCount = c }

// SearchLen returns the deployment size the expanding search should assume:
// the SetSearchCount override when set, Len otherwise.
func (n *Network) SearchLen() int {
	if n.searchCount > 0 {
		return n.searchCount
	}
	return len(n.pos)
}

// Gamma returns the transmission range γ.
func (n *Network) Gamma() float64 { return n.gamma }

// Position returns node i's position.
func (n *Network) Position(i int) geom.Point { return n.pos[i] }

// Positions returns a copy of all node positions.
func (n *Network) Positions() []geom.Point {
	return append([]geom.Point(nil), n.pos...)
}

// SetPosition moves node i to p, updating the spatial index incrementally:
// the two touched cell buckets are edited in place, so a steady state where
// few nodes move costs O(moved), not O(n). A move that leaves the current
// grid bounds falls back to a full (lazy) rebuild with fresh bounds. Writing
// a node's current position back is a no-op. Must not run concurrently with
// queries.
func (n *Network) SetPosition(i int, p geom.Point) {
	if p == n.pos[i] {
		return
	}
	n.pos[i] = p
	n.version.Add(1)
	if n.dirty.Load() {
		return // no live index; the next query rebuilds from scratch
	}
	if n.idx.move(i, p) {
		n.incMoves++
	} else {
		n.dirty.Store(true)
	}
}

// SetPositions replaces all node positions (same count required) and marks
// the index for a full rebuild — the bulk path. Callers replacing only a few
// positions should prefer per-node SetPosition, which is incremental. Must
// not run concurrently with queries.
func (n *Network) SetPositions(pos []geom.Point) {
	if len(pos) != len(n.pos) {
		panic(fmt.Sprintf("wsn: SetPositions with %d positions for %d nodes", len(pos), len(n.pos)))
	}
	copy(n.pos, pos)
	n.markDirty()
}

// AddNode appends a node at p and returns its ID. The index is extended in
// place when p falls inside the current grid bounds; otherwise the next
// query rebuilds. Must not run concurrently with queries.
func (n *Network) AddNode(p geom.Point) int {
	id := len(n.pos)
	n.pos = append(n.pos, p)
	n.byNode = resizeCounters(n.byNode, len(n.pos), len(n.pos))
	n.escrow = resizeCounters(n.escrow, len(n.pos), len(n.pos))
	n.deferred = make([]atomic.Bool, len(n.pos)) // escrow is empty between mutations
	n.version.Add(1)
	if !n.dirty.Load() {
		if n.idx.add(p) {
			n.incMoves++
		} else {
			n.dirty.Store(true)
		}
	}
	return id
}

// RemoveNode deletes node i, renumbering every node above it down by one
// (matching the engine's failure-injection semantics). Renumbering
// invalidates every bucket, so removal always schedules a full rebuild.
// Per-node message counters shift with the renumbering; totals are kept.
// Must not run concurrently with queries.
func (n *Network) RemoveNode(i int) {
	if i < 0 || i >= len(n.pos) {
		panic(fmt.Sprintf("wsn: RemoveNode index %d out of range [0,%d)", i, len(n.pos)))
	}
	n.pos = append(n.pos[:i], n.pos[i+1:]...)
	n.detached.Add(n.byNode[i].Load())
	byNode := make([]atomic.Int64, len(n.pos))
	for j := range byNode {
		src := j
		if j >= i {
			src = j + 1
		}
		byNode[j].Store(n.byNode[src].Load())
	}
	n.byNode = byNode
	n.escrow = make([]atomic.Int64, len(n.pos))
	n.deferred = make([]atomic.Bool, len(n.pos))
	n.markDirty()
}

// resizeCounters returns a fresh counter slice of the given length carrying
// over the first keep values. atomic.Int64 must not be copied by assignment,
// so the values are moved Load/Store-wise (mutation is single-threaded).
func resizeCounters(old []atomic.Int64, length, keep int) []atomic.Int64 {
	out := make([]atomic.Int64, length)
	if keep > len(old) {
		keep = len(old)
	}
	for i := 0; i < keep; i++ {
		out[i].Store(old[i].Load())
	}
	return out
}

func (n *Network) markDirty() {
	n.dirty.Store(true)
	n.version.Add(1)
}

// SetBoundsHint declares the area the deployment can ever occupy (the target
// region's bounding box). Every grid rebuild from then on unions the hint
// into its bounds and cell sizing, so moves anywhere inside the hint are
// absorbed incrementally — without it, a corner-start deployment that grows
// its position bounding box every round forces a bounds-exit rebuild per
// expansion round. Query answers are independent of cell geometry, so the
// hint is purely an indexing choice. Setting it schedules one rebuild; must
// not run concurrently with queries.
func (n *Network) SetBoundsHint(b geom.BBox) {
	if b.IsEmpty() {
		return
	}
	hint := b
	n.boundsHint = &hint
	n.dirty.Store(true)
}

// Version returns a counter incremented by every position mutation
// (SetPosition, SetPositions, AddNode, RemoveNode). Consumers that cache
// position-derived state — the round engine's incremental dirty-set —
// compare versions to detect writes they did not perform themselves and
// flush accordingly.
func (n *Network) Version() uint64 { return n.version.Load() }

// MessageCount returns the total link-level message count — Stats().Messages
// without materializing the per-node slice, for per-round accounting in hot
// loops.
func (n *Network) MessageCount() int64 { return n.msgs.Load() }

// NodeMessages returns the link-level messages attributed to node i so far.
// It is safe for concurrent use; a worker measuring the cost of one node's
// own query sequence (ring searches charge to the searching node) can diff
// it around the computation without materializing Stats.
func (n *Network) NodeMessages(i int) int64 { return n.byNode[i].Load() }

// Stats returns a snapshot of the accumulated communication statistics. The
// snapshot is self-consistent: Messages is computed as Detached plus the sum
// of the ByNode values it carries, so `Messages == Detached + sum(ByNode)`
// holds even when charges land concurrently with the read (the snapshot can
// differ from MessageCount by whatever charged mid-read; they agree again at
// quiescence).
func (n *Network) Stats() Stats {
	s := Stats{
		Detached: n.detached.Load(),
		ByNode:   make([]int64, len(n.byNode)),
	}
	s.Messages = s.Detached
	for i := range n.byNode {
		v := n.byNode[i].Load()
		s.ByNode[i] = v
		s.Messages += v
	}
	return s
}

// ResetStats zeroes the communication counters, drops any escrowed charges,
// and advances the stats epoch (see StatsEpoch).
func (n *Network) ResetStats() {
	n.msgs.Store(0)
	for i := range n.byNode {
		n.byNode[i].Store(0)
	}
	for i := range n.escrow {
		n.escrow[i].Store(0)
	}
	n.escrowed.Store(0)
	n.detached.Store(0)
	n.statsEpoch.Add(1)
}

// StatsEpoch returns how many times ResetStats has run. Consumers holding
// accounting state derived from the counters — the round engine's cache of
// recorded search costs — compare epochs to detect an out-of-band reset and
// re-base rather than re-charge stale costs against the zeroed counters.
func (n *Network) StatsEpoch() uint64 { return n.statsEpoch.Load() }

// Charge records m link-level transmissions attributed to node i. It is safe
// for concurrent use. While node i is in escrow (BeginEscrow), the charge
// accumulates privately instead of moving the public counters.
func (n *Network) Charge(i int, m int64) {
	if n.deferred[i].Load() {
		n.escrow[i].Add(m)
		n.escrowed.Add(m)
		return
	}
	n.msgs.Add(m)
	n.byNode[i].Add(m)
}

// BeginEscrow opens node i's deferred-charge escrow: until EndEscrow,
// charges attributed to i accumulate in a private escrow account invisible
// to MessageCount/Stats/NodeMessages. The speculation machinery wraps each
// speculative expanding-ring search in an escrow so externally visible
// counters stay exact and monotone at every instant — a wave that dies voids
// its escrow instead of refunding published charges. Only node i's own
// charge path is redirected; it must not race with i's Commit/VoidEscrow.
func (n *Network) BeginEscrow(i int) {
	if n.escrow[i].Load() != 0 {
		panic(fmt.Sprintf("wsn: BeginEscrow(%d) with unresolved escrow", i))
	}
	n.deferred[i].Store(true)
}

// EndEscrow closes node i's escrow and returns the balance accumulated while
// it was open. The balance stays held back until CommitEscrow publishes it
// or VoidEscrow discards it.
func (n *Network) EndEscrow(i int) int64 {
	n.deferred[i].Store(false)
	return n.escrow[i].Load()
}

// CommitEscrow publishes node i's escrowed charges to the public counters in
// one step and returns the amount committed.
func (n *Network) CommitEscrow(i int) int64 {
	m := n.escrow[i].Swap(0)
	if m != 0 {
		n.escrowed.Add(-m)
		n.msgs.Add(m)
		n.byNode[i].Add(m)
	}
	return m
}

// VoidEscrow discards node i's escrowed charges — the fate of a speculative
// computation whose wave died — and returns the amount dropped. The public
// counters never saw the charges, so no refund happens anywhere.
func (n *Network) VoidEscrow(i int) int64 {
	m := n.escrow[i].Swap(0)
	if m != 0 {
		n.escrowed.Add(-m)
	}
	return m
}

// EscrowDepth returns the total charges currently held in escrow across all
// nodes — a live gauge of in-flight speculation; zero whenever no wave is in
// progress.
func (n *Network) EscrowDepth() int64 { return n.escrowed.Load() }

// Rebuild brings the spatial index up to date with the current positions if
// a full rebuild is pending (bulk write, node-count change, or a move that
// left the grid bounds). Queries do this lazily on demand; callers about to
// fan queries across goroutines should call it explicitly so workers start
// from a clean, immutable index instead of contending on the first query.
// Incremental updates never require it.
func (n *Network) Rebuild() { n.rebuild() }

func (n *Network) rebuild() {
	// Fast path: the atomic load pairs with the Store(false) below, so a
	// reader that observes a clean flag also observes the built grid
	// (happens-before via the atomic), without touching the mutex.
	if !n.dirty.Load() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.dirty.Load() {
		return
	}
	var prevGen uint64
	if n.idx != nil {
		prevGen = n.idx.gen
	}
	n.idx = buildGrid(n.pos, n.gamma, prevGen, n.boundsHint)
	n.rebuilds++
	n.dirty.Store(false)
}

// Rebuilds returns how many full index reconstructions have happened — the
// regression counter for the incremental-maintenance contract: a steady
// state where nodes move within the grid bounds performs none.
func (n *Network) Rebuilds() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rebuilds
}

// IncrementalMoves returns how many O(1) bucket updates the index absorbed
// without rebuilding.
func (n *Network) IncrementalMoves() uint64 { return n.incMoves }

// GridShape describes the spatial index's current cell geometry. Gen
// increments on every full rebuild; cell indices are only comparable within
// one Gen.
type GridShape struct {
	// Side is the cell side length.
	Side float64
	// OX, OY are the cell coordinates of linear cell 0.
	OX, OY int
	// NX, NY are the grid dimensions; linear index = (cy−OY)·NX + (cx−OX).
	NX, NY int
	// Gen is the full-rebuild generation.
	Gen uint64
}

// GridShape returns the current index geometry, rebuilding first if a full
// rebuild is pending.
func (n *Network) GridShape() GridShape {
	n.rebuild()
	g := n.idx
	return GridShape{Side: g.side, OX: g.ox, OY: g.oy, NX: g.nx, NY: g.ny, Gen: g.gen}
}

// CellIndex returns the linear index of the grid cell containing p, or -1
// when p lies outside the grid bounds (every node is always in bounds; an
// arbitrary query point need not be).
func (n *Network) CellIndex(p geom.Point) int {
	n.rebuild()
	return n.idx.cellIndex(p)
}

// CellOfNode returns the linear index of the grid cell node i occupies.
func (n *Network) CellOfNode(i int) int {
	n.rebuild()
	return int(n.idx.nodeCell[i])
}

// CellNodes returns the IDs of the nodes in cell ci, ascending. The slice
// aliases the index: callers must not modify it or hold it across a
// mutation.
func (n *Network) CellNodes(ci int) []int32 {
	n.rebuild()
	return n.idx.cells[ci]
}

// CellDist2 returns a lower bound on the squared distance from p to any
// position inside cell ci — the pruning primitive for inverse range queries
// over the grid.
func (n *Network) CellDist2(ci int, p geom.Point) float64 {
	n.rebuild()
	return n.idx.cellDist2(ci, p)
}

// CellWindowSize returns how many cells ((2r+1)², before bounds clamping) a
// query window of the given radius spans — the cost estimate consumers use
// to choose between an inverse grid query and a dense scan.
func (n *Network) CellWindowSize(dist float64) int {
	n.rebuild()
	r := n.idx.windowRadius(dist)
	return (2*r + 1) * (2*r + 1)
}

// VisitCellsWithin invokes fn(ci) for every grid cell that could contain a
// position within dist of p — the walk primitive behind inverse range
// queries, keeping the cell-window geometry private to the index.
func (n *Network) VisitCellsWithin(p geom.Point, dist float64, fn func(ci int)) {
	n.rebuild()
	n.idx.visitCells(p, dist, fn)
}

// CellVersion returns the rebuild generation and the mutation version of
// the grid cell containing p. The version increments whenever a node enters,
// leaves, or moves within that cell, so a reader caching state derived from
// one neighborhood can detect staleness without any global dirty flag. A
// point outside the grid bounds reports version 0.
func (n *Network) CellVersion(p geom.Point) (gen uint64, ver uint32) {
	n.rebuild()
	ci := n.idx.cellIndex(p)
	if ci < 0 {
		return n.idx.gen, 0
	}
	return n.idx.gen, n.idx.vers[ci]
}

// CellVersionAt returns the mutation version of cell ci (see CellVersion).
func (n *Network) CellVersionAt(ci int) uint32 {
	n.rebuild()
	return n.idx.vers[ci]
}

// AppendCellVersions copies every cell's mutation version into dst[:0]
// (growing it as needed) and returns the rebuild generation the copy belongs
// to plus the copy itself — the snapshot primitive for consumers that later
// want to diff "which cells changed behind my back" (see the engine's
// localized out-of-band invalidation). Cell indices in the copy are only
// meaningful while the generation matches.
func (n *Network) AppendCellVersions(dst []uint32) (uint64, []uint32) {
	n.rebuild()
	dst = append(dst[:0], n.idx.vers...)
	return n.idx.gen, dst
}

// CellCenter returns the center point of grid cell ci, and the cell's
// half-diagonal — the slack a consumer needs to turn "ball touches cell"
// into a center-distance test.
func (n *Network) CellCenter(ci int) (geom.Point, float64) {
	n.rebuild()
	g := n.idx
	rx, ry := ci%g.nx, ci/g.nx
	c := geom.Pt(
		(float64(g.ox+rx)+0.5)*g.side,
		(float64(g.oy+ry)+0.5)*g.side,
	)
	return c, g.side * math.Sqrt2 / 2
}

// NeighborsWithin returns the IDs of all nodes other than i strictly within
// distance rho of node i (the paper's N(n_i, ρ)), in ascending ID order.
func (n *Network) NeighborsWithin(i int, rho float64) []int {
	return n.NeighborsWithinBuf(i, rho, nil)
}

// NeighborsWithinBuf is NeighborsWithin with a caller-supplied result
// buffer: matches are appended to buf[:0] and the (possibly grown) buffer is
// returned, so a hot loop that reuses its buffer performs the query without
// heap allocation. Results are in ascending ID order — the canonical order,
// independent of how the index was built (full rebuild or incremental
// updates) and of its cell geometry.
func (n *Network) NeighborsWithinBuf(i int, rho float64, buf []int) []int {
	n.rebuild()
	p := n.pos[i]
	rho2 := rho * rho
	out := buf[:0]
	g := n.idx
	r := g.windowRadius(rho)
	if (2*r+1)*(2*r+1) > len(n.pos) {
		// The cell window would touch more cells than there are nodes:
		// a linear scan is cheaper and has no index overhead.
		for j, q := range n.pos {
			if j != i && q.Dist2(p) < rho2 {
				out = append(out, j)
			}
		}
		return out
	}
	// Open-coded visitCells walk: routing the appends through a closure
	// would heap-allocate the captured result variable, and this is the
	// zero-alloc hot path. Every node is inside the grid bounds, so
	// clamping the window loses nothing.
	cx, cy := g.cellCoords(p)
	x0, x1 := max(cx-r, g.ox), min(cx+r, g.ox+g.nx-1)
	y0, y1 := max(cy-r, g.oy), min(cy+r, g.oy+g.ny-1)
	for y := y0; y <= y1; y++ {
		row := (y - g.oy) * g.nx
		for x := x0; x <= x1; x++ {
			for _, j := range g.cells[row+x-g.ox] {
				if int(j) != i && n.pos[j].Dist2(p) < rho2 {
					out = append(out, int(j))
				}
			}
		}
	}
	slices.Sort(out) // canonical ascending order (allocation-free for ints)
	return out
}

// NeighborsWithinDistBuf is NeighborsWithinBuf fused with the squared
// distances the filter already computed, for callers that re-sort by
// distance anyway: results come back in deterministic grid-visit order, NOT
// ascending ID order (the ID sort is pure waste for a caller imposing its
// own total order). ids and d2s are parallel; both buffers are reused.
func (n *Network) NeighborsWithinDistBuf(i int, rho float64, ids []int, d2s []float64) ([]int, []float64) {
	n.rebuild()
	p := n.pos[i]
	rho2 := rho * rho
	ids, d2s = ids[:0], d2s[:0]
	g := n.idx
	r := g.windowRadius(rho)
	if (2*r+1)*(2*r+1) > len(n.pos) {
		for j, q := range n.pos {
			if d2 := q.Dist2(p); j != i && d2 < rho2 {
				ids = append(ids, j)
				d2s = append(d2s, d2)
			}
		}
		return ids, d2s
	}
	cx, cy := g.cellCoords(p)
	x0, x1 := max(cx-r, g.ox), min(cx+r, g.ox+g.nx-1)
	y0, y1 := max(cy-r, g.oy), min(cy+r, g.oy+g.ny-1)
	for y := y0; y <= y1; y++ {
		row := (y - g.oy) * g.nx
		for x := x0; x <= x1; x++ {
			for _, j := range g.cells[row+x-g.ox] {
				if d2 := n.pos[j].Dist2(p); int(j) != i && d2 < rho2 {
					ids = append(ids, int(j))
					d2s = append(d2s, d2)
				}
			}
		}
	}
	return ids, d2s
}

// AppendInXRange appends the IDs of every node whose x-coordinate lies in
// [lo, hi] (inclusive, finite bounds) to out[:0], in ascending ID order, and
// returns the buffer — the sub-range index view the sharded engine uses to
// assemble halo bands and serve border requests. The grid walk visits only
// the cell columns intersecting the band; a band whose column window would
// touch more cells than there are nodes falls back to a linear scan (both
// paths return the identical canonical answer).
func (n *Network) AppendInXRange(lo, hi float64, out []int) []int {
	out = out[:0]
	if !(lo <= hi) || len(n.pos) == 0 {
		return out
	}
	n.rebuild()
	g := n.idx
	x0 := max(int(math.Floor(lo/g.side)), g.ox)
	x1 := min(int(math.Floor(hi/g.side)), g.ox+g.nx-1)
	if x1 < x0 {
		return out // the band misses the grid, and every node is on the grid
	}
	if (x1-x0+1)*g.ny > len(n.pos) {
		for j, q := range n.pos {
			if q.X >= lo && q.X <= hi {
				out = append(out, j)
			}
		}
		return out
	}
	for y := 0; y < g.ny; y++ {
		row := y * g.nx
		for x := x0; x <= x1; x++ {
			for _, j := range g.cells[row+x-g.ox] {
				if q := n.pos[j].X; q >= lo && q <= hi {
					out = append(out, int(j))
				}
			}
		}
	}
	slices.Sort(out)
	return out
}

// OneHop returns node i's one-hop neighbors: nodes strictly within the
// transmission range γ.
func (n *Network) OneHop(i int) []int { return n.NeighborsWithin(i, n.gamma) }

// HopNeighborhood returns the nodes reachable from i within the given hop
// count over the unit-disk graph, as a map from node ID to hop distance
// (excluding i itself).
func (n *Network) HopNeighborhood(i, hops int) map[int]int {
	n.rebuild()
	dist := map[int]int{i: 0}
	frontier := []int{i}
	for h := 1; h <= hops && len(frontier) > 0; h++ {
		var next []int
		for _, u := range frontier {
			for _, v := range n.NeighborsWithin(u, n.gamma) {
				if _, seen := dist[v]; !seen {
					dist[v] = h
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	delete(dist, i)
	return dist
}

// RingQueryMode selects how the expanding-ring query of Algorithm 2
// discovers nodes.
type RingQueryMode int

const (
	// RingGeometric returns exactly N(n_i, ρ) — every node within Euclidean
	// distance ρ — matching the paper's idealized definition. Message cost
	// is modeled as if the query flooded ⌈ρ/γ⌉ hops.
	RingGeometric RingQueryMode = iota
	// RingHopLimited floods the real unit-disk graph ⌈ρ/γ⌉ hops and then
	// filters to distance < ρ, so partitioned or sparse networks return
	// fewer nodes than the geometric ideal.
	RingHopLimited
)

// RingQuery performs one expanding-ring neighborhood query of radius rho for
// node i and charges its communication cost: a flood to h = ⌈ρ/γ⌉ hops costs
// one broadcast per already-reached node, and each discovered node's reply
// is forwarded back over its hop distance. Results are in ascending node-ID
// order in both modes; callers consume them positionally (e.g.
// RingQueryLossy assigns per-reply loss draws down the list), so the order
// is part of the determinism contract.
func (n *Network) RingQuery(i int, rho float64, mode RingQueryMode) []int {
	hops := int(math.Ceil(rho / n.gamma))
	if hops < 1 {
		hops = 1
	}
	var found []int
	var cost int64
	switch mode {
	case RingGeometric:
		found = n.NeighborsWithin(i, rho)
		// Model: query rebroadcast by every node in the ring (+1 for the
		// origin), plus replies of ⌈d/γ⌉ hops each.
		cost = 1 + int64(len(found))
		for _, j := range found {
			h := int64(math.Ceil(n.pos[j].Dist(n.pos[i]) / n.gamma))
			if h < 1 {
				h = 1
			}
			cost += h
		}
	case RingHopLimited:
		reach := n.HopNeighborhood(i, hops)
		cost = 1
		rho2 := rho * rho
		ids := make([]int, 0, len(reach))
		for j := range reach {
			ids = append(ids, j)
		}
		sort.Ints(ids)
		for _, j := range ids {
			cost++ // each reached node rebroadcasts once
			if n.pos[j].Dist2(n.pos[i]) < rho2 {
				found = append(found, j)
				cost += int64(reach[j]) // reply forwarded back over its hops
			}
		}
	default:
		panic(fmt.Sprintf("wsn: unknown ring query mode %d", mode))
	}
	n.Charge(i, cost)
	return found
}

// Connected reports whether the unit-disk graph is connected. An empty
// network is connected by convention.
func (n *Network) Connected() bool {
	if len(n.pos) == 0 {
		return true
	}
	seen := make([]bool, len(n.pos))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range n.NeighborsWithin(u, n.gamma) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == len(n.pos)
}

// DegreeStats returns the minimum, maximum and mean node degree of the
// unit-disk graph.
func (n *Network) DegreeStats() (minDeg, maxDeg int, mean float64) {
	if len(n.pos) == 0 {
		return 0, 0, 0
	}
	minDeg = math.MaxInt
	var sum int
	for i := range n.pos {
		d := len(n.OneHop(i))
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
		sum += d
	}
	return minDeg, maxDeg, float64(sum) / float64(len(n.pos))
}
