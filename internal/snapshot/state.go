package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"laacad/internal/geom"
)

// StateVersion identifies the resumable-checkpoint schema. It is independent
// of the result-archive schema (Version/Snapshot): a Snapshot records what a
// finished deployment produced, a State records everything needed to continue
// an interrupted one.
const StateVersion = 1

// Kind values for State.Kind.
const (
	// KindEngine marks a checkpoint of the synchronous round engine
	// (core.Engine). Engine checkpoints resume bit-identically: the engine
	// draws all randomness from streams derived from (Seed, round, node), so
	// positions + round counter + config are the complete state.
	KindEngine = "engine"
	// KindAsync marks a checkpoint of the event-driven simulator
	// (sim.Deployment). Async checkpoints are positional: the event queue
	// and the jitter RNG cannot be serialized, so a resumed run continues
	// from the saved positions with fresh clocks — same fixed points, not a
	// bit-identical event sequence.
	KindAsync = "async"
)

// ConfigState is the serializable subset of an engine configuration. It
// covers every field of core.Config except the Detector (a pluggable
// interface; a resumed run gets the default detector) plus the event-driven
// simulator's fields. Enum-typed fields (Mode, Order, RingMode) are stored
// as their integer values.
type ConfigState struct {
	K           int     `json:"k"`
	Alpha       float64 `json:"alpha"`
	Epsilon     float64 `json:"epsilon"`
	MaxRounds   int     `json:"max_rounds,omitempty"`
	Mode        int     `json:"mode,omitempty"`
	Order       int     `json:"order,omitempty"`
	Gamma       float64 `json:"gamma,omitempty"`
	RingMode    int     `json:"ring_mode,omitempty"`
	LossRate    float64 `json:"loss_rate,omitempty"`
	LossRetries int     `json:"loss_retries,omitempty"`
	ArcSamples  int     `json:"arc_samples,omitempty"`
	RingCap     float64 `json:"ring_cap,omitempty"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers,omitempty"`
	KeepRegions bool    `json:"keep_regions,omitempty"`
	// DisableCache disables the engine's incremental dirty-set. Recorded so
	// a resumed run keeps the eager/cached choice of the original, even
	// though the two are bit-identical by contract.
	DisableCache bool `json:"disable_cache,omitempty"`
	// DisableBatch routes region computation through the scalar kernel
	// instead of the batch SoA kernel. Recorded for the same reason: the
	// two are bit-identical by contract, but a resumed run keeps the
	// original's choice.
	DisableBatch bool `json:"disable_batch,omitempty"`

	// Event-driven simulator fields (Kind == KindAsync).
	Tau               float64 `json:"tau,omitempty"`
	Jitter            float64 `json:"jitter,omitempty"`
	Speed             float64 `json:"speed,omitempty"`
	MaxTime           float64 `json:"max_time,omitempty"`
	StableActivations int     `json:"stable_activations,omitempty"`
}

// RoundState is one archived trace entry (mirrors core.RoundStats without
// importing core, which would cycle).
type RoundState struct {
	Round           int     `json:"round"`
	MaxCircumradius float64 `json:"max_cr"`
	MinCircumradius float64 `json:"min_cr"`
	MaxRhat         float64 `json:"max_rhat"`
	MaxMove         float64 `json:"max_move"`
	Moved           int     `json:"moved"`
	Messages        int64   `json:"messages,omitempty"`
}

// State is a resumable deployment checkpoint: enough to reconstruct a
// Runner mid-run. For the synchronous engine the resume is bit-identical
// (see KindEngine); for the async simulator it is positional (KindAsync).
type State struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// Scenario is the registered scenario name the run was launched from,
	// if any — informational, and a fallback for region resolution.
	Scenario string `json:"scenario,omitempty"`
	// Region is the registered region name the run deploys over. Resuming
	// through the scenario registry requires it; resuming through
	// core.Resume / sim.Resume with an explicit *region.Region does not.
	Region string `json:"region,omitempty"`

	// Round is the number of completed rounds (engine) or epochs (async).
	Round     int  `json:"round"`
	Converged bool `json:"converged"`
	// X and Y are the node positions at the checkpoint, as parallel arrays.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Messages is the cumulative link-level message count up to the
	// checkpoint (Localized mode).
	Messages int64 `json:"messages,omitempty"`

	// Async progress counters (Kind == KindAsync).
	Time        float64 `json:"time,omitempty"`
	Activations int64   `json:"activations,omitempty"`
	Travel      float64 `json:"travel,omitempty"`

	Trace  []RoundState `json:"trace,omitempty"`
	Config ConfigState  `json:"config"`
}

// NewState builds a checkpoint skeleton of the given kind with the node
// positions filled in; callers populate progress counters and config.
func NewState(kind string, positions []geom.Point) *State {
	s := &State{
		Version: StateVersion,
		Kind:    kind,
		X:       make([]float64, len(positions)),
		Y:       make([]float64, len(positions)),
	}
	for i, p := range positions {
		s.X[i], s.Y[i] = p.X, p.Y
	}
	return s
}

// Positions reconstructs the checkpointed node positions.
func (s *State) Positions() []geom.Point {
	out := make([]geom.Point, len(s.X))
	for i := range s.X {
		out[i] = geom.Pt(s.X[i], s.Y[i])
	}
	return out
}

// Write serializes the state as indented JSON. encoding/json emits float64
// values in their shortest round-trippable form, so positions survive the
// trip bit-exactly — the property the engine's resume contract rests on.
func (s *State) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// WriteFile writes the state to path.
func (s *State) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	if err := s.Write(f); err != nil {
		return fmt.Errorf("snapshot: encoding %s: %w", path, err)
	}
	return f.Close()
}

// ReadState parses a resumable checkpoint and validates its shape.
func ReadState(r io.Reader) (*State, error) {
	var s State
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decoding state: %w", err)
	}
	if s.Version != StateVersion {
		return nil, fmt.Errorf("snapshot: unsupported state version %d (want %d)", s.Version, StateVersion)
	}
	if s.Kind != KindEngine && s.Kind != KindAsync {
		return nil, fmt.Errorf("snapshot: unknown state kind %q", s.Kind)
	}
	if len(s.X) != len(s.Y) {
		return nil, fmt.Errorf("snapshot: inconsistent position arrays x=%d y=%d", len(s.X), len(s.Y))
	}
	if s.Config.K < 1 {
		return nil, fmt.Errorf("snapshot: invalid config k=%d", s.Config.K)
	}
	if s.Round < 0 {
		return nil, fmt.Errorf("snapshot: negative round %d", s.Round)
	}
	return &s, nil
}

// ReadStateFile parses the checkpoint at path.
func ReadStateFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return ReadState(f)
}
