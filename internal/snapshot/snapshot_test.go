package snapshot

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
)

func sample(t *testing.T) *Snapshot {
	t.Helper()
	s, err := New(2, 7, 42, true,
		[]geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.2, 0.8)},
		[]float64{0.9, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsMismatch(t *testing.T) {
	if _, err := New(1, 0, 0, false, make([]geom.Point, 2), make([]float64, 3)); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample(t)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != s.K || got.Seed != s.Seed || got.Rounds != s.Rounds || !got.Converged {
		t.Errorf("metadata mismatch: %+v", got)
	}
	pos := got.Positions()
	if len(pos) != 2 || !pos[0].Eq(geom.Pt(0.5, 0.5)) {
		t.Errorf("positions = %v", pos)
	}
	if got.R[1] != 0.8 {
		t.Errorf("radii = %v", got.R)
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := sample(t)
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.X) != 2 {
		t.Errorf("got %d nodes", len(got.X))
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"wrong version":  `{"version": 99, "k": 1, "x": [], "y": [], "r": []}`,
		"length skew":    `{"version": 1, "k": 1, "x": [1], "y": [], "r": []}`,
		"bad k":          `{"version": 1, "k": 0, "x": [], "y": [], "r": []}`,
		"unknown fields": `{"version": 1, "k": 1, "x": [], "y": [], "r": [], "zz": 3}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestVerify(t *testing.T) {
	s := sample(t)
	rep := s.Verify(region.UnitSquareKm(), 30)
	if !rep.KCovered(1) {
		t.Errorf("stored deployment should 1-cover: %v", rep)
	}
}
