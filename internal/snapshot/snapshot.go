// Package snapshot serializes deployments to JSON so experiment outcomes
// can be archived, diffed across code versions, and re-verified without
// re-running the (potentially long) deployment.
package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"laacad/internal/coverage"
	"laacad/internal/geom"
	"laacad/internal/region"
)

// Version identifies the snapshot schema.
const Version = 1

// Snapshot is a serializable deployment outcome.
type Snapshot struct {
	Version int `json:"version"`
	// K is the coverage order the deployment targeted.
	K int `json:"k"`
	// Seed reproduces the run.
	Seed int64 `json:"seed"`
	// Rounds and Converged summarize the run.
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// X, Y and R are the per-node positions and sensing ranges, stored as
	// parallel arrays to keep files compact and diff-friendly.
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	R []float64 `json:"r"`
}

// New builds a snapshot from deployment output.
func New(k int, seed int64, rounds int, converged bool, positions []geom.Point, radii []float64) (*Snapshot, error) {
	if len(positions) != len(radii) {
		return nil, fmt.Errorf("snapshot: %d positions vs %d radii", len(positions), len(radii))
	}
	s := &Snapshot{
		Version:   Version,
		K:         k,
		Seed:      seed,
		Rounds:    rounds,
		Converged: converged,
		X:         make([]float64, len(positions)),
		Y:         make([]float64, len(positions)),
		R:         append([]float64(nil), radii...),
	}
	for i, p := range positions {
		s.X[i], s.Y[i] = p.X, p.Y
	}
	return s, nil
}

// Positions reconstructs the node positions.
func (s *Snapshot) Positions() []geom.Point {
	out := make([]geom.Point, len(s.X))
	for i := range s.X {
		out[i] = geom.Pt(s.X[i], s.Y[i])
	}
	return out
}

// Verify re-checks k-coverage of the stored deployment over reg.
func (s *Snapshot) Verify(reg *region.Region, resolution int) coverage.Report {
	return coverage.Verify(s.Positions(), s.R, reg, resolution)
}

// Write serializes the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	if err := s.Write(f); err != nil {
		return fmt.Errorf("snapshot: encoding %s: %w", path, err)
	}
	return f.Close()
}

// Read parses a snapshot and validates its shape.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decoding: %w", err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", s.Version, Version)
	}
	if len(s.X) != len(s.Y) || len(s.X) != len(s.R) {
		return nil, fmt.Errorf("snapshot: inconsistent array lengths x=%d y=%d r=%d",
			len(s.X), len(s.Y), len(s.R))
	}
	if s.K < 1 {
		return nil, fmt.Errorf("snapshot: invalid k=%d", s.K)
	}
	return &s, nil
}

// ReadFile parses the snapshot at path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Read(f)
}
