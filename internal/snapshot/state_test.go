package snapshot

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"laacad/internal/geom"
)

func sampleState() *State {
	st := NewState(KindEngine, []geom.Point{
		geom.Pt(0.1, 0.2),
		// Awkward floats must survive the JSON trip bit-exactly.
		geom.Pt(1.0/3.0, math.Nextafter(0.7, 1)),
	})
	st.Scenario = "corner"
	st.Region = "square"
	st.Round = 17
	st.Messages = 123
	st.Trace = []RoundState{
		{Round: 1, MaxCircumradius: 0.9, MinCircumradius: 0.1, MaxRhat: 1.1, MaxMove: 0.05, Moved: 2, Messages: 7},
	}
	st.Config = ConfigState{K: 2, Alpha: 0.5, Epsilon: 5e-4, MaxRounds: 500, Seed: 42, Workers: -1}
	return st
}

func TestStateRoundTripBitExact(t *testing.T) {
	st := sampleState()
	var buf bytes.Buffer
	if err := st.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := st.Positions(), got.Positions()
	for i := range a {
		if a[i].X != b[i].X || a[i].Y != b[i].Y {
			t.Errorf("position %d not bit-exact: %v vs %v", i, a[i], b[i])
		}
	}
	if got.Round != st.Round || got.Messages != st.Messages || got.Scenario != st.Scenario || got.Region != st.Region {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if len(got.Trace) != 1 || got.Trace[0] != st.Trace[0] {
		t.Errorf("trace mismatch: %+v", got.Trace)
	}
	if got.Config != st.Config {
		t.Errorf("config mismatch: %+v vs %+v", got.Config, st.Config)
	}
}

func TestStateFileRoundTrip(t *testing.T) {
	st := sampleState()
	path := filepath.Join(t.TempDir(), "state.json")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != st.Round || len(got.X) != len(st.X) {
		t.Errorf("file round trip lost data: %+v", got)
	}
	if _, err := ReadStateFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestStateValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"bad version", `{"version":99,"kind":"engine","round":0,"x":[],"y":[],"config":{"k":1,"alpha":0.5,"epsilon":1,"seed":0}}`},
		{"bad kind", `{"version":1,"kind":"warp","round":0,"x":[],"y":[],"config":{"k":1,"alpha":0.5,"epsilon":1,"seed":0}}`},
		{"mismatched arrays", `{"version":1,"kind":"engine","round":0,"x":[1],"y":[],"config":{"k":1,"alpha":0.5,"epsilon":1,"seed":0}}`},
		{"bad k", `{"version":1,"kind":"engine","round":0,"x":[],"y":[],"config":{"k":0,"alpha":0.5,"epsilon":1,"seed":0}}`},
		{"negative round", `{"version":1,"kind":"engine","round":-1,"x":[],"y":[],"config":{"k":1,"alpha":0.5,"epsilon":1,"seed":0}}`},
		{"unknown field", `{"version":1,"kind":"engine","round":0,"x":[],"y":[],"bogus":1,"config":{"k":1,"alpha":0.5,"epsilon":1,"seed":0}}`},
		{"not json", `nope`},
	}
	for _, tc := range cases {
		if _, err := ReadState(strings.NewReader(tc.json)); err == nil {
			t.Errorf("%s: should be rejected", tc.name)
		}
	}
}
