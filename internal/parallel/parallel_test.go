package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != 1 {
		t.Errorf("Workers(0) = %d, want 1 (serial)", got)
	}
	if got := Workers(-1); got != runtime.NumCPU() {
		t.Errorf("Workers(-1) = %d, want NumCPU=%d", got, runtime.NumCPU())
	}
}

// Every index is visited exactly once, for serial and parallel pools, and
// for pools larger than the index range.
func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			visits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// Per-slot writes need no synchronization and land deterministically.
func TestForSlotWritesDeterministic(t *testing.T) {
	const n = 500
	want := make([]int, n)
	For(n, 1, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got := make([]int, n)
		For(n, workers, func(i int) { got[i] = i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// ForWorker must hand every index to exactly one worker slot, with slot IDs
// in [0, workers), and per-slot state must need no synchronization.
func TestForWorkerSlotIdentity(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		slots := make([]int, n)
		For(n, 1, func(i int) { slots[i] = -1 })
		ForWorker(n, workers, func(w, i int) {
			if w < 0 || w >= workers {
				panic("worker slot out of range")
			}
			slots[i] = w
		})
		perSlot := make(map[int]int)
		for i, w := range slots {
			if w < 0 {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
			perSlot[w]++
		}
		if len(perSlot) > workers {
			t.Fatalf("workers=%d: %d distinct slots used", workers, len(perSlot))
		}
	}
	// Inline path must always use slot 0.
	ForWorker(5, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("inline path passed slot %d", w)
		}
	})
}

// A Pool distributes every index exactly once per Run, across many reuses
// of the same parked workers, and runs inline once closed.
func TestPoolVisitsEachIndexOnce(t *testing.T) {
	var p Pool
	p.Open(4)
	defer p.Close()
	for run := 0; run < 50; run++ {
		n := run % 7 * 13 // exercises 0, 1, and multi-index runs
		visits := make([]int32, n)
		p.Run(n, func(w, i int) {
			if w < 0 || w >= 4 {
				t.Errorf("worker identity %d out of range", w)
			}
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("run %d: index %d visited %d times", run, i, v)
			}
		}
	}
}

// Run on a closed (zero-value) pool executes inline as worker 0.
func TestPoolClosedRunsInline(t *testing.T) {
	var p Pool
	sum := 0
	p.Run(5, func(w, i int) {
		if w != 0 {
			t.Errorf("closed pool used worker %d", w)
		}
		sum += i
	})
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
}

// A wave launch on an open pool performs no heap allocation — the property
// the round engine's speculation waves rely on.
func TestPoolRunAllocFree(t *testing.T) {
	var p Pool
	p.Open(2)
	defer p.Close()
	var sink atomic.Int64
	fn := func(w, i int) { sink.Add(int64(i)) }
	p.Run(8, fn) // warm up
	allocs := testing.AllocsPerRun(100, func() { p.Run(8, fn) })
	if allocs > 0 {
		t.Fatalf("Run allocated %.1f times per call, want 0", allocs)
	}
}
