// Package parallel provides the small worker-pool primitive shared by the
// round engine and the experiment harness: a deterministic-output parallel
// for-loop over an index range.
//
// Determinism is the caller's contract: fn(i) must write only to the i-th
// slot of its output and derive any randomness from i (not from shared
// state), so the result is bit-identical regardless of worker count or
// scheduling order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob with one convention shared by
// every layer (engine Config.Workers, experiment RunConfig.Workers, the
// CLI -workers flags): values > 0 are returned as-is, 0 means serial (one
// worker), and negative means "use all CPUs" (runtime.NumCPU).
func Workers(w int) int {
	switch {
	case w > 0:
		return w
	case w < 0:
		return runtime.NumCPU()
	default:
		return 1
	}
}

// For invokes fn(i) for every i in [0, n), fanning the calls across the
// given number of worker goroutines. Indices are handed out dynamically
// (an atomic counter), so unevenly sized work items balance across the
// pool. workers <= 1 (or n <= 1) runs the loop inline on the calling
// goroutine with no synchronization overhead. For returns once every call
// has completed.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker's pool slot exposed: fn(w, i) receives
// the index i to process and the identity w ∈ [0, workers) of the goroutine
// running it. Callers use w to index per-worker state — scratch arenas,
// accumulators — without synchronization, since each slot is owned by
// exactly one goroutine for the duration of the call. The inline
// (workers <= 1) path always passes w = 0.
func ForWorker(n, workers int, fn func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
