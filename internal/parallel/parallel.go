// Package parallel provides the small worker-pool primitive shared by the
// round engine and the experiment harness: a deterministic-output parallel
// for-loop over an index range.
//
// Determinism is the caller's contract: fn(i) must write only to the i-th
// slot of its output and derive any randomness from i (not from shared
// state), so the result is bit-identical regardless of worker count or
// scheduling order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob with one convention shared by
// every layer (engine Config.Workers, experiment RunConfig.Workers, the
// CLI -workers flags): values > 0 are returned as-is, 0 means serial (one
// worker), and negative means "use all CPUs" (runtime.NumCPU).
func Workers(w int) int {
	switch {
	case w > 0:
		return w
	case w < 0:
		return runtime.NumCPU()
	default:
		return 1
	}
}

// For invokes fn(i) for every i in [0, n), fanning the calls across the
// given number of worker goroutines. Indices are handed out dynamically
// (an atomic counter), so unevenly sized work items balance across the
// pool. workers <= 1 (or n <= 1) runs the loop inline on the calling
// goroutine with no synchronization overhead. For returns once every call
// has completed.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker's pool slot exposed: fn(w, i) receives
// the index i to process and the identity w ∈ [0, workers) of the goroutine
// running it. Callers use w to index per-worker state — scratch arenas,
// accumulators — without synchronization, since each slot is owned by
// exactly one goroutine for the duration of the call. The inline
// (workers <= 1) path always passes w = 0.
func ForWorker(n, workers int, fn func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Pool is a persistent team of worker goroutines for spawn-heavy callers:
// where each ForWorker call pays one goroutine spawn and one closure
// allocation per worker, an open Pool serves many small fan-outs with zero
// per-call allocations — the workers park on their wake channels between
// runs. The round engine opens one around a Sequential sweep so hundreds of
// small speculation waves share the same goroutines.
//
// Open, Run, and Close must all be called from the same goroutine. The zero
// value is a closed pool; Run on a closed pool executes inline.
type Pool struct {
	fn   func(w, i int)
	n    int
	next atomic.Int64
	wake []chan struct{}
	wg   sync.WaitGroup
}

// Open spawns workers-1 parked goroutines with identities 1..workers-1 (the
// calling goroutine acts as worker 0 during Run). No-op if the pool is
// already open or workers <= 1.
func (p *Pool) Open(workers int) {
	if len(p.wake) > 0 || workers <= 1 {
		return
	}
	p.wake = make([]chan struct{}, workers-1)
	for i := range p.wake {
		c := make(chan struct{})
		p.wake[i] = c
		w := i + 1
		go func() {
			for range c {
				p.run(w)
				p.wg.Done()
			}
		}()
	}
}

// Close releases the worker goroutines. The pool can be reopened. No-op on
// a closed pool.
func (p *Pool) Close() {
	for _, c := range p.wake {
		close(c)
	}
	p.wake = nil
}

// Run invokes fn(w, i) for every i in [0, n) across the pool's workers plus
// the calling goroutine, with the same contract as ForWorker (dynamic index
// handout, per-slot determinism, returns when every call completed). A
// closed pool, or n <= 1, runs inline as worker 0.
func (p *Pool) Run(n int, fn func(w, i int)) {
	if n <= 1 || len(p.wake) == 0 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.fn, p.n = fn, n
	p.next.Store(0)
	active := len(p.wake)
	if active > n-1 {
		active = n - 1
	}
	p.wg.Add(active)
	for i := 0; i < active; i++ {
		p.wake[i] <- struct{}{}
	}
	p.run(0)
	p.wg.Wait()
	p.fn = nil
}

func (p *Pool) run(w int) {
	for {
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		p.fn(w, i)
	}
}
