// Package stats provides the summary statistics used by the experiment
// harness: means, deviations, percentiles and confidence summaries over
// repeated runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P10, P90       float64
	CoefficientVar float64 // Std/Mean; 0 when Mean is 0
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	if s.Mean != 0 {
		s.CoefficientVar = s.Std / math.Abs(s.Mean)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P10 = Percentile(sorted, 10)
	s.P90 = Percentile(sorted, 90)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample by linear interpolation. It panics if xs is empty or unsorted
// percentile is out of range.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g] cv=%.1f%%",
		s.N, s.Mean, s.Std, s.Min, s.Max, 100*s.CoefficientVar)
}
