package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample std of this classic sample is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("range [%v, %v]", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample should be zero summary")
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 || s.P10 != 3 || s.P90 != 3 {
		t.Errorf("single sample: %+v", s)
	}
	z := Summarize([]float64{0, 0, 0})
	if z.CoefficientVar != 0 {
		t.Error("zero-mean CV should be 0")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Properties: mean within [min, max]; shift invariance of std; scale
// equivariance of mean.
func TestSummaryProperties(t *testing.T) {
	sanitize := func(xs []float64) []float64 {
		out := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				out = append(out, math.Mod(x, 1e6))
			}
		}
		return out
	}
	f := func(raw []float64, shift float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 1
		}
		shift = math.Mod(shift, 1e6)
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		s2 := Summarize(shifted)
		scale := 1 + math.Abs(s.Std)
		return math.Abs(s2.Std-s.Std) < 1e-6*scale &&
			math.Abs(s2.Mean-(s.Mean+shift)) < 1e-6*(1+math.Abs(s.Mean+shift))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2, 3}).String() == "" {
		t.Error("String should render")
	}
}
