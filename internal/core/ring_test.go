package core

import (
	"context"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

func hexNetAndRegion(rows, cols int, pitch, gamma float64) (*wsn.Network, *region.Region, int) {
	pts := wsn.HexLattice(rows, cols, pitch)
	bb := geom.BBoxOf(pts)
	reg := region.Rect(bb.Min.X, bb.Min.Y, bb.Max.X, bb.Max.Y)
	return wsn.New(pts, gamma), reg, wsn.CenterIndex(pts)
}

func TestExpandingRingHopStaircase(t *testing.T) {
	// The paper's Fig. 2 claim: 1 hop for k=1, 2 hops for k=2..4, about 3
	// for k=5..12, on a regular lattice with γ slightly above the pitch.
	net, reg, center := hexNetAndRegion(25, 25, 0.04, 0.05)
	prev := 0
	for k := 1; k <= 12; k++ {
		probe := ExpandingRing(net, reg, center, k, 128, wsn.RingGeometric, 0)
		if probe.Hops < prev {
			t.Errorf("k=%d: hops %d < previous %d (must be non-decreasing)", k, probe.Hops, prev)
		}
		prev = probe.Hops
		if probe.Neighbors <= k {
			t.Errorf("k=%d: only %d neighbors gathered", k, probe.Neighbors)
		}
		if probe.Messages <= 0 {
			t.Errorf("k=%d: no messages charged", k)
		}
		if len(probe.Region) == 0 {
			t.Errorf("k=%d: empty dominating region", k)
		}
	}
	one := ExpandingRing(net, reg, center, 1, 128, wsn.RingGeometric, 0)
	if one.Hops != 1 {
		t.Errorf("k=1 hops = %d, want 1", one.Hops)
	}
	four := ExpandingRing(net, reg, center, 4, 128, wsn.RingGeometric, 0)
	if four.Hops > 2 {
		t.Errorf("k=4 hops = %d, want <= 2", four.Hops)
	}
	twelve := ExpandingRing(net, reg, center, 12, 128, wsn.RingGeometric, 0)
	if twelve.Hops > 4 {
		t.Errorf("k=12 hops = %d, want <= 4", twelve.Hops)
	}
}

// The ring-terminated region must match the dominating region computed from
// ALL nodes — the Lemma 1 exactness property.
func TestExpandingRingExactness(t *testing.T) {
	net, reg, center := hexNetAndRegion(15, 15, 0.05, 0.06)
	all := make([]voronoi.Site, net.Len())
	for i := range all {
		all[i] = voronoi.Site{ID: i, Pos: net.Position(i)}
	}
	for k := 1; k <= 5; k++ {
		probe := ExpandingRing(net, reg, center, k, 256, wsn.RingGeometric, 0)
		global := voronoi.DominatingRegion(all[center], all, k, reg.Pieces())
		got := voronoi.RegionArea(probe.Region)
		want := voronoi.RegionArea(global)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("k=%d: ring region area %v != global %v", k, got, want)
		}
	}
}

func TestExpandingRingCap(t *testing.T) {
	// A sparse 2-node network: the ring for k=2 can never be dominated, so
	// the cap must stop the search.
	pts := []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.8)}
	reg := region.UnitSquareKm()
	net := wsn.New(pts, 0.1)
	probe := ExpandingRing(net, reg, 0, 2, 64, wsn.RingGeometric, 0.5)
	if probe.Hops > 5 {
		t.Errorf("hops = %d, cap 0.5 with gamma 0.1 should stop at 5", probe.Hops)
	}
}

func TestExpandingRingDefaultsArcSamples(t *testing.T) {
	net, reg, center := hexNetAndRegion(9, 9, 0.05, 0.06)
	probe := ExpandingRing(net, reg, center, 1, 0, wsn.RingGeometric, 0)
	if probe.Hops < 1 || len(probe.Region) == 0 {
		t.Errorf("probe with default samples failed: %+v", probe.Hops)
	}
}

func TestSequentialOrderConvergesAndCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Order = Sequential
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 300
	eng, err := New(reg, uniformStart(30, 55), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("sequential run did not converge in %d rounds", res.Rounds)
	}
	// Verify k-coverage via the pointwise definition on the result radii.
	for trial := 0; trial < 200; trial++ {
		v := geom.Pt(float64(trial%20)/20+0.025, float64(trial/20)/10+0.05)
		if !reg.Contains(v) {
			continue
		}
		depth := 0
		for i, p := range res.Positions {
			if p.Dist(v) <= res.Radii[i]+1e-9 {
				depth++
			}
		}
		if depth < 2 {
			t.Fatalf("point %v covered %d < 2 times", v, depth)
		}
	}
}

func TestUpdateOrderString(t *testing.T) {
	if Synchronous.String() != "synchronous" || Sequential.String() != "sequential" {
		t.Error("UpdateOrder strings wrong")
	}
	if UpdateOrder(9).String() == "" {
		t.Error("unknown order should still print")
	}
}
