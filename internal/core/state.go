package core

import (
	"fmt"

	"laacad/internal/region"
	"laacad/internal/snapshot"
	"laacad/internal/wsn"
)

// Checkpoint/resume for the synchronous engine.
//
// The engine's complete mutable state is (positions, round counter, trace,
// convergence flag, message counters) + Config: every random draw comes from
// a stream derived from (Config.Seed, round, node ID), so no generator state
// needs to be captured. A run resumed from a Snapshot therefore replays the
// remaining rounds bit-identically to the uninterrupted run — the PR 1
// determinism contract extended to interrupted runs.
//
// The one non-serializable Config field is the Detector interface: a resumed
// run gets the default angular-gap detector. Runs using a custom detector
// must re-install it on the resumed engine before stepping.

// Snapshot captures the engine's state between rounds as a resumable
// checkpoint. Call it only between Steps (e.g. from an Observer or after Run
// returns); calling it concurrently with a Step would observe a torn round.
func (e *Engine) Snapshot() (*snapshot.State, error) {
	st := snapshot.NewState(snapshot.KindEngine, e.net.Positions())
	st.Round = e.round
	st.Converged = e.converged
	// Exclude finalMsgs: a checkpoint is round-boundary state, and the
	// resumed run performs its own final radius collection. Keeping the
	// interrupted run's partial-result assembly in the count would make the
	// resumed total exceed an uninterrupted run's by one extra collection.
	st.Messages = e.msgBase + e.net.MessageCount() - e.finalMsgs
	st.Trace = traceToState(e.trace)
	st.Config = ConfigToState(e.cfg)
	return st, nil
}

// Resume reconstructs an engine from a checkpoint over reg. The region must
// be the one the original run deployed over (checkpoints record only its
// registered name, not its geometry).
func Resume(reg *region.Region, st *snapshot.State) (*Engine, error) {
	if st.Kind != snapshot.KindEngine {
		return nil, fmt.Errorf("core: cannot resume %q checkpoint with the round engine", st.Kind)
	}
	e, err := New(reg, st.Positions(), ConfigFromState(st.Config))
	if err != nil {
		return nil, err
	}
	e.round = st.Round
	e.converged = st.Converged
	e.trace = traceFromState(st.Trace)
	e.msgBase = st.Messages
	return e, nil
}

// ConfigToState extracts the serializable subset of a Config — the schema
// shared by resumable checkpoints and the scenario wire format.
func ConfigToState(c Config) snapshot.ConfigState {
	return snapshot.ConfigState{
		K:            c.K,
		Alpha:        c.Alpha,
		Epsilon:      c.Epsilon,
		MaxRounds:    c.MaxRounds,
		Mode:         int(c.Mode),
		Order:        int(c.Order),
		Gamma:        c.Gamma,
		RingMode:     int(c.RingMode),
		LossRate:     c.LossRate,
		LossRetries:  c.LossRetries,
		ArcSamples:   c.ArcSamples,
		RingCap:      c.RingCap,
		Seed:         c.Seed,
		Workers:      c.Workers,
		KeepRegions:  c.KeepRegions,
		DisableCache: c.DisableCache,
		DisableBatch: c.DisableBatch,
	}
}

// ConfigFromState rebuilds a Config from its serialized form. The Detector
// is left nil (default).
func ConfigFromState(s snapshot.ConfigState) Config {
	return Config{
		K:            s.K,
		Alpha:        s.Alpha,
		Epsilon:      s.Epsilon,
		MaxRounds:    s.MaxRounds,
		Mode:         Mode(s.Mode),
		Order:        UpdateOrder(s.Order),
		Gamma:        s.Gamma,
		RingMode:     wsn.RingQueryMode(s.RingMode),
		LossRate:     s.LossRate,
		LossRetries:  s.LossRetries,
		ArcSamples:   s.ArcSamples,
		RingCap:      s.RingCap,
		Seed:         s.Seed,
		Workers:      s.Workers,
		KeepRegions:  s.KeepRegions,
		DisableCache: s.DisableCache,
		DisableBatch: s.DisableBatch,
	}
}

func traceToState(trace []RoundStats) []snapshot.RoundState {
	out := make([]snapshot.RoundState, len(trace))
	for i, tr := range trace {
		out[i] = snapshot.RoundState{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
			Messages:        tr.Messages,
		}
	}
	return out
}

func traceFromState(trace []snapshot.RoundState) []RoundStats {
	out := make([]RoundStats, len(trace))
	for i, tr := range trace {
		out[i] = RoundStats{
			Round:           tr.Round,
			MaxCircumradius: tr.MaxCircumradius,
			MinCircumradius: tr.MinCircumradius,
			MaxRhat:         tr.MaxRhat,
			MaxMove:         tr.MaxMove,
			Moved:           tr.Moved,
			Messages:        tr.Messages,
		}
	}
	return out
}
