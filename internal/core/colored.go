package core

import (
	"math"

	"laacad/internal/parallel"
)

// Colored Sequential sweeps.
//
// A Sequential (Gauss–Seidel) round processes nodes in ascending ID order,
// each node seeing every earlier node's committed move. That data dependence
// is real but sparse: node j's computation reads only positions inside its
// exactness ball, so two nodes whose balls cannot reach each other's writes
// are independent — the interference structure is a geometric graph, not a
// chain. The colored sweep exploits that by speculation: at a scan position
// whose cache entry is invalid, it plans a "color class" — a set of upcoming
// dirty nodes that are pairwise non-interfering under predicted radii — and
// computes their outcomes in parallel from the current committed state,
// installing them as speculative cache entries. The serial commit loop then
// proceeds unchanged: it consumes an entry only if no committed move endpoint
// has landed inside the entry's exactness ball since it was computed (the
// standard invalidation predicate), and recomputes serially otherwise.
//
// Correctness therefore never depends on the interference prediction: a
// mispredicted class member is just a wasted speculation, dropped by the
// same machinery that drops stale cross-round entries. A Localized
// speculation runs its search with every charge deferred into the node's wsn
// escrow, so waste is simply voided (see dropEntry) — the public counters
// never saw the cost, and no refund exists anywhere in the system. An entry
// that survives to its node's turn is bit-identical to what the serial sweep
// would compute there — every position its search read is unchanged since it
// ran — so consuming it commits the escrow at exactly the instant the eager
// sweep would have charged: the colored schedule's fixed point, trace and
// message accounting (including any mid-round Stats snapshot) equal the
// one-worker sweep's exactly, for any worker count.

const (
	// waveMinCandidates is the dirty-node count below which planning a wave
	// is not worth its O(n - from) gather; the serial loop handles stragglers.
	waveMinCandidates = 8
	// maxWavesPerRound caps the planning overhead per sweep. Later dirty
	// nodes (conflict cascades past the budget) fall back to serial
	// recomputation at their turn.
	maxWavesPerRound = 8
	// waveCapInit seeds the per-round class-size budget. The first wave of a
	// round is a probe: if its speculations survive (the converging tail),
	// the budget quadruples per wave and the sweep reaches full width within
	// the wave cap; if they mostly die (the active phase, where nearly every
	// commit invalidates downstream), the cutoff below stops speculating
	// having wasted at most about this much work.
	waveCapInit = 64
)

// Disturber marks for planWave's interference test. Only a committed move
// can invalidate an entry, so only predicted movers disturb: a dirty node
// whose last outcome stood still is predicted to stand still again and
// blocks nobody (if it moves after all, the validation machinery catches
// every affected speculation — prediction errors cost work, never
// correctness).
const (
	waveNone       uint8 = iota
	waveDirtyMover       // invalid entry whose stale outcome moved: reach ≈ last move distance
	waveMover            // valid entry with a pending move: endpoints known exactly
)

// speculate plans and executes one speculation wave starting at scan
// position from (whose entry is invalid — the scan node itself is always in
// the class, so the wave always makes progress). Runs only inside a
// Sequential sweep with the cache enabled and workers > 1.
func (e *Engine) speculate(from, round int, isBoundary []bool, workers int) {
	if e.wavesThisRound >= maxWavesPerRound || e.dudWaves >= 2 {
		return
	}
	// Adaptive budget: when this round's committed moves have already killed
	// more than half of what the waves computed (the active phase, where
	// nearly everything moves and Gauss–Seidel is genuinely serial), further
	// speculation is mostly wasted work — stop for the rest of the sweep.
	// While speculations survive, the class-size budget escalates instead,
	// so surviving rounds reach full width. The counters are maintained on
	// the serial path, so either decision is a pure function of the
	// trajectory and the schedule stays deterministic.
	computed := e.counters.SpecComputed - e.waveBaseComputed
	wasted := e.counters.SpecWasted - e.waveBaseWasted
	if computed > 0 {
		if wasted*2 > computed {
			return
		}
		if wasted*4 <= computed {
			e.waveCap *= 4
		}
	}
	n := len(e.cache)
	cands := e.waveCands[:0]
	for j := from; j < n; j++ {
		if !e.cache[j].valid {
			cands = append(cands, j)
		}
	}
	e.waveCands = cands
	if len(cands) < waveMinCandidates {
		// Too few dirty nodes to be worth a wave — and likely to stay that
		// way: candidates only shrink as the scan advances, except for the
		// occasional mid-sweep cascade. Latch it like a dud so a straggler
		// tail doesn't pay this O(n - from) gather at every dirty turn.
		e.dudWaves++
		return
	}
	e.wavesThisRound++
	e.counters.Waves++
	selected := e.planWave(from, cands, workers)
	if len(selected) < 2 {
		// Only the scan node itself survived selection: the interference
		// structure is dense here (everything is a predicted mover), so
		// planning is all cost and no class. Two duds end speculation for
		// the round — the sweep is genuinely serial in this regime.
		e.dudWaves++
		return
	}
	if len(selected) > e.waveCap {
		// A prefix of an independent set is independent, and the scan node
		// is its first element, so truncation keeps both invariants.
		selected = selected[:e.waveCap]
	}
	e.net.Rebuild() // fan-out reads the index concurrently; build it once
	parallel.ForWorker(len(selected), workers, func(w, idx int) {
		e.computeEntry(selected[idx], round, isBoundary, e.pool[w], true)
	})
	e.counters.SpecComputed += uint64(len(selected))
	if e.seqBoundsLive {
		// The live per-cell ρ-bounds must upper-bound every valid entry or
		// later inverse invalidation queries could miss a speculative one.
		for _, j := range selected {
			if c := &e.cache[j]; c.valid {
				e.noteRhoBound(j, c.rho)
			}
		}
	}
}

// planWave selects the wave's color class: the ascending-ID greedy
// independent set of the predicted interference relation over the dirty
// candidates. Candidate j joins unless some predicted mover with a smaller
// ID (at or after the scan position — everything earlier already committed)
// could land a move endpoint inside j's predicted exactness ball before j's
// turn:
//
//   - a cached mover k < j whose pending move endpoints are known exactly:
//     interferes when either endpoint lies within j's hint ball;
//   - a dirty node k < j whose stale outcome moved: its recomputation is
//     predicted to move about as far again, so it interferes when u_k is
//     within j's hint ball inflated by that distance.
//
// Dirty nodes whose stale outcome stood still are predicted to stand still
// and block nobody — in the converging tail most of the dirty set is nodes
// invalidated by a neighbor's move that will recompute to the same fixed
// point, and they must be allowed to share a class or every cluster would
// serialize. Hints are the nodes' last known exactness radii (rhoHint);
// nodes never computed yet fall back to the search's initial radius. The
// selection is a pure function of (positions, cache state, hints), so the
// class — and with it the whole schedule — is deterministic for every
// worker count; the membership test for each candidate is independent of
// the others, so the scan fans out.
func (e *Engine) planWave(from int, cands []int, workers int) []int {
	n := len(e.cache)
	if cap(e.waveMark) < n {
		e.waveMark = make([]uint8, n)
	}
	mark := e.waveMark[:n]
	fallback := e.hintFallback()
	maxReach, maxHint := 0.0, 0.0
	for j := from; j < n; j++ {
		c := &e.cache[j]
		if !c.valid {
			if h := e.hintOf(j, fallback); h > maxHint {
				maxHint = h
			}
		}
		if c.out.moved {
			if c.valid {
				mark[j] = waveMover
			} else {
				mark[j] = waveDirtyMover
			}
			if c.out.moveDist > maxReach {
				maxReach = c.out.moveDist
			}
		} else {
			mark[j] = waveNone
		}
	}
	// Density guard: each candidate's membership test scans a grid window of
	// radius hint+maxReach. When that window covers a constant fraction of
	// the network (mover-heavy rounds with large stale moves), selection
	// costs approach O(candidates × n) — worse than just computing serially.
	// Estimated occupancy-scaled scan size per query, vs the network:
	shape := e.net.GridShape()
	if ncells := shape.NX * shape.NY; ncells > 0 {
		scanned := e.net.CellWindowSize(maxHint+maxReach) * n / ncells
		if scanned*4 >= n {
			for j := from; j < n; j++ {
				mark[j] = waveNone
			}
			return nil
		}
	}
	if cap(e.waveKeep) < len(cands) {
		e.waveKeep = make([]bool, len(cands))
	}
	keep := e.waveKeep[:len(cands)]
	e.net.Rebuild()
	parallel.ForWorker(len(cands), workers, func(w, idx int) {
		j := cands[idx]
		hintJ := e.hintOf(j, fallback)
		s := e.pool[w]
		s.nbrs = e.net.NeighborsWithinBuf(j, hintJ+maxReach, s.nbrs)
		ok := true
		for _, k := range s.nbrs {
			if k >= from && k < j && e.interferes(k, j, hintJ, fallback) {
				ok = false
				break
			}
		}
		keep[idx] = ok
	})
	sel := e.waveSel[:0]
	for idx, j := range cands {
		if keep[idx] {
			sel = append(sel, j)
		}
	}
	if e.waveHook != nil {
		// Observe the class while the disturber marks are still live, so a
		// test can re-evaluate the interference predicate over its members.
		e.waveHook(sel)
	}
	// Reset the marks we set; the next wave re-marks its own window.
	for j := from; j < n; j++ {
		mark[j] = waveNone
	}
	e.waveSel = sel
	return sel
}

// interferes is planWave's pairwise interference predicate: can disturber
// k's activity this sweep plausibly land inside candidate j's predicted
// exactness ball? Mispredictions in either direction are safe — a false
// positive only shrinks the class, a false negative only wastes the
// speculation — so the test can use hints instead of true radii.
func (e *Engine) interferes(k, j int, hintJ, fallback float64) bool {
	uj := e.net.Position(j)
	switch e.waveMark[k] {
	case waveDirtyMover:
		reach := hintJ + e.cache[k].out.moveDist
		return e.net.Position(k).Dist2(uj) <= reach*reach
	case waveMover:
		c := &e.cache[k]
		return e.net.Position(k).Dist2(uj) <= hintJ*hintJ ||
			c.out.next.Dist2(uj) <= hintJ*hintJ
	}
	return false
}

// hintOf returns node j's predicted exactness radius.
func (e *Engine) hintOf(j int, fallback float64) float64 {
	if h := e.rhoHint[j]; h > 0 {
		return h
	}
	return fallback
}

// hintFallback is the predicted radius for nodes that have never been
// computed: the expanding search's own initial radius (Centralized) or the
// first ring (Localized).
func (e *Engine) hintFallback() float64 {
	if e.cfg.Mode == Localized {
		return e.cfg.Gamma
	}
	n := e.net.Len()
	if n == 0 {
		return 0
	}
	return e.reg.BBox().Diagonal() / math.Sqrt(float64(n)) * math.Sqrt(float64(4*e.cfg.K+4))
}
