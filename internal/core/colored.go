package core

import (
	"math"
	"slices"
)

// Level-scheduled colored Sequential sweeps.
//
// A Sequential (Gauss–Seidel) round processes nodes in ascending ID order,
// each node seeing every earlier node's committed move. That data dependence
// is real but sparse: node j's computation reads only positions inside its
// exactness ball, so two nodes whose balls cannot reach each other's writes
// are independent — the interference structure is a geometric graph, not a
// chain. The colored sweep exploits that by speculation: upcoming dirty
// nodes are computed in parallel from the current committed state and
// installed as speculative cache entries; the serial commit loop then
// proceeds unchanged, consuming an entry only if no committed move endpoint
// has landed inside the entry's exactness ball since it was computed (the
// standard invalidation predicate) and recomputing serially otherwise.
//
// Scheduling is a level schedule over the predicted interference DAG, built
// once per round (planLevelSchedule): every dirty node j gets a trigger —
// one past the largest-ID predicted mover that could disturb it — and the
// (trigger, ID) pairs, packed into int64 keys, are sorted into the round's
// execution queue. As the serial scan passes position i, every queued node
// whose trigger is ≤ i has all its predicted disturbers committed, so the
// ready prefix of the queue forms a wave: pairwise non-interfering under the
// prediction (if mover a < b disturbs b, then trigger(b) > a ≥ i, so b is
// not yet ready) and safe to compute in parallel (speculateAt). Where the
// predecessor heuristic's fixed wave budget made mover-heavy rounds fall
// back to serial after a few probes, the level schedule keeps waves flowing
// layer by layer — a chain of disturbances becomes one wave per Kahn level,
// not one serial turn per node.
//
// Correctness never depends on the interference prediction: a mispredicted
// wave member is just a wasted speculation, dropped by the same machinery
// that drops stale cross-round entries. A Localized speculation runs its
// search with every charge deferred into the node's wsn escrow, so waste is
// simply voided (see dropEntry) — the public counters never saw the cost,
// and no refund exists anywhere in the system. An entry that survives to its
// node's turn is bit-identical to what the serial sweep would compute there —
// every position its search read is unchanged since it ran — so consuming it
// commits the escrow at exactly the instant the eager sweep would have
// charged: the schedule's fixed point, trace and message accounting
// (including any mid-round Stats snapshot) equal the one-worker sweep's
// exactly, for any worker count.

const (
	// waveMinCandidates is the dirty-node count below which planning a
	// schedule is not worth its O(n) gather; the serial loop handles
	// stragglers.
	waveMinCandidates = 8
	// waveCapInit seeds the per-wave width budget. The first wave of a round
	// is a probe: if its speculations survive (the converging tail), the
	// budget quadruples per wave and the sweep reaches full width within a
	// few launches; if they mostly die (the active phase, where nearly every
	// commit invalidates downstream), the waste cutoff stops speculating
	// having wasted at most about this much work.
	waveCapInit = 64
)

// Disturber marks for the interference test. Only a committed move can
// invalidate an entry, so only predicted movers disturb: a dirty node whose
// last outcome stood still is predicted to stand still again and blocks
// nobody (if it moves after all, the validation machinery catches every
// affected speculation — prediction errors cost work, never correctness).
const (
	waveNone       uint8 = iota
	waveDirtyMover       // invalid entry whose stale outcome moved: reach ≈ last move distance
	waveMover            // valid entry with a pending move: endpoints known exactly
)

// planLevelSchedule builds the round's speculation schedule from the dirty
// set: for every dirty node j, the trigger — one past the largest-ID
// predicted mover k < j that could land a move endpoint inside j's predicted
// exactness ball before j's turn — and its Kahn level in the predicted
// interference DAG (counters only; execution is trigger-driven). The packed
// (trigger, ID) keys are sorted into the execution queue for speculateAt.
//
// Disturbers are:
//
//   - a cached mover k whose pending move endpoints are known exactly:
//     interferes when either endpoint lies within j's hint ball;
//   - a dirty node k whose stale outcome moved: its recomputation is
//     predicted to move about as far again, so it interferes when u_k is
//     within j's hint ball inflated by that distance.
//
// Dirty nodes whose stale outcome stood still are predicted to stand still
// and block nobody — in the converging tail most of the dirty set is nodes
// invalidated by a neighbor's move that will recompute to the same fixed
// point, and they must be allowed to share a wave or every cluster would
// serialize. Hints are the nodes' last known exactness radii (rhoHint);
// nodes never computed yet fall back to the search's initial radius. The
// plan runs on the coordinator in one ascending-ID pass (each node's level
// needs its dirty predecessors' levels) and is a pure function of
// (positions, cache state, hints), so the schedule — and with it the whole
// sweep — is deterministic for every worker count.
func (e *Engine) planLevelSchedule(workers int) {
	e.schedKeys = e.schedKeys[:0]
	e.schedPos = 0
	e.schedWidthCap = max(waveCapInit, 8*workers)
	n := len(e.cache)
	cands := e.waveCands[:0]
	for j := 0; j < n; j++ {
		if !e.cache[j].valid {
			cands = append(cands, j)
		}
	}
	e.waveCands = cands
	if len(cands) < waveMinCandidates {
		return
	}
	if cap(e.waveMark) < n {
		e.waveMark = make([]uint8, n)
	}
	mark := e.waveMark[:n]
	fallback := e.hintFallback()
	maxReach, maxHint := 0.0, 0.0
	for j := 0; j < n; j++ {
		c := &e.cache[j]
		if !c.valid {
			if h := e.hintOf(j, fallback); h > maxHint {
				maxHint = h
			}
		}
		if c.out.moved {
			if c.valid {
				mark[j] = waveMover
			} else {
				mark[j] = waveDirtyMover
			}
			if c.out.moveDist > maxReach {
				maxReach = c.out.moveDist
			}
		} else {
			mark[j] = waveNone
		}
	}
	// Density guard: each candidate's trigger scan covers a grid window of
	// radius hint+maxReach. When that window covers a constant fraction of
	// the network (large stale moves over a crowded deployment), planning
	// costs approach O(candidates × n) — worse than just computing serially.
	// Estimated occupancy-scaled scan size per query, vs the network:
	shape := e.net.GridShape()
	if ncells := shape.NX * shape.NY; ncells > 0 {
		scanned := e.net.CellWindowSize(maxHint+maxReach) * n / ncells
		if scanned*4 >= n {
			for j := 0; j < n; j++ {
				mark[j] = waveNone
			}
			return
		}
	}
	if cap(e.schedLevel) < n {
		e.schedLevel = make([]int32, n)
	}
	level := e.schedLevel[:n]
	e.net.Rebuild()
	s := e.pool[0]
	var maxLevel int32
	for _, j := range cands {
		hintJ := e.hintOf(j, fallback)
		s.nbrs = e.net.NeighborsWithinBuf(j, hintJ+maxReach, s.nbrs)
		trig := 0
		var lvl int32
		for _, k := range s.nbrs {
			if k >= j || !e.interferes(k, j, hintJ, fallback) {
				continue
			}
			if k+1 > trig {
				trig = k + 1
			}
			switch mark[k] {
			case waveDirtyMover:
				// k is a candidate with a smaller ID, so level[k] is
				// already this round's value.
				if lk := level[k] + 1; lk > lvl {
					lvl = lk
				}
			case waveMover:
				// Commits at its own turn from the cache: depth 1, no
				// recomputation chain behind it.
				if lvl < 1 {
					lvl = 1
				}
			}
		}
		level[j] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
		e.schedKeys = append(e.schedKeys, int64(trig)<<32|int64(j))
	}
	slices.Sort(e.schedKeys)
	e.counters.Levels += uint64(maxLevel) + 1
	if e.schedHook != nil {
		// Observe the plan while the disturber marks are still live, so a
		// test can re-evaluate the interference predicate over its members.
		e.schedHook(e.schedKeys)
	}
	for j := 0; j < n; j++ {
		mark[j] = waveNone
	}
	e.schedOn = true
}

// speculateAt pops and executes the wave that is ready at scan position i:
// the queue prefix whose triggers the scan has passed, truncated to the
// adaptive width cap. Runs only inside a Sequential sweep with the cache
// enabled, workers > 1 and a live schedule (schedOn); multi-member waves
// fan out over the engine's open wavePool.
//
// Pairwise independence of the popped wave holds by construction: for wave
// members a < b, a predicted disturbance of b by a implies trigger(b) ≥ a+1,
// and a being popped at scan i implies a ≥ i (stale entries are discarded),
// so trigger(b) > i and b stays queued. Entries the scan has passed (id < i,
// recomputed serially at their turn) and entries somehow already valid are
// dropped on pop — speculating them could overwrite committed state or leak
// an escrow.
func (e *Engine) speculateAt(i, round int, isBoundary []bool) {
	if e.schedPos >= len(e.schedKeys) || int(e.schedKeys[e.schedPos]>>32) > i {
		return
	}
	// Adaptive budget: when this round's committed moves have already killed
	// more than half of what the waves computed (nearly everything moving
	// unpredictably — genuinely serial), further speculation is mostly
	// wasted work: stop for the rest of the sweep. While speculations
	// survive, the width budget escalates instead, so surviving rounds reach
	// full width. The counters are maintained on the serial path, so either
	// decision is a pure function of the trajectory and the schedule stays
	// deterministic.
	computed := e.counters.SpecComputed - e.waveBaseComputed
	wasted := e.counters.SpecWasted - e.waveBaseWasted
	if computed > 0 {
		if wasted*2 > computed {
			e.schedOn = false
			return
		}
		if wasted*4 <= computed && e.schedWidthCap < len(e.cache) {
			e.schedWidthCap *= 4
		}
	}
	sel := e.waveSel[:0]
	for e.schedPos < len(e.schedKeys) && len(sel) < e.schedWidthCap {
		key := e.schedKeys[e.schedPos]
		if int(key>>32) > i {
			break
		}
		e.schedPos++
		j := int(key & 0xffffffff)
		if j < i || e.cache[j].valid {
			continue
		}
		sel = append(sel, j)
	}
	e.waveSel = sel
	if len(sel) == 0 {
		return
	}
	e.counters.Waves++
	e.counters.BatchCalls++
	e.counters.BatchSizeHist[batchSizeBucket(len(sel))]++
	if w := uint64(len(sel)); w > e.counters.LevelWidthMax {
		e.counters.LevelWidthMax = w
	}
	if e.waveHook != nil {
		e.waveHook(i, sel)
	}
	if len(sel) == 1 {
		e.computeEntry(sel[0], round, isBoundary, e.pool[0], true)
	} else {
		e.net.Rebuild() // fan-out reads the index concurrently; build it once
		if e.waveFn == nil {
			e.waveFn = func(w, idx int) {
				e.computeEntry(e.waveSel[idx], e.waveRound, e.waveBoundary, e.pool[w], true)
			}
		}
		e.waveRound, e.waveBoundary = round, isBoundary
		e.wavePool.Run(len(sel), e.waveFn)
	}
	e.counters.SpecComputed += uint64(len(sel))
	if e.seqBoundsLive {
		// The live per-cell ρ-bounds must upper-bound every valid entry or
		// later inverse invalidation queries could miss a speculative one.
		for _, j := range sel {
			if c := &e.cache[j]; c.valid {
				e.noteRhoBound(j, c.rho)
			}
		}
	}
}

// interferes is the pairwise interference predicate: can disturber k's
// activity this sweep plausibly land inside candidate j's predicted
// exactness ball? Mispredictions in either direction are safe — a false
// positive only delays j's trigger, a false negative only wastes the
// speculation — so the test can use hints instead of true radii.
func (e *Engine) interferes(k, j int, hintJ, fallback float64) bool {
	uj := e.net.Position(j)
	switch e.waveMark[k] {
	case waveDirtyMover:
		reach := hintJ + e.cache[k].out.moveDist
		return e.net.Position(k).Dist2(uj) <= reach*reach
	case waveMover:
		c := &e.cache[k]
		return e.net.Position(k).Dist2(uj) <= hintJ*hintJ ||
			c.out.next.Dist2(uj) <= hintJ*hintJ
	}
	return false
}

// hintOf returns node j's predicted exactness radius.
func (e *Engine) hintOf(j int, fallback float64) float64 {
	if h := e.rhoHint[j]; h > 0 {
		return h
	}
	return fallback
}

// hintFallback is the predicted radius for nodes that have never been
// computed: the expanding search's own initial radius (Centralized) or the
// first ring (Localized).
func (e *Engine) hintFallback() float64 {
	if e.cfg.Mode == Localized {
		return e.cfg.Gamma
	}
	n := e.net.Len()
	if n == 0 {
		return 0
	}
	return e.reg.BBox().Diagonal() / math.Sqrt(float64(n)) * math.Sqrt(float64(4*e.cfg.K+4))
}
