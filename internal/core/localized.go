package core

import (
	"math"
	"math/rand"

	"laacad/internal/geom"
	"laacad/internal/parallel"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// localizedRegions computes every node's dominating region with Algorithm 2:
// an expanding-ring neighbor search in increments of the transmission range
// γ, stopped once the circle of radius ρ/2 around the node is entirely
// non-dominated (every in-region sample already has ≥ k closer nodes).
//
// Correctness (Lemma 1 and the star-shape argument): the set where fewer
// than k others are closer is star-shaped about u_i — if a point v has ≥ k
// closer nodes, so does every point on the ray from u_i beyond v, because
// each "closer than u_i" half-plane is convex and excludes u_i. Hence a
// fully dominated ρ/2 circle implies the true dominating region lies inside
// the ρ/2 disk, where the local computation is exact: any node beating u_i
// at a point within ρ/2 of u_i must itself lie within ρ of u_i.
//
// Boundary nodes (per the configured detector) restrict the domination check
// to the portion of the circle inside the network's coverage and close their
// region with the search ring, which is what pushes them outward during the
// expanding phase (Fig. 3 of the paper).
func (e *Engine) localizedRegions() [][]geom.Polygon {
	n := e.net.Len()
	out := make([][]geom.Polygon, n)
	isBoundary := e.detector.Boundary(e.net)
	e.net.Rebuild()
	// Negative round tag: a domain separate from every Step round, so an
	// inspection fan-out (DebugRegions, Finalize) never replays the loss
	// draws the next Step is about to make.
	round := -(e.round + 1)
	workers := parallel.Workers(e.cfg.Workers)
	e.ensurePool(workers)
	batch := e.batchOn()
	parallel.ForWorker(n, workers, func(w, i int) {
		if batch {
			refs, _ := e.localizedRegionRefs(i, isBoundary[i], e.lossRNG(round, i), e.pool[w])
			out[i] = voronoi.CompactRefs(&e.pool[w].vor.Slab, refs)
			return
		}
		polys, _ := e.localizedRegionOf(i, isBoundary[i], e.lossRNG(round, i), e.pool[w])
		out[i] = voronoi.CompactRegion(polys)
	})
	return out
}

// lossRNG returns node i's private message-loss stream for the given round,
// or nil when loss sampling is off — the search consumes no randomness then,
// so skipping the generator allocation is invisible to trajectories.
func (e *Engine) lossRNG(round, i int) *rand.Rand {
	if e.cfg.LossRate <= 0 {
		return nil
	}
	return nodeRNG(e.cfg.Seed, round, i)
}

// localizedRegionOf runs Algorithm 2 for node i. rng drives message-loss
// sampling when LossRate > 0; it must be the node's private stream so
// parallel fan-outs stay deterministic. The geometry runs on s's kernel
// arena: the returned polygons are valid only until the next region
// computation on s (compact them to keep them).
//
// The second return value is the search's invalidation radius: the whole
// computation — every ring probe, the domination sampling, the coverage
// check and the region construction — read only positions within that
// distance of u_i, so the result (and its exact message cost) is
// reproducible bit for bit until some position inside that ball changes.
// For geometric rings that radius is the final ρ; hop-limited rings flood
// ⌈ρ/γ⌉ hops, whose reachable set can depend on relays up to ⌈ρ/γ⌉·γ out.
func (e *Engine) localizedRegionOf(i int, isBoundary bool, rng *rand.Rand, s *Scratch) ([]geom.Polygon, float64) {
	ui := e.net.Position(i)
	nbrIDs, rho, clipToRing, invRad := e.localizedSearch(i, isBoundary, rng, s)
	s.sites = s.sites[:0]
	for _, j := range nbrIDs {
		s.sites = append(s.sites, voronoi.Site{ID: j, Pos: e.net.Position(j)})
	}
	polys := voronoi.DominatingRegionScratch(voronoi.Site{ID: i, Pos: ui}, s.sites, e.cfg.K, e.reg.Pieces(), &s.vor)
	if clipToRing {
		polys = clipToDisk(polys, geom.Circle{Center: ui, R: rho / 2}, s)
	}
	return polys, invRad
}

// localizedSearch runs the expanding-ring phase of Algorithm 2 for node i —
// every message the node sends is charged here — and returns the gathered
// neighbor IDs, the final ring radius ρ, whether the region must be closed
// with the ρ/2 ring, and the search's invalidation radius. It is shared by
// the scalar and batch region assemblies, so the two paths are message-
// identical by construction.
func (e *Engine) localizedSearch(i int, isBoundary bool, rng *rand.Rand, s *Scratch) ([]int, float64, bool, float64) {
	gamma := e.cfg.Gamma
	rho := 0.0
	var nbrIDs []int
	clipToRing := isBoundary
	query := func(radius float64) []int {
		if e.cfg.LossRate > 0 {
			return e.net.RingQueryLossy(i, radius, wsn.LossyRingConfig{
				LossRate: e.cfg.LossRate,
				Retries:  e.cfg.LossRetries,
				Mode:     e.cfg.RingMode,
			}, rng)
		}
		return e.net.RingQuery(i, radius, e.cfg.RingMode)
	}
	for {
		rho += gamma
		if rho >= e.cfg.RingCap {
			rho = e.cfg.RingCap
			nbrIDs = query(rho)
			clipToRing = true
			break
		}
		nbrIDs = query(rho)
		dominated, sampled := e.circleDominated(i, nbrIDs, rho/2, isBoundary, s)
		if dominated {
			if sampled == 0 {
				// The whole check circle fell outside the region (or the
				// covered area): the ring bounds what we know, so close the
				// region with it.
				clipToRing = true
			}
			break
		}
	}
	invRad := rho
	if e.cfg.RingMode == wsn.RingHopLimited {
		invRad = math.Ceil(rho/gamma) * gamma
	}
	if invRad < gamma {
		// Possible only when RingCap < γ clamps the very first probe. The
		// cached entry's boundary flag reads the full γ-ball (the PerNode
		// locality contract), so the invalidation ball must cover it.
		invRad = gamma
	}
	return nbrIDs, rho, clipToRing, invRad
}

// circleDominated implements lines 5–8 of Algorithm 2: it samples the circle
// of radius r around node i and reports whether every valid sample already
// has at least k closer nodes among nbrIDs. Samples outside the region are
// always skipped (the region boundary naturally bounds dominating regions);
// for boundary nodes, samples outside the network's covered area are skipped
// as well. The second return value is the number of samples actually
// checked.
func (e *Engine) circleDominated(i int, nbrIDs []int, r float64, isBoundary bool, s *Scratch) (bool, int) {
	ui := e.net.Position(i)
	k := e.cfg.K
	sampled := 0
	// A small phase offset keeps samples off axis-aligned region boundaries.
	s.ring = geom.AppendCirclePoints(s.ring[:0], geom.Circle{Center: ui, R: r}, e.cfg.ArcSamples, 1e-3)
	for _, v := range s.ring {
		if !e.reg.Contains(v) {
			continue
		}
		if isBoundary && !e.covered(v, i, nbrIDs) {
			continue
		}
		sampled++
		closer := 0
		d2 := ui.Dist2(v)
		for _, j := range nbrIDs {
			if e.net.Position(j).Dist2(v) < d2 {
				closer++
				if closer >= k {
					break
				}
			}
		}
		if closer < k {
			return false, sampled
		}
	}
	return true, sampled
}

// covered reports whether v lies in the network's communication-coverage
// area as known to node i: within γ of the node itself or of any gathered
// neighbor. This approximates the coverage boundary (the green curve in the
// paper's Fig. 3) from purely local information.
func (e *Engine) covered(v geom.Point, i int, nbrIDs []int) bool {
	g2 := e.cfg.Gamma * e.cfg.Gamma
	if e.net.Position(i).Dist2(v) <= g2 {
		return true
	}
	for _, j := range nbrIDs {
		if e.net.Position(j).Dist2(v) <= g2 {
			return true
		}
	}
	return false
}

// clipToDisk clips polygons to an inscribed 48-gon of the disk — the search
// ring closing a boundary node's dominating region — on s's kernel arena.
func clipToDisk(polys []geom.Polygon, disk geom.Circle, s *Scratch) []geom.Polygon {
	if disk.R <= 0 {
		return nil
	}
	s.ring = geom.AppendCirclePoints(s.ring[:0], disk, 48, math.Pi/48)
	return s.vor.ClipToConvex(polys, geom.Polygon(s.ring))
}
