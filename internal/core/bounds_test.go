package core

import (
	"math/rand"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/wsn"
)

// Region-aware initial grid bounds: the engine seeds the spatial index with
// reg.BBox(), so a corner-start deployment that grows its position bounding
// box every round during the expansion phase never exits the grid bounds —
// the index absorbs every move incrementally and performs no rebuild after
// the initial build.
func TestRegionBoundsHintAvoidsExpansionRebuilds(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceCorner(reg, 100, 0.1, rand.New(rand.NewSource(5)))
	cfg := DefaultConfig(2)
	cfg.Order = Sequential // per-node incremental writes (no bulk-path rebuilds)
	cfg.Epsilon = 1e-4
	cfg.MaxRounds = 25
	cfg.Seed = 5
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step() // builds the index once
	base := eng.Network().Rebuilds()
	for r := 0; r < 20; r++ {
		if st, done := eng.Step(); done {
			t.Fatalf("converged at round %d; expansion phase should outlast the window", st.Round)
		}
	}
	if got := eng.Network().Rebuilds(); got != base {
		t.Errorf("expansion rounds forced %d grid rebuilds, want 0 (region-seeded bounds)", got-base)
	}
	if eng.Network().IncrementalMoves() == 0 {
		t.Error("no incremental index updates; moves did not go through the in-place path")
	}
}

// The out-of-band localization satellite: one external SetPosition between
// rounds of a converged large deployment invalidates only the entries whose
// exactness ball touches the changed cells — not the whole cache — and the
// engine records the local flush. Wholesale events (node removal, which
// renumbers) still fall back to the global flush.
func TestExternalWriteInvalidatesLocally(t *testing.T) {
	n := 2500
	start, pitch := wsn.UnitLattice(n, 0)
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = pitch / 10
	cfg.Seed = 9
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	converged := false
	for r := 0; r < 50 && !converged; r++ {
		_, converged = eng.Step()
	}
	if !converged {
		t.Fatal("lattice deployment did not converge; cannot measure locality")
	}

	// Teleport one node across the region behind the engine's back.
	eng.Network().SetPosition(7, geom.Pt(0.93, 0.91))
	hitsBefore := eng.CacheCounters().CacheHits
	eng.Step()
	c := eng.CacheCounters()
	if c.LocalFlushes != 1 {
		t.Fatalf("external write was not absorbed locally: %d local flushes", c.LocalFlushes)
	}
	// Locality: almost every entry must have survived (the write disturbs
	// two neighborhoods out of n nodes). Served-from-cache counts survivors.
	hits := c.CacheHits - hitsBefore
	if hits < uint64(n)*9/10 {
		t.Errorf("only %d/%d outcomes survived the external write; invalidation was not local", hits, n)
	}
	if hits == uint64(n) {
		t.Error("every entry survived; the rewritten neighborhoods were not invalidated")
	}

	// Renumbering keeps the wholesale path: RemoveNode drops the cache and
	// the next step must not count another local flush.
	if err := eng.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	eng.Step()
	if got := eng.CacheCounters().LocalFlushes; got != 1 {
		t.Errorf("renumbering was treated as a local flush (%d total)", got)
	}
}

// The locally-invalidated engine must still be bit-identical to an eager
// engine subjected to the same external-write schedule — the existing
// equivalence test covers small n; this pins the large-n diff path.
func TestExternalWriteLocalFlushMatchesEager(t *testing.T) {
	n := 900
	start, pitch := wsn.UnitLattice(n, 8)
	reg := region.UnitSquareKm()
	run := func(disable bool) ([]RoundStats, *Result) {
		cfg := DefaultConfig(2)
		cfg.Epsilon = pitch / 20
		cfg.Seed = 3
		cfg.DisableCache = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 12; r++ {
			if r == 4 {
				eng.Network().SetPosition(11, geom.Pt(0.52, 0.48))
			}
			if r == 8 {
				eng.Network().SetPosition(n-5, geom.Pt(0.05, 0.93))
			}
			eng.Step()
		}
		res, err := eng.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Trace(), res
	}
	eagerTrace, eagerRes := run(true)
	cachedTrace, cachedRes := run(false)
	assertIdentical(t, "local-flush", eagerTrace, cachedTrace, eagerRes, cachedRes)
}
