// Package core implements the LAACAD deployment algorithm (Algorithm 1 of
// the paper): a synchronous round loop in which every node computes its
// k-order-Voronoi dominating region, moves a step α toward the region's
// Chebyshev center, and stops when within ε of it; on termination each node
// sets its sensing range to the circumradius of its dominating region.
//
// Two dominating-region engines are provided:
//
//   - Centralized: each node's region is computed from global knowledge of
//     all positions (with an internal expanding-radius shortcut that is
//     exact — see dominatingRegionAuto). This matches the idealized
//     algorithm analyzed by the paper's proofs.
//
//   - Localized: Algorithm 2 — each node discovers neighbors with an
//     expanding-ring search over the WSN substrate in increments of the
//     transmission range γ, stops expanding once the circle of radius ρ/2
//     around it is fully non-dominated, and computes the region from local
//     information only. Message costs are accounted. Boundary nodes (per a
//     pluggable detector) restrict the domination check to the covered part
//     of the circle and close their region with the search ring.
package core

import (
	"fmt"
	"math"

	"laacad/internal/boundary"
	"laacad/internal/wsn"
)

// Mode selects the dominating-region engine.
type Mode int

const (
	// Centralized computes dominating regions from global position
	// knowledge (the paper's idealized iteration; default).
	Centralized Mode = iota
	// Localized runs Algorithm 2 over the WSN substrate with message
	// accounting.
	Localized
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Centralized:
		return "centralized"
	case Localized:
		return "localized"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// UpdateOrder selects how node moves are applied within a round.
type UpdateOrder int

const (
	// Synchronous applies all moves simultaneously at the end of the round —
	// the idealized lock-step iteration.
	Synchronous UpdateOrder = iota
	// Sequential applies each node's move immediately, so later nodes in the
	// round see earlier nodes' new positions. This models the paper's
	// deployment more closely (each node acts on its own periodic τ-clock,
	// so updates interleave rather than align), and like Gauss–Seidel
	// iterations it can settle into different — often tighter — local optima
	// than the synchronous sweep.
	Sequential
)

// String implements fmt.Stringer.
func (u UpdateOrder) String() string {
	switch u {
	case Synchronous:
		return "synchronous"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("UpdateOrder(%d)", int(u))
	}
}

// Config parameterizes a LAACAD run. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// K is the coverage order (k ≥ 1).
	K int
	// Alpha is the motion step size in (0, 1]. The paper proves convergence
	// for the whole range; smaller values move nodes more smoothly.
	Alpha float64
	// Epsilon is the stopping tolerance: a node stands still once its
	// distance to the Chebyshev center of its dominating region is ≤ ε.
	Epsilon float64
	// MaxRounds caps the number of rounds (safety net; the algorithm
	// normally converges well before).
	MaxRounds int
	// Mode selects centralized or localized region computation.
	Mode Mode
	// Order selects synchronous (lock-step) or sequential (interleaved)
	// application of node moves within a round.
	Order UpdateOrder
	// Gamma is the transmission range γ (required in Localized mode; also
	// used by connectivity checks). Units match the region coordinates.
	Gamma float64
	// RingMode selects how the expanding-ring query discovers nodes in
	// Localized mode (geometric ideal vs. hop-limited flooding).
	RingMode wsn.RingQueryMode
	// LossRate, if positive, makes every link-level transmission of the
	// expanding-ring search fail independently with this probability
	// (Localized mode only). Lost replies are retried up to LossRetries
	// times; neighbors that stay silent are simply unknown that round.
	LossRate float64
	// LossRetries is the number of query retries under loss (default 2).
	LossRetries int
	// ArcSamples is the number of sample points on the ρ/2 circle used by
	// the Algorithm 2 domination check (line 5). Zero means 64.
	ArcSamples int
	// RingCap bounds the expanding-ring radius. Zero means the region
	// bounding-box diagonal plus γ (effectively global).
	RingCap float64
	// Detector flags boundary nodes in Localized mode. Nil means the
	// angular-gap detector with its default threshold.
	Detector boundary.Detector
	// Seed drives Localized-mode message-loss sampling (the one remaining
	// randomized component; Chebyshev centers are computed by a fully
	// deterministic Welzl that needs no seed).
	Seed int64
	// Workers is the number of goroutines fanning the per-node dominating-
	// region computation of each round (and of Finalize / DebugRegions)
	// across CPUs. 0 or 1 runs serially; negative means runtime.NumCPU.
	// Results are bit-identical for every worker count: each node's
	// randomness is an independent stream derived from (Seed, round,
	// node ID), never a shared sequential source, so scheduling order
	// cannot leak into the output. Synchronous rounds fan out directly;
	// Sequential (Gauss–Seidel) rounds parallelize via the colored sweep —
	// speculation waves over provably independent nodes, validated by the
	// cache's invalidation machinery — so they too match the one-worker
	// sweep bit for bit (with the cache disabled the sweep stays serial).
	Workers int
	// KeepRegions retains every node's final dominating region in the
	// Result (costs memory; useful for rendering and debugging).
	KeepRegions bool
	// DisableCache turns off the incremental dirty-set: every round
	// recomputes every node instead of reusing outcomes whose exactness
	// neighborhood is unchanged. The cache is semantically invisible —
	// trajectories, traces, results AND message accounting are bit-identical
	// either way (asserted by the equivalence suites) — so this knob exists
	// for benchmarking the eager engine and as a belt-and-braces escape
	// hatch. Localized entries record their search's link-level message
	// cost and every reuse re-charges it, keeping Result.Messages exactly
	// faithful to the protocol; under message loss (LossRate > 0) Localized
	// rounds never cache, since loss draws are per-round randomness.
	DisableCache bool
	// DisableBatch turns off the structure-of-arrays batch geometry kernel
	// and routes every dominating-region computation through the scalar
	// clip pipeline instead. The two kernels are bit-identical by contract
	// (the batch walk routes every arithmetic step through the same geom
	// functions in the same order; the equivalence suites gate them against
	// each other), so this knob exists for benchmarking the scalar oracle
	// and as an escape hatch.
	DisableBatch bool
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: step size 0.5 and a stopping tolerance appropriate for a
// region with unit-scale sides (5·10⁻⁴ ≈ half a meter on the paper's 1 km²
// area). Scale Epsilon and Gamma along with your region's units.
func DefaultConfig(k int) Config {
	return Config{
		K:          k,
		Alpha:      0.5,
		Epsilon:    5e-4,
		MaxRounds:  500,
		Mode:       Centralized,
		Gamma:      0.15,
		ArcSamples: 64,
	}
}

// validate normalizes defaults and rejects invalid settings.
func (c *Config) validate(n int) error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	}
	if n < c.K {
		return fmt.Errorf("core: need at least K=%d nodes, got %d", c.K, n)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: Alpha must be in (0, 1], got %v", c.Alpha)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("core: Epsilon must be positive, got %v", c.Epsilon)
	}
	if c.MaxRounds < 1 {
		return fmt.Errorf("core: MaxRounds must be >= 1, got %d", c.MaxRounds)
	}
	if c.Mode == Localized && c.Gamma <= 0 {
		return fmt.Errorf("core: Localized mode requires positive Gamma, got %v", c.Gamma)
	}
	if c.Mode != Localized && c.Mode != Centralized {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("core: LossRate must be in [0, 1), got %v", c.LossRate)
	}
	if c.LossRetries == 0 {
		c.LossRetries = 2
	}
	if c.ArcSamples == 0 {
		c.ArcSamples = 64
	}
	if c.ArcSamples < 8 {
		return fmt.Errorf("core: ArcSamples must be >= 8, got %d", c.ArcSamples)
	}
	if math.IsNaN(c.Epsilon) || math.IsNaN(c.Alpha) {
		return fmt.Errorf("core: NaN parameter")
	}
	// Workers is deliberately not normalized here: the -1 "all CPUs"
	// sentinel must survive in the Config so a recorded run replays
	// portably across machines with different core counts; the engine
	// resolves it per fan-out via parallel.Workers.
	return nil
}
