package core

import (
	"fmt"
	"math/rand"

	"laacad/internal/boundary"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Stepper is the shard-steppable extraction of the round engine: the per-node
// computation of Engine.Step — dominating region, Chebyshev center, motion
// rule, Localized message accounting — exposed over a caller-owned
// wsn.Network, with the round number, the node's global identity and the
// warm-start hint made explicit instead of read from engine state.
//
// The sharded engine (internal/shard) gives each shard a Stepper over a local
// network holding only the shard's window of the deployment. Because every
// arithmetic step routes through exactly the code the shared-memory engine
// runs — same kernels, same search loops, same accounting — a locally
// computed outcome whose read ball lies inside the window is bitwise the
// outcome the global engine would have produced (see StepOutcome.ReadRad for
// the trust radius).
type Stepper struct {
	eng *Engine
}

// NewStepper validates cfg against the global node count n — applying exactly
// the defaults Engine's constructor would (RingCap, detector, loss retries,
// arc samples) — and returns a stepper with no network attached yet. The
// normalized configuration is readable via Config.
func NewStepper(reg *region.Region, n int, cfg Config) (*Stepper, error) {
	if reg == nil {
		return nil, fmt.Errorf("core: nil region")
	}
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if cfg.RingCap == 0 {
		cfg.RingCap = reg.BBox().Diagonal() + cfg.Gamma
	}
	det := cfg.Detector
	if det == nil {
		det = boundary.AngularGap{}
	}
	return &Stepper{eng: &Engine{cfg: cfg, reg: reg, detector: det}}, nil
}

// Config returns the normalized configuration (defaults applied).
func (st *Stepper) Config() Config { return st.eng.cfg }

// Detector returns the boundary detector (the configured one, or the default
// angular-gap detector).
func (st *Stepper) Detector() boundary.Detector { return st.eng.detector }

// IndexGamma returns the cell-sizing gamma a local network must be
// constructed with so its spatial index and radio range match the
// shared-memory engine's (Localized queries and boundary detection read
// net.Gamma(), so this is a correctness requirement, not a tuning choice).
func (st *Stepper) IndexGamma() float64 {
	if g := st.eng.cfg.Gamma; g > 0 {
		return g
	}
	return st.eng.reg.BBox().Diagonal() * 1e-3
}

// SetNetwork attaches the network the next computations read (and, in
// Localized mode, charge). The caller owns it; the stepper never mutates
// positions.
func (st *Stepper) SetNetwork(net *wsn.Network) { st.eng.net = net }

// NodeRNG returns the deterministic per-(seed, round, node) stream keying the
// engine's message-loss sampling — exported for the sharded engine, which
// must derive streams from global node IDs whatever a shard's local
// numbering, or loss draws would depend on the partition.
func NodeRNG(seed int64, round, node int) *rand.Rand { return nodeRNG(seed, round, node) }

// FinalRoundTag returns the negative round tag Finalize and DebugRegions use
// for their out-of-round region recomputation after the given number of
// completed rounds — a domain separate from every Step round, so an
// inspection fan-out never replays the loss draws the next Step would make.
func FinalRoundTag(rounds int) int { return -(rounds + 1) }

// StepOutcome is one node's round computation with the locality facts a
// sharded caller needs to decide whether to trust it.
type StepOutcome struct {
	// Next is the node's position after the motion rule (unchanged when the
	// node stands still).
	Next geom.Point
	// Ri is the circumradius of the dominating region (stats input) and Rhat
	// the max vertex distance from the current position (the convergence
	// quantity R̂ and the converged-Finalize radius).
	Ri, Rhat float64
	// MoveDist and Moved mirror the motion rule's outputs; Empty marks the
	// pathological empty-region case (node stands still, excluded from
	// stats extrema).
	MoveDist float64
	Moved    bool
	Empty    bool
	// Polys holds the compacted dominating region when Config.KeepRegions is
	// set (nil otherwise).
	Polys []geom.Polygon
	// ReadRad is the radius of the ball around the node's position the
	// computation actually read positions from: for Centralized, the
	// expanding search's final pre-tightening radius; for Localized, the
	// search's invalidation radius (hop-limited rings inflated to whole
	// hops, floored at γ). If every position within ReadRad of the node is
	// globally current in the attached network, the outcome is bitwise what
	// the shared-memory engine computes — with one Centralized caveat: the
	// expanding search may also exit by exhausting the local network
	// ("len == n−1"), which reads the local node count, so a Centralized
	// outcome is only trusted when additionally 2·Rhat ≤ ReadRad (the
	// exactness exit, which depends on geometry alone) or the window spans
	// the whole deployment.
	ReadRad float64
	// InvRad is the cache-invalidation radius: the outcome stays valid until
	// some position within InvRad of the node changes. It doubles as the
	// next search's warm-start hint. (Centralized tightens it below ReadRad;
	// Localized reports ReadRad itself.)
	InvRad float64
}

// StepNode computes node i's round outcome on the attached network. hint
// warm-starts the Centralized expanding search (pass the node's last InvRad,
// or 0). isBoundary and rng apply in Localized mode only: the boundary flag
// as start-of-round truth, and the node's private loss stream (NodeRNG over
// the global ID; nil when LossRate is 0). Localized searches charge the
// attached network's counters for node i — callers measure a computation's
// cost by diffing NodeMessages around the call.
func (st *Stepper) StepNode(i int, hint float64, isBoundary bool, rng *rand.Rand, s *Scratch) StepOutcome {
	e := st.eng
	if e.cfg.Mode == Localized {
		out, inv := e.stepNodeLocalized(i, isBoundary, rng, s)
		return exportOutcome(out, inv, inv)
	}
	ui := e.net.Position(i)
	var out nodeOutcome
	var rho float64
	if e.batchOn() {
		refs, r, rhat := centralizedRegionSoA(e.net, e.reg, i, e.cfg.K, hint, s)
		rho = r
		if len(refs) == 0 {
			out = nodeOutcome{next: ui, empty: true}
		} else {
			ci, ri := chebyshevOfRefs(s, refs)
			out = nodeOutcome{next: ui, ri: ri, rhat: rhat}
			if e.cfg.KeepRegions {
				out.polys = voronoi.CompactRefs(&s.vor.Slab, refs)
			}
			e.finishMove(ui, ci, &out)
		}
	} else {
		polys, r, rhat := centralizedRegionScratch(e.net, e.reg, i, e.cfg.K, s)
		rho = r
		if len(polys) == 0 {
			out = nodeOutcome{next: ui, empty: true}
		} else {
			ci, ri := ChebyshevOfRegion(polys, s)
			out = nodeOutcome{next: ui, ri: ri, rhat: rhat}
			if e.cfg.KeepRegions {
				out.polys = voronoi.CompactRegion(polys)
			}
			e.finishMove(ui, ci, &out)
		}
	}
	return exportOutcome(out, s.searchRho, rho)
}

// RegionPolys computes node i's dominating region at the current local
// positions — the Finalize/DebugRegions recompute path — returning compacted
// polygons plus the same ReadRad trust radius StepNode reports (the caller
// derives R̂ with voronoi.MaxDistFrom). rng must be the node's stream for
// the negative FinalRoundTag round.
func (st *Stepper) RegionPolys(i int, hint float64, isBoundary bool, rng *rand.Rand, s *Scratch) ([]geom.Polygon, float64) {
	e := st.eng
	if e.cfg.Mode == Localized {
		if e.batchOn() {
			refs, inv := e.localizedRegionRefs(i, isBoundary, rng, s)
			return voronoi.CompactRefs(&s.vor.Slab, refs), inv
		}
		polys, inv := e.localizedRegionOf(i, isBoundary, rng, s)
		return voronoi.CompactRegion(polys), inv
	}
	if e.batchOn() {
		refs, _, _ := centralizedRegionSoA(e.net, e.reg, i, e.cfg.K, hint, s)
		return voronoi.CompactRefs(&s.vor.Slab, refs), s.searchRho
	}
	polys, _, _ := centralizedRegionScratch(e.net, e.reg, i, e.cfg.K, s)
	return voronoi.CompactRegion(polys), s.searchRho
}

// exportOutcome converts the internal outcome to the exported mirror.
func exportOutcome(out nodeOutcome, readRad, invRad float64) StepOutcome {
	return StepOutcome{
		Next:     out.next,
		Ri:       out.ri,
		Rhat:     out.rhat,
		MoveDist: out.moveDist,
		Moved:    out.moved,
		Empty:    out.empty,
		Polys:    out.polys,
		ReadRad:  readRad,
		InvRad:   invRad,
	}
}
