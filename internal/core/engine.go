package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"laacad/internal/boundary"
	"laacad/internal/geom"
	"laacad/internal/parallel"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// RoundStats records one round of the deployment for convergence analysis
// (the series plotted in the paper's Fig. 6).
type RoundStats struct {
	Round int
	// MaxCircumradius and MinCircumradius are the extrema over nodes of the
	// circumradius of each node's dominating region (the smallest-enclosing-
	// circle radius R_i computed at the node's position for that round).
	MaxCircumradius float64
	MinCircumradius float64
	// MaxRhat is max_i max_{v∈V_i} ‖v−u_i‖ — the quantity R̂ that the
	// convergence proof (Prop. 4) shows non-increasing.
	MaxRhat float64
	// MaxMove is the largest distance any node moved this round.
	MaxMove float64
	// Moved is the number of nodes that moved more than ε.
	Moved int
	// Messages is the number of link-level messages sent this round
	// (Localized mode only).
	Messages int64
}

// Result is the outcome of a deployment run.
type Result struct {
	// Positions are the final node locations u*_i.
	Positions []geom.Point
	// Radii are the final sensing ranges r*_i (circumradius of each node's
	// dominating region about its final position).
	Radii []float64
	// Rounds is the number of rounds executed.
	Rounds int
	// Converged reports whether every node ended within ε of its Chebyshev
	// center (as opposed to hitting MaxRounds).
	Converged bool
	// Trace holds per-round statistics.
	Trace []RoundStats
	// Messages is the total link-level message count (Localized mode).
	Messages int64
	// Regions holds each node's final dominating region if
	// Config.KeepRegions was set.
	Regions [][]geom.Polygon
}

// MaxRadius returns max_i r*_i — the paper's objective R. A degenerate
// result with no radii reports 0.
func (r *Result) MaxRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinRadius returns min_i r*_i. A degenerate result with no radii reports 0.
func (r *Result) MinRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Engine executes LAACAD rounds. Create with New, then call Step until
// convergence or use Run. The Engine may be mutated between steps (e.g.
// RemoveNode for failure injection); it re-validates node counts.
type Engine struct {
	cfg      Config
	reg      *region.Region
	net      *wsn.Network
	detector boundary.Detector

	round     int
	converged bool
	trace     []RoundStats
	regions   [][]geom.Polygon // last round's dominating regions
	prevMsgs  int64
	// msgBase is the message count carried over from before a Resume; the
	// live network counter restarts at zero on every (re)construction.
	msgBase int64
	// observer, if set, runs after every round of Run with that round's
	// statistics (see SetObserver).
	observer func(RoundStats) error
}

// ErrStop is the sentinel an Observer returns to stop a run early and
// cleanly: Run finalizes the deployment and returns the partial Result with
// a nil error. Any other observer error also stops the run but is returned
// (alongside the partial Result) to the caller.
var ErrStop = errors.New("core: observer stopped the run")

// New creates an Engine deploying the given initial node positions over reg.
// Initial positions outside the region are clamped inside.
func New(reg *region.Region, initial []geom.Point, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, fmt.Errorf("core: nil region")
	}
	if err := cfg.validate(len(initial)); err != nil {
		return nil, err
	}
	if cfg.RingCap == 0 {
		cfg.RingCap = reg.BBox().Diagonal() + cfg.Gamma
	}
	pos := make([]geom.Point, len(initial))
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = reg.BBox().Diagonal() / 8 // spatial-index cell size only
	}
	det := cfg.Detector
	if det == nil {
		det = boundary.AngularGap{}
	}
	return &Engine{
		cfg:      cfg,
		reg:      reg,
		net:      wsn.New(pos, gamma),
		detector: det,
	}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network exposes the underlying WSN substrate (positions, message stats).
func (e *Engine) Network() *wsn.Network { return e.net }

// Positions returns a copy of the current node positions.
func (e *Engine) Positions() []geom.Point { return e.net.Positions() }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Converged reports whether the last Step found every node within ε of its
// Chebyshev center.
func (e *Engine) Converged() bool { return e.converged }

// Trace returns the per-round statistics collected so far.
func (e *Engine) Trace() []RoundStats { return e.trace }

// nodeOutcome is one node's contribution to a round. Each outcome depends
// only on the positions at the start of the round (Synchronous order), so
// outcomes can be computed independently and in any order; the round's
// statistics are reduced from them in node order afterwards.
type nodeOutcome struct {
	polys    []geom.Polygon
	next     geom.Point
	ri       float64 // circumradius of the dominating region
	rhat     float64 // max vertex distance from the current position
	moveDist float64
	moved    bool
	empty    bool // pathological empty region: node stands still
}

// stepNode computes node i's dominating region, Chebyshev center and motion
// target from the current positions. rng is the node's private stream for
// this round (see nodeRNG); it drives the randomized Chebyshev-center
// computation and, in Localized mode, message-loss sampling.
func (e *Engine) stepNode(i int, isBoundary []bool, rng *rand.Rand) nodeOutcome {
	ui := e.net.Position(i)
	polys := e.regionOf(i, isBoundary, rng)
	if len(polys) == 0 {
		// Pathological (e.g. node crowded out numerically): stand still.
		return nodeOutcome{next: ui, empty: true}
	}
	verts := voronoi.Vertices(polys)
	ci, ri := geom.ChebyshevCenter(verts, rng)
	ci = e.reg.ClampInside(ci)
	out := nodeOutcome{
		polys: polys,
		next:  ui,
		ri:    ri,
		rhat:  voronoi.MaxDistFrom(ui, polys),
	}
	if d := ui.Dist(ci); d > e.cfg.Epsilon {
		target := ui.Add(ci.Sub(ui).Scale(e.cfg.Alpha))
		target = e.reg.ClampInside(target)
		out.next = target
		out.moved = true
		out.moveDist = ui.Dist(target)
	}
	return out
}

// Step executes one LAACAD round and returns its statistics. The returned
// bool is true once the deployment has converged (no node needed to move
// more than ε this round). With Config.Order == Synchronous all moves apply
// at the end of the round and the per-node region computations fan out
// across Config.Workers goroutines; with Sequential each node's move is
// visible to the nodes processed after it, which is inherently serial.
// Either way the result is bit-identical for every worker count.
func (e *Engine) Step() (RoundStats, bool) {
	n := e.net.Len()
	round := e.round + 1
	stats := RoundStats{
		Round:           round,
		MinCircumradius: math.Inf(1),
	}
	var isBoundary []bool
	if e.cfg.Mode == Localized {
		isBoundary = e.detector.Boundary(e.net)
	}
	sequential := e.cfg.Order == Sequential
	outs := make([]nodeOutcome, n)
	if sequential {
		for i := 0; i < n; i++ {
			outs[i] = e.stepNode(i, isBoundary, nodeRNG(e.cfg.Seed, round, i))
			e.net.SetPosition(i, outs[i].next)
		}
	} else {
		e.net.Rebuild() // build the spatial index once, before the fan-out
		parallel.For(n, parallel.Workers(e.cfg.Workers), func(i int) {
			outs[i] = e.stepNode(i, isBoundary, nodeRNG(e.cfg.Seed, round, i))
		})
	}

	polysPerNode := make([][]geom.Polygon, n)
	next := make([]geom.Point, n)
	moved := 0
	for i := range outs {
		o := &outs[i]
		polysPerNode[i] = o.polys
		next[i] = o.next
		if o.empty {
			continue
		}
		if o.ri > stats.MaxCircumradius {
			stats.MaxCircumradius = o.ri
		}
		if o.ri < stats.MinCircumradius {
			stats.MinCircumradius = o.ri
		}
		if o.rhat > stats.MaxRhat {
			stats.MaxRhat = o.rhat
		}
		if o.moved {
			moved++
			if o.moveDist > stats.MaxMove {
				stats.MaxMove = o.moveDist
			}
		}
	}
	if math.IsInf(stats.MinCircumradius, 1) {
		stats.MinCircumradius = 0
	}
	if !sequential {
		e.net.SetPositions(next)
	}
	e.regions = polysPerNode
	e.round++
	stats.Moved = moved
	cur := e.net.Stats().Messages
	stats.Messages = cur - e.prevMsgs
	e.prevMsgs = cur
	e.trace = append(e.trace, stats)
	e.converged = moved == 0
	return stats, e.converged
}

// regionOf computes node i's dominating region under the configured mode.
// isBoundary is the per-node boundary bitmap (Localized mode only; may be
// nil otherwise).
func (e *Engine) regionOf(i int, isBoundary []bool, rng *rand.Rand) []geom.Polygon {
	if e.cfg.Mode == Localized {
		b := false
		if isBoundary != nil {
			b = isBoundary[i]
		}
		return e.localizedRegionOf(i, b, rng)
	}
	return e.centralizedRegionOf(i)
}

// SetObserver installs a per-round callback invoked by Run after every
// completed round, with that round's statistics. The callback runs between
// rounds, so it may safely inspect the engine, take a Snapshot, or mutate
// topology (AddNode/RemoveNode for failure injection); determinism is
// preserved because each round's randomness depends only on (Seed, round,
// node), never on wall-clock or scheduling. Returning ErrStop ends the run
// cleanly; returning any other error aborts it with a partial Result. A nil
// observer removes the callback.
func (e *Engine) SetObserver(fn func(RoundStats) error) { e.observer = fn }

// Run executes Step until convergence, MaxRounds, ctx cancellation, or an
// observer-requested stop, then assigns final sensing ranges and returns the
// Result.
//
// Cancellation is checked between rounds: when ctx is done, Run finalizes
// whatever progress was made and returns the partial Result together with
// ctx's error, so callers can distinguish an interrupted run (res non-nil,
// errors.Is(err, context.Canceled) or context.DeadlineExceeded) from a
// completed one (err == nil). A Snapshot taken after an interrupted Run
// resumes the remaining rounds bit-identically (see Snapshot/Resume).
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	for e.round < e.cfg.MaxRounds {
		// Checked at the top (not after Step) so an engine that is already
		// converged — e.g. resumed from a checkpoint of a finished run —
		// executes no further rounds, and so that an observer's topology
		// change (AddNode/RemoveNode), which resets convergence, keeps the
		// run going.
		if e.converged {
			break
		}
		if err := ctx.Err(); err != nil {
			return e.finalizePartial(err)
		}
		stats, _ := e.Step()
		if e.observer != nil {
			if oerr := e.observer(stats); oerr != nil {
				if errors.Is(oerr, ErrStop) {
					return e.Finalize()
				}
				return e.finalizePartial(oerr)
			}
		}
	}
	return e.Finalize()
}

// finalizePartial packages the current progress as a Result and attaches
// cause as the run's error.
func (e *Engine) finalizePartial(cause error) (*Result, error) {
	res, err := e.Finalize()
	if err != nil {
		return nil, err
	}
	return res, cause
}

// Finalize assigns final sensing ranges (line 7 of Algorithm 1) and packages
// the Result. It can be called at any point, converged or not. When the run
// has converged, the dominating regions from the last round are reused (no
// node moved, so they are exact for the final positions); otherwise they are
// recomputed, which in Localized mode costs additional messages beyond the
// per-round trace.
func (e *Engine) Finalize() (*Result, error) {
	polysPerNode := e.regions
	if !e.converged || polysPerNode == nil {
		polysPerNode = e.computeRegions()
	}
	n := e.net.Len()
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = voronoi.MaxDistFrom(e.net.Position(i), polysPerNode[i])
	}
	res := &Result{
		Positions: e.net.Positions(),
		Radii:     radii,
		Rounds:    e.round,
		Converged: e.converged,
		Trace:     append([]RoundStats(nil), e.trace...),
		Messages:  e.msgBase + e.net.Stats().Messages,
	}
	if e.cfg.KeepRegions {
		res.Regions = polysPerNode
	}
	return res, nil
}

// DebugRegions computes and returns every node's dominating region at the
// current positions without advancing the round counter. In Localized mode
// this performs (and charges) real expanding-ring searches. Intended for
// inspection, rendering and cross-validation.
func (e *Engine) DebugRegions() [][]geom.Polygon {
	return e.computeRegions()
}

// RemoveNode deletes node i from the deployment (failure injection). The
// engine continues with the remaining nodes; convergence state is reset.
func (e *Engine) RemoveNode(i int) error {
	pos := e.net.Positions()
	if i < 0 || i >= len(pos) {
		return fmt.Errorf("core: RemoveNode index %d out of range [0,%d)", i, len(pos))
	}
	if len(pos)-1 < e.cfg.K {
		return fmt.Errorf("core: removing node %d would leave %d < K=%d nodes", i, len(pos)-1, e.cfg.K)
	}
	pos = append(pos[:i], pos[i+1:]...)
	e.msgBase += e.net.Stats().Messages
	e.net = wsn.New(pos, e.net.Gamma())
	e.prevMsgs = 0
	e.converged = false
	return nil
}

// AddNode inserts a node at p (clamped into the region). Convergence state
// is reset.
func (e *Engine) AddNode(p geom.Point) {
	pos := append(e.net.Positions(), e.reg.ClampInside(p))
	e.msgBase += e.net.Stats().Messages
	e.net = wsn.New(pos, e.net.Gamma())
	e.prevMsgs = 0
	e.converged = false
}

// computeRegions returns each node's dominating region under the configured
// mode.
func (e *Engine) computeRegions() [][]geom.Polygon {
	switch e.cfg.Mode {
	case Localized:
		return e.localizedRegions()
	default:
		return e.centralizedRegions()
	}
}

// centralizedRegions computes every node's dominating region with global
// knowledge, fanning the per-node computations across Config.Workers.
func (e *Engine) centralizedRegions() [][]geom.Polygon {
	n := e.net.Len()
	out := make([][]geom.Polygon, n)
	e.net.Rebuild()
	parallel.For(n, parallel.Workers(e.cfg.Workers), func(i int) {
		out[i] = e.centralizedRegionOf(i)
	})
	return out
}

// centralizedRegionOf computes node i's dominating region with global
// knowledge.
func (e *Engine) centralizedRegionOf(i int) []geom.Polygon {
	return CentralizedDominatingRegion(e.net, e.reg, i, e.cfg.K)
}

// CentralizedDominatingRegion computes node i's dominating region over the
// network's current positions from global knowledge, using an
// exactness-checked expanding radius: a region computed from all nodes
// within distance ρ of u_i is globally exact as soon as its circumradius-
// from-u_i satisfies R̂ ≤ ρ/2, because every generator that could beat u_i
// at a point within R̂ of u_i lies within 2·R̂ ≤ ρ of u_i. It is shared by
// the round Engine and the asynchronous event-driven simulator.
func CentralizedDominatingRegion(net *wsn.Network, reg *region.Region, i, k int) []geom.Polygon {
	n := net.Len()
	pieces := reg.Pieces()
	diag := reg.BBox().Diagonal()
	ui := net.Position(i)
	self := voronoi.Site{ID: i, Pos: ui}
	// Initial guess: enough radius to see ~4k neighbors in a uniform
	// deployment; grows geometrically until the exactness check passes.
	rho := diag / math.Sqrt(float64(n)) * math.Sqrt(float64(4*k+4))
	for {
		nbrIDs := net.NeighborsWithin(i, rho)
		sites := make([]voronoi.Site, 0, len(nbrIDs))
		for _, j := range nbrIDs {
			sites = append(sites, voronoi.Site{ID: j, Pos: net.Position(j)})
		}
		polys := voronoi.DominatingRegion(self, sites, k, pieces)
		rhat := voronoi.MaxDistFrom(ui, polys)
		if 2*rhat <= rho || len(nbrIDs) == n-1 || rho > 4*diag {
			return polys
		}
		rho *= 2
	}
}
