package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"laacad/internal/boundary"
	"laacad/internal/geom"
	"laacad/internal/parallel"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// RoundStats records one round of the deployment for convergence analysis
// (the series plotted in the paper's Fig. 6).
type RoundStats struct {
	Round int
	// MaxCircumradius and MinCircumradius are the extrema over nodes of the
	// circumradius of each node's dominating region (the smallest-enclosing-
	// circle radius R_i computed at the node's position for that round).
	MaxCircumradius float64
	MinCircumradius float64
	// MaxRhat is max_i max_{v∈V_i} ‖v−u_i‖ — the quantity R̂ that the
	// convergence proof (Prop. 4) shows non-increasing.
	MaxRhat float64
	// MaxMove is the largest distance any node moved this round.
	MaxMove float64
	// Moved is the number of nodes that moved more than ε.
	Moved int
	// Messages is the number of link-level messages sent this round
	// (Localized mode only).
	Messages int64
}

// Result is the outcome of a deployment run.
type Result struct {
	// Positions are the final node locations u*_i.
	Positions []geom.Point
	// Radii are the final sensing ranges r*_i (circumradius of each node's
	// dominating region about its final position).
	Radii []float64
	// Rounds is the number of rounds executed.
	Rounds int
	// Converged reports whether every node ended within ε of its Chebyshev
	// center (as opposed to hitting MaxRounds).
	Converged bool
	// Trace holds per-round statistics.
	Trace []RoundStats
	// Messages is the total link-level message count (Localized mode).
	Messages int64
	// Regions holds each node's final dominating region if
	// Config.KeepRegions was set.
	Regions [][]geom.Polygon
}

// MaxRadius returns max_i r*_i — the paper's objective R. A degenerate
// result with no radii reports 0.
func (r *Result) MaxRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinRadius returns min_i r*_i. A degenerate result with no radii reports 0.
func (r *Result) MinRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Engine executes LAACAD rounds. Create with New, then call Step until
// convergence or use Run. The Engine may be mutated between steps (e.g.
// RemoveNode for failure injection); it re-validates node counts.
type Engine struct {
	cfg      Config
	reg      *region.Region
	net      *wsn.Network
	detector boundary.Detector

	round     int
	converged bool
	trace     []RoundStats
	regions   [][]geom.Polygon // last round's dominating regions
	prevMsgs  int64
	// msgBase is the message count carried over from before a Resume; the
	// live network counter restarts at zero on every (re)construction.
	msgBase int64
	// observer, if set, runs after every round of Run with that round's
	// statistics (see SetObserver).
	observer func(RoundStats) error

	// pool holds one Scratch per worker slot so the per-node geometry
	// pipeline runs without heap allocation; outs/next/movedBuf are the
	// reusable per-round buffers.
	pool     []*Scratch
	outs     []nodeOutcome
	nextBuf  []geom.Point
	movedBuf []movedNode

	// cache is the incremental dirty-set (Centralized mode): each entry
	// holds a node's last computed outcome together with the exactness
	// radius ρ of the expanding search that produced it. The outcome is a
	// pure function of the positions inside the ρ-ball around the node
	// (see centralizedRegionScratch), so it is reused verbatim until some
	// position inside that ball changes — which collapses the long
	// converged tail of a deployment to near-zero work per round.
	// cacheVer mirrors net.Version() so out-of-band position writes
	// (anything other than the engine's own moves) flush the cache.
	cache    []nodeCache
	cacheVer uint64
}

// nodeCache is one node's cached round outcome plus the exactness radius
// that bounds which position changes can invalidate it.
type nodeCache struct {
	valid bool
	rho   float64
	out   nodeOutcome
}

// movedNode records one applied move for cache invalidation: both endpoints
// matter, because a node entering an exactness ball invalidates it by its
// new position and a node leaving it by its old one.
type movedNode struct {
	old, new geom.Point
}

// ErrStop is the sentinel an Observer returns to stop a run early and
// cleanly: Run finalizes the deployment and returns the partial Result with
// a nil error. Any other observer error also stops the run but is returned
// (alongside the partial Result) to the caller.
var ErrStop = errors.New("core: observer stopped the run")

// New creates an Engine deploying the given initial node positions over reg.
// Initial positions outside the region are clamped inside.
func New(reg *region.Region, initial []geom.Point, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, fmt.Errorf("core: nil region")
	}
	if err := cfg.validate(len(initial)); err != nil {
		return nil, err
	}
	if cfg.RingCap == 0 {
		cfg.RingCap = reg.BBox().Diagonal() + cfg.Gamma
	}
	pos := make([]geom.Point, len(initial))
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = reg.BBox().Diagonal() / 8 // spatial-index cell size only
	}
	det := cfg.Detector
	if det == nil {
		det = boundary.AngularGap{}
	}
	return &Engine{
		cfg:      cfg,
		reg:      reg,
		net:      wsn.New(pos, gamma),
		detector: det,
	}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network exposes the underlying WSN substrate (positions, message stats).
func (e *Engine) Network() *wsn.Network { return e.net }

// Positions returns a copy of the current node positions.
func (e *Engine) Positions() []geom.Point { return e.net.Positions() }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Converged reports whether the last Step found every node within ε of its
// Chebyshev center.
func (e *Engine) Converged() bool { return e.converged }

// Trace returns the per-round statistics collected so far.
func (e *Engine) Trace() []RoundStats { return e.trace }

// nodeOutcome is one node's contribution to a round. Each outcome depends
// only on the positions at the start of the round (Synchronous order), so
// outcomes can be computed independently and in any order; the round's
// statistics are reduced from them in node order afterwards.
type nodeOutcome struct {
	polys    []geom.Polygon
	next     geom.Point
	ri       float64 // circumradius of the dominating region
	rhat     float64 // max vertex distance from the current position
	moveDist float64
	moved    bool
	empty    bool // pathological empty region: node stands still
}

// stepNodeCentralized computes node i's dominating region, Chebyshev center
// and motion target from the current positions (Centralized mode). The
// geometry pipeline runs entirely on s; the outcome's polygons are compacted
// into owned storage so they survive the scratch's reuse. The second return
// value is the exactness radius ρ of the expanding search — the cache
// invalidation radius. Since the deterministic-Welzl change, the outcome is
// a pure function of (positions within ρ of u_i, region, config): no RNG
// stream is consumed.
func (e *Engine) stepNodeCentralized(i int, s *Scratch) (nodeOutcome, float64) {
	ui := e.net.Position(i)
	polys, rho, rhat := centralizedRegionScratch(e.net, e.reg, i, e.cfg.K, s)
	if len(polys) == 0 {
		// Pathological (e.g. node crowded out numerically): stand still.
		return nodeOutcome{next: ui, empty: true}, rho
	}
	ci, ri := ChebyshevOfRegion(polys, s)
	out := nodeOutcome{
		polys: voronoi.CompactRegion(polys),
		next:  ui,
		ri:    ri,
		rhat:  rhat,
	}
	e.finishMove(ui, ci, &out)
	return out, rho
}

// stepNodeLocalized computes node i's outcome with Algorithm 2. rng is the
// node's private stream for this round (see nodeRNG); it drives message-loss
// sampling. The geometry kernel still runs on s, but outcomes are never
// cached: the expanding-ring search charges real messages, and skipping it
// would falsify the per-round message accounting that is part of Localized
// mode's contract.
func (e *Engine) stepNodeLocalized(i int, isBoundary bool, rng *rand.Rand, s *Scratch) nodeOutcome {
	ui := e.net.Position(i)
	polys := e.localizedRegionOf(i, isBoundary, rng, s)
	if len(polys) == 0 {
		return nodeOutcome{next: ui, empty: true}
	}
	ci, ri := ChebyshevOfRegion(polys, s)
	out := nodeOutcome{
		polys: voronoi.CompactRegion(polys),
		next:  ui,
		ri:    ri,
		rhat:  voronoi.MaxDistFrom(ui, polys),
	}
	e.finishMove(ui, ci, &out)
	return out
}

// finishMove applies the motion rule (step α toward the clamped Chebyshev
// center, stand still within ε) to an outcome under construction.
func (e *Engine) finishMove(ui, ci geom.Point, out *nodeOutcome) {
	ci = e.reg.ClampInside(ci)
	if d := ui.Dist(ci); d > e.cfg.Epsilon {
		target := ui.Add(ci.Sub(ui).Scale(e.cfg.Alpha))
		target = e.reg.ClampInside(target)
		out.next = target
		out.moved = true
		out.moveDist = ui.Dist(target)
	}
}

// stepNodeAny dispatches one node's round computation, consulting the
// dirty-set cache first when it is enabled. Cache entries are written only
// by the worker that owns node i this round, so the fan-out needs no
// locking.
func (e *Engine) stepNodeAny(i, round int, isBoundary []bool, s *Scratch, cacheOn bool) nodeOutcome {
	if e.cfg.Mode == Localized {
		b := isBoundary != nil && isBoundary[i]
		return e.stepNodeLocalized(i, b, nodeRNG(e.cfg.Seed, round, i), s)
	}
	if cacheOn {
		if c := &e.cache[i]; c.valid {
			return c.out
		}
		out, rho := e.stepNodeCentralized(i, s)
		e.cache[i] = nodeCache{valid: true, rho: rho, out: out}
		return out
	}
	out, _ := e.stepNodeCentralized(i, s)
	return out
}

// cacheEnabled reports whether the dirty-set cache applies: Centralized
// mode only (Localized message accounting forbids skipping work) and not
// explicitly disabled.
func (e *Engine) cacheEnabled() bool {
	return e.cfg.Mode == Centralized && !e.cfg.DisableCache
}

// ensureBuffers sizes the per-round buffers and the dirty-set cache for n
// nodes. A node-count change (AddNode/RemoveNode rebuilt the network)
// discards the cache wholesale.
func (e *Engine) ensureBuffers(n int) {
	if cap(e.outs) < n {
		e.outs = make([]nodeOutcome, n)
		e.nextBuf = make([]geom.Point, n)
	}
	e.outs = e.outs[:n]
	e.nextBuf = e.nextBuf[:n]
	if len(e.cache) != n {
		e.cache = make([]nodeCache, n)
		e.cacheVer = e.net.Version()
	}
}

// ensurePool sizes the per-worker scratch pool.
func (e *Engine) ensurePool(workers int) {
	for len(e.pool) < workers {
		e.pool = append(e.pool, NewScratch())
	}
}

// flushCache invalidates every cache entry and re-syncs with the network's
// mutation counter.
func (e *Engine) flushCache() {
	for i := range e.cache {
		e.cache[i].valid = false
	}
	e.cacheVer = e.net.Version()
}

// invalidateMoved drops every cache entry whose exactness ball contains
// either endpoint of a recorded move: a node entering the ball changes the
// site set by its new position, a node leaving it by its old one, and any
// move inside it changes a site's coordinates. Entries outside stay valid —
// the expanding search provably never read those positions, so recomputing
// would reproduce the cached outcome bit for bit. Cost is
// O(valid × moved): cheap early (few valid) and cheap late (few moved).
func (e *Engine) invalidateMoved() {
	if len(e.movedBuf) == 0 {
		return
	}
	for i := range e.cache {
		c := &e.cache[i]
		if !c.valid {
			continue
		}
		ui := e.net.Position(i) // unchanged: moved nodes were invalidated already
		r2 := c.rho * c.rho
		for _, m := range e.movedBuf {
			if ui.Dist2(m.old) <= r2 || ui.Dist2(m.new) <= r2 {
				c.valid = false
				break
			}
		}
	}
}

// Step executes one LAACAD round and returns its statistics. The returned
// bool is true once the deployment has converged (no node needed to move
// more than ε this round). With Config.Order == Synchronous all moves apply
// at the end of the round and the per-node region computations fan out
// across Config.Workers goroutines; with Sequential each node's move is
// visible to the nodes processed after it, which is inherently serial.
// Either way the result is bit-identical for every worker count.
func (e *Engine) Step() (RoundStats, bool) {
	n := e.net.Len()
	round := e.round + 1
	stats := RoundStats{
		Round:           round,
		MinCircumradius: math.Inf(1),
	}
	e.ensureBuffers(n)
	cacheOn := e.cacheEnabled()
	if cacheOn && e.cacheVer != e.net.Version() {
		// Positions were written behind the engine's back (direct Network
		// mutation, resume restore): nothing cached can be trusted.
		e.flushCache()
	}
	var isBoundary []bool
	if e.cfg.Mode == Localized {
		isBoundary = e.detector.Boundary(e.net)
	}
	sequential := e.cfg.Order == Sequential
	outs := e.outs
	if sequential {
		e.ensurePool(1)
		for i := 0; i < n; i++ {
			outs[i] = e.stepNodeAny(i, round, isBoundary, e.pool[0], cacheOn)
			if ui := e.net.Position(i); outs[i].next != ui {
				e.net.SetPosition(i, outs[i].next)
				if cacheOn {
					e.invalidateAround(i, ui, outs[i].next)
				}
				e.cacheVer = e.net.Version()
			}
		}
	} else {
		e.net.Rebuild() // build the spatial index once, before the fan-out
		workers := parallel.Workers(e.cfg.Workers)
		e.ensurePool(workers)
		parallel.ForWorker(n, workers, func(w, i int) {
			outs[i] = e.stepNodeAny(i, round, isBoundary, e.pool[w], cacheOn)
		})
	}

	polysPerNode := make([][]geom.Polygon, n)
	next := e.nextBuf
	moved := 0
	changed := false
	e.movedBuf = e.movedBuf[:0]
	for i := range outs {
		o := &outs[i]
		polysPerNode[i] = o.polys
		next[i] = o.next
		if !sequential && o.next != e.net.Position(i) {
			changed = true
		}
		if o.empty {
			continue
		}
		if o.ri > stats.MaxCircumradius {
			stats.MaxCircumradius = o.ri
		}
		if o.ri < stats.MinCircumradius {
			stats.MinCircumradius = o.ri
		}
		if o.rhat > stats.MaxRhat {
			stats.MaxRhat = o.rhat
		}
		if o.moved {
			moved++
			if o.moveDist > stats.MaxMove {
				stats.MaxMove = o.moveDist
			}
			if !sequential && cacheOn {
				e.cache[i].valid = false // own position is about to change
				e.movedBuf = append(e.movedBuf, movedNode{old: e.net.Position(i), new: o.next})
			}
		}
	}
	if math.IsInf(stats.MinCircumradius, 1) {
		stats.MinCircumradius = 0
	}
	if !sequential && changed {
		// Skipped when every node stands still (the converged tail): the
		// write would only re-mark the spatial grid dirty and force a
		// rebuild to an identical index next round.
		e.net.SetPositions(next)
		if cacheOn {
			e.invalidateMoved()
			e.cacheVer = e.net.Version()
		}
	}
	e.regions = polysPerNode
	e.round++
	stats.Moved = moved
	cur := e.net.MessageCount()
	stats.Messages = cur - e.prevMsgs
	e.prevMsgs = cur
	e.trace = append(e.trace, stats)
	e.converged = moved == 0
	return stats, e.converged
}

// invalidateAround is the Sequential-order form of invalidateMoved: applied
// immediately after each position change, so nodes processed later in the
// same round see a cache that reflects every earlier move — exactly
// mirroring what the eager Gauss–Seidel sweep would recompute.
func (e *Engine) invalidateAround(i int, old, new geom.Point) {
	e.cache[i].valid = false
	for j := range e.cache {
		c := &e.cache[j]
		if !c.valid {
			continue
		}
		uj := e.net.Position(j)
		r2 := c.rho * c.rho
		if uj.Dist2(old) <= r2 || uj.Dist2(new) <= r2 {
			c.valid = false
		}
	}
}

// SetObserver installs a per-round callback invoked by Run after every
// completed round, with that round's statistics. The callback runs between
// rounds, so it may safely inspect the engine, take a Snapshot, or mutate
// topology (AddNode/RemoveNode for failure injection); determinism is
// preserved because each round's randomness depends only on (Seed, round,
// node), never on wall-clock or scheduling. Returning ErrStop ends the run
// cleanly; returning any other error aborts it with a partial Result. A nil
// observer removes the callback.
func (e *Engine) SetObserver(fn func(RoundStats) error) { e.observer = fn }

// Run executes Step until convergence, MaxRounds, ctx cancellation, or an
// observer-requested stop, then assigns final sensing ranges and returns the
// Result.
//
// Cancellation is checked between rounds: when ctx is done, Run finalizes
// whatever progress was made and returns the partial Result together with
// ctx's error, so callers can distinguish an interrupted run (res non-nil,
// errors.Is(err, context.Canceled) or context.DeadlineExceeded) from a
// completed one (err == nil). A Snapshot taken after an interrupted Run
// resumes the remaining rounds bit-identically (see Snapshot/Resume).
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	for e.round < e.cfg.MaxRounds {
		// Checked at the top (not after Step) so an engine that is already
		// converged — e.g. resumed from a checkpoint of a finished run —
		// executes no further rounds, and so that an observer's topology
		// change (AddNode/RemoveNode), which resets convergence, keeps the
		// run going.
		if e.converged {
			break
		}
		if err := ctx.Err(); err != nil {
			return e.finalizePartial(err)
		}
		stats, _ := e.Step()
		if e.observer != nil {
			if oerr := e.observer(stats); oerr != nil {
				if errors.Is(oerr, ErrStop) {
					return e.Finalize()
				}
				return e.finalizePartial(oerr)
			}
		}
	}
	return e.Finalize()
}

// finalizePartial packages the current progress as a Result and attaches
// cause as the run's error.
func (e *Engine) finalizePartial(cause error) (*Result, error) {
	res, err := e.Finalize()
	if err != nil {
		return nil, err
	}
	return res, cause
}

// Finalize assigns final sensing ranges (line 7 of Algorithm 1) and packages
// the Result. It can be called at any point, converged or not. When the run
// has converged, the dominating regions from the last round are reused (no
// node moved, so they are exact for the final positions); otherwise they are
// recomputed, which in Localized mode costs additional messages beyond the
// per-round trace.
func (e *Engine) Finalize() (*Result, error) {
	polysPerNode := e.regions
	if !e.converged || polysPerNode == nil {
		polysPerNode = e.computeRegions()
	}
	n := e.net.Len()
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = voronoi.MaxDistFrom(e.net.Position(i), polysPerNode[i])
	}
	res := &Result{
		Positions: e.net.Positions(),
		Radii:     radii,
		Rounds:    e.round,
		Converged: e.converged,
		Trace:     append([]RoundStats(nil), e.trace...),
		Messages:  e.msgBase + e.net.MessageCount(),
	}
	if e.cfg.KeepRegions {
		res.Regions = polysPerNode
	}
	return res, nil
}

// DebugRegions computes and returns every node's dominating region at the
// current positions without advancing the round counter. In Localized mode
// this performs (and charges) real expanding-ring searches. Intended for
// inspection, rendering and cross-validation.
func (e *Engine) DebugRegions() [][]geom.Polygon {
	return e.computeRegions()
}

// RemoveNode deletes node i from the deployment (failure injection). The
// engine continues with the remaining nodes; convergence state is reset.
func (e *Engine) RemoveNode(i int) error {
	pos := e.net.Positions()
	if i < 0 || i >= len(pos) {
		return fmt.Errorf("core: RemoveNode index %d out of range [0,%d)", i, len(pos))
	}
	if len(pos)-1 < e.cfg.K {
		return fmt.Errorf("core: removing node %d would leave %d < K=%d nodes", i, len(pos)-1, e.cfg.K)
	}
	pos = append(pos[:i], pos[i+1:]...)
	e.msgBase += e.net.MessageCount()
	e.net = wsn.New(pos, e.net.Gamma())
	e.prevMsgs = 0
	e.converged = false
	// The cache indexes the old node numbering and the fresh network's
	// mutation counter restarts, so the version check cannot be trusted
	// across the swap (a paired RemoveNode+AddNode restores the node count
	// and can collide on version): drop the cache explicitly.
	e.cache = nil
	return nil
}

// AddNode inserts a node at p (clamped into the region). Convergence state
// is reset.
func (e *Engine) AddNode(p geom.Point) {
	pos := append(e.net.Positions(), e.reg.ClampInside(p))
	e.msgBase += e.net.MessageCount()
	e.net = wsn.New(pos, e.net.Gamma())
	e.prevMsgs = 0
	e.converged = false
	e.cache = nil // see RemoveNode: never trust versions across a network swap
}

// computeRegions returns each node's dominating region under the configured
// mode.
func (e *Engine) computeRegions() [][]geom.Polygon {
	switch e.cfg.Mode {
	case Localized:
		return e.localizedRegions()
	default:
		return e.centralizedRegions()
	}
}

// centralizedRegions computes every node's dominating region with global
// knowledge, fanning the per-node computations across Config.Workers.
func (e *Engine) centralizedRegions() [][]geom.Polygon {
	n := e.net.Len()
	out := make([][]geom.Polygon, n)
	e.net.Rebuild()
	workers := parallel.Workers(e.cfg.Workers)
	e.ensurePool(workers)
	parallel.ForWorker(n, workers, func(w, i int) {
		polys := CentralizedDominatingRegionScratch(e.net, e.reg, i, e.cfg.K, e.pool[w])
		out[i] = voronoi.CompactRegion(polys)
	})
	return out
}
