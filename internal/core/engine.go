package core

import (
	"fmt"
	"math"
	"math/rand"

	"laacad/internal/boundary"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// RoundStats records one round of the deployment for convergence analysis
// (the series plotted in the paper's Fig. 6).
type RoundStats struct {
	Round int
	// MaxCircumradius and MinCircumradius are the extrema over nodes of the
	// circumradius of each node's dominating region (the smallest-enclosing-
	// circle radius R_i computed at the node's position for that round).
	MaxCircumradius float64
	MinCircumradius float64
	// MaxRhat is max_i max_{v∈V_i} ‖v−u_i‖ — the quantity R̂ that the
	// convergence proof (Prop. 4) shows non-increasing.
	MaxRhat float64
	// MaxMove is the largest distance any node moved this round.
	MaxMove float64
	// Moved is the number of nodes that moved more than ε.
	Moved int
	// Messages is the number of link-level messages sent this round
	// (Localized mode only).
	Messages int64
}

// Result is the outcome of a deployment run.
type Result struct {
	// Positions are the final node locations u*_i.
	Positions []geom.Point
	// Radii are the final sensing ranges r*_i (circumradius of each node's
	// dominating region about its final position).
	Radii []float64
	// Rounds is the number of rounds executed.
	Rounds int
	// Converged reports whether every node ended within ε of its Chebyshev
	// center (as opposed to hitting MaxRounds).
	Converged bool
	// Trace holds per-round statistics.
	Trace []RoundStats
	// Messages is the total link-level message count (Localized mode).
	Messages int64
	// Regions holds each node's final dominating region if
	// Config.KeepRegions was set.
	Regions [][]geom.Polygon
}

// MaxRadius returns max_i r*_i — the paper's objective R.
func (r *Result) MaxRadius() float64 {
	var m float64
	for _, v := range r.Radii {
		if v > m {
			m = v
		}
	}
	return m
}

// MinRadius returns min_i r*_i.
func (r *Result) MinRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, v := range r.Radii {
		if v < m {
			m = v
		}
	}
	return m
}

// Engine executes LAACAD rounds. Create with New, then call Step until
// convergence or use Run. The Engine may be mutated between steps (e.g.
// RemoveNode for failure injection); it re-validates node counts.
type Engine struct {
	cfg      Config
	reg      *region.Region
	net      *wsn.Network
	rng      *rand.Rand
	detector boundary.Detector

	round     int
	converged bool
	trace     []RoundStats
	regions   [][]geom.Polygon // last round's dominating regions
	prevMsgs  int64
}

// New creates an Engine deploying the given initial node positions over reg.
// Initial positions outside the region are clamped inside.
func New(reg *region.Region, initial []geom.Point, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, fmt.Errorf("core: nil region")
	}
	if err := cfg.validate(len(initial)); err != nil {
		return nil, err
	}
	if cfg.RingCap == 0 {
		cfg.RingCap = reg.BBox().Diagonal() + cfg.Gamma
	}
	pos := make([]geom.Point, len(initial))
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = reg.BBox().Diagonal() / 8 // spatial-index cell size only
	}
	det := cfg.Detector
	if det == nil {
		det = boundary.AngularGap{}
	}
	return &Engine{
		cfg:      cfg,
		reg:      reg,
		net:      wsn.New(pos, gamma),
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		detector: det,
	}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network exposes the underlying WSN substrate (positions, message stats).
func (e *Engine) Network() *wsn.Network { return e.net }

// Positions returns a copy of the current node positions.
func (e *Engine) Positions() []geom.Point { return e.net.Positions() }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Converged reports whether the last Step found every node within ε of its
// Chebyshev center.
func (e *Engine) Converged() bool { return e.converged }

// Trace returns the per-round statistics collected so far.
func (e *Engine) Trace() []RoundStats { return e.trace }

// Step executes one LAACAD round and returns its statistics. The returned
// bool is true once the deployment has converged (no node needed to move
// more than ε this round). With Config.Order == Synchronous all moves apply
// at the end of the round; with Sequential each node's move is visible to
// the nodes processed after it.
func (e *Engine) Step() (RoundStats, bool) {
	n := e.net.Len()
	stats := RoundStats{
		Round:           e.round + 1,
		MinCircumradius: math.Inf(1),
	}
	var isBoundary []bool
	if e.cfg.Mode == Localized {
		isBoundary = e.detector.Boundary(e.net)
	}
	sequential := e.cfg.Order == Sequential
	polysPerNode := make([][]geom.Polygon, n)
	next := make([]geom.Point, n)
	moved := 0
	for i := 0; i < n; i++ {
		ui := e.net.Position(i)
		polys := e.regionOf(i, isBoundary)
		polysPerNode[i] = polys
		if len(polys) == 0 {
			// Pathological (e.g. node crowded out numerically): stand still.
			next[i] = ui
			continue
		}
		verts := voronoi.Vertices(polys)
		ci, ri := geom.ChebyshevCenter(verts, e.rng)
		ci = e.reg.ClampInside(ci)
		rhat := voronoi.MaxDistFrom(ui, polys)

		if ri > stats.MaxCircumradius {
			stats.MaxCircumradius = ri
		}
		if ri < stats.MinCircumradius {
			stats.MinCircumradius = ri
		}
		if rhat > stats.MaxRhat {
			stats.MaxRhat = rhat
		}

		if d := ui.Dist(ci); d > e.cfg.Epsilon {
			target := ui.Add(ci.Sub(ui).Scale(e.cfg.Alpha))
			target = e.reg.ClampInside(target)
			next[i] = target
			moved++
			if mv := ui.Dist(target); mv > stats.MaxMove {
				stats.MaxMove = mv
			}
		} else {
			next[i] = ui
		}
		if sequential {
			e.net.SetPosition(i, next[i])
		}
	}
	if math.IsInf(stats.MinCircumradius, 1) {
		stats.MinCircumradius = 0
	}
	if !sequential {
		e.net.SetPositions(next)
	}
	e.regions = polysPerNode
	e.round++
	stats.Moved = moved
	cur := e.net.Stats().Messages
	stats.Messages = cur - e.prevMsgs
	e.prevMsgs = cur
	e.trace = append(e.trace, stats)
	e.converged = moved == 0
	return stats, e.converged
}

// regionOf computes node i's dominating region under the configured mode.
// isBoundary is the per-node boundary bitmap (Localized mode only; may be
// nil otherwise).
func (e *Engine) regionOf(i int, isBoundary []bool) []geom.Polygon {
	if e.cfg.Mode == Localized {
		b := false
		if isBoundary != nil {
			b = isBoundary[i]
		}
		return e.localizedRegionOf(i, b)
	}
	return e.centralizedRegionOf(i)
}

// Run executes Step until convergence or MaxRounds, then assigns final
// sensing ranges and returns the Result.
func (e *Engine) Run() (*Result, error) {
	for e.round < e.cfg.MaxRounds {
		if _, done := e.Step(); done {
			break
		}
	}
	return e.Finalize()
}

// Finalize assigns final sensing ranges (line 7 of Algorithm 1) and packages
// the Result. It can be called at any point, converged or not. When the run
// has converged, the dominating regions from the last round are reused (no
// node moved, so they are exact for the final positions); otherwise they are
// recomputed, which in Localized mode costs additional messages beyond the
// per-round trace.
func (e *Engine) Finalize() (*Result, error) {
	polysPerNode := e.regions
	if !e.converged || polysPerNode == nil {
		polysPerNode = e.computeRegions()
	}
	n := e.net.Len()
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		radii[i] = voronoi.MaxDistFrom(e.net.Position(i), polysPerNode[i])
	}
	res := &Result{
		Positions: e.net.Positions(),
		Radii:     radii,
		Rounds:    e.round,
		Converged: e.converged,
		Trace:     append([]RoundStats(nil), e.trace...),
		Messages:  e.net.Stats().Messages,
	}
	if e.cfg.KeepRegions {
		res.Regions = polysPerNode
	}
	return res, nil
}

// DebugRegions computes and returns every node's dominating region at the
// current positions without advancing the round counter. In Localized mode
// this performs (and charges) real expanding-ring searches. Intended for
// inspection, rendering and cross-validation.
func (e *Engine) DebugRegions() [][]geom.Polygon {
	return e.computeRegions()
}

// RemoveNode deletes node i from the deployment (failure injection). The
// engine continues with the remaining nodes; convergence state is reset.
func (e *Engine) RemoveNode(i int) error {
	pos := e.net.Positions()
	if i < 0 || i >= len(pos) {
		return fmt.Errorf("core: RemoveNode index %d out of range [0,%d)", i, len(pos))
	}
	if len(pos)-1 < e.cfg.K {
		return fmt.Errorf("core: removing node %d would leave %d < K=%d nodes", i, len(pos)-1, e.cfg.K)
	}
	pos = append(pos[:i], pos[i+1:]...)
	e.net = wsn.New(pos, e.net.Gamma())
	e.prevMsgs = 0
	e.converged = false
	return nil
}

// AddNode inserts a node at p (clamped into the region). Convergence state
// is reset.
func (e *Engine) AddNode(p geom.Point) {
	pos := append(e.net.Positions(), e.reg.ClampInside(p))
	e.net = wsn.New(pos, e.net.Gamma())
	e.prevMsgs = 0
	e.converged = false
}

// computeRegions returns each node's dominating region under the configured
// mode.
func (e *Engine) computeRegions() [][]geom.Polygon {
	switch e.cfg.Mode {
	case Localized:
		return e.localizedRegions()
	default:
		return e.centralizedRegions()
	}
}

// centralizedRegions computes every node's dominating region with global
// knowledge.
func (e *Engine) centralizedRegions() [][]geom.Polygon {
	n := e.net.Len()
	out := make([][]geom.Polygon, n)
	for i := 0; i < n; i++ {
		out[i] = e.centralizedRegionOf(i)
	}
	return out
}

// centralizedRegionOf computes node i's dominating region with global
// knowledge.
func (e *Engine) centralizedRegionOf(i int) []geom.Polygon {
	return CentralizedDominatingRegion(e.net, e.reg, i, e.cfg.K)
}

// CentralizedDominatingRegion computes node i's dominating region over the
// network's current positions from global knowledge, using an
// exactness-checked expanding radius: a region computed from all nodes
// within distance ρ of u_i is globally exact as soon as its circumradius-
// from-u_i satisfies R̂ ≤ ρ/2, because every generator that could beat u_i
// at a point within R̂ of u_i lies within 2·R̂ ≤ ρ of u_i. It is shared by
// the round Engine and the asynchronous event-driven simulator.
func CentralizedDominatingRegion(net *wsn.Network, reg *region.Region, i, k int) []geom.Polygon {
	n := net.Len()
	pieces := reg.Pieces()
	diag := reg.BBox().Diagonal()
	ui := net.Position(i)
	self := voronoi.Site{ID: i, Pos: ui}
	// Initial guess: enough radius to see ~4k neighbors in a uniform
	// deployment; grows geometrically until the exactness check passes.
	rho := diag / math.Sqrt(float64(n)) * math.Sqrt(float64(4*k+4))
	for {
		nbrIDs := net.NeighborsWithin(i, rho)
		sites := make([]voronoi.Site, 0, len(nbrIDs))
		for _, j := range nbrIDs {
			sites = append(sites, voronoi.Site{ID: j, Pos: net.Position(j)})
		}
		polys := voronoi.DominatingRegion(self, sites, k, pieces)
		rhat := voronoi.MaxDistFrom(ui, polys)
		if 2*rhat <= rho || len(nbrIDs) == n-1 || rho > 4*diag {
			return polys
		}
		rho *= 2
	}
}
